#include "matrix/io_mm.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tsg {

namespace {

enum class ValueKind { kReal, kInteger, kPattern };
enum class Symmetry { kGeneral, kSymmetric, kSkewSymmetric };

/// All loader failures surface as tsg::Error carrying StatusCode::kIoError
/// with the 1-based line number, so a caller (or the CLI) can point the
/// user at the offending line. Error derives from std::runtime_error, so
/// pre-Status catch sites keep working.
[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw Error(Status::io_error("matrix market parse error (line " + std::to_string(line_no) +
                               "): " + what));
}

[[noreturn]] void fail_overflow(std::size_t line_no, const std::string& what) {
  throw Error(
      Status::index_overflow("matrix market parse error (line " + std::to_string(line_no) +
                             "): " + what));
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

template <class T>
Coo<T> read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) fail(1, "empty stream");
  ++line_no;
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket") fail(line_no, "missing %%MatrixMarket banner");
  if (to_lower(object) != "matrix") fail(line_no, "object must be 'matrix'");
  if (to_lower(format) != "coordinate") fail(line_no, "only coordinate format is supported");

  ValueKind kind;
  const std::string f = to_lower(field);
  if (f == "real" || f == "double") {
    kind = ValueKind::kReal;
  } else if (f == "integer") {
    kind = ValueKind::kInteger;
  } else if (f == "pattern") {
    kind = ValueKind::kPattern;
  } else {
    fail(line_no, "unsupported field '" + field + "' (real/integer/pattern)");
  }

  Symmetry sym;
  const std::string s = to_lower(symmetry);
  if (s == "general") {
    sym = Symmetry::kGeneral;
  } else if (s == "symmetric") {
    sym = Symmetry::kSymmetric;
  } else if (s == "skew-symmetric") {
    sym = Symmetry::kSkewSymmetric;
  } else {
    fail(line_no, "unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') {
      // Blank-only lines are also skipped.
      if (line.find_first_not_of(" \t\r\n") != std::string::npos) break;
    }
  }

  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> entries)) fail(line_no, "bad size line");
    if (rows < 0 || cols < 0 || entries < 0) fail(line_no, "negative sizes");
    if (rows > static_cast<long long>(std::numeric_limits<index_t>::max()) ||
        cols > static_cast<long long>(std::numeric_limits<index_t>::max())) {
      fail_overflow(line_no, "dimensions do not fit index_t");
    }
    // rows*cols fits long long (both operands are < 2^31), so this bound is
    // safe to form and rules out entry counts no duplicate-free coordinate
    // file can hold.
    if (rows * cols >= 0 && entries > rows * cols) {
      fail(line_no, "entry count exceeds rows*cols");
    }
  }

  Coo<T> coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  coo.reserve(checked_size_mul(entries, sym == Symmetry::kGeneral ? 1 : 2));

  // (packed coordinate, source line) of every raw entry, for the duplicate
  // scan after the read loop. Symmetric entries are keyed on the unordered
  // pair, so a file that repeats (r,c) — or illegally lists both (r,c) and
  // (c,r) when only one triangle may be stored — collides either way.
  std::vector<std::pair<std::uint64_t, std::size_t>> keys;
  keys.reserve(static_cast<std::size_t>(entries));

  long long seen = 0;
  while (seen < entries) {
    if (!std::getline(in, line)) fail(line_no + 1, "unexpected end of stream");
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;

    std::istringstream entry(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c)) fail(line_no, "bad entry");
    if (kind != ValueKind::kPattern && !(entry >> v)) fail(line_no, "missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail(line_no, "index out of bounds");
    ++seen;

    const index_t ri = static_cast<index_t>(r - 1);
    const index_t ci = static_cast<index_t>(c - 1);
    const index_t kr = sym == Symmetry::kGeneral ? ri : (ri > ci ? ri : ci);
    const index_t kc = sym == Symmetry::kGeneral ? ci : (ri > ci ? ci : ri);
    keys.emplace_back(static_cast<std::uint64_t>(kr) * static_cast<std::uint64_t>(cols) +
                          static_cast<std::uint64_t>(kc),
                      line_no);
    coo.push_back(ri, ci, static_cast<T>(v));
    if (sym != Symmetry::kGeneral && ri != ci) {
      const double mirrored = sym == Symmetry::kSkewSymmetric ? -v : v;
      coo.push_back(ci, ri, static_cast<T>(mirrored));
    }
  }

  // Duplicate rejection: the CSR conversion downstream assumes one entry
  // per coordinate, and silently summed duplicates have corrupted more than
  // one benchmark. Sort the packed keys and report the *line* of the second
  // occurrence.
  std::sort(keys.begin(), keys.end());
  for (std::size_t k = 1; k < keys.size(); ++k) {
    if (keys[k].first == keys[k - 1].first) {
      const std::uint64_t key = keys[k].first;
      const long long dup_r = static_cast<long long>(key / static_cast<std::uint64_t>(cols)) + 1;
      const long long dup_c = static_cast<long long>(key % static_cast<std::uint64_t>(cols)) + 1;
      fail(keys[k].second, "duplicate entry (" + std::to_string(dup_r) + ", " +
                               std::to_string(dup_c) + "), first seen before this line");
    }
  }
  return coo;
}

template <class T>
Coo<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(Status::io_error("cannot open matrix file: " + path));
  return read_matrix_market<T>(in);
}

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows << " " << a.cols << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      out << (i + 1) << " " << (a.col_idx[k] + 1) << " " << static_cast<double>(a.val[k])
          << "\n";
    }
  }
}

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a) {
  std::ofstream out(path);
  if (!out) throw Error(Status::io_error("cannot open output file: " + path));
  write_matrix_market(out, a);
}

template Coo<double> read_matrix_market(std::istream&);
template Coo<float> read_matrix_market(std::istream&);
template Coo<double> read_matrix_market_file(const std::string&);
template Coo<float> read_matrix_market_file(const std::string&);
template void write_matrix_market(std::ostream&, const Csr<double>&);
template void write_matrix_market(std::ostream&, const Csr<float>&);
template void write_matrix_market_file(const std::string&, const Csr<double>&);
template void write_matrix_market_file(const std::string&, const Csr<float>&);

}  // namespace tsg
