#include "matrix/io_mm.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tsg {

namespace {

enum class ValueKind { kReal, kInteger, kPattern };
enum class Symmetry { kGeneral, kSymmetric, kSkewSymmetric };

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("matrix market parse error (line " + std::to_string(line_no) +
                           "): " + what);
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

template <class T>
Coo<T> read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) fail(1, "empty stream");
  ++line_no;
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket") fail(line_no, "missing %%MatrixMarket banner");
  if (to_lower(object) != "matrix") fail(line_no, "object must be 'matrix'");
  if (to_lower(format) != "coordinate") fail(line_no, "only coordinate format is supported");

  ValueKind kind;
  const std::string f = to_lower(field);
  if (f == "real" || f == "double") {
    kind = ValueKind::kReal;
  } else if (f == "integer") {
    kind = ValueKind::kInteger;
  } else if (f == "pattern") {
    kind = ValueKind::kPattern;
  } else {
    fail(line_no, "unsupported field '" + field + "' (real/integer/pattern)");
  }

  Symmetry sym;
  const std::string s = to_lower(symmetry);
  if (s == "general") {
    sym = Symmetry::kGeneral;
  } else if (s == "symmetric") {
    sym = Symmetry::kSymmetric;
  } else if (s == "skew-symmetric") {
    sym = Symmetry::kSkewSymmetric;
  } else {
    fail(line_no, "unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') {
      // Blank-only lines are also skipped.
      if (line.find_first_not_of(" \t\r\n") != std::string::npos) break;
    }
  }

  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> entries)) fail(line_no, "bad size line");
    if (rows < 0 || cols < 0 || entries < 0) fail(line_no, "negative sizes");
  }

  Coo<T> coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  coo.reserve(static_cast<std::size_t>(entries) * (sym == Symmetry::kGeneral ? 1 : 2));

  long long seen = 0;
  while (seen < entries) {
    if (!std::getline(in, line)) fail(line_no + 1, "unexpected end of stream");
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;

    std::istringstream entry(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c)) fail(line_no, "bad entry");
    if (kind != ValueKind::kPattern && !(entry >> v)) fail(line_no, "missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail(line_no, "index out of bounds");
    ++seen;

    const index_t ri = static_cast<index_t>(r - 1);
    const index_t ci = static_cast<index_t>(c - 1);
    coo.push_back(ri, ci, static_cast<T>(v));
    if (sym != Symmetry::kGeneral && ri != ci) {
      const double mirrored = sym == Symmetry::kSkewSymmetric ? -v : v;
      coo.push_back(ci, ri, static_cast<T>(mirrored));
    }
  }
  return coo;
}

template <class T>
Coo<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open matrix file: " + path);
  return read_matrix_market<T>(in);
}

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows << " " << a.cols << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      out << (i + 1) << " " << (a.col_idx[k] + 1) << " " << static_cast<double>(a.val[k])
          << "\n";
    }
  }
}

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open output file: " + path);
  write_matrix_market(out, a);
}

template Coo<double> read_matrix_market(std::istream&);
template Coo<float> read_matrix_market(std::istream&);
template Coo<double> read_matrix_market_file(const std::string&);
template Coo<float> read_matrix_market_file(const std::string&);
template void write_matrix_market(std::ostream&, const Csr<double>&);
template void write_matrix_market(std::ostream&, const Csr<float>&);
template void write_matrix_market_file(const std::string&, const Csr<double>&);
template void write_matrix_market_file(const std::string&, const Csr<float>&);

}  // namespace tsg
