#include "matrix/coo.h"

#include <algorithm>
#include <numeric>

namespace tsg {

template <class T>
bool Coo<T>::well_formed() const {
  if (row.size() != col.size() || row.size() != val.size()) return false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] < 0 || row[i] >= rows) return false;
    if (col[i] < 0 || col[i] >= cols) return false;
  }
  return true;
}

template <class T>
void Coo<T>::sort_and_combine() {
  const std::size_t n = val.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (row[a] != row[b]) return row[a] < row[b];
    return col[a] < col[b];
  });

  std::vector<index_t> nr, nc;
  std::vector<T> nv;
  nr.reserve(n);
  nc.reserve(n);
  nv.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = perm[k];
    if (!nr.empty() && nr.back() == row[i] && nc.back() == col[i]) {
      nv.back() += val[i];
    } else {
      nr.push_back(row[i]);
      nc.push_back(col[i]);
      nv.push_back(val[i]);
    }
  }
  row = std::move(nr);
  col = std::move(nc);
  val = std::move(nv);
}

template <class T>
bool Coo<T>::is_sorted_unique() const {
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i] < row[i - 1]) return false;
    if (row[i] == row[i - 1] && col[i] <= col[i - 1]) return false;
  }
  return true;
}

template struct Coo<double>;
template struct Coo<float>;

}  // namespace tsg
