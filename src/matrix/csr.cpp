#include "matrix/csr.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/parallel.h"

namespace tsg {

template <class T>
std::string Csr<T>::validate() const {
  std::ostringstream err;
  if (rows < 0 || cols < 0) {
    err << "negative dimensions " << rows << "x" << cols;
    return err.str();
  }
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1) {
    err << "row_ptr size " << row_ptr.size() << " != rows+1 " << rows + 1;
    return err.str();
  }
  if (!row_ptr.empty() && row_ptr.front() != 0) {
    err << "row_ptr[0] = " << row_ptr.front() << " != 0";
    return err.str();
  }
  for (index_t i = 0; i < rows; ++i) {
    if (row_ptr[i] < 0) {
      // A negative offset means the 64-bit running sum wrapped (or the file
      // loader let one through): report it as overflow, not just disorder.
      err << "row_ptr[" << i << "] = " << row_ptr[i] << " negative (offset overflow)";
      return err.str();
    }
    if (row_ptr[i + 1] < row_ptr[i]) {
      err << "row_ptr not monotone at row " << i;
      return err.str();
    }
  }
  if (nnz() < 0) {
    err << "nnz " << nnz() << " negative (offset overflow)";
    return err.str();
  }
  if (col_idx.size() != val.size() ||
      col_idx.size() != static_cast<std::size_t>(nnz())) {
    err << "array sizes inconsistent: col_idx " << col_idx.size() << ", val " << val.size()
        << ", nnz " << nnz();
    return err.str();
  }
  for (std::size_t k = 0; k < col_idx.size(); ++k) {
    if (col_idx[k] < 0 || col_idx[k] >= cols) {
      err << "col_idx[" << k << "] = " << col_idx[k] << " out of range [0," << cols << ")";
      return err.str();
    }
  }
  return {};
}

template <class T>
bool Csr<T>::rows_sorted() const {
  for (index_t i = 0; i < rows; ++i) {
    for (offset_t k = row_ptr[i] + 1; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] <= col_idx[k - 1]) return false;
    }
  }
  return true;
}

template <class T>
void Csr<T>::sort_rows() {
  parallel_for(index_t{0}, rows, [&](index_t i) {
    const offset_t lo = row_ptr[i];
    const offset_t hi = row_ptr[i + 1];
    const std::size_t len = static_cast<std::size_t>(hi - lo);
    if (len < 2) return;
    std::vector<std::size_t> perm(len);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return col_idx[lo + static_cast<offset_t>(a)] < col_idx[lo + static_cast<offset_t>(b)];
    });
    std::vector<index_t> c(len);
    std::vector<T> v(len);
    for (std::size_t j = 0; j < len; ++j) {
      c[j] = col_idx[lo + static_cast<offset_t>(perm[j])];
      v[j] = val[lo + static_cast<offset_t>(perm[j])];
    }
    std::copy(c.begin(), c.end(), col_idx.begin() + lo);
    std::copy(v.begin(), v.end(), val.begin() + lo);
  });
}

template struct Csr<double>;
template struct Csr<float>;

}  // namespace tsg
