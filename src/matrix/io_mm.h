// Matrix Market (.mtx) I/O — the interchange format of the SuiteSparse
// collection the paper evaluates on (artifact appendix A.5).
//
// Supports the coordinate variants we need: real / integer / pattern values,
// general / symmetric / skew-symmetric storage. Pattern entries read as 1.0.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/coo.h"
#include "matrix/csr.h"

namespace tsg {

/// Parse a Matrix Market coordinate stream into COO (symmetry expanded,
/// duplicates retained). Throws std::runtime_error with a line-numbered
/// message on malformed input.
template <class T>
Coo<T> read_matrix_market(std::istream& in);

/// Parse a .mtx file from disk.
template <class T>
Coo<T> read_matrix_market_file(const std::string& path);

/// Write a CSR matrix as a general real coordinate Matrix Market stream.
template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a);

/// Write a .mtx file to disk.
template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a);

extern template Coo<double> read_matrix_market(std::istream&);
extern template Coo<float> read_matrix_market(std::istream&);
extern template Coo<double> read_matrix_market_file(const std::string&);
extern template Coo<float> read_matrix_market_file(const std::string&);
extern template void write_matrix_market(std::ostream&, const Csr<double>&);
extern template void write_matrix_market(std::ostream&, const Csr<float>&);
extern template void write_matrix_market_file(const std::string&, const Csr<double>&);
extern template void write_matrix_market_file(const std::string&, const Csr<float>&);

}  // namespace tsg
