// Bandwidth-reducing reordering.
//
// Tile occupancy — the quantity that decides whether TileSpGEMM wins
// (Fig. 7/9) or drowns in per-tile metadata (cop20k_A) — is not intrinsic
// to a matrix, only to its ordering: scattered nonzeros land in millions of
// near-empty 16x16 tiles, while the same matrix reordered to a narrow band
// packs them densely. Reverse Cuthill-McKee is the classic bandwidth
// reducer; bench_ablation_reorder quantifies its effect on the tiled
// pipeline.
#pragma once

#include "matrix/csr.h"

namespace tsg {

/// Reverse Cuthill-McKee ordering of the symmetrised pattern of A.
/// Returns `perm` with perm[new_index] = old_index, covering every vertex
/// (multiple components are handled by restarting from the lowest-degree
/// unvisited vertex).
template <class T>
tracked_vector<index_t> rcm_ordering(const Csr<T>& a);

/// Symmetric permutation B = A(perm, perm): B[i][j] = A[perm[i]][perm[j]].
template <class T>
Csr<T> permute_symmetric(const Csr<T>& a, const tracked_vector<index_t>& perm);

/// Half bandwidth max_i |i - j| over nonzeros — what RCM minimises.
template <class T>
index_t bandwidth(const Csr<T>& a);

extern template tracked_vector<index_t> rcm_ordering(const Csr<double>&);
extern template Csr<double> permute_symmetric(const Csr<double>&,
                                              const tracked_vector<index_t>&);
extern template index_t bandwidth(const Csr<double>&);

}  // namespace tsg
