#include "matrix/spmv.h"

#include <stdexcept>

#include "common/parallel.h"

namespace tsg {

template <class T>
void spmv(const Csr<T>& a, const tracked_vector<T>& x, tracked_vector<T>& y) {
  if (static_cast<index_t>(x.size()) != a.cols) {
    throw std::invalid_argument("spmv: x size mismatch");
  }
  y.assign(static_cast<std::size_t>(a.rows), T{});
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    T sum{};
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      sum += a.val[k] * x[static_cast<std::size_t>(a.col_idx[k])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  });
}

template void spmv(const Csr<double>&, const tracked_vector<double>&,
                   tracked_vector<double>&);
template void spmv(const Csr<float>&, const tracked_vector<float>&, tracked_vector<float>&);

}  // namespace tsg
