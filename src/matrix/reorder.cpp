#include "matrix/reorder.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <stdexcept>

#include "matrix/convert.h"
#include "matrix/transpose.h"

namespace tsg {

template <class T>
tracked_vector<index_t> rcm_ordering(const Csr<T>& a) {
  if (a.rows != a.cols) throw std::invalid_argument("rcm: matrix must be square");
  const index_t n = a.rows;

  // Work on the symmetrised pattern A | A^T so directed inputs are fine.
  const Csr<T> at = transpose(a);
  auto degree = [&](index_t v) { return a.row_nnz(v) + at.row_nnz(v); };

  tracked_vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> neighbours;

  // Vertices sorted by degree: BFS seeds are low-degree peripheral nodes.
  tracked_vector<index_t> by_degree(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) by_degree[static_cast<std::size_t>(v)] = v;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](index_t x, index_t y) { return degree(x) < degree(y); });

  std::deque<index_t> queue;
  for (index_t seed : by_degree) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    visited[static_cast<std::size_t>(seed)] = true;
    queue.push_back(seed);
    while (!queue.empty()) {
      const index_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      neighbours.clear();
      for (offset_t k = a.row_ptr[v]; k < a.row_ptr[v + 1]; ++k) {
        neighbours.push_back(a.col_idx[k]);
      }
      for (offset_t k = at.row_ptr[v]; k < at.row_ptr[v + 1]; ++k) {
        neighbours.push_back(at.col_idx[k]);
      }
      std::sort(neighbours.begin(), neighbours.end(),
                [&](index_t x, index_t y) { return degree(x) < degree(y); });
      for (index_t u : neighbours) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          queue.push_back(u);
        }
      }
    }
  }
  // The "reverse" in RCM.
  std::reverse(order.begin(), order.end());
  return order;
}

template <class T>
Csr<T> permute_symmetric(const Csr<T>& a, const tracked_vector<index_t>& perm) {
  if (a.rows != a.cols) throw std::invalid_argument("permute: matrix must be square");
  if (static_cast<index_t>(perm.size()) != a.rows) {
    throw std::invalid_argument("permute: permutation size mismatch");
  }
  // inverse[old] = new.
  tracked_vector<index_t> inverse(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const index_t old = perm[i];
    if (old < 0 || old >= a.rows || inverse[static_cast<std::size_t>(old)] >= 0) {
      throw std::invalid_argument("permute: not a permutation");
    }
    inverse[static_cast<std::size_t>(old)] = static_cast<index_t>(i);
  }

  Coo<T> coo;
  coo.rows = a.rows;
  coo.cols = a.cols;
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows; ++i) {
    const index_t ni = inverse[static_cast<std::size_t>(i)];
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      coo.push_back(ni, inverse[static_cast<std::size_t>(a.col_idx[k])], a.val[k]);
    }
  }
  return coo_to_csr(std::move(coo));
}

template <class T>
index_t bandwidth(const Csr<T>& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      bw = std::max(bw, static_cast<index_t>(std::abs(a.col_idx[k] - i)));
    }
  }
  return bw;
}

template tracked_vector<index_t> rcm_ordering(const Csr<double>&);
template Csr<double> permute_symmetric(const Csr<double>&, const tracked_vector<index_t>&);
template index_t bandwidth(const Csr<double>&);

}  // namespace tsg
