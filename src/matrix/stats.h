// SpGEMM workload statistics: intermediate-product counts, flops,
// compression rate, and the per-row work histogram used by the paper's
// Section 2.3 load-imbalance motivation (webbase-1M).
#pragma once

#include <array>
#include <cstdint>

#include "matrix/csr.h"

namespace tsg {

/// Number of intermediate products of C = A*B:
///   sum over nonzeros a_ij of nnz(B row j).
/// The paper's "#flops" is twice this (one multiply + one add per product).
template <class T>
offset_t intermediate_products(const Csr<T>& a, const Csr<T>& b);

/// Floating point operations of C = A*B (2 * intermediate products).
template <class T>
offset_t spgemm_flops(const Csr<T>& a, const Csr<T>& b);

/// Compression rate as defined under Table 2: intermediate products of
/// C = A*B divided by nnz(C).
inline double compression_rate(offset_t products, offset_t nnz_c) {
  return nnz_c > 0 ? static_cast<double>(products) / static_cast<double>(nnz_c) : 0.0;
}

/// Histogram of per-row flops in decades, reproducing the paper's
/// webbase-1M discussion: bucket d counts rows whose flops lie in
/// [10^d, 10^(d+1)); bucket 0 also absorbs rows with zero work.
struct RowFlopsHistogram {
  static constexpr int kDecades = 12;
  std::array<std::int64_t, kDecades> decade_count{};
  offset_t max_row_flops = 0;

  /// Rows with flops >= 10^d.
  std::int64_t rows_at_least(int d) const {
    std::int64_t total = 0;
    for (int i = d; i < kDecades; ++i) total += decade_count[i];
    return total;
  }
};

template <class T>
RowFlopsHistogram row_flops_histogram(const Csr<T>& a, const Csr<T>& b);

/// GFlops throughput given flops and milliseconds.
inline double gflops(offset_t flops, double ms) {
  return ms > 0 ? static_cast<double>(flops) / (ms * 1e6) : 0.0;
}

extern template offset_t intermediate_products(const Csr<double>&, const Csr<double>&);
extern template offset_t intermediate_products(const Csr<float>&, const Csr<float>&);
extern template offset_t spgemm_flops(const Csr<double>&, const Csr<double>&);
extern template offset_t spgemm_flops(const Csr<float>&, const Csr<float>&);
extern template RowFlopsHistogram row_flops_histogram(const Csr<double>&, const Csr<double>&);
extern template RowFlopsHistogram row_flops_histogram(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
