#include "matrix/transpose.h"

#include "matrix/convert.h"

namespace tsg {

template <class T>
Csr<T> transpose(const Csr<T>& a) {
  // CSR -> CSC is a counting sort by column; reinterpreting the CSC arrays
  // as CSR of the transpose is free and leaves rows sorted.
  return csc_to_csr_of_transpose(csr_to_csc(a));
}

template Csr<double> transpose(const Csr<double>&);
template Csr<float> transpose(const Csr<float>&);

}  // namespace tsg
