// Element-level sparse matrix operations used by the example applications
// (AMG Galerkin products, triangle counting, Markov clustering) and by the
// property-based tests (distributivity, transpose identities).
#pragma once

#include "matrix/csr.h"

namespace tsg {

/// n-by-n identity matrix.
template <class T>
Csr<T> identity(index_t n);

/// Diagonal matrix from a vector of length n (zeros on the diagonal are
/// stored explicitly, keeping the structure predictable).
template <class T>
Csr<T> diagonal(const tracked_vector<T>& d);

/// Row permutation matrix P such that (P*A) row i equals A row perm[i].
/// `perm` must be a permutation of [0, n).
template <class T>
Csr<T> permutation(const tracked_vector<index_t>& perm);

/// C = alpha*A + beta*B. Dimensions must match; rows must be sorted.
template <class T>
Csr<T> add(const Csr<T>& a, const Csr<T>& b, T alpha = T{1}, T beta = T{1});

/// Hadamard (element-wise) product C = A .* B.
template <class T>
Csr<T> hadamard(const Csr<T>& a, const Csr<T>& b);

/// Keep only the entries of A at positions present in the pattern of M
/// (GraphBLAS-style structural mask). Values come from A.
template <class T>
Csr<T> structural_mask(const Csr<T>& a, const Csr<T>& mask);

/// Scale every value: A <- alpha * A.
template <class T>
void scale_inplace(Csr<T>& a, T alpha);

/// Raise every value to `power` (element-wise), used by MCL inflation.
template <class T>
void pow_inplace(Csr<T>& a, double power);

/// Normalise every column so it sums to 1 (columns that sum to zero are left
/// untouched), the MCL column-stochastic step.
template <class T>
void normalize_columns_inplace(Csr<T>& a);

/// Drop entries with |value| <= tol, and rows keep their sorted order.
template <class T>
Csr<T> prune(const Csr<T>& a, double tol);

/// Strictly lower-triangular part of A (entries with col < row).
template <class T>
Csr<T> tril_strict(const Csr<T>& a);

/// Sum of all values.
template <class T>
double value_sum(const Csr<T>& a);

#define TSG_OPS_EXTERN(T)                                             \
  extern template Csr<T> identity<T>(index_t);                        \
  extern template Csr<T> diagonal(const tracked_vector<T>&);          \
  extern template Csr<T> permutation<T>(const tracked_vector<index_t>&); \
  extern template Csr<T> add(const Csr<T>&, const Csr<T>&, T, T);     \
  extern template Csr<T> hadamard(const Csr<T>&, const Csr<T>&);      \
  extern template Csr<T> structural_mask(const Csr<T>&, const Csr<T>&); \
  extern template void scale_inplace(Csr<T>&, T);                     \
  extern template void pow_inplace(Csr<T>&, double);                  \
  extern template void normalize_columns_inplace(Csr<T>&);            \
  extern template Csr<T> prune(const Csr<T>&, double);                \
  extern template Csr<T> tril_strict(const Csr<T>&);                  \
  extern template double value_sum(const Csr<T>&);

TSG_OPS_EXTERN(double)
TSG_OPS_EXTERN(float)
#undef TSG_OPS_EXTERN

}  // namespace tsg
