// Compressed sparse row matrix — the library's primary interchange format
// and the input/output of every SpGEMM implementation.
#pragma once

#include <cstddef>
#include <string>

#include "common/config.h"
#include "common/memory.h"

namespace tsg {

template <class T>
struct Csr {
  using value_type = T;

  index_t rows = 0;
  index_t cols = 0;
  /// Size rows+1; row i occupies [row_ptr[i], row_ptr[i+1]).
  tracked_vector<offset_t> row_ptr;
  tracked_vector<index_t> col_idx;
  tracked_vector<T> val;

  Csr() = default;
  Csr(index_t r, index_t c) : rows(r), cols(c), row_ptr(static_cast<std::size_t>(r) + 1, 0) {}

  offset_t nnz() const { return row_ptr.empty() ? 0 : row_ptr.back(); }

  offset_t row_nnz(index_t i) const { return row_ptr[i + 1] - row_ptr[i]; }

  /// Bytes of the three arrays (the Fig. 11 CSR space metric).
  std::size_t bytes() const {
    return row_ptr.size() * sizeof(offset_t) + col_idx.size() * sizeof(index_t) +
           val.size() * sizeof(T);
  }

  /// Structural invariants: monotone row_ptr bracketing the arrays, and all
  /// column indices in range. Returns an empty string when valid, else a
  /// human-readable description of the first violation.
  std::string validate() const;

  /// True if column indices are strictly increasing within every row.
  bool rows_sorted() const;

  /// Sort the column indices (and values) within every row.
  void sort_rows();
};

extern template struct Csr<double>;
extern template struct Csr<float>;

}  // namespace tsg
