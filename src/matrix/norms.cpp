#include "matrix/norms.h"

#include <cmath>

namespace tsg {

template <class T>
double frobenius_norm(const Csr<T>& a) {
  double s = 0.0;
  for (const auto& v : a.val) {
    const double d = static_cast<double>(v);
    s += d * d;
  }
  return std::sqrt(s);
}

template <class T>
double one_norm(const Csr<T>& a) {
  tracked_vector<double> col_sum(static_cast<std::size_t>(a.cols), 0.0);
  for (std::size_t k = 0; k < a.col_idx.size(); ++k) {
    col_sum[static_cast<std::size_t>(a.col_idx[k])] +=
        std::fabs(static_cast<double>(a.val[k]));
  }
  double best = 0.0;
  for (double s : col_sum) best = s > best ? s : best;
  return best;
}

template <class T>
double inf_norm(const Csr<T>& a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows; ++i) {
    double s = 0.0;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      s += std::fabs(static_cast<double>(a.val[k]));
    }
    best = s > best ? s : best;
  }
  return best;
}

template <class T>
double max_abs(const Csr<T>& a) {
  double best = 0.0;
  for (const auto& v : a.val) {
    const double d = std::fabs(static_cast<double>(v));
    best = d > best ? d : best;
  }
  return best;
}

#define TSG_NORMS_INSTANTIATE(T)                   \
  template double frobenius_norm(const Csr<T>&);   \
  template double one_norm(const Csr<T>&);         \
  template double inf_norm(const Csr<T>&);         \
  template double max_abs(const Csr<T>&);
TSG_NORMS_INSTANTIATE(double)
TSG_NORMS_INSTANTIATE(float)
#undef TSG_NORMS_INSTANTIATE

}  // namespace tsg
