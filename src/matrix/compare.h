// Result validation: comparing SpGEMM outputs across implementations.
//
// Every SpGEMM method in this library has the same semantics as the paper's
// (and cuSPARSE's): the output structure is the full symbolic product, i.e.
// explicit zeros created by additive cancellation are kept. That makes exact
// structural comparison meaningful; values are compared with a relative
// tolerance because different accumulation orders round differently.
#pragma once

#include <string>

#include "matrix/csr.h"

namespace tsg {

struct CompareOptions {
  /// Relative tolerance for value comparison:
  /// |a-b| <= rel_tol * max(|a|, |b|, abs_floor).
  double rel_tol = 1e-10;
  double abs_floor = 1e-300;
  /// When true, entries whose magnitude is below prune_tol on BOTH sides are
  /// treated as absent, so methods may disagree on explicit zeros.
  bool prune_zeros = false;
  double prune_tol = 0.0;
};

struct CompareResult {
  bool equal = true;
  std::string message;  ///< first difference, human readable; empty if equal
  explicit operator bool() const { return equal; }
};

/// Structural + numerical comparison of two CSR matrices with sorted rows.
template <class T>
CompareResult compare(const Csr<T>& a, const Csr<T>& b, const CompareOptions& opt = {});

extern template CompareResult compare(const Csr<double>&, const Csr<double>&,
                                      const CompareOptions&);
extern template CompareResult compare(const Csr<float>&, const Csr<float>&,
                                      const CompareOptions&);

}  // namespace tsg
