// CSR sparse matrix-vector multiplication — reference kernel used to
// validate the tile-format SpMV and by the solver-style examples.
#pragma once

#include "matrix/csr.h"

namespace tsg {

/// y = A*x. `x` must have size A.cols; `y` is resized to A.rows.
template <class T>
void spmv(const Csr<T>& a, const tracked_vector<T>& x, tracked_vector<T>& y);

extern template void spmv(const Csr<double>&, const tracked_vector<double>&,
                          tracked_vector<double>&);
extern template void spmv(const Csr<float>&, const tracked_vector<float>&,
                          tracked_vector<float>&);

}  // namespace tsg
