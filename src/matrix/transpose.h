// Explicit CSR transpose — the substrate for the paper's `-aat 1` mode,
// which computes C = A * A^T by materialising A^T first.
#pragma once

#include "matrix/csr.h"

namespace tsg {

/// Returns A^T in CSR with sorted rows. O(nnz) counting-sort construction.
template <class T>
Csr<T> transpose(const Csr<T>& a);

extern template Csr<double> transpose(const Csr<double>&);
extern template Csr<float> transpose(const Csr<float>&);

}  // namespace tsg
