// Matrix norms — validation metrics for the solver stack and the
// precision study.
#pragma once

#include "matrix/csr.h"

namespace tsg {

/// Frobenius norm: sqrt(sum of squared values).
template <class T>
double frobenius_norm(const Csr<T>& a);

/// Induced 1-norm: max column absolute sum.
template <class T>
double one_norm(const Csr<T>& a);

/// Induced infinity norm: max row absolute sum.
template <class T>
double inf_norm(const Csr<T>& a);

/// Largest absolute value.
template <class T>
double max_abs(const Csr<T>& a);

#define TSG_NORMS_EXTERN(T)                        \
  extern template double frobenius_norm(const Csr<T>&); \
  extern template double one_norm(const Csr<T>&);  \
  extern template double inf_norm(const Csr<T>&);  \
  extern template double max_abs(const Csr<T>&);
TSG_NORMS_EXTERN(double)
TSG_NORMS_EXTERN(float)
#undef TSG_NORMS_EXTERN

}  // namespace tsg
