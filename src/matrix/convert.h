// Conversions between the container formats (COO, CSR, CSC).
#pragma once

#include "matrix/coo.h"
#include "matrix/csr.h"

namespace tsg {

/// Compressed sparse column matrix. Used as the column-major view needed by
/// A*B^T-style access patterns and by the CSB space comparison.
template <class T>
struct Csc {
  index_t rows = 0;
  index_t cols = 0;
  tracked_vector<offset_t> col_ptr;  ///< size cols+1
  tracked_vector<index_t> row_idx;
  tracked_vector<T> val;

  offset_t nnz() const { return col_ptr.empty() ? 0 : col_ptr.back(); }
};

/// Build a CSR matrix from COO input. The input is sorted and duplicates are
/// combined; the resulting rows have strictly increasing column indices.
template <class T>
Csr<T> coo_to_csr(Coo<T> coo);

/// Expand a CSR matrix back to row-major sorted COO.
template <class T>
Coo<T> csr_to_coo(const Csr<T>& a);

/// Column-compress a CSR matrix. Row indices within each column come out in
/// increasing order.
template <class T>
Csc<T> csr_to_csc(const Csr<T>& a);

/// Reinterpret a CSC matrix as the CSR storage of its transpose (free).
template <class T>
Csr<T> csc_to_csr_of_transpose(Csc<T> a);

extern template Csr<double> coo_to_csr(Coo<double>);
extern template Csr<float> coo_to_csr(Coo<float>);
extern template Coo<double> csr_to_coo(const Csr<double>&);
extern template Coo<float> csr_to_coo(const Csr<float>&);
extern template Csc<double> csr_to_csc(const Csr<double>&);
extern template Csc<float> csr_to_csc(const Csr<float>&);
extern template Csr<double> csc_to_csr_of_transpose(Csc<double>);
extern template Csr<float> csc_to_csr_of_transpose(Csc<float>);

}  // namespace tsg
