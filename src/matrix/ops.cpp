#include "matrix/ops.h"

#include <cmath>
#include <stdexcept>

namespace tsg {

template <class T>
Csr<T> identity(index_t n) {
  Csr<T> a(n, n);
  a.col_idx.resize(static_cast<std::size_t>(n));
  a.val.assign(static_cast<std::size_t>(n), T{1});
  for (index_t i = 0; i < n; ++i) {
    a.row_ptr[i + 1] = i + 1;
    a.col_idx[i] = i;
  }
  return a;
}

template <class T>
Csr<T> diagonal(const tracked_vector<T>& d) {
  const index_t n = static_cast<index_t>(d.size());
  Csr<T> a = identity<T>(n);
  for (index_t i = 0; i < n; ++i) a.val[i] = d[i];
  return a;
}

template <class T>
Csr<T> permutation(const tracked_vector<index_t>& perm) {
  const index_t n = static_cast<index_t>(perm.size());
  Csr<T> p(n, n);
  p.col_idx.resize(static_cast<std::size_t>(n));
  p.val.assign(static_cast<std::size_t>(n), T{1});
  for (index_t i = 0; i < n; ++i) {
    if (perm[i] < 0 || perm[i] >= n) throw std::invalid_argument("permutation out of range");
    p.row_ptr[i + 1] = i + 1;
    p.col_idx[i] = perm[i];
  }
  return p;
}

namespace {

/// Merge two sorted rows into `out`, combining entries whose columns match
/// with `combine(a_val_or_0, b_val_or_0)`. `keep` decides whether unmatched
/// entries from each side survive.
template <class T, class Combine>
void merge_rows(const Csr<T>& a, const Csr<T>& b, index_t i, bool keep_a_only,
                bool keep_b_only, Combine&& combine, Csr<T>& out) {
  offset_t ka = a.row_ptr[i], kb = b.row_ptr[i];
  const offset_t ea = a.row_ptr[i + 1], eb = b.row_ptr[i + 1];
  while (ka < ea || kb < eb) {
    index_t ca = ka < ea ? a.col_idx[ka] : a.cols;
    index_t cb = kb < eb ? b.col_idx[kb] : b.cols;
    if (ca == cb) {
      out.col_idx.push_back(ca);
      out.val.push_back(combine(a.val[ka], b.val[kb]));
      ++ka;
      ++kb;
    } else if (ca < cb) {
      if (keep_a_only) {
        out.col_idx.push_back(ca);
        out.val.push_back(combine(a.val[ka], T{}));
      }
      ++ka;
    } else {
      if (keep_b_only) {
        out.col_idx.push_back(cb);
        out.val.push_back(combine(T{}, b.val[kb]));
      }
      ++kb;
    }
  }
}

template <class T>
void check_same_shape(const Csr<T>& a, const Csr<T>& b, const char* op) {
  if (a.rows != b.rows || a.cols != b.cols) {
    throw std::invalid_argument(std::string(op) + ": dimension mismatch");
  }
}

}  // namespace

template <class T>
Csr<T> add(const Csr<T>& a, const Csr<T>& b, T alpha, T beta) {
  check_same_shape(a, b, "add");
  Csr<T> c(a.rows, a.cols);
  c.col_idx.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  c.val.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t i = 0; i < a.rows; ++i) {
    merge_rows(
        a, b, i, /*keep_a_only=*/true, /*keep_b_only=*/true,
        [&](T va, T vb) { return static_cast<T>(alpha * va + beta * vb); }, c);
    c.row_ptr[i + 1] = static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
Csr<T> hadamard(const Csr<T>& a, const Csr<T>& b) {
  check_same_shape(a, b, "hadamard");
  Csr<T> c(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    merge_rows(
        a, b, i, /*keep_a_only=*/false, /*keep_b_only=*/false,
        [&](T va, T vb) { return static_cast<T>(va * vb); }, c);
    c.row_ptr[i + 1] = static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
Csr<T> structural_mask(const Csr<T>& a, const Csr<T>& mask) {
  check_same_shape(a, mask, "structural_mask");
  Csr<T> c(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t ka = a.row_ptr[i];
    const offset_t ea = a.row_ptr[i + 1];
    for (offset_t km = mask.row_ptr[i]; km < mask.row_ptr[i + 1]; ++km) {
      const index_t cm = mask.col_idx[km];
      while (ka < ea && a.col_idx[ka] < cm) ++ka;
      if (ka < ea && a.col_idx[ka] == cm) {
        c.col_idx.push_back(cm);
        c.val.push_back(a.val[ka]);
      }
    }
    c.row_ptr[i + 1] = static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
void scale_inplace(Csr<T>& a, T alpha) {
  for (auto& v : a.val) v = static_cast<T>(v * alpha);
}

template <class T>
void pow_inplace(Csr<T>& a, double power) {
  for (auto& v : a.val) v = static_cast<T>(std::pow(static_cast<double>(v), power));
}

template <class T>
void normalize_columns_inplace(Csr<T>& a) {
  tracked_vector<double> col_sum(static_cast<std::size_t>(a.cols), 0.0);
  for (std::size_t k = 0; k < a.col_idx.size(); ++k) {
    col_sum[static_cast<std::size_t>(a.col_idx[k])] += static_cast<double>(a.val[k]);
  }
  for (std::size_t k = 0; k < a.col_idx.size(); ++k) {
    const double s = col_sum[static_cast<std::size_t>(a.col_idx[k])];
    if (s != 0.0) a.val[k] = static_cast<T>(static_cast<double>(a.val[k]) / s);
  }
}

template <class T>
Csr<T> prune(const Csr<T>& a, double tol) {
  Csr<T> c(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (std::fabs(static_cast<double>(a.val[k])) > tol) {
        c.col_idx.push_back(a.col_idx[k]);
        c.val.push_back(a.val[k]);
      }
    }
    c.row_ptr[i + 1] = static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
Csr<T> tril_strict(const Csr<T>& a) {
  Csr<T> c(a.rows, a.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] < i) {
        c.col_idx.push_back(a.col_idx[k]);
        c.val.push_back(a.val[k]);
      }
    }
    c.row_ptr[i + 1] = static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

template <class T>
double value_sum(const Csr<T>& a) {
  double s = 0.0;
  for (const auto& v : a.val) s += static_cast<double>(v);
  return s;
}

#define TSG_OPS_INSTANTIATE(T)                                     \
  template Csr<T> identity<T>(index_t);                            \
  template Csr<T> diagonal(const tracked_vector<T>&);              \
  template Csr<T> permutation<T>(const tracked_vector<index_t>&);  \
  template Csr<T> add(const Csr<T>&, const Csr<T>&, T, T);         \
  template Csr<T> hadamard(const Csr<T>&, const Csr<T>&);          \
  template Csr<T> structural_mask(const Csr<T>&, const Csr<T>&);   \
  template void scale_inplace(Csr<T>&, T);                         \
  template void pow_inplace(Csr<T>&, double);                      \
  template void normalize_columns_inplace(Csr<T>&);                \
  template Csr<T> prune(const Csr<T>&, double);                    \
  template Csr<T> tril_strict(const Csr<T>&);                      \
  template double value_sum(const Csr<T>&);

TSG_OPS_INSTANTIATE(double)
TSG_OPS_INSTANTIATE(float)
#undef TSG_OPS_INSTANTIATE

}  // namespace tsg
