#include "matrix/stats.h"

#include "common/parallel.h"

namespace tsg {

template <class T>
offset_t intermediate_products(const Csr<T>& a, const Csr<T>& b) {
  return parallel_reduce(index_t{0}, a.rows, offset_t{0}, [&](index_t i) {
    offset_t products = 0;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      products += b.row_nnz(a.col_idx[k]);
    }
    return products;
  });
}

template <class T>
offset_t spgemm_flops(const Csr<T>& a, const Csr<T>& b) {
  return 2 * intermediate_products(a, b);
}

template <class T>
RowFlopsHistogram row_flops_histogram(const Csr<T>& a, const Csr<T>& b) {
  RowFlopsHistogram h;
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t products = 0;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      products += b.row_nnz(a.col_idx[k]);
    }
    const offset_t flops = 2 * products;
    h.max_row_flops = flops > h.max_row_flops ? flops : h.max_row_flops;
    int decade = 0;
    for (offset_t v = flops; v >= 10; v /= 10) ++decade;
    if (decade >= RowFlopsHistogram::kDecades) decade = RowFlopsHistogram::kDecades - 1;
    h.decade_count[static_cast<std::size_t>(decade)]++;
  }
  return h;
}

template offset_t intermediate_products(const Csr<double>&, const Csr<double>&);
template offset_t intermediate_products(const Csr<float>&, const Csr<float>&);
template offset_t spgemm_flops(const Csr<double>&, const Csr<double>&);
template offset_t spgemm_flops(const Csr<float>&, const Csr<float>&);
template RowFlopsHistogram row_flops_histogram(const Csr<double>&, const Csr<double>&);
template RowFlopsHistogram row_flops_histogram(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
