// Coordinate-format sparse matrix: the assembly/interchange format.
// Generators and the Matrix Market reader produce COO; everything else in
// the library works on CSR (matrix/csr.h) or the sparse tile format
// (core/tile_format.h).
#pragma once

#include <cstddef>
#include <vector>

#include "common/config.h"

namespace tsg {

template <class T>
struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<T> val;

  offset_t nnz() const { return static_cast<offset_t>(val.size()); }

  void reserve(std::size_t n) {
    row.reserve(n);
    col.reserve(n);
    val.reserve(n);
  }

  void push_back(index_t r, index_t c, T v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }

  /// True if every entry is inside [0, rows) x [0, cols) and the three
  /// arrays have equal length.
  bool well_formed() const;

  /// Sort entries into row-major order and merge duplicate coordinates by
  /// summing their values (standard finite-element assembly semantics).
  void sort_and_combine();

  /// True if entries are in strictly increasing row-major order
  /// (which also implies there are no duplicates).
  bool is_sorted_unique() const;
};

extern template struct Coo<double>;
extern template struct Coo<float>;

}  // namespace tsg
