#include "matrix/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

namespace tsg {

namespace {

template <class T>
bool value_close(T a, T b, const CompareOptions& opt) {
  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  const double scale = std::max({std::fabs(da), std::fabs(db), opt.abs_floor});
  return std::fabs(da - db) <= opt.rel_tol * scale;
}

/// One row as (col, val) pairs with optional zero pruning.
template <class T>
void extract_row(const Csr<T>& m, index_t i, const CompareOptions& opt,
                 std::vector<std::pair<index_t, T>>& out) {
  out.clear();
  for (offset_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
    if (opt.prune_zeros && std::fabs(static_cast<double>(m.val[k])) <= opt.prune_tol) continue;
    out.emplace_back(m.col_idx[k], m.val[k]);
  }
}

}  // namespace

template <class T>
CompareResult compare(const Csr<T>& a, const Csr<T>& b, const CompareOptions& opt) {
  std::ostringstream err;
  if (a.rows != b.rows || a.cols != b.cols) {
    err << "dimension mismatch: " << a.rows << "x" << a.cols << " vs " << b.rows << "x"
        << b.cols;
    return {false, err.str()};
  }
  std::vector<std::pair<index_t, T>> ra, rb;
  for (index_t i = 0; i < a.rows; ++i) {
    extract_row(a, i, opt, ra);
    extract_row(b, i, opt, rb);
    if (ra.size() != rb.size()) {
      err << "row " << i << ": nnz " << ra.size() << " vs " << rb.size();
      return {false, err.str()};
    }
    for (std::size_t k = 0; k < ra.size(); ++k) {
      if (ra[k].first != rb[k].first) {
        err << "row " << i << " entry " << k << ": column " << ra[k].first << " vs "
            << rb[k].first;
        return {false, err.str()};
      }
      if (!value_close(ra[k].second, rb[k].second, opt)) {
        err << "row " << i << " col " << ra[k].first << ": value "
            << static_cast<double>(ra[k].second) << " vs "
            << static_cast<double>(rb[k].second);
        return {false, err.str()};
      }
    }
  }
  return {true, {}};
}

template CompareResult compare(const Csr<double>&, const Csr<double>&, const CompareOptions&);
template CompareResult compare(const Csr<float>&, const Csr<float>&, const CompareOptions&);

}  // namespace tsg
