#include "matrix/convert.h"

#include <utility>

#include "common/prefix_sum.h"

namespace tsg {

template <class T>
Csr<T> coo_to_csr(Coo<T> coo) {
  coo.sort_and_combine();
  Csr<T> a(coo.rows, coo.cols);
  const std::size_t n = coo.val.size();
  a.col_idx.resize(n);
  a.val.resize(n);
  for (std::size_t k = 0; k < n; ++k) a.row_ptr[static_cast<std::size_t>(coo.row[k]) + 1]++;
  for (index_t i = 0; i < coo.rows; ++i) a.row_ptr[i + 1] += a.row_ptr[i];
  // Entries are already row-major sorted, so a straight copy preserves
  // per-row column order.
  for (std::size_t k = 0; k < n; ++k) {
    a.col_idx[k] = coo.col[k];
    a.val[k] = coo.val[k];
  }
  return a;
}

template <class T>
Coo<T> csr_to_coo(const Csr<T>& a) {
  Coo<T> coo;
  coo.rows = a.rows;
  coo.cols = a.cols;
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      coo.push_back(i, a.col_idx[k], a.val[k]);
    }
  }
  return coo;
}

template <class T>
Csc<T> csr_to_csc(const Csr<T>& a) {
  Csc<T> b;
  b.rows = a.rows;
  b.cols = a.cols;
  b.col_ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  b.row_idx.resize(static_cast<std::size_t>(a.nnz()));
  b.val.resize(static_cast<std::size_t>(a.nnz()));

  for (std::size_t k = 0; k < a.col_idx.size(); ++k) {
    b.col_ptr[static_cast<std::size_t>(a.col_idx[k]) + 1]++;
  }
  for (index_t j = 0; j < a.cols; ++j) b.col_ptr[j + 1] += b.col_ptr[j];

  tracked_vector<offset_t> cursor(b.col_ptr.begin(), b.col_ptr.end() - 1);
  // Walking rows in increasing order makes row indices within each column
  // come out sorted.
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const offset_t dst = cursor[a.col_idx[k]]++;
      b.row_idx[dst] = i;
      b.val[dst] = a.val[k];
    }
  }
  return b;
}

template <class T>
Csr<T> csc_to_csr_of_transpose(Csc<T> a) {
  Csr<T> t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr = std::move(a.col_ptr);
  t.col_idx = std::move(a.row_idx);
  t.val = std::move(a.val);
  return t;
}

template Csr<double> coo_to_csr(Coo<double>);
template Csr<float> coo_to_csr(Coo<float>);
template Coo<double> csr_to_coo(const Csr<double>&);
template Coo<float> csr_to_coo(const Csr<float>&);
template Csc<double> csr_to_csc(const Csr<double>&);
template Csc<float> csr_to_csc(const Csr<float>&);
template Csr<double> csc_to_csr_of_transpose(Csc<double>);
template Csr<float> csc_to_csr_of_transpose(Csc<float>);

}  // namespace tsg
