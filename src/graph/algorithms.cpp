#include "graph/algorithms.h"

#include <cmath>
#include <stdexcept>

#include "core/semiring_spgemm.h"
#include "core/tile_convert.h"
#include "core/tile_transpose.h"
#include "matrix/convert.h"
#include "matrix/ops.h"

namespace tsg::graph {

tracked_vector<index_t> bfs_levels(const Csr<double>& adj, index_t source) {
  if (adj.rows != adj.cols) throw std::invalid_argument("bfs: adjacency must be square");
  if (source < 0 || source >= adj.rows) throw std::invalid_argument("bfs: bad source");
  const index_t n = adj.rows;

  // (A^T x)[j] = OR_i (A[i][j] AND x[i]): out-neighbour expansion of the
  // frontier. Transpose once, in tile form.
  const TileMatrix<double> at = tile_transpose(csr_to_tile(adj));

  tracked_vector<index_t> level(static_cast<std::size_t>(n), -1);
  tracked_vector<double> frontier(static_cast<std::size_t>(n), 0.0);
  tracked_vector<double> next;
  level[static_cast<std::size_t>(source)] = 0;
  frontier[static_cast<std::size_t>(source)] = 1.0;

  for (index_t depth = 1; depth <= n; ++depth) {
    tile_spmv_semiring<OrAnd<double>>(at, frontier, next);
    bool advanced = false;
    for (index_t v = 0; v < n; ++v) {
      const std::size_t sv = static_cast<std::size_t>(v);
      if (next[sv] != 0.0 && level[sv] < 0) {
        level[sv] = depth;
        frontier[sv] = 1.0;
        advanced = true;
      } else {
        frontier[sv] = 0.0;
      }
    }
    if (!advanced) break;
  }
  return level;
}

tracked_vector<double> apsp_min_plus(const Csr<double>& weights) {
  if (weights.rows != weights.cols) throw std::invalid_argument("apsp: square input needed");
  const index_t n = weights.rows;
  for (double w : weights.val) {
    if (w < 0.0) throw std::invalid_argument("apsp: negative weights unsupported");
  }

  // D_1 = min(W, 0 on the diagonal). The diagonal must be explicit so the
  // structural min-plus product can keep "stay in place" paths.
  Coo<double> coo = csr_to_coo(weights);
  for (index_t i = 0; i < n; ++i) coo.push_back(i, i, 0.0);
  Csr<double> d = coo_to_csr(std::move(coo));
  // Duplicate (i,i) entries were summed by coo_to_csr; force the diagonal
  // back to zero (a path of length 0 beats any self-loop).
  for (index_t i = 0; i < n; ++i) {
    for (offset_t k = d.row_ptr[i]; k < d.row_ptr[i + 1]; ++k) {
      if (d.col_idx[k] == i) d.val[k] = 0.0;
    }
  }

  // Repeated squaring: D_{2k} = D_k (min.+) D_k, log2(n) rounds.
  TileMatrix<double> td = csr_to_tile(d);
  const int rounds = n > 1 ? static_cast<int>(std::ceil(std::log2(n))) : 0;
  for (int r = 0; r < rounds; ++r) {
    td = tile_spgemm_semiring<MinPlus<double>>(td, td);
  }
  const Csr<double> closure = tile_to_csr(td);

  tracked_vector<double> dist(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                              std::numeric_limits<double>::infinity());
  for (index_t i = 0; i < n; ++i) {
    for (offset_t k = closure.row_ptr[i]; k < closure.row_ptr[i + 1]; ++k) {
      dist[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(closure.col_idx[k])] = closure.val[k];
    }
  }
  return dist;
}

tracked_vector<index_t> connected_components(const Csr<double>& adj) {
  if (adj.rows != adj.cols) throw std::invalid_argument("components: square input needed");
  const index_t n = adj.rows;
  tracked_vector<index_t> label(static_cast<std::size_t>(n), -1);
  for (index_t v = 0; v < n; ++v) {
    if (label[static_cast<std::size_t>(v)] >= 0) continue;
    const tracked_vector<index_t> level = bfs_levels(adj, v);
    for (index_t u = 0; u < n; ++u) {
      if (level[static_cast<std::size_t>(u)] >= 0 && label[static_cast<std::size_t>(u)] < 0) {
        label[static_cast<std::size_t>(u)] = v;
      }
    }
  }
  return label;
}

}  // namespace tsg::graph
