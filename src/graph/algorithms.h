// Algebraic graph algorithms on the tiled kernels — the GraphBLAS-style
// applications the paper's introduction motivates (BFS, triangle counting,
// shortest paths). Each algorithm is a thin loop over semiring SpMV/SpGEMM
// calls, demonstrating that the tile format supports the whole family.
#pragma once

#include "matrix/csr.h"

namespace tsg::graph {

/// Breadth-first search over a directed adjacency pattern (entry (i,j)
/// means edge i -> j; values are ignored). Returns per-vertex levels:
/// 0 for the source, -1 for unreachable vertices.
/// Implemented as repeated (or, and) SpMV of A^T against the frontier.
tracked_vector<index_t> bfs_levels(const Csr<double>& adj, index_t source);

/// All-pairs shortest paths on a non-negatively weighted directed graph by
/// (min, +) repeated squaring: ceil(log2(n)) tiled semiring SpGEMMs.
/// Returns a dense n*n row-major distance array; unreachable pairs hold
/// +infinity, the diagonal holds 0.
tracked_vector<double> apsp_min_plus(const Csr<double>& weights);

/// Weakly-connected component labels of an undirected graph (pattern must
/// be symmetric): label[v] = smallest vertex id in v's component.
/// Implemented as BFS sweeps over the (or, and) semiring.
tracked_vector<index_t> connected_components(const Csr<double>& adj);

}  // namespace tsg::graph
