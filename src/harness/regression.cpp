#include "harness/regression.h"

#include <cmath>
#include <cstddef>

namespace tsg {

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  if (n < 2) return fit;

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double geometric_mean(const std::vector<double>& v) {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (double x : v) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++count;
    }
  }
  return count > 0 ? std::exp(log_sum / static_cast<double>(count)) : 0.0;
}

}  // namespace tsg
