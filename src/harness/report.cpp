#include "harness/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace tsg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    out << "+";
    for (std::size_t w : width) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << std::setw(static_cast<int>(width[c])) << std::left << cells[c] << " |";
    }
    out << "\n";
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& out) const {
  auto csv_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ",";
      out << cells[c];
    }
    out << "\n";
  };
  csv_line(headers_);
  for (const auto& row : rows_) csv_line(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_bytes(std::size_t bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024.0 * 1024.0) return fmt(b / (1024.0 * 1024.0 * 1024.0)) + " GB";
  if (b >= 1024.0 * 1024.0) return fmt(b / (1024.0 * 1024.0)) + " MB";
  if (b >= 1024.0) return fmt(b / 1024.0) + " KB";
  return fmt(b, 0) + " B";
}

std::string fmt_count(long long v) {
  const double d = static_cast<double>(v);
  if (d >= 1e9) return fmt(d / 1e9, 1) + "B";
  if (d >= 1e6) return fmt(d / 1e6, 1) + "M";
  if (d >= 1e3) return fmt(d / 1e3, 1) + "K";
  return std::to_string(v);
}

std::string fmt_chunks(int chunks, bool budget_limited) {
  return std::to_string(chunks) + (budget_limited ? "*" : "");
}

}  // namespace tsg
