// Plain-text table / CSV emitters for the bench binaries. Every bench
// prints the same rows/series as the corresponding paper table or figure,
// so EXPERIMENTS.md can be checked against the paper side by side.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tsg {

/// Column-aligned text table with an optional CSV dump.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Aligned, boxed plain-text rendering.
  void print(std::ostream& out) const;

  /// Comma-separated rendering (header first).
  void print_csv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string fmt(double v, int precision = 2);

/// Human-friendly byte count ("12.3 MB").
std::string fmt_bytes(std::size_t bytes);

/// Large-count formatting with K/M/B suffixes ("1.1B", "4.3M").
std::string fmt_count(long long v);

/// Budget-outcome cell: the chunk count, starred when the device budget
/// forced the split ("1", "3*"). Every bench that prints a chunks column
/// uses this so degraded runs look the same everywhere.
std::string fmt_chunks(int chunks, bool budget_limited);

}  // namespace tsg
