// Small statistics helpers for the figure harnesses: the linear regressions
// of Fig. 6 and the geometric-mean speedups quoted in Section 4.
#pragma once

#include <vector>

namespace tsg {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y = slope*x + intercept.
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Geometric mean; non-positive entries are skipped (they carry no ratio
/// information). Returns 0 when nothing remains.
double geometric_mean(const std::vector<double>& v);

}  // namespace tsg
