// Experiment runner: times every registered SpGEMM method on a workload,
// with the throughput / memory metrics the paper's figures report.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "gen/representative.h"
#include "matrix/csr.h"
#include "obs/metrics.h"

namespace tsg {

using gen::NamedMatrix;

/// Which product the experiment computes (the artifact's -aat flag).
enum class SpgemmOp {
  kASquared,  ///< C = A^2
  kAAT,       ///< C = A * A^T
};

struct Measurement {
  std::string matrix;
  std::string algorithm;
  bool ok = false;         ///< false if the method threw (e.g. bad_alloc)
  double ms = 0.0;         ///< best-of-reps wall time
  double gflops = 0.0;
  offset_t flops = 0;      ///< 2 * intermediate products
  offset_t nnz_c = 0;
  double compression_rate = 0.0;
  double peak_mb = 0.0;    ///< tracked peak workspace during the run
  int chunks = 1;          ///< budget-forced execution chunks (tile method; 1 = single shot)
  bool budget_limited = false;  ///< true when the device budget forced chunking
  /// Registry activity across all reps of this measurement (counters and
  /// histograms as deltas, gauges as end values). Always populated; the
  /// per-tile detail metrics inside it are zero unless the detail gate was
  /// on (obs::set_metrics_detail_enabled / TSG_METRICS).
  std::shared_ptr<const obs::MetricsSnapshot> metrics;
};

/// Number of timed repetitions (minimum is reported). Reads TSG_BENCH_REPS,
/// default 1 (single-core budget).
int bench_reps();

/// Time one algorithm on C = op(A). Tracks peak workspace per run.
Measurement measure(const NamedMatrix& m, const SpgemmAlgorithm& algo, SpgemmOp op,
                    int reps = bench_reps());

/// Run the full method list over a suite; returns measurements grouped by
/// matrix (suite order), method order as in `algorithms`.
std::vector<Measurement> measure_suite(const std::vector<NamedMatrix>& suite,
                                       const std::vector<SpgemmAlgorithm>& algorithms,
                                       SpgemmOp op);

/// One line per budget-degraded measurement ("matrix/method: N chunks"),
/// so chunked runs are visible in every bench that prints tables. Silent
/// when nothing degraded.
void print_budget_summary(std::ostream& out, const std::vector<Measurement>& results);

}  // namespace tsg
