#include "harness/runner.h"

#include <cstdlib>
#include <exception>
#include <ostream>

#include "common/memory.h"
#include "common/status.h"
#include "common/timer.h"
#include "matrix/stats.h"
#include "matrix/transpose.h"

namespace tsg {

int bench_reps() {
  static const int reps = [] {
    if (const char* env = std::getenv("TSG_BENCH_REPS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    return 1;  // single-core default; raise via TSG_BENCH_REPS for stability
  }();
  return reps;
}

Measurement measure(const NamedMatrix& m, const SpgemmAlgorithm& algo, SpgemmOp op,
                    int reps) {
  Measurement out;
  out.matrix = m.name;
  out.algorithm = algo.name;

  const Csr<double>& a = m.a;
  Csr<double> bt;
  const Csr<double>* b = &a;
  if (op == SpgemmOp::kAAT) {
    bt = transpose(a);
    b = &bt;
  }
  out.flops = spgemm_flops(a, *b);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::instance().snapshot();
  try {
    double best_ms = -1.0;
    for (int r = 0; r < reps; ++r) {
      const SpgemmRunReport rep = algo.profiled(a, *b);
      if (best_ms < 0.0 || rep.core_ms < best_ms) best_ms = rep.core_ms;
      out.peak_mb = rep.peak_mb > out.peak_mb ? rep.peak_mb : out.peak_mb;
      out.nnz_c = rep.c.nnz();
      out.chunks = rep.chunks > out.chunks ? rep.chunks : out.chunks;
      out.budget_limited = out.budget_limited || rep.budget_limited;
    }
    out.ms = best_ms;
    out.gflops = gflops(out.flops, out.ms);
    out.compression_rate = compression_rate(out.flops / 2, out.nnz_c);
    out.ok = true;
  } catch (const std::exception&) {
    out.ok = false;  // mirrors the paper's "0.00" bars for failing methods
  }
  out.metrics = std::make_shared<const obs::MetricsSnapshot>(
      obs::MetricsSnapshot::delta(before, obs::MetricsRegistry::instance().snapshot()));
  return out;
}

std::vector<Measurement> measure_suite(const std::vector<NamedMatrix>& suite,
                                       const std::vector<SpgemmAlgorithm>& algorithms,
                                       SpgemmOp op) {
  std::vector<Measurement> results;
  results.reserve(checked_size_mul(suite.size(), algorithms.size()));
  for (const NamedMatrix& m : suite) {
    for (const SpgemmAlgorithm& algo : algorithms) {
      results.push_back(measure(m, algo, op));
    }
  }
  return results;
}

void print_budget_summary(std::ostream& out, const std::vector<Measurement>& results) {
  bool any = false;
  for (const Measurement& m : results) {
    if (!m.budget_limited) continue;
    if (!any) out << "budget-limited runs (graceful degradation):\n";
    any = true;
    out << "  " << m.matrix << " / " << m.algorithm << ": " << m.chunks
        << " execution chunks\n";
  }
}

}  // namespace tsg
