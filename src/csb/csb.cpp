#include "csb/csb.h"

#include <algorithm>

#include "common/bitops.h"
#include "matrix/convert.h"

namespace tsg {

std::uint16_t morton_encode(index_t row, index_t col) {
  std::uint16_t code = 0;
  for (int bit = 0; bit < 8; ++bit) {
    code = static_cast<std::uint16_t>(code | ((col >> bit) & 1) << (2 * bit));
    code = static_cast<std::uint16_t>(code | ((row >> bit) & 1) << (2 * bit + 1));
  }
  return code;
}

void morton_decode(std::uint16_t code, index_t& row, index_t& col) {
  row = 0;
  col = 0;
  for (int bit = 0; bit < 8; ++bit) {
    col |= static_cast<index_t>((code >> (2 * bit)) & 1) << bit;
    row |= static_cast<index_t>((code >> (2 * bit + 1)) & 1) << bit;
  }
}

template <class T>
std::size_t Csb<T>::bytes() const {
  return blk_ptr.size() * sizeof(offset_t) + morton.size() * sizeof(std::uint16_t) +
         local_row.size() * sizeof(std::uint8_t) + local_col.size() * sizeof(std::uint8_t) +
         val.size() * sizeof(T);
}

template <class T>
Csb<T> csr_to_csb(const Csr<T>& a, CsbKind kind) {
  Csb<T> m;
  m.kind = kind;
  m.rows = a.rows;
  m.cols = a.cols;
  m.block_rows = ceil_div(a.rows, kCsbBeta);
  m.block_cols = ceil_div(a.cols, kCsbBeta);
  const std::size_t grid =
      static_cast<std::size_t>(m.block_rows) * static_cast<std::size_t>(m.block_cols);
  m.blk_ptr.assign(grid + 1, 0);

  // Count nonzeros per block.
  for (index_t i = 0; i < a.rows; ++i) {
    const std::size_t brow = static_cast<std::size_t>(i / kCsbBeta);
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const std::size_t block = brow * static_cast<std::size_t>(m.block_cols) +
                                static_cast<std::size_t>(a.col_idx[k] / kCsbBeta);
      m.blk_ptr[block + 1]++;
    }
  }
  for (std::size_t g = 0; g < grid; ++g) m.blk_ptr[g + 1] += m.blk_ptr[g];

  const std::size_t n = static_cast<std::size_t>(a.nnz());
  m.val.resize(n);
  if (kind == CsbKind::kMorton) {
    m.morton.resize(n);
  } else {
    m.local_row.resize(n);
    m.local_col.resize(n);
  }

  tracked_vector<offset_t> cursor(m.blk_ptr.begin(), m.blk_ptr.end() - 1);
  for (index_t i = 0; i < a.rows; ++i) {
    const std::size_t brow = static_cast<std::size_t>(i / kCsbBeta);
    const index_t lr = i % kCsbBeta;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t col = a.col_idx[k];
      const std::size_t block = brow * static_cast<std::size_t>(m.block_cols) +
                                static_cast<std::size_t>(col / kCsbBeta);
      const offset_t dst = cursor[block]++;
      if (kind == CsbKind::kMorton) {
        m.morton[dst] = morton_encode(lr, col % kCsbBeta);
      } else {
        m.local_row[dst] = static_cast<std::uint8_t>(lr);
        m.local_col[dst] = static_cast<std::uint8_t>(col % kCsbBeta);
      }
      m.val[dst] = a.val[k];
    }
  }
  return m;
}

template <class T>
Csr<T> csb_to_csr(const Csb<T>& m) {
  Coo<T> coo;
  coo.rows = m.rows;
  coo.cols = m.cols;
  coo.reserve(static_cast<std::size_t>(m.nnz()));
  for (index_t br = 0; br < m.block_rows; ++br) {
    for (index_t bc = 0; bc < m.block_cols; ++bc) {
      const std::size_t block =
          static_cast<std::size_t>(br) * static_cast<std::size_t>(m.block_cols) +
          static_cast<std::size_t>(bc);
      for (offset_t k = m.blk_ptr[block]; k < m.blk_ptr[block + 1]; ++k) {
        index_t lr, lc;
        if (m.kind == CsbKind::kMorton) {
          morton_decode(m.morton[k], lr, lc);
        } else {
          lr = m.local_row[k];
          lc = m.local_col[k];
        }
        coo.push_back(br * kCsbBeta + lr, bc * kCsbBeta + lc, m.val[k]);
      }
    }
  }
  return coo_to_csr(std::move(coo));
}

template struct Csb<double>;
template struct Csb<float>;
template Csb<double> csr_to_csb(const Csr<double>&, CsbKind);
template Csb<float> csr_to_csb(const Csr<float>&, CsbKind);
template Csr<double> csb_to_csr(const Csb<double>&);
template Csr<float> csb_to_csr(const Csb<float>&);

}  // namespace tsg
