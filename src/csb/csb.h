// Compressed Sparse Blocks (Buluç, Fineman, Frigo, Gilbert & Leiserson,
// SPAA'09) — the comparison formats of the paper's Fig. 11.
//
// The matrix is partitioned into beta-by-beta blocks (beta = 256 here so
// local indices fit 8 bits); *all* grid positions get an entry in a dense
// block-pointer array, and each nonzero stores only its local coordinates.
// Two index encodings:
//   * CSB-M: one 16-bit word per nonzero, row and column bits Morton
//            (Z-order) interleaved — the cache-oblivious original.
//   * CSB-I: two separate 8-bit local index arrays (row, column).
// Both are more compact than the TileSpGEMM structure because they keep no
// per-tile row pointers or bit masks; Fig. 11 quantifies that trade-off.
#pragma once

#include <cstddef>
#include <cstdint>

#include "matrix/csr.h"

namespace tsg {

/// Block edge length; local indices must fit 8 bits.
inline constexpr index_t kCsbBeta = 256;

enum class CsbKind {
  kMorton,   ///< CSB-M: packed 16-bit Morton local index per nonzero
  kIndexed,  ///< CSB-I: separate 8-bit row / column local indices
};

template <class T>
struct Csb {
  CsbKind kind = CsbKind::kMorton;
  index_t rows = 0;
  index_t cols = 0;
  index_t block_rows = 0;  ///< ceil(rows/beta)
  index_t block_cols = 0;  ///< ceil(cols/beta)

  /// Dense row-major grid of block offsets, size block_rows*block_cols+1.
  tracked_vector<offset_t> blk_ptr;
  /// CSB-M payload: Morton-interleaved (row, col) local indices.
  tracked_vector<std::uint16_t> morton;
  /// CSB-I payload.
  tracked_vector<std::uint8_t> local_row;
  tracked_vector<std::uint8_t> local_col;
  tracked_vector<T> val;

  offset_t nnz() const { return blk_ptr.empty() ? 0 : blk_ptr.back(); }
  std::size_t bytes() const;
};

/// Interleave two 8-bit coordinates into a 16-bit Morton code (row bits at
/// odd positions, column bits at even positions).
std::uint16_t morton_encode(index_t row, index_t col);
void morton_decode(std::uint16_t code, index_t& row, index_t& col);

template <class T>
Csb<T> csr_to_csb(const Csr<T>& a, CsbKind kind);

template <class T>
Csr<T> csb_to_csr(const Csb<T>& m);

extern template struct Csb<double>;
extern template struct Csb<float>;
extern template Csb<double> csr_to_csb(const Csr<double>&, CsbKind);
extern template Csb<float> csr_to_csb(const Csr<float>&, CsbKind);
extern template Csr<double> csb_to_csr(const Csb<double>&);
extern template Csr<float> csb_to_csr(const Csb<float>&);

}  // namespace tsg
