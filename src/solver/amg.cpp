#include "solver/amg.h"

#include <cmath>
#include <stdexcept>

#include "common/status.h"
#include "core/tile_convert.h"
#include "core/tile_spmv.h"
#include "core/tile_spgemm.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "matrix/spmv.h"
#include "matrix/transpose.h"

namespace tsg::solver {

namespace {

tracked_vector<double> diagonal_of(const Csr<double>& a) {
  tracked_vector<double> d(static_cast<std::size_t>(a.rows), 0.0);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i) d[static_cast<std::size_t>(i)] = a.val[k];
    }
  }
  return d;
}

/// Tentative (piecewise-constant) prolongator from aggregate labels.
Csr<double> tentative_prolongator(const tracked_vector<index_t>& agg, index_t coarse_n) {
  Coo<double> coo;
  coo.rows = static_cast<index_t>(agg.size());
  coo.cols = coarse_n;
  for (index_t i = 0; i < coo.rows; ++i) {
    coo.push_back(i, agg[static_cast<std::size_t>(i)], 1.0);
  }
  return coo_to_csr(std::move(coo));
}

double dot(const tracked_vector<double>& x, const tracked_vector<double>& y) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

}  // namespace

tracked_vector<index_t> aggregate(const Csr<double>& a, double strength_threshold) {
  const index_t n = a.rows;
  const tracked_vector<double> diag = diagonal_of(a);
  tracked_vector<index_t> agg(static_cast<std::size_t>(n), -1);

  auto strong = [&](index_t i, index_t j, double v) {
    if (i == j) return false;
    const double scale = std::sqrt(std::fabs(diag[static_cast<std::size_t>(i)] *
                                             diag[static_cast<std::size_t>(j)]));
    return std::fabs(v) >= strength_threshold * (scale > 0 ? scale : 1.0);
  };

  // Pass 1: root points seed aggregates with their whole strong
  // neighbourhood (classic greedy aggregation).
  index_t next = 0;
  for (index_t i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] >= 0) continue;
    bool taken = false;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1] && !taken; ++k) {
      const index_t j = a.col_idx[k];
      if (strong(i, j, a.val[k]) && agg[static_cast<std::size_t>(j)] >= 0) taken = true;
    }
    if (taken) continue;  // pass 2 attaches it to a neighbour aggregate
    agg[static_cast<std::size_t>(i)] = next;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t j = a.col_idx[k];
      if (strong(i, j, a.val[k]) && agg[static_cast<std::size_t>(j)] < 0) {
        agg[static_cast<std::size_t>(j)] = next;
      }
    }
    ++next;
  }
  // Pass 2: attach stragglers to any strong neighbour's aggregate, or give
  // isolated vertices their own.
  for (index_t i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] >= 0) continue;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t j = a.col_idx[k];
      if (strong(i, j, a.val[k]) && agg[static_cast<std::size_t>(j)] >= 0) {
        agg[static_cast<std::size_t>(i)] = agg[static_cast<std::size_t>(j)];
        break;
      }
    }
    if (agg[static_cast<std::size_t>(i)] < 0) agg[static_cast<std::size_t>(i)] = next++;
  }
  return agg;
}

AmgHierarchy::AmgHierarchy(const Csr<double>& a, const AmgOptions& options)
    : options_(options) {
  if (a.rows != a.cols) throw std::invalid_argument("amg: matrix must be square");

  Csr<double> current = a;
  for (int l = 0; l < options.max_levels; ++l) {
    AmgLevel lvl;
    lvl.a = current;
    lvl.a_tile = csr_to_tile(current);
    lvl.inv_diag.assign(static_cast<std::size_t>(current.rows), 0.0);
    const tracked_vector<double> diag = diagonal_of(current);
    for (std::size_t i = 0; i < diag.size(); ++i) {
      lvl.inv_diag[i] = diag[i] != 0.0 ? 1.0 / diag[i] : 0.0;
    }
    const bool coarsest =
        current.rows <= options.coarse_size || l == options.max_levels - 1;
    if (!coarsest) {
      const tracked_vector<index_t> agg = aggregate(current, options.strength_threshold);
      index_t coarse_n = 0;
      for (index_t id : agg) coarse_n = std::max(coarse_n, id + 1);
      if (coarse_n >= current.rows) {
        // Aggregation stalled (e.g. diagonal matrix): stop coarsening.
        levels_.push_back(std::move(lvl));
        break;
      }
      Csr<double> p = tentative_prolongator(agg, coarse_n);
      if (options.smooth_prolongator) {
        // P = (I - omega D^-1 A) T : one SpGEMM plus a scaled add.
        Csr<double> da = current;  // D^-1 A
        for (index_t i = 0; i < da.rows; ++i) {
          for (offset_t k = da.row_ptr[i]; k < da.row_ptr[i + 1]; ++k) {
            da.val[k] *= lvl.inv_diag[static_cast<std::size_t>(i)];
          }
        }
        const Csr<double> dap = spgemm_tile(da, p);
        p = add(p, dap, 1.0, -options.jacobi_omega);
      }
      lvl.p = p;
      lvl.r = transpose(p);

      // Galerkin product via two tiled SpGEMMs.
      const Csr<double> ap = spgemm_tile(current, p);
      current = spgemm_tile(lvl.r, ap);
      levels_.push_back(std::move(lvl));
    } else {
      levels_.push_back(std::move(lvl));
      break;
    }
  }

  // Dense LU with partial pivoting of the coarsest operator.
  const Csr<double>& coarse = levels_.back().a;
  coarse_n_ = coarse.rows;
  coarse_lu_.assign(checked_size_mul(static_cast<std::size_t>(coarse_n_), coarse_n_), 0.0);
  coarse_piv_.resize(static_cast<std::size_t>(coarse_n_));
  for (index_t i = 0; i < coarse_n_; ++i) {
    for (offset_t k = coarse.row_ptr[i]; k < coarse.row_ptr[i + 1]; ++k) {
      coarse_lu_[static_cast<std::size_t>(i) * coarse_n_ + coarse.col_idx[k]] = coarse.val[k];
    }
  }
  for (index_t c = 0; c < coarse_n_; ++c) {
    index_t pivot = c;
    for (index_t r = c + 1; r < coarse_n_; ++r) {
      if (std::fabs(coarse_lu_[static_cast<std::size_t>(r) * coarse_n_ + c]) >
          std::fabs(coarse_lu_[static_cast<std::size_t>(pivot) * coarse_n_ + c])) {
        pivot = r;
      }
    }
    coarse_piv_[static_cast<std::size_t>(c)] = pivot;
    if (pivot != c) {
      for (index_t j = 0; j < coarse_n_; ++j) {
        std::swap(coarse_lu_[static_cast<std::size_t>(c) * coarse_n_ + j],
                  coarse_lu_[static_cast<std::size_t>(pivot) * coarse_n_ + j]);
      }
    }
    const double d = coarse_lu_[static_cast<std::size_t>(c) * coarse_n_ + c];
    if (d == 0.0) continue;  // singular block; solve leaves it unchanged
    for (index_t r = c + 1; r < coarse_n_; ++r) {
      const double f = coarse_lu_[static_cast<std::size_t>(r) * coarse_n_ + c] / d;
      coarse_lu_[static_cast<std::size_t>(r) * coarse_n_ + c] = f;
      for (index_t j = c + 1; j < coarse_n_; ++j) {
        coarse_lu_[static_cast<std::size_t>(r) * coarse_n_ + j] -=
            f * coarse_lu_[static_cast<std::size_t>(c) * coarse_n_ + j];
      }
    }
  }
}

void AmgHierarchy::smooth(const AmgLevel& lvl, tracked_vector<double>& x,
                          const tracked_vector<double>& b, int sweeps) const {
  tracked_vector<double> ax;
  for (int s = 0; s < sweeps; ++s) {
    tile_spmv(lvl.a_tile, x, ax);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += options_.jacobi_omega * lvl.inv_diag[i] * (b[i] - ax[i]);
    }
  }
}

void AmgHierarchy::coarse_solve(tracked_vector<double>& x,
                                const tracked_vector<double>& b) const {
  x = b;
  for (index_t c = 0; c < coarse_n_; ++c) {
    std::swap(x[static_cast<std::size_t>(c)],
              x[static_cast<std::size_t>(coarse_piv_[static_cast<std::size_t>(c)])]);
  }
  for (index_t r = 0; r < coarse_n_; ++r) {  // forward
    for (index_t j = 0; j < r; ++j) {
      x[static_cast<std::size_t>(r)] -=
          coarse_lu_[static_cast<std::size_t>(r) * coarse_n_ + j] *
          x[static_cast<std::size_t>(j)];
    }
  }
  for (index_t r = coarse_n_; r-- > 0;) {  // backward
    for (index_t j = r + 1; j < coarse_n_; ++j) {
      x[static_cast<std::size_t>(r)] -=
          coarse_lu_[static_cast<std::size_t>(r) * coarse_n_ + j] *
          x[static_cast<std::size_t>(j)];
    }
    const double d = coarse_lu_[static_cast<std::size_t>(r) * coarse_n_ + r];
    if (d != 0.0) x[static_cast<std::size_t>(r)] /= d;
  }
}

void AmgHierarchy::cycle(std::size_t l, tracked_vector<double>& x,
                         const tracked_vector<double>& b) const {
  const AmgLevel& lvl = levels_[l];
  if (l + 1 == levels_.size()) {
    coarse_solve(x, b);
    return;
  }
  smooth(lvl, x, b, options_.pre_smooth);

  // Residual restriction: r_c = R (b - A x).
  tracked_vector<double> ax;
  tile_spmv(lvl.a_tile, x, ax);
  tracked_vector<double> res(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) res[i] = b[i] - ax[i];
  tracked_vector<double> rc;
  spmv(lvl.r, res, rc);

  tracked_vector<double> xc(rc.size(), 0.0);
  cycle(l + 1, xc, rc);

  // Prolongate and correct.
  tracked_vector<double> correction;
  spmv(lvl.p, xc, correction);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += correction[i];

  smooth(lvl, x, b, options_.post_smooth);
}

void AmgHierarchy::v_cycle(tracked_vector<double>& x,
                           const tracked_vector<double>& b) const {
  cycle(0, x, b);
}

int AmgHierarchy::solve(tracked_vector<double>& x, const tracked_vector<double>& b,
                        double rel_tol, int max_iterations) const {
  const AmgLevel& fine = levels_.front();
  const double b_norm = std::sqrt(dot(b, b));
  if (b_norm == 0.0) {
    x.assign(b.size(), 0.0);
    return 0;
  }
  tracked_vector<double> ax;
  for (int it = 1; it <= max_iterations; ++it) {
    v_cycle(x, b);
    tile_spmv(fine.a_tile, x, ax);
    double res = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      const double r = b[i] - ax[i];
      res += r * r;
    }
    if (std::sqrt(res) <= rel_tol * b_norm) return it;
  }
  return -1;
}

double AmgHierarchy::operator_complexity() const {
  double total = 0.0;
  for (const AmgLevel& l : levels_) total += static_cast<double>(l.a.nnz());
  return total / static_cast<double>(levels_.front().a.nnz());
}

}  // namespace tsg::solver
