// Algebraic multigrid (smoothed aggregation) built on the tiled kernels.
//
// AMG is the paper's flagship SpGEMM consumer (Section 1 cites algebraic
// multigrid first; Section 4.6 uses AMG's chained products to justify the
// tile-format conversion cost). This module implements the full setup and
// solve cycle so the library exercises SpGEMM the way a real solver does:
//   setup:  strength graph -> greedy aggregation -> tentative prolongator
//           -> (optional) Jacobi smoothing of P  [SpGEMM + add]
//           -> Galerkin product A_{l+1} = R A_l P [two SpGEMMs]
//   solve:  V-cycle with weighted-Jacobi smoothing [tile SpMV],
//           dense LU on the coarsest level.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tile_format.h"
#include "matrix/csr.h"

namespace tsg::solver {

struct AmgOptions {
  double strength_threshold = 0.08;  ///< |a_ij| >= theta*sqrt(|a_ii a_jj|)
  double jacobi_omega = 2.0 / 3.0;   ///< smoother weight
  int pre_smooth = 1;
  int post_smooth = 1;
  index_t coarse_size = 64;          ///< stop coarsening at this size
  int max_levels = 12;
  bool smooth_prolongator = true;    ///< smoothed vs plain aggregation
};

struct AmgLevel {
  Csr<double> a;            ///< operator on this level
  TileMatrix<double> a_tile;///< the same operator in tile form (smoothing)
  tracked_vector<double> inv_diag;  ///< 1/a_ii for the Jacobi smoother
  Csr<double> p;            ///< prolongator to this level from level+1
  Csr<double> r;            ///< restriction (P^T)
};

class AmgHierarchy {
 public:
  /// Build the hierarchy for a symmetric positive-definite matrix.
  AmgHierarchy(const Csr<double>& a, const AmgOptions& options = {});

  /// One V-cycle applied to (b - A x): x is updated in place.
  void v_cycle(tracked_vector<double>& x, const tracked_vector<double>& b) const;

  /// Solve A x = b to a relative residual, returning iterations used
  /// (-1 if not converged within max_iterations).
  int solve(tracked_vector<double>& x, const tracked_vector<double>& b,
            double rel_tol = 1e-8, int max_iterations = 100) const;

  std::size_t levels() const { return levels_.size(); }
  const AmgLevel& level(std::size_t l) const { return levels_[l]; }

  /// Total operator nonzeros across levels divided by the fine nnz — the
  /// standard grid/operator complexity metric.
  double operator_complexity() const;

 private:
  void cycle(std::size_t l, tracked_vector<double>& x,
             const tracked_vector<double>& b) const;
  void smooth(const AmgLevel& lvl, tracked_vector<double>& x,
              const tracked_vector<double>& b, int sweeps) const;
  void coarse_solve(tracked_vector<double>& x, const tracked_vector<double>& b) const;

  AmgOptions options_;
  std::vector<AmgLevel> levels_;
  // Dense LU factors of the coarsest operator (row-major, in-place LU with
  // partial pivoting).
  tracked_vector<double> coarse_lu_;
  tracked_vector<index_t> coarse_piv_;
  index_t coarse_n_ = 0;
};

/// Greedy strength-based aggregation; exposed for testing. Returns the
/// aggregate id per vertex (all ids in [0, #aggregates)).
tracked_vector<index_t> aggregate(const Csr<double>& a, double strength_threshold);

}  // namespace tsg::solver
