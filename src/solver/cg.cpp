#include "solver/cg.h"

#include <cmath>

#include "core/tile_spmv.h"

namespace tsg::solver {

namespace {

double dot(const tracked_vector<double>& x, const tracked_vector<double>& y) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

}  // namespace

Preconditioner identity_preconditioner() {
  return [](tracked_vector<double>& z, const tracked_vector<double>& r) { z = r; };
}

Preconditioner amg_preconditioner(const AmgHierarchy& hierarchy) {
  return [&hierarchy](tracked_vector<double>& z, const tracked_vector<double>& r) {
    z.assign(r.size(), 0.0);
    hierarchy.v_cycle(z, r);
  };
}

CgResult conjugate_gradient(const TileMatrix<double>& a, const tracked_vector<double>& b,
                            tracked_vector<double>& x, const Preconditioner& precond,
                            double rel_tol, int max_iterations) {
  CgResult result;
  const std::size_t n = b.size();
  if (x.size() != n) x.assign(n, 0.0);

  tracked_vector<double> r(n), z(n), p(n), ap(n);
  tile_spmv(a, x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  const double b_norm = std::sqrt(dot(b, b));
  if (b_norm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  precond(z, r);
  p = z;
  double rz = dot(r, z);

  for (int it = 1; it <= max_iterations; ++it) {
    tile_spmv(a, p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or breakdown)
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double res_norm = std::sqrt(dot(r, r));
    result.iterations = it;
    result.relative_residual = res_norm / b_norm;
    if (result.relative_residual <= rel_tol) {
      result.converged = true;
      return result;
    }
    precond(z, r);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

}  // namespace tsg::solver
