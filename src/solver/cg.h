// Conjugate gradients with optional AMG preconditioning — completes the
// "sparse linear solver" story the paper opens with: the SpGEMMs build the
// AMG hierarchy, the tiled SpMV drives the Krylov iteration.
#pragma once

#include <functional>

#include "core/tile_format.h"
#include "solver/amg.h"

namespace tsg::solver {

struct CgResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;
};

/// Preconditioner interface: z = M^-1 r.
using Preconditioner =
    std::function<void(tracked_vector<double>& z, const tracked_vector<double>& r)>;

/// Identity preconditioner (plain CG).
Preconditioner identity_preconditioner();

/// One AMG V-cycle as the preconditioner.
Preconditioner amg_preconditioner(const AmgHierarchy& hierarchy);

/// Solve A x = b for SPD A in tile form.
CgResult conjugate_gradient(const TileMatrix<double>& a, const tracked_vector<double>& b,
                            tracked_vector<double>& x, const Preconditioner& precond,
                            double rel_tol = 1e-8, int max_iterations = 1000);

}  // namespace tsg::solver
