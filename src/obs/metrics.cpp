#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

namespace tsg::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

template <typename Pairs>
std::int64_t lookup(const Pairs& pairs, std::string_view name) {
  for (const auto& [k, v] : pairs) {
    if (k == name) return v;
  }
  return 0;
}

void write_pairs(std::ostream& out, const std::vector<std::pair<std::string, std::int64_t>>& pairs) {
  bool first = true;
  for (const auto& [name, value] : pairs) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << name << "\": " << value;
  }
}

void write_int_array(std::ostream& out, const std::vector<std::int64_t>& values) {
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    out << values[i];
  }
  out << "]";
}

}  // namespace

std::int64_t MetricsSnapshot::counter(std::string_view name) const {
  return lookup(counters, name);
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const { return lookup(gauges, name); }

const MetricsSnapshot::Hist* MetricsSnapshot::histogram(std::string_view name) const {
  for (const Hist& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.counters.reserve(after.counters.size());
  for (const auto& [name, value] : after.counters) {
    out.counters.emplace_back(name, value - lookup(before.counters, name));
  }
  out.gauges = after.gauges;
  out.histograms.reserve(after.histograms.size());
  for (const Hist& h : after.histograms) {
    Hist d = h;
    if (const Hist* b = before.histogram(h.name); b != nullptr && b->bounds == h.bounds) {
      for (std::size_t i = 0; i < d.counts.size() && i < b->counts.size(); ++i) {
        d.counts[i] -= b->counts[i];
      }
      d.count -= b->count;
      d.sum -= b->sum;
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  write_pairs(out, counters);
  out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  write_pairs(out, gauges);
  out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  bool first = true;
  for (const Hist& h : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << h.name << "\": {\"bounds\": ";
    write_int_array(out, h.bounds);
    out << ", \"counts\": ";
    write_int_array(out, h.counts);
    out << ", \"count\": " << h.count << ", \"sum\": " << h.sum << "}";
  }
  out << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::register_gauge(std::string_view name, std::function<std::int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[std::string(name)] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) snap.gauges.emplace_back(name, fn());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist out;
    out.name = name;
    out.bounds = h->bounds();
    out.counts = h->counts();
    out.count = 0;
    for (std::int64_t c : out.counts) out.count += c;
    out.sum = h->sum();
    snap.histograms.push_back(std::move(out));
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& out) const { snapshot().write_json(out); }

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

ParallelForScope::ParallelForScope(std::size_t total_tasks, int max_threads)
    : total_tasks_(total_tasks) {
  if (metrics_detail_enabled() && max_threads > 0) {
    per_thread_.assign(static_cast<std::size_t>(max_threads), 0);
  }
}

ParallelForScope::~ParallelForScope() {
  static Counter& calls = MetricsRegistry::instance().counter("parallel_for.calls");
  static Counter& tasks = MetricsRegistry::instance().counter("parallel_for.tasks");
  calls.inc();
  tasks.add(static_cast<std::int64_t>(total_tasks_));
  if (per_thread_.empty()) return;
  std::int64_t total = 0;
  std::int64_t max = 0;
  int active = 0;
  for (std::int64_t t : per_thread_) {
    total += t;
    max = std::max(max, t);
    if (t > 0) ++active;
  }
  if (total == 0 || active == 0) return;
  const double mean = static_cast<double>(total) / static_cast<double>(per_thread_.size());
  const double imbalance_pct = mean > 0 ? (static_cast<double>(max) - mean) / mean * 100.0 : 0.0;
  static Histogram& imbalance = MetricsRegistry::instance().histogram(
      "parallel_for.imbalance_pct", {1, 2, 5, 10, 25, 50, 100, 200});
  imbalance.observe(static_cast<std::int64_t>(imbalance_pct));
}

}  // namespace tsg::obs
