// SLO monitor and exporters — machine-readable health on top of the registry.
//
// The service layer already records everything an operator needs (the
// service.latency_us / service.queue_wait_us histograms, completion and
// failure counters); this layer turns those into answers:
//
//   * SloMonitor — windowed aggregation. Each observe() call diffs the
//     registry against the previous call (MetricsSnapshot::delta), estimates
//     p50/p99 from the latency histogram by linear interpolation within the
//     bucket, computes the window's error rate, and burns error budget:
//     the "slo.p99_burn" / "slo.error_burn" counters increment once per
//     violating window, so budget burn is itself a metric every exporter
//     carries.
//   * write_prometheus — text exposition format (v0.0.4). Counters map to
//     `counter`, gauges to `gauge`, histograms to the cumulative
//     `_bucket{le=...}` / `_sum` / `_count` family Prometheus expects.
//     Names are sanitised ('.' -> '_') and prefixed `tsg_`.
//   * SnapshotWriter — a background thread rewriting a Prometheus snapshot
//     file every period, so `--serve` / replay runs expose scrapeable state
//     without carrying an HTTP server dependency (node_exporter's textfile
//     collector pattern).
//
// Thresholds come from SloConfig; TSG_SLO_P99_MS / TSG_SLO_MAX_ERROR_RATE
// configure it from the environment. A threshold of 0 disables that check.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "common/contracts.h"
#include "obs/metrics.h"

namespace tsg::obs {

struct SloConfig {
  double target_p99_ms = 0.0;   ///< 0 = latency SLO disabled
  double max_error_rate = 0.0;  ///< fraction of finished requests; 0 = disabled

  bool any() const { return target_p99_ms > 0.0 || max_error_rate > 0.0; }

  /// TSG_SLO_P99_MS and TSG_SLO_MAX_ERROR_RATE (unset/invalid = disabled).
  static SloConfig from_env();
};

/// Quantile estimate (q in [0,1]) from a snapshot histogram: find the bucket
/// holding the q-th observation, interpolate linearly inside it. The
/// overflow bucket has no upper bound; its estimate is the last finite bound
/// (a floor — truthful enough for threshold checks). Returns 0 on an empty
/// histogram. Units are the histogram's native units.
double histogram_quantile(const MetricsSnapshot::Hist& hist, double q);

class SloMonitor {
 public:
  struct Report {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::int64_t completed = 0;  ///< window completions
    std::int64_t failed = 0;     ///< window failures
    double error_rate = 0.0;     ///< failed / (completed + failed), 0 if none
    bool p99_violated = false;
    bool error_violated = false;
    bool ok() const { return !p99_violated && !error_violated; }
  };

  /// `latency_hist` must be a microsecond histogram in the registry
  /// (default: the service layer's).
  explicit SloMonitor(SloConfig cfg, std::string latency_hist = "service.latency_us",
                      std::string completed_counter = "service.completed",
                      std::string failed_counter = "service.failed");

  /// Close the current window: diff the registry against the last observe(),
  /// evaluate the thresholds, and burn budget counters on violation.
  Report observe();

  const SloConfig& config() const { return cfg_; }

 private:
  SloConfig cfg_;
  std::string latency_hist_;
  std::string completed_counter_;
  std::string failed_counter_;
  MetricsSnapshot last_;
  Counter& p99_burn_;
  Counter& error_burn_;
};

/// Prometheus text exposition (v0.0.4) of a snapshot.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

/// Convenience: snapshot the registry and atomically replace `path`
/// (write to `<path>.tmp`, then rename). Returns false on IO failure.
bool write_prometheus_file(const std::string& path);

/// Background periodic Prometheus snapshot writer (textfile-collector
/// pattern). start() is idempotent; the destructor stops the thread.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void start(std::string path, std::chrono::milliseconds period);
  void stop();  ///< writes one final snapshot so the file reflects the end state

 private:
  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ TSG_GUARDED_BY(mutex_) = false;
  std::string path_;
  std::chrono::milliseconds period_{1000};
  std::thread thread_;
};

}  // namespace tsg::obs
