#include "obs/slo.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <string_view>

namespace tsg::obs {

namespace {

double parse_env_double(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return 0.0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed < 0.0) return 0.0;
  return parsed;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted
/// names map '.' (and anything else illegal) to '_', prefixed "tsg_".
std::string prom_name(std::string_view name) {
  std::string out = "tsg_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

SloConfig SloConfig::from_env() {
  SloConfig cfg;
  cfg.target_p99_ms = parse_env_double("TSG_SLO_P99_MS");
  cfg.max_error_rate = parse_env_double("TSG_SLO_MAX_ERROR_RATE");
  return cfg;
}

double histogram_quantile(const MetricsSnapshot::Hist& hist, double q) {
  if (hist.count <= 0 || hist.counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(hist.count);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    const std::int64_t in_bucket = hist.counts[i];
    if (in_bucket <= 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= hist.bounds.size()) {
        // Overflow bucket: no upper bound to interpolate toward; report the
        // last finite bound as a floor estimate.
        return hist.bounds.empty() ? 0.0 : static_cast<double>(hist.bounds.back());
      }
      const double lower = i == 0 ? 0.0 : static_cast<double>(hist.bounds[i - 1]);
      const double upper = static_cast<double>(hist.bounds[i]);
      const double into = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return hist.bounds.empty() ? 0.0 : static_cast<double>(hist.bounds.back());
}

SloMonitor::SloMonitor(SloConfig cfg, std::string latency_hist,
                       std::string completed_counter, std::string failed_counter)
    : cfg_(cfg),
      latency_hist_(std::move(latency_hist)),
      completed_counter_(std::move(completed_counter)),
      failed_counter_(std::move(failed_counter)),
      last_(MetricsRegistry::instance().snapshot()),
      p99_burn_(MetricsRegistry::instance().counter("slo.p99_burn")),
      error_burn_(MetricsRegistry::instance().counter("slo.error_burn")) {}

SloMonitor::Report SloMonitor::observe() {
  const MetricsSnapshot now = MetricsRegistry::instance().snapshot();
  const MetricsSnapshot window = MetricsSnapshot::delta(last_, now);
  last_ = now;

  Report report;
  if (const MetricsSnapshot::Hist* hist = window.histogram(latency_hist_)) {
    report.p50_ms = histogram_quantile(*hist, 0.50) / 1000.0;
    report.p99_ms = histogram_quantile(*hist, 0.99) / 1000.0;
  }
  report.completed = window.counter(completed_counter_);
  report.failed = window.counter(failed_counter_);
  const std::int64_t finished = report.completed + report.failed;
  report.error_rate =
      finished > 0 ? static_cast<double>(report.failed) / static_cast<double>(finished)
                   : 0.0;

  if (cfg_.target_p99_ms > 0.0 && finished > 0 && report.p99_ms > cfg_.target_p99_ms) {
    report.p99_violated = true;
    p99_burn_.inc();
  }
  if (cfg_.max_error_rate > 0.0 && finished > 0 &&
      report.error_rate > cfg_.max_error_rate) {
    report.error_violated = true;
    error_burn_.inc();
  }
  return report;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const MetricsSnapshot::Hist& hist : snapshot.histograms) {
    const std::string p = prom_name(hist.name);
    out << "# TYPE " << p << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      out << p << "_bucket{le=\"";
      if (i < hist.bounds.size()) {
        out << hist.bounds[i];
      } else {
        out << "+Inf";
      }
      out << "\"} " << cumulative << "\n";
    }
    out << p << "_sum " << hist.sum << "\n";
    out << p << "_count " << hist.count << "\n";
  }
}

bool write_prometheus_file(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out.is_open()) return false;
    write_prometheus(out, MetricsRegistry::instance().snapshot());
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

SnapshotWriter::~SnapshotWriter() { stop(); }

void SnapshotWriter::start(std::string path, std::chrono::milliseconds period) {
  stop();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    path_ = std::move(path);
    period_ = period.count() > 0 ? period : std::chrono::milliseconds(1000);
  }
  thread_ = std::thread([this] { loop(); });
}

void SnapshotWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final write so the file reflects the end-of-run state even when the
  // last period never elapsed.
  if (!path_.empty()) write_prometheus_file(path_);
}

void SnapshotWriter::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const std::string path = path_;
    const std::chrono::milliseconds period = period_;
    lock.unlock();
    write_prometheus_file(path);
    lock.lock();
    cv_.wait_for(lock, period, [&] { return stopping_; });
  }
}

}  // namespace tsg::obs
