// Structured logging — leveled JSON-lines with per-site rate limiting.
//
// The repo's diagnostic text used to go through raw fprintf(stderr, ...);
// this logger replaces those sites with machine-parseable one-line JSON
// records that carry the ambient RequestContext, so "why did request #4812
// fail" is answerable by grepping one stream for `"request_id":4812` and
// joining against the trace on the same key. tsg-lint rule `raw-log` bans
// the raw streams in src/ so the substrate stays whole.
//
// Record schema (one JSON object per line, no nesting beyond `fields`):
//
//   {"ts_us":1234.5,"level":"warn","event":"service.watchdog_kill",
//    "site":"spgemm_service.cpp:612","trace_id":123456789,"request_id":4812,
//    "fields":{"stalled_ms":240},"suppressed":17}
//
// * ts_us shares the trace epoch (TraceCollector::now_us), so log records
//   and trace events sort on one timeline.
// * trace_id/request_id appear only inside a RequestScope.
// * suppressed appears when the site's token bucket dropped records since
//   the last emitted one — rate limiting is visible, never silent.
//
// Two gates stack, mirroring tracing:
//   * compile time — the TSG_LOGGING CMake option (default ON). When OFF the
//     TSG_LOG_* macros compile to nothing.
//   * run time — a level threshold (default warn). TSG_LOG_LEVEL names the
//     threshold (debug|info|warn|error|off); TSG_LOG=0 disables output
//     entirely, TSG_LOG=<path> appends to a file instead of stderr.
//
// Each TSG_LOG_* expansion owns a function-local static LogSite holding a
// token bucket (default: burst 8, refill 4/s), so a pathological loop warns
// a handful of times per second instead of flooding the sink. Every record
// that clears the level gate — emitted or rate-limited — is also appended to
// the FlightRecorder ring, so post-mortem dumps see what the sink may not.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string_view>

#ifndef TSG_LOGGING
#define TSG_LOGGING 1
#endif

namespace tsg::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
/// The runtime level threshold; one relaxed load on the disabled path.
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= detail::g_log_level.load(std::memory_order_relaxed);
}

inline LogLevel log_level() {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}
inline void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level);
/// Parse "debug"/"info"/"warn"/"error"/"off" (also 0-4). False = unchanged out.
bool parse_log_level(std::string_view text, LogLevel* out);

/// One typed key/value for a log record. Values are rendered immediately by
/// log_write, so string views only need to outlive the call.
struct LogField {
  enum class Kind { kInt, kUint, kDouble, kBool, kStr };

  std::string_view key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  std::string_view s;

  // One constructor per fundamental width (not per typedef): int64_t/size_t
  // alias long/unsigned long on LP64, so listing typedefs would duplicate.
  LogField(std::string_view k, int v) : key(k), kind(Kind::kInt), i(v) {}
  LogField(std::string_view k, long v) : key(k), kind(Kind::kInt), i(v) {}
  LogField(std::string_view k, long long v) : key(k), kind(Kind::kInt), i(v) {}
  LogField(std::string_view k, unsigned v) : key(k), kind(Kind::kUint), u(v) {}
  LogField(std::string_view k, unsigned long v) : key(k), kind(Kind::kUint), u(v) {}
  LogField(std::string_view k, unsigned long long v) : key(k), kind(Kind::kUint), u(v) {}
  LogField(std::string_view k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  LogField(std::string_view k, bool v) : key(k), kind(Kind::kBool), i(v ? 1 : 0) {}
  LogField(std::string_view k, std::string_view v) : key(k), kind(Kind::kStr), s(v) {}
  LogField(std::string_view k, const char* v) : key(k), kind(Kind::kStr), s(v) {}
};

/// Per-call-site state: a token bucket plus a counter of records it dropped.
/// Lives as a function-local static inside each TSG_LOG_* expansion;
/// aggregate-initialised with {file, line}.
struct LogSite {
  const char* file = nullptr;
  int line = 0;
  /// Token bucket, fixed-point milli-tokens. Defaults: burst 8, refill 4/s.
  std::int64_t burst_millis = 8000;
  std::int64_t refill_millis_per_sec = 4000;
  std::atomic<std::int64_t> tokens_millis{-1};  ///< -1 = fill to burst on first use
  std::atomic<std::int64_t> last_refill_us{0};
  std::atomic<std::uint64_t> suppressed{0};
};

/// Emit one record (already level-gated by the macro). Applies the site's
/// token bucket, stamps timestamp/site/request context, renders JSON, writes
/// to the sink under a mutex, and feeds the FlightRecorder.
void log_write(LogSite& site, LogLevel level, const char* event,
               std::initializer_list<LogField> fields);

/// Redirect output (tests). nullptr restores the default sink (stderr, or
/// the TSG_LOG file if configured). The stream must outlive its use.
void set_log_sink(std::ostream* out);

/// Apply TSG_LOG / TSG_LOG_LEVEL once per process (later calls no-op).
/// Returns true if this call performed the configuration.
bool configure_logging_from_env();

}  // namespace tsg::obs

#if TSG_LOGGING
#define TSG_LOG_AT(lvl, event, ...)                                        \
  do {                                                                     \
    if (::tsg::obs::log_enabled(lvl)) {                                    \
      static ::tsg::obs::LogSite tsg_log_site_{__FILE__, __LINE__};        \
      ::tsg::obs::log_write(tsg_log_site_, lvl, event, {__VA_ARGS__});     \
    }                                                                      \
  } while (0)
/// TSG_LOG_WARN("service.watchdog_kill", {"request_id", id}, {"ms", ms});
#define TSG_LOG_DEBUG(...) TSG_LOG_AT(::tsg::obs::LogLevel::kDebug, __VA_ARGS__)
#define TSG_LOG_INFO(...) TSG_LOG_AT(::tsg::obs::LogLevel::kInfo, __VA_ARGS__)
#define TSG_LOG_WARN(...) TSG_LOG_AT(::tsg::obs::LogLevel::kWarn, __VA_ARGS__)
#define TSG_LOG_ERROR(...) TSG_LOG_AT(::tsg::obs::LogLevel::kError, __VA_ARGS__)
#else
#define TSG_LOG_AT(...) ((void)0)
#define TSG_LOG_DEBUG(...) ((void)0)
#define TSG_LOG_INFO(...) ((void)0)
#define TSG_LOG_WARN(...) ((void)0)
#define TSG_LOG_ERROR(...) ((void)0)
#endif
