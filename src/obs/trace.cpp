#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "obs/metrics.h"
#include "obs/request_context.h"

namespace tsg::obs {

/// One thread's event buffer. Only the owning thread writes; the collector
/// reads under its mutex. `head` counts lifetime appends (monotonic), so
/// `head - capacity` is the number of overwritten events after a wrap.
/// The release store on head pairs with the drain's acquire load: an event
/// the drain can see is an event whose slot write happened-before.
struct TraceCollector::Ring {
  std::uint32_t tid = 0;
  std::size_t mask = 0;                   ///< capacity - 1 (capacity is pow2)
  std::vector<TraceEvent> buf;
  std::atomic<std::uint64_t> head{0};

  explicit Ring(std::uint32_t id, std::size_t capacity)
      : tid(id), mask(capacity - 1), buf(capacity) {}

  void push(const TraceEvent& e) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    buf[static_cast<std::size_t>(h) & mask] = e;
    head.store(h + 1, std::memory_order_release);
  }

  std::uint64_t overwritten() const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    return h > buf.size() ? h - buf.size() : 0;
  }
};

TraceCollector::~TraceCollector() = default;

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  if (!collector.metrics_registered_.load(std::memory_order_acquire)) {
    collector.register_metrics();
  }
  return collector;
}

double TraceCollector::now_us() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch)
      .count();
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Cached ring of the current thread, invalidated when the collector's
/// epoch moves on (capacity change). The stale ring stays alive in the
/// collector's retired list, so a racing emit is safe, merely lost.
struct CachedRing {
  TraceCollector::Ring* ring = nullptr;
  std::uint64_t epoch = 0;
};
thread_local CachedRing t_cached;

}  // namespace

TraceCollector::Ring& TraceCollector::ring_for_this_thread() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto ring = std::make_unique<Ring>(static_cast<std::uint32_t>(rings_.size()),
                                     round_up_pow2(std::max<std::size_t>(ring_capacity_, 2)));
  rings_.push_back(std::move(ring));
  t_cached.ring = rings_.back().get();
  t_cached.epoch = epoch_;
  return *t_cached.ring;
}

void TraceCollector::record_complete(const char* name, double ts_us, double dur_us,
                                     std::int64_t arg) {
  Ring* ring = t_cached.ring;
  std::uint64_t current_epoch;
  {
    // Epoch check without holding the lock on the common path would race
    // set_ring_capacity; the epoch moves only in tests, so read it relaxed
    // through the mutex-free mirror below.
    current_epoch = epoch_mirror_.load(std::memory_order_acquire);
  }
  if (ring == nullptr || t_cached.epoch != current_epoch) {
    ring = &ring_for_this_thread();
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.tid = ring->tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.arg = arg;
  e.req = current_request().request_id;
  ring->push(e);
}

void TraceCollector::record_instant(const char* name, std::int64_t arg) {
  Ring* ring = t_cached.ring;
  const std::uint64_t current_epoch = epoch_mirror_.load(std::memory_order_acquire);
  if (ring == nullptr || t_cached.epoch != current_epoch) {
    ring = &ring_for_this_thread();
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.tid = ring->tid;
  e.ts_us = now_us();
  e.arg = arg;
  e.req = current_request().request_id;
  ring->push(e);
}

void TraceCollector::record_begin(const char* name, std::int64_t arg) {
  Ring* ring = t_cached.ring;
  const std::uint64_t current_epoch = epoch_mirror_.load(std::memory_order_acquire);
  if (ring == nullptr || t_cached.epoch != current_epoch) {
    ring = &ring_for_this_thread();
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'B';
  e.tid = ring->tid;
  e.ts_us = now_us();
  e.arg = arg;
  e.req = current_request().request_id;
  ring->push(e);
}

void TraceCollector::record_end(const char* name) {
  Ring* ring = t_cached.ring;
  const std::uint64_t current_epoch = epoch_mirror_.load(std::memory_order_acquire);
  if (ring == nullptr || t_cached.epoch != current_epoch) {
    ring = &ring_for_this_thread();
  }
  TraceEvent e;
  e.name = name;
  e.phase = 'E';
  e.tid = ring->tid;
  e.ts_us = now_us();
  e.req = current_request().request_id;
  ring->push(e);
}

std::vector<TraceEvent> TraceCollector::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    const std::size_t cap = ring->buf.size();
    const std::uint64_t n = std::min<std::uint64_t>(h, cap);
    high_water_ = std::max(high_water_, n);
    dropped_ += h > cap ? h - cap : 0;
    // Oldest-first: after a wrap the oldest surviving slot is head % cap.
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t idx = h > cap ? (h + k) : k;
      out.push_back(ring->buf[static_cast<std::size_t>(idx) & ring->mask]);
    }
    ring->head.store(0, std::memory_order_release);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  return out;
}

std::uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = dropped_;
  for (const std::unique_ptr<Ring>& ring : rings_) total += ring->overwritten();
  return total;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
  }
  dropped_ = 0;
  high_water_ = 0;
}

std::uint64_t TraceCollector::ring_high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t hw = high_water_;
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    hw = std::max(hw, std::min<std::uint64_t>(h, ring->buf.size()));
  }
  return hw;
}

std::size_t TraceCollector::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_capacity_;
}

void TraceCollector::register_metrics() {
  if (metrics_registered_.exchange(true, std::memory_order_acq_rel)) return;
  // Gauge callbacks take this collector's mutex at snapshot time; nothing
  // under that mutex calls back into the registry, so the lock order
  // (registry -> collector) is acyclic.
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.register_gauge("trace.dropped",
                     [this] { return static_cast<std::int64_t>(dropped()); });
  reg.register_gauge("trace.ring_high_water",
                     [this] { return static_cast<std::int64_t>(ring_high_water()); });
  reg.register_gauge("trace.ring_capacity",
                     [this] { return static_cast<std::int64_t>(ring_capacity()); });
}

void TraceCollector::set_ring_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = round_up_pow2(std::max<std::size_t>(events, 2));
  // Invalidate every cached pointer; old rings retire but stay alive so a
  // concurrently emitting thread scribbles into dead-but-valid memory.
  for (std::unique_ptr<Ring>& ring : rings_) retired_.push_back(std::move(ring));
  rings_.clear();
  ++epoch_;
  epoch_mirror_.store(epoch_, std::memory_order_release);
  dropped_ = 0;
}

void TraceCollector::write_chrome_trace(std::ostream& out) {
  const std::vector<TraceEvent> events = drain();
  const std::uint64_t lost = dropped();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const std::streamsize saved_precision = out.precision();
  out.precision(3);
  out << std::fixed;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << e.name << "\",\"cat\":\"tsg\",\"ph\":\"" << e.phase
        << "\",\"ts\":" << e.ts_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.phase == 'X') out << ",\"dur\":" << e.dur_us;
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (e.arg != TraceEvent::kNoArg || e.req != 0) {
      out << ",\"args\":{";
      bool first_arg = true;
      if (e.arg != TraceEvent::kNoArg) {
        out << "\"v\":" << e.arg;
        first_arg = false;
      }
      if (e.req != 0) {
        if (!first_arg) out << ",";
        out << "\"req\":" << e.req;
      }
      out << "}";
    }
    out << "}";
  }
  if (lost > 0) {
    if (!first) out << ",";
    out << "\n{\"name\":\"trace.dropped\",\"cat\":\"tsg\",\"ph\":\"i\",\"ts\":" << now_us()
        << ",\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{\"v\":" << lost << "}}";
  }
  out << "\n]}\n";
  out.unsetf(std::ios_base::fixed);
  out.precision(saved_precision);
}

}  // namespace tsg::obs
