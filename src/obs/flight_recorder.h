// Flight recorder — the post-mortem ring the chaos harness dumps on failure.
//
// A fixed-size global ring of recent observability events (log records and
// service lifecycle hooks), plus a full metrics snapshot, serialised to
// `flight_<ts>.json` when something goes wrong: a watchdog kill, a poisoned
// future, a chaos-unexplained outcome, or a fatal signal. Before this layer
// a red chaos run left only an exit code; now it leaves the last N events
// with request/trace ids, so "which request died and what led up to it" is
// answerable from the artifact CI uploads.
//
// Recording is always on and cheap (a mutex-guarded fixed-slot copy — the
// ring only sees rate-limited log records and per-request lifecycle hooks,
// not per-tile events). *Dumping* is off by default: it activates when
// TSG_FLIGHT_DIR is set or set_directory()/set_enabled() is called, so
// library code never writes files behind the caller's back.
//
// Dump JSON shape:
//
//   {"reason":"watchdog_kill","victim_request_id":4812,"ts_us":...,
//    "events":[{"ts_us":..,"level":"warn","event":"service.watchdog_kill",
//               "request_id":4812,"trace_id":...,"detail":"..."}, ...],
//    "metrics":{...full registry snapshot...}}
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/contracts.h"

#ifndef TSG_LOGGING
#define TSG_LOGGING 1
#endif

namespace tsg::obs {

/// One ring slot. Fixed-size char arrays (truncating copies) keep the slot
/// trivially copyable and the record path allocation-free.
struct FlightEvent {
  double ts_us = 0.0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  char level[8] = {0};
  char event[48] = {0};
  char detail[120] = {0};
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Append one event (truncating to the slot widths). Safe from any thread.
  void record(const char* level, const char* event, std::uint64_t request_id,
              std::uint64_t trace_id, std::string_view detail);

  /// Where dumps go; setting a directory enables dumping. TSG_FLIGHT_DIR is
  /// read once on first instance() as the default.
  void set_directory(std::string dir);
  void set_enabled(bool on);
  bool enabled() const;

  /// Resize the ring (drops buffered events). Tests.
  void set_capacity(std::size_t n);
  void clear();
  std::vector<FlightEvent> events() const;  ///< oldest-first copy (tests)

  /// Serialise ring + metrics snapshot to `<dir>/flight_<ts>_<seq>.json`.
  /// Returns the path, or "" when disabled or the write failed. Never
  /// throws — a post-mortem writer must not add its own failure mode.
  std::string dump(std::string_view reason, std::uint64_t victim_request_id = 0);

  /// The dump body, to any stream (tests use an ostringstream).
  void write_json(std::ostream& out, std::string_view reason,
                  std::uint64_t victim_request_id) const;

  std::uint64_t dumps() const;

  /// Best-effort dump on SIGSEGV/SIGABRT/SIGBUS/SIGFPE, then re-raise the
  /// default action. Deliberately opt-in (bench/CLI entry points) — the
  /// handler is not async-signal-safe in the strict sense, which is an
  /// accepted trade for a crash artifact in a process that is dying anyway.
  static void install_signal_handlers();

 private:
  FlightRecorder();

  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_ TSG_GUARDED_BY(mutex_);
  std::uint64_t head_ TSG_GUARDED_BY(mutex_) = 0;  ///< lifetime appends
  std::string dir_ TSG_GUARDED_BY(mutex_);
  bool enabled_ TSG_GUARDED_BY(mutex_) = false;
  std::uint64_t dumps_ TSG_GUARDED_BY(mutex_) = 0;
};

}  // namespace tsg::obs

// Lifecycle hooks in the service layer compile out with the logging macros
// (same TSG_LOGGING gate), keeping the obs-disabled A/B build honest.
#if TSG_LOGGING
#define TSG_FLIGHT_RECORD(level, event, request_id, trace_id, detail) \
  ::tsg::obs::FlightRecorder::instance().record(level, event, request_id, trace_id, detail)
#else
#define TSG_FLIGHT_RECORD(level, event, request_id, trace_id, detail) ((void)0)
#endif
