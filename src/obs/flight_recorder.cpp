#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsg::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 256;

void copy_truncated(char* dst, std::size_t dst_size, std::string_view src) {
  const std::size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void append_json_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void signal_dump_handler(int sig) {
  // Not async-signal-safe (locks, allocation, file IO) — see the header for
  // why that trade is accepted. Guard against re-entry, then hand the signal
  // back to the default action so the exit status stays truthful.
  static std::atomic<bool> dumping{false};
  if (!dumping.exchange(true)) {
    char reason[32];
    std::snprintf(reason, sizeof(reason), "fatal_signal_%d", sig);
    FlightRecorder::instance().dump(reason);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder() : ring_(kDefaultCapacity) {
  if (const char* dir = std::getenv("TSG_FLIGHT_DIR")) {
    if (dir[0] != '\0') {
      dir_ = dir;
      enabled_ = true;
    }
  }
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(const char* level, const char* event,
                            std::uint64_t request_id, std::uint64_t trace_id,
                            std::string_view detail) {
  FlightEvent e;
  e.ts_us = TraceCollector::now_us();
  e.request_id = request_id;
  e.trace_id = trace_id;
  copy_truncated(e.level, sizeof(e.level), level != nullptr ? level : "");
  copy_truncated(e.event, sizeof(e.event), event != nullptr ? event : "");
  copy_truncated(e.detail, sizeof(e.detail), detail);
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[static_cast<std::size_t>(head_ % ring_.size())] = e;
  ++head_;
}

void FlightRecorder::set_directory(std::string dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  dir_ = std::move(dir);
  enabled_ = !dir_.empty();
}

void FlightRecorder::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = on;
}

bool FlightRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void FlightRecorder::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.assign(std::max<std::size_t>(n, 1), FlightEvent{});
  head_ = 0;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(ring_.begin(), ring_.end(), FlightEvent{});
  head_ = 0;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEvent> out;
  const std::uint64_t cap = ring_.size();
  const std::uint64_t n = std::min(head_, cap);
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t idx = head_ > cap ? (head_ + k) % cap : k;
    out.push_back(ring_[static_cast<std::size_t>(idx)]);
  }
  return out;
}

std::uint64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

void FlightRecorder::write_json(std::ostream& out, std::string_view reason,
                                std::uint64_t victim_request_id) const {
  const std::vector<FlightEvent> evs = events();
  out << "{\n\"reason\":\"";
  append_json_escaped(out, reason);
  out << "\",\n\"victim_request_id\":" << victim_request_id
      << ",\n\"ts_us\":" << static_cast<std::int64_t>(TraceCollector::now_us())
      << ",\n\"events\":[";
  bool first = true;
  for (const FlightEvent& e : evs) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"ts_us\":" << static_cast<std::int64_t>(e.ts_us) << ",\"level\":\"";
    append_json_escaped(out, e.level);
    out << "\",\"event\":\"";
    append_json_escaped(out, e.event);
    out << "\",\"request_id\":" << e.request_id << ",\"trace_id\":" << e.trace_id
        << ",\"detail\":\"";
    append_json_escaped(out, e.detail);
    out << "\"}";
  }
  out << "\n],\n\"metrics\":";
  MetricsRegistry::instance().snapshot().write_json(out);
  out << "\n}\n";
}

std::string FlightRecorder::dump(std::string_view reason,
                                 std::uint64_t victim_request_id) {
  std::string dir;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_) return "";
    dir = dir_.empty() ? "." : dir_;
    seq = ++dumps_;
  }
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  std::ostringstream path;
  path << dir << "/flight_" << wall_ms << "_" << seq << ".json";
  std::ofstream file(path.str());
  if (!file.is_open()) return "";
  write_json(file, reason, victim_request_id);
  file.flush();
  static Counter& dumps_counter = MetricsRegistry::instance().counter("flight.dumps");
  dumps_counter.inc();
  return path.str();
}

void FlightRecorder::install_signal_handlers() {
  std::signal(SIGSEGV, signal_dump_handler);
  std::signal(SIGABRT, signal_dump_handler);
  std::signal(SIGBUS, signal_dump_handler);
  std::signal(SIGFPE, signal_dump_handler);
}

}  // namespace tsg::obs
