#include "obs/log.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/request_context.h"
#include "obs/trace.h"

namespace tsg::obs {

namespace {

std::mutex g_sink_mutex;
// Guarded by g_sink_mutex. g_sink_override is the test redirect; g_sink_file
// is the TSG_LOG=<path> stream; otherwise std::cerr. g_sink_enabled=false
// (TSG_LOG=0) silences the sink but keeps feeding the flight recorder.
std::ostream* g_sink_override = nullptr;
std::ofstream* g_sink_file = nullptr;
bool g_sink_enabled = true;

bool truthy(const char* v) {
  if (v == nullptr) return false;
  const std::string s(v);
  return !(s.empty() || s == "0" || s == "false" || s == "off" || s == "no");
}

/// Approximate token bucket in milli-tokens. Relaxed atomics: a concurrent
/// race can over- or under-spend one token, which is fine for a rate
/// limiter and keeps the site lock-free (TSan-clean).
bool take_token(LogSite& site, std::int64_t now_us) {
  std::int64_t tokens = site.tokens_millis.load(std::memory_order_relaxed);
  if (tokens < 0) {
    tokens = site.burst_millis;
    site.last_refill_us.store(now_us, std::memory_order_relaxed);
  } else {
    const std::int64_t last = site.last_refill_us.load(std::memory_order_relaxed);
    const std::int64_t elapsed = now_us - last;
    if (elapsed > 0) {
      tokens = std::min(site.burst_millis,
                        tokens + elapsed * site.refill_millis_per_sec / 1000000);
      site.last_refill_us.store(now_us, std::memory_order_relaxed);
    }
  }
  const bool ok = tokens >= 1000;
  site.tokens_millis.store(ok ? tokens - 1000 : tokens, std::memory_order_relaxed);
  return ok;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_field(std::string& out, const LogField& f) {
  out += '"';
  append_escaped(out, f.key);
  out += "\":";
  char buf[32];
  switch (f.kind) {
    case LogField::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(f.i));
      out += buf;
      break;
    case LogField::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(f.u));
      out += buf;
      break;
    case LogField::Kind::kDouble:
      std::snprintf(buf, sizeof(buf), "%.6g", f.d);
      out += buf;
      break;
    case LogField::Kind::kBool:
      out += f.i != 0 ? "true" : "false";
      break;
    case LogField::Kind::kStr:
      out += '"';
      append_escaped(out, f.s);
      out += '"';
      break;
  }
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parse_log_level(std::string_view text, LogLevel* out) {
  if (text == "debug" || text == "0") *out = LogLevel::kDebug;
  else if (text == "info" || text == "1") *out = LogLevel::kInfo;
  else if (text == "warn" || text == "warning" || text == "2") *out = LogLevel::kWarn;
  else if (text == "error" || text == "3") *out = LogLevel::kError;
  else if (text == "off" || text == "none" || text == "4") *out = LogLevel::kOff;
  else return false;
  return true;
}

void set_log_sink(std::ostream* out) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink_override = out;
}

bool configure_logging_from_env() {
  static std::once_flag once;
  bool configured = false;
  std::call_once(once, [&configured] {
    configured = true;
    if (const char* lvl = std::getenv("TSG_LOG_LEVEL")) {
      LogLevel parsed = LogLevel::kWarn;
      if (parse_log_level(lvl, &parsed)) set_log_level(parsed);
    }
    if (const char* dest = std::getenv("TSG_LOG")) {
      const std::string d(dest);
      std::lock_guard<std::mutex> lock(g_sink_mutex);
      if (!truthy(dest)) {
        g_sink_enabled = false;
      } else if (d != "1" && d != "true" && d != "on" && d != "yes" &&
                 d != "stderr") {
        // Any other value is a file path; append so multi-process runs
        // (e.g. ctest -j) interleave records instead of truncating.
        auto* file = new std::ofstream(d, std::ios::app);
        if (file->is_open()) {
          g_sink_file = file;  // intentionally leaked: process-lifetime sink
        } else {
          delete file;
        }
      }
    }
  });
  return configured;
}

void log_write(LogSite& site, LogLevel level, const char* event,
               std::initializer_list<LogField> fields) {
  configure_logging_from_env();
  const double now = TraceCollector::now_us();
  const std::int64_t now_us = static_cast<std::int64_t>(now);

  if (!take_token(site, now_us)) {
    site.suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t suppressed =
      site.suppressed.exchange(0, std::memory_order_relaxed);

  const RequestContext& req = current_request();

  std::string line;
  line.reserve(192);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"ts_us\":%.1f,\"level\":\"", now);
  line += buf;
  line += log_level_name(level);
  line += "\",\"event\":\"";
  append_escaped(line, event);
  line += "\",\"site\":\"";
  if (site.file != nullptr) {
    append_escaped(line, basename_of(site.file));
    std::snprintf(buf, sizeof(buf), ":%d", site.line);
    line += buf;
  }
  line += '"';
  if (req.active()) {
    std::snprintf(buf, sizeof(buf), ",\"trace_id\":%llu,\"request_id\":%llu",
                  static_cast<unsigned long long>(req.trace_id),
                  static_cast<unsigned long long>(req.request_id));
    line += buf;
    if (req.tag != 0) {
      std::snprintf(buf, sizeof(buf), ",\"tag\":%llu",
                    static_cast<unsigned long long>(req.tag));
      line += buf;
    }
  }
  std::string fields_json;
  if (fields.size() > 0) {
    bool first = true;
    for (const LogField& f : fields) {
      if (!first) fields_json += ',';
      first = false;
      append_field(fields_json, f);
    }
    line += ",\"fields\":{";
    line += fields_json;
    line += '}';
  }
  if (suppressed > 0) {
    std::snprintf(buf, sizeof(buf), ",\"suppressed\":%llu",
                  static_cast<unsigned long long>(suppressed));
    line += buf;
  }
  line += '}';

  FlightRecorder::instance().record(log_level_name(level), event, req.request_id,
                                    req.trace_id, fields_json);

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (!g_sink_enabled && g_sink_override == nullptr) return;
  std::ostream& out = g_sink_override != nullptr
                          ? *g_sink_override
                          : (g_sink_file != nullptr ? static_cast<std::ostream&>(*g_sink_file)
                                                    : std::cerr);
  out << line << '\n';
  out.flush();
}

}  // namespace tsg::obs
