// Metrics registry — named monotonic counters, fixed-bucket histograms, and
// registered gauges, snapshotable as JSON.
//
// The registry is a process-wide singleton. Lookups by name take a mutex,
// so hot sites resolve their instruments once (function-local static
// `Counter&`) and then touch only a relaxed atomic per update. Gauges are
// callbacks registered by their owner (e.g. MemoryTracker) and evaluated at
// snapshot time, so the obs layer never depends on the subsystems it
// observes.
//
// Two classes of instrumentation use the registry:
//   * always-on counters — bumped once per run / per call (run counts, tiles
//     per bin, chunk counts, converter invocations). Cost: a handful of
//     relaxed fetch_adds per SpGEMM, never per tile.
//   * detail metrics — per-tile counters and histograms (accumulator
//     choices, intersection pairs, tile nnz/duration). Gated behind
//     metrics_detail_enabled(), one relaxed atomic load, off by default.
//
// Snapshots are value types: subtract two with MetricsSnapshot::delta to get
// the activity of one region (counters/histograms subtract; gauges keep the
// after-value, since "current bytes" has no meaningful difference).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/contracts.h"

namespace tsg::obs {

namespace detail {
/// Runtime gate for the per-tile detail metrics (see header comment).
inline std::atomic<bool> g_metrics_detail{false};
}  // namespace detail

inline bool metrics_detail_enabled() {
  return detail::g_metrics_detail.load(std::memory_order_relaxed);
}
inline void set_metrics_detail_enabled(bool on) {
  detail::g_metrics_detail.store(on, std::memory_order_relaxed);
}

/// Monotonic counter. References handed out by the registry are stable for
/// the process lifetime — cache them at hot sites.
class Counter {
 public:
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// plus one implicit overflow bucket. Observation is a short linear scan
/// (bucket counts are single digits here) and one relaxed fetch_add.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::int64_t v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::int64_t> counts() const;
  std::int64_t count() const;
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::atomic<std::int64_t> sum_{0};
};

/// Point-in-time view of the registry (or a delta of two views). Plain
/// values, safe to copy, hand to reports, or serialise after the run.
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    std::vector<std::int64_t> bounds;
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::int64_t count = 0;
    std::int64_t sum = 0;
  };

  std::vector<std::pair<std::string, std::int64_t>> counters;  ///< sorted by name
  std::vector<std::pair<std::string, std::int64_t>> gauges;    ///< sorted by name
  std::vector<Hist> histograms;                                ///< sorted by name

  /// Value lookups; 0 / nullptr when the name is absent.
  std::int64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const Hist* histogram(std::string_view name) const;

  /// after - before. Counters and histograms subtract (entries absent from
  /// `before` count from zero); gauges keep the after-value.
  static MetricsSnapshot delta(const MetricsSnapshot& before, const MetricsSnapshot& after);

  void write_json(std::ostream& out) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Get-or-create. The returned reference is stable for the process
  /// lifetime; resolve once per site (function-local static).
  Counter& counter(std::string_view name);

  /// Get-or-create; `bounds` are ascending upper bounds and apply only on
  /// creation (a second call with different bounds returns the original).
  Histogram& histogram(std::string_view name, std::vector<std::int64_t> bounds);

  /// Register (or replace) a gauge callback, evaluated at snapshot time.
  /// The callback must stay valid for the process lifetime and be safe to
  /// call from any thread.
  void register_gauge(std::string_view name, std::function<std::int64_t()> fn);

  MetricsSnapshot snapshot() const;
  void write_json(std::ostream& out) const;

  /// Zero every counter and histogram (gauges re-read their source).
  /// Intended for tests.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // unique_ptr values keep instrument addresses stable across rehash/insert.
  // The maps are mutex-guarded; the *instruments* they point to are atomic
  // and updated lock-free once resolved (the whole point of the design).
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TSG_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      TSG_GUARDED_BY(mutex_);
  std::map<std::string, std::function<std::int64_t()>, std::less<>> gauges_
      TSG_GUARDED_BY(mutex_);
};

/// Per-call instrumentation for tsg::parallel_for. Always-on: one counter
/// bump per call ("parallel_for.calls") and per task count
/// ("parallel_for.tasks"). Detail-gated: per-thread task tallies feeding the
/// "parallel_for.imbalance_pct" histogram ((max - mean) / mean, percent).
class ParallelForScope {
 public:
  ParallelForScope(std::size_t total_tasks, int max_threads);
  ~ParallelForScope();
  ParallelForScope(const ParallelForScope&) = delete;
  ParallelForScope& operator=(const ParallelForScope&) = delete;

  /// Called by the owning worker thread only; no synchronisation needed.
  void count(int tid, std::size_t tasks) {
    if (!per_thread_.empty()) per_thread_[static_cast<std::size_t>(tid)] += tasks;
  }

 private:
  std::size_t total_tasks_;
  std::vector<std::int64_t> per_thread_;  ///< empty unless detail enabled
};

}  // namespace tsg::obs
