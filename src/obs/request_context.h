// Request-scoped trace context — the identity every obs signal joins on.
//
// The service mints a RequestContext at submit()/try_submit() and carries it
// alongside the request through the queue; the worker installs it with a
// RequestScope for the duration of process(), so every trace event, log line
// and flight-recorder entry emitted underneath (service.worker.run, the
// spgemm.* step spans, per-chunk events, retry/eviction instants) is stamped
// with the same {trace_id, request_id} pair without any plumbing through the
// engine's call signatures. The context is thread-local: workers never share
// it, and nested scopes restore the outer context on destruction (a worker
// that runs a request inside a request — e.g. a future re-entrant path —
// keeps its attribution straight).
//
// trace_id vs request_id: request_id is the service's dense ticket id (human
// scale, stable across a replay with the same seed); trace_id is a splitmix64
// mix of the id and a per-process salt, so traces from different runs of the
// same replay can be distinguished after the fact when aggregated.
#pragma once

#include <cstdint>

namespace tsg::obs {

struct RequestContext {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t tag = 0;  ///< caller-supplied tenant/batch tag (0 = none)

  bool active() const { return request_id != 0; }
};

namespace detail {
/// splitmix64 finaliser — the same mixer FaultPlan and ChaosEngine use, so
/// the whole repo shares one hashing idiom.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline thread_local RequestContext t_request{};

/// Per-process salt folded into every trace_id. Seeded once from the trace
/// epoch's address (ASLR) — cheap, collision-resistant enough for a tracer,
/// and deliberately NOT time-based so unit tests stay deterministic when
/// they pin the salt via set_trace_salt().
inline std::uint64_t& trace_salt() {
  static std::uint64_t salt = mix64(reinterpret_cast<std::uintptr_t>(&salt));
  return salt;
}
}  // namespace detail

/// The context of the calling thread; inactive (all zeros) outside a scope.
inline const RequestContext& current_request() { return detail::t_request; }

/// Pin the process trace salt (tests only — makes minted trace_ids stable).
inline void set_trace_salt(std::uint64_t salt) { detail::trace_salt() = salt; }

/// Mint the trace id for a request id under the process salt.
inline std::uint64_t mint_trace_id(std::uint64_t request_id) {
  return detail::mix64(request_id ^ detail::trace_salt());
}

/// RAII installer: sets the thread-local context for the enclosing scope and
/// restores the previous one on exit. Cheap (two 24-byte copies); safe to
/// nest.
class RequestScope {
 public:
  explicit RequestScope(const RequestContext& ctx) : saved_(detail::t_request) {
    detail::t_request = ctx;
  }
  ~RequestScope() { detail::t_request = saved_; }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  RequestContext saved_;
};

}  // namespace tsg::obs
