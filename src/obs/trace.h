// Execution tracing — the observability layer's event stream.
//
// Every instrumented site emits a timestamped event into a per-thread ring
// buffer; only the owning thread writes its ring, so the hot path is one
// relaxed atomic load (the runtime enable flag), a steady_clock read, and a
// store into thread-local storage — no locks, no allocation after the ring
// exists. The collector drains all rings into Chrome `trace_event` JSON
// that loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Two gates stack:
//   * compile time — the TSG_TRACING CMake option (default ON). When OFF
//     the TSG_TRACE_SPAN / TSG_TRACE_INSTANT macros compile to nothing and
//     the binary carries no tracing code at the instrumented sites.
//   * run time — trace_enabled(), one relaxed atomic bool. Off by default;
//     enabled by SpgemmContext::Config::with_tracing(true), the TSG_TRACE
//     environment variable (via Config::from_env), the CLI's `--trace`
//     flag, or obs::set_trace_enabled(true) directly.
//
// Usage:
//
//     TSG_TRACE_SPAN("step2");             // span over the enclosing scope
//     TSG_TRACE_SPAN("chunk", chunk_idx);  // with an integer argument
//     TSG_TRACE_INSTANT("alloc", bytes);   // point event
//     ...
//     obs::TraceCollector::instance().write_chrome_trace(file);
//
// Names must be string literals (the event stores the pointer, not a copy)
// and must not need JSON escaping — stick to [A-Za-z0-9._-].
//
// Rings are fixed-capacity and overwrite their oldest events on wrap; the
// collector reports how many were dropped. Draining is intended between
// parallel regions (a thread emitting *during* a drain may tear its oldest
// in-flight slot — acceptable for a tracer, never UB for the program).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/contracts.h"

#ifndef TSG_TRACING
#define TSG_TRACING 1
#endif

namespace tsg::obs {

struct TraceEvent {
  /// Events without an integer argument carry this sentinel.
  static constexpr std::int64_t kNoArg = INT64_MIN;

  const char* name = nullptr;  ///< string literal; never freed, never copied
  char phase = 'X';            ///< 'X' complete span, 'i' instant
  std::uint32_t tid = 0;       ///< collector-assigned thread id (dense, small)
  double ts_us = 0.0;          ///< start, microseconds since the trace epoch
  double dur_us = 0.0;         ///< span duration; 0 for instants
  std::int64_t arg = kNoArg;   ///< optional site-defined argument
  std::uint64_t req = 0;       ///< request id from the ambient RequestScope; 0 = none
};

namespace detail {
/// The one runtime gate. Namespace-scope inline atomic so trace_enabled()
/// is exactly one relaxed load — no function-local-static guard on the
/// disabled path.
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

/// Runtime gate for the whole trace layer. Relaxed: enabling mid-run means
/// threads start emitting "soon", which is all a tracer needs.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

class TraceCollector {
 public:
  static TraceCollector& instance();

  void set_enabled(bool on) {
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return trace_enabled(); }

  /// Append one complete-span / instant event to the calling thread's ring.
  void record_complete(const char* name, double ts_us, double dur_us,
                       std::int64_t arg = TraceEvent::kNoArg);
  void record_instant(const char* name, std::int64_t arg = TraceEvent::kNoArg);

  /// Manual span pair ('B'/'E' duration events) for regions that cannot be
  /// lexically scoped — a span opened in one function and closed in another
  /// (CLI whole-run bracket, chunked execution across calls). Every begin
  /// must be matched by an end with the *same literal name* on the same
  /// thread; the `trace-span-pairing` lint rule checks the balance per file.
  void record_begin(const char* name, std::int64_t arg = TraceEvent::kNoArg);
  void record_end(const char* name);

  /// Move every buffered event out (oldest-first per thread) and reset the
  /// rings. Call between parallel regions.
  std::vector<TraceEvent> drain();

  /// Events overwritten by ring wraparound since the last clear(),
  /// including drains. A nonzero value means the trace has a hole — raise
  /// the ring capacity or drain more often.
  std::uint64_t dropped() const;

  /// High-water mark: the most events any single ring has ever buffered
  /// between drains (capped at the ring capacity). Together with dropped()
  /// this tells CI whether the capacity was sized right — high-water at
  /// capacity with dropped() > 0 means the trace has silent holes.
  std::uint64_t ring_high_water() const;

  /// Current per-thread ring capacity (after pow2 rounding).
  std::size_t ring_capacity() const;

  /// Register the collector's health gauges ("trace.dropped",
  /// "trace.ring_high_water", "trace.ring_capacity") with the process
  /// MetricsRegistry so every snapshot — bench JSON, Prometheus export,
  /// flight dumps — carries trace-loss visibility. Idempotent.
  void register_metrics();

  /// Drop all buffered events and zero the dropped counter.
  void clear();

  /// Per-thread ring capacity in events (rounded up to a power of two).
  /// Existing rings are discarded; intended for tests and for front-loading
  /// the capacity decision before enabling. Default 32768 events/thread.
  void set_ring_capacity(std::size_t events);

  /// Drain and serialise as Chrome trace_event JSON (Perfetto-loadable).
  /// Emits a final "trace.dropped" counter event when events were lost.
  void write_chrome_trace(std::ostream& out);

  /// Microseconds since the process-wide trace epoch (first use).
  static double now_us();

  struct Ring;  ///< per-thread buffer; opaque outside trace.cpp

 private:
  TraceCollector() = default;
  ~TraceCollector();  // defined where Ring is complete
  Ring& ring_for_this_thread();

  mutable std::mutex mutex_;  ///< guards the ring lists; never held on the emit path
  std::vector<std::unique_ptr<Ring>> rings_ TSG_GUARDED_BY(mutex_);
  /// Rings invalidated by set_ring_capacity. Kept alive (not drained): a
  /// straggler thread holding a stale cached pointer must never write into
  /// freed memory. Bounded by the number of capacity changes (test-only).
  std::vector<std::unique_ptr<Ring>> retired_ TSG_GUARDED_BY(mutex_);
  std::size_t ring_capacity_ TSG_GUARDED_BY(mutex_) = std::size_t{1} << 15;
  /// Bumped when cached ring pointers go stale.
  std::uint64_t epoch_ TSG_GUARDED_BY(mutex_) = 0;
  /// Max events buffered in any single ring, folded in on drain()/clear().
  std::uint64_t high_water_ TSG_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> metrics_registered_{false};
  /// Lock-free mirror of epoch_ so the emit path can validate its cached
  /// ring without taking mutex_.
  std::atomic<std::uint64_t> epoch_mirror_{0};
  /// Overwrites accounted by past drains.
  std::uint64_t dropped_ TSG_GUARDED_BY(mutex_) = 0;
};

/// TraceEvent rides through the per-thread rings by plain assignment and is
/// bulk-copied on drain; it must stay trivially copyable (no owning
/// members — `name` is a string literal by contract).
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent is copied through lock-free rings");

/// RAII span: captures the start time on construction (when tracing is on)
/// and records a complete event on destruction. Cheap enough to put around
/// every pipeline phase; do not put it around per-element work.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = TraceEvent::kNoArg) {
    if (!trace_enabled()) return;
    name_ = name;
    arg_ = arg;
    start_us_ = TraceCollector::now_us();
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    TraceCollector::instance().record_complete(name_, start_us_,
                                               TraceCollector::now_us() - start_us_, arg_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null = tracing was off at construction
  std::int64_t arg_ = TraceEvent::kNoArg;
  double start_us_ = 0.0;
};

inline void trace_instant(const char* name, std::int64_t arg = TraceEvent::kNoArg) {
  if (!trace_enabled()) return;
  TraceCollector::instance().record_instant(name, arg);
}

inline void trace_begin(const char* name, std::int64_t arg = TraceEvent::kNoArg) {
  if (!trace_enabled()) return;
  TraceCollector::instance().record_begin(name, arg);
}

inline void trace_end(const char* name) {
  if (!trace_enabled()) return;
  TraceCollector::instance().record_end(name);
}

}  // namespace tsg::obs

#define TSG_OBS_CONCAT_INNER(a, b) a##b
#define TSG_OBS_CONCAT(a, b) TSG_OBS_CONCAT_INNER(a, b)

#if TSG_TRACING
/// Span over the enclosing scope: TSG_TRACE_SPAN("step2") or
/// TSG_TRACE_SPAN("chunk", chunk_index).
#define TSG_TRACE_SPAN(...) \
  ::tsg::obs::TraceSpan TSG_OBS_CONCAT(tsg_trace_span_, __LINE__)(__VA_ARGS__)
/// Point event: TSG_TRACE_INSTANT("alloc", bytes).
#define TSG_TRACE_INSTANT(...) ::tsg::obs::trace_instant(__VA_ARGS__)
/// Manual span pair for regions a single lexical scope cannot bracket.
/// Same literal name, same thread, and the counts must balance per file —
/// tsg_lint's `trace-span-pairing` rule enforces the balance.
#define TSG_TRACE_BEGIN(...) ::tsg::obs::trace_begin(__VA_ARGS__)
#define TSG_TRACE_END(name) ::tsg::obs::trace_end(name)
#else
#define TSG_TRACE_SPAN(...) ((void)0)
#define TSG_TRACE_INSTANT(...) ((void)0)
#define TSG_TRACE_BEGIN(...) ((void)0)
#define TSG_TRACE_END(name) ((void)0)
#endif
