// Expand-Sort-Compress (ESC) SpGEMM — the proxy for the bhSPARSE baseline
// (Liu & Vinter, IPDPS'14 / JPDC'15; ESC itself from Bell, Dalton & Olson).
//
// The method materialises *every* intermediate product into one global
// buffer (size = #flops/2 entries), sorts each row's segment by column and
// compresses duplicate columns by summing. Its defining property — and
// exactly what the paper's Figs. 7/9 show for bhSPARSE — is the huge global
// intermediate allocation, which grows with the compression rate and makes
// high-rate matrices (gupta3, TSOPF) slow or infeasible; TileSpGEMM
// allocates no global intermediate space at all.
#pragma once

#include "matrix/csr.h"

namespace tsg {

template <class T>
Csr<T> spgemm_esc(const Csr<T>& a, const Csr<T>& b);

extern template Csr<double> spgemm_esc(const Csr<double>&, const Csr<double>&);
extern template Csr<float> spgemm_esc(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
