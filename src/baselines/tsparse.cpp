#include "baselines/tsparse.h"

#include <stdexcept>
#include <vector>

#include "common/half.h"
#include "common/parallel.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/intersect.h"
#include "core/step1.h"
#include "core/tile_convert.h"

namespace tsg {

namespace {

thread_local std::vector<MatchedPair> t_pairs;

/// Expand a sparse tile into a dense 16x16 buffer, rounding values through
/// half precision (the tensor-core input format).
void expand_tile_half(const TileMatrix<float>& m, offset_t tile, float* dense) {
  for (index_t k = 0; k < kTileNnzMax; ++k) dense[k] = 0.0f;
  const offset_t base = m.tile_nnz[static_cast<std::size_t>(tile)];
  const index_t count = m.tile_nnz_of(tile);
  for (index_t k = 0; k < count; ++k) {
    const std::size_t g = static_cast<std::size_t>(base + k);
    dense[static_cast<std::size_t>(m.row_idx[g]) * kTileDim + m.col_idx[g]] =
        static_cast<float>(half(m.val[g]));
  }
}

}  // namespace

Csr<float> spgemm_tsparse(const Csr<float>& a, const Csr<float>& b,
                          TsparseTimings* timings) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");
  TsparseTimings tm;

  // Operands in tile form (outside the timed phases, as for TileSpGEMM).
  const TileMatrix<float> ta = csr_to_tile(a);
  const TileMatrix<float> tb = csr_to_tile(b);

  TileLayoutCsc b_csc;
  {
    ScopedAccumulator scope(tm.alloc_ms);
    b_csc = tile_layout_csc(tb);
  }

  TileStructure structure;
  {
    ScopedAccumulator scope(tm.step1_ms);
    structure = step1_tile_structure(ta, tb);
  }
  const offset_t ntiles = structure.num_tiles();

  // The global dense intermediate buffer: one full 16x16 float tile per
  // output tile. tSparse grows this storage repeatedly as tiles are
  // produced; we model the cost with doubling growth over tile chunks.
  tracked_vector<float> dense_c;
  {
    ScopedAccumulator scope(tm.alloc_ms);
    std::size_t capacity = 1024;
    while (capacity < static_cast<std::size_t>(ntiles) * kTileNnzMax) {
      capacity *= 2;
      dense_c.reserve(capacity);  // forces the realloc-and-copy sequence
    }
    dense_c.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileNnzMax), 0.0f);
  }

  // Dense tile multiplication: for every C tile, 16^3 MAC per matched pair.
  {
    ScopedAccumulator scope(tm.step2_ms);
    parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
      const index_t tile_i = structure.tile_row_idx[static_cast<std::size_t>(t)];
      const index_t tile_j = structure.tile_col_idx[static_cast<std::size_t>(t)];

      std::vector<MatchedPair>& pairs = t_pairs;
      pairs.clear();
      const offset_t a_base = ta.tile_ptr[tile_i];
      const index_t len_a = static_cast<index_t>(ta.tile_ptr[tile_i + 1] - a_base);
      const offset_t b_base = b_csc.col_ptr[tile_j];
      const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
      intersect_tiles(ta.tile_col_idx.data() + a_base, a_base, len_a,
                      b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                      IntersectMethod::kBinarySearch, pairs);

      float* acc = dense_c.data() + static_cast<std::size_t>(t) * kTileNnzMax;
      float da[kTileNnzMax];
      float db[kTileNnzMax];
      for (const MatchedPair& p : pairs) {
        expand_tile_half(ta, p.tile_a, da);
        expand_tile_half(tb, p.tile_b, db);
        // Dense 16x16x16 kernel — the tensor-core MMA stand-in.
        for (index_t r = 0; r < kTileDim; ++r) {
          for (index_t k = 0; k < kTileDim; ++k) {
            const float av = da[static_cast<std::size_t>(r) * kTileDim + k];
            if (av == 0.0f) continue;  // same early-out a fragment loader gets free
            const float* brow = db + static_cast<std::size_t>(k) * kTileDim;
            float* crow = acc + static_cast<std::size_t>(r) * kTileDim;
            for (index_t col = 0; col < kTileDim; ++col) crow[col] += av * brow[col];
          }
        }
      }
    });
  }

  // Dense -> sparse conversion of C (per original row, sorted by design).
  Csr<float> c;
  {
    ScopedAccumulator scope(tm.step3_ms);
    c.rows = a.rows;
    c.cols = b.cols;
    c.row_ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
    for (offset_t t = 0; t < ntiles; ++t) {
      const index_t row_base = structure.tile_row_idx[static_cast<std::size_t>(t)] * kTileDim;
      const float* acc = dense_c.data() + static_cast<std::size_t>(t) * kTileNnzMax;
      for (index_t r = 0; r < kTileDim && row_base + r < c.rows; ++r) {
        offset_t count = 0;
        for (index_t col = 0; col < kTileDim; ++col) {
          if (acc[static_cast<std::size_t>(r) * kTileDim + col] != 0.0f) ++count;
        }
        c.row_ptr[row_base + r + 1] += count;
      }
    }
    for (index_t i = 0; i < c.rows; ++i) c.row_ptr[i + 1] += c.row_ptr[i];
    c.col_idx.resize(static_cast<std::size_t>(c.nnz()));
    c.val.resize(static_cast<std::size_t>(c.nnz()));

    tracked_vector<offset_t> cursor(c.row_ptr.begin(), c.row_ptr.end() - 1);
    // Tiles are stored tile-row-major with ascending tile columns, so
    // appending per row in tile order keeps each CSR row sorted.
    for (offset_t t = 0; t < ntiles; ++t) {
      const index_t row_base = structure.tile_row_idx[static_cast<std::size_t>(t)] * kTileDim;
      const index_t col_base = structure.tile_col_idx[static_cast<std::size_t>(t)] * kTileDim;
      const float* acc = dense_c.data() + static_cast<std::size_t>(t) * kTileNnzMax;
      for (index_t r = 0; r < kTileDim && row_base + r < c.rows; ++r) {
        for (index_t col = 0; col < kTileDim; ++col) {
          const float v = acc[static_cast<std::size_t>(r) * kTileDim + col];
          if (v != 0.0f) {
            const offset_t dst = cursor[row_base + r]++;
            c.col_idx[dst] = col_base + col;
            c.val[dst] = v;
          }
        }
      }
    }
  }

  if (timings != nullptr) *timings = tm;
  return c;
}

}  // namespace tsg
