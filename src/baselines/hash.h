// Two-round hash SpGEMM — the proxy for the NSPARSE baseline (Nagasaka,
// Matsuoka, Azad & Buluç).
//
// NSPARSE's structure: compute per-row upper bounds of intermediate
// products, bin rows by that bound, run a *symbolic* round with per-row
// hash tables (small rows in on-chip tables, long rows in global-memory
// tables), allocate C exactly, then a *numeric* round with the same
// binning. We reproduce that: rows with bound <= 512 use a fixed
// stack-resident table; longer rows use a tracked heap table sized to the
// bound — the global-memory hashing whose cost the paper highlights.
#pragma once

#include "matrix/csr.h"

namespace tsg {

template <class T>
Csr<T> spgemm_hash(const Csr<T>& a, const Csr<T>& b);

/// Structure-only product (values ignored, pattern of C as if no
/// cancellation): used by consumers that only need symbolic results.
template <class T>
Csr<T> spgemm_hash_symbolic(const Csr<T>& a, const Csr<T>& b);

extern template Csr<double> spgemm_hash(const Csr<double>&, const Csr<double>&);
extern template Csr<float> spgemm_hash(const Csr<float>&, const Csr<float>&);
extern template Csr<double> spgemm_hash_symbolic(const Csr<double>&, const Csr<double>&);
extern template Csr<float> spgemm_hash_symbolic(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
