// Adaptive row-row SpGEMM — the proxy for the spECK baseline (Parger,
// Winter, Mlakar & Steinberger, PPoPP'20).
//
// spECK's design: a lightweight preprocessing pass estimates the work and
// density of every row, then each row picks the cheapest accumulator:
//   * tiny rows    -> direct sorted insertion (no table at all)
//   * short rows   -> stack-resident hash table
//   * dense-ish rows (upper bound close to the row width) -> dense SPA
//   * everything else -> global hash table
// That per-row adaptivity is why spECK is the strongest row-row method in
// the paper's comparison.
#pragma once

#include "matrix/csr.h"

namespace tsg {

template <class T>
Csr<T> spgemm_speck(const Csr<T>& a, const Csr<T>& b);

extern template Csr<double> spgemm_speck(const Csr<double>&, const Csr<double>&);
extern template Csr<float> spgemm_speck(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
