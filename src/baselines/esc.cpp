#include "baselines/esc.h"

#include <algorithm>
#include <stdexcept>

#include "common/memory.h"
#include "common/parallel.h"

namespace tsg {

template <class T>
Csr<T> spgemm_esc(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");
  Csr<T> c(a.rows, b.cols);

  // Expansion offsets: exact intermediate-product count per row.
  tracked_vector<offset_t> expand_ptr(static_cast<std::size_t>(a.rows) + 1, 0);
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t products = 0;
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      products += b.row_nnz(a.col_idx[ka]);
    }
    expand_ptr[i + 1] = expand_ptr[i] + products;
  }
  const offset_t total_products = expand_ptr[a.rows];

  // The global intermediate buffer — the method's defining footprint. On
  // the paper's GPUs this is exactly where bhSPARSE runs out of device
  // memory on high-compression-rate matrices (gupta3, TSOPF_FS_b300_c2).
  check_workspace_budget(static_cast<std::size_t>(total_products) *
                         (sizeof(index_t) + sizeof(T)));
  tracked_vector<index_t> exp_col(static_cast<std::size_t>(total_products));
  tracked_vector<T> exp_val(static_cast<std::size_t>(total_products));

  // Expand: write every product.
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    offset_t dst = expand_ptr[i];
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      const index_t j = a.col_idx[ka];
      const T va = a.val[ka];
      for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
        exp_col[dst] = b.col_idx[kb];
        exp_val[dst] = va * b.val[kb];
        ++dst;
      }
    }
  });

  // Sort each row segment by column, then count compressed entries.
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    const offset_t lo = expand_ptr[i], hi = expand_ptr[i + 1];
    const std::size_t len = static_cast<std::size_t>(hi - lo);
    if (len < 2) {
      c.row_ptr[i + 1] = static_cast<offset_t>(len);
      return;
    }
    std::vector<std::size_t> perm(len);
    for (std::size_t k = 0; k < len; ++k) perm[k] = k;
    std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
      return exp_col[lo + static_cast<offset_t>(x)] < exp_col[lo + static_cast<offset_t>(y)];
    });
    std::vector<index_t> sc(len);
    std::vector<T> sv(len);
    for (std::size_t k = 0; k < len; ++k) {
      sc[k] = exp_col[lo + static_cast<offset_t>(perm[k])];
      sv[k] = exp_val[lo + static_cast<offset_t>(perm[k])];
    }
    std::copy(sc.begin(), sc.end(), exp_col.begin() + lo);
    std::copy(sv.begin(), sv.end(), exp_val.begin() + lo);
    offset_t distinct = 0;
    for (std::size_t k = 0; k < len; ++k) {
      if (k == 0 || sc[k] != sc[k - 1]) ++distinct;
    }
    c.row_ptr[i + 1] = distinct;
  });
  for (index_t i = 0; i < a.rows; ++i) c.row_ptr[i + 1] += c.row_ptr[i];

  // Compress into the final arrays.
  c.col_idx.resize(static_cast<std::size_t>(c.nnz()));
  c.val.resize(static_cast<std::size_t>(c.nnz()));
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    offset_t dst = c.row_ptr[i];
    const offset_t lo = expand_ptr[i], hi = expand_ptr[i + 1];
    for (offset_t k = lo; k < hi; ++k) {
      if (k == lo || exp_col[k] != exp_col[k - 1]) {
        c.col_idx[dst] = exp_col[k];
        c.val[dst] = exp_val[k];
        ++dst;
      } else {
        c.val[dst - 1] += exp_val[k];
      }
    }
  });
  return c;
}

template Csr<double> spgemm_esc(const Csr<double>&, const Csr<double>&);
template Csr<float> spgemm_esc(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
