// Input-aware algorithm selection — the "which SpGEMM should I call"
// question the paper's related work raises (Xie et al., IA-SpGEMM) and its
// own Section 4.2 answers anecdotally: the tiled method wins except on
// hyper-sparse matrices whose tiles hold ~1 nonzero (cop20k_A, scircuit),
// where per-tile metadata dominates and a row-row hash method is better.
//
// spgemm_auto() measures exactly those cheap structural features and
// dispatches, giving library users a single entry point with the best of
// both regimes.
#pragma once

#include "matrix/csr.h"

namespace tsg {

struct WorkloadFeatures {
  offset_t nnz_a = 0;
  offset_t nnz_b = 0;
  double avg_nnz_per_tile_a = 0.0;  ///< nnz / non-empty 16x16 tiles
  double avg_nnz_per_tile_b = 0.0;
  offset_t intermediate_products = 0;
  bool products_fit_device = false;  ///< can an O(products) buffer be afforded
};

enum class SpgemmChoice {
  kTile,  ///< TileSpGEMM
  kHash,  ///< row-row hash (NSPARSE-style)
};

/// Cheap O(nnz) feature pass (no tile structures are materialised).
template <class T>
WorkloadFeatures analyze_workload(const Csr<T>& a, const Csr<T>& b);

/// The dispatch rule. Deterministic and documented: hyper-sparse tiles
/// (avg fill below `hyper_sparse_threshold` on both operands) go row-row
/// when the hash method's workspace fits the device budget; everything
/// else — including everything too big for row-row workspaces — is tiled.
SpgemmChoice select_algorithm(const WorkloadFeatures& f,
                              double hyper_sparse_threshold = 2.0);

/// Analyze, dispatch, multiply.
template <class T>
Csr<T> spgemm_auto(const Csr<T>& a, const Csr<T>& b, SpgemmChoice* chosen = nullptr);

extern template WorkloadFeatures analyze_workload(const Csr<double>&, const Csr<double>&);
extern template WorkloadFeatures analyze_workload(const Csr<float>&, const Csr<float>&);
extern template Csr<double> spgemm_auto(const Csr<double>&, const Csr<double>&,
                                        SpgemmChoice*);
extern template Csr<float> spgemm_auto(const Csr<float>&, const Csr<float>&, SpgemmChoice*);

}  // namespace tsg
