#include "baselines/registry.h"

#include "baselines/esc.h"
#include "baselines/hash.h"
#include "baselines/heap.h"
#include "baselines/reference.h"
#include "baselines/spa.h"
#include "baselines/speck.h"
#include "common/memory.h"
#include "common/timer.h"
#include "core/spgemm_context.h"
#include "obs/metrics.h"

namespace tsg {

namespace {

/// Peak tracked bytes as the registry reports them. The MemoryTracker is
/// still the source of truth (it owns the gauge callback); reading through
/// the registry keeps `peak_mb` consistent with what a --metrics dump says.
double registry_peak_mb() {
  const std::int64_t bytes =
      obs::MetricsRegistry::instance().snapshot().gauge("memory.peak_bytes");
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Wrap a plain CSR->CSR method: its core time is the whole call.
template <class Fn>
SpgemmAlgorithm wrap(std::string name, std::string proxies, Fn fn) {
  SpgemmAlgorithm algo;
  algo.name = std::move(name);
  algo.proxies = std::move(proxies);
  algo.profiled = [fn](const Csr<double>& a, const Csr<double>& b) {
    SpgemmRunReport rep;
    PeakMemoryScope mem;  // resets the tracker; the gauge reads the peak back
    Timer t;
    rep.c = fn(a, b);
    rep.core_ms = t.milliseconds();
    rep.peak_mb = registry_peak_mb();
    return rep;
  };
  return algo;
}

SpgemmAlgorithm make_tile_algorithm() {
  SpgemmAlgorithm algo;
  algo.name = "TileSpGEMM";
  algo.proxies = "this paper";
  algo.is_tile = true;
  algo.profiled = [](const Csr<double>& a, const Csr<double>& b) {
    const TileMatrix<double> ta = csr_to_tile(a);
    const TileMatrix<double> tb = csr_to_tile(b);
    SpgemmRunReport rep;
    {
      // The context (and its pooled workspace) lives inside the peak scope
      // so its allocations count against the method like any workspace.
      PeakMemoryScope mem;  // resets the tracker; the gauge reads the peak back
      SpgemmContext ctx;
      Timer t;
      TileSpgemmResult<double> res = ctx.run(ta, tb);
      rep.core_ms = t.milliseconds();
      rep.peak_mb = registry_peak_mb();
      rep.chunks = res.timings.chunks;
      rep.budget_limited = res.timings.budget_limited;
      rep.metrics = res.timings.metrics;
      // The back-conversion is outside both budgets: a tile-native caller
      // never pays it (res.c *is* the result); `rep.c` exists only so the
      // harness can cross-validate in CSR.
      rep.c = tile_to_csr(res.c);
    }
    return rep;
  };
  return algo;
}

std::vector<SpgemmAlgorithm> build_paper_list() {
  std::vector<SpgemmAlgorithm> list;
  list.push_back(wrap("SPA", "cuSPARSE v11.4 (dense-SPA row-row)",
                      [](const Csr<double>& a, const Csr<double>& b) {
                        return spgemm_spa(a, b);
                      }));
  list.push_back(wrap("ESC", "bhSPARSE (expand-sort-compress)",
                      [](const Csr<double>& a, const Csr<double>& b) {
                        return spgemm_esc(a, b);
                      }));
  list.push_back(wrap("Hash", "NSPARSE (two-round hash, binned)",
                      [](const Csr<double>& a, const Csr<double>& b) {
                        return spgemm_hash(a, b);
                      }));
  list.push_back(wrap("Adaptive", "spECK (lightweight analysis + adaptive)",
                      [](const Csr<double>& a, const Csr<double>& b) {
                        return spgemm_speck(a, b);
                      }));
  list.push_back(make_tile_algorithm());
  return list;
}

std::vector<SpgemmAlgorithm> build_full_list() {
  std::vector<SpgemmAlgorithm> list = build_paper_list();
  list.push_back(wrap("Heap", "bhSPARSE heap bins (k-way merge)",
                      [](const Csr<double>& a, const Csr<double>& b) {
                        return spgemm_heap(a, b);
                      }));
  list.push_back(wrap("Reference", "serial gold standard",
                      [](const Csr<double>& a, const Csr<double>& b) {
                        return spgemm_reference(a, b);
                      }));
  return list;
}

}  // namespace

const std::vector<SpgemmAlgorithm>& paper_algorithms() {
  static const std::vector<SpgemmAlgorithm> list = build_paper_list();
  return list;
}

const std::vector<SpgemmAlgorithm>& all_algorithms() {
  static const std::vector<SpgemmAlgorithm> list = build_full_list();
  return list;
}

}  // namespace tsg
