// Dense sparse-accumulator (SPA) row-row SpGEMM — the proxy for the closed
// source cuSPARSE baseline.
//
// Classic two-phase Gustavson (Gilbert, Moler & Schreiber 1992):
//   symbolic: per-row dense stamp array counts nnz(C row) -> allocate C once
//   numeric:  per-row dense value array accumulates, then entries are
//             gathered in sorted column order
// Rows are processed in parallel with per-thread O(cols) scratch, which is
// exactly the "dense row" accumulator family the paper's related work
// discusses (it exploits no 2D locality and needs O(threads*cols) scratch —
// performance issues #2/#3 of Section 2.2).
#pragma once

#include "matrix/csr.h"

namespace tsg {

template <class T>
Csr<T> spgemm_spa(const Csr<T>& a, const Csr<T>& b);

extern template Csr<double> spgemm_spa(const Csr<double>&, const Csr<double>&);
extern template Csr<float> spgemm_spa(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
