// Serial reference SpGEMM — the gold standard every parallel method is
// validated against in the tests. Gustavson row-row with a dense stamped
// accumulator; deliberately simple and obviously correct.
//
// Output semantics (shared by every method in this library and by the
// paper/cuSPARSE): the structure of C is the full symbolic product — an
// entry exists wherever at least one intermediate product lands, even if
// the values cancel to zero. Rows come out with sorted column indices.
#pragma once

#include "matrix/csr.h"

namespace tsg {

template <class T>
Csr<T> spgemm_reference(const Csr<T>& a, const Csr<T>& b);

extern template Csr<double> spgemm_reference(const Csr<double>&, const Csr<double>&);
extern template Csr<float> spgemm_reference(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
