// Named registry of the double-precision SpGEMM methods compared in the
// paper's Figs. 6-9: the four row-row baselines plus TileSpGEMM. Benches
// and integration tests iterate this list so every experiment runs every
// method uniformly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "matrix/csr.h"

namespace tsg {

struct SpgemmAlgorithm {
  std::string name;        ///< name used in output tables
  std::string proxies;     ///< the paper baseline this method stands in for
  bool is_tile = false;    ///< true for the paper's contribution
  std::function<Csr<double>(const Csr<double>&, const Csr<double>&)> run;
  /// Profiled variant: returns the product and reports the milliseconds and
  /// peak tracked workspace megabytes that count as "the SpGEMM" for this
  /// method. For TileSpGEMM both exclude the CSR<->tile conversions,
  /// matching Section 4.6 ("we always assume the matrix is already stored
  /// in the tiled format"); for the row-row methods they cover the whole
  /// call (their operands and outputs are natively CSR).
  std::function<Csr<double>(const Csr<double>&, const Csr<double>&, double& core_ms,
                            double& peak_mb)>
      run_timed;
};

/// The five methods in the paper's comparison order:
/// SPA (cuSPARSE), ESC (bhSPARSE), Hash (NSPARSE), Adaptive (spECK),
/// TileSpGEMM.
const std::vector<SpgemmAlgorithm>& paper_algorithms();

/// All methods including the extra heap accumulator and the reference.
const std::vector<SpgemmAlgorithm>& all_algorithms();

}  // namespace tsg
