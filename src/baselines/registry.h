// Named registry of the double-precision SpGEMM methods compared in the
// paper's Figs. 6-9: the four row-row baselines plus TileSpGEMM. Benches
// and integration tests iterate this list so every experiment runs every
// method uniformly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "matrix/csr.h"

namespace tsg::obs {
struct MetricsSnapshot;
}  // namespace tsg::obs

namespace tsg {

/// Result of one profiled SpGEMM invocation: the product plus the two
/// numbers every figure needs.
struct SpgemmRunReport {
  Csr<double> c;         ///< the product, in CSR for cross-validation
  double core_ms = 0.0;  ///< milliseconds that count as "the SpGEMM"
  /// Peak tracked workspace MB during the core, read back from the
  /// obs::MetricsRegistry "memory.peak_bytes" gauge (the PeakMemoryScope
  /// inside `profiled` still performs the reset). The tracker is
  /// process-wide: reports produced by concurrent SpgemmService workers
  /// carry the service's high-water mark, not one request's.
  double peak_mb = 0.0;
  /// Budget outcome (TileSpGEMM only; the row-row baselines either fit or
  /// throw): execution chunks the run was split into (1 = single shot) and
  /// whether the modeled device budget forced that split.
  int chunks = 1;
  bool budget_limited = false;
  /// This run's registry delta (TileSpGEMM only, and only when the detail
  /// gate was on — see TileSpgemmTimings::metrics); null otherwise.
  std::shared_ptr<const obs::MetricsSnapshot> metrics;
  /// Request correlation, filled by SpgemmService for runs it executed
  /// (0 for direct library calls): the join keys into the trace stream,
  /// structured log records, and flight-recorder dumps.
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
};

struct SpgemmAlgorithm {
  std::string name;      ///< name used in output tables
  std::string proxies;   ///< the paper baseline this method stands in for
  bool is_tile = false;  ///< true for the paper's contribution
  /// The single profiled entry point — the registry's only entry-point
  /// shape (the unprofiled `run` shim was removed after its one-release
  /// deprecation window; callers that only want the product use
  /// `profiled(a, b).c`). `core_ms` and `peak_mb` cover what counts as
  /// "the SpGEMM" for this method: for TileSpGEMM both exclude the
  /// CSR<->tile conversions, matching Section 4.6 ("we always assume the
  /// matrix is already stored in the tiled format"); for the row-row
  /// methods they cover the whole call (their operands and outputs are
  /// natively CSR).
  std::function<SpgemmRunReport(const Csr<double>&, const Csr<double>&)> profiled;
};

/// The five methods in the paper's comparison order:
/// SPA (cuSPARSE), ESC (bhSPARSE), Hash (NSPARSE), Adaptive (spECK),
/// TileSpGEMM.
const std::vector<SpgemmAlgorithm>& paper_algorithms();

/// All methods including the extra heap accumulator and the reference.
const std::vector<SpgemmAlgorithm>& all_algorithms();

}  // namespace tsg
