#include "baselines/heap.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace tsg {

namespace {

/// One input stream of the k-way merge: a B row scaled by one A nonzero.
template <class T>
struct Stream {
  index_t col;     ///< current column (heap key)
  offset_t pos;    ///< current position in B's arrays
  offset_t end;    ///< one past the last position
  T scale;         ///< the A value multiplying this B row
};

template <class T>
struct HeapLess {
  bool operator()(const Stream<T>& x, const Stream<T>& y) const {
    return x.col > y.col;  // min-heap on column
  }
};

}  // namespace

template <class T>
Csr<T> spgemm_heap(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");
  Csr<T> c(a.rows, b.cols);

  std::vector<std::vector<std::pair<index_t, T>>> rows(static_cast<std::size_t>(a.rows));
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    std::vector<Stream<T>> heap;
    heap.reserve(static_cast<std::size_t>(a.row_nnz(i)));
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      const index_t j = a.col_idx[ka];
      if (b.row_ptr[j] == b.row_ptr[j + 1]) continue;
      heap.push_back(
          {b.col_idx[b.row_ptr[j]], b.row_ptr[j], b.row_ptr[j + 1], a.val[ka]});
    }
    std::make_heap(heap.begin(), heap.end(), HeapLess<T>{});

    auto& out = rows[static_cast<std::size_t>(i)];
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), HeapLess<T>{});
      Stream<T>& s = heap.back();
      const index_t col = s.col;
      const T product = s.scale * b.val[s.pos];
      if (!out.empty() && out.back().first == col) {
        out.back().second += product;
      } else {
        out.emplace_back(col, product);
      }
      if (++s.pos < s.end) {
        s.col = b.col_idx[s.pos];
        std::push_heap(heap.begin(), heap.end(), HeapLess<T>{});
      } else {
        heap.pop_back();
      }
    }
  });

  for (index_t i = 0; i < a.rows; ++i) {
    c.row_ptr[i + 1] =
        c.row_ptr[i] + static_cast<offset_t>(rows[static_cast<std::size_t>(i)].size());
  }
  c.col_idx.resize(static_cast<std::size_t>(c.nnz()));
  c.val.resize(static_cast<std::size_t>(c.nnz()));
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    offset_t dst = c.row_ptr[i];
    for (const auto& [col, v] : rows[static_cast<std::size_t>(i)]) {
      c.col_idx[dst] = col;
      c.val[dst] = v;
      ++dst;
    }
  });
  return c;
}

template Csr<double> spgemm_heap(const Csr<double>&, const Csr<double>&);
template Csr<float> spgemm_heap(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
