#include "baselines/auto_select.h"

#include <unordered_set>

#include "baselines/hash.h"
#include "common/bitops.h"
#include "common/memory.h"
#include "core/tile_spgemm.h"
#include "matrix/stats.h"

namespace tsg {

namespace {

/// Count non-empty 16x16 tiles without building the tile structure: walk
/// rows in tile-row bands and count distinct tile columns via a stamp set.
template <class T>
offset_t count_nonempty_tiles(const Csr<T>& m) {
  const index_t tile_rows = ceil_div(m.rows, kTileDim);
  const index_t tile_cols = ceil_div(m.cols, kTileDim);
  std::vector<std::uint32_t> seen(static_cast<std::size_t>(tile_cols), 0);
  std::uint32_t stamp = 0;
  offset_t tiles = 0;
  for (index_t tr = 0; tr < tile_rows; ++tr) {
    ++stamp;
    const index_t row_end = std::min<index_t>((tr + 1) * kTileDim, m.rows);
    for (index_t i = tr * kTileDim; i < row_end; ++i) {
      for (offset_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
        const std::size_t tc = static_cast<std::size_t>(m.col_idx[k] / kTileDim);
        if (seen[tc] != stamp) {
          seen[tc] = stamp;
          ++tiles;
        }
      }
    }
  }
  return tiles;
}

}  // namespace

template <class T>
WorkloadFeatures analyze_workload(const Csr<T>& a, const Csr<T>& b) {
  WorkloadFeatures f;
  f.nnz_a = a.nnz();
  f.nnz_b = b.nnz();
  const offset_t tiles_a = count_nonempty_tiles(a);
  const offset_t tiles_b = count_nonempty_tiles(b);
  f.avg_nnz_per_tile_a =
      tiles_a > 0 ? static_cast<double>(f.nnz_a) / static_cast<double>(tiles_a) : 0.0;
  f.avg_nnz_per_tile_b =
      tiles_b > 0 ? static_cast<double>(f.nnz_b) / static_cast<double>(tiles_b) : 0.0;
  f.intermediate_products = intermediate_products(a, b);
  f.products_fit_device =
      static_cast<std::size_t>(f.intermediate_products) * (sizeof(index_t) + sizeof(T)) <=
      device_memory_budget_bytes();
  return f;
}

SpgemmChoice select_algorithm(const WorkloadFeatures& f, double hyper_sparse_threshold) {
  const bool hyper_sparse = f.avg_nnz_per_tile_a < hyper_sparse_threshold &&
                            f.avg_nnz_per_tile_b < hyper_sparse_threshold;
  if (hyper_sparse && f.products_fit_device) return SpgemmChoice::kHash;
  return SpgemmChoice::kTile;
}

template <class T>
Csr<T> spgemm_auto(const Csr<T>& a, const Csr<T>& b, SpgemmChoice* chosen) {
  const WorkloadFeatures f = analyze_workload(a, b);
  const SpgemmChoice choice = select_algorithm(f);
  if (chosen != nullptr) *chosen = choice;
  switch (choice) {
    case SpgemmChoice::kHash:
      return spgemm_hash(a, b);
    case SpgemmChoice::kTile:
      break;
  }
  return spgemm_tile(a, b);
}

template WorkloadFeatures analyze_workload(const Csr<double>&, const Csr<double>&);
template WorkloadFeatures analyze_workload(const Csr<float>&, const Csr<float>&);
template Csr<double> spgemm_auto(const Csr<double>&, const Csr<double>&, SpgemmChoice*);
template Csr<float> spgemm_auto(const Csr<float>&, const Csr<float>&, SpgemmChoice*);

}  // namespace tsg
