#include "baselines/reference.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tsg {

template <class T>
Csr<T> spgemm_reference(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");

  Csr<T> c(a.rows, b.cols);
  std::vector<T> acc(static_cast<std::size_t>(b.cols), T{});
  std::vector<index_t> stamp(static_cast<std::size_t>(b.cols), -1);
  std::vector<index_t> cols_of_row;

  for (index_t i = 0; i < a.rows; ++i) {
    cols_of_row.clear();
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      const index_t j = a.col_idx[ka];
      const T va = a.val[ka];
      for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
        const index_t k = b.col_idx[kb];
        if (stamp[static_cast<std::size_t>(k)] != i) {
          stamp[static_cast<std::size_t>(k)] = i;
          acc[static_cast<std::size_t>(k)] = va * b.val[kb];
          cols_of_row.push_back(k);
        } else {
          acc[static_cast<std::size_t>(k)] += va * b.val[kb];
        }
      }
    }
    std::sort(cols_of_row.begin(), cols_of_row.end());
    for (index_t k : cols_of_row) {
      c.col_idx.push_back(k);
      c.val.push_back(acc[static_cast<std::size_t>(k)]);
    }
    c.row_ptr[i + 1] = static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

template Csr<double> spgemm_reference(const Csr<double>&, const Csr<double>&);
template Csr<float> spgemm_reference(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
