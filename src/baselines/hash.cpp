#include "baselines/hash.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"

namespace tsg {

namespace {

/// Rows whose intermediate-product bound fits this use the fixed "shared
/// memory" table; beyond it the row falls into the global-table bin.
constexpr index_t kStackTableSize = 512;  // power of two

inline std::uint32_t hash_col(index_t c, std::uint32_t table_mask) {
  // Fibonacci hashing: good spread for the structured column patterns
  // (bands, blocks) our generators produce.
  return (static_cast<std::uint32_t>(c) * 2654435761u) & table_mask;
}

/// Open-addressing insert of `col`; returns true if newly inserted.
inline bool table_insert(index_t* keys, std::uint32_t table_mask, index_t col) {
  std::uint32_t h = hash_col(col, table_mask);
  while (true) {
    if (keys[h] == col) return false;
    if (keys[h] < 0) {
      keys[h] = col;
      return true;
    }
    h = (h + 1) & table_mask;
  }
}

/// Open-addressing accumulate of (col, v).
template <class T>
inline void table_accumulate(index_t* keys, T* vals, std::uint32_t table_mask, index_t col,
                             T v) {
  std::uint32_t h = hash_col(col, table_mask);
  while (true) {
    if (keys[h] == col) {
      vals[h] += v;
      return;
    }
    if (keys[h] < 0) {
      keys[h] = col;
      vals[h] = v;
      return;
    }
    h = (h + 1) & table_mask;
  }
}

inline std::uint32_t table_size_for(offset_t bound) {
  // Load factor <= 0.5, minimum 16 slots.
  const auto need = static_cast<std::uint64_t>(bound) * 2 + 1;
  return static_cast<std::uint32_t>(std::bit_ceil(std::max<std::uint64_t>(need, 16)));
}

/// Per-thread reusable global-bin table (tracked: models the NSPARSE
/// global-memory hash tables).
template <class T>
struct BigTable {
  std::vector<index_t> keys;
  std::vector<T> vals;
  std::size_t tracked_bytes = 0;

  void ensure(std::uint32_t size) {
    if (keys.size() < size) {
      MemoryTracker::instance().sub(tracked_bytes);
      keys.assign(size, -1);
      vals.assign(size, T{});
      tracked_bytes = size * (sizeof(index_t) + sizeof(T));
      MemoryTracker::instance().add(tracked_bytes);
    }
  }
};

template <class T>
BigTable<T>& big_table() {
  thread_local BigTable<T> t;
  return t;
}

template <class T, bool kNumeric>
void hash_pass(const Csr<T>& a, const Csr<T>& b, Csr<T>& c,
               const tracked_vector<offset_t>& bound) {
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    const offset_t row_bound = bound[i + 1] - bound[i];
    if (row_bound == 0) {
      if constexpr (!kNumeric) c.row_ptr[i + 1] = 0;
      return;
    }
    const std::uint32_t size = table_size_for(row_bound);
    const std::uint32_t mask = size - 1;

    index_t stack_keys[kStackTableSize];
    T stack_vals[kStackTableSize];
    index_t* keys;
    T* vals;
    if (size <= kStackTableSize) {
      std::fill(stack_keys, stack_keys + size, index_t{-1});
      keys = stack_keys;
      vals = stack_vals;
    } else {
      BigTable<T>& big = big_table<T>();
      big.ensure(size);
      std::fill(big.keys.begin(), big.keys.begin() + size, index_t{-1});
      keys = big.keys.data();
      vals = big.vals.data();
    }

    offset_t distinct = 0;
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      const index_t j = a.col_idx[ka];
      const T va = a.val[ka];
      for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
        if constexpr (kNumeric) {
          table_accumulate(keys, vals, mask, b.col_idx[kb], va * b.val[kb]);
        } else {
          if (table_insert(keys, mask, b.col_idx[kb])) ++distinct;
        }
      }
    }

    if constexpr (!kNumeric) {
      c.row_ptr[i + 1] = distinct;
    } else {
      // Extract, sort by column, write to the pre-allocated row.
      const offset_t lo = c.row_ptr[i];
      offset_t dst = lo;
      for (std::uint32_t h = 0; h < size; ++h) {
        if (keys[h] >= 0) {
          c.col_idx[dst] = keys[h];
          c.val[dst] = vals[h];
          ++dst;
        }
      }
      std::vector<std::pair<index_t, T>> row(static_cast<std::size_t>(dst - lo));
      for (std::size_t k = 0; k < row.size(); ++k) {
        row[k] = {c.col_idx[lo + static_cast<offset_t>(k)],
                  c.val[lo + static_cast<offset_t>(k)]};
      }
      std::sort(row.begin(), row.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      for (std::size_t k = 0; k < row.size(); ++k) {
        c.col_idx[lo + static_cast<offset_t>(k)] = row[k].first;
        c.val[lo + static_cast<offset_t>(k)] = row[k].second;
      }
    }
  });
}

template <class T>
tracked_vector<offset_t> upper_bounds(const Csr<T>& a, const Csr<T>& b) {
  tracked_vector<offset_t> bound(static_cast<std::size_t>(a.rows) + 1, 0);
  for (index_t i = 0; i < a.rows; ++i) {
    offset_t products = 0;
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      products += b.row_nnz(a.col_idx[ka]);
    }
    bound[i + 1] = bound[i] + products;
  }
  return bound;
}

}  // namespace

/// NSPARSE sizes its global-memory hash table region by the total upper
/// bound of intermediate products; model that footprint against the device
/// budget (this is where NSPARSE fails on SiO2/TSOPF/gupta3-class matrices
/// in the paper).
template <class T>
void check_global_table_budget(const tracked_vector<offset_t>& bound, index_t rows) {
  const offset_t total_products = bound[rows];
  check_workspace_budget(static_cast<std::size_t>(total_products) *
                         (sizeof(index_t) + sizeof(T)));
}

template <class T>
Csr<T> spgemm_hash(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");
  Csr<T> c(a.rows, b.cols);
  const tracked_vector<offset_t> bound = upper_bounds(a, b);
  check_global_table_budget<T>(bound, a.rows);

  hash_pass<T, false>(a, b, c, bound);  // symbolic round
  for (index_t i = 0; i < a.rows; ++i) c.row_ptr[i + 1] += c.row_ptr[i];
  c.col_idx.resize(static_cast<std::size_t>(c.nnz()));
  c.val.resize(static_cast<std::size_t>(c.nnz()));
  hash_pass<T, true>(a, b, c, bound);  // numeric round
  return c;
}

template <class T>
Csr<T> spgemm_hash_symbolic(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");
  Csr<T> c(a.rows, b.cols);
  const tracked_vector<offset_t> bound = upper_bounds(a, b);
  hash_pass<T, false>(a, b, c, bound);
  for (index_t i = 0; i < a.rows; ++i) c.row_ptr[i + 1] += c.row_ptr[i];
  c.col_idx.resize(static_cast<std::size_t>(c.nnz()));
  c.val.assign(static_cast<std::size_t>(c.nnz()), T{1});
  // Fill the pattern via the numeric pass on unit values for simplicity.
  hash_pass<T, true>(a, b, c, bound);
  for (auto& v : c.val) v = T{1};
  return c;
}

template Csr<double> spgemm_hash(const Csr<double>&, const Csr<double>&);
template Csr<float> spgemm_hash(const Csr<float>&, const Csr<float>&);
template Csr<double> spgemm_hash_symbolic(const Csr<double>&, const Csr<double>&);
template Csr<float> spgemm_hash_symbolic(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
