#include "baselines/speck.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"

namespace tsg {

namespace {

enum class RowBin : std::uint8_t { kEmpty, kTiny, kStackHash, kDenseSpa, kGlobalHash };

constexpr offset_t kTinyBound = 16;
constexpr offset_t kStackBound = 512;
/// If the product bound exceeds this fraction of the row width, a dense SPA
/// is cheaper than hashing.
constexpr double kDenseFraction = 0.40;

inline std::uint32_t hash_col(index_t c, std::uint32_t mask) {
  return (static_cast<std::uint32_t>(c) * 2654435761u) & mask;
}

/// Per-thread scratch shared by the dense-SPA and global-hash bins.
template <class T>
struct SpeckScratch {
  // dense SPA
  std::vector<T> acc;
  std::vector<std::int64_t> stamp;
  std::int64_t epoch = 0;
  std::vector<index_t> cols;
  // global hash
  std::vector<index_t> keys;
  std::vector<T> vals;
  std::size_t tracked_bytes = 0;

  void ensure_dense(index_t width) {
    if (stamp.size() < static_cast<std::size_t>(width)) {
      acc.assign(static_cast<std::size_t>(width), T{});
      stamp.assign(static_cast<std::size_t>(width), -1);
    }
  }
  void ensure_hash(std::uint32_t size) {
    if (keys.size() < size) {
      MemoryTracker::instance().sub(tracked_bytes);
      keys.assign(size, -1);
      vals.assign(size, T{});
      tracked_bytes = size * (sizeof(index_t) + sizeof(T));
      MemoryTracker::instance().add(tracked_bytes);
    }
  }
};

template <class T>
SpeckScratch<T>& speck_scratch() {
  thread_local SpeckScratch<T> s;
  return s;
}

template <class T>
RowBin classify(offset_t bound, index_t cols) {
  if (bound == 0) return RowBin::kEmpty;
  if (bound <= kTinyBound) return RowBin::kTiny;
  if (static_cast<double>(bound) >= kDenseFraction * static_cast<double>(cols)) {
    return RowBin::kDenseSpa;
  }
  if (bound <= kStackBound) return RowBin::kStackHash;
  return RowBin::kGlobalHash;
}

/// Process one row with the chosen accumulator. When kNumeric, writes the
/// sorted row into c at c.row_ptr[i]; otherwise stores the count.
template <class T, bool kNumeric>
void process_row(const Csr<T>& a, const Csr<T>& b, Csr<T>& c, index_t i, RowBin bin) {
  switch (bin) {
    case RowBin::kEmpty: {
      if constexpr (!kNumeric) c.row_ptr[i + 1] = 0;
      return;
    }
    case RowBin::kTiny: {
      // Direct insertion into a small sorted array.
      index_t cols_buf[kTinyBound];
      T vals_buf[kTinyBound];
      int n = 0;
      for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
        const index_t j = a.col_idx[ka];
        const T va = a.val[ka];
        for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
          const index_t col = b.col_idx[kb];
          const T product = va * b.val[kb];
          int pos = 0;
          while (pos < n && cols_buf[pos] < col) ++pos;
          if (pos < n && cols_buf[pos] == col) {
            vals_buf[pos] += product;
          } else {
            for (int m = n; m > pos; --m) {
              cols_buf[m] = cols_buf[m - 1];
              vals_buf[m] = vals_buf[m - 1];
            }
            cols_buf[pos] = col;
            vals_buf[pos] = product;
            ++n;
          }
        }
      }
      if constexpr (!kNumeric) {
        c.row_ptr[i + 1] = n;
      } else {
        offset_t dst = c.row_ptr[i];
        for (int k = 0; k < n; ++k, ++dst) {
          c.col_idx[dst] = cols_buf[k];
          c.val[dst] = vals_buf[k];
        }
      }
      return;
    }
    case RowBin::kDenseSpa: {
      SpeckScratch<T>& s = speck_scratch<T>();
      s.ensure_dense(b.cols);
      ++s.epoch;
      s.cols.clear();
      for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
        const index_t j = a.col_idx[ka];
        const T va = a.val[ka];
        for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
          const index_t col = b.col_idx[kb];
          if (s.stamp[static_cast<std::size_t>(col)] != s.epoch) {
            s.stamp[static_cast<std::size_t>(col)] = s.epoch;
            s.acc[static_cast<std::size_t>(col)] = va * b.val[kb];
            s.cols.push_back(col);
          } else {
            s.acc[static_cast<std::size_t>(col)] += va * b.val[kb];
          }
        }
      }
      if constexpr (!kNumeric) {
        c.row_ptr[i + 1] = static_cast<offset_t>(s.cols.size());
      } else {
        std::sort(s.cols.begin(), s.cols.end());
        offset_t dst = c.row_ptr[i];
        for (index_t col : s.cols) {
          c.col_idx[dst] = col;
          c.val[dst] = s.acc[static_cast<std::size_t>(col)];
          ++dst;
        }
      }
      return;
    }
    case RowBin::kStackHash:
    case RowBin::kGlobalHash: {
      offset_t bound = 0;
      for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
        bound += b.row_nnz(a.col_idx[ka]);
      }
      const std::uint32_t size = static_cast<std::uint32_t>(
          std::bit_ceil(std::max<std::uint64_t>(static_cast<std::uint64_t>(bound) * 2, 16)));
      const std::uint32_t mask = size - 1;

      index_t stack_keys[2 * kStackBound];
      T stack_vals[2 * kStackBound];
      index_t* keys;
      T* vals;
      if (bin == RowBin::kStackHash) {
        std::fill(stack_keys, stack_keys + size, index_t{-1});
        keys = stack_keys;
        vals = stack_vals;
      } else {
        SpeckScratch<T>& s = speck_scratch<T>();
        s.ensure_hash(size);
        std::fill(s.keys.begin(), s.keys.begin() + size, index_t{-1});
        keys = s.keys.data();
        vals = s.vals.data();
      }

      offset_t n = 0;
      for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
        const index_t j = a.col_idx[ka];
        const T va = a.val[ka];
        for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
          const index_t col = b.col_idx[kb];
          std::uint32_t h = hash_col(col, mask);
          while (true) {
            if (keys[h] == col) {
              vals[h] += va * b.val[kb];
              break;
            }
            if (keys[h] < 0) {
              keys[h] = col;
              vals[h] = va * b.val[kb];
              ++n;
              break;
            }
            h = (h + 1) & mask;
          }
        }
      }
      if constexpr (!kNumeric) {
        c.row_ptr[i + 1] = n;
      } else {
        std::vector<std::pair<index_t, T>> row;
        row.reserve(static_cast<std::size_t>(n));
        for (std::uint32_t h = 0; h < size; ++h) {
          if (keys[h] >= 0) row.emplace_back(keys[h], vals[h]);
        }
        std::sort(row.begin(), row.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        offset_t dst = c.row_ptr[i];
        for (const auto& [col, v] : row) {
          c.col_idx[dst] = col;
          c.val[dst] = v;
          ++dst;
        }
      }
      return;
    }
  }
}

}  // namespace

template <class T>
Csr<T> spgemm_speck(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");
  Csr<T> c(a.rows, b.cols);

  // Lightweight analysis: bound + bin per row.
  tracked_vector<std::uint8_t> bins(static_cast<std::size_t>(a.rows));
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    offset_t bound = 0;
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      bound += b.row_nnz(a.col_idx[ka]);
    }
    bins[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(classify<T>(bound, b.cols));
  });

  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    process_row<T, false>(a, b, c, i, static_cast<RowBin>(bins[static_cast<std::size_t>(i)]));
  });
  for (index_t i = 0; i < a.rows; ++i) c.row_ptr[i + 1] += c.row_ptr[i];
  c.col_idx.resize(static_cast<std::size_t>(c.nnz()));
  c.val.resize(static_cast<std::size_t>(c.nnz()));
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    process_row<T, true>(a, b, c, i, static_cast<RowBin>(bins[static_cast<std::size_t>(i)]));
  });
  return c;
}

template Csr<double> spgemm_speck(const Csr<double>&, const Csr<double>&);
template Csr<float> spgemm_speck(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
