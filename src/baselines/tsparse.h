// Dense-tile SpGEMM — the proxy for the tSparse baseline (Zachariadis,
// Satpute, Gómez-Luna & Olivares, 2020).
//
// tSparse stores matrices as tiles like TileSpGEMM, but multiplies matched
// tile pairs as *dense* 16x16 blocks on tensor cores with half-precision
// inputs and single-precision accumulation, materialises the dense result
// tiles in global memory, and converts them back to sparse afterwards. Its
// two defining costs, both visible in the paper's Figs. 13/14, are
// reproduced here:
//   * dense tile math wastes intra-tile sparsity (16^3 MACs per pair
//     regardless of the pair's nonzero count), and
//   * the dense intermediate tiles of C live in a large global buffer whose
//     (re)allocation dominates on many matrices.
// Values are stored through tsg::half and accumulated in float, matching
// tSparse's half-in / single-out contract.
//
// Note on semantics: converting a dense tile back to sparse drops entries
// that are numerically zero, so unlike the other methods tSparse prunes
// cancellation zeros. The validation tests therefore use strictly positive
// values when comparing against it.
#pragma once

#include "matrix/csr.h"

namespace tsg {

/// Per-phase breakdown matching Fig. 14's categories.
struct TsparseTimings {
  double step1_ms = 0.0;  ///< tile-structure symbolic
  double step2_ms = 0.0;  ///< dense tile multiplication
  double step3_ms = 0.0;  ///< dense -> sparse conversion of C
  double alloc_ms = 0.0;  ///< global dense intermediate allocation

  double total_ms() const { return step1_ms + step2_ms + step3_ms + alloc_ms; }
};

Csr<float> spgemm_tsparse(const Csr<float>& a, const Csr<float>& b,
                          TsparseTimings* timings = nullptr);

}  // namespace tsg
