#include "baselines/spa.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"

namespace tsg {

namespace {

/// Per-thread dense accumulator over the full column range. Stamps are a
/// monotone per-thread epoch, so the scratch never needs clearing and can
/// be reused safely across rows, phases and multiplications.
template <class T>
struct SpaScratch {
  std::vector<T> acc;
  std::vector<std::int64_t> stamp;
  std::vector<index_t> cols;
  std::int64_t epoch = 0;

  void prepare(index_t width) {
    if (stamp.size() < static_cast<std::size_t>(width)) {
      acc.assign(static_cast<std::size_t>(width), T{});
      stamp.assign(static_cast<std::size_t>(width), -1);
      // The dense scratch is the method's defining global footprint; count
      // it against the tracker like the device allocation it models.
      MemoryTracker::instance().add(static_cast<std::size_t>(width) *
                                    (sizeof(T) + sizeof(std::int64_t)));
    }
    cols.clear();
    ++epoch;
  }
};

template <class T>
SpaScratch<T>& scratch_for() {
  thread_local SpaScratch<T> s;
  return s;
}

}  // namespace

template <class T>
Csr<T> spgemm_spa(const Csr<T>& a, const Csr<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("spgemm: inner dimensions differ");
  Csr<T> c(a.rows, b.cols);

  // cuSPARSE's generic CSR SpGEMM stages O(intermediate products) of
  // working buffers on the device; model that footprint so the proxy fails
  // on the same high-flop matrices (pkustk12, SiO2, TSOPF, gupta3).
  {
    offset_t products = 0;
    for (index_t i = 0; i < a.rows; ++i) {
      for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        products += b.row_nnz(a.col_idx[k]);
      }
    }
    check_workspace_budget(static_cast<std::size_t>(products) *
                           (sizeof(index_t) + sizeof(T)));
  }

  // Symbolic phase: count nnz per C row.
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    SpaScratch<T>& s = scratch_for<T>();
    s.prepare(b.cols);
    offset_t count = 0;
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      const index_t j = a.col_idx[ka];
      for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
        const index_t k = b.col_idx[kb];
        if (s.stamp[static_cast<std::size_t>(k)] != s.epoch) {
          s.stamp[static_cast<std::size_t>(k)] = s.epoch;
          ++count;
        }
      }
    }
    c.row_ptr[i + 1] = count;
  });
  for (index_t i = 0; i < a.rows; ++i) c.row_ptr[i + 1] += c.row_ptr[i];
  c.col_idx.resize(static_cast<std::size_t>(c.nnz()));
  c.val.resize(static_cast<std::size_t>(c.nnz()));

  // Numeric phase.
  parallel_for(index_t{0}, a.rows, [&](index_t i) {
    SpaScratch<T>& s = scratch_for<T>();
    s.prepare(b.cols);
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      const index_t j = a.col_idx[ka];
      const T va = a.val[ka];
      for (offset_t kb = b.row_ptr[j]; kb < b.row_ptr[j + 1]; ++kb) {
        const index_t k = b.col_idx[kb];
        if (s.stamp[static_cast<std::size_t>(k)] != s.epoch) {
          s.stamp[static_cast<std::size_t>(k)] = s.epoch;
          s.acc[static_cast<std::size_t>(k)] = va * b.val[kb];
          s.cols.push_back(k);
        } else {
          s.acc[static_cast<std::size_t>(k)] += va * b.val[kb];
        }
      }
    }
    std::sort(s.cols.begin(), s.cols.end());
    offset_t dst = c.row_ptr[i];
    for (index_t k : s.cols) {
      c.col_idx[dst] = k;
      c.val[dst] = s.acc[static_cast<std::size_t>(k)];
      ++dst;
    }
  });
  return c;
}

template Csr<double> spgemm_spa(const Csr<double>&, const Csr<double>&);
template Csr<float> spgemm_spa(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
