// Heap (priority-queue) SpGEMM accumulator — the k-way-merge family used by
// bhSPARSE's middle bins (Liu & Vinter) and by Azad et al. on CPUs.
//
// For each C row, the scaled B rows selected by the A row are merged with a
// binary heap keyed on column index; equal columns are accumulated as they
// are popped, so the output row is produced directly in sorted order with
// no post-sort and no dense scratch. O(products * log(row_nnz(A))) work.
#pragma once

#include "matrix/csr.h"

namespace tsg {

template <class T>
Csr<T> spgemm_heap(const Csr<T>& a, const Csr<T>& b);

extern template Csr<double> spgemm_heap(const Csr<double>&, const Csr<double>&);
extern template Csr<float> spgemm_heap(const Csr<float>&, const Csr<float>&);

}  // namespace tsg
