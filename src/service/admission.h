// Admission-control footprint estimation for SpgemmService.
//
// The context's own budget planner (plan_budget, spgemm_context.cpp) bounds
// a multiply's device footprint *after* step 1 has fixed C's tile
// structure. A service deciding whether to admit a request cannot afford to
// run step 1 on the submission thread, so this header computes the same
// kind of bound from the CSR operands alone, in one O(nnz(A) + nnz(B))
// pass: it counts A's occupied tiles per tile-column and B's occupied
// tiles per tile-row exactly, and from them bounds the number of matched
// tile pairs — which simultaneously bounds ntiles(C) and the pair-cache
// staging the planner would charge. OCEAN-style estimate-before-execute
// (PAPERS.md): plan in O(sample-ish), execute only what was admitted.
//
// The estimate is deliberately an *upper bound*, never an undercount, so
// admission decisions made from it are always safe: a request admitted as
// "fits" may still be degraded by the context's authoritative post-step-1
// check, but a request this header calls over-budget genuinely is.
#pragma once

#include <cstddef>

#include "matrix/csr.h"

namespace tsg::service {

/// Upper bound on the device-side footprint of C = A * B in bytes, plus
/// the intermediate counts it was derived from (reported through the
/// service metrics so operators can see *why* a request was degraded).
struct FootprintEstimate {
  std::size_t bytes = 0;        ///< SIZE_MAX when the arithmetic saturated
  std::size_t tile_pairs = 0;   ///< bound on matched (A_ik, B_kj) tile pairs
  std::size_t c_tiles = 0;      ///< bound on nonzero tiles of C
};

/// Estimate the footprint of C = A * B from CSR operands. `b` may alias `a`
/// (the C = A*A case); the scan then runs once. Both operands must be
/// structurally valid CSR (the service validates before estimating).
FootprintEstimate estimate_footprint(const Csr<double>& a, const Csr<double>& b);

}  // namespace tsg::service
