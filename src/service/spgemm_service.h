// SpgemmService — the multi-tenant, asynchronous front end over
// SpgemmContext: the ROADMAP's "millions of users" story.
//
// One service owns a bounded MPMC request queue (common/bounded_queue.h)
// and a pool of N warm workers, each pinned to its *own* pooled
// SpgemmContext — contexts are single-caller objects, so per-worker
// ownership is what turns the PR-1 workspace pooling into a concurrency
// story: after warm-up each worker multiplies out of steady-state buffers
// with no cross-worker sharing to race on.
//
//     SpgemmService svc(SpgemmService::Config::from_env());
//     std::future<SpgemmRunReport> f = svc.submit({a});       // C = A*A
//     Expected<Ticket> t = svc.try_submit({a, b});            // non-blocking
//     ...
//     svc.shutdown(SpgemmService::DrainMode::kDrain);
//
// Submission flavours (same request, different backpressure):
//   * submit()      blocks while the queue is full; always returns a future.
//     Admission rejection and shutdown arrive *through* the future as a
//     tsg::Error (Rejected / Cancelled) so every submit has exactly one
//     delivery path.
//   * try_submit()  never blocks; QueueFull / Rejected / Cancelled come
//     back as a structured Status in the Expected, and no future is
//     created for a request that was never queued.
//
// Admission control (estimate-before-execute, in the spirit of OCEAN's
// planning pass — PAPERS.md): at enqueue time the service bounds the
// request's device footprint from the CSR operands (service/admission.h)
// against the service-wide device budget:
//   * fits            -> admitted; small requests are batched per worker
//                        wake-up (Config::batch_max / small_request_bytes).
//   * over budget,
//     degradation on  -> admitted in chunked-degradation mode: the worker's
//                        context splits the run into tile-row chunks that
//                        fit (bit-identical stitch, the PR-2 machinery) and
//                        the in-flight budget gate runs it exclusively.
//   * over budget,
//     degradation off -> Rejected with a structured Status, at submit time,
//                        instead of an OOM (or BudgetExceeded) minutes
//                        later inside a worker.
// Config::admission_enforce(false) switches admission to observe-only
// (shadow mode): everything is admitted and classified, enforcement falls
// to the context's authoritative post-step-1 check — a worker hitting
// BudgetExceeded then poisons only its own future.
//
// Shutdown has exactly two well-defined outcomes per pending future:
//   * DrainMode::kDrain  — every queued request still executes; futures
//     complete with values (or that request's own error).
//   * DrainMode::kCancel — queued-but-unstarted requests fail with
//     Cancelled; in-flight requests still complete normally.
// The destructor drains. Both modes reject new submissions immediately.
//
// Observability: the whole path is instrumented through the obs layer —
// spans `service.submit` / `service.worker.run`, counters
// `service.submitted/admitted/degraded/rejected/queue_full/cancelled/
// completed/failed/batches`, histograms `service.queue_wait_us` /
// `service.latency_us`, gauges `service.queue_depth` /
// `service.inflight_bytes`.
//
// Request correlation: admission mints an obs::RequestContext
// {trace_id, request_id, tag} that rides the Pending item through the
// queue; the worker installs it (obs::RequestScope) around process(), so
// every trace event underneath — service.worker.run, the spgemm.* step
// spans, per-chunk events — plus every log record and flight-recorder
// entry carries the same ids. Lifecycle instants
// (`service.request.queued/evicted/retry/completed/failed/watchdog_kill`)
// make one request's history a single joinable Perfetto track, and the
// completed report echoes request_id/trace_id (SpgemmRunReport).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "common/bounded_queue.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "core/spgemm_context.h"
#include "obs/request_context.h"
#include "service/admission.h"

namespace tsg::service {

/// One multiply, submitted by value. Operands are shared_ptr so a replay
/// over a fixed suite (or a chain reusing its own output) never copies a
/// matrix into the queue; `b == nullptr` means C = A*A.
struct SpgemmRequest {
  std::shared_ptr<const Csr<double>> a;
  std::shared_ptr<const Csr<double>> b;  ///< null: C = A * A
  /// Permit chunked-degradation admission for this request when its
  /// estimate exceeds the service budget; false demands a single-shot run
  /// (over-budget then means Rejected at submit).
  bool allow_degraded = true;
  /// Caller correlation id, echoed on the Ticket (never interpreted).
  std::uint64_t tag = 0;
};

/// Per-request lifecycle options (the second argument of submit /
/// try_submit). Defaults are the PR-6 behaviour: no deadline, no retries.
struct SubmitOptions {
  /// Absolute deadline for the whole request (queue wait + execution). An
  /// expired request is *evicted* at pop time — poisoned with
  /// kDeadlineExceeded, never run — and a request that expires mid-run is
  /// stopped cooperatively at the next chunk/tile boundary with the same
  /// status. Unarmed (default) means no deadline.
  Deadline deadline{};
  /// Transparent retries for transient failures (kAllocationFailed). Each
  /// retry waits an exponential backoff with deterministic jitter, spends
  /// one token of the service-wide retry budget (Config::retry_budget),
  /// and re-checks the deadline first. 0 (default) disables retries; a
  /// completed-after-retry result is bit-identical to a direct try_run.
  int max_retries = 0;
  /// Caller correlation id; when nonzero it overrides SpgemmRequest::tag
  /// on the ticket.
  std::uint64_t tag = 0;

  SubmitOptions& with_deadline(Deadline d) { deadline = d; return *this; }
  SubmitOptions& with_timeout(std::chrono::milliseconds ms) {
    deadline = Deadline::after(ms);
    return *this;
  }
  SubmitOptions& with_retries(int n) { max_retries = n; return *this; }
  SubmitOptions& with_tag(std::uint64_t t) { tag = t; return *this; }
};

/// How admission classified a request (recorded on the ticket and in the
/// `service.admitted` / `service.degraded` counters).
enum class Admission {
  kAdmitted,  ///< estimated to fit the service budget single-shot
  kDegraded,  ///< over budget; will run in chunked-degradation mode
};

/// Receipt of an accepted submission.
struct Ticket {
  std::uint64_t id = 0;        ///< service-unique, monotonically increasing
  std::uint64_t tag = 0;       ///< echoed from the request / SubmitOptions
  /// Trace correlation id minted at admission; every trace event, log
  /// record, and flight-recorder entry this request produces carries it.
  std::uint64_t trace_id = 0;
  Admission admission = Admission::kAdmitted;
  std::size_t estimated_bytes = 0;  ///< admission footprint bound
  std::future<SpgemmRunReport> result;
  /// Caller-side cancellation handle: request_cancel() stops the request
  /// cooperatively — evicted if still queued, stopped at the next
  /// chunk/tile boundary if running — and its future fails with
  /// kCancelled. Safe to drop if unused.
  CancelSource cancel;
};

class SpgemmService {
 public:
  /// Service knobs; context knobs nest as `context`. from_env() layers
  /// TSG_SERVICE_WORKERS / TSG_SERVICE_QUEUE_CAP over
  /// SpgemmContext::Config::from_env() (see the env-knob table in
  /// docs/ARCHITECTURE.md).
  struct Config {
    /// Worker threads, each owning one warm pooled context. 0 is a valid
    /// queue-only configuration (nothing executes until shutdown(kDrain)
    /// drains inline, or kCancel fails everything) — used by tests to make
    /// saturation deterministic.
    int workers = 2;
    /// Bounded queue capacity; submit() blocks and try_submit() returns
    /// QueueFull beyond it.
    std::size_t queue_capacity = 64;
    /// Admission decisions per wake-up: a worker that pops a small request
    /// keeps popping while requests stay small, up to this many, before
    /// running them back to back (one condvar wake per batch, warm caches).
    std::size_t batch_max = 8;
    /// Estimated-footprint ceiling below which a request counts as small
    /// for batching.
    std::size_t small_request_bytes = std::size_t{4} << 20;
    /// true (default): admission *enforces* the budget (reject / degrade at
    /// submit). false: observe-only shadow mode — everything is admitted
    /// and classified, and the context's post-step-1 check is the only
    /// enforcement (a worker's BudgetExceeded poisons that future only).
    bool admission_enforce = true;
    /// Per-worker context configuration. `threads` is forced to 0 (workers
    /// must not race on the process-wide thread-count guard) and
    /// `device_mem_mb` to 0 (the service publishes the budget once instead
    /// of each context re-publishing it).
    SpgemmContext::Config context{};
    /// Service-wide modeled device budget in MB; 0 keeps the ambient
    /// TSG_DEVICE_MEM_MB setting. Published process-wide at service
    /// construction, shared by admission and every worker context.
    std::size_t device_mem_mb = 0;
    /// When an admitted request's estimate exceeds the budget: true admits
    /// it in chunked-degradation mode (if the request allows), false
    /// rejects it at submit.
    bool degrade_on_budget = true;
    /// Watchdog threshold: a worker whose active request has made no
    /// progress (progress epoch unchanged — see common/cancellation.h) for
    /// this long is declared stuck: exactly that request's future is
    /// poisoned, its token cancelled, and the worker is superseded by a
    /// fresh one (new thread, new warm context) so the service keeps
    /// serving even if the old worker never returns. zero() (default)
    /// disables supervision — tier-1 behaviour is unchanged unless a
    /// deployment opts in.
    std::chrono::milliseconds stuck_after{0};
    /// Service-wide retry budget: the maximum number of retry tokens
    /// available at once. Each backoff-retry (SubmitOptions::max_retries)
    /// spends one; every successfully completed request refunds one (up to
    /// the cap), so a failure storm degrades to fail-fast instead of
    /// amplifying load with synchronized retries.
    int retry_budget = 64;

    Config& with_stuck_after(std::chrono::milliseconds d) { stuck_after = d; return *this; }
    Config& with_retry_budget(int n) { retry_budget = n; return *this; }

    Config& with_workers(int n) { workers = n; return *this; }
    Config& with_queue_capacity(std::size_t n) { queue_capacity = n; return *this; }
    Config& with_batch_max(std::size_t n) { batch_max = n; return *this; }
    Config& with_small_request_bytes(std::size_t b) { small_request_bytes = b; return *this; }
    Config& with_admission_enforce(bool on) { admission_enforce = on; return *this; }
    Config& with_context(const SpgemmContext::Config& c) { context = c; return *this; }
    Config& with_device_mem_mb(std::size_t mb) { device_mem_mb = mb; return *this; }
    Config& with_degradation(bool on) { degrade_on_budget = on; return *this; }

    /// TSG_SERVICE_WORKERS / TSG_SERVICE_QUEUE_CAP / TSG_SERVICE_STUCK_MS
    /// on top of the context env knobs (SpgemmContext::Config::from_env).
    static Config from_env();
  };

  enum class DrainMode {
    kDrain,   ///< execute everything still queued, then stop
    kCancel,  ///< fail queued-but-unstarted requests with Cancelled
  };

  SpgemmService() : SpgemmService(Config{}) {}
  explicit SpgemmService(const Config& config);

  /// Drains (DrainMode::kDrain): destruction never abandons a future.
  ~SpgemmService();

  SpgemmService(const SpgemmService&) = delete;
  SpgemmService& operator=(const SpgemmService&) = delete;

  const Config& config() const { return cfg_; }

  /// Non-blocking twin of submit(): admission + enqueue without waiting.
  /// QueueFull (queue at capacity), Rejected (over budget, degradation
  /// unavailable), Cancelled (service shut down), DimensionMismatch /
  /// InvalidArgument (malformed request) come back as the Expected's
  /// Status; on success the Ticket carries the future, the admission
  /// classification, and the cancellation handle. `options` binds the
  /// per-request lifecycle: deadline, retries, tag.
  Expected<Ticket> try_submit(SpgemmRequest request, SubmitOptions options = {});

  /// Blocking twin of try_submit(): waits for queue space instead of
  /// returning QueueFull, and always returns a future — admission
  /// rejection and shutdown are delivered through it as tsg::Error
  /// (Rejected / Cancelled), so fire-and-wait callers have one error path.
  std::future<SpgemmRunReport> submit(SpgemmRequest request, SubmitOptions options = {});

  /// Stop the service. Idempotent; both modes reject new submissions
  /// immediately. kDrain executes the backlog (inline on the calling
  /// thread when workers == 0), kCancel fails it with Cancelled. In-flight
  /// requests always complete.
  void shutdown(DrainMode mode = DrainMode::kDrain);

  /// Requests currently queued (not yet picked up by a worker).
  std::size_t queue_depth() const { return queue_->size(); }

  /// Service-wide modeled device budget admission checks against.
  std::size_t budget_bytes() const { return budget_bytes_; }

 private:
  /// Shared completion state of one request. shared_ptr'd because *two*
  /// parties may race to resolve the future — the owning worker and the
  /// watchdog (which poisons a stuck worker's request from outside). The
  /// `resolved` exchange is the single-delivery guard: whoever flips it
  /// first owns the promise, the loser drops its outcome.
  struct RequestState {
    std::promise<SpgemmRunReport> promise;
    std::atomic<bool> resolved{false};
    CancelSource cancel;  ///< deadline + caller/watchdog/chaos cancellation

    /// True when this call resolved the promise (value delivered).
    bool resolve(SpgemmRunReport&& report) {
      if (resolved.exchange(true, std::memory_order_acq_rel)) return false;
      promise.set_value(std::move(report));
      return true;
    }
    /// True when this call resolved the promise (error delivered).
    bool resolve(Status status) {
      if (resolved.exchange(true, std::memory_order_acq_rel)) return false;
      promise.set_exception(std::make_exception_ptr(Error(std::move(status))));
      return true;
    }
  };

  struct Pending {
    SpgemmRequest request;
    SubmitOptions options;
    std::shared_ptr<RequestState> state;
    std::uint64_t id = 0;
    std::size_t estimated_bytes = 0;
    bool degraded = false;
    std::chrono::steady_clock::time_point enqueued_at{};
    /// Minted at admission; installed (obs::RequestScope) around every
    /// stage that acts on this request so obs signals stay joinable.
    obs::RequestContext rctx{};
  };

  /// What the watchdog sees of one worker thread. shared_ptr'd: the
  /// watchdog iterates a snapshot while workers come and go (supersession
  /// appends replacements; shutdown joins everyone).
  struct WorkerSlot {
    std::mutex mutex;  ///< guards active/active_id (watchdog vs worker)
    std::shared_ptr<RequestState> active;  ///< null while idle
    std::uint64_t active_id = 0;
    std::chrono::steady_clock::time_point started{};
    /// Watchdog bookkeeping: the last progress epoch observed for
    /// active_id and when it was first seen unchanged.
    std::uint64_t seen_epoch = 0;
    std::uint64_t seen_id = 0;
    std::chrono::steady_clock::time_point seen_at{};
    /// Set by the watchdog when it replaces this worker: the old thread
    /// finishes (or never does) without popping further requests.
    std::atomic<bool> superseded{false};
  };

  /// Serialises the in-flight estimated footprints against the service
  /// budget so concurrently executing workers cannot collectively
  /// oversubscribe the device; a degraded (over-budget) request acquires
  /// the whole budget and therefore runs exclusively.
  class BudgetGate {
   public:
    void acquire(std::size_t bytes);
    void release(std::size_t bytes);
    std::int64_t in_flight() const;

   private:
    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::size_t in_flight_ = 0;
  };

  /// Admission decision shared by both submission flavours. Returns the
  /// non-ok Status for rejected requests; fills `out` otherwise.
  Status admit(const SpgemmRequest& request, const SubmitOptions& options, Pending& out,
               Admission& admission);

  void worker_loop(std::shared_ptr<WorkerSlot> slot);
  void process(SpgemmContext& ctx, WorkerSlot& slot, Pending&& item);
  /// Pop-time deadline/cancel eviction: true when the item was poisoned
  /// (kDeadlineExceeded / kCancelled) and must not run.
  bool evict_if_dead(Pending& item);
  static void fail(Pending&& item, Status status);
  /// Lifecycle instant + flight record for an accepted enqueue, emitted
  /// under the request's scope from the submitting thread.
  static void note_queued(const obs::RequestContext& rctx, Admission admission);

  /// Spawn one worker (thread + slot), used by the constructor and by the
  /// watchdog when it replaces a stuck one. Caller holds workers_mutex_.
  void spawn_worker_locked();
  void watchdog_loop();
  /// Retry-budget token bucket (see Config::retry_budget).
  bool take_retry_token();
  void refund_retry_token();

  Config cfg_;
  std::size_t budget_bytes_ = 0;
  std::unique_ptr<BoundedQueue<Pending>> queue_;
  BudgetGate gate_;
  /// Worker threads and their watchdog slots, index-aligned. Guarded by
  /// workers_mutex_: the watchdog appends replacements while the service
  /// runs; shutdown joins every thread ever spawned.
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<WorkerSlot>> slots_;
  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::atomic<std::int64_t> retry_tokens_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> shutdown_started_{false};
  std::mutex shutdown_mutex_;
  /// Queue-depth gauge state: outlives the service (the metrics registry
  /// holds gauge callbacks for the process lifetime), so the callback
  /// captures this shared counter, not `this`.
  std::shared_ptr<std::atomic<std::int64_t>> depth_;
  std::shared_ptr<std::atomic<std::int64_t>> inflight_gauge_;
};

}  // namespace tsg::service
