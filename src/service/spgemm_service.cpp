#include "service/spgemm_service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <new>
#include <string>
#include <utility>

#include "chaos/chaos.h"
#include "common/memory.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"

namespace tsg::service {

namespace {

/// Hot-path instruments, resolved once (registry references are stable for
/// the process lifetime).
struct ServiceMetrics {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& degraded;
  obs::Counter& rejected;
  obs::Counter& queue_full;
  obs::Counter& cancelled;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& batches;
  obs::Counter& evicted;        ///< expired/cancelled requests poisoned at pop
  obs::Counter& deadline_miss;  ///< futures resolved with kDeadlineExceeded
  obs::Counter& retried;        ///< backoff retries performed
  obs::Counter& watchdog_kills; ///< stuck-worker requests poisoned (worker replaced)
  obs::Histogram& queue_wait_us;
  obs::Histogram& latency_us;

  static ServiceMetrics& instance() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    static ServiceMetrics m{
        reg.counter("service.submitted"),
        reg.counter("service.admitted"),
        reg.counter("service.degraded"),
        reg.counter("service.rejected"),
        reg.counter("service.queue_full"),
        reg.counter("service.cancelled"),
        reg.counter("service.completed"),
        reg.counter("service.failed"),
        reg.counter("service.batches"),
        reg.counter("service.evicted"),
        reg.counter("service.deadline_miss"),
        reg.counter("service.retried"),
        reg.counter("service.watchdog_kills"),
        reg.histogram("service.queue_wait_us",
                      {100, 1000, 10000, 100000, 1000000, 10000000}),
        reg.histogram("service.latency_us",
                      {100, 1000, 10000, 100000, 1000000, 10000000}),
    };
    return m;
  }
};

std::int64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

double mb_of(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Exponential backoff with deterministic jitter for attempt n (1-based):
/// base 1 << (n-1) ms, capped, plus a (request, attempt)-hashed jitter of
/// up to the same amount — deterministic so a chaos replay reproduces the
/// exact retry schedule, de-synchronised so a failure storm's retries do
/// not arrive as one thundering herd.
std::chrono::milliseconds backoff_delay(std::uint64_t id, int attempt) {
  const std::uint64_t base =
      std::min<std::uint64_t>(64, std::uint64_t{1} << std::min(attempt - 1, 6));
  std::uint64_t h = id * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(attempt);
  h ^= h >> 29;
  return std::chrono::milliseconds(base + h % (base + 1));
}

/// Bump the service-wide counters that classify a terminal failure status.
void count_failure(ServiceMetrics& metrics, const Status& status) {
  metrics.failed.inc();
  if (status.code() == StatusCode::kDeadlineExceeded) metrics.deadline_miss.inc();
  if (status.code() == StatusCode::kCancelled) metrics.cancelled.inc();
}

}  // namespace

SpgemmService::Config SpgemmService::Config::from_env() {
  Config cfg;
  cfg.context = SpgemmContext::Config::from_env();
  if (const char* env = std::getenv("TSG_SERVICE_WORKERS")) {
    const int n = std::atoi(env);
    if (n >= 0) cfg.workers = n;
  }
  if (const char* env = std::getenv("TSG_SERVICE_QUEUE_CAP")) {
    const long n = std::atol(env);
    if (n > 0) cfg.queue_capacity = static_cast<std::size_t>(n);
  }
  if (const char* env = std::getenv("TSG_SERVICE_STUCK_MS")) {
    const long n = std::atol(env);
    if (n > 0) cfg.stuck_after = std::chrono::milliseconds(n);
  }
  return cfg;
}

void SpgemmService::BudgetGate::acquire(std::size_t bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  // A request is always eligible when nothing is in flight — the gate must
  // make progress even for an over-budget (degraded) request, which simply
  // runs exclusively.
  available_.wait(lock, [&] {
    std::size_t next = 0;
    return in_flight_ == 0 || (checked_add(in_flight_, bytes, next));
  });
  std::size_t next = 0;
  in_flight_ = checked_add(in_flight_, bytes, next) ? next : static_cast<std::size_t>(-1);
}

void SpgemmService::BudgetGate::release(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ = bytes < in_flight_ ? in_flight_ - bytes : 0;
  }
  available_.notify_all();
}

std::int64_t SpgemmService::BudgetGate::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(in_flight_);
}

SpgemmService::SpgemmService(const Config& config) : cfg_(config) {
  if (cfg_.workers < 0) cfg_.workers = 0;
  if (cfg_.retry_budget < 0) cfg_.retry_budget = 0;
  retry_tokens_.store(cfg_.retry_budget, std::memory_order_relaxed);
  // The service owns the process-wide budget and thread-count interactions
  // so its workers never race on them: budget published once here, and the
  // per-worker contexts are forbidden their own ThreadCountGuard /
  // republish (see Config::context).
  cfg_.context.threads = 0;
  cfg_.context.device_mem_mb = 0;
  if (cfg_.device_mem_mb > 0) {
    set_device_memory_budget_bytes(cfg_.device_mem_mb * 1024 * 1024);
  }
  budget_bytes_ = device_memory_budget_bytes();

  queue_ = std::make_unique<BoundedQueue<Pending>>(cfg_.queue_capacity);
  depth_ = std::make_shared<std::atomic<std::int64_t>>(0);
  inflight_gauge_ = std::make_shared<std::atomic<std::int64_t>>(0);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  // Gauge callbacks live for the process; capture the shared counters by
  // value so a destroyed service reads as zero, never as a dangling `this`.
  reg.register_gauge("service.queue_depth",
                     [state = depth_] { return state->load(std::memory_order_relaxed); });
  reg.register_gauge("service.inflight_bytes", [state = inflight_gauge_] {
    return state->load(std::memory_order_relaxed);
  });

  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.reserve(static_cast<std::size_t>(cfg_.workers));
    slots_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int rank = 0; rank < cfg_.workers; ++rank) spawn_worker_locked();
  }
  if (cfg_.stuck_after.count() > 0 && cfg_.workers > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

SpgemmService::~SpgemmService() { shutdown(DrainMode::kDrain); }

void SpgemmService::spawn_worker_locked() {
  auto slot = std::make_shared<WorkerSlot>();
  slots_.push_back(slot);
  workers_.emplace_back([this, slot] { worker_loop(slot); });
}

bool SpgemmService::take_retry_token() {
  std::int64_t have = retry_tokens_.load(std::memory_order_relaxed);
  while (have > 0) {
    if (retry_tokens_.compare_exchange_weak(have, have - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void SpgemmService::refund_retry_token() {
  std::int64_t have = retry_tokens_.load(std::memory_order_relaxed);
  while (have < cfg_.retry_budget) {
    if (retry_tokens_.compare_exchange_weak(have, have + 1, std::memory_order_relaxed)) {
      return;
    }
  }
}

Status SpgemmService::admit(const SpgemmRequest& request, const SubmitOptions& options,
                            Pending& out, Admission& admission) {
  if (!request.a) {
    return Status::invalid_argument("submit: request has no A operand");
  }
  const Csr<double>& a = *request.a;
  const Csr<double>& b = request.b ? *request.b : a;
  if (a.cols != b.rows) {
    return Status::dimension_mismatch(
        "submit: inner dimensions differ (A is " + std::to_string(a.rows) + "x" +
        std::to_string(a.cols) + ", B is " + std::to_string(b.rows) + "x" +
        std::to_string(b.cols) + ")");
  }

  const FootprintEstimate est = estimate_footprint(a, b);
  admission = est.bytes <= budget_bytes_ ? Admission::kAdmitted : Admission::kDegraded;
  if (admission == Admission::kDegraded && cfg_.admission_enforce) {
    const bool may_degrade = cfg_.degrade_on_budget && request.allow_degraded &&
                             cfg_.context.degrade_on_budget;
    if (!may_degrade) {
      ServiceMetrics::instance().rejected.inc();
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "admission: estimated footprint %.1f MB exceeds the service budget "
                    "%.1f MB and chunked degradation is unavailable",
                    mb_of(est.bytes), mb_of(budget_bytes_));
      return Status::rejected(detail);
    }
  }

  out.request = request;
  out.options = options;
  out.state = std::make_shared<RequestState>();
  out.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  out.estimated_bytes = est.bytes;
  out.degraded = admission == Admission::kDegraded;
  out.enqueued_at = std::chrono::steady_clock::now();
  out.rctx = obs::RequestContext{obs::mint_trace_id(out.id), out.id,
                                 options.tag != 0 ? options.tag : request.tag};

  // Arm the request's deadline into its cancel source — one token then
  // covers caller deadline, chaos deadline pressure, explicit cancel, and
  // the watchdog, with first-trip-wins semantics.
  Deadline effective = options.deadline;
  if (const std::uint32_t pressure_ms =
          chaos::ChaosEngine::instance().deadline_pressure_ms(out.id)) {
    const Deadline pressured = Deadline::after(std::chrono::milliseconds(pressure_ms));
    if (!effective.armed() || pressured.time_point() < effective.time_point()) {
      effective = pressured;
    }
  }
  if (effective.armed()) out.state->cancel.set_deadline(effective.time_point());
  out.options.deadline = effective;
  return Status{};
}

Expected<Ticket> SpgemmService::try_submit(SpgemmRequest request, SubmitOptions options) {
  TSG_TRACE_SPAN("service.submit");
  ServiceMetrics& metrics = ServiceMetrics::instance();
  metrics.submitted.inc();
  if (shutdown_started_.load(std::memory_order_acquire)) {
    metrics.cancelled.inc();
    return Status::cancelled("try_submit: service is shut down");
  }

  Pending item;
  Admission admission = Admission::kAdmitted;
  if (Status s = admit(request, options, item, admission); !s.ok()) return s;
  chaos::ChaosEngine::instance().inject_latency(chaos::Site::kSubmit, item.id);

  Ticket ticket;
  ticket.id = item.id;
  ticket.tag = options.tag != 0 ? options.tag : request.tag;
  ticket.trace_id = item.rctx.trace_id;
  ticket.admission = admission;
  ticket.estimated_bytes = item.estimated_bytes;
  ticket.result = item.state->promise.get_future();
  ticket.cancel = item.state->cancel;

  const obs::RequestContext rctx = item.rctx;
  if (!queue_->try_push(std::move(item))) {
    if (queue_->closed()) {
      metrics.cancelled.inc();
      return Status::cancelled("try_submit: service is shut down");
    }
    metrics.queue_full.inc();
    return Status::queue_full("try_submit: request queue at capacity (" +
                              std::to_string(queue_->capacity()) + ")");
  }
  depth_->fetch_add(1, std::memory_order_relaxed);
  metrics.admitted.inc();
  if (admission == Admission::kDegraded) metrics.degraded.inc();
  note_queued(rctx, admission);
  return ticket;
}

std::future<SpgemmRunReport> SpgemmService::submit(SpgemmRequest request,
                                                   SubmitOptions options) {
  TSG_TRACE_SPAN("service.submit");
  ServiceMetrics& metrics = ServiceMetrics::instance();
  metrics.submitted.inc();

  // Failures before the queue still produce a (poisoned) future so the
  // blocking flavour has exactly one delivery path; see try_submit for the
  // Status-returning twin.
  const auto poisoned = [&metrics](obs::Counter& counter, Status status) {
    counter.inc();
    std::promise<SpgemmRunReport> promise;
    promise.set_exception(std::make_exception_ptr(Error(std::move(status))));
    return promise.get_future();
  };

  if (shutdown_started_.load(std::memory_order_acquire)) {
    return poisoned(metrics.cancelled, Status::cancelled("submit: service is shut down"));
  }
  Pending item;
  Admission admission = Admission::kAdmitted;
  if (Status s = admit(request, options, item, admission); !s.ok()) {
    // admit() already counted service.rejected for admission refusals; the
    // extra failed bump here covers malformed requests too.
    return poisoned(metrics.failed, std::move(s));
  }
  chaos::ChaosEngine::instance().inject_latency(chaos::Site::kSubmit, item.id);
  std::future<SpgemmRunReport> future = item.state->promise.get_future();
  const obs::RequestContext rctx = item.rctx;
  if (!queue_->push(std::move(item))) {
    // The close-racing-push contract (BoundedQueue): a refused item comes
    // back intact, so the promise the caller's future watches is resolved
    // here with a structured status — never dropped as a broken promise.
    metrics.cancelled.inc();
    fail(std::move(item), Status::cancelled("submit: service is shut down"));
    return future;
  }
  depth_->fetch_add(1, std::memory_order_relaxed);
  metrics.admitted.inc();
  if (admission == Admission::kDegraded) metrics.degraded.inc();
  note_queued(rctx, admission);
  return future;
}

void SpgemmService::note_queued(const obs::RequestContext& rctx,
                                [[maybe_unused]] Admission admission) {
  // The enqueue instant is emitted from the submitting thread under the
  // request's scope, so the Perfetto track for this request starts at
  // submission, not first pop.
  obs::RequestScope scope(rctx);
  TSG_TRACE_INSTANT("service.request.queued",
                    admission == Admission::kDegraded ? 1 : 0);
  TSG_FLIGHT_RECORD("info", "service.request.queued", rctx.request_id, rctx.trace_id,
                    admission == Admission::kDegraded ? "degraded" : "admitted");
}

void SpgemmService::fail(Pending&& item, Status status) {
  item.state->resolve(std::move(status));
}

bool SpgemmService::evict_if_dead(Pending& item) {
  // Pop-time eviction: a request whose deadline passed while queued (or
  // that its caller already cancelled) is poisoned here and never reaches
  // an engine — the queue must not spend a worker on work nobody wants.
  const CancelToken token = item.state->cancel.token();
  if (!token.should_stop()) return false;
  obs::RequestScope scope(item.rctx);
  ServiceMetrics& metrics = ServiceMetrics::instance();
  metrics.evicted.inc();
  Status status = token.to_status();
  if (status.code() == StatusCode::kDeadlineExceeded) {
    status = Status::deadline_exceeded("deadline expired after " +
                                       std::to_string(elapsed_us(item.enqueued_at) / 1000) +
                                       " ms in queue; request evicted before execution");
  }
  TSG_TRACE_INSTANT("service.request.evicted", static_cast<std::int64_t>(item.id));
  TSG_FLIGHT_RECORD("info", "service.request.evicted", item.rctx.request_id,
                    item.rctx.trace_id, status.message());
  TSG_LOG_INFO("service.request.evicted",
               {"queued_ms", elapsed_us(item.enqueued_at) / 1000},
               {"code", static_cast<int>(status.code())});
  count_failure(metrics, status);
  metrics.latency_us.observe(elapsed_us(item.enqueued_at));
  fail(std::move(item), std::move(status));
  return true;
}

void SpgemmService::process(SpgemmContext& ctx, WorkerSlot& slot, Pending&& item) {
  // Everything below — chaos injection, the budget gate, the engine run
  // with its step/chunk spans, retries, resolution — executes under this
  // request's scope, so every obs signal it produces is joinable on the
  // request/trace ids without threading them through call signatures.
  obs::RequestScope request_scope(item.rctx);
  ServiceMetrics& metrics = ServiceMetrics::instance();
  metrics.queue_wait_us.observe(elapsed_us(item.enqueued_at));

  // Expose this request to the watchdog *before* any chaos latency or the
  // run itself: a worker wedged anywhere past this line is supervised.
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.active = item.state;
    slot.active_id = item.id;
    slot.started = std::chrono::steady_clock::now();
  }
  chaos::ChaosEngine& chaos_engine = chaos::ChaosEngine::instance();
  chaos_engine.inject_latency(chaos::Site::kPop, item.id);
  if (chaos_engine.should_force_cancel(item.id)) item.state->cancel.request_cancel();

  // Serialise against the other workers' in-flight footprints; a degraded
  // request acquires the full budget and runs alone.
  const std::size_t gate_bytes = std::min(item.estimated_bytes, budget_bytes_);
  gate_.acquire(gate_bytes);
  inflight_gauge_->store(gate_.in_flight(), std::memory_order_relaxed);

  {
    TSG_TRACE_SPAN("service.worker.run", static_cast<std::int64_t>(item.id));
    const Csr<double>& a = *item.request.a;
    const Csr<double>& b = item.request.b ? *item.request.b : a;
    for (int attempt = 0;; ++attempt) {
      // The per-request token rides into the engine: cooperative checks at
      // chunk and step 1/2/3 tile boundaries stop a cancelled or expired
      // run with balanced workspace accounting (the context stays warm).
      ctx.set_cancel_token(item.state->cancel.token());
      TileSpgemmTimings timings;
      // try_run_csr returns a Status for everything the context models, but
      // a tracked allocation can still throw bad_alloc (e.g. the tile
      // conversion itself over budget). Nothing may escape the worker
      // thread — that would terminate the whole service — so anything
      // thrown lands in this request's future as a structured Status.
      Expected<Csr<double>> product = [&]() -> Expected<Csr<double>> {
        try {
          return ctx.try_run_csr(a, b, &timings);
        } catch (const Error& e) {
          return e.status();
        } catch (const std::bad_alloc&) {
          return Status::allocation_failed(
              "service worker: workspace allocation failed (over the device budget "
              "before the planner could intervene)");
        } catch (const std::exception& e) {
          return Status::allocation_failed(std::string("service worker: ") + e.what());
        }
      }();
      if (product.ok()) {
        SpgemmRunReport report;
        report.c = std::move(*product);
        report.core_ms = timings.core_ms();
        // Process-wide high-water mark: with concurrent workers this is the
        // service's peak, not this request's (documented on SpgemmRunReport).
        report.peak_mb =
            static_cast<double>(
                obs::MetricsRegistry::instance().snapshot().gauge("memory.peak_bytes")) /
            (1024.0 * 1024.0);
        report.chunks = timings.chunks;
        report.budget_limited = timings.budget_limited;
        report.metrics = timings.metrics;
        report.request_id = item.rctx.request_id;
        report.trace_id = item.rctx.trace_id;
        metrics.latency_us.observe(elapsed_us(item.enqueued_at));
        if (item.state->resolve(std::move(report))) {
          metrics.completed.inc();
          refund_retry_token();
          TSG_TRACE_INSTANT("service.request.completed",
                            static_cast<std::int64_t>(item.id));
          TSG_FLIGHT_RECORD("info", "service.request.completed", item.rctx.request_id,
                            item.rctx.trace_id, "");
        }
        // else: the watchdog poisoned this future while we ran; the result
        // is dropped — exactly one delivery per future.
        break;
      }
      Status status = product.status();
      // Transparent retry: only genuinely transient statuses, only while
      // the caller's budgeted attempts, the service-wide retry budget, and
      // the deadline all still allow it.
      const bool transient = status.code() == StatusCode::kAllocationFailed;
      if (transient && attempt < item.options.max_retries &&
          !item.state->cancel.token().should_stop() && take_retry_token()) {
        metrics.retried.inc();
        TSG_TRACE_INSTANT("service.request.retry", attempt + 1);
        TSG_LOG_INFO("service.request.retry", {"attempt", attempt + 1},
                     {"code", static_cast<int>(status.code())});
        std::this_thread::sleep_for(backoff_delay(item.id, attempt + 1));
        continue;
      }
      // Failure poisons only this request's future; the context stays
      // reusable for the worker's next pop.
      metrics.latency_us.observe(elapsed_us(item.enqueued_at));
      if (item.state->resolve(std::move(status))) {
        count_failure(metrics, product.status());
        TSG_TRACE_INSTANT("service.request.failed",
                          static_cast<std::int64_t>(item.id));
        TSG_FLIGHT_RECORD("error", "service.request.failed", item.rctx.request_id,
                          item.rctx.trace_id, product.status().message());
        const StatusCode code = product.status().code();
        if (code != StatusCode::kCancelled && code != StatusCode::kDeadlineExceeded &&
            code != StatusCode::kBudgetExceeded) {
          // An unexpected failure class (exhausted retries, an exception
          // the worker absorbed): poison the future, then leave a
          // post-mortem artifact when the flight recorder is armed.
          TSG_LOG_ERROR("service.request.failed",
                        {"code", static_cast<int>(code)},
                        {"message", product.status().message()});
          obs::FlightRecorder::instance().dump("request_failed", item.id);
        }
      }
      break;
    }
    ctx.set_cancel_token(CancelToken{});
  }

  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.active.reset();
    slot.active_id = 0;
  }
  gate_.release(gate_bytes);
  inflight_gauge_->store(gate_.in_flight(), std::memory_order_relaxed);
}

void SpgemmService::worker_loop(std::shared_ptr<WorkerSlot> slot) {
  SpgemmContext ctx(cfg_.context);
  ServiceMetrics& metrics = ServiceMetrics::instance();
  std::vector<Pending> batch;
  const std::size_t small = cfg_.small_request_bytes;
  for (;;) {
    // A superseded worker must not take further work: its replacement is
    // already popping from the same queue.
    if (slot->superseded.load(std::memory_order_acquire)) return;
    batch.clear();
    // One wake-up, up to batch_max back-to-back small multiplies: the first
    // pop blocks, the rest ride along only while the queue head stays small
    // (a large request never waits behind an opportunistic batch).
    const std::size_t taken = queue_->pop_batch(
        batch, std::max<std::size_t>(cfg_.batch_max, 1),
        [small](const Pending& next) { return next.estimated_bytes <= small; });
    if (taken == 0) return;  // closed and empty
    depth_->fetch_sub(static_cast<std::int64_t>(taken), std::memory_order_relaxed);
    if (taken > 1) metrics.batches.inc();
    for (Pending& item : batch) {
      if (evict_if_dead(item)) continue;
      process(ctx, *slot, std::move(item));
    }
  }
}

void SpgemmService::watchdog_loop() {
  const auto poll = std::max<std::chrono::milliseconds>(
      std::chrono::duration_cast<std::chrono::milliseconds>(cfg_.stuck_after / 4),
      std::chrono::milliseconds(5));
  ServiceMetrics& metrics = ServiceMetrics::instance();
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();

    // Snapshot the slots so slot mutexes are never taken under
    // workers_mutex_ (the spawn path takes workers_mutex_ alone).
    std::vector<std::shared_ptr<WorkerSlot>> slots;
    {
      std::lock_guard<std::mutex> wl(workers_mutex_);
      slots = slots_;
    }
    const auto now = std::chrono::steady_clock::now();
    for (const std::shared_ptr<WorkerSlot>& slot : slots) {
      if (slot->superseded.load(std::memory_order_acquire)) continue;
      std::shared_ptr<RequestState> stuck;
      std::uint64_t stuck_id = 0;
      std::chrono::milliseconds stalled{0};
      {
        std::lock_guard<std::mutex> sl(slot->mutex);
        if (!slot->active) {
          slot->seen_id = 0;
          continue;
        }
        const std::uint64_t epoch = slot->active->cancel.progress_epoch();
        if (slot->seen_id != slot->active_id || slot->seen_epoch != epoch) {
          // New request or fresh progress: restart the stall clock. The
          // epoch is bumped at chunk and step boundaries, so "slow but
          // moving" is never declared stuck.
          slot->seen_id = slot->active_id;
          slot->seen_epoch = epoch;
          slot->seen_at = now;
          continue;
        }
        stalled = std::chrono::duration_cast<std::chrono::milliseconds>(now - slot->seen_at);
        if (stalled < cfg_.stuck_after) continue;
        stuck = slot->active;
        stuck_id = slot->active_id;
        slot->superseded.store(true, std::memory_order_release);
      }
      // Poison exactly this request's future, ask the run to stop at its
      // next cooperative checkpoint, and replace the worker so the service
      // keeps serving even if the old thread never comes back. The old
      // thread's eventual result (if any) is dropped by the resolve guard.
      stuck->cancel.request_cancel();
      if (stuck->resolve(Status::deadline_exceeded(
              "watchdog: request " + std::to_string(stuck_id) + " made no progress for " +
              std::to_string(stalled.count()) + " ms; worker replaced"))) {
        metrics.watchdog_kills.inc();
        metrics.deadline_miss.inc();
        metrics.failed.inc();
        // Re-mint the victim's context (minting is deterministic per
        // process) so the kill joins its request's track even though the
        // watchdog never saw the Pending item.
        const obs::RequestContext victim{obs::mint_trace_id(stuck_id), stuck_id, 0};
        obs::RequestScope scope(victim);
        TSG_TRACE_INSTANT("service.request.watchdog_kill",
                          static_cast<std::int64_t>(stalled.count()));
        TSG_LOG_WARN("service.watchdog_kill", {"request_id", stuck_id},
                     {"stalled_ms", stalled.count()});
        TSG_FLIGHT_RECORD("warn", "service.watchdog_kill", stuck_id, victim.trace_id,
                          "no progress; worker replaced");
        obs::FlightRecorder::instance().dump("watchdog_kill", stuck_id);
      }
      {
        std::lock_guard<std::mutex> wl(workers_mutex_);
        if (!shutdown_started_.load(std::memory_order_acquire)) spawn_worker_locked();
      }
    }

    lock.lock();
  }
}

void SpgemmService::shutdown(DrainMode mode) {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shutdown_started_.exchange(true, std::memory_order_acq_rel)) {
    return;  // idempotent: the first call already resolved every pending item
  }
  ServiceMetrics& metrics = ServiceMetrics::instance();

  // Stop the supervisor first so no replacement worker spawns while the
  // worker set is being joined.
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> wl(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }

  if (mode == DrainMode::kCancel) {
    std::vector<Pending> abandoned = queue_->drain();
    depth_->fetch_sub(static_cast<std::int64_t>(abandoned.size()),
                      std::memory_order_relaxed);
    for (Pending& item : abandoned) {
      metrics.cancelled.inc();
      fail(std::move(item),
           Status::cancelled("shutdown: request cancelled before execution"));
    }
  } else {
    queue_->close();
    bool have_workers;
    {
      std::lock_guard<std::mutex> wl(workers_mutex_);
      have_workers = !workers_.empty();
    }
    if (!have_workers) {
      // Queue-only configuration: the shutting-down thread is the drain
      // worker, so kDrain keeps its "every future completes" contract
      // (including pop-time eviction of already-expired requests).
      SpgemmContext ctx(cfg_.context);
      WorkerSlot drain_slot;
      Pending item;
      while (queue_->pop(item)) {
        depth_->fetch_sub(1, std::memory_order_relaxed);
        if (evict_if_dead(item)) continue;
        process(ctx, drain_slot, std::move(item));
      }
    }
  }

  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> wl(workers_mutex_);
    to_join.swap(workers_);
    slots_.clear();
  }
  for (std::thread& w : to_join) w.join();
}

}  // namespace tsg::service
