#include "service/spgemm_service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <new>
#include <string>
#include <utility>

#include "common/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsg::service {

namespace {

/// Hot-path instruments, resolved once (registry references are stable for
/// the process lifetime).
struct ServiceMetrics {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& degraded;
  obs::Counter& rejected;
  obs::Counter& queue_full;
  obs::Counter& cancelled;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& batches;
  obs::Histogram& queue_wait_us;
  obs::Histogram& latency_us;

  static ServiceMetrics& instance() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    static ServiceMetrics m{
        reg.counter("service.submitted"),
        reg.counter("service.admitted"),
        reg.counter("service.degraded"),
        reg.counter("service.rejected"),
        reg.counter("service.queue_full"),
        reg.counter("service.cancelled"),
        reg.counter("service.completed"),
        reg.counter("service.failed"),
        reg.counter("service.batches"),
        reg.histogram("service.queue_wait_us",
                      {100, 1000, 10000, 100000, 1000000, 10000000}),
        reg.histogram("service.latency_us",
                      {100, 1000, 10000, 100000, 1000000, 10000000}),
    };
    return m;
  }
};

std::int64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

double mb_of(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

SpgemmService::Config SpgemmService::Config::from_env() {
  Config cfg;
  cfg.context = SpgemmContext::Config::from_env();
  if (const char* env = std::getenv("TSG_SERVICE_WORKERS")) {
    const int n = std::atoi(env);
    if (n >= 0) cfg.workers = n;
  }
  if (const char* env = std::getenv("TSG_SERVICE_QUEUE_CAP")) {
    const long n = std::atol(env);
    if (n > 0) cfg.queue_capacity = static_cast<std::size_t>(n);
  }
  return cfg;
}

void SpgemmService::BudgetGate::acquire(std::size_t bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  // A request is always eligible when nothing is in flight — the gate must
  // make progress even for an over-budget (degraded) request, which simply
  // runs exclusively.
  available_.wait(lock, [&] {
    std::size_t next = 0;
    return in_flight_ == 0 || (checked_add(in_flight_, bytes, next));
  });
  std::size_t next = 0;
  in_flight_ = checked_add(in_flight_, bytes, next) ? next : static_cast<std::size_t>(-1);
}

void SpgemmService::BudgetGate::release(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ = bytes < in_flight_ ? in_flight_ - bytes : 0;
  }
  available_.notify_all();
}

std::int64_t SpgemmService::BudgetGate::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(in_flight_);
}

SpgemmService::SpgemmService(const Config& config) : cfg_(config) {
  if (cfg_.workers < 0) cfg_.workers = 0;
  // The service owns the process-wide budget and thread-count interactions
  // so its workers never race on them: budget published once here, and the
  // per-worker contexts are forbidden their own ThreadCountGuard /
  // republish (see Config::context).
  cfg_.context.threads = 0;
  cfg_.context.device_mem_mb = 0;
  if (cfg_.device_mem_mb > 0) {
    set_device_memory_budget_bytes(cfg_.device_mem_mb * 1024 * 1024);
  }
  budget_bytes_ = device_memory_budget_bytes();

  queue_ = std::make_unique<BoundedQueue<Pending>>(cfg_.queue_capacity);
  depth_ = std::make_shared<std::atomic<std::int64_t>>(0);
  inflight_gauge_ = std::make_shared<std::atomic<std::int64_t>>(0);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  // Gauge callbacks live for the process; capture the shared counters by
  // value so a destroyed service reads as zero, never as a dangling `this`.
  reg.register_gauge("service.queue_depth",
                     [state = depth_] { return state->load(std::memory_order_relaxed); });
  reg.register_gauge("service.inflight_bytes", [state = inflight_gauge_] {
    return state->load(std::memory_order_relaxed);
  });

  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int rank = 0; rank < cfg_.workers; ++rank) {
    workers_.emplace_back([this, rank] { worker_loop(rank); });
  }
}

SpgemmService::~SpgemmService() { shutdown(DrainMode::kDrain); }

Status SpgemmService::admit(const SpgemmRequest& request, Pending& out,
                            Admission& admission) {
  if (!request.a) {
    return Status::invalid_argument("submit: request has no A operand");
  }
  const Csr<double>& a = *request.a;
  const Csr<double>& b = request.b ? *request.b : a;
  if (a.cols != b.rows) {
    return Status::dimension_mismatch(
        "submit: inner dimensions differ (A is " + std::to_string(a.rows) + "x" +
        std::to_string(a.cols) + ", B is " + std::to_string(b.rows) + "x" +
        std::to_string(b.cols) + ")");
  }

  const FootprintEstimate est = estimate_footprint(a, b);
  admission = est.bytes <= budget_bytes_ ? Admission::kAdmitted : Admission::kDegraded;
  if (admission == Admission::kDegraded && cfg_.admission_enforce) {
    const bool may_degrade = cfg_.degrade_on_budget && request.allow_degraded &&
                             cfg_.context.degrade_on_budget;
    if (!may_degrade) {
      ServiceMetrics::instance().rejected.inc();
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "admission: estimated footprint %.1f MB exceeds the service budget "
                    "%.1f MB and chunked degradation is unavailable",
                    mb_of(est.bytes), mb_of(budget_bytes_));
      return Status::rejected(detail);
    }
  }

  out.request = request;
  out.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  out.estimated_bytes = est.bytes;
  out.degraded = admission == Admission::kDegraded;
  out.enqueued_at = std::chrono::steady_clock::now();
  return Status{};
}

Expected<Ticket> SpgemmService::try_submit(SpgemmRequest request) {
  TSG_TRACE_SPAN("service.submit");
  ServiceMetrics& metrics = ServiceMetrics::instance();
  metrics.submitted.inc();
  if (shutdown_started_.load(std::memory_order_acquire)) {
    metrics.cancelled.inc();
    return Status::cancelled("try_submit: service is shut down");
  }

  Pending item;
  Admission admission = Admission::kAdmitted;
  if (Status s = admit(request, item, admission); !s.ok()) return s;

  Ticket ticket;
  ticket.id = item.id;
  ticket.tag = request.tag;
  ticket.admission = admission;
  ticket.estimated_bytes = item.estimated_bytes;
  ticket.result = item.promise.get_future();

  if (!queue_->try_push(std::move(item))) {
    if (queue_->closed()) {
      metrics.cancelled.inc();
      return Status::cancelled("try_submit: service is shut down");
    }
    metrics.queue_full.inc();
    return Status::queue_full("try_submit: request queue at capacity (" +
                              std::to_string(queue_->capacity()) + ")");
  }
  depth_->fetch_add(1, std::memory_order_relaxed);
  metrics.admitted.inc();
  if (admission == Admission::kDegraded) metrics.degraded.inc();
  return ticket;
}

std::future<SpgemmRunReport> SpgemmService::submit(SpgemmRequest request) {
  TSG_TRACE_SPAN("service.submit");
  ServiceMetrics& metrics = ServiceMetrics::instance();
  metrics.submitted.inc();

  // Failures before the queue still produce a (poisoned) future so the
  // blocking flavour has exactly one delivery path; see try_submit for the
  // Status-returning twin.
  const auto poisoned = [&metrics](obs::Counter& counter, Status status) {
    counter.inc();
    std::promise<SpgemmRunReport> promise;
    promise.set_exception(std::make_exception_ptr(Error(std::move(status))));
    return promise.get_future();
  };

  if (shutdown_started_.load(std::memory_order_acquire)) {
    return poisoned(metrics.cancelled, Status::cancelled("submit: service is shut down"));
  }
  Pending item;
  Admission admission = Admission::kAdmitted;
  if (Status s = admit(request, item, admission); !s.ok()) {
    // admit() already counted service.rejected for admission refusals; the
    // extra failed bump here covers malformed requests too.
    return poisoned(metrics.failed, std::move(s));
  }
  std::future<SpgemmRunReport> future = item.promise.get_future();
  if (!queue_->push(std::move(item))) {
    return poisoned(metrics.cancelled, Status::cancelled("submit: service is shut down"));
  }
  depth_->fetch_add(1, std::memory_order_relaxed);
  metrics.admitted.inc();
  if (admission == Admission::kDegraded) metrics.degraded.inc();
  return future;
}

void SpgemmService::fail(Pending&& item, Status status) {
  item.promise.set_exception(std::make_exception_ptr(Error(std::move(status))));
}

void SpgemmService::process(SpgemmContext& ctx, Pending&& item) {
  ServiceMetrics& metrics = ServiceMetrics::instance();
  metrics.queue_wait_us.observe(elapsed_us(item.enqueued_at));

  // Serialise against the other workers' in-flight footprints; a degraded
  // request acquires the full budget and runs alone.
  const std::size_t gate_bytes = std::min(item.estimated_bytes, budget_bytes_);
  gate_.acquire(gate_bytes);
  inflight_gauge_->store(gate_.in_flight(), std::memory_order_relaxed);

  {
    TSG_TRACE_SPAN("service.worker.run", static_cast<std::int64_t>(item.id));
    const Csr<double>& a = *item.request.a;
    const Csr<double>& b = item.request.b ? *item.request.b : a;
    TileSpgemmTimings timings;
    // try_run_csr returns a Status for everything the context models, but a
    // tracked allocation can still throw bad_alloc (e.g. the tile
    // conversion itself over budget). Nothing may escape the worker thread
    // — that would terminate the whole service — so anything thrown lands
    // in this request's future as a structured Status.
    Expected<Csr<double>> product = [&]() -> Expected<Csr<double>> {
      try {
        return ctx.try_run_csr(a, b, &timings);
      } catch (const Error& e) {
        return e.status();
      } catch (const std::bad_alloc&) {
        return Status::allocation_failed(
            "service worker: workspace allocation failed (over the device budget "
            "before the planner could intervene)");
      } catch (const std::exception& e) {
        return Status::allocation_failed(std::string("service worker: ") + e.what());
      }
    }();
    if (product.ok()) {
      SpgemmRunReport report;
      report.c = std::move(*product);
      report.core_ms = timings.core_ms();
      // Process-wide high-water mark: with concurrent workers this is the
      // service's peak, not this request's (documented on SpgemmRunReport).
      report.peak_mb =
          static_cast<double>(
              obs::MetricsRegistry::instance().snapshot().gauge("memory.peak_bytes")) /
          (1024.0 * 1024.0);
      report.chunks = timings.chunks;
      report.budget_limited = timings.budget_limited;
      report.metrics = timings.metrics;
      metrics.completed.inc();
      metrics.latency_us.observe(elapsed_us(item.enqueued_at));
      item.promise.set_value(std::move(report));
    } else {
      // Failure poisons only this request's future; the context stays
      // reusable for the worker's next pop.
      metrics.failed.inc();
      metrics.latency_us.observe(elapsed_us(item.enqueued_at));
      fail(std::move(item), product.status());
    }
  }

  gate_.release(gate_bytes);
  inflight_gauge_->store(gate_.in_flight(), std::memory_order_relaxed);
}

void SpgemmService::worker_loop(int rank) {
  (void)rank;
  SpgemmContext ctx(cfg_.context);
  ServiceMetrics& metrics = ServiceMetrics::instance();
  std::vector<Pending> batch;
  const std::size_t small = cfg_.small_request_bytes;
  for (;;) {
    batch.clear();
    // One wake-up, up to batch_max back-to-back small multiplies: the first
    // pop blocks, the rest ride along only while the queue head stays small
    // (a large request never waits behind an opportunistic batch).
    const std::size_t taken = queue_->pop_batch(
        batch, std::max<std::size_t>(cfg_.batch_max, 1),
        [small](const Pending& next) { return next.estimated_bytes <= small; });
    if (taken == 0) return;  // closed and empty
    depth_->fetch_sub(static_cast<std::int64_t>(taken), std::memory_order_relaxed);
    if (taken > 1) metrics.batches.inc();
    for (Pending& item : batch) process(ctx, std::move(item));
  }
}

void SpgemmService::shutdown(DrainMode mode) {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shutdown_started_.exchange(true, std::memory_order_acq_rel)) {
    return;  // idempotent: the first call already resolved every pending item
  }
  ServiceMetrics& metrics = ServiceMetrics::instance();

  if (mode == DrainMode::kCancel) {
    std::vector<Pending> abandoned = queue_->drain();
    depth_->fetch_sub(static_cast<std::int64_t>(abandoned.size()),
                      std::memory_order_relaxed);
    for (Pending& item : abandoned) {
      metrics.cancelled.inc();
      fail(std::move(item),
           Status::cancelled("shutdown: request cancelled before execution"));
    }
  } else {
    queue_->close();
    if (workers_.empty()) {
      // Queue-only configuration: the shutting-down thread is the drain
      // worker, so kDrain keeps its "every future completes" contract.
      SpgemmContext ctx(cfg_.context);
      Pending item;
      while (queue_->pop(item)) {
        depth_->fetch_sub(1, std::memory_order_relaxed);
        process(ctx, std::move(item));
      }
    }
  }

  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

}  // namespace tsg::service
