#include "service/admission.h"

#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "core/intersect.h"
#include "core/spgemm_workspace.h"

namespace tsg::service {

namespace {

constexpr std::size_t kSat = static_cast<std::size_t>(-1);

inline index_t tile_count(index_t n) { return (n + kTileDim - 1) / kTileDim; }

/// Exact number of occupied tiles per tile-column of `m`. Rows are walked
/// in order, so per tile-column the tile row index is non-decreasing: a
/// last-seen stamp per tile-column turns the distinct count into one
/// compare per CSR row segment.
std::vector<std::size_t> tiles_per_tile_col(const Csr<double>& m) {
  const index_t tcols = tile_count(m.cols);
  std::vector<std::size_t> count(static_cast<std::size_t>(tcols), 0);
  std::vector<index_t> last_tile_row(static_cast<std::size_t>(tcols), -1);
  for (index_t r = 0; r < m.rows; ++r) {
    const index_t tr = r / kTileDim;
    index_t prev_tc = -1;
    for (offset_t k = m.row_ptr[static_cast<std::size_t>(r)];
         k < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t tc = m.col_idx[static_cast<std::size_t>(k)] / kTileDim;
      if (tc == prev_tc) continue;  // same row segment, already counted
      prev_tc = tc;
      if (last_tile_row[static_cast<std::size_t>(tc)] != tr) {
        last_tile_row[static_cast<std::size_t>(tc)] = tr;
        ++count[static_cast<std::size_t>(tc)];
      }
    }
  }
  return count;
}

/// Exact number of occupied tiles per tile-row of `m`: within one tile row
/// a per-tile-column stamp (the tile row index itself) deduplicates the 16
/// CSR rows that feed it.
std::vector<std::size_t> tiles_per_tile_row(const Csr<double>& m) {
  const index_t trows = tile_count(m.rows);
  const index_t tcols = tile_count(m.cols);
  std::vector<std::size_t> count(static_cast<std::size_t>(trows), 0);
  std::vector<index_t> stamp(static_cast<std::size_t>(tcols), -1);
  for (index_t r = 0; r < m.rows; ++r) {
    const index_t tr = r / kTileDim;
    for (offset_t k = m.row_ptr[static_cast<std::size_t>(r)];
         k < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t tc = m.col_idx[static_cast<std::size_t>(k)] / kTileDim;
      if (stamp[static_cast<std::size_t>(tc)] != tr) {
        stamp[static_cast<std::size_t>(tc)] = tr;
        ++count[static_cast<std::size_t>(tr)];
      }
    }
  }
  return count;
}

/// a + b, saturating at SIZE_MAX (which reads as "does not fit").
std::size_t sat_add(std::size_t a, std::size_t b) {
  std::size_t out = 0;
  return checked_add(a, b, out) ? out : kSat;
}

std::size_t sat_mul(std::size_t a, std::size_t b) {
  std::size_t out = 0;
  return checked_mul(a, b, out) ? out : kSat;
}

}  // namespace

FootprintEstimate estimate_footprint(const Csr<double>& a, const Csr<double>& b) {
  FootprintEstimate est;

  // Matched-pair bound: C tile (i,j) draws one pair per k with A tile (i,k)
  // and B tile (k,j) both occupied, so summing |A's tile-column k| * |B's
  // tile-row k| over the inner tile dimension bounds both the total pair
  // count and (since every nonzero C tile needs at least one pair) the
  // number of C tiles.
  const std::vector<std::size_t> a_cols = tiles_per_tile_col(a);
  const std::vector<std::size_t> b_rows = &a == &b ? tiles_per_tile_row(a)
                                                   : tiles_per_tile_row(b);
  const std::size_t inner = a_cols.size() < b_rows.size() ? a_cols.size() : b_rows.size();
  std::size_t pairs = 0;
  for (std::size_t k = 0; k < inner; ++k) {
    pairs = sat_add(pairs, sat_mul(a_cols[k], b_rows[k]));
  }
  est.tile_pairs = pairs;
  const std::size_t grid = sat_mul(static_cast<std::size_t>(tile_count(a.rows)),
                                   static_cast<std::size_t>(tile_count(b.cols)));
  est.c_tiles = pairs < grid ? pairs : grid;

  // Per-tile staging mirrors plan_budget's tile_bytes_bound: output staging
  // at the 256-nonzero tile maximum plus a pair-cache slot, with the pair
  // records themselves charged once from the global pair bound (tighter
  // than per-tile min(len_a, len_b) which is unknown here).
  const std::size_t per_tile =
      sizeof(offset_t) +
      static_cast<std::size_t>(kTileDim) * (sizeof(std::uint8_t) + sizeof(rowmask_t)) +
      static_cast<std::size_t>(kTileNnzMax) * (2 * sizeof(std::uint8_t) + sizeof(double)) +
      sizeof(detail::TileSlot);
  std::size_t bytes = sat_mul(est.c_tiles, per_tile);
  bytes = sat_add(bytes, sat_mul(est.tile_pairs, sizeof(MatchedPair)));

  // Fixed share stand-in for the pooled workspace the planner adds after
  // step 1: the tiled operand views the run must hold (bounded by the CSR
  // operand bytes — the tiled format is never larger than twice CSR for
  // occupied tiles) plus C's top-level arrays.
  bytes = sat_add(bytes, sat_add(a.bytes(), &a == &b ? 0 : b.bytes()));
  bytes = sat_add(bytes, sat_mul(est.c_tiles, 2 * sizeof(offset_t) + sizeof(index_t)));
  est.bytes = bytes;
  return est;
}

}  // namespace tsg::service
