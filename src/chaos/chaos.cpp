#include "chaos/chaos.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/memory.h"
#include "obs/metrics.h"

namespace tsg::chaos {

namespace {

/// splitmix64 finaliser — the same mixer behind FaultPlan::fail_rate, so
/// chaos decisions get the identical "counter-hashed from a seed"
/// reproducibility story.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform [0,1) decision for (seed, site, salt, id). Pure: the same plan
/// and id always decide the same way, on any thread, in any order.
double decide(std::uint64_t seed, std::uint32_t site, std::uint32_t salt,
              std::uint64_t id) {
  const std::uint64_t h =
      mix64(seed ^ (static_cast<std::uint64_t>(site) << 40) ^
            (static_cast<std::uint64_t>(salt) << 32) ^ id);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

struct ChaosMetrics {
  obs::Counter& latency;
  obs::Counter& latency_ms;
  obs::Counter& cancels;
  obs::Counter& pressures;

  static ChaosMetrics& instance() {
    static ChaosMetrics m{
        obs::MetricsRegistry::instance().counter("chaos.latency_injected"),
        obs::MetricsRegistry::instance().counter("chaos.latency_ms"),
        obs::MetricsRegistry::instance().counter("chaos.forced_cancels"),
        obs::MetricsRegistry::instance().counter("chaos.deadline_pressure"),
    };
    return m;
  }
};

/// Parse a `key=value` list ("site=pop,p=0.5,ms=20"). Returns false on an
/// unknown key or malformed value; `where` names the clause for the error.
struct KeyValues {
  std::string site;
  double p = -1.0;
  double rate = -1.0;
  long ms = -1;
};

bool parse_kvs(const std::string& body, KeyValues& out, std::string& err) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find(',', pos);
    if (end == std::string::npos) end = body.size();
    const std::string kv = body.substr(pos, end - pos);
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      err = "expected key=value, got '" + kv + "'";
      return false;
    }
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    char* parse_end = nullptr;
    if (key == "site") {
      out.site = val;
    } else if (key == "p" || key == "rate") {
      const double d = std::strtod(val.c_str(), &parse_end);
      if (parse_end == val.c_str() || *parse_end != '\0' || d < 0.0 || d > 1.0) {
        err = "'" + key + "' must be a probability in [0,1], got '" + val + "'";
        return false;
      }
      (key == "p" ? out.p : out.rate) = d;
    } else if (key == "ms") {
      const long v = std::strtol(val.c_str(), &parse_end, 10);
      if (parse_end == val.c_str() || *parse_end != '\0' || v < 0) {
        err = "'ms' must be a non-negative integer, got '" + val + "'";
        return false;
      }
      out.ms = v;
    } else {
      err = "unknown key '" + key + "'";
      return false;
    }
    pos = end + 1;
  }
  return true;
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kSubmit: return "submit";
    case Site::kPop: return "pop";
  }
  return "unknown";
}

Expected<ChaosPlan> parse_chaos_spec(const std::string& spec, std::uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status::invalid_argument("chaos spec: clause '" + clause +
                                      "' has no ':' (grammar in src/chaos/chaos.h)");
    }
    const std::string kind = clause.substr(0, colon);
    KeyValues kvs;
    std::string err;
    if (!parse_kvs(clause.substr(colon + 1), kvs, err)) {
      return Status::invalid_argument("chaos spec: clause '" + kind + "': " + err);
    }
    if (kind == "latency") {
      ChaosPlan::LatencyRule rule;
      if (kvs.site == "submit") {
        rule.site = Site::kSubmit;
      } else if (kvs.site == "pop" || kvs.site.empty()) {
        rule.site = Site::kPop;
      } else {
        return Status::invalid_argument("chaos spec: latency site '" + kvs.site +
                                        "' (want submit|pop)");
      }
      if (kvs.p < 0.0 || kvs.ms < 0) {
        return Status::invalid_argument("chaos spec: latency needs p= and ms=");
      }
      rule.p = kvs.p;
      rule.ms = static_cast<std::uint32_t>(kvs.ms);
      plan.latency.push_back(rule);
    } else if (kind == "cancel") {
      if (kvs.p < 0.0) return Status::invalid_argument("chaos spec: cancel needs p=");
      plan.cancel_p = kvs.p;
    } else if (kind == "deadline") {
      if (kvs.p < 0.0 || kvs.ms < 0) {
        return Status::invalid_argument("chaos spec: deadline needs p= and ms=");
      }
      plan.deadline_p = kvs.p;
      plan.deadline_ms = static_cast<std::uint32_t>(kvs.ms);
    } else if (kind == "alloc") {
      if (kvs.rate < 0.0) return Status::invalid_argument("chaos spec: alloc needs rate=");
      plan.alloc_rate = kvs.rate;
    } else {
      return Status::invalid_argument("chaos spec: unknown clause '" + kind +
                                      "' (want latency|cancel|deadline|alloc)");
    }
  }
  return plan;
}

ChaosEngine& ChaosEngine::instance() {
  static ChaosEngine engine;
  return engine;
}

void ChaosEngine::arm(const ChaosPlan& plan) {
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    plan_ = plan;
  }
  latencies_.store(0, std::memory_order_relaxed);
  cancels_.store(0, std::memory_order_relaxed);
  pressures_.store(0, std::memory_order_relaxed);
  if (plan.alloc_rate > 0.0) {
    FaultPlan fp;
    fp.fail_rate = plan.alloc_rate;
    fp.seed = plan.seed;
    // arm() owns the paired clear in disarm(); ChaosScope is the RAII face
    // of this engine — a scope inside the scope implementation would recurse.
    // tsg-lint: allow(scope-pairing)
    MemoryTracker::instance().set_fault_plan(fp);
  }
  armed_.store(plan.enabled(), std::memory_order_release);
}

void ChaosEngine::disarm() {
  armed_.store(false, std::memory_order_release);
  bool had_alloc_faults;
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    had_alloc_faults = plan_.alloc_rate > 0.0;
    plan_ = ChaosPlan{};
  }
  // Paired with the set in arm() — see the rationale there.
  // tsg-lint: allow(scope-pairing)
  if (had_alloc_faults) MemoryTracker::instance().clear_fault_plan();
}

std::uint32_t ChaosEngine::inject_latency(Site site, std::uint64_t id) {
  if (!armed()) return 0;
  std::uint32_t total_ms = 0;
  {
    // A worker can outlive the ChaosScope that armed the plan (the watchdog
    // supersedes it mid-request); the lock makes it see either the armed
    // plan or the cleared one, never a vector mid-mutation. Sleeping stays
    // outside the lock.
    std::lock_guard<std::mutex> lock(plan_mutex_);
    std::uint32_t salt = 0;
    for (const ChaosPlan::LatencyRule& rule : plan_.latency) {
      ++salt;
      if (rule.site != site || rule.p <= 0.0) continue;
      if (decide(plan_.seed, static_cast<std::uint32_t>(site), salt, id) >= rule.p) continue;
      total_ms += rule.ms;
    }
  }
  if (total_ms > 0) {
    latencies_.fetch_add(1, std::memory_order_relaxed);
    ChaosMetrics::instance().latency.inc();
    ChaosMetrics::instance().latency_ms.add(total_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(total_ms));
  }
  return total_ms;
}

bool ChaosEngine::should_force_cancel(std::uint64_t id) {
  if (!armed()) return false;
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    if (plan_.cancel_p <= 0.0) return false;
    // salt 101: keep the cancel stream independent of the latency stream.
    if (decide(plan_.seed, 0, 101, id) >= plan_.cancel_p) return false;
  }
  cancels_.fetch_add(1, std::memory_order_relaxed);
  ChaosMetrics::instance().cancels.inc();
  return true;
}

std::uint32_t ChaosEngine::deadline_pressure_ms(std::uint64_t id) {
  if (!armed()) return 0;
  std::uint32_t ms = 0;
  {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    if (plan_.deadline_p <= 0.0) return 0;
    if (decide(plan_.seed, 0, 202, id) >= plan_.deadline_p) return 0;
    ms = plan_.deadline_ms > 0 ? plan_.deadline_ms : 1;
  }
  pressures_.fetch_add(1, std::memory_order_relaxed);
  ChaosMetrics::instance().pressures.inc();
  return ms;
}

}  // namespace tsg::chaos
