// Deterministic chaos injection for the service layer.
//
// PR 2's FaultPlan made *allocation* failure a first-class, reproducible
// event (counter-hashed from a seed, so run N fails at exactly the same
// site every time). This layer extends the same philosophy to the other
// request-lifecycle failure modes the service must survive:
//
//   * injected latency at instrumented sites (a slow disk, a noisy
//     neighbour, a worker wedged mid-request — the watchdog's prey),
//   * forced cancellations (a caller abandoning its request mid-flight),
//   * deadline pressure (tightening a request's deadline so eviction and
//     kDeadlineExceeded paths actually fire under load),
//   * allocation faults (delegated to MemoryTracker's FaultPlan).
//
// Every decision is a pure function of (seed, site, request id) via the
// same splitmix64 finaliser FaultPlan::fail_rate uses: replaying
// `bench_service_replay --chaos <spec> --seed N` injects the identical
// fault schedule, which is what makes a red chaos run reproducible from
// the seed echoed by scripts/check.sh chaos.
//
// Layering: chaos sits on common+obs only. The *engine* (src/core) is
// never instrumented directly — chaos acts at the service boundary (pop,
// pre-run) and through the tokens/fault plans those boundaries already
// honour, so a chaos-free build path stays byte-identical.
//
// Spec grammar (clauses separated by ';', keys by ','):
//
//   spec     := clause (';' clause)*
//   clause   := 'latency:site=<submit|pop>,p=<0..1>,ms=<uint>'
//             | 'cancel:p=<0..1>'
//             | 'deadline:p=<0..1>,ms=<uint>'
//             | 'alloc:rate=<0..1>'
//
// Example: --chaos 'latency:site=pop,p=0.05,ms=200;cancel:p=0.1' --seed 7
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tsg::chaos {

/// Instrumented injection points. Values are part of the decision hash, so
/// reordering them changes fault schedules (append only).
enum class Site : std::uint32_t {
  kSubmit = 1,  ///< at submission, before the request is enqueued
  kPop = 2,     ///< after a worker pops the request, before it runs
};

const char* site_name(Site site);

/// Parsed chaos specification. A default-constructed plan injects nothing.
struct ChaosPlan {
  struct LatencyRule {
    Site site = Site::kPop;
    double p = 0.0;      ///< per-request injection probability
    std::uint32_t ms = 0;  ///< injected sleep
  };
  std::vector<LatencyRule> latency;
  double cancel_p = 0.0;        ///< probability a popped request is force-cancelled
  double deadline_p = 0.0;      ///< probability a submission gets deadline pressure
  std::uint32_t deadline_ms = 0;  ///< the pressured deadline
  double alloc_rate = 0.0;      ///< MemoryTracker FaultPlan fail_rate
  std::uint64_t seed = 0;

  bool enabled() const {
    return !latency.empty() || cancel_p > 0.0 || deadline_p > 0.0 || alloc_rate > 0.0;
  }
};

/// Parse the spec grammar above. The seed is carried into the plan so one
/// value reproduces the entire schedule.
Expected<ChaosPlan> parse_chaos_spec(const std::string& spec, std::uint64_t seed);

/// Process-wide chaos engine (the MemoryTracker pattern: a singleton the
/// instrumented sites query with one relaxed load when disarmed).
class ChaosEngine {
 public:
  static ChaosEngine& instance();

  /// Install a plan; also installs the MemoryTracker fault plan when the
  /// spec carries an alloc clause. arm/disarm are safe against concurrent
  /// injection calls (a worker that outlives a ChaosScope — e.g. one the
  /// watchdog superseded mid-request — sees either the old plan or none).
  void arm(const ChaosPlan& plan);
  /// Remove the plan (and the delegated fault plan). Idempotent.
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Injected latency in ms for this (site, id) — already slept when the
  /// call returns. 0 when disarmed or the hash says no.
  std::uint32_t inject_latency(Site site, std::uint64_t id);

  /// Whether this request should be force-cancelled at the pop boundary.
  bool should_force_cancel(std::uint64_t id);

  /// Deadline pressure for this submission: the number of ms the request's
  /// deadline should be clamped to, or 0 for none.
  std::uint32_t deadline_pressure_ms(std::uint64_t id);

  /// Totals since the last arm() — the counters the replay bench reports.
  std::uint64_t injected_latencies() const { return latencies_.load(std::memory_order_relaxed); }
  std::uint64_t forced_cancels() const { return cancels_.load(std::memory_order_relaxed); }
  std::uint64_t deadline_pressures() const { return pressures_.load(std::memory_order_relaxed); }

 private:
  ChaosEngine() = default;
  std::atomic<bool> armed_{false};
  mutable std::mutex plan_mutex_;  ///< guards plan_ against arm/disarm vs readers
  ChaosPlan plan_;
  std::atomic<std::uint64_t> latencies_{0};
  std::atomic<std::uint64_t> cancels_{0};
  std::atomic<std::uint64_t> pressures_{0};
};

/// RAII arm/disarm, mirroring FaultInjectionScope.
class ChaosScope {
 public:
  explicit ChaosScope(const ChaosPlan& plan) { ChaosEngine::instance().arm(plan); }
  ~ChaosScope() { ChaosEngine::instance().disarm(); }
  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;
};

}  // namespace tsg::chaos
