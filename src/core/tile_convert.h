// CSR <-> sparse tile format conversion (the Fig. 12 "format conversion"
// cost). The forward conversion is two passes over the nonzeros: one to
// discover the non-empty tiles and count their nonzeros, one to scatter
// indices/values and build the masks and local row pointers.
#pragma once

#include "core/tile_format.h"
#include "matrix/csr.h"

namespace tsg {

/// Convert a CSR matrix (rows must be sorted) to the sparse tile format.
template <class T>
TileMatrix<T> csr_to_tile(const Csr<T>& a);

/// Convert back to CSR with sorted rows.
template <class T>
Csr<T> tile_to_csr(const TileMatrix<T>& t);

extern template TileMatrix<double> csr_to_tile(const Csr<double>&);
extern template TileMatrix<float> csr_to_tile(const Csr<float>&);
extern template Csr<double> tile_to_csr(const TileMatrix<double>&);
extern template Csr<float> tile_to_csr(const TileMatrix<float>&);

}  // namespace tsg
