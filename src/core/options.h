// Tunables of the TileSpGEMM algorithm. Defaults follow the paper; the
// alternatives exist for the ablation benches (bench_micro_kernels) that
// justify the paper's design choices.
#pragma once

#include "common/config.h"
#include "core/simd_dispatch.h"

namespace tsg {

/// How step 2/3 compute the set intersection of a tile row of A with a tile
/// column of B. The paper found binary search of the shorter list into the
/// longer one faster than the classic two-pointer merge (Section 3.3).
enum class IntersectMethod {
  kBinarySearch,
  kMerge,
};

/// How step 2 turns the matched pairs into C's tile masks / row pointers.
enum class SymbolicKernel {
  /// Word-packed (default): drive the mask OR phase from A's row masks and
  /// derive per-row nonzero counts with SWAR popcounts over uint64_t[4]
  /// packed masks (common/bitops.h). Bit-identical to kScalar.
  kWordPacked,
  /// Reference: per-nonzero loop over A's row_idx/col_idx arrays with a
  /// per-row popcount scan — the pre-optimisation path, kept for the A/B
  /// tests and the regression bench's speedup denominator.
  kScalar,
};

/// Accumulator selection for step 3.
enum class AccumulatorPolicy {
  kAdaptive,      ///< sparse below tnnz, dense above (the paper's method)
  kAlwaysSparse,  ///< ablation: force the popcount-indexed sparse path
  kAlwaysDense,   ///< ablation: force the 256-slot dense path
};

struct TileSpgemmOptions {
  IntersectMethod intersect = IntersectMethod::kBinarySearch;
  SymbolicKernel symbolic = SymbolicKernel::kWordPacked;
  AccumulatorPolicy accumulator = AccumulatorPolicy::kAdaptive;
  /// Dense-accumulator threshold; the paper uses 192 (75% of 256).
  index_t tnnz = kAccumulatorThreshold;
  /// Cache the matched tile pairs found by step 2 so step 3 skips its
  /// re-intersection. The paper deliberately recomputes instead (its GPU
  /// kernels keep *zero* global intermediate state); caching trades
  /// O(total pairs) of global memory for roughly halving the intersection
  /// work — an engineering option this CPU port exposes for the ablation
  /// bench. Default off to match the paper.
  bool cache_pairs = false;
  /// Vector-ISA level for the step-2/3 kernel family. Defaults to the best
  /// level this build and host support (overridable process-wide with
  /// TSG_SIMD, per context with Config::with_simd_level); requests above
  /// what is available clamp down at use. Ignored when `symbolic` is
  /// kScalar — the reference kernel is the scalar oracle by definition.
  simd::Level simd = simd::active_level();
};

/// Dispatch level a run with these options actually executes at: kScalar
/// when the reference symbolic kernel is selected, else the requested
/// level clamped to what this build/host can run. Resolved once per
/// step2/step3 call, never per tile.
inline simd::Level effective_simd_level(const TileSpgemmOptions& options) {
  if (options.symbolic == SymbolicKernel::kScalar) return simd::Level::kScalar;
  return simd::clamp_to_available(options.simd);
}

}  // namespace tsg
