// Runtime SIMD dispatch for the step-2/step-3 per-tile kernel family.
//
// The 256-bit tile bitmask (16 x 16-bit row masks, Section 3.2 of the
// paper) is exactly one AVX2 ymm register, which makes the symbolic
// mask-OR / popcount / prefix-sum walk and the numeric dense-accumulator
// compress natural vector kernels. This header names the dispatch levels
// and the two per-level operation tables; selection happens once per call
// (never per tile) in step2/step3:
//
//   kScalar  — the per-row/per-bit reference kernels (the A/B oracle)
//   kSwar    — PR 5's word-packed uint64[4] kernels (common/bitops.h)
//   kAvx2    — ymm kernels (requires AVX2 + BMI2, compile probe __AVX2__)
//   kAvx512  — masked/compress kernels (AVX-512 F+BW+VL, probe __AVX512F__)
//
// Every level is bit-identical to kScalar by construction: the vector
// kernels reorder *reads* (mask ORs, popcounts, compress permutes), never
// floating-point accumulation, and tests/test_simd_dispatch.cpp enforces
// the identity per primitive and end to end at every available level.
//
// Level resolution: `detected_level()` probes CPUID once (clamped to what
// this build compiled in); `TSG_SIMD=scalar|swar|avx2|avx512` overrides it
// process-wide (read once, the documented exception to Config::from_env()
// being the only env reader — kernel forcing must also reach the
// free-function entry points that never see a Config); and
// `Config::with_simd_level` overrides it per context. Requests above what
// the build/host supports clamp down with a one-time structured warning.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "common/bitops.h"
#include "common/status.h"

namespace tsg::simd {

/// Dispatch level of the step-2/3 kernel family, ordered by capability.
enum class Level : std::uint8_t {
  kScalar = 0,  ///< per-row reference kernels (the bit-identity oracle)
  kSwar = 1,    ///< word-packed uint64[4] kernels, always available
  kAvx2 = 2,    ///< 256-bit vector kernels (AVX2 + BMI2)
  kAvx512 = 3,  ///< masked/compress kernels (AVX-512 F + BW + VL)
};

inline constexpr int kLevelCount = 4;

/// Step-2 symbolic primitives, per level. Both functions work on the
/// packed four-word form of a tile mask (common/bitops.h).
struct SymbolicOps {
  /// OR, for one matched pair, the B-tile row masks selected by A's row
  /// masks into the packed accumulator `cm` (Algorithm 2 lines 19-25):
  /// column c set in A's row r contributes mask_b[c] to row r of cm.
  void (*mask_or)(const rowmask_t* mask_a, const rowmask_t* mask_b,
                  std::uint64_t cm[kTileMaskWords]);
  /// Unpack the accumulated words into the 16 row masks and exclusive
  /// per-row pointers; returns the tile's nonzero count. Always writes all
  /// 16 entries of mask_out / row_ptr_out.
  index_t (*derive)(const std::uint64_t cm[kTileMaskWords], rowmask_t* mask_out,
                    std::uint8_t* row_ptr_out);
};

/// Step-3 numeric primitives, per level.
///
/// Compress contract: `acc` is the row-major dense 16x16 scratch tile (256
/// elements); the mask's set bits are written to `out` in storage order.
/// `out` must have capacity kTileNnzMax elements — a level may clobber
/// lanes past the compressed count (AVX2 stores whole vectors), so `out`
/// is always a thread-local scratch buffer, never shared output.
///
/// Materialize contract: writes *exactly* popcount(mask) bytes at
/// row_idx / col_idx — these point into C's shared arrays where an
/// over-wide store would race the adjacent tile on another thread.
struct NumericOps {
  void (*compress_d)(const double* acc, const rowmask_t* mask_c, double* out);
  void (*compress_f)(const float* acc, const rowmask_t* mask_c, float* out);
  void (*materialize)(const rowmask_t* mask_c, std::uint8_t* row_idx,
                      std::uint8_t* col_idx);
};

/// Operation tables for a level. Levels the build or host cannot execute
/// hold the next-lower available table (defense in depth — callers resolve
/// through clamp_to_available() first).
const SymbolicOps& symbolic_ops(Level level);
const NumericOps& numeric_ops(Level level);

/// Best level this build compiled in AND this CPU supports; >= kSwar.
/// Probed once per process.
Level detected_level();

/// Whether `level` can execute here (kScalar/kSwar: always; AVX levels:
/// compile probe + CPUID).
bool level_available(Level level);

/// Highest available level that is <= `requested`.
Level clamp_to_available(Level requested);

/// Process-wide default level: TSG_SIMD when set (parsed, validated,
/// clamped, with one-time warnings on bad values), else detected_level().
/// Cached on first use — TileSpgemmOptions defaults to this.
Level active_level();

/// Lower-case level name ("scalar", "swar", "avx2", "avx512").
const char* level_name(Level level);

/// Parse a TSG_SIMD-style level name. Unknown names come back as a
/// structured kInvalidArgument Status listing the accepted values.
Expected<Level> parse_level(std::string_view text);

/// Compile probes: whether the AVX TUs were built with real kernels (false
/// when the toolchain rejected -mavx2 / -mavx512f, e.g. non-x86).
bool compiled_avx2();
bool compiled_avx512();

namespace detail {

/// What one ISA-specific TU exports: null pointers when the compile probe
/// failed and the TU fell back to its stub body.
struct LevelKernels {
  const SymbolicOps* sym;
  const NumericOps* num;
};

LevelKernels avx2_kernels();    // simd_avx2.cpp
LevelKernels avx512_kernels();  // simd_avx512.cpp

}  // namespace detail

/// Value-typed front end for the compress table entry: double/float go
/// through the dispatched kernels; any other accumulator type (semiring
/// experiments) keeps the word-packed generic walk.
template <class T>
inline void compress_tile(const NumericOps& ops, const T* acc, const rowmask_t* mask_c,
                          T* out) {
  if constexpr (std::is_same_v<T, double>) {
    ops.compress_d(acc, mask_c, out);
  } else if constexpr (std::is_same_v<T, float>) {
    ops.compress_f(acc, mask_c, out);
  } else {
    index_t o = 0;
    for (int wi = 0; wi < kTileMaskWords; ++wi) {
      std::uint64_t w = pack_rowmask_word(mask_c + wi * kRowsPerMaskWord);
      const T* acc_w = acc + static_cast<std::size_t>(wi) * (kRowsPerMaskWord * kTileDim);
      while (w != 0) {
        out[o++] = acc_w[std::countr_zero(w)];
        w &= w - 1;
      }
    }
  }
}

}  // namespace tsg::simd
