// Step 3 of TileSpGEMM (Algorithm 3): the numeric phase. For every tile of
// C the matched tile pairs are re-gathered (the intersection is cheap and
// re-running it avoids storing pair lists in global memory, as on the GPU)
// and the products are accumulated with an adaptively chosen accumulator:
//
//   * sparse (nnz <= tnnz): the column layout of the C tile is already known
//     from the step-2 masks, so each product is scattered directly to its
//     final slot via popcount-rank indexing — no temporary space at all.
//   * dense  (nnz >  tnnz): a 256-slot accumulator on the stack, compressed
//     through the mask afterwards.
#pragma once

#include "core/step2.h"

namespace tsg {

/// Numeric pass: fills the low-level arrays of C (row_idx/col_idx/val).
/// `c` must already carry its high-level structure and the step-2 results;
/// see tile_spgemm.cpp for the assembly. `pair_cache` may carry the pairs
/// recorded by step 2 (options.cache_pairs); pass nullptr (or a disabled
/// cache) to re-run the intersection per tile as the paper does.
template <class T>
void step3_numeric(const TileMatrix<T>& a, const TileMatrix<T>& b,
                   const TileLayoutCsc& b_csc, const TileStructure& structure,
                   const TileSpgemmOptions& options, TileMatrix<T>& c,
                   const detail::PairCache* pair_cache = nullptr);

extern template void step3_numeric(const TileMatrix<double>&, const TileMatrix<double>&,
                                   const TileLayoutCsc&, const TileStructure&,
                                   const TileSpgemmOptions&, TileMatrix<double>&,
                                   const detail::PairCache*);
extern template void step3_numeric(const TileMatrix<float>&, const TileMatrix<float>&,
                                   const TileLayoutCsc&, const TileStructure&,
                                   const TileSpgemmOptions&, TileMatrix<float>&,
                                   const detail::PairCache*);

}  // namespace tsg
