// Step 3 of TileSpGEMM (Algorithm 3): the numeric phase. For every tile of
// C the matched tile pairs are re-gathered (the intersection is cheap and
// re-running it avoids storing pair lists in global memory, as on the GPU)
// and the products are accumulated with an adaptively chosen accumulator:
//
//   * sparse (nnz <= tnnz): the column layout of the C tile is already known
//     from the step-2 masks, so each product is scattered directly to its
//     final slot via popcount-rank indexing — no temporary space at all.
//   * dense  (nnz >  tnnz): a 256-slot accumulator on the stack, compressed
//     through the mask afterwards.
//
// When the ExecutionPlan enabled the pair cache, step 2 left each tile's
// matched pairs in the workspace and this pass skips the re-intersection;
// when it enabled fusion, light tiles arrive with their values already
// staged and only need copying into place.
#pragma once

#include "core/step2.h"

namespace tsg {

/// Numeric pass: fills the low-level arrays of C (row_idx/col_idx/val).
/// `c` must already carry its high-level structure and the step-2 results;
/// see spgemm_context.cpp for the assembly. `ws` holds the per-thread
/// intersection scratch plus any pair-cache / staged-value records written
/// by step 2 under the same plan.
template <class T>
void step3_numeric(const TileMatrix<T>& a, const TileMatrix<T>& b,
                   const TileLayoutCsc& b_csc, const TileStructure& structure,
                   const TileSpgemmOptions& options, TileMatrix<T>& c,
                   SpgemmWorkspace<T>& ws, const ExecutionPlan& plan);

extern template void step3_numeric(const TileMatrix<double>&, const TileMatrix<double>&,
                                   const TileLayoutCsc&, const TileStructure&,
                                   const TileSpgemmOptions&, TileMatrix<double>&,
                                   SpgemmWorkspace<double>&, const ExecutionPlan&);
extern template void step3_numeric(const TileMatrix<float>&, const TileMatrix<float>&,
                                   const TileLayoutCsc&, const TileStructure&,
                                   const TileSpgemmOptions&, TileMatrix<float>&,
                                   SpgemmWorkspace<float>&, const ExecutionPlan&);

}  // namespace tsg
