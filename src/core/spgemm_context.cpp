#include "core/spgemm_context.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/tile_transpose.h"
#include "core/validate.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsg {

namespace {

/// Fold one run's outcome into the always-on registry counters. Called once
/// per run_impl — never per tile — so the cost is a dozen relaxed
/// fetch_adds regardless of matrix size.
void publish_run_metrics(const TileSpgemmTimings& tm) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  static obs::Counter& runs = reg.counter("spgemm.runs");
  static obs::Counter& scheduled = reg.counter("spgemm.tiles.scheduled");
  static obs::Counter& fused = reg.counter("spgemm.tiles.fused");
  static obs::Counter& chunks = reg.counter("spgemm.chunks");
  static obs::Counter& degraded = reg.counter("spgemm.runs.degraded");
  static obs::Counter& cache_dropped = reg.counter("spgemm.runs.cache_dropped");
  static std::array<obs::Counter*, kCostBins> bins = {
      &reg.counter("spgemm.tiles.bin0"), &reg.counter("spgemm.tiles.bin1"),
      &reg.counter("spgemm.tiles.bin2"), &reg.counter("spgemm.tiles.bin3")};
  static_assert(kCostBins == 4, "bin counter names assume four cost bins");
  // Runs per kernel dispatch level, so a fleet dashboard can spot hosts
  // silently running below their ISA (e.g. a stub AVX build).
  static std::array<obs::Counter*, simd::kLevelCount> levels = {
      &reg.counter("spgemm.kernel.level.scalar"), &reg.counter("spgemm.kernel.level.swar"),
      &reg.counter("spgemm.kernel.level.avx2"), &reg.counter("spgemm.kernel.level.avx512")};
  static_assert(simd::kLevelCount == 4, "level counter names assume four dispatch levels");
  runs.inc();
  if (tm.simd_level >= 0 && tm.simd_level < simd::kLevelCount) {
    levels[static_cast<std::size_t>(tm.simd_level)]->inc();
  }
  scheduled.add(tm.scheduled_tiles);
  fused.add(tm.fused_tiles);
  chunks.add(tm.chunks);
  if (tm.budget_limited) degraded.inc();
  if (tm.pair_cache_dropped) cache_dropped.inc();
  for (int bin = 0; bin < kCostBins; ++bin) {
    bins[static_cast<std::size_t>(bin)]->add(tm.bin_tiles[static_cast<std::size_t>(bin)]);
  }
}

/// Cost bin of one C tile. The estimated intersection work is the sum of
/// the two list lengths (both the binary-search and merge intersections
/// are linear-ish in it), which also bounds the number of matched pairs
/// the numeric phase accumulates.
int bin_of(offset_t cost) {
  if (cost <= 8) return 0;
  if (cost <= 32) return 1;
  if (cost <= 128) return 2;
  return 3;
}

std::string mb_string(std::size_t bytes) {
  if (bytes == static_cast<std::size_t>(-1)) return "(overflowed) MB";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

/// Guaranteed upper bound on the device-side bytes one C tile needs during
/// steps 2-3: output staging at the 256-nonzero tile maximum plus whatever
/// the active plan caches per tile (matched pairs, staged fused values).
/// Deliberately a bound, not an estimate — chunking decisions made from it
/// are always safe.
template <class T>
std::size_t tile_bytes_bound(const TileMatrix<T>& a, const TileLayoutCsc& b_csc, index_t ti,
                             index_t tj, bool cache_pairs, bool fuse_light,
                             int fuse_bin_cap) {
  std::size_t bytes =
      sizeof(offset_t) +
      static_cast<std::size_t>(kTileDim) * (sizeof(std::uint8_t) + sizeof(rowmask_t)) +
      static_cast<std::size_t>(kTileNnzMax) * (2 * sizeof(std::uint8_t) + sizeof(T));
  const offset_t len_a = a.tile_ptr[static_cast<std::size_t>(ti) + 1] -
                         a.tile_ptr[static_cast<std::size_t>(ti)];
  const offset_t len_b = b_csc.col_ptr[static_cast<std::size_t>(tj) + 1] -
                         b_csc.col_ptr[static_cast<std::size_t>(tj)];
  if (cache_pairs) {
    const std::size_t pairs = static_cast<std::size_t>(len_a < len_b ? len_a : len_b);
    bytes += pairs * sizeof(MatchedPair) + sizeof(detail::TileSlot);
  }
  if (fuse_light) {
    // Per-bin fusing: when binning is active (fuse_bin_cap >= 0 mirrors
    // ExecutionPlan::fuses_tile via the same bin_of cost), only tiles in a
    // fusing bin can stage values; without binning any tile may.
    const bool stages =
        fuse_bin_cap >= kCostBins || bin_of(len_a + len_b) <= fuse_bin_cap;
    if (stages) {
      bytes += static_cast<std::size_t>(kTileNnzMax) * sizeof(T) + sizeof(detail::TileSlot);
    }
  }
  return bytes;
}

/// Outcome of the post-step-1 budget check.
struct BudgetPlan {
  bool limited = false;       ///< single-shot footprint exceeds the budget
  std::size_t estimate = 0;   ///< single-shot bound (SIZE_MAX if arithmetic saturated)
  std::size_t budget = 0;     ///< modeled device budget at decision time
  /// Tile-row ranges [lo, hi) to execute when limited and degradation is
  /// on; empty otherwise.
  std::vector<std::pair<index_t, index_t>> chunks;
};

/// Bound the per-call footprint (pooled scratch after step 1 + per-tile
/// staging) against the modeled device budget and, when it does not fit,
/// greedily partition C's tile rows into chunks that each do. All byte
/// arithmetic is overflow-checked and saturates to SIZE_MAX, which simply
/// reads as "does not fit".
template <class T>
BudgetPlan plan_budget(const TileMatrix<T>& a, const TileLayoutCsc& b_csc,
                       const TileStructure& st, const SpgemmWorkspace<T>& ws, bool cache_pairs,
                       bool fuse_light, int fuse_bin_cap, bool degrade) {
  constexpr std::size_t kSat = static_cast<std::size_t>(-1);
  BudgetPlan out;
  out.budget = device_memory_budget_bytes();

  // Fixed share: the pooled buffers already sized by step 1 (layout view,
  // structure, per-thread scratch) plus C's top-level arrays, all of which
  // stay live for the whole multiply regardless of chunking.
  std::size_t fixed = ws.bytes();
  const std::size_t top_level = st.tile_ptr.size() * sizeof(offset_t) +
                                st.tile_col_idx.size() * sizeof(index_t) +
                                (st.tile_col_idx.size() + 1) * sizeof(offset_t);
  if (!checked_add(fixed, top_level, fixed)) fixed = kSat;

  // Per-tile-row staging bounds; these drive both the single-shot verdict
  // and the greedy partition.
  const index_t tile_rows = st.tile_rows;
  std::vector<std::size_t> row_bytes(static_cast<std::size_t>(tile_rows), 0);
  std::size_t staging = 0;
  for (index_t tr = 0; tr < tile_rows; ++tr) {
    std::size_t rb = 0;
    for (offset_t t = st.tile_ptr[static_cast<std::size_t>(tr)];
         t < st.tile_ptr[static_cast<std::size_t>(tr) + 1]; ++t) {
      const index_t ti = st.tile_row_idx[static_cast<std::size_t>(t)];
      const index_t tj = st.tile_col_idx[static_cast<std::size_t>(t)];
      const std::size_t tb =
          tile_bytes_bound(a, b_csc, ti, tj, cache_pairs, fuse_light, fuse_bin_cap);
      if (!checked_add(rb, tb, rb)) {
        rb = kSat;
        break;
      }
    }
    row_bytes[static_cast<std::size_t>(tr)] = rb;
    if (staging != kSat && !checked_add(staging, rb, staging)) staging = kSat;
  }
  if (fixed == kSat || staging == kSat || !checked_add(fixed, staging, out.estimate)) {
    out.estimate = kSat;
  }
  if (out.estimate <= out.budget) return out;

  out.limited = true;
  if (!degrade) return out;  // the caller turns this into kBudgetExceeded

  // Greedy tile-row partition. Every chunk's staging bound fits within the
  // budget left after the fixed share; a single tile row that exceeds that
  // on its own becomes its own best-effort chunk (one row is the finest
  // granularity the pipeline can execute).
  const std::size_t chunk_budget = out.budget > fixed ? out.budget - fixed : 1;
  index_t lo = 0;
  std::size_t acc = 0;
  for (index_t tr = 0; tr < tile_rows; ++tr) {
    const std::size_t rb = row_bytes[static_cast<std::size_t>(tr)];
    std::size_t next = 0;
    const bool fits = checked_add(acc, rb, next) && next <= chunk_budget;
    if (!fits && tr > lo) {
      out.chunks.emplace_back(lo, tr);
      lo = tr;
      acc = rb;
    } else {
      acc = fits ? next : rb;
    }
  }
  out.chunks.emplace_back(lo, tile_rows);
  return out;
}

}  // namespace

namespace {

/// Every TSG_-prefixed environment variable some part of the project reads
/// (library knobs, service knobs, bench-harness knobs, check.sh stage
/// knobs). from_env() warns about any other TSG_* in the environment so a
/// typo (TSG_DEVICE_MEM=...) surfaces instead of being silently ignored;
/// the table in docs/ARCHITECTURE.md mirrors this list.
constexpr const char* kKnownEnvKnobs[] = {
    "TSG_NUM_THREADS",    "TSG_DEVICE_MEM_MB",     "TSG_TRACE",
    "TSG_METRICS",        "TSG_SIMD",              "TSG_SERVICE_WORKERS",
    "TSG_SERVICE_QUEUE_CAP",
    "TSG_BENCH_REPS",     "TSG_BENCH_SCALE",       "TSG_BENCH_TOLERANCE",
    "TSG_BENCH_SPEEDUP",  "TSG_BENCH_MIN_MS",      "TSG_CTEST_ARGS",
    "TSG_OBS_GATE_REPS",
    "TSG_OBS_OVERHEAD_PCT", "TSG_SERVICE_STUCK_MS",
    // Observability knobs (structured log, flight recorder, SLO monitor —
    // see docs/OBSERVABILITY.md).
    "TSG_LOG",            "TSG_LOG_LEVEL",         "TSG_FLIGHT_DIR",
    "TSG_SLO_P99_MS",     "TSG_SLO_MAX_ERROR_RATE",
    // Build/CI controls (scripts/check.sh, CMake options) that may sit in
    // the environment when a test process calls from_env().
    "TSG_PARALLEL_STD",   "TSG_SANITIZE",          "TSG_TRACING",
    "TSG_TSAN",           "TSG_LOGGING",           "TSG_CHAOS_SEED",
};

void warn_unknown_env_knobs() {
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "TSG_", 4) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    const std::string name(entry, eq != nullptr ? static_cast<std::size_t>(eq - entry)
                                                : std::strlen(entry));
    bool known = false;
    for (const char* k : kKnownEnvKnobs) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (known) continue;
    // Once per variable per process: repeated from_env() calls (every
    // context-config construction in a test suite) must not spam the log.
    // Mutex-guarded — service workers may build configs concurrently.
    static std::mutex warned_mutex;
    static std::set<std::string> warned;
    std::lock_guard<std::mutex> lock(warned_mutex);
    if (warned.insert(name).second) {
      TSG_LOG_WARN("env.unknown_knob", {"name", name},
                   {"hint", "TSG_ prefix is reserved; known knobs are listed in "
                            "docs/ARCHITECTURE.md"});
    }
  }
}

}  // namespace

SpgemmContext::Config SpgemmContext::Config::from_env() {
  Config cfg;
  // TSG_LOG / TSG_LOG_LEVEL apply process-wide on the first from_env()
  // (idempotent; a later explicit log call would configure lazily anyway).
  obs::configure_logging_from_env();
  warn_unknown_env_knobs();
  if (const char* env = std::getenv("TSG_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) cfg.threads = n;
  }
  if (const char* env = std::getenv("TSG_DEVICE_MEM_MB")) {
    const long mb = std::atol(env);
    if (mb > 0) cfg.device_mem_mb = static_cast<std::size_t>(mb);
  }
  const auto truthy = [](const char* v) {
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  };
  if (truthy(std::getenv("TSG_TRACE"))) cfg.tracing = true;
  if (truthy(std::getenv("TSG_METRICS"))) cfg.metrics_detail = true;
  // TSG_SIMD is already folded into the TileSpgemmOptions default through
  // simd::active_level() (which parses, warns, and clamps once); re-assign
  // here so a from_env() config stays explicit about where the level came
  // from even if the options default ever changes.
  cfg.options.simd = simd::active_level();
  return cfg;
}

SpgemmContext::SpgemmContext(const Config& config)
    : cfg_(config), cancel_(config.cancel_token) {
  if (cfg_.device_mem_mb > 0) {
    set_device_memory_budget_bytes(cfg_.device_mem_mb * 1024 * 1024);
  }
  // One-way: a default-constructed context must not disable a gate some
  // other entry point (CLI --trace, a test) already opened.
  if (cfg_.tracing) obs::TraceCollector::instance().set_enabled(true);
  if (cfg_.metrics_detail) obs::set_metrics_detail_enabled(true);
  // Publish the process-wide dispatch level once (a gauge, not per-run
  // counters: the active level is a host/build property). Per-run levels —
  // which per-context forcing can lower — land on the
  // spgemm.kernel.level.* counters in publish_run_metrics.
  static std::once_flag once;
  std::call_once(once, [] {
    obs::MetricsRegistry::instance().register_gauge("spgemm.kernel.level", [] {
      return static_cast<std::int64_t>(simd::active_level());
    });
  });
}

template <class T>
ExecutionPlan SpgemmContext::make_plan(const TileMatrix<T>& a, const TileLayoutCsc& b_csc,
                                       const TileStructure& structure, SpgemmWorkspace<T>& ws,
                                       bool cache_pairs, bool fuse_light,
                                       TileSpgemmTimings& tm) {
  ExecutionPlan plan;
  plan.cache_pairs = cache_pairs;
  plan.cache_min_bin = cfg_.pair_cache_min_bin;
  plan.fuse_light = fuse_light && cache_pairs;
  plan.fuse_threshold = cfg_.fuse_threshold;
  plan.fuse_max_bin = cfg_.fuse_max_bin;
  plan.cancel = cancel_;

  const offset_t ntiles = structure.num_tiles();
  // Accumulated, not assigned: chunked execution builds one plan per chunk.
  tm.scheduled_tiles += ntiles;
  if (!cfg_.cost_binning || ntiles == 0) return plan;

  ScopedAccumulator scope(tm.plan_ms);
  TSG_TRACE_SPAN("plan", ntiles);
  // Per-tile cost = |A's tile row| + |B's tile column|: the length of the
  // two lists the step-2/3 intersection walks. Binned counting sort, heavy
  // bins first, so the dynamically scheduled loops never finish a light
  // prefix and then wait on one trailing monster tile.
  ws.cost_bin.resize(static_cast<std::size_t>(ntiles));
  std::array<offset_t, kCostBins> count{};
  for (offset_t t = 0; t < ntiles; ++t) {
    const index_t ti = structure.tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tj = structure.tile_col_idx[static_cast<std::size_t>(t)];
    const offset_t cost = (a.tile_ptr[ti + 1] - a.tile_ptr[ti]) +
                          (b_csc.col_ptr[tj + 1] - b_csc.col_ptr[tj]);
    const int bin = bin_of(cost);
    ws.cost_bin[static_cast<std::size_t>(t)] = bin;
    ++count[static_cast<std::size_t>(bin)];
  }
  std::array<offset_t, kCostBins> cursor{};
  offset_t acc = 0;
  for (int bin = kCostBins - 1; bin >= 0; --bin) {
    cursor[static_cast<std::size_t>(bin)] = acc;
    acc += count[static_cast<std::size_t>(bin)];
  }
  ws.schedule.resize(static_cast<std::size_t>(ntiles));
  for (offset_t t = 0; t < ntiles; ++t) {
    const auto bin = static_cast<std::size_t>(ws.cost_bin[static_cast<std::size_t>(t)]);
    ws.schedule[static_cast<std::size_t>(cursor[bin]++)] = t;
  }
  for (int bin = 0; bin < kCostBins; ++bin) {
    tm.bin_tiles[static_cast<std::size_t>(bin)] += count[static_cast<std::size_t>(bin)];
  }
  plan.order = ws.schedule.data();
  // With the bins known, steps 2/3 can select the pair cache per cost bin
  // (cache_min_bin); without binning tile_bin stays null and every tile
  // caches, matching the pre-bin behaviour.
  plan.tile_bin = ws.cost_bin.data();
  return plan;
}

template <class T>
TileSpgemmResult<T> SpgemmContext::run_impl(const TileMatrix<T>& a, const TileMatrix<T>& b) {
  TSG_TRACE_SPAN("spgemm.run");
  std::optional<obs::MetricsSnapshot> before;
  if (obs::metrics_detail_enabled()) {
    before.emplace(obs::MetricsRegistry::instance().snapshot());
  }
  std::optional<ThreadCountGuard> guard;
  if (cfg_.threads > 0) guard.emplace(cfg_.threads);

  SpgemmWorkspace<T>& ws = workspace<T>();
  ws.ensure_threads(max_workers());
  ws.begin_call();
  // Arm cooperative cancellation for this call (begin_call just cleared
  // any stale token) and refuse to start work already past its deadline.
  ws.cancel = cancel_;
  check_cancelled();

  TileSpgemmResult<T> result;
  TileSpgemmTimings& tm = result.timings;
  tm.convert_ms = pending_convert_ms_;
  pending_convert_ms_ = 0.0;
  tm.simd_level = static_cast<int>(effective_simd_level(cfg_.options));

  // Column-major view of B's tile layout, needed by the step-2/3
  // intersections; building it is allocation/bookkeeping, not algorithm.
  {
    ScopedAccumulator scope(tm.alloc_ms);
    TSG_TRACE_SPAN("alloc.layout");
    tile_layout_csc(b, ws.b_csc);
  }

  // Step 1: tile structure of C.
  {
    ScopedAccumulator scope(tm.step1_ms);
    TSG_TRACE_SPAN("step1");
    step1_tile_structure(a, b, ws, ws.structure);
  }
  // Stage boundary: convert a reason latched inside step 1 into the
  // structured status before the partial structure is consumed, and bump
  // the liveness epoch the watchdog heartbeats.
  cancel_.note_progress();
  check_cancelled();

  // Budget decision: bound the per-call footprint now that step 1 fixed the
  // output's tile structure, and degrade in stages if it does not fit the
  // modeled device: first drop the pair cache / fused staging (the paper's
  // recompute policy holds zero global intermediate state), then chunk.
  bool cache_pairs = cfg_.options.cache_pairs;
  bool fuse_light = cfg_.fuse_light_tiles && cache_pairs;
  BudgetPlan budget;
  {
    ScopedAccumulator scope(tm.plan_ms);
    TSG_TRACE_SPAN("plan.budget");
    // fuse_bin_cap >= kCostBins encodes "binning off: any tile may stage".
    const int fuse_bin_cap = cfg_.cost_binning ? cfg_.fuse_max_bin : kCostBins;
    budget = plan_budget(a, ws.b_csc, ws.structure, ws, cache_pairs, fuse_light,
                         fuse_bin_cap, cfg_.degrade_on_budget);
    if (budget.limited && cache_pairs) {
      budget = plan_budget(a, ws.b_csc, ws.structure, ws, false, false, fuse_bin_cap,
                           cfg_.degrade_on_budget);
      cache_pairs = false;
      fuse_light = false;
      tm.pair_cache_dropped = true;
    }
  }
  tm.budget_limited = budget.limited;
  if (budget.limited && !cfg_.degrade_on_budget) {
    throw Error(Status::budget_exceeded(
        "estimated footprint " + mb_string(budget.estimate) +
        " exceeds the modeled device budget " + mb_string(budget.budget) +
        " and degradation is disabled (Config::with_degradation)"));
  }

  if (budget.limited) {
    run_chunked(a, b, budget.chunks, ws, cache_pairs, fuse_light, result);
    tm.chunks = static_cast<int>(budget.chunks.size());
  } else {
    // Cost model + binned schedule (plan_ms).
    const ExecutionPlan plan =
        make_plan(a, ws.b_csc, ws.structure, ws, cache_pairs, fuse_light, tm);

    // Step 2: per-tile symbolic -> nnz, row pointers, masks (and, under the
    // fused plan, staged values for light tiles).
    Step2Result symbolic;
    {
      ScopedAccumulator scope(tm.step2_ms);
      TSG_TRACE_SPAN("step2", ws.structure.num_tiles());
      symbolic = step2_symbolic(a, b, ws.b_csc, ws.structure, cfg_.options, ws, plan);
    }
    // Stage boundary: a tile skipped by a tripped token left a hole in the
    // symbolic result — bail out before C is allocated from it.
    cancel_.note_progress();
    check_cancelled();
    tm.fused_tiles = symbolic.fused_tiles;

    // Allocate C (the only sizeable allocation of the whole algorithm).
    TileMatrix<T>& c = result.c;
    {
      ScopedAccumulator scope(tm.alloc_ms);
      TSG_TRACE_SPAN("alloc.c");
      c.rows = a.rows;
      c.cols = b.cols;
      c.tile_rows = ws.structure.tile_rows;
      c.tile_cols = ws.structure.tile_cols;
      c.tile_ptr = ws.structure.tile_ptr;
      c.tile_col_idx = ws.structure.tile_col_idx;
      c.tile_nnz = std::move(symbolic.tile_nnz);
      c.row_ptr = std::move(symbolic.row_ptr);
      c.mask = std::move(symbolic.mask);
      const std::size_t nnz = static_cast<std::size_t>(c.nnz());
      c.row_idx.resize(nnz);
      c.col_idx.resize(nnz);
      c.val.resize(nnz);
    }

    // Step 3: numeric.
    {
      ScopedAccumulator scope(tm.step3_ms);
      TSG_TRACE_SPAN("step3", ws.structure.num_tiles());
      step3_numeric(a, b, ws.b_csc, ws.structure, cfg_.options, c, ws, plan);
    }
    // Stage boundary: values of skipped tiles were never written — the
    // partial C must not be returned as a result.
    cancel_.note_progress();
    check_cancelled();
  }
  tm.workspace_bytes = workspace_bytes();

  // Publish the run to the registry (always-on counters), then — only when
  // detail is on — attach this run's registry delta to the timings. The
  // publish happens first so the snapshot already reflects this run, which
  // is what keeps tm.metrics consistent with tm's own counters.
  publish_run_metrics(tm);
  if (before.has_value()) {
    tm.metrics = std::make_shared<const obs::MetricsSnapshot>(obs::MetricsSnapshot::delta(
        *before, obs::MetricsRegistry::instance().snapshot()));
  }
  return result;
}

template <class T>
void SpgemmContext::run_chunked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                const std::vector<std::pair<index_t, index_t>>& chunks,
                                SpgemmWorkspace<T>& ws, bool cache_pairs, bool fuse_light,
                                TileSpgemmResult<T>& result) {
  const TileStructure& st = ws.structure;
  TileSpgemmTimings& tm = result.timings;
  TileMatrix<T>& c = result.c;

  // Assemble C's top level once; the low-level arrays grow chunk by chunk.
  {
    ScopedAccumulator scope(tm.alloc_ms);
    c.rows = a.rows;
    c.cols = b.cols;
    c.tile_rows = st.tile_rows;
    c.tile_cols = st.tile_cols;
    c.tile_ptr = st.tile_ptr;
    c.tile_col_idx = st.tile_col_idx;
    const std::size_t ntiles = st.tile_col_idx.size();
    c.tile_nnz.clear();
    c.tile_nnz.reserve(ntiles + 1);
    c.tile_nnz.push_back(0);
    c.row_ptr.clear();
    c.row_ptr.reserve(checked_size_mul(ntiles, static_cast<std::size_t>(kTileDim)));
    c.mask.clear();
    c.mask.reserve(checked_size_mul(ntiles, static_cast<std::size_t>(kTileDim)));
  }

  // Chunk-local structure and output, hoisted so later chunks reuse their
  // capacity. Steps 2/3 identify each tile purely through tile_row_idx /
  // tile_col_idx (original, un-rebased indices into A's tile rows and
  // B's tile columns) and index their outputs by position, so a chunk is
  // literally a slice of the step-1 structure.
  TileStructure chunk_st;
  chunk_st.tile_rows = st.tile_rows;
  chunk_st.tile_cols = st.tile_cols;
  TileMatrix<T> cc;

  for (std::size_t chunk_idx = 0; chunk_idx < chunks.size(); ++chunk_idx) {
    const std::pair<index_t, index_t>& range = chunks[chunk_idx];
    TSG_TRACE_SPAN("chunk", static_cast<std::int64_t>(chunk_idx));
    const std::size_t tlo = static_cast<std::size_t>(st.tile_ptr[static_cast<std::size_t>(range.first)]);
    const std::size_t thi = static_cast<std::size_t>(st.tile_ptr[static_cast<std::size_t>(range.second)]);

    // Chunk boundary: the primary cancellation/deadline checkpoint of a
    // degraded run, and a progress-epoch bump for the watchdog. A throw
    // here unwinds with all chunk-local buffers accounted (they are either
    // pooled in ws or owned by this frame).
    cancel_.note_progress();
    check_cancelled();

    ws.begin_call();  // drop the previous chunk's pair cache / staged values
    ws.cancel = cancel_;  // begin_call cleared the per-call token
    {
      ScopedAccumulator scope(tm.alloc_ms);
      chunk_st.tile_row_idx.assign(st.tile_row_idx.begin() + static_cast<std::ptrdiff_t>(tlo),
                                   st.tile_row_idx.begin() + static_cast<std::ptrdiff_t>(thi));
      chunk_st.tile_col_idx.assign(st.tile_col_idx.begin() + static_cast<std::ptrdiff_t>(tlo),
                                   st.tile_col_idx.begin() + static_cast<std::ptrdiff_t>(thi));
    }

    const ExecutionPlan plan =
        make_plan(a, ws.b_csc, chunk_st, ws, cache_pairs, fuse_light, tm);

    Step2Result symbolic;
    {
      ScopedAccumulator scope(tm.step2_ms);
      TSG_TRACE_SPAN("step2", chunk_st.num_tiles());
      symbolic = step2_symbolic(a, b, ws.b_csc, chunk_st, cfg_.options, ws, plan);
    }
    check_cancelled();  // don't allocate this chunk's slice from a hole
    tm.fused_tiles += symbolic.fused_tiles;

    {
      ScopedAccumulator scope(tm.alloc_ms);
      cc.rows = a.rows;
      cc.cols = b.cols;
      cc.tile_rows = st.tile_rows;
      cc.tile_cols = st.tile_cols;
      cc.tile_nnz = std::move(symbolic.tile_nnz);
      cc.row_ptr = std::move(symbolic.row_ptr);
      cc.mask = std::move(symbolic.mask);
      const std::size_t cn = static_cast<std::size_t>(cc.nnz());
      cc.row_idx.resize(cn);
      cc.col_idx.resize(cn);
      cc.val.resize(cn);
    }

    {
      ScopedAccumulator scope(tm.step3_ms);
      TSG_TRACE_SPAN("step3", chunk_st.num_tiles());
      step3_numeric(a, b, ws.b_csc, chunk_st, cfg_.options, cc, ws, plan);
    }
    check_cancelled();  // don't stitch a chunk whose values have holes

    // Stitch. Chunks arrive in tile-row order and tiles keep their storage
    // order inside a chunk, so appending (with the nnz offsets rebased onto
    // the running total) reproduces the single-shot layout bit for bit.
    {
      ScopedAccumulator scope(tm.alloc_ms);
      const offset_t base = c.tile_nnz.back();
      for (std::size_t k = 0; k + 1 < cc.tile_nnz.size(); ++k) {
        c.tile_nnz.push_back(base + cc.tile_nnz[k + 1]);
      }
      c.row_ptr.insert(c.row_ptr.end(), cc.row_ptr.begin(), cc.row_ptr.end());
      c.mask.insert(c.mask.end(), cc.mask.begin(), cc.mask.end());
      c.row_idx.insert(c.row_idx.end(), cc.row_idx.begin(), cc.row_idx.end());
      c.col_idx.insert(c.col_idx.end(), cc.col_idx.begin(), cc.col_idx.end());
      c.val.insert(c.val.end(), cc.val.begin(), cc.val.end());
    }
  }
}

template <class T>
Expected<TileSpgemmResult<T>> SpgemmContext::try_run(const TileMatrix<T>& a,
                                                     const TileMatrix<T>& b) {
  if (a.cols != b.rows) {
    return Status::dimension_mismatch("spgemm: inner dimensions differ (A is " +
                                      std::to_string(a.rows) + "x" + std::to_string(a.cols) +
                                      ", B is " + std::to_string(b.rows) + "x" +
                                      std::to_string(b.cols) + ")");
  }
  if (Status s = validate_tile_operand(a, "A", cfg_.validation, cfg_.nan_policy); !s.ok()) {
    return s;
  }
  if (Status s = validate_tile_operand(b, "B", cfg_.validation, cfg_.nan_policy); !s.ok()) {
    return s;
  }
  try {
    return run_impl(a, b);
  } catch (const Error& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::allocation_failed(
        "spgemm: a tracked allocation failed mid-run (real or injected); the context remains "
        "reusable");
  }
}

template <class T>
TileSpgemmResult<T> SpgemmContext::run(const TileMatrix<T>& a, const TileMatrix<T>& b) {
  return std::move(try_run(a, b)).value();
}

template <class T>
Expected<TileSpgemmResult<T>> SpgemmContext::try_run_aat(const TileMatrix<T>& a) {
  TileMatrix<T> at;
  double transpose_ms = 0.0;
  try {
    // Transposition is data movement, not multiplication: book it with the
    // allocation share like the layout view.
    ScopedAccumulator scope(transpose_ms);
    at = tile_transpose(a);
  } catch (const std::bad_alloc&) {
    return Status::allocation_failed("run_aat: allocation failed while forming A^T");
  }
  Expected<TileSpgemmResult<T>> product = try_run(a, at);
  if (product.ok()) product->timings.alloc_ms += transpose_ms;
  return product;
}

template <class T>
TileSpgemmResult<T> SpgemmContext::run_aat(const TileMatrix<T>& a) {
  return std::move(try_run_aat(a)).value();
}

template <class T>
TileMatrix<T> SpgemmContext::to_tile(const Csr<T>& m) {
  Timer timer;
  TileMatrix<T> tile = csr_to_tile(m);
  pending_convert_ms_ += timer.milliseconds();
  return tile;
}

template <class T>
Expected<Csr<T>> SpgemmContext::try_run_csr(const Csr<T>& a, const Csr<T>& b,
                                            TileSpgemmTimings* timings) {
  if (a.cols != b.rows) {
    return Status::dimension_mismatch("spgemm: inner dimensions differ (A is " +
                                      std::to_string(a.rows) + "x" + std::to_string(a.cols) +
                                      ", B is " + std::to_string(b.rows) + "x" +
                                      std::to_string(b.cols) + ")");
  }
  if (Status s = validate_csr_operand(a, "A", cfg_.validation, cfg_.nan_policy); !s.ok()) {
    return s;
  }
  if (&a != &b) {
    if (Status s = validate_csr_operand(b, "B", cfg_.validation, cfg_.nan_policy); !s.ok()) {
      return s;
    }
  }
  try {
    const TileMatrix<T> ta = to_tile(a);
    // Aliased operands (C = A*A) convert once.
    std::optional<TileMatrix<T>> tb;
    if (&a != &b) tb.emplace(to_tile(b));
    Expected<TileSpgemmResult<T>> result = try_run(ta, tb ? *tb : ta);
    if (!result.ok()) {
      pending_convert_ms_ = 0.0;  // the failed run consumed nothing; don't charge the next one
      return result.status();
    }
    Timer back;
    Csr<T> c = tile_to_csr(result->c);
    result->timings.convert_ms += back.milliseconds();
    if (timings != nullptr) *timings = result->timings;
    return c;
  } catch (const std::bad_alloc&) {
    pending_convert_ms_ = 0.0;
    return Status::allocation_failed("run_csr: allocation failed during CSR<->tile conversion");
  } catch (const Error& e) {
    pending_convert_ms_ = 0.0;
    return e.status();
  }
}

template <class T>
Csr<T> SpgemmContext::run_csr(const Csr<T>& a, const Csr<T>& b, TileSpgemmTimings* timings) {
  return std::move(try_run_csr(a, b, timings)).value();
}

template Expected<TileSpgemmResult<double>> SpgemmContext::try_run(const TileMatrix<double>&,
                                                                  const TileMatrix<double>&);
template Expected<TileSpgemmResult<float>> SpgemmContext::try_run(const TileMatrix<float>&,
                                                                 const TileMatrix<float>&);
template TileSpgemmResult<double> SpgemmContext::run(const TileMatrix<double>&,
                                                     const TileMatrix<double>&);
template TileSpgemmResult<float> SpgemmContext::run(const TileMatrix<float>&,
                                                    const TileMatrix<float>&);
template Expected<TileSpgemmResult<double>> SpgemmContext::try_run_aat(const TileMatrix<double>&);
template Expected<TileSpgemmResult<float>> SpgemmContext::try_run_aat(const TileMatrix<float>&);
template TileSpgemmResult<double> SpgemmContext::run_aat(const TileMatrix<double>&);
template TileSpgemmResult<float> SpgemmContext::run_aat(const TileMatrix<float>&);
template Expected<Csr<double>> SpgemmContext::try_run_csr(const Csr<double>&, const Csr<double>&,
                                                          TileSpgemmTimings*);
template Expected<Csr<float>> SpgemmContext::try_run_csr(const Csr<float>&, const Csr<float>&,
                                                         TileSpgemmTimings*);
template Csr<double> SpgemmContext::run_csr(const Csr<double>&, const Csr<double>&,
                                            TileSpgemmTimings*);
template Csr<float> SpgemmContext::run_csr(const Csr<float>&, const Csr<float>&,
                                           TileSpgemmTimings*);
template TileMatrix<double> SpgemmContext::to_tile(const Csr<double>&);
template TileMatrix<float> SpgemmContext::to_tile(const Csr<float>&);

}  // namespace tsg
