#include "core/spgemm_context.h"

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/tile_transpose.h"

namespace tsg {

namespace {

/// Cost bin of one C tile. The estimated intersection work is the sum of
/// the two list lengths (both the binary-search and merge intersections
/// are linear-ish in it), which also bounds the number of matched pairs
/// the numeric phase accumulates.
int bin_of(offset_t cost) {
  if (cost <= 8) return 0;
  if (cost <= 32) return 1;
  if (cost <= 128) return 2;
  return 3;
}

}  // namespace

SpgemmContext::Config SpgemmContext::Config::from_env() {
  Config cfg;
  if (const char* env = std::getenv("TSG_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) cfg.threads = n;
  }
  if (const char* env = std::getenv("TSG_DEVICE_MEM_MB")) {
    const long mb = std::atol(env);
    if (mb > 0) cfg.device_mem_mb = static_cast<std::size_t>(mb);
  }
  return cfg;
}

SpgemmContext::SpgemmContext(const Config& config) : cfg_(config) {
  if (cfg_.device_mem_mb > 0) {
    set_device_memory_budget_bytes(cfg_.device_mem_mb * 1024 * 1024);
  }
}

template <class T>
ExecutionPlan SpgemmContext::make_plan(const TileMatrix<T>& a, const TileLayoutCsc& b_csc,
                                       SpgemmWorkspace<T>& ws, TileSpgemmTimings& tm) {
  ExecutionPlan plan;
  plan.cache_pairs = cfg_.options.cache_pairs;
  plan.fuse_light = cfg_.fuse_light_tiles && cfg_.options.cache_pairs;
  plan.fuse_threshold = cfg_.fuse_threshold;

  const offset_t ntiles = ws.structure.num_tiles();
  tm.scheduled_tiles = ntiles;
  if (!cfg_.cost_binning || ntiles == 0) return plan;

  ScopedAccumulator scope(tm.plan_ms);
  // Per-tile cost = |A's tile row| + |B's tile column|: the length of the
  // two lists the step-2/3 intersection walks. Binned counting sort, heavy
  // bins first, so the dynamically scheduled loops never finish a light
  // prefix and then wait on one trailing monster tile.
  ws.cost_bin.resize(static_cast<std::size_t>(ntiles));
  std::array<offset_t, kCostBins> count{};
  for (offset_t t = 0; t < ntiles; ++t) {
    const index_t ti = ws.structure.tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tj = ws.structure.tile_col_idx[static_cast<std::size_t>(t)];
    const offset_t cost = (a.tile_ptr[ti + 1] - a.tile_ptr[ti]) +
                          (b_csc.col_ptr[tj + 1] - b_csc.col_ptr[tj]);
    const int bin = bin_of(cost);
    ws.cost_bin[static_cast<std::size_t>(t)] = bin;
    ++count[static_cast<std::size_t>(bin)];
  }
  std::array<offset_t, kCostBins> cursor{};
  offset_t acc = 0;
  for (int bin = kCostBins - 1; bin >= 0; --bin) {
    cursor[static_cast<std::size_t>(bin)] = acc;
    acc += count[static_cast<std::size_t>(bin)];
  }
  ws.schedule.resize(static_cast<std::size_t>(ntiles));
  for (offset_t t = 0; t < ntiles; ++t) {
    const auto bin = static_cast<std::size_t>(ws.cost_bin[static_cast<std::size_t>(t)]);
    ws.schedule[static_cast<std::size_t>(cursor[bin]++)] = t;
  }
  tm.bin_tiles = count;
  plan.order = ws.schedule.data();
  return plan;
}

template <class T>
TileSpgemmResult<T> SpgemmContext::run(const TileMatrix<T>& a, const TileMatrix<T>& b) {
  if (a.cols != b.rows) {
    throw std::invalid_argument("SpgemmContext::run: inner dimensions differ");
  }
  std::optional<ThreadCountGuard> guard;
  if (cfg_.threads > 0) guard.emplace(cfg_.threads);

  SpgemmWorkspace<T>& ws = workspace<T>();
  ws.ensure_threads(omp_get_max_threads());
  ws.begin_call();

  TileSpgemmResult<T> result;
  TileSpgemmTimings& tm = result.timings;
  tm.convert_ms = pending_convert_ms_;
  pending_convert_ms_ = 0.0;

  // Column-major view of B's tile layout, needed by the step-2/3
  // intersections; building it is allocation/bookkeeping, not algorithm.
  {
    ScopedAccumulator scope(tm.alloc_ms);
    tile_layout_csc(b, ws.b_csc);
  }

  // Step 1: tile structure of C.
  {
    ScopedAccumulator scope(tm.step1_ms);
    step1_tile_structure(a, b, ws, ws.structure);
  }

  // Cost model + binned schedule (plan_ms).
  const ExecutionPlan plan = make_plan(a, ws.b_csc, ws, tm);

  // Step 2: per-tile symbolic -> nnz, row pointers, masks (and, under the
  // fused plan, staged values for light tiles).
  Step2Result symbolic;
  {
    ScopedAccumulator scope(tm.step2_ms);
    symbolic = step2_symbolic(a, b, ws.b_csc, ws.structure, cfg_.options, ws, plan);
  }
  tm.fused_tiles = symbolic.fused_tiles;

  // Allocate C (the only sizeable allocation of the whole algorithm).
  TileMatrix<T>& c = result.c;
  {
    ScopedAccumulator scope(tm.alloc_ms);
    c.rows = a.rows;
    c.cols = b.cols;
    c.tile_rows = ws.structure.tile_rows;
    c.tile_cols = ws.structure.tile_cols;
    c.tile_ptr = ws.structure.tile_ptr;
    c.tile_col_idx = ws.structure.tile_col_idx;
    c.tile_nnz = std::move(symbolic.tile_nnz);
    c.row_ptr = std::move(symbolic.row_ptr);
    c.mask = std::move(symbolic.mask);
    const std::size_t nnz = static_cast<std::size_t>(c.nnz());
    c.row_idx.resize(nnz);
    c.col_idx.resize(nnz);
    c.val.resize(nnz);
  }

  // Step 3: numeric.
  {
    ScopedAccumulator scope(tm.step3_ms);
    step3_numeric(a, b, ws.b_csc, ws.structure, cfg_.options, c, ws, plan);
  }
  tm.workspace_bytes = workspace_bytes();
  return result;
}

template <class T>
TileSpgemmResult<T> SpgemmContext::run_aat(const TileMatrix<T>& a) {
  TileMatrix<T> at;
  double transpose_ms = 0.0;
  {
    // Transposition is data movement, not multiplication: book it with the
    // allocation share like the layout view.
    ScopedAccumulator scope(transpose_ms);
    at = tile_transpose(a);
  }
  TileSpgemmResult<T> product = run(a, at);
  product.timings.alloc_ms += transpose_ms;
  return product;
}

template <class T>
TileMatrix<T> SpgemmContext::to_tile(const Csr<T>& m) {
  Timer timer;
  TileMatrix<T> tile = csr_to_tile(m);
  pending_convert_ms_ += timer.milliseconds();
  return tile;
}

template <class T>
Csr<T> SpgemmContext::run_csr(const Csr<T>& a, const Csr<T>& b, TileSpgemmTimings* timings) {
  const TileMatrix<T> ta = to_tile(a);
  // Aliased operands (C = A*A) convert once.
  std::optional<TileMatrix<T>> tb;
  if (&a != &b) tb.emplace(to_tile(b));
  TileSpgemmResult<T> result = run(ta, tb ? *tb : ta);
  Timer back;
  Csr<T> c = tile_to_csr(result.c);
  result.timings.convert_ms += back.milliseconds();
  if (timings != nullptr) *timings = result.timings;
  return c;
}

template TileSpgemmResult<double> SpgemmContext::run(const TileMatrix<double>&,
                                                     const TileMatrix<double>&);
template TileSpgemmResult<float> SpgemmContext::run(const TileMatrix<float>&,
                                                    const TileMatrix<float>&);
template TileSpgemmResult<double> SpgemmContext::run_aat(const TileMatrix<double>&);
template TileSpgemmResult<float> SpgemmContext::run_aat(const TileMatrix<float>&);
template Csr<double> SpgemmContext::run_csr(const Csr<double>&, const Csr<double>&,
                                            TileSpgemmTimings*);
template Csr<float> SpgemmContext::run_csr(const Csr<float>&, const Csr<float>&,
                                           TileSpgemmTimings*);
template TileMatrix<double> SpgemmContext::to_tile(const Csr<double>&);
template TileMatrix<float> SpgemmContext::to_tile(const Csr<float>&);

}  // namespace tsg
