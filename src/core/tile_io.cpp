#include "core/tile_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace tsg {

namespace {

constexpr std::uint32_t kMagic = 0x54475354;  // "TSGT"
constexpr std::uint32_t kVersion = 1;

template <class T>
constexpr std::uint32_t value_tag();
template <>
constexpr std::uint32_t value_tag<double>() {
  return 8;
}
template <>
constexpr std::uint32_t value_tag<float>() {
  return 4;
}

struct Header {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t value_bytes;
  std::uint32_t tile_dim;
  std::int64_t rows;
  std::int64_t cols;
  std::int64_t num_tiles;
  std::int64_t nnz;
};

template <class V>
void write_array(std::ostream& out, const V& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(typename V::value_type)));
}

template <class V>
void read_array(std::istream& in, V& v, std::size_t count) {
  v.resize(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(typename V::value_type)));
  if (!in) throw std::runtime_error("tile binary: truncated payload");
}

}  // namespace

template <class T>
void write_tile_binary(std::ostream& out, const TileMatrix<T>& m) {
  const Header h{kMagic,  kVersion,      value_tag<T>(), static_cast<std::uint32_t>(kTileDim),
                 m.rows,  m.cols,        m.num_tiles(),  m.nnz()};
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  write_array(out, m.tile_ptr);
  write_array(out, m.tile_col_idx);
  write_array(out, m.tile_nnz);
  write_array(out, m.row_ptr);
  write_array(out, m.row_idx);
  write_array(out, m.col_idx);
  write_array(out, m.val);
  write_array(out, m.mask);
  if (!out) throw std::runtime_error("tile binary: write failed");
}

template <class T>
TileMatrix<T> read_tile_binary(std::istream& in) {
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || h.magic != kMagic) throw std::runtime_error("tile binary: bad magic");
  if (h.version != kVersion) throw std::runtime_error("tile binary: unsupported version");
  if (h.value_bytes != value_tag<T>()) {
    throw std::runtime_error("tile binary: value type mismatch");
  }
  if (h.tile_dim != static_cast<std::uint32_t>(kTileDim)) {
    throw std::runtime_error("tile binary: tile dimension mismatch");
  }
  if (h.rows < 0 || h.cols < 0 || h.num_tiles < 0 || h.nnz < 0) {
    throw std::runtime_error("tile binary: negative sizes");
  }

  TileMatrix<T> m(static_cast<index_t>(h.rows), static_cast<index_t>(h.cols));
  const std::size_t tiles = static_cast<std::size_t>(h.num_tiles);
  const std::size_t nnz = static_cast<std::size_t>(h.nnz);
  read_array(in, m.tile_ptr, static_cast<std::size_t>(m.tile_rows) + 1);
  read_array(in, m.tile_col_idx, tiles);
  read_array(in, m.tile_nnz, tiles + 1);
  read_array(in, m.row_ptr, tiles * kTileDim);
  read_array(in, m.row_idx, nnz);
  read_array(in, m.col_idx, nnz);
  read_array(in, m.val, nnz);
  read_array(in, m.mask, tiles * kTileDim);

  const std::string err = m.validate();
  if (!err.empty()) throw std::runtime_error("tile binary: invalid payload: " + err);
  return m;
}

template <class T>
void write_tile_file(const std::string& path, const TileMatrix<T>& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_tile_binary(out, m);
}

template <class T>
TileMatrix<T> read_tile_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_tile_binary<T>(in);
}

template void write_tile_binary(std::ostream&, const TileMatrix<double>&);
template void write_tile_binary(std::ostream&, const TileMatrix<float>&);
template TileMatrix<double> read_tile_binary(std::istream&);
template TileMatrix<float> read_tile_binary(std::istream&);
template void write_tile_file(const std::string&, const TileMatrix<double>&);
template void write_tile_file(const std::string&, const TileMatrix<float>&);
template TileMatrix<double> read_tile_file(const std::string&);
template TileMatrix<float> read_tile_file(const std::string&);

}  // namespace tsg
