#include "core/step2.h"

#include <bit>
#include <cstring>

#include "common/parallel.h"
#include "common/status.h"
#include "core/simd_dispatch.h"
#include "core/spgemm_workspace.h"
#include "core/tile_kernels.h"
#include "obs/metrics.h"

namespace tsg {

// Below this many nonzeros, an A tile's per-nonzero gather loop is cheaper
// than walking its four packed mask words; at or above it, the mask walk
// amortises its fixed cost. Two rows' worth of nonzeros is the crossover on
// the synthetic suite (see docs/PERFORMANCE.md).
inline constexpr index_t kPackedGatherMaxNnz = 2 * kTileDim;

template <class T>
Step2Result step2_symbolic(const TileMatrix<T>& a, const TileMatrix<T>& b,
                           const TileLayoutCsc& b_csc, const TileStructure& structure,
                           const TileSpgemmOptions& options, SpgemmWorkspace<T>& ws,
                           const ExecutionPlan& plan) {
  const offset_t ntiles = structure.num_tiles();
  Step2Result out;
  out.tile_nnz.assign(static_cast<std::size_t>(ntiles) + 1, 0);
  out.row_ptr.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  out.mask.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  ws.ensure_threads(max_workers());
  // Filled with the uncached sentinel: tiles below the plan's cache bin (and
  // fused tiles) never touch their slot, and step 3 must read those as
  // "recompute", not as an empty cached pair list.
  if (plan.cache_pairs) {
    ws.pair_slot.assign(static_cast<std::size_t>(ntiles),
                        detail::TileSlot{detail::kTileSlotUncached, 0, 0});
  }
  const bool fuse = plan.fuse_light && plan.cache_pairs;
  if (fuse) ws.staged_slot.assign(static_cast<std::size_t>(ntiles), {});

  // Kernel dispatch, resolved once per call (never per tile): the SWAR
  // hybrid stays inline below — its per-pair loop is too hot for an
  // indirect call — so the table is only consulted at the AVX levels.
  const simd::Level lvl = effective_simd_level(options);
  const simd::SymbolicOps* vec =
      lvl >= simd::Level::kAvx2 ? &simd::symbolic_ops(lvl) : nullptr;
  const simd::NumericOps& nops = simd::numeric_ops(lvl);

  // Per-tile detail instruments, resolved once per call. The gate is read
  // once here: flipping it mid-run only affects the next call.
  const bool detail_metrics = obs::metrics_detail_enabled();
  static obs::Counter& m_pairs =
      obs::MetricsRegistry::instance().counter("spgemm.intersect.pairs");
  static obs::Counter& m_fused_dense =
      obs::MetricsRegistry::instance().counter("spgemm.accumulator.dense");
  static obs::Counter& m_fused_sparse =
      obs::MetricsRegistry::instance().counter("spgemm.accumulator.sparse");
  static obs::Histogram& m_tile_nnz = obs::MetricsRegistry::instance().histogram(
      "spgemm.tile_nnz", {0, 4, 16, 64, 128, 256});

  parallel_for(offset_t{0}, ntiles, [&](offset_t i) {
    // Cooperative cancellation, checked (with the watchdog heartbeat and
    // the deadline clock poll) every 64th tile so the prologue costs the
    // sub-µs packed kernel nothing 63 visits out of 64. A tripped token
    // skips the tile (bodies must not throw: throw-in-parallel); its
    // tile_nnz entry stays 0, and the pipeline layer converts the latched
    // reason before C is ever allocated.
    if ((i & 63) == 0) {
      plan.cancel.note_progress();
      if (plan.cancel.should_stop()) return;
    }
    // The plan may reorder the visit so heavy tiles are dispatched first;
    // output locations are still indexed by the tile id itself.
    const offset_t t = plan.order != nullptr ? plan.order[i] : i;
    const index_t tile_i = structure.tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tile_j = structure.tile_col_idx[static_cast<std::size_t>(t)];
    const int tid = worker_rank();
    typename SpgemmWorkspace<T>::ThreadSlot& slot = ws.slot(tid);

    // Set intersection of A's tile row `tile_i` with B's tile column
    // `tile_j` (Algorithm 2 lines 4-18).
    std::vector<MatchedPair>& pairs = slot.pairs;
    pairs.clear();
    const offset_t a_base = a.tile_ptr[tile_i];
    const index_t len_a = static_cast<index_t>(a.tile_ptr[tile_i + 1] - a_base);
    const offset_t b_base = b_csc.col_ptr[tile_j];
    const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
    intersect_tiles(a.tile_col_idx.data() + a_base, a_base, len_a,
                    b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                    options.intersect, pairs);

    // OR the selected row masks of B into the C masks (Algorithm 2 lines
    // 19-25, Figure 5): each nonzero of A_ik at local (r, c) contributes
    // row c of B_kj's mask to row r of C_ij's mask.
    index_t count = 0;
    const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
    std::uint8_t* row_ptr_out = out.row_ptr.data() + base;
    rowmask_t* mask_out = out.mask.data() + base;
    // The packed family derives into these stack locals and copies the 48
    // bytes out; the fused numeric path below then reads the still-hot
    // locals instead of reloading the tile's slice of the global symbolic
    // arrays (the step2→step3 locality fusion buys).
    alignas(32) rowmask_t mask_loc[kTileDim] = {};
    std::uint8_t rp_loc[kTileDim] = {};
    const rowmask_t* mask_src = mask_out;
    const std::uint8_t* rp_src = row_ptr_out;
    if (lvl != simd::Level::kScalar) {
      // Word-packed, hybrid per A-tile: dense-ish tiles drive the OR phase
      // from A's row masks (one 8-byte load covers four rows, empty
      // rows/words are skipped in registers, each occupied row accumulates
      // its result mask in a register before one packed OR); hyper-sparse
      // tiles keep the per-nonzero gather, whose loop count (nnz) is below
      // the mask walk's fixed cost. OR is commutative and both paths feed
      // the same merged words, so the dispatch is invisible in the output.
      // `cm` only ever sees constant indices (the wi loops have constexpr
      // bounds, so they unroll), which lets the compiler keep the four packed
      // words in registers across pairs; `gather` is the hyper-sparse tiles'
      // dynamically indexed target and is merged in once at derivation.
      std::uint64_t cm[kTileMaskWords] = {};
      alignas(8) rowmask_t gather[kTileDim] = {};
      for (const MatchedPair& p : pairs) {
        const rowmask_t* mask_b = b.tile_mask(p.tile_b);
        const index_t nnz_a = a.tile_nnz_of(p.tile_a);
        if (nnz_a <= kPackedGatherMaxNnz) {
          const offset_t nz_base = a.tile_nnz[p.tile_a];
          for (index_t k = 0; k < nnz_a; ++k) {
            const std::size_t g = static_cast<std::size_t>(nz_base + k);
            gather[a.row_idx[g]] |= mask_b[a.col_idx[g]];
          }
          continue;
        }
        if (vec != nullptr) {
          vec->mask_or(a.tile_mask(p.tile_a), mask_b, cm);
          continue;
        }
        const rowmask_t* mask_a = a.tile_mask(p.tile_a);
        for (int wi = 0; wi < kTileMaskWords; ++wi) {
          const std::uint64_t wa = pack_rowmask_word(mask_a + wi * kRowsPerMaskWord);
          if (wa == 0) continue;
          for (int j = 0; j < kRowsPerMaskWord; ++j) {
            std::uint64_t m = (wa >> (16 * j)) & 0xFFFFu;
            if (m == 0) continue;
            rowmask_t acc = 0;
            do {
              acc = static_cast<rowmask_t>(acc | mask_b[std::countr_zero(m)]);
              m &= m - 1;
            } while (m != 0);
            cm[wi] |= static_cast<std::uint64_t>(acc) << (16 * j);
          }
        }
      }
      for (int wi = 0; wi < kTileMaskWords; ++wi) {
        cm[wi] |= pack_rowmask_word(gather + wi * kRowsPerMaskWord);
      }
      // Derivation into the locals (empty tiles skip it — the global
      // arrays start zeroed). AVX levels use the table's vector kernel;
      // otherwise the inline SWAR form: per-word lane popcounts and lane
      // prefix sums give four row-pointer entries (and the running nnz
      // count) per word, replacing sixteen per-row popcount iterations.
      if ((cm[0] | cm[1] | cm[2] | cm[3]) != 0) {
        if (vec != nullptr) {
          count = vec->derive(cm, mask_loc, rp_loc);
        } else {
          for (int wi = 0; wi < kTileMaskWords; ++wi) {
            const std::uint64_t w = cm[wi];
            const std::uint64_t excl = lane_prefix_sums16(lane_popcounts16(w)) << 16;
            for (int j = 0; j < kRowsPerMaskWord; ++j) {
              mask_loc[wi * kRowsPerMaskWord + j] = unpack_rowmask(w, j);
              rp_loc[wi * kRowsPerMaskWord + j] =
                  static_cast<std::uint8_t>(count + ((excl >> (16 * j)) & 0xFFFFu));
            }
            count += static_cast<index_t>(std::popcount(w));
          }
        }
        std::memcpy(mask_out, mask_loc, sizeof(mask_loc));
        std::memcpy(row_ptr_out, rp_loc, sizeof(rp_loc));
        mask_src = mask_loc;
        rp_src = rp_loc;
      }
    } else {
      // Reference per-bit path (SymbolicKernel::kScalar), kept verbatim as
      // the A/B oracle and the regression bench's speedup denominator.
      rowmask_t mask_c[kTileDim] = {};
      for (const MatchedPair& p : pairs) {
        const rowmask_t* mask_b = b.tile_mask(p.tile_b);
        const offset_t nz_base = a.tile_nnz[p.tile_a];
        const index_t nnz_a = a.tile_nnz_of(p.tile_a);
        for (index_t k = 0; k < nnz_a; ++k) {
          const std::size_t g = static_cast<std::size_t>(nz_base + k);
          mask_c[a.row_idx[g]] |= mask_b[a.col_idx[g]];
        }
      }
      for (index_t r = 0; r < kTileDim; ++r) {
        row_ptr_out[r] = static_cast<std::uint8_t>(count);
        mask_out[r] = mask_c[r];
        count += popcount16(mask_c[r]);
      }
    }
    out.tile_nnz[static_cast<std::size_t>(t) + 1] = count;
    if (detail_metrics) {
      m_pairs.add(static_cast<std::int64_t>(pairs.size()));
      m_tile_nnz.observe(count);
    }

    if (fuse && plan.fuses_tile(t, count)) {
      // Fused numeric, selected per cost bin by the planner: the tile's
      // structure is fully known, its matched pairs are still hot, and the
      // packed family's symbolic result is still in the stack locals, so
      // accumulate the values now and stage them in this thread's buffer;
      // step 3 only copies them to their final home.
      T vals[kTileNnzMax];
      for (index_t k = 0; k < count; ++k) vals[k] = T{};
      if (detail::use_dense_accumulator(options, count)) {
        detail::accumulate_pairs_dense(a, b, pairs.data(), pairs.size(), mask_src, vals,
                                       nops);
        if (detail_metrics) m_fused_dense.inc();
      } else {
        detail::accumulate_pairs_sparse(a, b, pairs.data(), pairs.size(), mask_src,
                                        rp_src, vals);
        if (detail_metrics) m_fused_sparse.inc();
      }
      ws.staged_slot[static_cast<std::size_t>(t)] = {
          static_cast<std::uint32_t>(tid), static_cast<offset_t>(slot.staged.size()),
          static_cast<std::uint32_t>(count)};
      slot.staged.insert(slot.staged.end(), vals, vals + count);
    } else if (plan.caches_tile(t)) {
      // Record this tile's pairs in the owning thread's buffer so step 3
      // skips its re-intersection (see TileSpgemmOptions::cache_pairs).
      // Tiles below the plan's cache bin skip this on purpose: their slot
      // keeps the uncached sentinel and step 3 re-intersects them (the
      // paper's recompute policy, cheaper than staging for light tiles).
      ws.pair_slot[static_cast<std::size_t>(t)] = {
          static_cast<std::uint32_t>(tid), static_cast<offset_t>(slot.cache.size()),
          static_cast<std::uint32_t>(pairs.size())};
      slot.cache.insert(slot.cache.end(), pairs.begin(), pairs.end());
    }
  });

  // Offsets for allocating C (serial scan: numtiles is small relative to nnz).
  for (offset_t t = 0; t < ntiles; ++t) {
    out.tile_nnz[static_cast<std::size_t>(t) + 1] += out.tile_nnz[static_cast<std::size_t>(t)];
  }
  if (fuse) {
    for (const detail::TileSlot& s : ws.staged_slot) {
      if (s.count > 0) ++out.fused_tiles;
    }
  }
  return out;
}

template Step2Result step2_symbolic(const TileMatrix<double>&, const TileMatrix<double>&,
                                    const TileLayoutCsc&, const TileStructure&,
                                    const TileSpgemmOptions&, SpgemmWorkspace<double>&,
                                    const ExecutionPlan&);
template Step2Result step2_symbolic(const TileMatrix<float>&, const TileMatrix<float>&,
                                    const TileLayoutCsc&, const TileStructure&,
                                    const TileSpgemmOptions&, SpgemmWorkspace<float>&,
                                    const ExecutionPlan&);

}  // namespace tsg
