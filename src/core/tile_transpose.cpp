#include "core/tile_transpose.h"

#include "common/parallel.h"
#include "common/status.h"

namespace tsg {

template <class T>
TileMatrix<T> tile_transpose(const TileMatrix<T>& a) {
  TileMatrix<T> t(a.cols, a.rows);
  const offset_t ntiles = a.num_tiles();

  // The transposed tile grid is exactly A's column-major layout view.
  const TileLayoutCsc view = tile_layout_csc(a);
  t.tile_ptr.assign(view.col_ptr.begin(), view.col_ptr.end());
  t.tile_col_idx.resize(static_cast<std::size_t>(ntiles));
  t.tile_nnz.assign(static_cast<std::size_t>(ntiles) + 1, 0);
  for (offset_t k = 0; k < ntiles; ++k) {
    t.tile_col_idx[static_cast<std::size_t>(k)] = view.row_idx[static_cast<std::size_t>(k)];
    t.tile_nnz[static_cast<std::size_t>(k) + 1] =
        a.tile_nnz_of(view.tile_id[static_cast<std::size_t>(k)]);
  }
  for (offset_t k = 0; k < ntiles; ++k) {
    t.tile_nnz[static_cast<std::size_t>(k) + 1] += t.tile_nnz[static_cast<std::size_t>(k)];
  }

  const std::size_t nnz = static_cast<std::size_t>(t.nnz());
  t.row_ptr.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  t.mask.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  t.row_idx.resize(nnz);
  t.col_idx.resize(nnz);
  t.val.resize(nnz);

  // Transpose each tile locally: new masks are the column occupancy of the
  // source tile; entries are emitted in (new row = old col) order by
  // walking source columns via the mask. No CancelToken here: transpose is
  // a standalone utility with no workspace/plan in its signature, and the
  // per-tile work is a bounded bit shuffle (no accumulator growth).
  // tsg-lint: allow(cancel-poll)
  parallel_for(offset_t{0}, ntiles, [&](offset_t dst) {
    const offset_t src = view.tile_id[static_cast<std::size_t>(dst)];
    const rowmask_t* src_mask = a.tile_mask(src);
    const std::size_t dst_base = static_cast<std::size_t>(dst) * kTileDim;

    // New row r of the transposed tile = old column r: its mask has bit c
    // set iff old row c had bit r set.
    rowmask_t new_mask[kTileDim] = {};
    for (index_t r = 0; r < kTileDim; ++r) {
      rowmask_t m = src_mask[r];
      while (m != 0) {
        const index_t c = static_cast<index_t>(std::countr_zero(static_cast<unsigned>(m)));
        new_mask[c] = static_cast<rowmask_t>(new_mask[c] | bit_of(r));
        m = static_cast<rowmask_t>(m & (m - 1));
      }
    }
    index_t count = 0;
    for (index_t r = 0; r < kTileDim; ++r) {
      t.row_ptr[dst_base + static_cast<std::size_t>(r)] = static_cast<std::uint8_t>(count);
      t.mask[dst_base + static_cast<std::size_t>(r)] = new_mask[r];
      count += popcount16(new_mask[r]);
    }

    // Scatter values: position of old (r, c) in the transposed tile is
    // new_row_ptr[c] + rank of r within new_mask[c].
    const offset_t src_nz = a.tile_nnz[static_cast<std::size_t>(src)];
    const offset_t dst_nz = t.tile_nnz[static_cast<std::size_t>(dst)];
    const index_t tile_count = a.tile_nnz_of(src);
    for (index_t k = 0; k < tile_count; ++k) {
      const std::size_t g = static_cast<std::size_t>(src_nz + k);
      const index_t r = a.row_idx[g];
      const index_t c = a.col_idx[g];
      const index_t pos = t.row_ptr[dst_base + static_cast<std::size_t>(c)] +
                          mask_rank(new_mask[c], r);
      const std::size_t out = static_cast<std::size_t>(dst_nz + pos);
      t.row_idx[out] = static_cast<std::uint8_t>(c);
      t.col_idx[out] = static_cast<std::uint8_t>(r);
      t.val[out] = a.val[g];
    }
  });
  return t;
}

template TileMatrix<double> tile_transpose(const TileMatrix<double>&);
template TileMatrix<float> tile_transpose(const TileMatrix<float>&);

}  // namespace tsg
