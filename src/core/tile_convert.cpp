#include "core/tile_convert.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsg {

namespace {

/// Per-thread scratch for tile discovery within one tile row: a stamped
/// counter per tile column, so clearing between tile rows is O(1).
struct TileRowScratch {
  std::vector<offset_t> count;      // nonzeros per tile column
  std::vector<std::uint32_t> seen;  // stamp of the last tile row touching it
  std::vector<index_t> cols;        // distinct tile columns, unsorted
  std::uint32_t stamp = 0;

  void prepare(index_t tile_cols) {
    if (count.size() < static_cast<std::size_t>(tile_cols)) {
      count.assign(static_cast<std::size_t>(tile_cols), 0);
      seen.assign(static_cast<std::size_t>(tile_cols), 0);
      stamp = 0;
    }
    ++stamp;
    cols.clear();
  }

  void add(index_t tile_col) {
    if (seen[static_cast<std::size_t>(tile_col)] != stamp) {
      seen[static_cast<std::size_t>(tile_col)] = stamp;
      count[static_cast<std::size_t>(tile_col)] = 0;
      cols.push_back(tile_col);
    }
    count[static_cast<std::size_t>(tile_col)]++;
  }
};

thread_local TileRowScratch t_scratch;

}  // namespace

template <class T>
TileMatrix<T> csr_to_tile(const Csr<T>& a) {
  TSG_TRACE_SPAN("convert.csr_to_tile", a.nnz());
  static obs::Counter& calls = obs::MetricsRegistry::instance().counter("convert.csr_to_tile");
  calls.inc();
  TileMatrix<T> t(a.rows, a.cols);

  // Pass 1: per tile row, find the distinct non-empty tile columns and the
  // number of nonzeros in each.
  std::vector<std::vector<index_t>> row_tiles(static_cast<std::size_t>(t.tile_rows));
  std::vector<std::vector<offset_t>> row_tile_nnz(static_cast<std::size_t>(t.tile_rows));
  parallel_for(index_t{0}, t.tile_rows, [&](index_t tr) {
    TileRowScratch& scratch = t_scratch;
    scratch.prepare(t.tile_cols);
    const index_t row_end = std::min<index_t>((tr + 1) * kTileDim, a.rows);
    for (index_t i = tr * kTileDim; i < row_end; ++i) {
      for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        scratch.add(a.col_idx[k] / kTileDim);
      }
    }
    std::sort(scratch.cols.begin(), scratch.cols.end());
    row_tiles[static_cast<std::size_t>(tr)] = scratch.cols;
    auto& nnzs = row_tile_nnz[static_cast<std::size_t>(tr)];
    nnzs.reserve(scratch.cols.size());
    for (index_t tc : scratch.cols) nnzs.push_back(scratch.count[static_cast<std::size_t>(tc)]);
  });

  // Assemble the high-level structure.
  for (index_t tr = 0; tr < t.tile_rows; ++tr) {
    t.tile_ptr[tr + 1] =
        t.tile_ptr[tr] + static_cast<offset_t>(row_tiles[static_cast<std::size_t>(tr)].size());
  }
  const offset_t ntiles = t.tile_ptr[t.tile_rows];
  t.tile_col_idx.resize(static_cast<std::size_t>(ntiles));
  t.tile_nnz.assign(static_cast<std::size_t>(ntiles) + 1, 0);
  parallel_for(index_t{0}, t.tile_rows, [&](index_t tr) {
    offset_t dst = t.tile_ptr[tr];
    const auto& cols = row_tiles[static_cast<std::size_t>(tr)];
    const auto& nnzs = row_tile_nnz[static_cast<std::size_t>(tr)];
    for (std::size_t k = 0; k < cols.size(); ++k, ++dst) {
      t.tile_col_idx[static_cast<std::size_t>(dst)] = cols[k];
      t.tile_nnz[static_cast<std::size_t>(dst) + 1] = nnzs[k];
    }
  });
  // Counts sit in slots 1..ntiles; an inclusive running sum over those slots
  // turns tile_nnz into the offset array (tile_nnz[0] stays 0).
  for (offset_t i = 1; i <= ntiles; ++i) {
    t.tile_nnz[static_cast<std::size_t>(i)] += t.tile_nnz[static_cast<std::size_t>(i - 1)];
  }

  const std::size_t total_nnz = static_cast<std::size_t>(t.nnz());
  t.row_ptr.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  t.mask.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  t.row_idx.resize(total_nnz);
  t.col_idx.resize(total_nnz);
  t.val.resize(total_nnz);

  // Pass 2: scatter nonzeros into their tiles. Within a tile row, entries
  // arrive row-major with sorted columns, which is exactly the per-tile CSR
  // order, so a per-tile cursor suffices.
  parallel_for(index_t{0}, t.tile_rows, [&](index_t tr) {
    const offset_t first_tile = t.tile_ptr[tr];
    const offset_t last_tile = t.tile_ptr[tr + 1];
    const index_t tiles_here = static_cast<index_t>(last_tile - first_tile);
    if (tiles_here == 0) return;

    // Local cursor per tile (offset within the tile's nonzero range).
    std::vector<index_t> cursor(static_cast<std::size_t>(tiles_here), 0);
    const index_t row_end = std::min<index_t>((tr + 1) * kTileDim, a.rows);
    for (index_t i = tr * kTileDim; i < row_end; ++i) {
      const index_t local_row = i - tr * kTileDim;
      // Record the row start offset in every tile of this tile row.
      for (index_t s = 0; s < tiles_here; ++s) {
        t.row_ptr[static_cast<std::size_t>(first_tile + s) * kTileDim +
                  static_cast<std::size_t>(local_row)] =
            static_cast<std::uint8_t>(cursor[static_cast<std::size_t>(s)]);
      }
      offset_t slot = first_tile;  // tiles and columns are both sorted
      for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const index_t col = a.col_idx[k];
        const index_t tc = col / kTileDim;
        while (t.tile_col_idx[static_cast<std::size_t>(slot)] != tc) ++slot;
        const index_t s = static_cast<index_t>(slot - first_tile);
        const index_t local_col = col - tc * kTileDim;
        const std::size_t dst = static_cast<std::size_t>(
            t.tile_nnz[static_cast<std::size_t>(slot)] + cursor[static_cast<std::size_t>(s)]);
        t.row_idx[dst] = static_cast<std::uint8_t>(local_row);
        t.col_idx[dst] = static_cast<std::uint8_t>(local_col);
        t.val[dst] = a.val[k];
        t.mask[static_cast<std::size_t>(slot) * kTileDim +
               static_cast<std::size_t>(local_row)] |= bit_of(local_col);
        cursor[static_cast<std::size_t>(s)]++;
      }
      // A row can revisit earlier tiles only if columns were unsorted.
    }
    // For a partial last tile row, the local rows beyond the matrix edge
    // must point at the end of each tile so row ranges come out empty.
    for (index_t local_row = row_end - tr * kTileDim; local_row < kTileDim; ++local_row) {
      for (index_t s = 0; s < tiles_here; ++s) {
        t.row_ptr[static_cast<std::size_t>(first_tile + s) * kTileDim +
                  static_cast<std::size_t>(local_row)] =
            static_cast<std::uint8_t>(cursor[static_cast<std::size_t>(s)]);
      }
    }
  });

  return t;
}

template <class T>
Csr<T> tile_to_csr(const TileMatrix<T>& t) {
  TSG_TRACE_SPAN("convert.tile_to_csr", t.nnz());
  static obs::Counter& calls = obs::MetricsRegistry::instance().counter("convert.tile_to_csr");
  calls.inc();
  Csr<T> a(t.rows, t.cols);
  const std::size_t n = static_cast<std::size_t>(t.nnz());
  a.col_idx.resize(n);
  a.val.resize(n);

  // Count nonzeros per original row from the masks.
  for (index_t tr = 0; tr < t.tile_rows; ++tr) {
    for (offset_t tile = t.tile_ptr[tr]; tile < t.tile_ptr[tr + 1]; ++tile) {
      const rowmask_t* m = t.tile_mask(tile);
      for (index_t r = 0; r < kTileDim; ++r) {
        const index_t row = tr * kTileDim + r;
        if (row < t.rows) a.row_ptr[row + 1] += popcount16(m[r]);
      }
    }
  }
  for (index_t i = 0; i < t.rows; ++i) a.row_ptr[i + 1] += a.row_ptr[i];

  // Scatter: tiles within a tile row are sorted by column, so appending in
  // tile order keeps each CSR row sorted.
  tracked_vector<offset_t> cursor(a.row_ptr.begin(), a.row_ptr.end() - 1);
  parallel_for(index_t{0}, t.tile_rows, [&](index_t tr) {
    for (offset_t tile = t.tile_ptr[tr]; tile < t.tile_ptr[tr + 1]; ++tile) {
      const index_t col_base = t.tile_col_idx[tile] * kTileDim;
      for (index_t r = 0; r < kTileDim; ++r) {
        const index_t row = tr * kTileDim + r;
        if (row >= t.rows) break;
        index_t lo, hi;
        t.tile_row_range(tile, r, lo, hi);
        for (index_t k = lo; k < hi; ++k) {
          const std::size_t src = static_cast<std::size_t>(t.tile_nnz[tile] + k);
          const offset_t dst = cursor[row]++;
          a.col_idx[dst] = col_base + t.col_idx[src];
          a.val[dst] = t.val[src];
        }
      }
    }
  });
  return a;
}

template TileMatrix<double> csr_to_tile(const Csr<double>&);
template TileMatrix<float> csr_to_tile(const Csr<float>&);
template Csr<double> tile_to_csr(const TileMatrix<double>&);
template Csr<float> tile_to_csr(const TileMatrix<float>&);

}  // namespace tsg
