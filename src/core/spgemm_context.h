// SpgemmContext — the reusable TileSpGEMM execution engine.
//
// One context owns everything a multiply needs besides its operands and
// output: pooled workspaces (per value type), the cost-binned tile
// scheduler, and the configuration that used to be scattered across
// TileSpgemmOptions defaults and ad-hoc environment parsing. Creating a
// context is cheap; *reusing* one across the multiplies of an iterated
// workload (AMG Galerkin chains, Markov clustering, GNN propagation) is
// the point — after the first call the pooled buffers have their
// steady-state capacity and subsequent iterations allocate little beyond
// the output matrix itself.
//
// Lifecycle:
//
//     Config::from_env() ── builder tweaks ──> SpgemmContext ctx(cfg)
//           ctx.run(a, b)        tile in/out, timings + bin counters
//           ctx.run_csr(a, b)    CSR in/out, conversion time in convert_ms
//           ctx.run_aat(a)       A * A^T, transpose formed tile-natively
//           ctx.run_masked(...)  C = (A*B) .* structure(M)
//           ctx.workspace_bytes() / ctx.release_workspaces()
//
// Every run* entry point has a try_run* twin returning Expected<...>:
// anticipated failures (bad operands, the modeled device budget with
// degradation disabled, a tracked allocation failing — for real or via the
// MemoryTracker fault plan) come back as a tsg::Status instead of an
// exception, and the context remains reusable for the next call. The
// classic run* names wrap the try_ variants and throw tsg::Error carrying
// the same Status.
//
// Budget enforcement (the paper's Fig. 9 robustness claim): after step 1
// the context bounds the per-call device-side footprint — step-2/3 output
// staging plus the pooled scratch — against the modeled device budget. If
// it does not fit, the multiply degrades gracefully: C's tile rows are
// split into chunks that each fit, the pipeline runs chunk by chunk
// through the same pooled workspace, and the chunks are stitched into the
// final matrix. Results are bit-identical to the single-shot run;
// TileSpgemmTimings::chunks / budget_limited report what happened.
//
// The free functions tile_spgemm() / spgemm_tile() / tile_spgemm_aat() /
// tile_spgemm_masked() remain as thin wrappers that create a transient
// context per call.
//
// Thread safety: a context is a single-caller object (like a cuSPARSE or
// KokkosKernels handle). Concurrent run() calls on one context race on the
// pooled workspace; use one context per calling thread instead.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/spgemm_workspace.h"
#include "core/tile_spgemm.h"

namespace tsg {

class SpgemmContext {
 public:
  /// All knobs of the engine in one documented place. Builder-style
  /// setters return *this so configs compose inline:
  ///
  ///     SpgemmContext ctx(SpgemmContext::Config::from_env()
  ///                           .with_pair_cache(true)
  ///                           .with_fused_path(true));
  struct Config {
    /// Kernel options (intersection method, accumulator policy, tnnz,
    /// pair caching) — defaults follow the paper.
    TileSpgemmOptions options{};
    /// Worker threads for this context's runs; 0 keeps the library-wide
    /// setting (set_num_threads / OMP_NUM_THREADS).
    int threads = 0;
    /// Cost-bin the C tiles by estimated intersection work and visit heavy
    /// bins first. Pure scheduling: results are bit-identical either way.
    bool cost_binning = true;
    /// Fuse step 3 into step 2 for tiles of at most fuse_threshold
    /// nonzeros. Requires (and with_fused_path() enables) the pair cache;
    /// heavy tiles still take the staged path with cached pairs.
    bool fuse_light_tiles = false;
    /// Largest tile (by nnz) the fused path handles in-visit — the
    /// fallback gate when cost binning is off. With binning on, whole
    /// bins fuse instead (fuse_max_bin below).
    index_t fuse_threshold = kAccumulatorThreshold;
    /// Highest cost bin the fused step-2→3 path handles when cost binning
    /// is on: the planner fuses bins 0..fuse_max_bin wholesale (decided by
    /// scheduled intersection cost, known before the symbolic result), and
    /// heavier bins stage pairs for step 3. -1 fuses nothing, kCostBins-1
    /// fuses everything. Results are bit-identical at any setting.
    int fuse_max_bin = 1;
    /// Lowest cost bin whose tiles record matched pairs when the pair cache
    /// is on and cost binning is active. Bin 0 tiles (intersection lists of
    /// <= 8 entries) re-intersect for less than the cost of staging and
    /// reloading their pairs, so the default keeps the paper's recompute
    /// policy for them and caches bins >= 1. 0 caches every bin; >= kCostBins
    /// caches none. Without cost binning the bin is unknown and every tile
    /// caches (the pre-bin behaviour). Results are bit-identical throughout.
    int pair_cache_min_bin = 1;
    /// Modeled device-memory budget in MB; 0 keeps TSG_DEVICE_MEM_MB (or
    /// its 420 MB default). Published process-wide at context creation and
    /// *enforced* by every run: a call whose estimated footprint exceeds it
    /// either degrades to chunked execution (degrade_on_budget) or fails
    /// with StatusCode::kBudgetExceeded.
    std::size_t device_mem_mb = 0;
    /// When the estimated footprint exceeds the budget: true (default)
    /// splits the run into tile-row chunks that each fit and stitches a
    /// bit-identical result; false refuses with kBudgetExceeded.
    bool degrade_on_budget = true;
    /// Operand checking at the API boundary. kOff trusts the caller
    /// (dimension compatibility is still verified), kCheap (default) does
    /// O(rows + tiles) structural sanity, kFull walks every invariant and
    /// applies nan_policy.
    ValidationLevel validation = ValidationLevel::kCheap;
    /// Under kFull validation: reject operands containing NaN/Inf values,
    /// or let them propagate with IEEE semantics (default).
    NanPolicy nan_policy = NanPolicy::kAllow;
    /// Turn on the execution-trace runtime gate (obs/trace.h) at context
    /// creation. The gate is process-wide: true enables it, false leaves
    /// it as-is (so a CLI --trace is not undone by a default config).
    bool tracing = false;
    /// Turn on the per-tile detail metrics gate (obs/metrics.h) at context
    /// creation; also makes each run attach its registry delta to
    /// TileSpgemmTimings::metrics. Same one-way semantics as `tracing`.
    bool metrics_detail = false;
    /// Cooperative cancellation/deadline token observed by every run of
    /// this context (chunk boundaries, step 1/2/3 tile boundaries). The
    /// default token is inert. For per-call tokens on a reused context
    /// (the service's warm workers), use SpgemmContext::set_cancel_token.
    CancelToken cancel_token;

    Config& with_options(const TileSpgemmOptions& o) { options = o; return *this; }
    Config& with_intersect(IntersectMethod m) { options.intersect = m; return *this; }
    Config& with_accumulator(AccumulatorPolicy p) { options.accumulator = p; return *this; }
    Config& with_tnnz(index_t t) { options.tnnz = t; return *this; }
    Config& with_pair_cache(bool on) { options.cache_pairs = on; return *this; }
    Config& with_pair_cache_min_bin(int bin) { pair_cache_min_bin = bin; return *this; }
    Config& with_symbolic(SymbolicKernel k) { options.symbolic = k; return *this; }
    Config& with_threads(int n) { threads = n; return *this; }
    Config& with_cost_binning(bool on) { cost_binning = on; return *this; }
    Config& with_fused_path(bool on) {
      fuse_light_tiles = on;
      if (on) options.cache_pairs = true;
      return *this;
    }
    Config& with_fuse_threshold(index_t t) { fuse_threshold = t; return *this; }
    Config& with_fuse_max_bin(int bin) { fuse_max_bin = bin; return *this; }
    /// Force the step-2/3 kernel family's vector-ISA level (default: best
    /// available, or TSG_SIMD). Levels above what the build/host supports
    /// clamp down at run time; every level is bit-identical.
    Config& with_simd_level(simd::Level level) { options.simd = level; return *this; }
    Config& with_device_mem_mb(std::size_t mb) { device_mem_mb = mb; return *this; }
    Config& with_degradation(bool on) { degrade_on_budget = on; return *this; }
    Config& with_validation(ValidationLevel level) { validation = level; return *this; }
    Config& with_nan_policy(NanPolicy policy) { nan_policy = policy; return *this; }
    Config& with_tracing(bool on) { tracing = on; return *this; }
    Config& with_metrics(bool on) { metrics_detail = on; return *this; }
    Config& with_cancel_token(CancelToken t) { cancel_token = std::move(t); return *this; }

    /// The one place the environment is read: TSG_DEVICE_MEM_MB (budget),
    /// TSG_NUM_THREADS (worker threads), TSG_TRACE (execution tracing),
    /// TSG_METRICS (per-tile detail metrics), and TSG_SIMD (kernel
    /// dispatch level — also read once by simd::active_level(), the
    /// documented exception, so kernel forcing reaches free-function entry
    /// points that never see a Config). CLI, benches, and tests
    /// build on this instead of parsing getenv themselves. Any other
    /// TSG_-prefixed variable in the environment draws a one-time stderr
    /// warning (typos must not be silently ignored); the full knob table —
    /// including the service-layer TSG_SERVICE_WORKERS /
    /// TSG_SERVICE_QUEUE_CAP read by SpgemmService::Config::from_env — is
    /// in docs/ARCHITECTURE.md.
    static Config from_env();
  };

  SpgemmContext() : SpgemmContext(Config{}) {}
  explicit SpgemmContext(const Config& config);

  const Config& config() const { return cfg_; }

  /// Install the cancellation/deadline token the *next* runs observe —
  /// the per-request route for callers that reuse one warm context across
  /// requests (SpgemmService workers). Passing a default token disarms
  /// cancellation. A cancelled or expired run returns kCancelled /
  /// kDeadlineExceeded through try_run* with all workspace accounting
  /// balanced, and the context stays reusable.
  void set_cancel_token(CancelToken t) { cancel_ = std::move(t); }
  const CancelToken& cancel_token() const { return cancel_; }

  /// C = A * B on tile-format operands. Timings carry the per-step
  /// breakdown plus bin/fusion counters, the pooled-workspace footprint,
  /// and the budget outcome (chunks / budget_limited). Anticipated
  /// failures come back as a Status; the context stays reusable.
  /// Throwing twin: run().
  template <class T>
  Expected<TileSpgemmResult<T>> try_run(const TileMatrix<T>& a, const TileMatrix<T>& b);

  /// Throwing twin of try_run(): identical parameters, raises tsg::Error
  /// carrying the same Status.
  template <class T>
  TileSpgemmResult<T> run(const TileMatrix<T>& a, const TileMatrix<T>& b);

  /// C = A * A^T, transpose formed tile-natively (booked as alloc_ms).
  /// Throwing twin: run_aat().
  template <class T>
  Expected<TileSpgemmResult<T>> try_run_aat(const TileMatrix<T>& a);
  /// Throwing twin of try_run_aat(): identical parameters.
  template <class T>
  TileSpgemmResult<T> run_aat(const TileMatrix<T>& a);

  /// CSR in/out convenience: converts (aliased operands convert once),
  /// multiplies, converts back. Conversion time lands in
  /// timings->convert_ms — the Fig. 12 numerator — not in core_ms().
  /// On failure `*timings` is untouched. Throwing twin: run_csr().
  template <class T>
  Expected<Csr<T>> try_run_csr(const Csr<T>& a, const Csr<T>& b,
                               TileSpgemmTimings* timings = nullptr);
  /// Throwing twin of try_run_csr(): identical parameters.
  template <class T>
  Csr<T> run_csr(const Csr<T>& a, const Csr<T>& b, TileSpgemmTimings* timings = nullptr);

  /// C = (A*B) .* structure(mask), Values from the product; entries outside
  /// the mask's pattern are never computed. Defined in masked_spgemm.cpp.
  /// Throwing twin: run_masked().
  template <class T>
  Expected<TileMatrix<T>> try_run_masked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                         const TileMatrix<T>& mask);
  /// Throwing twin of try_run_masked(): identical parameters.
  template <class T>
  TileMatrix<T> run_masked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                           const TileMatrix<T>& mask);

  /// Convert through the context so the conversion cost is attributed to
  /// the next run()'s convert_ms instead of being re-timed by callers.
  template <class T>
  TileMatrix<T> to_tile(const Csr<T>& m);

  /// Pooled scratch bytes currently held (both value types). Stops growing
  /// once the workload's steady-state shapes have been seen.
  std::size_t workspace_bytes() const { return ws_d_.bytes() + ws_f_.bytes(); }

  /// Drop all pooled buffers (e.g. between workloads of very different
  /// scale). The next run() re-grows them.
  void release_workspaces() {
    ws_d_.release();
    ws_f_.release();
  }

  /// Direct access to the pooled workspace of a value type — for kernel
  /// extensions (semiring header) that drive steps 1-3 themselves.
  template <class T>
  SpgemmWorkspace<T>& workspace();

 private:
  /// Cost-binned schedule over the tiles of `structure` (the full step-1
  /// structure, or one chunk of it under budget degradation). `cache_pairs`
  /// and `fuse_light` are passed in rather than read from cfg_ because the
  /// budget planner may have dropped them for this run (recompute fallback).
  template <class T>
  ExecutionPlan make_plan(const TileMatrix<T>& a, const TileLayoutCsc& b_csc,
                          const TileStructure& structure, SpgemmWorkspace<T>& ws,
                          bool cache_pairs, bool fuse_light, TileSpgemmTimings& tm);

  /// The pipeline body shared by single-shot and chunked execution; throws
  /// (bad_alloc, Error) rather than returning a Status — try_run converts.
  template <class T>
  TileSpgemmResult<T> run_impl(const TileMatrix<T>& a, const TileMatrix<T>& b);

  /// Chunked degradation: executes steps 2-3 tile-row range by range and
  /// stitches the ranges into `result.c` (bit-identical to single-shot).
  template <class T>
  void run_chunked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                   const std::vector<std::pair<index_t, index_t>>& chunks,
                   SpgemmWorkspace<T>& ws, bool cache_pairs, bool fuse_light,
                   TileSpgemmResult<T>& result);

  /// Masked pipeline body (masked_spgemm.cpp); throws, try_run_masked converts.
  template <class T>
  TileMatrix<T> run_masked_impl(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                const TileMatrix<T>& mask);

  /// Raise kCancelled/kDeadlineExceeded when the active token tripped —
  /// the serial pipeline layer's check (parallel bodies only skip).
  void check_cancelled() const {
    if (cancel_.should_stop()) throw Error(cancel_.to_status());
  }

  Config cfg_;
  CancelToken cancel_;
  SpgemmWorkspace<double> ws_d_;
  SpgemmWorkspace<float> ws_f_;
  double pending_convert_ms_ = 0.0;
};

template <>
inline SpgemmWorkspace<double>& SpgemmContext::workspace<double>() {
  return ws_d_;
}
template <>
inline SpgemmWorkspace<float>& SpgemmContext::workspace<float>() {
  return ws_f_;
}

extern template Expected<TileSpgemmResult<double>> SpgemmContext::try_run(
    const TileMatrix<double>&, const TileMatrix<double>&);
extern template Expected<TileSpgemmResult<float>> SpgemmContext::try_run(
    const TileMatrix<float>&, const TileMatrix<float>&);
extern template TileSpgemmResult<double> SpgemmContext::run(const TileMatrix<double>&,
                                                            const TileMatrix<double>&);
extern template TileSpgemmResult<float> SpgemmContext::run(const TileMatrix<float>&,
                                                           const TileMatrix<float>&);
extern template Expected<TileSpgemmResult<double>> SpgemmContext::try_run_aat(
    const TileMatrix<double>&);
extern template Expected<TileSpgemmResult<float>> SpgemmContext::try_run_aat(
    const TileMatrix<float>&);
extern template TileSpgemmResult<double> SpgemmContext::run_aat(const TileMatrix<double>&);
extern template TileSpgemmResult<float> SpgemmContext::run_aat(const TileMatrix<float>&);
extern template Expected<Csr<double>> SpgemmContext::try_run_csr(const Csr<double>&,
                                                                 const Csr<double>&,
                                                                 TileSpgemmTimings*);
extern template Expected<Csr<float>> SpgemmContext::try_run_csr(const Csr<float>&,
                                                                const Csr<float>&,
                                                                TileSpgemmTimings*);
extern template Csr<double> SpgemmContext::run_csr(const Csr<double>&, const Csr<double>&,
                                                   TileSpgemmTimings*);
extern template Csr<float> SpgemmContext::run_csr(const Csr<float>&, const Csr<float>&,
                                                  TileSpgemmTimings*);
extern template Expected<TileMatrix<double>> SpgemmContext::try_run_masked(
    const TileMatrix<double>&, const TileMatrix<double>&, const TileMatrix<double>&);
extern template Expected<TileMatrix<float>> SpgemmContext::try_run_masked(
    const TileMatrix<float>&, const TileMatrix<float>&, const TileMatrix<float>&);
extern template TileMatrix<double> SpgemmContext::run_masked(const TileMatrix<double>&,
                                                             const TileMatrix<double>&,
                                                             const TileMatrix<double>&);
extern template TileMatrix<float> SpgemmContext::run_masked(const TileMatrix<float>&,
                                                            const TileMatrix<float>&,
                                                            const TileMatrix<float>&);
extern template TileMatrix<double> SpgemmContext::to_tile(const Csr<double>&);
extern template TileMatrix<float> SpgemmContext::to_tile(const Csr<float>&);

}  // namespace tsg
