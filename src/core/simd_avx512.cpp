// AVX-512 (F + BW + VL) kernels for the step-2/3 dispatch family. The
// mask registers and compress instructions remove the AVX2 kernels' two
// workarounds: compare-and-blend mask selection becomes k-register ops,
// and the compress/materialize emulations become single vpcompress /
// masked-store instructions with *exact* store widths (safe to target
// shared output directly). Reached only through runtime CPUID dispatch.
#include "core/simd_dispatch.h"
#include "core/simd_x86.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX2__) && defined(__BMI2__)

#include <immintrin.h>

#include <bit>

namespace tsg::simd {
namespace {

void mask_or_avx512(const rowmask_t* mask_a, const rowmask_t* mask_b,
                    std::uint64_t cm[kTileMaskWords]) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask_a));
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<__m256i*>(cm));
  std::uint32_t uni = x86::union_rowmask16(va);
  while (uni != 0) {
    const int c = std::countr_zero(uni);
    uni &= uni - 1;
    const __mmask16 sel =
        _mm256_test_epi16_mask(va, _mm256_set1_epi16(static_cast<short>(1u << c)));
    // No 16-bit-masked OR exists; OR unconditionally and blend the result
    // back into the selected lanes (vmovdqu16 with a k-mask, BW + VL).
    acc = _mm256_mask_mov_epi16(
        acc, sel, _mm256_or_si256(acc, _mm256_set1_epi16(static_cast<short>(mask_b[c]))));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(cm), acc);
}

index_t derive_avx512(const std::uint64_t cm[kTileMaskWords], rowmask_t* mask_out,
                      std::uint8_t* row_ptr_out) {
  return x86::derive_epi16(cm, mask_out, row_ptr_out);
}

void compress_avx512_d(const double* acc, const rowmask_t* mask_c, double* out) {
  index_t o = 0;
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    const std::uint64_t w = pack_rowmask_word(mask_c + wi * kRowsPerMaskWord);
    if (w == 0) continue;
    const double* acc_w = acc + static_cast<std::size_t>(wi) * (kRowsPerMaskWord * kTileDim);
    for (int k = 0; k < 8; ++k) {
      const auto m8 = static_cast<__mmask8>((w >> (8 * k)) & 0xFFu);
      if (m8 == 0) continue;
      _mm512_mask_compressstoreu_pd(out + o, m8, _mm512_loadu_pd(acc_w + 8 * k));
      o += static_cast<index_t>(std::popcount(static_cast<unsigned>(m8)));
    }
  }
}

void compress_avx512_f(const float* acc, const rowmask_t* mask_c, float* out) {
  index_t o = 0;
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    const std::uint64_t w = pack_rowmask_word(mask_c + wi * kRowsPerMaskWord);
    if (w == 0) continue;
    const float* acc_w = acc + static_cast<std::size_t>(wi) * (kRowsPerMaskWord * kTileDim);
    for (int k = 0; k < 4; ++k) {
      const auto m16 = static_cast<__mmask16>((w >> (16 * k)) & 0xFFFFu);
      if (m16 == 0) continue;
      _mm512_mask_compressstoreu_ps(out + o, m16, _mm512_loadu_ps(acc_w + 16 * k));
      o += static_cast<index_t>(std::popcount(static_cast<unsigned>(m16)));
    }
  }
}

void materialize_avx512(const rowmask_t* mask_c, std::uint8_t* row_idx,
                        std::uint8_t* col_idx) {
  const __m512i identity =
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  index_t n = 0;
  for (index_t r = 0; r < kTileDim; ++r) {
    const auto m = static_cast<__mmask16>(mask_c[r]);
    if (m == 0) continue;
    const index_t cnt = popcount16(mask_c[r]);
    // maskz variant: the plain cvt seeds its unused lanes from
    // _mm_undefined_si128(), which gcc's -Wmaybe-uninitialized flags.
    const __m128i cols =
        _mm512_maskz_cvtepi32_epi8(0xFFFF, _mm512_maskz_compress_epi32(m, identity));
    // Exact masked stores straight into the shared output arrays — no
    // staging copy needed at this level.
    const auto width = static_cast<__mmask16>((1u << cnt) - 1u);
    _mm_mask_storeu_epi8(col_idx + n, width, cols);
    _mm_mask_storeu_epi8(row_idx + n, width, _mm_set1_epi8(static_cast<char>(r)));
    n += cnt;
  }
}

constexpr SymbolicOps kSym = {&mask_or_avx512, &derive_avx512};
constexpr NumericOps kNum = {&compress_avx512_d, &compress_avx512_f, &materialize_avx512};

}  // namespace

namespace detail {
LevelKernels avx512_kernels() { return {&kSym, &kNum}; }
}  // namespace detail

}  // namespace tsg::simd

#else  // stub body: toolchain could not target AVX-512

namespace tsg::simd::detail {
LevelKernels avx512_kernels() { return {nullptr, nullptr}; }
}  // namespace tsg::simd::detail

#endif
