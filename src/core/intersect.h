// Set intersection of tile index lists (Algorithm 2, lines 6-18).
//
// Matching the non-empty tiles of a tile row of A against a tile column of
// B is a sorted-set intersection. The paper searches each element of the
// shorter list in the longer one with a binary search whose left bound is
// narrowed after every hit (both lists are sorted); a two-pointer merge is
// provided for the ablation comparison.
#pragma once

#include <type_traits>
#include <vector>

#include "common/config.h"
#include "core/options.h"

namespace tsg {

/// One matched (A_ik, B_kj) tile pair, by storage id.
struct MatchedPair {
  offset_t tile_a;
  offset_t tile_b;
};

// Pairs are bulk-copied between per-thread caches and the step-3 consumers
// (vector::insert over raw ranges); the type must stay a plain value.
static_assert(std::is_trivially_copyable_v<MatchedPair> &&
                  std::is_standard_layout_v<MatchedPair>,
              "MatchedPair is memcpy'd through per-thread pair caches");

namespace detail {

/// Lower-bound binary search in arr[lo, hi) for `key`; returns hi if absent.
inline index_t lower_bound_idx(const index_t* arr, index_t lo, index_t hi, index_t key) {
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (arr[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace detail

/// Intersect the sorted tile-column list of A's tile row i
/// (a_cols[0..len_a), whose s-th entry is tile id a_base+s) with the sorted
/// tile-row list of B's tile column j (b_rows[0..len_b), whose s-th entry is
/// tile id b_ids[s]). Appends matched pairs to `out` in increasing k order.
inline void intersect_tiles(const index_t* a_cols, offset_t a_base, index_t len_a,
                            const index_t* b_rows, const offset_t* b_ids, index_t len_b,
                            IntersectMethod method, std::vector<MatchedPair>& out) {
  if (len_a == 0 || len_b == 0) return;

  if (method == IntersectMethod::kMerge) {
    index_t ia = 0, ib = 0;
    while (ia < len_a && ib < len_b) {
      if (a_cols[ia] == b_rows[ib]) {
        out.push_back({a_base + ia, b_ids[ib]});
        ++ia;
        ++ib;
      } else if (a_cols[ia] < b_rows[ib]) {
        ++ia;
      } else {
        ++ib;
      }
    }
    return;
  }

  // Binary search: probe each element of the shorter list into the longer
  // one. After a hit the left search bound moves past the match (both lists
  // are sorted), shrinking every subsequent search range.
  if (len_a <= len_b) {
    index_t left = 0;
    for (index_t s = 0; s < len_a; ++s) {
      const index_t pos = detail::lower_bound_idx(b_rows, left, len_b, a_cols[s]);
      if (pos < len_b && b_rows[pos] == a_cols[s]) {
        out.push_back({a_base + s, b_ids[pos]});
        left = pos + 1;
      } else {
        left = pos;
      }
      if (left >= len_b) break;
    }
  } else {
    index_t left = 0;
    for (index_t s = 0; s < len_b; ++s) {
      const index_t pos = detail::lower_bound_idx(a_cols, left, len_a, b_rows[s]);
      if (pos < len_a && a_cols[pos] == b_rows[s]) {
        out.push_back({a_base + pos, b_ids[s]});
        left = pos + 1;
      } else {
        left = pos;
      }
      if (left >= len_a) break;
    }
  }
}

}  // namespace tsg
