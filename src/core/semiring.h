// Semirings for algebraic graph computation.
//
// The paper positions SpGEMM as a key kernel of the GraphBLAS (Section 1);
// GraphBLAS generalises the multiply from (+, *) to an arbitrary semiring
// (reduce, combine). The tiled algorithm is agnostic to the semiring: its
// symbolic phases (steps 1-2) only look at structure, and step 3 just
// needs `reduce` in place of += and `combine` in place of *.
//
// A semiring here is a stateless policy type:
//   static T identity();            // the reduce identity ("zero")
//   static T combine(T a, T b);     // the "multiply"
//   static T reduce(T a, T b);      // the "add" (associative, commutative)
#pragma once

#include <algorithm>
#include <limits>

namespace tsg {

/// The arithmetic semiring (+, *): ordinary SpGEMM.
template <class T>
struct PlusTimes {
  static T identity() { return T{}; }
  static T combine(T a, T b) { return a * b; }
  static T reduce(T a, T b) { return a + b; }
};

/// The tropical (min, +) semiring: path lengths. C[i][j] = min over k of
/// A[i][k] + B[k][j] — one relaxation step of all-pairs shortest paths.
template <class T>
struct MinPlus {
  static T identity() { return std::numeric_limits<T>::infinity(); }
  static T combine(T a, T b) { return a + b; }
  static T reduce(T a, T b) { return std::min(a, b); }
};

/// The boolean (or, and) semiring: reachability. Values are 0/1 in T.
template <class T>
struct OrAnd {
  static T identity() { return T{0}; }
  static T combine(T a, T b) { return (a != T{0} && b != T{0}) ? T{1} : T{0}; }
  static T reduce(T a, T b) { return (a != T{0} || b != T{0}) ? T{1} : T{0}; }
};

/// (max, *) semiring: e.g. most-reliable-path probabilities.
template <class T>
struct MaxTimes {
  static T identity() { return T{0}; }
  static T combine(T a, T b) { return a * b; }
  static T reduce(T a, T b) { return std::max(a, b); }
};

}  // namespace tsg
