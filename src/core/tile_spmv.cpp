#include "core/tile_spmv.h"

#include <stdexcept>

#include "common/parallel.h"

namespace tsg {

template <class T>
void tile_spmv(const TileMatrix<T>& a, const tracked_vector<T>& x, tracked_vector<T>& y) {
  if (static_cast<index_t>(x.size()) != a.cols) {
    throw std::invalid_argument("tile_spmv: x size mismatch");
  }
  y.assign(static_cast<std::size_t>(a.rows), T{});

  parallel_for(index_t{0}, a.tile_rows, [&](index_t tr) {
    // Accumulate the 16 output lanes of this tile row locally, then write
    // once — the scratchpad pattern of the GPU kernel.
    T lanes[kTileDim] = {};
    for (offset_t t = a.tile_ptr[tr]; t < a.tile_ptr[tr + 1]; ++t) {
      const index_t col_base = a.tile_col_idx[t] * kTileDim;
      const offset_t nz_base = a.tile_nnz[static_cast<std::size_t>(t)];
      const index_t count = a.tile_nnz_of(t);
      for (index_t k = 0; k < count; ++k) {
        const std::size_t g = static_cast<std::size_t>(nz_base + k);
        lanes[a.row_idx[g]] +=
            a.val[g] * x[static_cast<std::size_t>(col_base + a.col_idx[g])];
      }
    }
    const index_t row_base = tr * kTileDim;
    const index_t row_end = std::min<index_t>(row_base + kTileDim, a.rows);
    for (index_t r = row_base; r < row_end; ++r) {
      y[static_cast<std::size_t>(r)] = lanes[r - row_base];
    }
  });
}

template void tile_spmv(const TileMatrix<double>&, const tracked_vector<double>&,
                        tracked_vector<double>&);
template void tile_spmv(const TileMatrix<float>&, const tracked_vector<float>&,
                        tracked_vector<float>&);

}  // namespace tsg
