#include "core/tile_add.h"

#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"

namespace tsg {

namespace {

/// Scatter one input tile's contribution into the output tile whose layout
/// is described by (mask_c, row_ptr_c): slot = rowPtr[r] + rank of the
/// column within the output mask.
template <class T>
void scatter_tile(const TileMatrix<T>& m, offset_t tile, T coeff, const rowmask_t* mask_c,
                  const std::uint8_t* row_ptr_c, T* slots) {
  const offset_t nz_base = m.tile_nnz[static_cast<std::size_t>(tile)];
  const index_t count = m.tile_nnz_of(tile);
  for (index_t k = 0; k < count; ++k) {
    const std::size_t g = static_cast<std::size_t>(nz_base + k);
    const index_t r = m.row_idx[g];
    slots[row_ptr_c[r] + mask_rank(mask_c[r], m.col_idx[g])] += coeff * m.val[g];
  }
}

}  // namespace

template <class T>
TileMatrix<T> tile_add(const TileMatrix<T>& a, const TileMatrix<T>& b, T alpha, T beta) {
  if (a.rows != b.rows || a.cols != b.cols) {
    throw std::invalid_argument("tile_add: dimension mismatch");
  }

  TileMatrix<T> c(a.rows, a.cols);

  // Pass 1: merge the tile layouts per tile row. Entries are
  // (tile_col, tile_id_a or -1, tile_id_b or -1).
  struct Merged {
    index_t col;
    offset_t ta;
    offset_t tb;
  };
  std::vector<std::vector<Merged>> merged(static_cast<std::size_t>(c.tile_rows));
  parallel_for(index_t{0}, c.tile_rows, [&](index_t tr) {
    auto& out = merged[static_cast<std::size_t>(tr)];
    offset_t ka = a.tile_ptr[tr], kb = b.tile_ptr[tr];
    const offset_t ea = a.tile_ptr[tr + 1], eb = b.tile_ptr[tr + 1];
    while (ka < ea || kb < eb) {
      const index_t ca = ka < ea ? a.tile_col_idx[ka] : a.tile_cols;
      const index_t cb = kb < eb ? b.tile_col_idx[kb] : b.tile_cols;
      if (ca == cb) {
        out.push_back({ca, ka++, kb++});
      } else if (ca < cb) {
        out.push_back({ca, ka++, -1});
      } else {
        out.push_back({cb, -1, kb++});
      }
    }
  });

  // Assemble the high-level structure.
  for (index_t tr = 0; tr < c.tile_rows; ++tr) {
    c.tile_ptr[tr + 1] =
        c.tile_ptr[tr] + static_cast<offset_t>(merged[static_cast<std::size_t>(tr)].size());
  }
  const offset_t ntiles = c.tile_ptr[c.tile_rows];
  c.tile_col_idx.resize(static_cast<std::size_t>(ntiles));
  c.tile_nnz.assign(static_cast<std::size_t>(ntiles) + 1, 0);
  c.row_ptr.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  c.mask.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);

  // Pass 2: per output tile, OR the input masks and derive rowPtr/nnz.
  parallel_for(index_t{0}, c.tile_rows, [&](index_t tr) {
    offset_t t = c.tile_ptr[tr];
    for (const auto& m : merged[static_cast<std::size_t>(tr)]) {
      c.tile_col_idx[static_cast<std::size_t>(t)] = m.col;
      const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
      index_t count = 0;
      for (index_t r = 0; r < kTileDim; ++r) {
        rowmask_t mask = 0;
        if (m.ta >= 0) mask |= a.tile_mask(m.ta)[r];
        if (m.tb >= 0) mask |= b.tile_mask(m.tb)[r];
        c.row_ptr[base + static_cast<std::size_t>(r)] = static_cast<std::uint8_t>(count);
        c.mask[base + static_cast<std::size_t>(r)] = mask;
        count += popcount16(mask);
      }
      c.tile_nnz[static_cast<std::size_t>(t) + 1] = count;
      ++t;
    }
  });
  for (offset_t t = 0; t < ntiles; ++t) {
    c.tile_nnz[static_cast<std::size_t>(t) + 1] += c.tile_nnz[static_cast<std::size_t>(t)];
  }

  const std::size_t nnz = static_cast<std::size_t>(c.nnz());
  c.row_idx.resize(nnz);
  c.col_idx.resize(nnz);
  c.val.resize(nnz);

  // Pass 3: fill indices from the masks and scatter both inputs' values.
  parallel_for(index_t{0}, c.tile_rows, [&](index_t tr) {
    offset_t t = c.tile_ptr[tr];
    for (const auto& m : merged[static_cast<std::size_t>(tr)]) {
      const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
      const offset_t nz_base = c.tile_nnz[static_cast<std::size_t>(t)];
      const rowmask_t* mask_c = c.mask.data() + base;
      const std::uint8_t* row_ptr_c = c.row_ptr.data() + base;

      index_t out = 0;
      T slots[kTileNnzMax];
      for (index_t r = 0; r < kTileDim; ++r) {
        rowmask_t mask = mask_c[r];
        while (mask != 0) {
          const index_t col =
              static_cast<index_t>(std::countr_zero(static_cast<unsigned>(mask)));
          const std::size_t dst = static_cast<std::size_t>(nz_base + out);
          c.row_idx[dst] = static_cast<std::uint8_t>(r);
          c.col_idx[dst] = static_cast<std::uint8_t>(col);
          slots[out] = T{};
          ++out;
          mask = static_cast<rowmask_t>(mask & (mask - 1));
        }
      }
      if (m.ta >= 0) scatter_tile(a, m.ta, alpha, mask_c, row_ptr_c, slots);
      if (m.tb >= 0) scatter_tile(b, m.tb, beta, mask_c, row_ptr_c, slots);
      for (index_t k = 0; k < out; ++k) {
        c.val[static_cast<std::size_t>(nz_base + k)] = slots[k];
      }
      ++t;
    }
  });
  return c;
}

template TileMatrix<double> tile_add(const TileMatrix<double>&, const TileMatrix<double>&,
                                     double, double);
template TileMatrix<float> tile_add(const TileMatrix<float>&, const TileMatrix<float>&, float,
                                    float);

}  // namespace tsg
