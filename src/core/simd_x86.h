// x86 vector helpers shared by the AVX2 and AVX-512 kernel TUs.
//
// The whole body is gated on the compile probes because only
// simd_avx2.cpp / simd_avx512.cpp are built with the ISA flags — every
// other includer (and the standalone header-hygiene compile in
// scripts/check_headers.sh) must see an empty header rather than
// intrinsics the TU is not allowed to emit.
#pragma once

#include "common/bitops.h"

#if defined(__AVX2__) && defined(__BMI2__)

#include <immintrin.h>

#include <cstdint>

namespace tsg::simd::x86 {

/// OR-reduce the 16 row masks of a tile (one ymm of epi16) to the union
/// mask: the set of B columns any row of the A tile touches.
inline std::uint32_t union_rowmask16(__m256i rows) {
  __m128i u = _mm_or_si128(_mm256_castsi256_si128(rows), _mm256_extracti128_si256(rows, 1));
  u = _mm_or_si128(u, _mm_srli_si128(u, 8));
  u = _mm_or_si128(u, _mm_srli_si128(u, 4));
  u = _mm_or_si128(u, _mm_srli_si128(u, 2));
  return static_cast<std::uint32_t>(_mm_extract_epi16(u, 0));
}

/// Vector form of the step-2 derivation: unpack the packed accumulator
/// into the 16 row masks, per-row popcounts via the nibble LUT, a 16-lane
/// inclusive prefix sum by log-step shifts, and the exclusive row pointers
/// narrowed to bytes. Writes all 16 mask/row_ptr entries; returns the tile
/// nonzero count. Exclusive prefixes peak at 240 (15 rows x 16 columns),
/// so the u8 narrowing cannot saturate.
inline index_t derive_epi16(const std::uint64_t cm[kTileMaskWords], rowmask_t* mask_out,
                            std::uint8_t* row_ptr_out) {
  const __m256i rows = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cm));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask_out), rows);

  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i lo = _mm256_and_si256(rows, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(rows, 4), nib);
  const __m256i cnt8 =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  // Per-byte counts are <= 8, so the pairwise maddubs reduction to 16-bit
  // lane popcounts cannot saturate.
  const __m256i cnt16 = _mm256_maddubs_epi16(cnt8, _mm256_set1_epi8(1));

  __m256i incl = cnt16;
  incl = _mm256_add_epi16(incl, _mm256_slli_si256(incl, 2));
  incl = _mm256_add_epi16(incl, _mm256_slli_si256(incl, 4));
  incl = _mm256_add_epi16(incl, _mm256_slli_si256(incl, 8));
  // slli_si256 shifts within 128-bit halves; carry the low half's total
  // (lane 7, bytes 14:15) into every lane of the high half.
  const __m128i low_total =
      _mm_shuffle_epi8(_mm256_castsi256_si128(incl), _mm_set1_epi16(0x0F0E));
  incl = _mm256_add_epi16(incl, _mm256_inserti128_si256(_mm256_setzero_si256(), low_total, 1));

  const __m256i excl = _mm256_sub_epi16(incl, cnt16);
  const __m256i bytes = _mm256_packus_epi16(excl, _mm256_setzero_si256());
  const __m256i ordered = _mm256_permute4x64_epi64(bytes, 0x08);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(row_ptr_out), _mm256_castsi256_si128(ordered));

  return static_cast<index_t>(_mm256_extract_epi16(incl, 15));
}

}  // namespace tsg::simd::x86

#endif  // defined(__AVX2__) && defined(__BMI2__)
