// Sparse-matrix times dense-matrix (SpMM) on the tile format: Y = A * X
// with X, Y dense row-major. SpMM is the other level-3 workhorse the
// paper's introduction situates SpGEMM against (GNN feature propagation,
// blocked Krylov methods); supporting it on the same storage completes the
// tiled kernel family (SpMV, SpMM, SpGEMM, add, transpose).
#pragma once

#include <cstddef>

#include "core/tile_format.h"

namespace tsg {

/// Dense row-major matrix of size rows x cols (leading dimension = cols).
template <class T>
struct DenseMatrix {
  index_t rows = 0;
  index_t cols = 0;
  tracked_vector<T> data;

  DenseMatrix() = default;
  DenseMatrix(index_t r, index_t c)
      : rows(r), cols(c), data(static_cast<std::size_t>(r) * static_cast<std::size_t>(c)) {}

  T& at(index_t r, index_t c) {
    return data[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(c)];
  }
  const T& at(index_t r, index_t c) const {
    return data[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(c)];
  }
};

/// Y = A * X. One task per tile row of A; each tile streams its nonzeros
/// against X's 16-row panel.
template <class T>
DenseMatrix<T> tile_spmm(const TileMatrix<T>& a, const DenseMatrix<T>& x);

extern template struct DenseMatrix<double>;
extern template struct DenseMatrix<float>;
extern template DenseMatrix<double> tile_spmm(const TileMatrix<double>&,
                                              const DenseMatrix<double>&);
extern template DenseMatrix<float> tile_spmm(const TileMatrix<float>&,
                                             const DenseMatrix<float>&);

}  // namespace tsg
