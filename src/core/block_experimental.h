// Dimension-generic sparse block format + SpGEMM — the tile-size ablation.
//
// Section 3.2 fixes the tile size at 16x16 and argues: local indices fill
// exactly one uint8 (two 4-bit nibbles), a row mask fills exactly one
// uint16, and every per-tile row pointer fits uint8 because a tile holds at
// most 256 nonzeros; 4x4/8x8 "cannot saturate the 8-bit data type", larger
// tiles would overflow it. This experimental module makes that claim
// measurable: a simplified tiled SpGEMM generic over the block edge (8, 16
// or 32) with the narrowest integer types each size permits, so the
// storage and runtime trends across sizes can be benched
// (bench_ablation_tilesize) instead of taken on faith.
//
// It is deliberately simpler than the production pipeline (dense per-block
// accumulator only, no adaptive policy) — differences *between sizes* are
// what the ablation measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/bitops.h"
#include "matrix/csr.h"

namespace tsg::experimental {

template <int Dim>
struct BlockTraits;

template <>
struct BlockTraits<8> {
  using mask_type = std::uint8_t;    // 8 columns -> 8-bit row mask
  using local_index = std::uint8_t;  // 3 significant bits
  using local_ptr = std::uint8_t;    // <= 64 nonzeros per block
};
template <>
struct BlockTraits<16> {
  using mask_type = std::uint16_t;   // the paper's configuration
  using local_index = std::uint8_t;  // 4 significant bits
  using local_ptr = std::uint8_t;    // <= 256; row starts <= 240
};
template <>
struct BlockTraits<32> {
  using mask_type = std::uint32_t;    // 32-bit row masks
  using local_index = std::uint8_t;   // 5 significant bits (wastes 3)
  using local_ptr = std::uint16_t;    // <= 1024 nonzeros per block
};

/// Sparse block matrix of Dim x Dim blocks, same two-level layout as the
/// production TileMatrix.
template <int Dim, class T>
struct BlockMatrix {
  using Traits = BlockTraits<Dim>;

  index_t rows = 0;
  index_t cols = 0;
  index_t block_rows = 0;
  index_t block_cols = 0;

  tracked_vector<offset_t> block_ptr;      ///< size block_rows+1
  tracked_vector<index_t> block_col_idx;   ///< per block
  tracked_vector<offset_t> block_nnz;      ///< size blocks+1

  tracked_vector<typename Traits::local_ptr> row_ptr;  ///< blocks*Dim
  tracked_vector<typename Traits::local_index> row_idx;
  tracked_vector<typename Traits::local_index> col_idx;
  tracked_vector<T> val;
  tracked_vector<typename Traits::mask_type> mask;     ///< blocks*Dim

  offset_t num_blocks() const { return static_cast<offset_t>(block_col_idx.size()); }
  offset_t nnz() const { return block_nnz.empty() ? 0 : block_nnz.back(); }

  std::size_t bytes() const {
    return block_ptr.size() * sizeof(offset_t) + block_col_idx.size() * sizeof(index_t) +
           block_nnz.size() * sizeof(offset_t) +
           row_ptr.size() * sizeof(typename Traits::local_ptr) +
           (row_idx.size() + col_idx.size()) * sizeof(typename Traits::local_index) +
           val.size() * sizeof(T) + mask.size() * sizeof(typename Traits::mask_type);
  }
};

/// CSR (sorted rows) -> block format.
template <int Dim, class T>
BlockMatrix<Dim, T> csr_to_block(const Csr<T>& a);

/// Block format -> CSR with sorted rows.
template <int Dim, class T>
Csr<T> block_to_csr(const BlockMatrix<Dim, T>& b);

/// Simplified blocked SpGEMM (dense per-block accumulator); output keeps
/// the full structural product like the production pipeline.
template <int Dim, class T>
BlockMatrix<Dim, T> block_spgemm(const BlockMatrix<Dim, T>& a, const BlockMatrix<Dim, T>& b);

#define TSG_BLOCK_EXTERN(Dim, T)                                             \
  extern template BlockMatrix<Dim, T> csr_to_block<Dim, T>(const Csr<T>&);   \
  extern template Csr<T> block_to_csr(const BlockMatrix<Dim, T>&);           \
  extern template BlockMatrix<Dim, T> block_spgemm(const BlockMatrix<Dim, T>&, \
                                                   const BlockMatrix<Dim, T>&);
TSG_BLOCK_EXTERN(8, double)
TSG_BLOCK_EXTERN(16, double)
TSG_BLOCK_EXTERN(32, double)
#undef TSG_BLOCK_EXTERN

}  // namespace tsg::experimental
