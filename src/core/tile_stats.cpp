#include "core/tile_stats.h"

namespace tsg {

template <class T>
TileFormatStats tile_format_stats(const TileMatrix<T>& t) {
  TileFormatStats s;
  s.num_tiles = t.num_tiles();
  s.nnz = t.nnz();
  s.avg_nnz_per_tile =
      s.num_tiles > 0 ? static_cast<double>(s.nnz) / static_cast<double>(s.num_tiles) : 0.0;
  for (offset_t i = 0; i < s.num_tiles; ++i) {
    const index_t n = t.tile_nnz_of(i);
    if (n > s.max_nnz_per_tile) s.max_nnz_per_tile = n;
    if (n == 0) ++s.empty_tiles;
  }
  s.bytes = t.bytes();
  s.high_level_bytes = t.tile_ptr.size() * sizeof(offset_t) +
                       t.tile_col_idx.size() * sizeof(index_t) +
                       t.tile_nnz.size() * sizeof(offset_t);
  s.mask_bytes = t.mask.size() * sizeof(rowmask_t);
  s.row_ptr_bytes = t.row_ptr.size() * sizeof(std::uint8_t);
  return s;
}

template <class T>
std::size_t csr_bytes(const Csr<T>& a) {
  return a.bytes();
}

template TileFormatStats tile_format_stats(const TileMatrix<double>&);
template TileFormatStats tile_format_stats(const TileMatrix<float>&);
template std::size_t csr_bytes(const Csr<double>&);
template std::size_t csr_bytes(const Csr<float>&);

}  // namespace tsg
