// Per-tile numeric kernels shared by step 3, the fused step-2+3 path, and
// the masked/semiring variants. Each kernel works on one output tile whose
// symbolic structure (16 row masks + local row pointers) is already known;
// all state fits in registers / L1, mirroring the paper's warp-local
// accumulation (Algorithm 3).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "core/intersect.h"
#include "core/simd_dispatch.h"
#include "core/tile_format.h"

namespace tsg {
namespace detail {

/// Scatter the products of all matched pairs into `slots` via popcount-rank
/// indexing (Algorithm 3 lines 4-12): the final position of column cb in
/// C's local row r is row_ptr[r] + rank of cb in mask[r].
template <class T>
inline void accumulate_pairs_sparse(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                    const MatchedPair* pairs, std::size_t pair_count,
                                    const rowmask_t* mask_c, const std::uint8_t* row_ptr_c,
                                    T* slots) {
  for (std::size_t pi = 0; pi < pair_count; ++pi) {
    const MatchedPair& p = pairs[pi];
    const offset_t a_nz = a.tile_nnz[p.tile_a];
    const index_t a_cnt = a.tile_nnz_of(p.tile_a);
    const offset_t b_nz = b.tile_nnz[p.tile_b];
    for (index_t k = 0; k < a_cnt; ++k) {
      const std::size_t ga = static_cast<std::size_t>(a_nz + k);
      const index_t r = a.row_idx[ga];
      const index_t col_a = a.col_idx[ga];
      const T va = a.val[ga];
      index_t lo, hi;
      b.tile_row_range(p.tile_b, col_a, lo, hi);
      const std::uint8_t base = row_ptr_c[r];
      const rowmask_t m = mask_c[r];
      for (index_t kb = lo; kb < hi; ++kb) {
        const std::size_t gb = static_cast<std::size_t>(b_nz + kb);
        const index_t cb = b.col_idx[gb];
        slots[base + mask_rank(m, cb)] += va * b.val[gb];
      }
    }
  }
}

/// Accumulate into a dense 16x16 scratch tile, then compress through the
/// mask (Algorithm 3 lines 13-17). The accumulation order is fixed — only
/// the compress (a pure gather) goes through the dispatched `nops`, which
/// is what keeps every simd::Level bit-identical. `slots` must have
/// capacity kTileNnzMax (vector compress may store past the final count).
template <class T>
inline void accumulate_pairs_dense(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                   const MatchedPair* pairs, std::size_t pair_count,
                                   const rowmask_t* mask_c, T* slots,
                                   const simd::NumericOps& nops) {
  T acc[kTileNnzMax] = {};
  for (std::size_t pi = 0; pi < pair_count; ++pi) {
    const MatchedPair& p = pairs[pi];
    const offset_t a_nz = a.tile_nnz[p.tile_a];
    const index_t a_cnt = a.tile_nnz_of(p.tile_a);
    const offset_t b_nz = b.tile_nnz[p.tile_b];
    for (index_t k = 0; k < a_cnt; ++k) {
      const std::size_t ga = static_cast<std::size_t>(a_nz + k);
      const index_t r = a.row_idx[ga];
      const index_t col_a = a.col_idx[ga];
      const T va = a.val[ga];
      index_t lo, hi;
      b.tile_row_range(p.tile_b, col_a, lo, hi);
      T* acc_row = acc + static_cast<std::size_t>(r) * kTileDim;
      for (index_t kb = lo; kb < hi; ++kb) {
        const std::size_t gb = static_cast<std::size_t>(b_nz + kb);
        acc_row[b.col_idx[gb]] += va * b.val[gb];
      }
    }
  }
  // Compress: the mask's bit order in packed-word form equals the storage
  // order of the tile's nonzeros (with four rows per word, bit b of word
  // wi indexes dense slot 64*wi + b), so the dispatched compress kernel is
  // a pure in-order gather of the set slots.
  simd::compress_tile<T>(nops, acc, mask_c, slots);
}

/// Whether tile-level accumulation should take the dense 256-slot path for
/// an output tile of `nnz_c` nonzeros under the given options. Keeping the
/// predicate in one place guarantees the fused step-2 path and the staged
/// step-3 path choose the same accumulator (so results are bit-identical).
inline bool use_dense_accumulator(const TileSpgemmOptions& options, index_t nnz_c) {
  return options.accumulator == AccumulatorPolicy::kAlwaysDense ||
         (options.accumulator == AccumulatorPolicy::kAdaptive && nnz_c > options.tnnz);
}

/// Materialise a tile's local row/column index arrays from its 16 row
/// masks; the mask bit order is the storage order. Writes nnz_c entries at
/// row_idx/col_idx (already offset to the tile's base). Word-packed: one
/// bit-scan loop over four 64-bit words instead of sixteen per-row loops —
/// bit b of word wi is local (4*wi + b/16, b%16).
inline void materialize_tile_indices(const rowmask_t* mask_c, std::uint8_t* row_idx,
                                     std::uint8_t* col_idx) {
  index_t out = 0;
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    std::uint64_t w = pack_rowmask_word(mask_c + wi * kRowsPerMaskWord);
    const std::uint8_t row_base = static_cast<std::uint8_t>(wi * kRowsPerMaskWord);
    while (w != 0) {
      const int b = std::countr_zero(w);
      row_idx[out] = static_cast<std::uint8_t>(row_base + (b >> 4));
      col_idx[out] = static_cast<std::uint8_t>(b & 0xF);
      ++out;
      w &= w - 1;
    }
  }
}

/// Per-row reference version of materialize_tile_indices, kept as the A/B
/// oracle for the word-packed enumeration order.
inline void materialize_tile_indices_scalar(const rowmask_t* mask_c, std::uint8_t* row_idx,
                                            std::uint8_t* col_idx) {
  index_t out = 0;
  for (index_t r = 0; r < kTileDim; ++r) {
    rowmask_t m = mask_c[r];
    while (m != 0) {
      const index_t col = static_cast<index_t>(std::countr_zero(static_cast<unsigned>(m)));
      row_idx[out] = static_cast<std::uint8_t>(r);
      col_idx[out] = static_cast<std::uint8_t>(col);
      ++out;
      m = static_cast<rowmask_t>(m & (m - 1));
    }
  }
}

}  // namespace detail
}  // namespace tsg
