#include "core/masked_spgemm.h"

#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/spgemm_context.h"
#include "core/tile_convert.h"
#include "core/tile_kernels.h"
#include "core/validate.h"

namespace tsg {

namespace {

/// Masked numeric accumulation: like step 3's sparse path but products
/// whose target position is outside the (already mask-ANDed) tile mask are
/// skipped instead of scattered.
template <class T>
void accumulate_sparse_masked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                              const std::vector<MatchedPair>& pairs, const rowmask_t* mask_c,
                              const std::uint8_t* row_ptr_c, T* slots) {
  for (const MatchedPair& p : pairs) {
    const offset_t a_nz = a.tile_nnz[static_cast<std::size_t>(p.tile_a)];
    const index_t a_cnt = a.tile_nnz_of(p.tile_a);
    const offset_t b_nz = b.tile_nnz[static_cast<std::size_t>(p.tile_b)];
    for (index_t k = 0; k < a_cnt; ++k) {
      const std::size_t ga = static_cast<std::size_t>(a_nz + k);
      const index_t r = a.row_idx[ga];
      const rowmask_t m = mask_c[r];
      if (m == 0) continue;  // whole output row masked away
      index_t lo, hi;
      b.tile_row_range(p.tile_b, a.col_idx[ga], lo, hi);
      const T va = a.val[ga];
      const std::uint8_t base = row_ptr_c[r];
      for (index_t kb = lo; kb < hi; ++kb) {
        const std::size_t gb = static_cast<std::size_t>(b_nz + kb);
        const index_t cb = b.col_idx[gb];
        if ((m & bit_of(cb)) == 0) continue;  // outside the mask: skip
        slots[base + mask_rank(m, cb)] += va * b.val[gb];
      }
    }
  }
}

}  // namespace

template <class T>
Expected<TileMatrix<T>> SpgemmContext::try_run_masked(const TileMatrix<T>& a,
                                                      const TileMatrix<T>& b,
                                                      const TileMatrix<T>& mask) {
  if (a.cols != b.rows) {
    return Status::dimension_mismatch("masked spgemm: inner dimensions differ (A is " +
                                      std::to_string(a.rows) + "x" + std::to_string(a.cols) +
                                      ", B is " + std::to_string(b.rows) + "x" +
                                      std::to_string(b.cols) + ")");
  }
  if (mask.rows != a.rows || mask.cols != b.cols) {
    return Status::dimension_mismatch("masked spgemm: mask shape does not match A*B");
  }
  if (Status s = validate_tile_operand(a, "A", config().validation, config().nan_policy);
      !s.ok()) {
    return s;
  }
  if (Status s = validate_tile_operand(b, "B", config().validation, config().nan_policy);
      !s.ok()) {
    return s;
  }
  if (Status s = validate_tile_operand(mask, "mask", config().validation, config().nan_policy);
      !s.ok()) {
    return s;
  }
  try {
    return run_masked_impl(a, b, mask);
  } catch (const Error& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::allocation_failed(
        "masked spgemm: a tracked allocation failed mid-run (real or injected); the context "
        "remains reusable");
  }
}

template <class T>
TileMatrix<T> SpgemmContext::run_masked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                        const TileMatrix<T>& mask) {
  return std::move(try_run_masked(a, b, mask)).value();
}

template <class T>
TileMatrix<T> SpgemmContext::run_masked_impl(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                             const TileMatrix<T>& mask) {
  std::optional<ThreadCountGuard> guard;
  if (config().threads > 0) guard.emplace(config().threads);
  const TileSpgemmOptions& options = config().options;

  SpgemmWorkspace<T>& ws = workspace<T>();
  ws.ensure_threads(max_workers());
  ws.begin_call();
  tile_layout_csc(b, ws.b_csc);
  const TileLayoutCsc& b_csc = ws.b_csc;

  // Step 1 (masked): candidate output tiles are exactly M's tiles — the
  // symbolic product can only shrink them, never add outside the mask.
  TileMatrix<T> c(a.rows, b.cols);
  const offset_t ntiles = mask.num_tiles();
  c.tile_ptr = mask.tile_ptr;
  c.tile_col_idx = mask.tile_col_idx;
  c.tile_nnz.assign(static_cast<std::size_t>(ntiles) + 1, 0);
  c.row_ptr.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);
  c.mask.assign(checked_size_mul(static_cast<std::size_t>(ntiles), kTileDim), 0);

  // Expanded tile row index (mask layout is CSR over tiles), pooled in the
  // workspace structure so iterated masked products reuse its capacity.
  tracked_vector<index_t>& tile_row_idx = ws.structure.tile_row_idx;
  tile_row_idx.resize(static_cast<std::size_t>(ntiles));
  for (index_t tr = 0; tr < mask.tile_rows; ++tr) {
    for (offset_t t = mask.tile_ptr[tr]; t < mask.tile_ptr[tr + 1]; ++t) {
      tile_row_idx[static_cast<std::size_t>(t)] = tr;
    }
  }

  // Step 2 (masked): symbolic per tile, masks ANDed with M's.
  parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
    // Cooperative cancellation every 64th tile (see step2.cpp). A tripped
    // token skips the tile — its mask row and tile_nnz stay 0, and the
    // pipeline layer converts the latched reason before C materializes.
    if ((t & 63) == 0) {
      ws.cancel.note_progress();
      if (ws.cancel.should_stop()) return;
    }
    const index_t tile_i = tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tile_j = c.tile_col_idx[static_cast<std::size_t>(t)];

    std::vector<MatchedPair>& pairs = ws.slot(worker_rank()).pairs;
    pairs.clear();
    const offset_t a_base = a.tile_ptr[tile_i];
    const index_t len_a = static_cast<index_t>(a.tile_ptr[tile_i + 1] - a_base);
    const offset_t b_base = b_csc.col_ptr[tile_j];
    const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
    intersect_tiles(a.tile_col_idx.data() + a_base, a_base, len_a,
                    b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                    options.intersect, pairs);

    rowmask_t mask_c[kTileDim] = {};
    for (const MatchedPair& p : pairs) {
      const rowmask_t* mask_b = b.tile_mask(p.tile_b);
      const offset_t nz_base = a.tile_nnz[static_cast<std::size_t>(p.tile_a)];
      const index_t nnz_a = a.tile_nnz_of(p.tile_a);
      for (index_t k = 0; k < nnz_a; ++k) {
        const std::size_t g = static_cast<std::size_t>(nz_base + k);
        mask_c[a.row_idx[g]] |= mask_b[a.col_idx[g]];
      }
    }
    const rowmask_t* allow = mask.tile_mask(t);
    index_t count = 0;
    const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
    for (index_t r = 0; r < kTileDim; ++r) {
      const rowmask_t masked = static_cast<rowmask_t>(mask_c[r] & allow[r]);
      c.row_ptr[base + static_cast<std::size_t>(r)] = static_cast<std::uint8_t>(count);
      c.mask[base + static_cast<std::size_t>(r)] = masked;
      count += popcount16(masked);
    }
    c.tile_nnz[static_cast<std::size_t>(t) + 1] = count;
  });
  for (offset_t t = 0; t < ntiles; ++t) {
    c.tile_nnz[static_cast<std::size_t>(t) + 1] += c.tile_nnz[static_cast<std::size_t>(t)];
  }

  const std::size_t nnz = static_cast<std::size_t>(c.nnz());
  c.row_idx.resize(nnz);
  c.col_idx.resize(nnz);
  c.val.resize(nnz);

  // Step 3 (masked numeric). Materialize goes through the dispatched
  // numeric table (exact-store contract, safe against C's shared arrays);
  // the masked accumulator itself has no vector variant.
  const simd::NumericOps& nops = simd::numeric_ops(effective_simd_level(options));
  parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
    // Same strided poll as the symbolic pass: a cancelled run leaves the
    // tile's values zero, which the caller discards with the run.
    if ((t & 63) == 0) {
      ws.cancel.note_progress();
      if (ws.cancel.should_stop()) return;
    }
    const index_t tile_i = tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tile_j = c.tile_col_idx[static_cast<std::size_t>(t)];
    const index_t nnz_c = c.tile_nnz_of(t);
    const offset_t nz_base = c.tile_nnz[static_cast<std::size_t>(t)];
    const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
    const rowmask_t* mask_c = c.mask.data() + base;
    const std::uint8_t* row_ptr_c = c.row_ptr.data() + base;

    nops.materialize(mask_c, c.row_idx.data() + nz_base, c.col_idx.data() + nz_base);
    if (nnz_c == 0) return;

    std::vector<MatchedPair>& pairs = ws.slot(worker_rank()).pairs;
    pairs.clear();
    const offset_t a_base = a.tile_ptr[tile_i];
    const index_t len_a = static_cast<index_t>(a.tile_ptr[tile_i + 1] - a_base);
    const offset_t b_base = b_csc.col_ptr[tile_j];
    const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
    intersect_tiles(a.tile_col_idx.data() + a_base, a_base, len_a,
                    b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                    options.intersect, pairs);

    T slots[kTileNnzMax];
    for (index_t k = 0; k < nnz_c; ++k) slots[k] = T{};
    accumulate_sparse_masked(a, b, pairs, mask_c, row_ptr_c, slots);
    for (index_t k = 0; k < nnz_c; ++k) {
      c.val[static_cast<std::size_t>(nz_base + k)] = slots[k];
    }
  });
  return c;
}

template <class T>
TileMatrix<T> tile_spgemm_masked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                 const TileMatrix<T>& mask,
                                 const TileSpgemmOptions& options) {
  SpgemmContext ctx(SpgemmContext::Config{}.with_options(options));
  return ctx.run_masked(a, b, mask);
}

template <class T>
Csr<T> spgemm_tile_masked(const Csr<T>& a, const Csr<T>& b, const Csr<T>& mask,
                          const TileSpgemmOptions& options) {
  return tile_to_csr(
      tile_spgemm_masked(csr_to_tile(a), csr_to_tile(b), csr_to_tile(mask), options));
}

template Expected<TileMatrix<double>> SpgemmContext::try_run_masked(const TileMatrix<double>&,
                                                                    const TileMatrix<double>&,
                                                                    const TileMatrix<double>&);
template Expected<TileMatrix<float>> SpgemmContext::try_run_masked(const TileMatrix<float>&,
                                                                   const TileMatrix<float>&,
                                                                   const TileMatrix<float>&);
template TileMatrix<double> SpgemmContext::run_masked(const TileMatrix<double>&,
                                                      const TileMatrix<double>&,
                                                      const TileMatrix<double>&);
template TileMatrix<float> SpgemmContext::run_masked(const TileMatrix<float>&,
                                                     const TileMatrix<float>&,
                                                     const TileMatrix<float>&);
template TileMatrix<double> tile_spgemm_masked(const TileMatrix<double>&,
                                               const TileMatrix<double>&,
                                               const TileMatrix<double>&,
                                               const TileSpgemmOptions&);
template TileMatrix<float> tile_spgemm_masked(const TileMatrix<float>&,
                                              const TileMatrix<float>&,
                                              const TileMatrix<float>&,
                                              const TileSpgemmOptions&);
template Csr<double> spgemm_tile_masked(const Csr<double>&, const Csr<double>&,
                                        const Csr<double>&, const TileSpgemmOptions&);
template Csr<float> spgemm_tile_masked(const Csr<float>&, const Csr<float>&,
                                       const Csr<float>&, const TileSpgemmOptions&);

}  // namespace tsg
