#include "core/step1.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace tsg {

namespace {

/// Stamped per-thread set of tile columns, reused across tile rows.
struct SymbolicScratch {
  std::vector<std::uint32_t> seen;
  std::vector<index_t> cols;
  std::uint32_t stamp = 0;

  void prepare(index_t width) {
    if (seen.size() < static_cast<std::size_t>(width)) {
      seen.assign(static_cast<std::size_t>(width), 0);
      stamp = 0;
    }
    ++stamp;
    cols.clear();
  }

  void insert(index_t c) {
    if (seen[static_cast<std::size_t>(c)] != stamp) {
      seen[static_cast<std::size_t>(c)] = stamp;
      cols.push_back(c);
    }
  }
};

thread_local SymbolicScratch t_sym_scratch;

}  // namespace

template <class T>
TileStructure step1_tile_structure(const TileMatrix<T>& a, const TileMatrix<T>& b) {
  if (a.cols != b.rows) throw std::invalid_argument("step1: inner dimensions differ");

  TileStructure c;
  c.tile_rows = a.tile_rows;
  c.tile_cols = b.tile_cols;
  c.tile_ptr.assign(static_cast<std::size_t>(c.tile_rows) + 1, 0);

  // Gustavson on the tile layouts: C' row i = union of B' rows named by the
  // tile columns of A' row i. Dense stamped accumulator — tile_cols of B is
  // small (cols/16), so this is exactly the "dense row SPA on a small
  // matrix" NSPARSE would use for these sizes.
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(c.tile_rows));
  parallel_for(index_t{0}, c.tile_rows, [&](index_t ti) {
    SymbolicScratch& scratch = t_sym_scratch;
    scratch.prepare(c.tile_cols);
    for (offset_t ka = a.tile_ptr[ti]; ka < a.tile_ptr[ti + 1]; ++ka) {
      const index_t tk = a.tile_col_idx[ka];
      for (offset_t kb = b.tile_ptr[tk]; kb < b.tile_ptr[tk + 1]; ++kb) {
        scratch.insert(b.tile_col_idx[kb]);
      }
    }
    std::sort(scratch.cols.begin(), scratch.cols.end());
    rows[static_cast<std::size_t>(ti)] = scratch.cols;
  });

  for (index_t ti = 0; ti < c.tile_rows; ++ti) {
    c.tile_ptr[ti + 1] =
        c.tile_ptr[ti] + static_cast<offset_t>(rows[static_cast<std::size_t>(ti)].size());
  }
  const offset_t ntiles = c.tile_ptr[c.tile_rows];
  c.tile_col_idx.resize(static_cast<std::size_t>(ntiles));
  c.tile_row_idx.resize(static_cast<std::size_t>(ntiles));
  parallel_for(index_t{0}, c.tile_rows, [&](index_t ti) {
    offset_t dst = c.tile_ptr[ti];
    for (index_t col : rows[static_cast<std::size_t>(ti)]) {
      c.tile_col_idx[static_cast<std::size_t>(dst)] = col;
      c.tile_row_idx[static_cast<std::size_t>(dst)] = ti;
      ++dst;
    }
  });
  return c;
}

template TileStructure step1_tile_structure(const TileMatrix<double>&,
                                            const TileMatrix<double>&);
template TileStructure step1_tile_structure(const TileMatrix<float>&,
                                            const TileMatrix<float>&);

}  // namespace tsg
