#include "core/step1.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"
#include "core/spgemm_workspace.h"

namespace tsg {

template <class T>
void step1_tile_structure(const TileMatrix<T>& a, const TileMatrix<T>& b,
                          SpgemmWorkspace<T>& ws, TileStructure& out) {
  if (a.cols != b.rows) throw std::invalid_argument("step1: inner dimensions differ");

  out.tile_rows = a.tile_rows;
  out.tile_cols = b.tile_cols;
  out.tile_ptr.assign(static_cast<std::size_t>(out.tile_rows) + 1, 0);

  // Gustavson on the tile layouts: C' row i = union of B' rows named by the
  // tile columns of A' row i. Dense stamped accumulator — tile_cols of B is
  // small (cols/16), so this is exactly the "dense row SPA on a small
  // matrix" NSPARSE would use for these sizes. The per-row lists and the
  // stamped sets live in the workspace; copy-assignment into a pooled
  // std::vector reuses its capacity.
  std::vector<std::vector<index_t>>& rows = ws.step1_rows;
  if (rows.size() < static_cast<std::size_t>(out.tile_rows)) {
    rows.resize(static_cast<std::size_t>(out.tile_rows));
  }
  parallel_for(index_t{0}, out.tile_rows, [&](index_t ti) {
    // Cooperative cancellation, checked every 64th row so the prologue is
    // free on the other 63. Bodies must not throw (throw-in-parallel), so
    // a tripped token empties the row and the serial tail below bails out.
    if ((ti & 63) == 0) {
      ws.cancel.note_progress();
      if (ws.cancel.should_stop()) {
        rows[static_cast<std::size_t>(ti)].clear();
        return;
      }
    }
    detail::StampedTileSet& scratch = ws.slot(worker_rank()).sym;
    scratch.prepare(out.tile_cols);
    for (offset_t ka = a.tile_ptr[ti]; ka < a.tile_ptr[ti + 1]; ++ka) {
      const index_t tk = a.tile_col_idx[ka];
      for (offset_t kb = b.tile_ptr[tk]; kb < b.tile_ptr[tk + 1]; ++kb) {
        scratch.insert(b.tile_col_idx[kb]);
      }
    }
    std::sort(scratch.cols.begin(), scratch.cols.end());
    rows[static_cast<std::size_t>(ti)] = scratch.cols;
  });

  if (ws.cancel.should_stop()) {
    // Leave a consistent (empty) structure; the pipeline layer checks the
    // token right after step 1 and raises the structured status.
    out.tile_col_idx.clear();
    out.tile_row_idx.clear();
    return;
  }

  for (index_t ti = 0; ti < out.tile_rows; ++ti) {
    out.tile_ptr[ti + 1] =
        out.tile_ptr[ti] + static_cast<offset_t>(rows[static_cast<std::size_t>(ti)].size());
  }
  const offset_t ntiles = out.tile_ptr[out.tile_rows];
  out.tile_col_idx.resize(static_cast<std::size_t>(ntiles));
  out.tile_row_idx.resize(static_cast<std::size_t>(ntiles));
  parallel_for(index_t{0}, out.tile_rows, [&](index_t ti) {
    offset_t dst = out.tile_ptr[ti];
    for (index_t col : rows[static_cast<std::size_t>(ti)]) {
      out.tile_col_idx[static_cast<std::size_t>(dst)] = col;
      out.tile_row_idx[static_cast<std::size_t>(dst)] = ti;
      ++dst;
    }
  });
}

template <class T>
TileStructure step1_tile_structure(const TileMatrix<T>& a, const TileMatrix<T>& b) {
  SpgemmWorkspace<T> ws;
  ws.ensure_threads(max_workers());
  TileStructure out;
  step1_tile_structure(a, b, ws, out);
  return out;
}

template void step1_tile_structure(const TileMatrix<double>&, const TileMatrix<double>&,
                                   SpgemmWorkspace<double>&, TileStructure&);
template void step1_tile_structure(const TileMatrix<float>&, const TileMatrix<float>&,
                                   SpgemmWorkspace<float>&, TileStructure&);
template TileStructure step1_tile_structure(const TileMatrix<double>&,
                                            const TileMatrix<double>&);
template TileStructure step1_tile_structure(const TileMatrix<float>&,
                                            const TileMatrix<float>&);

}  // namespace tsg
