// Step 1 of TileSpGEMM (Section 3.3, Figure 3): determine the tile
// structure of C by running a *symbolic* SpGEMM on the high-level tile
// layouts A' and B' — every sparse tile acts as one nonzero. Tile-wise
// cancellation is not considered: C may keep tiles that turn out empty.
//
// The paper delegates this small symbolic product to the NSPARSE library;
// we use our own hash-based symbolic kernel (same role, same structure).
#pragma once

#include "core/tile_format.h"

namespace tsg {

template <class T>
struct SpgemmWorkspace;

/// Tile structure of the output matrix C (the paper's tilePtr_C,
/// tileColidx_C, plus the expanded per-tile row index used by steps 2/3).
struct TileStructure {
  index_t tile_rows = 0;
  index_t tile_cols = 0;
  tracked_vector<offset_t> tile_ptr;      ///< size tile_rows+1
  tracked_vector<index_t> tile_col_idx;   ///< per tile
  tracked_vector<index_t> tile_row_idx;   ///< per tile (tileRowidx_C)

  offset_t num_tiles() const { return static_cast<offset_t>(tile_col_idx.size()); }
};

/// Symbolic product of the two tile layouts, writing into `out` and drawing
/// scratch (stamped column sets, per-tile-row lists) from the workspace so
/// repeated calls through one SpgemmContext reuse their capacity.
template <class T>
void step1_tile_structure(const TileMatrix<T>& a, const TileMatrix<T>& b,
                          SpgemmWorkspace<T>& ws, TileStructure& out);

/// Convenience overload with a transient workspace (one-shot callers).
template <class T>
TileStructure step1_tile_structure(const TileMatrix<T>& a, const TileMatrix<T>& b);

extern template void step1_tile_structure(const TileMatrix<double>&, const TileMatrix<double>&,
                                          SpgemmWorkspace<double>&, TileStructure&);
extern template void step1_tile_structure(const TileMatrix<float>&, const TileMatrix<float>&,
                                          SpgemmWorkspace<float>&, TileStructure&);
extern template TileStructure step1_tile_structure(const TileMatrix<double>&,
                                                   const TileMatrix<double>&);
extern template TileStructure step1_tile_structure(const TileMatrix<float>&,
                                                   const TileMatrix<float>&);

}  // namespace tsg
