// AVX2 + BMI2 kernels for the step-2/3 dispatch family. This TU is the
// only place (with simd_avx512.cpp) compiled with -mavx2 -mbmi2; the
// exported table is reached strictly through runtime CPUID dispatch, so
// nothing here may leak into unconditionally-executed code.
#include "core/simd_dispatch.h"
#include "core/simd_x86.h"

#if defined(__AVX2__) && defined(__BMI2__)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace tsg::simd {
namespace {

void mask_or_avx2(const rowmask_t* mask_a, const rowmask_t* mask_b,
                  std::uint64_t cm[kTileMaskWords]) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask_a));
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<__m256i*>(cm));
  // One pass per column the A tile touches anywhere: broadcast-compare
  // selects the rows holding that column, which all OR in the same B row
  // mask. Sparse tiles touch few columns, so this beats 16 scalar walks.
  std::uint32_t uni = x86::union_rowmask16(va);
  while (uni != 0) {
    const int c = std::countr_zero(uni);
    uni &= uni - 1;
    const __m256i bit = _mm256_set1_epi16(static_cast<short>(1u << c));
    const __m256i sel = _mm256_cmpeq_epi16(_mm256_and_si256(va, bit), bit);
    const __m256i contrib = _mm256_and_si256(sel, _mm256_set1_epi16(static_cast<short>(mask_b[c])));
    acc = _mm256_or_si256(acc, contrib);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(cm), acc);
}

index_t derive_avx2(const std::uint64_t cm[kTileMaskWords], rowmask_t* mask_out,
                    std::uint8_t* row_ptr_out) {
  return x86::derive_epi16(cm, mask_out, row_ptr_out);
}

// Dword-pair permute patterns for compressing 4 doubles by a 4-bit mask:
// entry m lists the float-lane pairs of the selected qwords in order,
// zero-padded (the pad lanes are overwritten by the next chunk or ignored).
alignas(32) constexpr std::int32_t kQuadPerm[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0, 0, 0}, {2, 3, 0, 0, 0, 0, 0, 0},
    {0, 1, 2, 3, 0, 0, 0, 0}, {4, 5, 0, 0, 0, 0, 0, 0}, {0, 1, 4, 5, 0, 0, 0, 0},
    {2, 3, 4, 5, 0, 0, 0, 0}, {0, 1, 2, 3, 4, 5, 0, 0}, {6, 7, 0, 0, 0, 0, 0, 0},
    {0, 1, 6, 7, 0, 0, 0, 0}, {2, 3, 6, 7, 0, 0, 0, 0}, {0, 1, 2, 3, 6, 7, 0, 0},
    {4, 5, 6, 7, 0, 0, 0, 0}, {0, 1, 4, 5, 6, 7, 0, 0}, {2, 3, 4, 5, 6, 7, 0, 0},
    {0, 1, 2, 3, 4, 5, 6, 7}};

// Both compress kernels store whole vectors at the moving output cursor:
// before chunk g starts, the cursor is at most g*chunk elements, so the
// over-wide store stays inside the kTileNnzMax-element scratch `out`
// (never C's shared arrays — see the NumericOps contract).
void compress_avx2_d(const double* acc, const rowmask_t* mask_c, double* out) {
  index_t o = 0;
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    const std::uint64_t w = pack_rowmask_word(mask_c + wi * kRowsPerMaskWord);
    if (w == 0) continue;
    const double* acc_w = acc + static_cast<std::size_t>(wi) * (kRowsPerMaskWord * kTileDim);
    for (int k = 0; k < 16; ++k) {
      const unsigned m4 = static_cast<unsigned>(w >> (4 * k)) & 0xFu;
      if (m4 == 0) continue;
      const __m256d v = _mm256_loadu_pd(acc_w + 4 * k);
      const __m256i idx = _mm256_load_si256(reinterpret_cast<const __m256i*>(kQuadPerm[m4]));
      const __m256 packed = _mm256_permutevar8x32_ps(_mm256_castpd_ps(v), idx);
      _mm256_storeu_pd(out + o, _mm256_castps_pd(packed));
      o += static_cast<index_t>(std::popcount(m4));
    }
  }
}

void compress_avx2_f(const float* acc, const rowmask_t* mask_c, float* out) {
  index_t o = 0;
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    const std::uint64_t w = pack_rowmask_word(mask_c + wi * kRowsPerMaskWord);
    if (w == 0) continue;
    const float* acc_w = acc + static_cast<std::size_t>(wi) * (kRowsPerMaskWord * kTileDim);
    for (int k = 0; k < 8; ++k) {
      const std::uint64_t m8 = (w >> (8 * k)) & 0xFFu;
      if (m8 == 0) continue;
      // Expand the 8-bit mask to a byte mask, extract the selected lane
      // ids from the identity byte sequence, widen to dword indices.
      const std::uint64_t spread = _pdep_u64(m8, 0x0101010101010101ull) * 0xFFu;
      const std::uint64_t ids = _pext_u64(0x0706050403020100ull, spread);
      const __m256i idx =
          _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(static_cast<long long>(ids)));
      const __m256 v = _mm256_loadu_ps(acc_w + 8 * k);
      _mm256_storeu_ps(out + o, _mm256_permutevar8x32_ps(v, idx));
      o += static_cast<index_t>(std::popcount(m8));
    }
  }
}

void materialize_avx2(const rowmask_t* mask_c, std::uint8_t* row_idx,
                      std::uint8_t* col_idx) {
  // Stage into padded locals so each row can use a full-width store (16
  // pad bytes absorb the overshoot at n up to 240), then copy exactly n
  // bytes out — row_idx/col_idx point into C's shared arrays where an
  // over-wide store would race the neighbouring tile.
  std::uint8_t rows[kTileNnzMax + 16];
  std::uint8_t cols[kTileNnzMax + 16];
  index_t n = 0;
  for (index_t r = 0; r < kTileDim; ++r) {
    const std::uint32_t m = mask_c[r];
    if (m == 0) continue;
    // Nibble ids of the set bits, packed low: bit i of m selects nibble i
    // of the identity 0xFEDC...3210, then each nibble spreads to a byte.
    const std::uint64_t spread = _pdep_u64(m, 0x1111111111111111ull) * 0xFu;
    const std::uint64_t ids = _pext_u64(0xFEDCBA9876543210ull, spread);
    const std::uint64_t lo = _pdep_u64(ids & 0xFFFFFFFFull, 0x0F0F0F0F0F0F0F0Full);
    const std::uint64_t hi = _pdep_u64(ids >> 32, 0x0F0F0F0F0F0F0F0Full);
    std::memcpy(cols + n, &lo, sizeof(lo));
    std::memcpy(cols + n + 8, &hi, sizeof(hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(rows + n),
                     _mm_set1_epi8(static_cast<char>(r)));
    n += popcount16(mask_c[r]);
  }
  std::memcpy(row_idx, rows, static_cast<std::size_t>(n));
  std::memcpy(col_idx, cols, static_cast<std::size_t>(n));
}

constexpr SymbolicOps kSym = {&mask_or_avx2, &derive_avx2};
constexpr NumericOps kNum = {&compress_avx2_d, &compress_avx2_f, &materialize_avx2};

}  // namespace

namespace detail {
LevelKernels avx2_kernels() { return {&kSym, &kNum}; }
}  // namespace detail

}  // namespace tsg::simd

#else  // stub body: toolchain could not target AVX2 (e.g. non-x86)

namespace tsg::simd::detail {
LevelKernels avx2_kernels() { return {nullptr, nullptr}; }
}  // namespace tsg::simd::detail

#endif
