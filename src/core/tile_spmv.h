// Sparse matrix-vector multiplication on the tile format — the companion
// kernel of the paper's TileSpMV (Niu et al., IPDPS'21, cited as [94]).
// Having SpMV on the same storage means applications that chain SpGEMMs
// with SpMVs (AMG cycles: coarse-grid products *and* smoothing) never leave
// the tiled format.
#pragma once

#include "core/tile_format.h"

namespace tsg {

/// y = A*x on a tile-format matrix. One task processes one tile row, so no
/// atomics are needed on y.
template <class T>
void tile_spmv(const TileMatrix<T>& a, const tracked_vector<T>& x, tracked_vector<T>& y);

extern template void tile_spmv(const TileMatrix<double>&, const tracked_vector<double>&,
                               tracked_vector<double>&);
extern template void tile_spmv(const TileMatrix<float>&, const tracked_vector<float>&,
                               tracked_vector<float>&);

}  // namespace tsg
