// Pooled workspace for the TileSpGEMM pipeline.
//
// Every tile_spgemm() call needs the same family of scratch buffers: the
// column-major view of B's tile layout, the symbolic tile structure of C,
// step 1's per-tile-row column lists, the cost/schedule arrays of the
// binned scheduler, and per-thread buffers (intersection scratch, pair
// cache, staged fused values, the stamped tile set). On the GPU all of
// this is either on-chip or allocated once per launch; on the CPU the
// repeated malloc/free of these buffers dominates the iterated workloads
// (AMG Galerkin chains, Markov clustering). SpgemmWorkspace owns all of
// them with capacity-preserving reuse: a SpgemmContext keeps one instance
// per value type and every run() clears sizes but keeps capacity, so
// steady-state iterations allocate (almost) only the output matrix.
//
// The tracked buffers still report through MemoryTracker, so Fig. 9 style
// peak accounting sees the pool exactly like any other workspace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/cancellation.h"
#include "core/intersect.h"
#include "core/step1.h"
#include "core/tile_format.h"

namespace tsg {

namespace detail {

/// Byte footprint of a vector's capacity with the element size widened to
/// std::size_t before the multiply. capacity() is already size_t, but every
/// footprint sum in this header goes through here so the widening (and the
/// place to audit it) is explicit rather than re-derived per call site.
template <class Vec>
constexpr std::size_t capacity_bytes(const Vec& v) {
  return v.capacity() * static_cast<std::size_t>(sizeof(typename Vec::value_type));
}

/// Location of a per-tile record inside a per-thread buffer: step 2 hands
/// each output tile to exactly one thread, which appends the tile's pairs
/// (or staged values) to its own buffer and notes where they landed.
struct TileSlot {
  std::uint32_t thread = 0;
  offset_t offset = 0;
  std::uint32_t count = 0;
};

/// Sentinel `thread` value marking a pair_slot entry whose tile was *not*
/// cached (its cost bin is below the plan's cache threshold, so step 3
/// falls back to the paper's recompute policy for it). Distinct from a
/// cached-but-empty slot ({tid, off, 0}), which step 3 may consume as an
/// empty pair list without re-intersecting.
inline constexpr std::uint32_t kTileSlotUncached = 0xFFFFFFFFu;

static_assert(std::is_trivially_copyable_v<TileSlot>,
              "TileSlot arrays are assign()-filled and copied per chunk");

/// Stamped set of tile columns, reused across tile rows without clearing:
/// bumping the stamp invalidates every entry in O(1).
struct StampedTileSet {
  std::vector<std::uint32_t> seen;
  std::vector<index_t> cols;
  std::uint32_t stamp = 0;

  void prepare(index_t width) {
    if (seen.size() < static_cast<std::size_t>(width)) {
      seen.assign(static_cast<std::size_t>(width), 0);
      stamp = 0;
    }
    ++stamp;
    cols.clear();
  }

  void insert(index_t c) {
    if (seen[static_cast<std::size_t>(c)] != stamp) {
      seen[static_cast<std::size_t>(c)] = stamp;
      cols.push_back(c);
    }
  }

  std::size_t bytes() const { return capacity_bytes(seen) + capacity_bytes(cols); }
};

}  // namespace detail

/// Per-call execution schedule handed to steps 2 and 3 by SpgemmContext.
/// `order`, when non-null, is a permutation of [0, numtiles) that both
/// steps follow instead of the natural tile order — the cost-binned
/// scheduler places heavy bins first so the long-pole tiles are dispatched
/// before the dynamically scheduled loop runs out of parallel slack.
struct ExecutionPlan {
  const offset_t* order = nullptr;  ///< visit order over C tiles; null = natural
  /// Per-tile cost bin (the scheduler's ws.cost_bin), null when binning is
  /// off. Lets the pair cache be selected per cost bin: re-intersecting a
  /// light tile costs less than staging and reloading its pairs, so only
  /// bins >= cache_min_bin record pairs; the rest keep the paper's
  /// recompute policy. Results are bit-identical either way.
  const offset_t* tile_bin = nullptr;
  bool cache_pairs = false;         ///< record matched pairs for step 3
  int cache_min_bin = 0;            ///< lowest cost bin that caches pairs
  bool fuse_light = false;          ///< fuse step 3 into step 2 for light tiles
  /// Fallback nnz cap for fusing when binning is off (tile_bin == null).
  index_t fuse_threshold = kAccumulatorThreshold;
  /// Highest cost bin the fused step-2→3 path handles when binning is on:
  /// whole bins fuse, so the decision depends only on scheduling cost (the
  /// matched-list lengths), not on the symbolic result. Bins 0..1 stage at
  /// most kTileNnzMax values per tile, which the workspace already bounds.
  int fuse_max_bin = 1;
  /// Cooperative cancellation/deadline for this call. Default token is
  /// inert (one null test per check). Parallel bodies in src/core must not
  /// throw (`throw-in-parallel`), so steps 2/3 poll it and *skip* remaining
  /// tiles; the serial pipeline layer converts the latched reason into a
  /// kCancelled/kDeadlineExceeded Error with balanced accounting. Also the
  /// liveness channel: note_progress() at bin/chunk boundaries feeds the
  /// service watchdog.
  CancelToken cancel;

  /// Whether tile `t` records its matched pairs for step 3.
  bool caches_tile(offset_t t) const {
    return cache_pairs &&
           (tile_bin == nullptr ||
            tile_bin[static_cast<std::size_t>(t)] >= static_cast<offset_t>(cache_min_bin));
  }

  /// Whether tile `t` (with `nnz` symbolic nonzeros) runs the fused
  /// step-2→3 path: per cost bin when binning is on, by nnz otherwise.
  bool fuses_tile(offset_t t, index_t nnz) const {
    if (!fuse_light || nnz <= 0) return false;
    if (tile_bin != nullptr) {
      return tile_bin[static_cast<std::size_t>(t)] <= static_cast<offset_t>(fuse_max_bin);
    }
    return nnz <= fuse_threshold;
  }
};

/// All reusable scratch of one SpgemmContext for one value type.
template <class T>
struct SpgemmWorkspace {
  /// Buffers owned by one worker thread. Tiles are visited by exactly one
  /// thread, so appends need no synchronisation; per-tile TileSlot records
  /// say which thread's buffer holds a tile's data. Cache-line aligned:
  /// the vector headers are written on every append, and adjacent slots
  /// sharing a line would false-share across threads (the thread_local
  /// buffers this pool replaced got that isolation for free).
  struct alignas(128) ThreadSlot {
    std::vector<MatchedPair> pairs;     ///< intersection scratch (per visit)
    tracked_vector<MatchedPair> cache;  ///< matched pairs kept for step 3
    tracked_vector<T> staged;           ///< fused-path values staged in step 2
    detail::StampedTileSet sym;         ///< step-1 stamped column set

    std::size_t bytes() const {
      return detail::capacity_bytes(pairs) + detail::capacity_bytes(cache) +
             detail::capacity_bytes(staged) + sym.bytes();
    }
  };

  // One slot per worker; adjacent slots must not share a cache line or the
  // per-append header writes false-share across threads.
  static_assert(alignof(ThreadSlot) >= 128,
                "ThreadSlot must keep its cache-line isolation");
  static_assert(kAccumulatorThreshold <= kTileNnzMax,
                "the fused path stages at most one full tile of values");

  TileLayoutCsc b_csc;        ///< column-major view of B's tile layout
  TileStructure structure;    ///< step-1 tile structure of C
  std::vector<std::vector<index_t>> step1_rows;  ///< step-1 per-tile-row columns
  tracked_vector<offset_t> cost_bin;  ///< per-tile cost bin (scheduler scratch)
  tracked_vector<offset_t> schedule;  ///< binned visit order over C tiles
  tracked_vector<detail::TileSlot> pair_slot;    ///< per tile, iff cache_pairs
  tracked_vector<detail::TileSlot> staged_slot;  ///< per tile, iff fuse_light
  std::vector<ThreadSlot> slots;      ///< one per worker thread
  /// Per-call cancellation token for step 1, which runs before an
  /// ExecutionPlan exists (the plan carries the token for steps 2/3).
  /// Stamped by SpgemmContext::run_impl at call entry; inert by default.
  CancelToken cancel;

  /// Grow (never shrink) the per-thread slot array. Must be called before
  /// any parallel section that indexes slots by worker_rank().
  void ensure_threads(int n) {
    if (static_cast<int>(slots.size()) < n) slots.resize(static_cast<std::size_t>(n));
  }

  ThreadSlot& slot(int tid) { return slots[static_cast<std::size_t>(tid)]; }

  /// Reset per-call contents, keeping every buffer's capacity. Also drops
  /// the previous call's cancellation token: a token tripped by request N
  /// must never silently skip tiles of request N+1 on a reused context
  /// (the pipeline re-stamps its own token right after begin_call()).
  void begin_call() {
    for (ThreadSlot& s : slots) {
      s.cache.clear();
      s.staged.clear();
    }
    pair_slot.clear();
    staged_slot.clear();
    cancel = CancelToken{};
  }

  /// Bytes currently held by the pool (capacities, tracked and untracked) —
  /// the high-water mark the reuse tests pin down.
  std::size_t bytes() const {
    std::size_t total = detail::capacity_bytes(b_csc.col_ptr) +
                        detail::capacity_bytes(b_csc.row_idx) +
                        detail::capacity_bytes(b_csc.tile_id) +
                        detail::capacity_bytes(structure.tile_ptr) +
                        detail::capacity_bytes(structure.tile_col_idx) +
                        detail::capacity_bytes(structure.tile_row_idx) +
                        detail::capacity_bytes(cost_bin) + detail::capacity_bytes(schedule) +
                        detail::capacity_bytes(pair_slot) + detail::capacity_bytes(staged_slot);
    for (const std::vector<index_t>& row : step1_rows) {
      total += detail::capacity_bytes(row);
    }
    total += step1_rows.capacity() * sizeof(std::vector<index_t>);
    for (const ThreadSlot& s : slots) total += s.bytes();
    return total;
  }

  /// Drop every pooled buffer (used by SpgemmContext::release_workspaces).
  void release() { *this = SpgemmWorkspace{}; }
};

}  // namespace tsg
