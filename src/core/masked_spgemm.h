// Masked SpGEMM on the tile format: C = (A*B) .* structure(M).
//
// The GraphBLAS-style masked product is the natural extension of
// TileSpGEMM for the graph workloads the paper motivates (triangle
// counting computes (L*L).*L). The mask composes beautifully with the tile
// design: M's tile layout prunes whole output tiles before any arithmetic,
// and M's 16-bit row masks AND into the step-2 symbolic masks, so products
// outside the mask are never accumulated and the dense intermediate
// (L*L) is never materialised.
#pragma once

#include "core/step1.h"
#include "core/tile_spgemm.h"

namespace tsg {

/// C = (A*B) .* structure(mask). Values come from the product; entries of
/// the product outside the mask's pattern are dropped (and never computed).
/// Transient-context wrapper around SpgemmContext::run_masked — iterated
/// callers should hold a context instead (see spgemm_context.h).
template <class T>
TileMatrix<T> tile_spgemm_masked(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                 const TileMatrix<T>& mask,
                                 const TileSpgemmOptions& options = {});

/// CSR convenience wrapper.
template <class T>
Csr<T> spgemm_tile_masked(const Csr<T>& a, const Csr<T>& b, const Csr<T>& mask,
                          const TileSpgemmOptions& options = {});

extern template TileMatrix<double> tile_spgemm_masked(const TileMatrix<double>&,
                                                      const TileMatrix<double>&,
                                                      const TileMatrix<double>&,
                                                      const TileSpgemmOptions&);
extern template TileMatrix<float> tile_spgemm_masked(const TileMatrix<float>&,
                                                     const TileMatrix<float>&,
                                                     const TileMatrix<float>&,
                                                     const TileSpgemmOptions&);
extern template Csr<double> spgemm_tile_masked(const Csr<double>&, const Csr<double>&,
                                               const Csr<double>&, const TileSpgemmOptions&);
extern template Csr<float> spgemm_tile_masked(const Csr<float>&, const Csr<float>&,
                                              const Csr<float>&, const TileSpgemmOptions&);

}  // namespace tsg
