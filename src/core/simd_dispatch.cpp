#include "core/simd_dispatch.h"

#include <array>
#include <cstdlib>

#include "core/tile_kernels.h"
#include "obs/log.h"

namespace tsg::simd {
namespace {

// ---------------------------------------------------------------------------
// kScalar: the per-row / per-bit reference kernels. These mirror the
// SymbolicKernel::kScalar branch of step 2 and the per-row materialize
// oracle — every other level must be memcmp-identical to them.

void mask_or_scalar(const rowmask_t* mask_a, const rowmask_t* mask_b,
                    std::uint64_t cm[kTileMaskWords]) {
  for (index_t r = 0; r < kTileDim; ++r) {
    unsigned remaining = mask_a[r];
    rowmask_t acc = 0;
    while (remaining != 0) {
      acc = static_cast<rowmask_t>(acc | mask_b[std::countr_zero(remaining)]);
      remaining &= remaining - 1;
    }
    cm[r / kRowsPerMaskWord] |= static_cast<std::uint64_t>(acc)
                                << (16 * (r % kRowsPerMaskWord));
  }
}

index_t derive_scalar(const std::uint64_t cm[kTileMaskWords], rowmask_t* mask_out,
                      std::uint8_t* row_ptr_out) {
  index_t count = 0;
  for (index_t r = 0; r < kTileDim; ++r) {
    const rowmask_t m = unpack_rowmask(cm[r / kRowsPerMaskWord], r % kRowsPerMaskWord);
    mask_out[r] = m;
    row_ptr_out[r] = static_cast<std::uint8_t>(count);
    count += popcount16(m);
  }
  return count;
}

template <class T>
void compress_scalar(const T* acc, const rowmask_t* mask_c, T* out) {
  index_t o = 0;
  for (index_t r = 0; r < kTileDim; ++r) {
    unsigned m = mask_c[r];
    const T* row = acc + static_cast<std::size_t>(r) * kTileDim;
    while (m != 0) {
      out[o++] = row[std::countr_zero(m)];
      m &= m - 1;
    }
  }
}

void compress_scalar_d(const double* acc, const rowmask_t* mask_c, double* out) {
  compress_scalar<double>(acc, mask_c, out);
}
void compress_scalar_f(const float* acc, const rowmask_t* mask_c, float* out) {
  compress_scalar<float>(acc, mask_c, out);
}

// ---------------------------------------------------------------------------
// kSwar: PR 5's word-packed kernels over uint64[4] (common/bitops.h),
// lifted out of step2.cpp's inline hybrid so they can stand as a table
// entry. Unlike the inline path (which skips all-zero words into
// pre-zeroed output), the table contract writes all 16 entries.

void mask_or_swar(const rowmask_t* mask_a, const rowmask_t* mask_b,
                  std::uint64_t cm[kTileMaskWords]) {
  std::uint64_t wa[kTileMaskWords];
  pack_tile_words(mask_a, wa);
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    const std::uint64_t w = wa[wi];
    if (w == 0) continue;
    for (int j = 0; j < kRowsPerMaskWord; ++j) {
      unsigned m = static_cast<rowmask_t>(w >> (16 * j));
      if (m == 0) continue;
      rowmask_t acc = 0;
      do {
        acc = static_cast<rowmask_t>(acc | mask_b[std::countr_zero(m)]);
        m &= m - 1;
      } while (m != 0);
      cm[wi] |= static_cast<std::uint64_t>(acc) << (16 * j);
    }
  }
}

index_t derive_swar(const std::uint64_t cm[kTileMaskWords], rowmask_t* mask_out,
                    std::uint8_t* row_ptr_out) {
  index_t count = 0;
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    const std::uint64_t w = cm[wi];
    const std::uint64_t excl = lane_prefix_sums16(lane_popcounts16(w)) << 16;
    for (int j = 0; j < kRowsPerMaskWord; ++j) {
      mask_out[wi * kRowsPerMaskWord + j] = unpack_rowmask(w, j);
      row_ptr_out[wi * kRowsPerMaskWord + j] =
          static_cast<std::uint8_t>(count + ((excl >> (16 * j)) & 0xFFFFu));
    }
    count += static_cast<index_t>(std::popcount(w));
  }
  return count;
}

template <class T>
void compress_swar(const T* acc, const rowmask_t* mask_c, T* out) {
  index_t o = 0;
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    std::uint64_t w = pack_rowmask_word(mask_c + wi * kRowsPerMaskWord);
    const T* acc_w = acc + static_cast<std::size_t>(wi) * (kRowsPerMaskWord * kTileDim);
    while (w != 0) {
      out[o++] = acc_w[std::countr_zero(w)];
      w &= w - 1;
    }
  }
}

void compress_swar_d(const double* acc, const rowmask_t* mask_c, double* out) {
  compress_swar<double>(acc, mask_c, out);
}
void compress_swar_f(const float* acc, const rowmask_t* mask_c, float* out) {
  compress_swar<float>(acc, mask_c, out);
}

constexpr SymbolicOps kScalarSym = {&mask_or_scalar, &derive_scalar};
constexpr SymbolicOps kSwarSym = {&mask_or_swar, &derive_swar};
constexpr NumericOps kScalarNum = {&compress_scalar_d, &compress_scalar_f,
                                   &::tsg::detail::materialize_tile_indices_scalar};
constexpr NumericOps kSwarNum = {&compress_swar_d, &compress_swar_f,
                                 &::tsg::detail::materialize_tile_indices};

// ---------------------------------------------------------------------------
// CPUID probes. __builtin_cpu_supports is GCC/Clang on x86; everywhere
// else the AVX levels simply never become available.

bool cpu_has_avx2() {
#if (defined(__GNUC__) || defined(__clang__)) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2");
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if (defined(__GNUC__) || defined(__clang__)) && (defined(__x86_64__) || defined(__i386__))
  // The avx512 TU is also compiled with -mavx2 -mbmi2, so require those
  // CPU bits too (every AVX-512 part has them, but the gate should match
  // what the code object may contain, not what shipping silicon happens
  // to pair).
  return cpu_has_avx2() && __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

struct LevelTables {
  std::array<SymbolicOps, kLevelCount> sym;
  std::array<NumericOps, kLevelCount> num;
};

/// Assemble the per-level tables once. An AVX level that is unavailable
/// (stub TU or missing CPU bits) inherits the next-lower table so even an
/// unclamped lookup never lands on a null pointer or an illegal opcode.
const LevelTables& tables() {
  static const LevelTables t = [] {
    LevelTables out;
    out.sym[0] = kScalarSym;
    out.num[0] = kScalarNum;
    out.sym[1] = kSwarSym;
    out.num[1] = kSwarNum;
    out.sym[2] = out.sym[1];
    out.num[2] = out.num[1];
    if (const detail::LevelKernels k = detail::avx2_kernels();
        k.sym != nullptr && k.num != nullptr && cpu_has_avx2()) {
      out.sym[2] = *k.sym;
      out.num[2] = *k.num;
    }
    out.sym[3] = out.sym[2];
    out.num[3] = out.num[2];
    if (const detail::LevelKernels k = detail::avx512_kernels();
        k.sym != nullptr && k.num != nullptr && cpu_has_avx512()) {
      out.sym[3] = *k.sym;
      out.num[3] = *k.num;
    }
    return out;
  }();
  return t;
}

std::size_t level_index(Level level) {
  const auto i = static_cast<std::size_t>(level);
  return i < static_cast<std::size_t>(kLevelCount) ? i : 0;
}

}  // namespace

const SymbolicOps& symbolic_ops(Level level) { return tables().sym[level_index(level)]; }
const NumericOps& numeric_ops(Level level) { return tables().num[level_index(level)]; }

bool compiled_avx2() { return detail::avx2_kernels().sym != nullptr; }
bool compiled_avx512() { return detail::avx512_kernels().sym != nullptr; }

bool level_available(Level level) {
  switch (level) {
    case Level::kScalar:
    case Level::kSwar: return true;
    case Level::kAvx2: return compiled_avx2() && cpu_has_avx2();
    case Level::kAvx512: return compiled_avx512() && cpu_has_avx512();
  }
  return false;
}

Level clamp_to_available(Level requested) {
  if (requested >= Level::kAvx512 && level_available(Level::kAvx512)) return Level::kAvx512;
  if (requested >= Level::kAvx2 && level_available(Level::kAvx2)) return Level::kAvx2;
  return requested >= Level::kSwar ? Level::kSwar : Level::kScalar;
}

Level detected_level() {
  // clamp_to_available never drops a >=kSwar request below kSwar, so the
  // detected default is always at least the word-packed kernels.
  static const Level probed = clamp_to_available(Level::kAvx512);
  return probed;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSwar: return "swar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

Expected<Level> parse_level(std::string_view text) {
  if (text == "scalar") return Level::kScalar;
  if (text == "swar") return Level::kSwar;
  if (text == "avx2") return Level::kAvx2;
  if (text == "avx512") return Level::kAvx512;
  return Status::invalid_argument("unknown SIMD level '" + std::string(text) +
                                  "' (expected scalar, swar, avx2, or avx512)");
}

Level active_level() {
  // Read TSG_SIMD directly (not via Config::from_env) so forcing a level
  // also reaches free-function kernel entry points that never construct a
  // Config; the knob stays registered in kKnownEnvKnobs and documented as
  // the one exception.
  static const Level cached = [] {
    const char* env = std::getenv("TSG_SIMD");
    if (env == nullptr || *env == '\0') return detected_level();
    const Expected<Level> parsed = parse_level(env);
    if (!parsed.ok()) {
      TSG_LOG_WARN("simd.bad_level", {"value", env},
                   {"hint", "expected scalar|swar|avx2|avx512; using auto-detection"});
      return detected_level();
    }
    const Level clamped = clamp_to_available(*parsed);
    if (clamped != *parsed) {
      TSG_LOG_WARN("simd.level_clamped", {"requested", level_name(*parsed)},
                   {"effective", level_name(clamped)},
                   {"hint", "level not supported by this build/host"});
    }
    return clamped;
  }();
  return cached;
}

}  // namespace tsg::simd
