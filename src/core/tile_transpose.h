// Transpose directly in the tile format.
//
// The artifact's C = A*A^T mode materialises A^T; doing that without
// leaving the tile format keeps AA^T chains conversion-free: the tile grid
// transposes through the column-major layout view, and each 16x16 tile
// transposes locally (masks are recomputed from the flipped coordinates).
#pragma once

#include "core/tile_format.h"

namespace tsg {

template <class T>
TileMatrix<T> tile_transpose(const TileMatrix<T>& a);

extern template TileMatrix<double> tile_transpose(const TileMatrix<double>&);
extern template TileMatrix<float> tile_transpose(const TileMatrix<float>&);

}  // namespace tsg
