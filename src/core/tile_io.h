// Binary serialisation of the sparse tile format.
//
// The paper's timing model assumes operands are "already stored in the
// tiled format" (Section 4.6) — which implies applications persist tiled
// matrices between runs. This module provides that: a versioned,
// self-describing binary container for TileMatrix, so the Fig. 12
// conversion cost is paid once ever, not once per process.
#pragma once

#include <iosfwd>
#include <string>

#include "core/tile_format.h"

namespace tsg {

/// Write a tile matrix to a binary stream. Throws std::runtime_error on
/// stream failure.
template <class T>
void write_tile_binary(std::ostream& out, const TileMatrix<T>& m);

/// Read a tile matrix from a binary stream. Validates the header (magic,
/// version, value-type tag) and the structural invariants of the payload;
/// throws std::runtime_error on any mismatch.
template <class T>
TileMatrix<T> read_tile_binary(std::istream& in);

template <class T>
void write_tile_file(const std::string& path, const TileMatrix<T>& m);

template <class T>
TileMatrix<T> read_tile_file(const std::string& path);

extern template void write_tile_binary(std::ostream&, const TileMatrix<double>&);
extern template void write_tile_binary(std::ostream&, const TileMatrix<float>&);
extern template TileMatrix<double> read_tile_binary(std::istream&);
extern template TileMatrix<float> read_tile_binary(std::istream&);
extern template void write_tile_file(const std::string&, const TileMatrix<double>&);
extern template void write_tile_file(const std::string&, const TileMatrix<float>&);
extern template TileMatrix<double> read_tile_file(const std::string&);
extern template TileMatrix<float> read_tile_file(const std::string&);

}  // namespace tsg
