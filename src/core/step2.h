// Step 2 of TileSpGEMM (Algorithm 2, Figures 4-5): for every tile of C,
// gather the matched (A_ik, B_kj) tile pairs by set intersection, OR the
// row masks of B selected by A's nonzeros into the C tile masks, and derive
// the per-tile nonzero count and local row pointer. All per-tile state is
// bounded by 16 masks / 256 nonzeros and lives on the stack — no global
// intermediate space, which is the paper's answer to performance issue #2.
#pragma once

#include <vector>

#include "core/intersect.h"
#include "core/options.h"
#include "core/step1.h"

namespace tsg {

namespace detail {
/// Matched pairs recorded by step 2 when options.cache_pairs is set. Each
/// output tile is processed by exactly one thread, so pairs live in that
/// thread's buffer; the per-tile record points into it.
struct PairCache {
  struct Slot {
    std::uint32_t thread = 0;
    offset_t offset = 0;
    std::uint32_t count = 0;
  };
  std::vector<tracked_vector<MatchedPair>> per_thread;  // tracked: it IS
                                                        // global workspace
  tracked_vector<Slot> tile_slot;  ///< one per output tile

  bool enabled() const { return !tile_slot.empty(); }
  const MatchedPair* pairs_of(offset_t tile, std::uint32_t& count) const {
    const Slot& s = tile_slot[static_cast<std::size_t>(tile)];
    count = s.count;
    return per_thread[s.thread].data() + s.offset;
  }
};
}  // namespace detail

/// Per-tile symbolic results for C.
struct Step2Result {
  tracked_vector<offset_t> tile_nnz;    ///< size numtiles+1, offsets
  tracked_vector<std::uint8_t> row_ptr; ///< numtiles*16 local row pointers
  tracked_vector<rowmask_t> mask;       ///< numtiles*16 row masks
  detail::PairCache pair_cache;         ///< filled iff options.cache_pairs

  offset_t nnz() const { return tile_nnz.empty() ? 0 : tile_nnz.back(); }
};

/// Symbolic per-tile pass. `b_csc` is the column-major view of B's tile
/// layout (tileColPtr_B / tileRowidx_B in Algorithm 2).
template <class T>
Step2Result step2_symbolic(const TileMatrix<T>& a, const TileMatrix<T>& b,
                           const TileLayoutCsc& b_csc, const TileStructure& structure,
                           const TileSpgemmOptions& options);

extern template Step2Result step2_symbolic(const TileMatrix<double>&, const TileMatrix<double>&,
                                           const TileLayoutCsc&, const TileStructure&,
                                           const TileSpgemmOptions&);
extern template Step2Result step2_symbolic(const TileMatrix<float>&, const TileMatrix<float>&,
                                           const TileLayoutCsc&, const TileStructure&,
                                           const TileSpgemmOptions&);

}  // namespace tsg
