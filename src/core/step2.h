// Step 2 of TileSpGEMM (Algorithm 2, Figures 4-5): for every tile of C,
// gather the matched (A_ik, B_kj) tile pairs by set intersection, OR the
// row masks of B selected by A's nonzeros into the C tile masks, and derive
// the per-tile nonzero count and local row pointer. All per-tile state is
// bounded by 16 masks / 256 nonzeros and lives on the stack — no global
// intermediate space, which is the paper's answer to performance issue #2.
//
// Under an ExecutionPlan the pass can also (a) visit tiles in the binned
// heavy-first order, (b) record each tile's matched pairs in the workspace
// pair cache for step 3, and (c) fuse the numeric phase for light tiles:
// once a tile's masks are known its values are accumulated immediately and
// staged in the workspace, so step 3 only copies them out.
#pragma once

#include <cstdint>

#include "core/options.h"
#include "core/step1.h"

namespace tsg {

struct ExecutionPlan;
template <class T>
struct SpgemmWorkspace;

/// Per-tile symbolic results for C. The three arrays are fresh allocations
/// (they are moved into the output matrix); every scratch buffer the pass
/// uses comes from the workspace.
struct Step2Result {
  tracked_vector<offset_t> tile_nnz;    ///< size numtiles+1, offsets
  tracked_vector<std::uint8_t> row_ptr; ///< numtiles*16 local row pointers
  tracked_vector<rowmask_t> mask;       ///< numtiles*16 row masks
  offset_t fused_tiles = 0;             ///< tiles whose values were staged

  offset_t nnz() const { return tile_nnz.empty() ? 0 : tile_nnz.back(); }
};

/// Symbolic per-tile pass. `b_csc` is the column-major view of B's tile
/// layout (tileColPtr_B / tileRowidx_B in Algorithm 2). Pair-cache and
/// fused-value records land in `ws`; `plan` controls visit order, caching,
/// and fusion.
template <class T>
Step2Result step2_symbolic(const TileMatrix<T>& a, const TileMatrix<T>& b,
                           const TileLayoutCsc& b_csc, const TileStructure& structure,
                           const TileSpgemmOptions& options, SpgemmWorkspace<T>& ws,
                           const ExecutionPlan& plan);

extern template Step2Result step2_symbolic(const TileMatrix<double>&, const TileMatrix<double>&,
                                           const TileLayoutCsc&, const TileStructure&,
                                           const TileSpgemmOptions&, SpgemmWorkspace<double>&,
                                           const ExecutionPlan&);
extern template Step2Result step2_symbolic(const TileMatrix<float>&, const TileMatrix<float>&,
                                           const TileLayoutCsc&, const TileStructure&,
                                           const TileSpgemmOptions&, SpgemmWorkspace<float>&,
                                           const ExecutionPlan&);

}  // namespace tsg
