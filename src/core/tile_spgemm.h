// TileSpGEMM — the paper's contribution: C = A*B where A, B, C are stored
// as sparse 16x16 tiles. Three steps (Section 3.3):
//   1. symbolic SpGEMM on the tile layouts -> tile structure of C
//   2. per-tile set intersection + bit-mask symbolic -> nnz / row pointers /
//      masks of every C tile; allocate C once
//   3. numeric phase with an adaptive sparse/dense accumulator
//
// Public entry points:
//   * SpgemmContext  — the execution engine (spgemm_context.h): pooled
//                      workspaces, cost-binned scheduling, reusable across
//                      calls. Preferred for iterated workloads.
//   * tile_spgemm()  — tile-format in/out through a transient context, with
//                      per-step timings (Fig. 10)
//   * spgemm_tile()  — CSR convenience wrapper (converts, multiplies,
//                      converts back), the drop-in comparator used by the
//                      benches and tests
#pragma once

#include <array>
#include <cstddef>
#include <memory>

#include "core/step3.h"
#include "core/tile_convert.h"
#include "matrix/csr.h"

namespace tsg::obs {
struct MetricsSnapshot;
}  // namespace tsg::obs

namespace tsg {

/// Per-step wall-clock attribution, matching the paper's Fig. 10 categories
/// plus the scheduling/fusion counters of the SpgemmContext engine.
struct TileSpgemmTimings {
  double step1_ms = 0.0;    ///< tile-structure symbolic SpGEMM
  double step2_ms = 0.0;    ///< per-tile symbolic (intersection + masks)
  double step3_ms = 0.0;    ///< numeric accumulation
  double alloc_ms = 0.0;    ///< memory allocation for C (and views)
  double plan_ms = 0.0;     ///< cost model + binned schedule construction
  double convert_ms = 0.0;  ///< CSR<->tile conversions (zero for tile-native runs)

  /// Tiles per cost bin (bin 0 lightest); all zero when binning is off.
  std::array<offset_t, kCostBins> bin_tiles{};
  offset_t scheduled_tiles = 0;     ///< C tiles visited by steps 2/3
  offset_t fused_tiles = 0;         ///< tiles resolved by the fused step-2+3 path
  /// Kernel dispatch level the run executed at (numeric value of
  /// simd::Level: 0 scalar, 1 swar, 2 avx2, 3 avx512).
  int simd_level = 0;
  std::size_t workspace_bytes = 0;  ///< pooled workspace footprint after the run
  /// Execution chunks the run was split into. 1 = single shot; >= 2 means
  /// the modeled device budget forced graceful degradation over C's tile
  /// rows (results are bit-identical either way).
  int chunks = 1;
  /// True when the estimated footprint exceeded the device budget and the
  /// run degraded to chunked execution (the Fig. 9 "completes where others
  /// fail" scenario, now enforced rather than merely modeled).
  bool budget_limited = false;
  /// True when the pair cache / fused staging was requested but dropped for
  /// this run because its footprint did not fit the device budget — the
  /// first stage of degradation, falling back to the paper's recompute
  /// policy before resorting to chunked execution.
  bool pair_cache_dropped = false;
  /// Registry activity of this run (counters/histograms as deltas, gauges
  /// as end-of-run values). Populated only when the context ran with
  /// metrics detail enabled (Config::with_metrics / TSG_METRICS); null
  /// otherwise — the always-on counters still accumulate in the global
  /// obs::MetricsRegistry either way.
  std::shared_ptr<const obs::MetricsSnapshot> metrics;

  /// Algorithm time: the paper's Fig. 10 categories plus plan construction.
  double core_ms() const {
    return step1_ms + step2_ms + step3_ms + alloc_ms + plan_ms;
  }
  /// End-to-end time including CSR<->tile conversion (Fig. 12's numerator
  /// plus denominator; conversion is excluded from the paper's algorithm
  /// timings, Section 4.6).
  double total_ms() const { return core_ms() + convert_ms; }
};

template <class T>
struct TileSpgemmResult {
  TileMatrix<T> c;
  TileSpgemmTimings timings;
};

/// The tiled SpGEMM on tile-format operands (transient SpgemmContext).
template <class T>
TileSpgemmResult<T> tile_spgemm(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                const TileSpgemmOptions& options = {});

/// CSR-to-CSR convenience wrapper. Conversion time is *not* part of the
/// algorithm (the paper assumes operands already live in tile format,
/// Section 4.6) but is reported in `timings->convert_ms`; pass `timings`
/// to retrieve the per-step breakdown.
template <class T>
Csr<T> spgemm_tile(const Csr<T>& a, const Csr<T>& b, const TileSpgemmOptions& options = {},
                   TileSpgemmTimings* timings = nullptr);

/// C = A * A^T entirely in tile format (the artifact's `-aat 1` mode): the
/// transpose is formed tile-natively, so the chain never touches CSR.
template <class T>
TileSpgemmResult<T> tile_spgemm_aat(const TileMatrix<T>& a,
                                    const TileSpgemmOptions& options = {});

extern template TileSpgemmResult<double> tile_spgemm(const TileMatrix<double>&,
                                                     const TileMatrix<double>&,
                                                     const TileSpgemmOptions&);
extern template TileSpgemmResult<float> tile_spgemm(const TileMatrix<float>&,
                                                    const TileMatrix<float>&,
                                                    const TileSpgemmOptions&);
extern template Csr<double> spgemm_tile(const Csr<double>&, const Csr<double>&,
                                        const TileSpgemmOptions&, TileSpgemmTimings*);
extern template Csr<float> spgemm_tile(const Csr<float>&, const Csr<float>&,
                                       const TileSpgemmOptions&, TileSpgemmTimings*);
extern template TileSpgemmResult<double> tile_spgemm_aat(const TileMatrix<double>&,
                                                         const TileSpgemmOptions&);
extern template TileSpgemmResult<float> tile_spgemm_aat(const TileMatrix<float>&,
                                                        const TileSpgemmOptions&);

}  // namespace tsg
