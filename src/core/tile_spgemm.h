// TileSpGEMM — the paper's contribution: C = A*B where A, B, C are stored
// as sparse 16x16 tiles. Three steps (Section 3.3):
//   1. symbolic SpGEMM on the tile layouts -> tile structure of C
//   2. per-tile set intersection + bit-mask symbolic -> nnz / row pointers /
//      masks of every C tile; allocate C once
//   3. numeric phase with an adaptive sparse/dense accumulator
//
// Public entry points:
//   * tile_spgemm()  — tile-format in/out, with per-step timings (Fig. 10)
//   * spgemm_tile()  — CSR convenience wrapper (converts, multiplies,
//                      converts back), the drop-in comparator used by the
//                      benches and tests
#pragma once

#include "core/step3.h"
#include "core/tile_convert.h"
#include "matrix/csr.h"

namespace tsg {

/// Per-step wall-clock attribution, matching the paper's Fig. 10 categories.
struct TileSpgemmTimings {
  double step1_ms = 0.0;  ///< tile-structure symbolic SpGEMM
  double step2_ms = 0.0;  ///< per-tile symbolic (intersection + masks)
  double step3_ms = 0.0;  ///< numeric accumulation
  double alloc_ms = 0.0;  ///< memory allocation for C (and views)

  double total_ms() const { return step1_ms + step2_ms + step3_ms + alloc_ms; }
};

template <class T>
struct TileSpgemmResult {
  TileMatrix<T> c;
  TileSpgemmTimings timings;
};

/// The tiled SpGEMM on tile-format operands.
template <class T>
TileSpgemmResult<T> tile_spgemm(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                const TileSpgemmOptions& options = {});

/// CSR-to-CSR convenience wrapper. Conversion time is *not* part of the
/// algorithm (the paper assumes operands already live in tile format,
/// Section 4.6); pass `timings` to retrieve the per-step breakdown.
template <class T>
Csr<T> spgemm_tile(const Csr<T>& a, const Csr<T>& b, const TileSpgemmOptions& options = {},
                   TileSpgemmTimings* timings = nullptr);

/// C = A * A^T entirely in tile format (the artifact's `-aat 1` mode): the
/// transpose is formed tile-natively, so the chain never touches CSR.
template <class T>
TileSpgemmResult<T> tile_spgemm_aat(const TileMatrix<T>& a,
                                    const TileSpgemmOptions& options = {});

extern template TileSpgemmResult<double> tile_spgemm(const TileMatrix<double>&,
                                                     const TileMatrix<double>&,
                                                     const TileSpgemmOptions&);
extern template TileSpgemmResult<float> tile_spgemm(const TileMatrix<float>&,
                                                    const TileMatrix<float>&,
                                                    const TileSpgemmOptions&);
extern template Csr<double> spgemm_tile(const Csr<double>&, const Csr<double>&,
                                        const TileSpgemmOptions&, TileSpgemmTimings*);
extern template Csr<float> spgemm_tile(const Csr<float>&, const Csr<float>&,
                                       const TileSpgemmOptions&, TileSpgemmTimings*);
extern template TileSpgemmResult<double> tile_spgemm_aat(const TileMatrix<double>&,
                                                         const TileSpgemmOptions&);
extern template TileSpgemmResult<float> tile_spgemm_aat(const TileMatrix<float>&,
                                                        const TileSpgemmOptions&);

}  // namespace tsg
