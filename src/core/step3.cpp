#include "core/step3.h"

#include <vector>

#include "common/parallel.h"
#include "core/simd_dispatch.h"
#include "core/spgemm_workspace.h"
#include "core/tile_kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsg {

template <class T>
void step3_numeric(const TileMatrix<T>& a, const TileMatrix<T>& b,
                   const TileLayoutCsc& b_csc, const TileStructure& structure,
                   const TileSpgemmOptions& options, TileMatrix<T>& c,
                   SpgemmWorkspace<T>& ws, const ExecutionPlan& plan) {
  const offset_t ntiles = structure.num_tiles();
  ws.ensure_threads(max_workers());
  const bool use_cache =
      plan.cache_pairs && ws.pair_slot.size() == static_cast<std::size_t>(ntiles);
  const bool use_staged = plan.fuse_light && plan.cache_pairs &&
                          ws.staged_slot.size() == static_cast<std::size_t>(ntiles);

  // Numeric kernel table, resolved once per call. Materialize is safe to
  // aim at C's shared arrays at every level (exact-store contract); the
  // dense compress only ever targets the local `slots` scratch.
  const simd::NumericOps& nops = simd::numeric_ops(effective_simd_level(options));

  // Per-tile detail instruments (see step2.cpp); the gate is read once per
  // call so the hot loop branches on a local bool.
  const bool detail_metrics = obs::metrics_detail_enabled();
  static obs::Counter& m_dense =
      obs::MetricsRegistry::instance().counter("spgemm.accumulator.dense");
  static obs::Counter& m_sparse =
      obs::MetricsRegistry::instance().counter("spgemm.accumulator.sparse");
  static obs::Histogram& m_visit_us = obs::MetricsRegistry::instance().histogram(
      "spgemm.tile_visit_us", {1, 2, 5, 10, 25, 50, 100, 1000});

  parallel_for(offset_t{0}, ntiles, [&](offset_t i) {
    // Guard, not inline observes: the staged and empty-tile paths leave
    // early and must still land in the duration histogram.
    struct VisitGuard {
      bool on;
      double start_us;
      obs::Histogram& hist;
      ~VisitGuard() {
        if (on) {
          hist.observe(static_cast<std::int64_t>(obs::TraceCollector::now_us() - start_us));
        }
      }
    } visit{detail_metrics, detail_metrics ? obs::TraceCollector::now_us() : 0.0, m_visit_us};
    // Cooperative cancellation, every 64th tile (see step2.cpp): skip the
    // tile, never throw. C's values for skipped tiles stay unwritten — the
    // pipeline layer discards the partial output when it converts the
    // latched reason.
    if ((i & 63) == 0) {
      plan.cancel.note_progress();
      if (plan.cancel.should_stop()) return;
    }
    const offset_t t = plan.order != nullptr ? plan.order[i] : i;
    const index_t tile_i = structure.tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tile_j = structure.tile_col_idx[static_cast<std::size_t>(t)];
    const index_t nnz_c = c.tile_nnz_of(t);
    const offset_t nz_base = c.tile_nnz[static_cast<std::size_t>(t)];
    const rowmask_t* mask_c = c.tile_mask(t);
    const std::uint8_t* row_ptr_c = c.row_ptr.data() + static_cast<std::size_t>(t) * kTileDim;

    // Materialise the local row/column indices from the masks; the mask bit
    // order is the storage order.
    nops.materialize(mask_c, c.row_idx.data() + nz_base, c.col_idx.data() + nz_base);
    if (nnz_c == 0) return;  // step 1 may keep tiles that turned out empty

    if (use_staged) {
      // Fused path: step 2 already accumulated this tile's values.
      const detail::TileSlot& s = ws.staged_slot[static_cast<std::size_t>(t)];
      if (s.count > 0) {
        const T* staged = ws.slot(static_cast<int>(s.thread)).staged.data() + s.offset;
        for (index_t k = 0; k < nnz_c; ++k) {
          c.val[static_cast<std::size_t>(nz_base + k)] = staged[k];
        }
        return;
      }
    }

    // Gather the matched pairs: a borrowed span from the step-2 cache when
    // this tile's cost bin recorded one, otherwise by re-running the
    // intersection (the paper's zero-global-memory choice, which the plan
    // keeps for light bins and the budget fallback).
    const MatchedPair* pair_data = nullptr;
    std::size_t pair_count = 0;
    bool cached = false;
    if (use_cache) {
      const detail::TileSlot& s = ws.pair_slot[static_cast<std::size_t>(t)];
      if (s.thread != detail::kTileSlotUncached) {
        pair_data = ws.slot(static_cast<int>(s.thread)).cache.data() + s.offset;
        pair_count = s.count;
        cached = true;
      }
    }
    if (!cached) {
      std::vector<MatchedPair>& pairs = ws.slot(worker_rank()).pairs;
      pairs.clear();
      const offset_t a_base = a.tile_ptr[tile_i];
      const index_t len_a = static_cast<index_t>(a.tile_ptr[tile_i + 1] - a_base);
      const offset_t b_base = b_csc.col_ptr[tile_j];
      const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
      intersect_tiles(a.tile_col_idx.data() + a_base, a_base, len_a,
                      b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                      options.intersect, pairs);
      pair_data = pairs.data();
      pair_count = pairs.size();
    }

    // Only the first nnz_c slots are ever read; zeroing the full 256 would
    // dominate the runtime of hyper-sparse-tile matrices (cop20k_A class).
    T slots[kTileNnzMax];
    for (index_t k = 0; k < nnz_c; ++k) slots[k] = T{};
    if (detail::use_dense_accumulator(options, nnz_c)) {
      detail::accumulate_pairs_dense(a, b, pair_data, pair_count, mask_c, slots, nops);
      if (detail_metrics) m_dense.inc();
    } else {
      detail::accumulate_pairs_sparse(a, b, pair_data, pair_count, mask_c, row_ptr_c, slots);
      if (detail_metrics) m_sparse.inc();
    }
    for (index_t k = 0; k < nnz_c; ++k) {
      c.val[static_cast<std::size_t>(nz_base + k)] = slots[k];
    }
  });
}

template void step3_numeric(const TileMatrix<double>&, const TileMatrix<double>&,
                            const TileLayoutCsc&, const TileStructure&,
                            const TileSpgemmOptions&, TileMatrix<double>&,
                            SpgemmWorkspace<double>&, const ExecutionPlan&);
template void step3_numeric(const TileMatrix<float>&, const TileMatrix<float>&,
                            const TileLayoutCsc&, const TileStructure&,
                            const TileSpgemmOptions&, TileMatrix<float>&,
                            SpgemmWorkspace<float>&, const ExecutionPlan&);

}  // namespace tsg
