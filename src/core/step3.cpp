#include "core/step3.h"

#include <vector>

#include "common/parallel.h"
#include "core/intersect.h"

namespace tsg {

namespace {

thread_local std::vector<MatchedPair> t_pairs;

/// Scatter products of all matched pairs into `slots` via popcount-rank
/// indexing (Algorithm 3 lines 4-12): the final position of column cb in
/// C's local row r is row_ptr[r] + rank of cb in mask[r].
template <class T>
void accumulate_sparse(const TileMatrix<T>& a, const TileMatrix<T>& b,
                       const MatchedPair* pairs, std::size_t pair_count,
                       const rowmask_t* mask_c, const std::uint8_t* row_ptr_c, T* slots) {
  for (std::size_t pi = 0; pi < pair_count; ++pi) {
    const MatchedPair& p = pairs[pi];
    const offset_t a_nz = a.tile_nnz[p.tile_a];
    const index_t a_cnt = a.tile_nnz_of(p.tile_a);
    const offset_t b_nz = b.tile_nnz[p.tile_b];
    for (index_t k = 0; k < a_cnt; ++k) {
      const std::size_t ga = static_cast<std::size_t>(a_nz + k);
      const index_t r = a.row_idx[ga];
      const index_t col_a = a.col_idx[ga];
      const T va = a.val[ga];
      index_t lo, hi;
      b.tile_row_range(p.tile_b, col_a, lo, hi);
      const std::uint8_t base = row_ptr_c[r];
      const rowmask_t m = mask_c[r];
      for (index_t kb = lo; kb < hi; ++kb) {
        const std::size_t gb = static_cast<std::size_t>(b_nz + kb);
        const index_t cb = b.col_idx[gb];
        slots[base + mask_rank(m, cb)] += va * b.val[gb];
      }
    }
  }
}

/// Accumulate into a dense 16x16 scratch tile, then compress through the
/// mask (Algorithm 3 lines 13-17).
template <class T>
void accumulate_dense(const TileMatrix<T>& a, const TileMatrix<T>& b,
                      const MatchedPair* pairs, std::size_t pair_count,
                      const rowmask_t* mask_c, T* slots) {
  T acc[kTileNnzMax] = {};
  for (std::size_t pi = 0; pi < pair_count; ++pi) {
    const MatchedPair& p = pairs[pi];
    const offset_t a_nz = a.tile_nnz[p.tile_a];
    const index_t a_cnt = a.tile_nnz_of(p.tile_a);
    const offset_t b_nz = b.tile_nnz[p.tile_b];
    for (index_t k = 0; k < a_cnt; ++k) {
      const std::size_t ga = static_cast<std::size_t>(a_nz + k);
      const index_t r = a.row_idx[ga];
      const index_t col_a = a.col_idx[ga];
      const T va = a.val[ga];
      index_t lo, hi;
      b.tile_row_range(p.tile_b, col_a, lo, hi);
      T* acc_row = acc + static_cast<std::size_t>(r) * kTileDim;
      for (index_t kb = lo; kb < hi; ++kb) {
        const std::size_t gb = static_cast<std::size_t>(b_nz + kb);
        acc_row[b.col_idx[gb]] += va * b.val[gb];
      }
    }
  }
  // Compress: walk the mask bits in order; their rank order equals the
  // storage order of the tile's nonzeros.
  index_t out = 0;
  for (index_t r = 0; r < kTileDim; ++r) {
    rowmask_t m = mask_c[r];
    const T* acc_row = acc + static_cast<std::size_t>(r) * kTileDim;
    while (m != 0) {
      const index_t c = static_cast<index_t>(std::countr_zero(static_cast<unsigned>(m)));
      slots[out++] = acc_row[c];
      m = static_cast<rowmask_t>(m & (m - 1));
    }
  }
}

}  // namespace

template <class T>
void step3_numeric(const TileMatrix<T>& a, const TileMatrix<T>& b,
                   const TileLayoutCsc& b_csc, const TileStructure& structure,
                   const TileSpgemmOptions& options, TileMatrix<T>& c,
                   const detail::PairCache* pair_cache) {
  const offset_t ntiles = structure.num_tiles();
  const bool use_cache = pair_cache != nullptr && pair_cache->enabled();

  parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
    const index_t tile_i = structure.tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tile_j = structure.tile_col_idx[static_cast<std::size_t>(t)];
    const index_t nnz_c = c.tile_nnz_of(t);
    const offset_t nz_base = c.tile_nnz[static_cast<std::size_t>(t)];
    const rowmask_t* mask_c = c.tile_mask(t);
    const std::uint8_t* row_ptr_c = c.row_ptr.data() + static_cast<std::size_t>(t) * kTileDim;

    // Materialise the local row/column indices from the masks; the mask bit
    // order is the storage order.
    {
      index_t out = 0;
      for (index_t r = 0; r < kTileDim; ++r) {
        rowmask_t m = mask_c[r];
        while (m != 0) {
          const index_t col = static_cast<index_t>(std::countr_zero(static_cast<unsigned>(m)));
          const std::size_t dst = static_cast<std::size_t>(nz_base + out);
          c.row_idx[dst] = static_cast<std::uint8_t>(r);
          c.col_idx[dst] = static_cast<std::uint8_t>(col);
          ++out;
          m = static_cast<rowmask_t>(m & (m - 1));
        }
      }
    }
    if (nnz_c == 0) return;  // step 1 may keep tiles that turned out empty

    // Gather the matched pairs: a borrowed span from the step-2 cache when
    // enabled, otherwise by re-running the intersection (the paper's
    // zero-global-memory choice).
    const MatchedPair* pair_data;
    std::size_t pair_count;
    if (use_cache) {
      std::uint32_t count = 0;
      pair_data = pair_cache->pairs_of(t, count);
      pair_count = count;
    } else {
      std::vector<MatchedPair>& pairs = t_pairs;
      pairs.clear();
      const offset_t a_base = a.tile_ptr[tile_i];
      const index_t len_a = static_cast<index_t>(a.tile_ptr[tile_i + 1] - a_base);
      const offset_t b_base = b_csc.col_ptr[tile_j];
      const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
      intersect_tiles(a.tile_col_idx.data() + a_base, a_base, len_a,
                      b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                      options.intersect, pairs);
      pair_data = pairs.data();
      pair_count = pairs.size();
    }

    // Only the first nnz_c slots are ever read; zeroing the full 256 would
    // dominate the runtime of hyper-sparse-tile matrices (cop20k_A class).
    T slots[kTileNnzMax];
    for (index_t k = 0; k < nnz_c; ++k) slots[k] = T{};
    const bool dense = options.accumulator == AccumulatorPolicy::kAlwaysDense ||
                       (options.accumulator == AccumulatorPolicy::kAdaptive &&
                        nnz_c > options.tnnz);
    if (dense) {
      accumulate_dense(a, b, pair_data, pair_count, mask_c, slots);
    } else {
      accumulate_sparse(a, b, pair_data, pair_count, mask_c, row_ptr_c, slots);
    }
    for (index_t k = 0; k < nnz_c; ++k) {
      c.val[static_cast<std::size_t>(nz_base + k)] = slots[k];
    }
  });
}

template void step3_numeric(const TileMatrix<double>&, const TileMatrix<double>&,
                            const TileLayoutCsc&, const TileStructure&,
                            const TileSpgemmOptions&, TileMatrix<double>&,
                            const detail::PairCache*);
template void step3_numeric(const TileMatrix<float>&, const TileMatrix<float>&,
                            const TileLayoutCsc&, const TileStructure&,
                            const TileSpgemmOptions&, TileMatrix<float>&,
                            const detail::PairCache*);

}  // namespace tsg
