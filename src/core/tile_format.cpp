#include "core/tile_format.h"

#include <sstream>

namespace tsg {

template <class T>
std::string TileMatrix<T>::validate() const {
  std::ostringstream err;
  if (tile_rows != ceil_div(rows, kTileDim) || tile_cols != ceil_div(cols, kTileDim)) {
    err << "tile grid " << tile_rows << "x" << tile_cols << " inconsistent with " << rows
        << "x" << cols;
    return err.str();
  }
  if (tile_ptr.size() != static_cast<std::size_t>(tile_rows) + 1) {
    err << "tile_ptr size " << tile_ptr.size();
    return err.str();
  }
  const offset_t ntiles = num_tiles();
  if (!tile_ptr.empty() && tile_ptr.back() != ntiles) {
    err << "tile_ptr.back() " << tile_ptr.back() << " != numtiles " << ntiles;
    return err.str();
  }
  if (tile_nnz.size() != static_cast<std::size_t>(ntiles) + 1) {
    err << "tile_nnz size " << tile_nnz.size() << " != numtiles+1";
    return err.str();
  }
  if (row_ptr.size() != static_cast<std::size_t>(ntiles) * kTileDim ||
      mask.size() != static_cast<std::size_t>(ntiles) * kTileDim) {
    err << "row_ptr/mask size mismatch";
    return err.str();
  }
  const std::size_t n = static_cast<std::size_t>(nnz());
  if (row_idx.size() != n || col_idx.size() != n || val.size() != n) {
    err << "nonzero array sizes inconsistent with nnz " << n;
    return err.str();
  }

  for (index_t tr = 0; tr < tile_rows; ++tr) {
    if (tile_ptr[tr + 1] < tile_ptr[tr]) {
      err << "tile_ptr not monotone at tile row " << tr;
      return err.str();
    }
    for (offset_t t = tile_ptr[tr]; t < tile_ptr[tr + 1]; ++t) {
      if (tile_col_idx[t] < 0 || tile_col_idx[t] >= tile_cols) {
        err << "tile_col_idx out of range at tile " << t;
        return err.str();
      }
      if (t > tile_ptr[tr] && tile_col_idx[t] <= tile_col_idx[t - 1]) {
        err << "tile columns not strictly increasing in tile row " << tr;
        return err.str();
      }
    }
  }

  for (offset_t t = 0; t < ntiles; ++t) {
    if (tile_nnz[t + 1] < tile_nnz[t]) {
      err << "tile_nnz not monotone at tile " << t;
      return err.str();
    }
    const index_t tnnz = tile_nnz_of(t);
    if (tnnz > kTileNnzMax) {
      err << "tile " << t << " holds " << tnnz << " > " << kTileNnzMax << " nonzeros";
      return err.str();
    }
    // Rebuild masks from the index arrays and compare; also check the local
    // row pointer brackets every nonzero.
    rowmask_t rebuilt[kTileDim] = {};
    for (index_t r = 0; r < kTileDim; ++r) {
      index_t lo, hi;
      tile_row_range(t, r, lo, hi);
      if (lo > hi || hi > tnnz) {
        err << "tile " << t << " row " << r << ": bad row range [" << lo << "," << hi << ")";
        return err.str();
      }
      index_t prev_col = -1;
      for (index_t k = lo; k < hi; ++k) {
        const std::size_t g = static_cast<std::size_t>(tile_nnz[t] + k);
        if (row_idx[g] != r) {
          err << "tile " << t << ": row_idx mismatch at local offset " << k;
          return err.str();
        }
        const index_t c = col_idx[g];
        if (c < 0 || c >= kTileDim) {
          err << "tile " << t << ": col_idx out of range";
          return err.str();
        }
        if (c <= prev_col) {
          err << "tile " << t << " row " << r << ": columns not strictly increasing";
          return err.str();
        }
        prev_col = c;
        rebuilt[r] |= bit_of(c);
      }
    }
    for (index_t r = 0; r < kTileDim; ++r) {
      if (rebuilt[r] != tile_mask(t)[r]) {
        err << "tile " << t << " row " << r << ": mask 0x" << std::hex << tile_mask(t)[r]
            << " != rebuilt 0x" << rebuilt[r];
        return err.str();
      }
    }
  }
  return {};
}

template <class T>
void tile_layout_csc(const TileMatrix<T>& m, TileLayoutCsc& v) {
  const offset_t ntiles = m.num_tiles();
  v.col_ptr.assign(static_cast<std::size_t>(m.tile_cols) + 1, 0);
  v.row_idx.resize(static_cast<std::size_t>(ntiles));
  v.tile_id.resize(static_cast<std::size_t>(ntiles));

  for (offset_t t = 0; t < ntiles; ++t) {
    v.col_ptr[static_cast<std::size_t>(m.tile_col_idx[t]) + 1]++;
  }
  for (index_t j = 0; j < m.tile_cols; ++j) v.col_ptr[j + 1] += v.col_ptr[j];

  // Counting sort using col_ptr itself as the write cursor (no temporary):
  // after the scatter col_ptr[j] holds the *end* of column j, so one
  // backward shift restores the start offsets. Walking tile rows in order
  // keeps row indices sorted within each column.
  for (index_t tr = 0; tr < m.tile_rows; ++tr) {
    for (offset_t t = m.tile_ptr[tr]; t < m.tile_ptr[tr + 1]; ++t) {
      const offset_t dst = v.col_ptr[m.tile_col_idx[t]]++;
      v.row_idx[dst] = tr;
      v.tile_id[dst] = t;
    }
  }
  for (index_t j = m.tile_cols; j > 0; --j) v.col_ptr[j] = v.col_ptr[j - 1];
  v.col_ptr[0] = 0;
}

template <class T>
TileLayoutCsc tile_layout_csc(const TileMatrix<T>& m) {
  TileLayoutCsc v;
  tile_layout_csc(m, v);
  return v;
}

template struct TileMatrix<double>;
template struct TileMatrix<float>;
template TileLayoutCsc tile_layout_csc(const TileMatrix<double>&);
template TileLayoutCsc tile_layout_csc(const TileMatrix<float>&);
template void tile_layout_csc(const TileMatrix<double>&, TileLayoutCsc&);
template void tile_layout_csc(const TileMatrix<float>&, TileLayoutCsc&);

}  // namespace tsg
