// Semiring-generic TileSpGEMM: identical tile structure pipeline (steps 1
// and 2 are purely structural), with a step-3 numeric phase parameterised
// on the semiring's combine/reduce.
//
// The kernels are driven through a SpgemmContext so they share its pooled
// workspace (layout view, tile structure, per-thread pair scratch); the
// options-only overloads spin up a transient context like the other free
// functions.
//
// Semantics note: the output structure is the *structural* product — an
// entry exists wherever at least one (A_ik, B_kj) product lands, with value
// reduce over those products. For semirings whose identity annihilates
// (min-plus: +inf) this is exactly the algebraic product restricted to
// reachable entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/intersect.h"
#include "core/semiring.h"
#include "core/spgemm_context.h"
#include "core/tile_convert.h"
#include "core/tile_kernels.h"
#include "core/tile_spgemm.h"

namespace tsg {

/// C = A (x) B over the given semiring through a reusable context.
template <class Semiring, class T>
TileMatrix<T> tile_spgemm_semiring(SpgemmContext& ctx, const TileMatrix<T>& a,
                                   const TileMatrix<T>& b) {
  if (a.cols != b.rows) {
    throw Error(Status::dimension_mismatch("tile_spgemm_semiring: inner dimensions differ"));
  }
  const TileSpgemmOptions& options = ctx.config().options;
  SpgemmWorkspace<T>& ws = ctx.workspace<T>();
  ws.ensure_threads(max_workers());
  ws.begin_call();

  tile_layout_csc(b, ws.b_csc);
  const TileLayoutCsc& b_csc = ws.b_csc;
  step1_tile_structure(a, b, ws, ws.structure);
  const TileStructure& structure = ws.structure;
  // Structural symbolic pass only — the semiring numeric below re-runs the
  // intersection, so the plan requests neither caching nor fusion (fused
  // values would be plus-times, not the semiring's combine/reduce).
  Step2Result symbolic = step2_symbolic(a, b, b_csc, structure, options, ws, ExecutionPlan{});

  TileMatrix<T> c(a.rows, b.cols);
  c.tile_rows = structure.tile_rows;
  c.tile_cols = structure.tile_cols;
  c.tile_ptr = structure.tile_ptr;
  c.tile_col_idx = structure.tile_col_idx;
  c.tile_nnz = std::move(symbolic.tile_nnz);
  c.row_ptr = std::move(symbolic.row_ptr);
  c.mask = std::move(symbolic.mask);
  const std::size_t nnz = static_cast<std::size_t>(c.nnz());
  c.row_idx.resize(nnz);
  c.col_idx.resize(nnz);
  c.val.resize(nnz);

  const offset_t ntiles = structure.num_tiles();
  // Materialize dispatches like step 3 proper (exact-store contract); the
  // semiring combine/reduce loop itself stays scalar — reassociating a
  // user-supplied reduce is not the dispatch family's call to make.
  const simd::NumericOps& nops = simd::numeric_ops(effective_simd_level(options));
  parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
    // Cooperative cancellation every 64th tile (see step2.cpp): the numeric
    // semiring pass is the long phase here, and cancellation latency must
    // not be the whole tile range.
    if ((t & 63) == 0) {
      ws.cancel.note_progress();
      if (ws.cancel.should_stop()) return;
    }
    const index_t tile_i = structure.tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tile_j = structure.tile_col_idx[static_cast<std::size_t>(t)];
    const index_t nnz_c = c.tile_nnz_of(t);
    const offset_t nz_base = c.tile_nnz[static_cast<std::size_t>(t)];
    const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
    const rowmask_t* mask_c = c.mask.data() + base;
    const std::uint8_t* row_ptr_c = c.row_ptr.data() + base;

    nops.materialize(mask_c, c.row_idx.data() + nz_base, c.col_idx.data() + nz_base);
    if (nnz_c == 0) return;

    std::vector<MatchedPair>& pairs = ws.slot(worker_rank()).pairs;
    pairs.clear();
    const offset_t a_base = a.tile_ptr[tile_i];
    const index_t len_a = static_cast<index_t>(a.tile_ptr[tile_i + 1] - a_base);
    const offset_t b_base = b_csc.col_ptr[tile_j];
    const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
    intersect_tiles(a.tile_col_idx.data() + a_base, a_base, len_a,
                    b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                    options.intersect, pairs);

    T slots[kTileNnzMax];
    for (index_t k = 0; k < nnz_c; ++k) slots[k] = Semiring::identity();
    for (const MatchedPair& p : pairs) {
      const offset_t a_nz = a.tile_nnz[static_cast<std::size_t>(p.tile_a)];
      const index_t a_cnt = a.tile_nnz_of(p.tile_a);
      const offset_t b_nz = b.tile_nnz[static_cast<std::size_t>(p.tile_b)];
      for (index_t k = 0; k < a_cnt; ++k) {
        const std::size_t ga = static_cast<std::size_t>(a_nz + k);
        const index_t r = a.row_idx[ga];
        const T va = a.val[ga];
        index_t lo, hi;
        b.tile_row_range(p.tile_b, a.col_idx[ga], lo, hi);
        const std::uint8_t row_base = row_ptr_c[r];
        const rowmask_t m = mask_c[r];
        for (index_t kb = lo; kb < hi; ++kb) {
          const std::size_t gb = static_cast<std::size_t>(b_nz + kb);
          T& slot = slots[row_base + mask_rank(m, b.col_idx[gb])];
          slot = Semiring::reduce(slot, Semiring::combine(va, b.val[gb]));
        }
      }
    }
    for (index_t k = 0; k < nnz_c; ++k) {
      c.val[static_cast<std::size_t>(nz_base + k)] = slots[k];
    }
  });
  return c;
}

/// C = A (x) B over the given semiring, tile format in and out (transient
/// context).
template <class Semiring, class T>
TileMatrix<T> tile_spgemm_semiring(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                   const TileSpgemmOptions& options = {}) {
  SpgemmContext ctx(SpgemmContext::Config{}.with_options(options));
  return tile_spgemm_semiring<Semiring>(ctx, a, b);
}

/// CSR convenience wrapper.
template <class Semiring, class T>
Csr<T> spgemm_semiring(const Csr<T>& a, const Csr<T>& b,
                       const TileSpgemmOptions& options = {}) {
  return tile_to_csr(tile_spgemm_semiring<Semiring>(csr_to_tile(a), csr_to_tile(b), options));
}

/// Semiring SpMV on the tile format: y = A (x) x with a dense vector whose
/// "missing" entries are the semiring identity.
template <class Semiring, class T>
void tile_spmv_semiring(const TileMatrix<T>& a, const tracked_vector<T>& x,
                        tracked_vector<T>& y) {
  if (static_cast<index_t>(x.size()) != a.cols) {
    throw Error(Status::dimension_mismatch("tile_spmv_semiring: x size mismatch"));
  }
  y.assign(static_cast<std::size_t>(a.rows), Semiring::identity());
  parallel_for(index_t{0}, a.tile_rows, [&](index_t tr) {
    T lanes[kTileDim];
    for (index_t r = 0; r < kTileDim; ++r) lanes[r] = Semiring::identity();
    for (offset_t t = a.tile_ptr[tr]; t < a.tile_ptr[tr + 1]; ++t) {
      const index_t col_base = a.tile_col_idx[t] * kTileDim;
      const offset_t nz_base = a.tile_nnz[static_cast<std::size_t>(t)];
      const index_t count = a.tile_nnz_of(t);
      for (index_t k = 0; k < count; ++k) {
        const std::size_t g = static_cast<std::size_t>(nz_base + k);
        T& lane = lanes[a.row_idx[g]];
        lane = Semiring::reduce(
            lane, Semiring::combine(a.val[g],
                                    x[static_cast<std::size_t>(col_base + a.col_idx[g])]));
      }
    }
    const index_t row_base = tr * kTileDim;
    const index_t row_end = std::min<index_t>(row_base + kTileDim, a.rows);
    for (index_t r = row_base; r < row_end; ++r) {
      y[static_cast<std::size_t>(r)] = lanes[r - row_base];
    }
  });
}

}  // namespace tsg
