// Semiring-generic TileSpGEMM: identical tile structure pipeline (steps 1
// and 2 are purely structural), with a step-3 numeric phase parameterised
// on the semiring's combine/reduce.
//
// Semantics note: the output structure is the *structural* product — an
// entry exists wherever at least one (A_ik, B_kj) product lands, with value
// reduce over those products. For semirings whose identity annihilates
// (min-plus: +inf) this is exactly the algebraic product restricted to
// reachable entries.
#pragma once

#include <vector>

#include "common/parallel.h"
#include "core/intersect.h"
#include "core/semiring.h"
#include "core/step2.h"
#include "core/tile_convert.h"
#include "core/tile_spgemm.h"

namespace tsg {

namespace detail {
// Matched-pair scratch shared by the semiring numeric pass.
inline thread_local std::vector<MatchedPair> t_semiring_pairs;
}  // namespace detail

/// C = A (x) B over the given semiring, tile format in and out.
template <class Semiring, class T>
TileMatrix<T> tile_spgemm_semiring(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                   const TileSpgemmOptions& options = {}) {
  if (a.cols != b.rows) {
    throw std::invalid_argument("tile_spgemm_semiring: inner dimensions differ");
  }
  const TileLayoutCsc b_csc = tile_layout_csc(b);
  const TileStructure structure = step1_tile_structure(a, b);
  const Step2Result symbolic = step2_symbolic(a, b, b_csc, structure, options);

  TileMatrix<T> c(a.rows, b.cols);
  c.tile_rows = structure.tile_rows;
  c.tile_cols = structure.tile_cols;
  c.tile_ptr = structure.tile_ptr;
  c.tile_col_idx = structure.tile_col_idx;
  c.tile_nnz = symbolic.tile_nnz;
  c.row_ptr = symbolic.row_ptr;
  c.mask = symbolic.mask;
  const std::size_t nnz = static_cast<std::size_t>(c.nnz());
  c.row_idx.resize(nnz);
  c.col_idx.resize(nnz);
  c.val.resize(nnz);

  const offset_t ntiles = structure.num_tiles();
  parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
    const index_t tile_i = structure.tile_row_idx[static_cast<std::size_t>(t)];
    const index_t tile_j = structure.tile_col_idx[static_cast<std::size_t>(t)];
    const index_t nnz_c = c.tile_nnz_of(t);
    const offset_t nz_base = c.tile_nnz[static_cast<std::size_t>(t)];
    const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
    const rowmask_t* mask_c = c.mask.data() + base;
    const std::uint8_t* row_ptr_c = c.row_ptr.data() + base;

    // Indices from the masks (mask bit order == storage order).
    index_t out = 0;
    for (index_t r = 0; r < kTileDim; ++r) {
      rowmask_t m = mask_c[r];
      while (m != 0) {
        const index_t col = static_cast<index_t>(std::countr_zero(static_cast<unsigned>(m)));
        const std::size_t dst = static_cast<std::size_t>(nz_base + out);
        c.row_idx[dst] = static_cast<std::uint8_t>(r);
        c.col_idx[dst] = static_cast<std::uint8_t>(col);
        ++out;
        m = static_cast<rowmask_t>(m & (m - 1));
      }
    }
    if (nnz_c == 0) return;

    std::vector<MatchedPair>& pairs = detail::t_semiring_pairs;
    pairs.clear();
    const offset_t a_base = a.tile_ptr[tile_i];
    const index_t len_a = static_cast<index_t>(a.tile_ptr[tile_i + 1] - a_base);
    const offset_t b_base = b_csc.col_ptr[tile_j];
    const index_t len_b = static_cast<index_t>(b_csc.col_ptr[tile_j + 1] - b_base);
    intersect_tiles(a.tile_col_idx.data() + a_base, a_base, len_a,
                    b_csc.row_idx.data() + b_base, b_csc.tile_id.data() + b_base, len_b,
                    options.intersect, pairs);

    T slots[kTileNnzMax];
    for (index_t k = 0; k < nnz_c; ++k) slots[k] = Semiring::identity();
    for (const MatchedPair& p : pairs) {
      const offset_t a_nz = a.tile_nnz[static_cast<std::size_t>(p.tile_a)];
      const index_t a_cnt = a.tile_nnz_of(p.tile_a);
      const offset_t b_nz = b.tile_nnz[static_cast<std::size_t>(p.tile_b)];
      for (index_t k = 0; k < a_cnt; ++k) {
        const std::size_t ga = static_cast<std::size_t>(a_nz + k);
        const index_t r = a.row_idx[ga];
        const T va = a.val[ga];
        index_t lo, hi;
        b.tile_row_range(p.tile_b, a.col_idx[ga], lo, hi);
        const std::uint8_t row_base = row_ptr_c[r];
        const rowmask_t m = mask_c[r];
        for (index_t kb = lo; kb < hi; ++kb) {
          const std::size_t gb = static_cast<std::size_t>(b_nz + kb);
          T& slot = slots[row_base + mask_rank(m, b.col_idx[gb])];
          slot = Semiring::reduce(slot, Semiring::combine(va, b.val[gb]));
        }
      }
    }
    for (index_t k = 0; k < nnz_c; ++k) {
      c.val[static_cast<std::size_t>(nz_base + k)] = slots[k];
    }
  });
  return c;
}

/// CSR convenience wrapper.
template <class Semiring, class T>
Csr<T> spgemm_semiring(const Csr<T>& a, const Csr<T>& b,
                       const TileSpgemmOptions& options = {}) {
  return tile_to_csr(tile_spgemm_semiring<Semiring>(csr_to_tile(a), csr_to_tile(b), options));
}

/// Semiring SpMV on the tile format: y = A (x) x with a dense vector whose
/// "missing" entries are the semiring identity.
template <class Semiring, class T>
void tile_spmv_semiring(const TileMatrix<T>& a, const tracked_vector<T>& x,
                        tracked_vector<T>& y) {
  if (static_cast<index_t>(x.size()) != a.cols) {
    throw std::invalid_argument("tile_spmv_semiring: x size mismatch");
  }
  y.assign(static_cast<std::size_t>(a.rows), Semiring::identity());
  parallel_for(index_t{0}, a.tile_rows, [&](index_t tr) {
    T lanes[kTileDim];
    for (index_t r = 0; r < kTileDim; ++r) lanes[r] = Semiring::identity();
    for (offset_t t = a.tile_ptr[tr]; t < a.tile_ptr[tr + 1]; ++t) {
      const index_t col_base = a.tile_col_idx[t] * kTileDim;
      const offset_t nz_base = a.tile_nnz[static_cast<std::size_t>(t)];
      const index_t count = a.tile_nnz_of(t);
      for (index_t k = 0; k < count; ++k) {
        const std::size_t g = static_cast<std::size_t>(nz_base + k);
        T& lane = lanes[a.row_idx[g]];
        lane = Semiring::reduce(
            lane, Semiring::combine(a.val[g],
                                    x[static_cast<std::size_t>(col_base + a.col_idx[g])]));
      }
    }
    const index_t row_base = tr * kTileDim;
    const index_t row_end = std::min<index_t>(row_base + kTileDim, a.rows);
    for (index_t r = row_base; r < row_end; ++r) {
      y[static_cast<std::size_t>(r)] = lanes[r - row_base];
    }
  });
}

}  // namespace tsg
