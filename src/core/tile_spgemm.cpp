#include "core/tile_spgemm.h"

#include <stdexcept>
#include <utility>

#include "common/timer.h"
#include "core/tile_transpose.h"

namespace tsg {

template <class T>
TileSpgemmResult<T> tile_spgemm(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                const TileSpgemmOptions& options) {
  if (a.cols != b.rows) throw std::invalid_argument("tile_spgemm: inner dimensions differ");

  TileSpgemmResult<T> result;
  TileSpgemmTimings& tm = result.timings;

  // Column-major view of B's tile layout, needed by the step-2/3
  // intersections; building it is allocation/bookkeeping, not algorithm.
  TileLayoutCsc b_csc;
  {
    ScopedAccumulator scope(tm.alloc_ms);
    b_csc = tile_layout_csc(b);
  }

  // Step 1: tile structure of C.
  TileStructure structure;
  {
    ScopedAccumulator scope(tm.step1_ms);
    structure = step1_tile_structure(a, b);
  }

  // Step 2: per-tile symbolic -> nnz, row pointers, masks.
  Step2Result symbolic;
  {
    ScopedAccumulator scope(tm.step2_ms);
    symbolic = step2_symbolic(a, b, b_csc, structure, options);
  }

  // Allocate C (the only sizeable allocation of the whole algorithm).
  TileMatrix<T>& c = result.c;
  {
    ScopedAccumulator scope(tm.alloc_ms);
    c.rows = a.rows;
    c.cols = b.cols;
    c.tile_rows = structure.tile_rows;
    c.tile_cols = structure.tile_cols;
    c.tile_ptr = structure.tile_ptr;
    c.tile_col_idx = structure.tile_col_idx;
    c.tile_nnz = std::move(symbolic.tile_nnz);
    c.row_ptr = std::move(symbolic.row_ptr);
    c.mask = std::move(symbolic.mask);
    const std::size_t nnz = static_cast<std::size_t>(c.nnz());
    c.row_idx.resize(nnz);
    c.col_idx.resize(nnz);
    c.val.resize(nnz);
  }

  // Step 3: numeric.
  {
    ScopedAccumulator scope(tm.step3_ms);
    step3_numeric(a, b, b_csc, structure, options, c, &symbolic.pair_cache);
  }
  return result;
}

template <class T>
Csr<T> spgemm_tile(const Csr<T>& a, const Csr<T>& b, const TileSpgemmOptions& options,
                   TileSpgemmTimings* timings) {
  const TileMatrix<T> ta = csr_to_tile(a);
  const TileMatrix<T> tb = csr_to_tile(b);
  TileSpgemmResult<T> result = tile_spgemm(ta, tb, options);
  if (timings != nullptr) *timings = result.timings;
  return tile_to_csr(result.c);
}

template <class T>
TileSpgemmResult<T> tile_spgemm_aat(const TileMatrix<T>& a, const TileSpgemmOptions& options) {
  TileMatrix<T> at;
  TileSpgemmResult<T> result;
  {
    // Transposition is data movement, not multiplication: book it with the
    // allocation share like the layout view.
    ScopedAccumulator scope(result.timings.alloc_ms);
    at = tile_transpose(a);
  }
  TileSpgemmResult<T> product = tile_spgemm(a, at, options);
  product.timings.alloc_ms += result.timings.alloc_ms;
  return product;
}

template TileSpgemmResult<double> tile_spgemm(const TileMatrix<double>&,
                                              const TileMatrix<double>&,
                                              const TileSpgemmOptions&);
template TileSpgemmResult<float> tile_spgemm(const TileMatrix<float>&,
                                             const TileMatrix<float>&,
                                             const TileSpgemmOptions&);
template Csr<double> spgemm_tile(const Csr<double>&, const Csr<double>&,
                                 const TileSpgemmOptions&, TileSpgemmTimings*);
template Csr<float> spgemm_tile(const Csr<float>&, const Csr<float>&,
                                const TileSpgemmOptions&, TileSpgemmTimings*);
template TileSpgemmResult<double> tile_spgemm_aat(const TileMatrix<double>&,
                                                  const TileSpgemmOptions&);
template TileSpgemmResult<float> tile_spgemm_aat(const TileMatrix<float>&,
                                                 const TileSpgemmOptions&);

}  // namespace tsg
