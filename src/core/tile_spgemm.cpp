#include "core/tile_spgemm.h"

#include "core/spgemm_context.h"

namespace tsg {

// The free functions are thin compatibility wrappers: each call spins up a
// transient SpgemmContext, so one-shot callers keep the old signatures
// while iterated workloads migrate to a long-lived context and get the
// pooled-workspace reuse.

template <class T>
TileSpgemmResult<T> tile_spgemm(const TileMatrix<T>& a, const TileMatrix<T>& b,
                                const TileSpgemmOptions& options) {
  SpgemmContext ctx(SpgemmContext::Config{}.with_options(options));
  return ctx.run(a, b);
}

template <class T>
Csr<T> spgemm_tile(const Csr<T>& a, const Csr<T>& b, const TileSpgemmOptions& options,
                   TileSpgemmTimings* timings) {
  SpgemmContext ctx(SpgemmContext::Config{}.with_options(options));
  return ctx.run_csr(a, b, timings);
}

template <class T>
TileSpgemmResult<T> tile_spgemm_aat(const TileMatrix<T>& a, const TileSpgemmOptions& options) {
  SpgemmContext ctx(SpgemmContext::Config{}.with_options(options));
  return ctx.run_aat(a);
}

template TileSpgemmResult<double> tile_spgemm(const TileMatrix<double>&,
                                              const TileMatrix<double>&,
                                              const TileSpgemmOptions&);
template TileSpgemmResult<float> tile_spgemm(const TileMatrix<float>&,
                                             const TileMatrix<float>&,
                                             const TileSpgemmOptions&);
template Csr<double> spgemm_tile(const Csr<double>&, const Csr<double>&,
                                 const TileSpgemmOptions&, TileSpgemmTimings*);
template Csr<float> spgemm_tile(const Csr<float>&, const Csr<float>&,
                                const TileSpgemmOptions&, TileSpgemmTimings*);
template TileSpgemmResult<double> tile_spgemm_aat(const TileMatrix<double>&,
                                                  const TileSpgemmOptions&);
template TileSpgemmResult<float> tile_spgemm_aat(const TileMatrix<float>&,
                                                 const TileSpgemmOptions&);

}  // namespace tsg
