// The sparse tile data structure of Section 3.2.
//
// A matrix is partitioned into 16x16 tiles; only non-empty tiles are stored.
// Two levels of information:
//
//   High level (CSR over the tile grid):
//     tile_ptr      tile_rows+1   memory offsets of the tiles in tile rows
//     tile_col_idx  numtiles      tile column indices
//     tile_nnz      numtiles+1    offsets of each tile's nonzeros
//
//   Low level (per tile, CSR style plus row indices and bit masks):
//     row_ptr   numtiles*16   uint8 offsets of each local row's first nonzero.
//                             Only 16 entries per tile (not 17): the implied
//                             17th equals tile_nnz[t+1]-tile_nnz[t], which
//                             keeps every entry in 0..255 so it fits a uint8.
//     row_idx   nnz           uint8 local row index (4 significant bits)
//     col_idx   nnz           uint8 local column index (4 significant bits)
//     val       nnz           numeric values, tile order
//     mask      numtiles*16   uint16 per-row occupancy bit masks: bit c of
//                             mask[t*16+r] set <=> tile t has a nonzero at
//                             local (r, c)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/bitops.h"
#include "common/config.h"
#include "common/memory.h"

namespace tsg {

// Compile-time contracts pinning the representation the whole pipeline
// assumes (Section 3.2). If any of these move, the uint8 index arrays, the
// per-row bit masks, and the fixed-size accumulators all break together —
// fail the build, not the multiply.
static_assert(sizeof(rowmask_t) * 8 == kTileDim,
              "one per-row occupancy mask must be exactly one bit per tile column");
static_assert(kTileNnzMax == 256,
              "dense accumulators are T[kTileNnzMax]; the paper's 16x16 tile holds 256");
static_assert(kTileNnzMax - 1 <= 0xff,
              "row_ptr stores per-tile offsets in uint8 (implied-17th-entry trick)");

template <class T>
struct TileMatrix {
  using value_type = T;

  index_t rows = 0;       ///< original row count
  index_t cols = 0;       ///< original column count
  index_t tile_rows = 0;  ///< ceil(rows / kTileDim)
  index_t tile_cols = 0;  ///< ceil(cols / kTileDim)

  tracked_vector<offset_t> tile_ptr;
  tracked_vector<index_t> tile_col_idx;
  tracked_vector<offset_t> tile_nnz;

  tracked_vector<std::uint8_t> row_ptr;
  tracked_vector<std::uint8_t> row_idx;
  tracked_vector<std::uint8_t> col_idx;
  tracked_vector<T> val;
  tracked_vector<rowmask_t> mask;

  TileMatrix() = default;
  TileMatrix(index_t r, index_t c)
      : rows(r),
        cols(c),
        tile_rows(ceil_div(r, kTileDim)),
        tile_cols(ceil_div(c, kTileDim)),
        tile_ptr(static_cast<std::size_t>(ceil_div(r, kTileDim)) + 1, 0) {}

  offset_t num_tiles() const {
    return static_cast<offset_t>(tile_col_idx.size());
  }

  offset_t nnz() const { return tile_nnz.empty() ? 0 : tile_nnz.back(); }

  /// Nonzeros of tile t (tiles are numbered in tile-row-major storage order).
  index_t tile_nnz_of(offset_t t) const {
    return static_cast<index_t>(tile_nnz[t + 1] - tile_nnz[t]);
  }

  /// Local offsets [lo, hi) of local row r inside tile t. The upper bound of
  /// the last row comes from tile_nnz, reconstructing the implied 17th
  /// row-pointer entry.
  void tile_row_range(offset_t t, index_t r, index_t& lo, index_t& hi) const {
    const std::size_t base = static_cast<std::size_t>(t) * kTileDim;
    lo = row_ptr[base + static_cast<std::size_t>(r)];
    hi = r + 1 < kTileDim ? row_ptr[base + static_cast<std::size_t>(r) + 1]
                          : tile_nnz_of(t);
  }

  /// Pointer to the 16 row masks of tile t.
  const rowmask_t* tile_mask(offset_t t) const {
    return mask.data() + static_cast<std::size_t>(t) * kTileDim;
  }

  /// Total bytes of all arrays — the Fig. 11 "tiled data structure" metric.
  std::size_t bytes() const {
    return tile_ptr.size() * sizeof(offset_t) + tile_col_idx.size() * sizeof(index_t) +
           tile_nnz.size() * sizeof(offset_t) + row_ptr.size() * sizeof(std::uint8_t) +
           row_idx.size() * sizeof(std::uint8_t) + col_idx.size() * sizeof(std::uint8_t) +
           val.size() * sizeof(T) + mask.size() * sizeof(rowmask_t);
  }

  /// Structural invariants (monotone pointers, indices in range, masks
  /// consistent with the index arrays). Empty string when valid.
  std::string validate() const;
};

/// Column-major view of a tile layout: for each tile column, the tile row
/// indices (sorted) and the storage ids of those tiles. Step 2 of the
/// algorithm intersects a tile row of A with a tile column of B, so B's
/// layout must be reachable by column (tileColPtr_B / tileRowidx_B in
/// Algorithm 2).
struct TileLayoutCsc {
  tracked_vector<offset_t> col_ptr;   ///< size tile_cols+1
  tracked_vector<index_t> row_idx;    ///< tile row index per tile
  tracked_vector<offset_t> tile_id;   ///< storage id (position in tile order)
};

/// Build the column-major layout view of a tile matrix.
template <class T>
TileLayoutCsc tile_layout_csc(const TileMatrix<T>& m);

/// Capacity-preserving variant: rebuilds the view inside `out` so pooled
/// callers (SpgemmContext) avoid re-allocating it on every multiply.
template <class T>
void tile_layout_csc(const TileMatrix<T>& m, TileLayoutCsc& out);

extern template struct TileMatrix<double>;
extern template struct TileMatrix<float>;
extern template TileLayoutCsc tile_layout_csc(const TileMatrix<double>&);
extern template TileLayoutCsc tile_layout_csc(const TileMatrix<float>&);
extern template void tile_layout_csc(const TileMatrix<double>&, TileLayoutCsc&);
extern template void tile_layout_csc(const TileMatrix<float>&, TileLayoutCsc&);

}  // namespace tsg
