// Operand validation at the SpgemmContext API boundary.
//
// The kernels themselves trust their inputs (like the GPU kernels of the
// paper's artifact) — so a malformed operand, an overflowed offset, or an
// unexpected NaN must be caught *before* the pipeline runs. These helpers
// turn the matrix-layer invariant walks into tsg::Status values, graded by
// ValidationLevel:
//
//   kOff    nothing here runs (dimension compatibility is still checked by
//           the caller).
//   kCheap  O(rows + tiles): array sizes vs. header counts, monotone
//           pointers, index-overflow symptoms (negative nnz, negative
//           offsets). Cheap enough to leave on by default.
//   kFull   the complete invariant walk (TileMatrix/Csr::validate(), which
//           rebuilds masks and brackets every nonzero) plus the NanPolicy
//           scan over the values.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>

#include "common/status.h"
#include "core/tile_format.h"
#include "matrix/csr.h"

namespace tsg {
namespace detail {

/// NanPolicy::kReject scan: first non-finite value fails the operand.
template <class Vec>
inline Status scan_finite(const Vec& vals, const char* name) {
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (!std::isfinite(static_cast<double>(vals[i]))) {
      return Status::invalid_argument(std::string(name) + ": non-finite value at nonzero " +
                                      std::to_string(i) + " (NanPolicy::kReject)");
    }
  }
  return Status{};
}

}  // namespace detail

/// Grade-`level` check of a tile-format operand named `name` ("A", "B",
/// "mask"). Returns the first violation found, classified as
/// kInvalidArgument (malformed structure) or kIndexOverflow (a count or
/// offset that has wrapped negative / out of range).
template <class T>
Status validate_tile_operand(const TileMatrix<T>& m, const char* name, ValidationLevel level,
                             NanPolicy nan_policy) {
  if (level == ValidationLevel::kOff) return Status{};
  const std::string who(name);

  if (m.rows < 0 || m.cols < 0) {
    return Status::index_overflow(who + ": negative dimensions (index_t overflow)");
  }
  if (m.tile_rows != ceil_div(m.rows, kTileDim) || m.tile_cols != ceil_div(m.cols, kTileDim)) {
    return Status::invalid_argument(who + ": tile grid inconsistent with dimensions");
  }
  // An empty (default-constructed) matrix carries no arrays at all; that is
  // a valid operand for a 0x0 multiply.
  if (m.tile_ptr.empty()) {
    if (m.tile_rows != 0 || !m.tile_col_idx.empty() || !m.val.empty()) {
      return Status::invalid_argument(who + ": missing tile_ptr");
    }
    return Status{};
  }
  if (m.tile_ptr.size() != static_cast<std::size_t>(m.tile_rows) + 1) {
    return Status::invalid_argument(who + ": tile_ptr size does not match tile_rows+1");
  }
  const offset_t ntiles = m.num_tiles();
  if (m.tile_ptr.front() != 0 || m.tile_ptr.back() != ntiles) {
    return Status::invalid_argument(who + ": tile_ptr does not bracket the tile arrays");
  }
  for (index_t tr = 0; tr < m.tile_rows; ++tr) {
    const offset_t lo = m.tile_ptr[static_cast<std::size_t>(tr)];
    const offset_t hi = m.tile_ptr[static_cast<std::size_t>(tr) + 1];
    if (lo < 0) return Status::index_overflow(who + ": negative tile_ptr entry");
    if (hi < lo) {
      return Status::invalid_argument(who + ": tile_ptr not monotone at tile row " +
                                      std::to_string(tr));
    }
  }
  const bool empty_nnz_ok = ntiles == 0 && m.tile_nnz.empty();
  if (!empty_nnz_ok && m.tile_nnz.size() != static_cast<std::size_t>(ntiles) + 1) {
    return Status::invalid_argument(who + ": tile_nnz size does not match numtiles+1");
  }
  if (!m.tile_nnz.empty() && m.tile_nnz.front() != 0) {
    return Status::invalid_argument(who + ": tile_nnz does not start at 0");
  }
  const offset_t nnz = m.nnz();
  if (nnz < 0) return Status::index_overflow(who + ": nnz overflowed offset_t");
  // Widened size bookkeeping: numtiles*16 cannot wrap std::size_t with real
  // inputs, but a corrupted header can make it try.
  std::size_t per_row_entries = 0;
  if (!checked_mul(static_cast<std::size_t>(ntiles), static_cast<std::size_t>(kTileDim),
                   per_row_entries)) {
    return Status::index_overflow(who + ": numtiles*16 overflows size arithmetic");
  }
  if (m.row_ptr.size() != per_row_entries || m.mask.size() != per_row_entries) {
    return Status::invalid_argument(who + ": row_ptr/mask size does not match numtiles*16");
  }
  if (m.row_idx.size() != static_cast<std::size_t>(nnz) ||
      m.col_idx.size() != static_cast<std::size_t>(nnz) ||
      m.val.size() != static_cast<std::size_t>(nnz)) {
    return Status::invalid_argument(who + ": nonzero array sizes inconsistent with nnz");
  }

  if (level == ValidationLevel::kFull) {
    if (std::string err = m.validate(); !err.empty()) {
      return Status::invalid_argument(who + ": " + err);
    }
    if (nan_policy == NanPolicy::kReject) {
      if (Status s = detail::scan_finite(m.val, name); !s.ok()) return s;
    }
  }
  return Status{};
}

/// Grade-`level` check of a CSR operand (try_run_csr boundary).
template <class T>
Status validate_csr_operand(const Csr<T>& m, const char* name, ValidationLevel level,
                            NanPolicy nan_policy) {
  if (level == ValidationLevel::kOff) return Status{};
  const std::string who(name);

  if (m.rows < 0 || m.cols < 0) {
    return Status::index_overflow(who + ": negative dimensions (index_t overflow)");
  }
  if (m.row_ptr.empty()) {
    if (m.rows != 0 || !m.col_idx.empty() || !m.val.empty()) {
      return Status::invalid_argument(who + ": missing row_ptr");
    }
    return Status{};
  }
  if (m.row_ptr.size() != static_cast<std::size_t>(m.rows) + 1) {
    return Status::invalid_argument(who + ": row_ptr size does not match rows+1");
  }
  if (m.row_ptr.front() != 0) {
    return Status::invalid_argument(who + ": row_ptr does not start at 0");
  }
  for (index_t i = 0; i < m.rows; ++i) {
    const offset_t lo = m.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = m.row_ptr[static_cast<std::size_t>(i) + 1];
    if (lo < 0) return Status::index_overflow(who + ": negative row_ptr entry");
    if (hi < lo) {
      return Status::invalid_argument(who + ": row_ptr not monotone at row " + std::to_string(i));
    }
  }
  const offset_t nnz = m.nnz();
  if (nnz < 0) return Status::index_overflow(who + ": nnz overflowed offset_t");
  if (m.col_idx.size() != static_cast<std::size_t>(nnz) ||
      m.val.size() != static_cast<std::size_t>(nnz)) {
    return Status::invalid_argument(who + ": col_idx/val sizes inconsistent with nnz");
  }

  if (level == ValidationLevel::kFull) {
    if (std::string err = m.validate(); !err.empty()) {
      return Status::invalid_argument(who + ": " + err);
    }
    if (nan_policy == NanPolicy::kReject) {
      if (Status s = detail::scan_finite(m.val, name); !s.ok()) return s;
    }
  }
  return Status{};
}

}  // namespace tsg
