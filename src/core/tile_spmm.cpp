#include "core/tile_spmm.h"

#include <stdexcept>

#include "common/parallel.h"

namespace tsg {

template <class T>
DenseMatrix<T> tile_spmm(const TileMatrix<T>& a, const DenseMatrix<T>& x) {
  if (x.rows != a.cols) throw std::invalid_argument("tile_spmm: inner dimensions differ");
  DenseMatrix<T> y(a.rows, x.cols);

  parallel_for(index_t{0}, a.tile_rows, [&](index_t tr) {
    const index_t row_base = tr * kTileDim;
    for (offset_t t = a.tile_ptr[tr]; t < a.tile_ptr[tr + 1]; ++t) {
      const index_t col_base = a.tile_col_idx[t] * kTileDim;
      const offset_t nz_base = a.tile_nnz[static_cast<std::size_t>(t)];
      const index_t count = a.tile_nnz_of(t);
      for (index_t k = 0; k < count; ++k) {
        const std::size_t g = static_cast<std::size_t>(nz_base + k);
        const index_t out_row = row_base + a.row_idx[g];
        const index_t in_row = col_base + a.col_idx[g];
        const T v = a.val[g];
        const T* x_row = x.data.data() +
                         static_cast<std::size_t>(in_row) * static_cast<std::size_t>(x.cols);
        T* y_row = y.data.data() +
                   static_cast<std::size_t>(out_row) * static_cast<std::size_t>(x.cols);
        for (index_t c = 0; c < x.cols; ++c) y_row[c] += v * x_row[c];
      }
    }
  });
  return y;
}

template struct DenseMatrix<double>;
template struct DenseMatrix<float>;
template DenseMatrix<double> tile_spmm(const TileMatrix<double>&, const DenseMatrix<double>&);
template DenseMatrix<float> tile_spmm(const TileMatrix<float>&, const DenseMatrix<float>&);

}  // namespace tsg
