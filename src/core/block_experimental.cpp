#include "core/block_experimental.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"

namespace tsg::experimental {

namespace {

template <class Mask>
int popcount_mask(Mask m) {
  return std::popcount(static_cast<std::make_unsigned_t<Mask>>(m));
}

template <class Mask>
Mask bit_at(index_t c) {
  return static_cast<Mask>(Mask{1} << c);
}

/// Column-major view of a block layout (block col -> sorted block rows).
struct LayoutCsc {
  tracked_vector<offset_t> col_ptr;
  tracked_vector<index_t> row_idx;
  tracked_vector<offset_t> block_id;
};

template <int Dim, class T>
LayoutCsc layout_csc(const BlockMatrix<Dim, T>& m) {
  LayoutCsc v;
  const offset_t nblocks = m.num_blocks();
  v.col_ptr.assign(static_cast<std::size_t>(m.block_cols) + 1, 0);
  v.row_idx.resize(static_cast<std::size_t>(nblocks));
  v.block_id.resize(static_cast<std::size_t>(nblocks));
  for (offset_t k = 0; k < nblocks; ++k) {
    v.col_ptr[static_cast<std::size_t>(m.block_col_idx[k]) + 1]++;
  }
  for (index_t j = 0; j < m.block_cols; ++j) v.col_ptr[j + 1] += v.col_ptr[j];
  tracked_vector<offset_t> cursor(v.col_ptr.begin(), v.col_ptr.end() - 1);
  for (index_t br = 0; br < m.block_rows; ++br) {
    for (offset_t k = m.block_ptr[br]; k < m.block_ptr[br + 1]; ++k) {
      const offset_t dst = cursor[m.block_col_idx[k]]++;
      v.row_idx[dst] = br;
      v.block_id[dst] = k;
    }
  }
  return v;
}

}  // namespace

template <int Dim, class T>
BlockMatrix<Dim, T> csr_to_block(const Csr<T>& a) {
  using Traits = BlockTraits<Dim>;
  BlockMatrix<Dim, T> m;
  m.rows = a.rows;
  m.cols = a.cols;
  m.block_rows = ceil_div(a.rows, Dim);
  m.block_cols = ceil_div(a.cols, Dim);
  m.block_ptr.assign(static_cast<std::size_t>(m.block_rows) + 1, 0);

  // Pass 1: blocks per block row + nnz per block.
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(m.block_rows));
  std::vector<std::vector<offset_t>> counts(static_cast<std::size_t>(m.block_rows));
  for (index_t br = 0; br < m.block_rows; ++br) {
    std::vector<offset_t> count(static_cast<std::size_t>(m.block_cols), 0);
    const index_t row_end = std::min<index_t>((br + 1) * Dim, a.rows);
    for (index_t i = br * Dim; i < row_end; ++i) {
      for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        count[static_cast<std::size_t>(a.col_idx[k] / Dim)]++;
      }
    }
    for (index_t bc = 0; bc < m.block_cols; ++bc) {
      if (count[static_cast<std::size_t>(bc)] > 0) {
        cols[static_cast<std::size_t>(br)].push_back(bc);
        counts[static_cast<std::size_t>(br)].push_back(count[static_cast<std::size_t>(bc)]);
      }
    }
  }
  for (index_t br = 0; br < m.block_rows; ++br) {
    m.block_ptr[br + 1] =
        m.block_ptr[br] + static_cast<offset_t>(cols[static_cast<std::size_t>(br)].size());
  }
  const offset_t nblocks = m.block_ptr[m.block_rows];
  m.block_col_idx.resize(static_cast<std::size_t>(nblocks));
  m.block_nnz.assign(static_cast<std::size_t>(nblocks) + 1, 0);
  {
    offset_t pos = 0;
    offset_t running = 0;
    for (index_t br = 0; br < m.block_rows; ++br) {
      for (std::size_t s = 0; s < cols[static_cast<std::size_t>(br)].size(); ++s, ++pos) {
        m.block_col_idx[static_cast<std::size_t>(pos)] = cols[static_cast<std::size_t>(br)][s];
        running += counts[static_cast<std::size_t>(br)][s];
        m.block_nnz[static_cast<std::size_t>(pos) + 1] = running;
      }
    }
  }

  const std::size_t n = static_cast<std::size_t>(m.nnz());
  m.row_ptr.assign(checked_size_mul(static_cast<std::size_t>(nblocks), Dim), 0);
  m.mask.assign(checked_size_mul(static_cast<std::size_t>(nblocks), Dim), 0);
  m.row_idx.resize(n);
  m.col_idx.resize(n);
  m.val.resize(n);

  // Pass 2: scatter.
  parallel_for(index_t{0}, m.block_rows, [&](index_t br) {
    const offset_t first = m.block_ptr[br];
    const index_t here = static_cast<index_t>(m.block_ptr[br + 1] - first);
    if (here == 0) return;
    std::vector<index_t> cursor(static_cast<std::size_t>(here), 0);
    const index_t row_end = std::min<index_t>((br + 1) * Dim, a.rows);
    for (index_t i = br * Dim; i < row_end; ++i) {
      const index_t lr = i - br * Dim;
      for (index_t s = 0; s < here; ++s) {
        m.row_ptr[static_cast<std::size_t>(first + s) * Dim + static_cast<std::size_t>(lr)] =
            static_cast<typename Traits::local_ptr>(cursor[static_cast<std::size_t>(s)]);
      }
      offset_t slot = first;
      for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const index_t bc = a.col_idx[k] / Dim;
        while (m.block_col_idx[static_cast<std::size_t>(slot)] != bc) ++slot;
        const index_t s = static_cast<index_t>(slot - first);
        const index_t lc = a.col_idx[k] - bc * Dim;
        const std::size_t dst = static_cast<std::size_t>(
            m.block_nnz[static_cast<std::size_t>(slot)] + cursor[static_cast<std::size_t>(s)]);
        m.row_idx[dst] = static_cast<typename Traits::local_index>(lr);
        m.col_idx[dst] = static_cast<typename Traits::local_index>(lc);
        m.val[dst] = a.val[k];
        m.mask[static_cast<std::size_t>(slot) * Dim + static_cast<std::size_t>(lr)] =
            static_cast<typename Traits::mask_type>(
                m.mask[static_cast<std::size_t>(slot) * Dim + static_cast<std::size_t>(lr)] |
                bit_at<typename Traits::mask_type>(lc));
        cursor[static_cast<std::size_t>(s)]++;
      }
    }
    for (index_t lr = row_end - br * Dim; lr < Dim; ++lr) {
      for (index_t s = 0; s < here; ++s) {
        m.row_ptr[static_cast<std::size_t>(first + s) * Dim + static_cast<std::size_t>(lr)] =
            static_cast<typename Traits::local_ptr>(cursor[static_cast<std::size_t>(s)]);
      }
    }
  });
  return m;
}

template <int Dim, class T>
Csr<T> block_to_csr(const BlockMatrix<Dim, T>& m) {
  Csr<T> a(m.rows, m.cols);
  const std::size_t n = static_cast<std::size_t>(m.nnz());
  a.col_idx.resize(n);
  a.val.resize(n);
  for (index_t br = 0; br < m.block_rows; ++br) {
    for (offset_t blk = m.block_ptr[br]; blk < m.block_ptr[br + 1]; ++blk) {
      const auto* mask = m.mask.data() + static_cast<std::size_t>(blk) * Dim;
      for (index_t r = 0; r < Dim; ++r) {
        const index_t row = br * Dim + r;
        if (row < m.rows) a.row_ptr[row + 1] += popcount_mask(mask[r]);
      }
    }
  }
  for (index_t i = 0; i < m.rows; ++i) a.row_ptr[i + 1] += a.row_ptr[i];
  tracked_vector<offset_t> cursor(a.row_ptr.begin(), a.row_ptr.end() - 1);
  for (index_t br = 0; br < m.block_rows; ++br) {
    for (offset_t blk = m.block_ptr[br]; blk < m.block_ptr[br + 1]; ++blk) {
      const index_t col_base = m.block_col_idx[blk] * Dim;
      const offset_t nz = m.block_nnz[static_cast<std::size_t>(blk)];
      const offset_t count = m.block_nnz[static_cast<std::size_t>(blk) + 1] - nz;
      for (offset_t k = 0; k < count; ++k) {
        const std::size_t g = static_cast<std::size_t>(nz + k);
        const index_t row = br * Dim + m.row_idx[g];
        const offset_t dst = cursor[row]++;
        a.col_idx[dst] = col_base + m.col_idx[g];
        a.val[dst] = m.val[g];
      }
    }
  }
  return a;
}

template <int Dim, class T>
BlockMatrix<Dim, T> block_spgemm(const BlockMatrix<Dim, T>& a, const BlockMatrix<Dim, T>& b) {
  using Traits = BlockTraits<Dim>;
  using Mask = typename Traits::mask_type;
  if (a.cols != b.rows) throw std::invalid_argument("block_spgemm: inner dims differ");

  const LayoutCsc b_csc = layout_csc(b);

  // Step 1: block structure of C via a stamped union per block row.
  BlockMatrix<Dim, T> c;
  c.rows = a.rows;
  c.cols = b.cols;
  c.block_rows = a.block_rows;
  c.block_cols = b.block_cols;
  c.block_ptr.assign(static_cast<std::size_t>(c.block_rows) + 1, 0);
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(c.block_rows));
  parallel_for(index_t{0}, c.block_rows, [&](index_t bi) {
    std::vector<bool> seen(static_cast<std::size_t>(c.block_cols), false);
    auto& out = rows[static_cast<std::size_t>(bi)];
    for (offset_t ka = a.block_ptr[bi]; ka < a.block_ptr[bi + 1]; ++ka) {
      const index_t bk = a.block_col_idx[ka];
      for (offset_t kb = b.block_ptr[bk]; kb < b.block_ptr[bk + 1]; ++kb) {
        const index_t bj = b.block_col_idx[kb];
        if (!seen[static_cast<std::size_t>(bj)]) {
          seen[static_cast<std::size_t>(bj)] = true;
          out.push_back(bj);
        }
      }
    }
    std::sort(out.begin(), out.end());
  });
  for (index_t bi = 0; bi < c.block_rows; ++bi) {
    c.block_ptr[bi + 1] =
        c.block_ptr[bi] + static_cast<offset_t>(rows[static_cast<std::size_t>(bi)].size());
  }
  const offset_t nblocks = c.block_ptr[c.block_rows];
  c.block_col_idx.resize(static_cast<std::size_t>(nblocks));
  c.block_nnz.assign(static_cast<std::size_t>(nblocks) + 1, 0);
  c.row_ptr.assign(checked_size_mul(static_cast<std::size_t>(nblocks), Dim), 0);
  c.mask.assign(checked_size_mul(static_cast<std::size_t>(nblocks), Dim), 0);
  tracked_vector<index_t> block_row_of(static_cast<std::size_t>(nblocks));
  {
    offset_t pos = 0;
    for (index_t bi = 0; bi < c.block_rows; ++bi) {
      for (index_t bj : rows[static_cast<std::size_t>(bi)]) {
        c.block_col_idx[static_cast<std::size_t>(pos)] = bj;
        block_row_of[static_cast<std::size_t>(pos)] = bi;
        ++pos;
      }
    }
  }

  // Step 2: masks per C block (merge intersection + OR of B row masks).
  parallel_for(offset_t{0}, nblocks, [&](offset_t t) {
    const index_t bi = block_row_of[static_cast<std::size_t>(t)];
    const index_t bj = c.block_col_idx[static_cast<std::size_t>(t)];
    Mask mask_c[Dim] = {};

    offset_t ka = a.block_ptr[bi];
    offset_t kb = b_csc.col_ptr[bj];
    const offset_t ea = a.block_ptr[bi + 1], eb = b_csc.col_ptr[bj + 1];
    while (ka < ea && kb < eb) {
      const index_t ca = a.block_col_idx[static_cast<std::size_t>(ka)];
      const index_t rb = b_csc.row_idx[static_cast<std::size_t>(kb)];
      if (ca == rb) {
        const offset_t blk_b = b_csc.block_id[static_cast<std::size_t>(kb)];
        const Mask* mask_b = b.mask.data() + static_cast<std::size_t>(blk_b) * Dim;
        const offset_t nz = a.block_nnz[static_cast<std::size_t>(ka)];
        const offset_t count = a.block_nnz[static_cast<std::size_t>(ka) + 1] - nz;
        for (offset_t k = 0; k < count; ++k) {
          const std::size_t g = static_cast<std::size_t>(nz + k);
          mask_c[a.row_idx[g]] = static_cast<Mask>(mask_c[a.row_idx[g]] | mask_b[a.col_idx[g]]);
        }
        ++ka;
        ++kb;
      } else if (ca < rb) {
        ++ka;
      } else {
        ++kb;
      }
    }
    index_t count = 0;
    const std::size_t base = static_cast<std::size_t>(t) * Dim;
    for (index_t r = 0; r < Dim; ++r) {
      c.row_ptr[base + static_cast<std::size_t>(r)] =
          static_cast<typename Traits::local_ptr>(count);
      c.mask[base + static_cast<std::size_t>(r)] = mask_c[r];
      count += popcount_mask(mask_c[r]);
    }
    c.block_nnz[static_cast<std::size_t>(t) + 1] = count;
  });
  for (offset_t t = 0; t < nblocks; ++t) {
    c.block_nnz[static_cast<std::size_t>(t) + 1] += c.block_nnz[static_cast<std::size_t>(t)];
  }
  const std::size_t total = static_cast<std::size_t>(c.nnz());
  c.row_idx.resize(total);
  c.col_idx.resize(total);
  c.val.resize(total);

  // Step 3: dense Dim x Dim accumulation + mask compression.
  parallel_for(offset_t{0}, nblocks, [&](offset_t t) {
    const index_t bi = block_row_of[static_cast<std::size_t>(t)];
    const index_t bj = c.block_col_idx[static_cast<std::size_t>(t)];
    const std::size_t base = static_cast<std::size_t>(t) * Dim;
    const offset_t nz_base = c.block_nnz[static_cast<std::size_t>(t)];
    const Mask* mask_c = c.mask.data() + base;

    T acc[Dim * Dim] = {};
    offset_t ka = a.block_ptr[bi];
    offset_t kb = b_csc.col_ptr[bj];
    const offset_t ea = a.block_ptr[bi + 1], eb = b_csc.col_ptr[bj + 1];
    while (ka < ea && kb < eb) {
      const index_t ca = a.block_col_idx[static_cast<std::size_t>(ka)];
      const index_t rb = b_csc.row_idx[static_cast<std::size_t>(kb)];
      if (ca == rb) {
        const offset_t blk_b = b_csc.block_id[static_cast<std::size_t>(kb)];
        const offset_t a_nz = a.block_nnz[static_cast<std::size_t>(ka)];
        const offset_t a_count = a.block_nnz[static_cast<std::size_t>(ka) + 1] - a_nz;
        for (offset_t k = 0; k < a_count; ++k) {
          const std::size_t ga = static_cast<std::size_t>(a_nz + k);
          const index_t r = a.row_idx[ga];
          const index_t mid = a.col_idx[ga];
          const T va = a.val[ga];
          // Row `mid` of B's block.
          const std::size_t bbase = static_cast<std::size_t>(blk_b) * Dim;
          const offset_t b_nz = b.block_nnz[static_cast<std::size_t>(blk_b)];
          const offset_t lo = b.row_ptr[bbase + static_cast<std::size_t>(mid)];
          const offset_t hi =
              mid + 1 < Dim
                  ? static_cast<offset_t>(b.row_ptr[bbase + static_cast<std::size_t>(mid) + 1])
                  : b.block_nnz[static_cast<std::size_t>(blk_b) + 1] - b_nz;
          for (offset_t k2 = lo; k2 < hi; ++k2) {
            const std::size_t gb = static_cast<std::size_t>(b_nz + k2);
            acc[static_cast<std::size_t>(r) * Dim + b.col_idx[gb]] += va * b.val[gb];
          }
        }
        ++ka;
        ++kb;
      } else if (ca < rb) {
        ++ka;
      } else {
        ++kb;
      }
    }
    index_t out = 0;
    for (index_t r = 0; r < Dim; ++r) {
      auto mrow = static_cast<std::make_unsigned_t<Mask>>(mask_c[r]);
      while (mrow != 0) {
        const index_t col = static_cast<index_t>(std::countr_zero(mrow));
        const std::size_t dst = static_cast<std::size_t>(nz_base + out);
        c.row_idx[dst] = static_cast<typename Traits::local_index>(r);
        c.col_idx[dst] = static_cast<typename Traits::local_index>(col);
        c.val[dst] = acc[static_cast<std::size_t>(r) * Dim + col];
        ++out;
        mrow &= mrow - 1;
      }
    }
  });
  return c;
}

#define TSG_BLOCK_INSTANTIATE(Dim, T)                                        \
  template BlockMatrix<Dim, T> csr_to_block<Dim, T>(const Csr<T>&);          \
  template Csr<T> block_to_csr(const BlockMatrix<Dim, T>&);                  \
  template BlockMatrix<Dim, T> block_spgemm(const BlockMatrix<Dim, T>&,      \
                                            const BlockMatrix<Dim, T>&);
TSG_BLOCK_INSTANTIATE(8, double)
TSG_BLOCK_INSTANTIATE(16, double)
TSG_BLOCK_INSTANTIATE(32, double)
#undef TSG_BLOCK_INSTANTIATE

}  // namespace tsg::experimental
