// Space and occupancy statistics of the sparse tile format (Figs. 9/11 and
// the cop20k_A discussion in Section 4.2).
#pragma once

#include <cstddef>

#include "core/tile_format.h"
#include "matrix/csr.h"

namespace tsg {

struct TileFormatStats {
  offset_t num_tiles = 0;
  offset_t nnz = 0;
  double avg_nnz_per_tile = 0.0;   ///< hyper-sparsity indicator (cop20k_A ~1.2)
  index_t max_nnz_per_tile = 0;
  offset_t empty_tiles = 0;        ///< tiles kept by step 1 that hold no nonzero
  std::size_t bytes = 0;           ///< total storage of the tile structure
  std::size_t high_level_bytes = 0;///< tilePtr + tileColIdx + tileNnz
  std::size_t mask_bytes = 0;
  std::size_t row_ptr_bytes = 0;
};

template <class T>
TileFormatStats tile_format_stats(const TileMatrix<T>& t);

/// Bytes of the equivalent CSR storage (Fig. 11's "CSR" series).
template <class T>
std::size_t csr_bytes(const Csr<T>& a);

extern template TileFormatStats tile_format_stats(const TileMatrix<double>&);
extern template TileFormatStats tile_format_stats(const TileMatrix<float>&);
extern template std::size_t csr_bytes(const Csr<double>&);
extern template std::size_t csr_bytes(const Csr<float>&);

}  // namespace tsg
