// Sparse matrix addition directly on the tile format: C = alpha*A + beta*B.
//
// AMG-style pipelines interleave products with additions (e.g. forming
// I - w*D^-1*A before a Galerkin product); computing the addition natively
// on tiles keeps such chains inside the tiled format, which is the paper's
// amortisation argument for the conversion cost (Section 4.6).
//
// The structure mirrors one step of the SpGEMM: merge the two tile layouts,
// OR the per-row masks of matching tiles, then scatter values by
// popcount-rank — all per-tile state bounded by 16 masks.
#pragma once

#include "core/tile_format.h"

namespace tsg {

template <class T>
TileMatrix<T> tile_add(const TileMatrix<T>& a, const TileMatrix<T>& b, T alpha = T{1},
                       T beta = T{1});

extern template TileMatrix<double> tile_add(const TileMatrix<double>&,
                                            const TileMatrix<double>&, double, double);
extern template TileMatrix<float> tile_add(const TileMatrix<float>&, const TileMatrix<float>&,
                                           float, float);

}  // namespace tsg
