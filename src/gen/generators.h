// Synthetic sparse-matrix generators.
//
// The paper evaluates on SuiteSparse matrices, which are not available in
// this offline environment. These generators produce deterministic matrices
// spanning the same structural classes the paper's dataset covers:
//   * FEM/stencil matrices (pdb1HYS, cant, pwtk, af_shell10, ...):
//     clustered_rows / stencil_* / banded
//   * power-law web/graph matrices (webbase-1M, wiki-Vote): rmat
//   * hyper-sparse circuit/economics matrices (scircuit, mac_econ): erdos_renyi
//     with tiny average degree
//   * high-compression-rate matrices (SiO2, gupta3, TSOPF): dense_blocks
// Every generator is deterministic in its seed.
#pragma once

#include <cstdint>

#include "matrix/csr.h"

namespace tsg::gen {

/// Values are drawn uniformly from [lo, hi); defaults avoid zero so that
/// additive cancellation is the only source of explicit zeros in products.
struct ValueDist {
  double lo = 0.1;
  double hi = 1.1;
};

/// Uniformly random pattern with ~`nnz_target` nonzeros (duplicates are
/// merged, so the realised count can be slightly lower).
Csr<double> erdos_renyi(index_t rows, index_t cols, offset_t nnz_target, std::uint64_t seed,
                        ValueDist dist = {});

/// Recursive-matrix (R-MAT) power-law graph on n = 2^scale vertices with
/// ~edge_factor*n edges. Defaults (a,b,c) follow the Graph500 generator;
/// produces the few-very-long-rows skew of webbase-1M.
Csr<double> rmat(int scale, double edge_factor, std::uint64_t seed, double a = 0.57,
                 double b = 0.19, double c = 0.19, ValueDist dist = {});

/// 5-point Laplacian stencil on an nx-by-ny grid (n = nx*ny).
Csr<double> stencil_5pt(index_t nx, index_t ny);

/// 9-point stencil on an nx-by-ny grid.
Csr<double> stencil_9pt(index_t nx, index_t ny);

/// 27-point stencil on an nx-by-ny-by-nz grid.
Csr<double> stencil_27pt(index_t nx, index_t ny, index_t nz);

/// Band matrix: row i holds all columns in [i-half_bw, i+half_bw] (clipped).
/// A^2 of a band matrix has compression rate ~ half_bw, giving precise
/// control of the Fig. 6 x-axis.
Csr<double> banded(index_t n, index_t half_bw, std::uint64_t seed, ValueDist dist = {});

/// Block-diagonal matrix of `blocks` dense blocks of size `block_dim`
/// (n = blocks*block_dim). A^2 has compression rate ~ block_dim: the proxy
/// for gupta3/TSOPF-class matrices whose intermediate-product volume breaks
/// row-row methods.
Csr<double> dense_blocks(index_t blocks, index_t block_dim, std::uint64_t seed,
                         ValueDist dist = {});

/// FEM-style rows: each row holds `clusters` runs of `run_len` consecutive
/// columns around randomly placed centres (plus the diagonal), mimicking the
/// blocked structure of pdb1HYS / cant / shipsec1.
Csr<double> clustered_rows(index_t n, int clusters, int run_len, std::uint64_t seed,
                           ValueDist dist = {});

/// Symmetrise the pattern: returns A + A^T structure with A's values where
/// present (value of a mirrored-only entry is the mirrored value).
Csr<double> symmetrized(const Csr<double>& a);

/// Kronecker (tensor) product A (x) B: entry ((ia*rowsB+ib),(ja*colsB+jb))
/// = a[ia][ja] * b[ib][jb]. The classic recursive-graph construction
/// (Kronecker graphs generalise R-MAT) and a rich algebra for property
/// tests: (A (x) B)(C (x) D) = (AC) (x) (BD).
Csr<double> kronecker(const Csr<double>& a, const Csr<double>& b);

/// Cast values (structure shared) to another value type.
template <class Dst, class Src>
Csr<Dst> cast_values(const Csr<Src>& a) {
  Csr<Dst> out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.row_ptr = a.row_ptr;
  out.col_idx = a.col_idx;
  out.val.reserve(a.val.size());
  for (const auto& v : a.val) out.val.push_back(static_cast<Dst>(v));
  return out;
}

}  // namespace tsg::gen
