#include "gen/suite.h"

#include <string>

#include "gen/generators.h"

namespace tsg::gen {

namespace {

NamedMatrix named(std::string name, std::string structure, bool sym, Csr<double> a) {
  return NamedMatrix{std::move(name), std::move(structure), sym, std::move(a)};
}

}  // namespace

std::vector<NamedMatrix> fig6_suite() {
  std::vector<NamedMatrix> suite;
  suite.reserve(48);

  // Hyper-sparse random matrices: compression rate close to 1.
  for (int i = 0; i < 6; ++i) {
    const index_t n = 6000 + 2500 * i;
    const offset_t nnz = static_cast<offset_t>(n) * (4 + i);
    suite.push_back(named("er_d" + std::to_string(4 + i) + "_n" + std::to_string(n),
                          "uniform random, avg degree " + std::to_string(4 + i), false,
                          erdos_renyi(n, n, nnz, 0x3000 + static_cast<std::uint64_t>(i))));
  }

  // Stencils: low, very regular compression rates.
  suite.push_back(named("stencil5_300", "5-pt stencil 300x300", false, stencil_5pt(300, 300)));
  suite.push_back(named("stencil5_420", "5-pt stencil 420x420", false, stencil_5pt(420, 420)));
  suite.push_back(named("stencil9_240", "9-pt stencil 240x240", false, stencil_9pt(240, 240)));
  suite.push_back(named("stencil9_340", "9-pt stencil 340x340", false, stencil_9pt(340, 340)));
  suite.push_back(named("stencil27_14", "27-pt stencil 14^3", false, stencil_27pt(14, 14, 14)));
  suite.push_back(named("stencil27_18", "27-pt stencil 18^3", false, stencil_27pt(18, 18, 18)));

  // Band matrices: compression rate ~ half bandwidth.
  for (int i = 0; i < 8; ++i) {
    const index_t bw = 4 + 9 * i;  // 4 .. 67
    const index_t n = 26000 / (2 + i);
    suite.push_back(named("band_bw" + std::to_string(bw), "band, half bandwidth " +
                          std::to_string(bw), true,
                          banded(n, bw, 0x3100 + static_cast<std::uint64_t>(i))));
  }

  // Dense block-diagonal: compression rate ~ block size (up to ~140).
  for (int i = 0; i < 8; ++i) {
    const index_t k = 20 + 17 * i;  // 20 .. 139
    const index_t blocks = 3000 / k + 2;
    suite.push_back(named("blocks_k" + std::to_string(k),
                          "dense blocks " + std::to_string(k) + "^2", true,
                          dense_blocks(blocks, k, 0x3200 + static_cast<std::uint64_t>(i))));
  }

  // Power-law graphs: skewed rows, low-to-moderate rates.
  for (int i = 0; i < 6; ++i) {
    const int scale = 12 + i % 3;
    const double ef = 3.0 + 2.5 * (i / 3);
    suite.push_back(named("rmat_s" + std::to_string(scale) + "_e" +
                          std::to_string(static_cast<int>(ef)),
                          "R-MAT power-law", false,
                          rmat(scale, ef, 0x3300 + static_cast<std::uint64_t>(i))));
  }

  // FEM-like clustered rows: the bulk of SuiteSparse's middle range.
  for (int i = 0; i < 8; ++i) {
    const index_t n = 1400 + 450 * i;
    const int clusters = 3 + i % 4;
    const int run = 8 + 2 * (i % 3);
    suite.push_back(named("fem_c" + std::to_string(clusters) + "_r" + std::to_string(run) +
                          "_n" + std::to_string(n),
                          "clustered FEM-like rows", true,
                          symmetrized(clustered_rows(n, clusters, run,
                                                     0x3400 + static_cast<std::uint64_t>(i)))));
  }

  // Mixed: block + band composites for mid-high rates.
  for (int i = 0; i < 4; ++i) {
    const index_t k = 40 + 22 * i;
    suite.push_back(named("blockband_k" + std::to_string(k), "blocks over band", true,
                          dense_blocks(1400 / k + 2, k,
                                       0x3500 + static_cast<std::uint64_t>(i))));
  }

  return suite;
}

}  // namespace tsg::gen
