#include "gen/generators.h"

#include <algorithm>
#include <stdexcept>

#include "common/random.h"
#include "common/status.h"
#include "matrix/convert.h"

namespace tsg::gen {

namespace {

double draw_value(Xoshiro256& rng, const ValueDist& dist) {
  return dist.lo + (dist.hi - dist.lo) * rng.next_double();
}

}  // namespace

Csr<double> erdos_renyi(index_t rows, index_t cols, offset_t nnz_target, std::uint64_t seed,
                        ValueDist dist) {
  if (rows <= 0 || cols <= 0) throw std::invalid_argument("erdos_renyi: empty shape");
  Xoshiro256 rng(seed);
  Coo<double> coo;
  coo.rows = rows;
  coo.cols = cols;
  coo.reserve(static_cast<std::size_t>(nnz_target));
  for (offset_t k = 0; k < nnz_target; ++k) {
    const index_t r = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows)));
    const index_t c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols)));
    coo.push_back(r, c, draw_value(rng, dist));
  }
  return coo_to_csr(std::move(coo));
}

Csr<double> rmat(int scale, double edge_factor, std::uint64_t seed, double a, double b,
                 double c, ValueDist dist) {
  if (scale < 1 || scale > 26) throw std::invalid_argument("rmat: scale out of range");
  const double d = 1.0 - a - b - c;
  if (d < 0.0) throw std::invalid_argument("rmat: probabilities exceed 1");
  const index_t n = index_t{1} << scale;
  const offset_t edges = static_cast<offset_t>(edge_factor * static_cast<double>(n));

  Xoshiro256 rng(seed);
  Coo<double> coo;
  coo.rows = n;
  coo.cols = n;
  coo.reserve(static_cast<std::size_t>(edges));
  for (offset_t e = 0; e < edges; ++e) {
    index_t r = 0, col = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double u = rng.next_double();
      // Quadrant choice with light per-level noise, as in the Graph500
      // generator, to avoid exactly self-similar artifacts.
      const double na = a * (0.95 + 0.1 * rng.next_double());
      const double nb = b * (0.95 + 0.1 * rng.next_double());
      const double nc = c * (0.95 + 0.1 * rng.next_double());
      const double norm = na + nb + nc + d * (0.95 + 0.1 * rng.next_double());
      const double x = u * norm;
      r <<= 1;
      col <<= 1;
      if (x < na) {
        // top-left
      } else if (x < na + nb) {
        col |= 1;
      } else if (x < na + nb + nc) {
        r |= 1;
      } else {
        r |= 1;
        col |= 1;
      }
    }
    coo.push_back(r, col, draw_value(rng, dist));
  }
  return coo_to_csr(std::move(coo));
}

namespace {

Csr<double> stencil_2d(index_t nx, index_t ny, bool nine_point) {
  if (nx <= 0 || ny <= 0) throw std::invalid_argument("stencil: empty grid");
  const index_t n = nx * ny;
  Coo<double> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t row = y * nx + x;
      for (index_t dy = -1; dy <= 1; ++dy) {
        for (index_t dx = -1; dx <= 1; ++dx) {
          // The 5-point stencil skips the diagonal neighbours.
          if (!nine_point && dx != 0 && dy != 0) continue;
          const index_t xx = x + dx;
          const index_t yy = y + dy;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          const index_t col = yy * nx + xx;
          coo.push_back(row, col, row == col ? 4.0 : -0.5);
        }
      }
    }
  }
  return coo_to_csr(std::move(coo));
}

}  // namespace

Csr<double> stencil_5pt(index_t nx, index_t ny) { return stencil_2d(nx, ny, false); }
Csr<double> stencil_9pt(index_t nx, index_t ny) { return stencil_2d(nx, ny, true); }

Csr<double> stencil_27pt(index_t nx, index_t ny, index_t nz) {
  if (nx <= 0 || ny <= 0 || nz <= 0) throw std::invalid_argument("stencil: empty grid");
  const index_t n = nx * ny * nz;
  Coo<double> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = (z * ny + y) * nx + x;
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz) continue;
              const index_t col = (zz * ny + yy) * nx + xx;
              coo.push_back(row, col, row == col ? 26.0 : -1.0);
            }
          }
        }
      }
    }
  }
  return coo_to_csr(std::move(coo));
}

Csr<double> banded(index_t n, index_t half_bw, std::uint64_t seed, ValueDist dist) {
  if (n <= 0 || half_bw < 0) throw std::invalid_argument("banded: bad shape");
  Xoshiro256 rng(seed);
  Csr<double> a(n, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = i - half_bw > 0 ? i - half_bw : 0;
    const index_t hi = i + half_bw < n - 1 ? i + half_bw : n - 1;
    for (index_t j = lo; j <= hi; ++j) {
      a.col_idx.push_back(j);
      a.val.push_back(draw_value(rng, dist));
    }
    a.row_ptr[i + 1] = static_cast<offset_t>(a.col_idx.size());
  }
  return a;
}

Csr<double> dense_blocks(index_t blocks, index_t block_dim, std::uint64_t seed,
                         ValueDist dist) {
  if (blocks <= 0 || block_dim <= 0) throw std::invalid_argument("dense_blocks: bad shape");
  Xoshiro256 rng(seed);
  const index_t n = blocks * block_dim;
  Csr<double> a(n, n);
  a.col_idx.reserve(checked_size_mul(n, static_cast<std::size_t>(block_dim)));
  a.val.reserve(a.col_idx.capacity());
  for (index_t i = 0; i < n; ++i) {
    const index_t base = (i / block_dim) * block_dim;
    for (index_t j = base; j < base + block_dim; ++j) {
      a.col_idx.push_back(j);
      a.val.push_back(draw_value(rng, dist));
    }
    a.row_ptr[i + 1] = static_cast<offset_t>(a.col_idx.size());
  }
  return a;
}

Csr<double> clustered_rows(index_t n, int clusters, int run_len, std::uint64_t seed,
                           ValueDist dist) {
  if (n <= 0 || clusters < 1 || run_len < 1)
    throw std::invalid_argument("clustered_rows: bad shape");
  Xoshiro256 rng(seed);
  Coo<double> coo;
  coo.rows = n;
  coo.cols = n;
  coo.reserve(checked_size_mul(static_cast<std::size_t>(n),
                               static_cast<std::size_t>(clusters * run_len + 1)));
  for (index_t i = 0; i < n; ++i) {
    coo.push_back(i, i, draw_value(rng, dist));
    for (int c = 0; c < clusters; ++c) {
      // Centres biased near the diagonal: FEM meshes have mostly local
      // couplings; allow occasional long-range runs.
      index_t centre;
      if (rng.next_double() < 0.8) {
        const index_t spread = n / 16 + run_len;
        const index_t offset =
            static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(2 * spread + 1))) -
            spread;
        centre = i + offset;
      } else {
        centre = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      }
      for (int r = 0; r < run_len; ++r) {
        const index_t j = centre + r;
        if (j >= 0 && j < n) coo.push_back(i, j, draw_value(rng, dist));
      }
    }
  }
  return coo_to_csr(std::move(coo));
}

Csr<double> symmetrized(const Csr<double>& a) {
  Coo<double> coo = csr_to_coo(a);
  const std::size_t original = coo.val.size();
  for (std::size_t k = 0; k < original; ++k) {
    if (coo.row[k] != coo.col[k]) coo.push_back(coo.col[k], coo.row[k], coo.val[k]);
  }
  // Where both (i,j) and (j,i) already existed the combine sums them;
  // the result is pattern-symmetric, which is all the structural
  // experiments need.
  return coo_to_csr(std::move(coo));
}

Csr<double> kronecker(const Csr<double>& a, const Csr<double>& b) {
  Csr<double> c(a.rows * b.rows, a.cols * b.cols);
  c.col_idx.reserve(checked_size_mul(a.nnz(), static_cast<std::size_t>(b.nnz())));
  c.val.reserve(c.col_idx.capacity());
  // Row (ia, ib) of C is the outer product of A's row ia with B's row ib;
  // emitting A-entries outermost keeps columns sorted.
  for (index_t ia = 0; ia < a.rows; ++ia) {
    for (index_t ib = 0; ib < b.rows; ++ib) {
      for (offset_t ka = a.row_ptr[ia]; ka < a.row_ptr[ia + 1]; ++ka) {
        const index_t col_base = a.col_idx[ka] * b.cols;
        const double va = a.val[ka];
        for (offset_t kb = b.row_ptr[ib]; kb < b.row_ptr[ib + 1]; ++kb) {
          c.col_idx.push_back(col_base + b.col_idx[kb]);
          c.val.push_back(va * b.val[kb]);
        }
      }
      c.row_ptr[ia * b.rows + ib + 1] = static_cast<offset_t>(c.col_idx.size());
    }
  }
  return c;
}

}  // namespace tsg::gen
