#include "gen/representative.h"

#include "gen/generators.h"

namespace tsg::gen {

namespace {

NamedMatrix make(std::string name, std::string structure, bool sym, Csr<double> a) {
  return NamedMatrix{std::move(name), std::move(structure), sym, std::move(a)};
}

}  // namespace

std::vector<NamedMatrix> representative_suite() {
  std::vector<NamedMatrix> suite;
  suite.reserve(18);

  // FEM protein/structural matrices: clustered medium-length rows.
  suite.push_back(make("pdb1HYS", "FEM protein, clustered ~60 nnz rows", true,
                       symmetrized(clustered_rows(2200, 6, 10, 0x1001))));
  suite.push_back(make("consph", "FEM spheres, clustered ~50 nnz rows", true,
                       symmetrized(clustered_rows(2600, 5, 10, 0x1002))));
  suite.push_back(make("cant", "FEM cantilever, clustered rows", true,
                       symmetrized(clustered_rows(2400, 4, 12, 0x1003))));
  suite.push_back(make("pwtk", "FEM wind tunnel, clustered rows", true,
                       symmetrized(clustered_rows(4200, 4, 10, 0x1004))));
  suite.push_back(make("rma10", "3D CFD, clustered rows (asymmetric)", false,
                       clustered_rows(1800, 5, 10, 0x1005)));
  suite.push_back(make("conf5_4-8x8-05", "QCD lattice, regular 27-pt-like stencil", false,
                       stencil_27pt(16, 16, 12)));
  suite.push_back(make("shipsec1", "FEM ship section, clustered rows", true,
                       symmetrized(clustered_rows(3600, 4, 11, 0x1007))));
  suite.push_back(make("mac_econ_fwd500", "economic model, hyper-sparse (asymmetric)", false,
                       erdos_renyi(12000, 12000, 75000, 0x1008)));
  suite.push_back(make("mc2depi", "epidemiology grid, 4 nnz/row (asymmetric)", false,
                       stencil_5pt(200, 200)));
  suite.push_back(make("cop20k_A", "accelerator cavity, scattered nonzeros", true,
                       symmetrized(erdos_renyi(9000, 9000, 76000, 0x100A))));
  suite.push_back(make("scircuit", "circuit simulation, hyper-sparse (asymmetric)", false,
                       erdos_renyi(11000, 11000, 66000, 0x100B)));
  suite.push_back(make("webbase-1M", "web graph, power-law (asymmetric)", false,
                       rmat(14, 3.0, 0x100C)));
  suite.push_back(make("af_shell10", "FEM sheet metal forming, wide band", true,
                       banded(5200, 17, 0x100D)));
  suite.push_back(make("pkustk12", "FEM structural, dense clusters", true,
                       symmetrized(clustered_rows(1600, 11, 10, 0x100E))));
  suite.push_back(make("SiO2", "quantum chemistry, very high compression rate", true,
                       dense_blocks(24, 130, 0x100F)));
  suite.push_back(make("case39", "power network expanded, moderate blocks", true,
                       dense_blocks(240, 22, 0x1010)));
  suite.push_back(make("TSOPF_FS_b300_c2", "optimal power flow, dense column blocks", true,
                       dense_blocks(90, 75, 0x1011)));
  suite.push_back(make("gupta3", "optimisation, dense arrow blocks", true,
                       dense_blocks(36, 110, 0x1012)));
  return suite;
}

std::vector<NamedMatrix> asymmetric_suite() {
  std::vector<NamedMatrix> all = representative_suite();
  std::vector<NamedMatrix> out;
  for (auto& m : all) {
    if (!m.symmetric_pattern) out.push_back(std::move(m));
  }
  return out;
}

std::vector<NamedMatrix> tsparse_suite() {
  std::vector<NamedMatrix> suite;
  suite.reserve(16);
  suite.push_back(make("mc2depi", "epidemiology grid", false, stencil_5pt(170, 170)));
  suite.push_back(make("webbase-1M", "web graph, power-law", false, rmat(13, 3.0, 0x2002)));
  suite.push_back(make("cage12", "DNA electrophoresis, ~8 nnz/row", false,
                       erdos_renyi(13000, 13000, 104000, 0x2003)));
  suite.push_back(make("dawson5", "structural FEM", true,
                       symmetrized(clustered_rows(3000, 3, 9, 0x2004))));
  suite.push_back(make("lock1074", "structural, small dense-ish", true,
                       symmetrized(clustered_rows(1074, 5, 10, 0x2005))));
  suite.push_back(make("patents_main", "citation graph, hyper-sparse", false,
                       erdos_renyi(24000, 24000, 98000, 0x2006)));
  suite.push_back(make("struct3", "structural mesh, banded", true,
                       banded(8000, 6, 0x2007)));
  suite.push_back(make("wiki-Vote", "small social graph, power-law", false,
                       rmat(13, 12.0, 0x2008)));
  suite.push_back(make("bcsstk30", "stiffness matrix, dense clusters", true,
                       symmetrized(clustered_rows(1800, 6, 11, 0x2009))));
  suite.push_back(make("nemeth21", "quantum chemistry band", true, banded(2200, 30, 0x200A)));
  suite.push_back(make("pcrystk03", "crystal FEM", true,
                       symmetrized(clustered_rows(2400, 5, 10, 0x200B))));
  suite.push_back(make("pct20stif", "stiffness FEM", true,
                       symmetrized(clustered_rows(2600, 4, 11, 0x200C))));
  suite.push_back(make("pkustk06", "structural FEM, dense clusters", true,
                       symmetrized(clustered_rows(1700, 7, 10, 0x200D))));
  suite.push_back(make("pli", "structural FEM", true,
                       symmetrized(clustered_rows(2000, 5, 10, 0x200E))));
  suite.push_back(make("net50", "network graph", false, rmat(13, 9.0, 0x200F)));
  suite.push_back(make("web-NotreDame", "web graph, power-law", false,
                       rmat(13, 4.0, 0x2010)));
  return suite;
}

}  // namespace tsg::gen
