// Named synthetic proxies for the paper's benchmark datasets:
//   * the 18 representative matrices of Table 2 (Figs. 7-11, Table 2)
//   * the 16-matrix tSparse dataset (Figs. 13-14)
//
// Each proxy reproduces the *structure class* that made the original matrix
// interesting (FEM clustering, power-law skew, hyper-sparsity, dense blocks
// with extreme compression rate), scaled so a C = A^2 costs 10^6..10^8 flops
// and is feasible on a single CPU core. EXPERIMENTS.md documents the
// scaling; the paper's findings are relative across methods and structures,
// not absolute GFlops.
#pragma once

#include <string>
#include <vector>

#include "matrix/csr.h"

namespace tsg::gen {

struct NamedMatrix {
  std::string name;         ///< SuiteSparse name this matrix proxies
  std::string structure;    ///< one-line description of the structure class
  bool symmetric_pattern;   ///< true if pattern is (near) symmetric
  Csr<double> a;
};

/// Proxies of the 18 representative matrices of Table 2, in table order.
std::vector<NamedMatrix> representative_suite();

/// Subset of representative_suite(): the 6 asymmetric matrices used in the
/// paper's Fig. 8 (AA^T experiment).
std::vector<NamedMatrix> asymmetric_suite();

/// Proxies of the 16 matrices of the tSparse paper dataset (Fig. 13).
std::vector<NamedMatrix> tsparse_suite();

}  // namespace tsg::gen
