// The Fig. 6 benchmark suite: a deterministic family of matrices spanning
// the compression-rate axis (~1 to ~140) and the structure classes of the
// paper's 142-matrix SuiteSparse selection, scaled to single-core budgets.
#pragma once

#include <vector>

#include "gen/representative.h"

namespace tsg::gen {

/// ~48 matrices covering hyper-sparse (rate ~1) through dense-block
/// (rate >100) structures. Sorted by construction, not by rate.
std::vector<NamedMatrix> fig6_suite();

}  // namespace tsg::gen
