// Cooperative cancellation and deadlines for long-running multiplies.
//
// Modeled on std::stop_source/std::stop_token ownership (but header-only and
// C++17): a `CancelSource` owns the shared `CancelState`; any number of cheap
// `CancelToken` views observe it. The state carries
//
//   * an atomic cancel reason (none / cancelled / deadline), set once —
//     the first writer wins and later requests are no-ops, so a caller
//     cancel racing a deadline expiry yields one stable status;
//   * an optional steady_clock deadline, latched into the reason lazily by
//     `expired()` so hot loops pay one relaxed atomic load per check and
//     only poll the clock when a deadline is actually armed;
//   * a progress epoch, bumped by the pipeline at chunk and tile-bin
//     boundaries. The epoch is what the service watchdog heartbeats: a
//     worker whose active request's epoch has not moved for `stuck_after`
//     is declared stuck. Cancellation and supervision share one object on
//     purpose — every site that checks for cancellation is also a site
//     that proves liveness.
//
// Check discipline inside the engine (see tile_spgemm.cpp, step{1,2,3}.cpp):
// parallel_for bodies in src/core must not throw (the `throw-in-parallel`
// lint rule), so kernels poll `should_stop()` and bail out by skipping
// remaining work; the serial pipeline layer (`run_impl`/`run_chunked`)
// re-checks between stages and converts the latched reason into
// kCancelled / kDeadlineExceeded with all workspace accounting balanced.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/status.h"

namespace tsg {

/// Why a token tripped. kNone means "keep going".
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancelled = 1,  ///< explicit request_cancel() — maps to kCancelled
  kDeadline = 2,   ///< armed deadline elapsed — maps to kDeadlineExceeded
};

namespace detail {

struct CancelState {
  std::atomic<std::uint8_t> reason{0};
  /// steady_clock time_since_epoch in nanoseconds; 0 = no deadline armed.
  std::atomic<std::int64_t> deadline_ns{0};
  /// Liveness heartbeat for the watchdog: bumped at chunk/bin boundaries.
  std::atomic<std::uint64_t> progress_epoch{0};
};

inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace detail

/// Cheap copyable view of a CancelState. A default-constructed token is
/// inert: never stops, costs one null-pointer test per check.
class CancelToken {
 public:
  CancelToken() = default;

  /// True once cancellation was requested or the deadline latched. One
  /// relaxed load on the fast path; the acquire fence is not needed because
  /// the only payload is the reason byte itself.
  bool cancel_requested() const {
    return state_ &&
           state_->reason.load(std::memory_order_relaxed) !=
               static_cast<std::uint8_t>(CancelReason::kNone);
  }

  /// Clock-polling check: latches kDeadline into the reason (first writer
  /// wins) when an armed deadline has elapsed. Costs a steady_clock read,
  /// so hot loops should call it periodically, not per element.
  bool expired() const {
    if (!state_) return false;
    const std::int64_t dl = state_->deadline_ns.load(std::memory_order_relaxed);
    if (dl == 0 || detail::steady_now_ns() < dl) return false;
    std::uint8_t expected = static_cast<std::uint8_t>(CancelReason::kNone);
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(CancelReason::kDeadline),
        std::memory_order_relaxed);
    return true;
  }

  /// The boundary check: cancelled already, or deadline just elapsed.
  bool should_stop() const { return cancel_requested() || expired(); }

  CancelReason reason() const {
    if (!state_) return CancelReason::kNone;
    return static_cast<CancelReason>(state_->reason.load(std::memory_order_relaxed));
  }

  /// The Status a tripped token resolves to; Ok while still running.
  Status to_status() const {
    switch (reason()) {
      case CancelReason::kCancelled:
        return Status::cancelled("multiply cancelled by caller");
      case CancelReason::kDeadline:
        return Status::deadline_exceeded("multiply exceeded its deadline");
      case CancelReason::kNone:
        break;
    }
    return Status{};
  }

  /// Liveness heartbeat: call at chunk / tile-bin boundaries. The watchdog
  /// compares successive reads of progress_epoch() to tell "slow but
  /// moving" from "stuck".
  void note_progress() const {
    if (state_) state_->progress_epoch.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t progress_epoch() const {
    return state_ ? state_->progress_epoch.load(std::memory_order_relaxed) : 0;
  }

  bool stop_possible() const { return state_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// Owner side: creates the shared state, hands out tokens, requests
/// cancellation, arms deadlines. Copyable (shared ownership) like
/// std::stop_source.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

  CancelToken token() const { return CancelToken(state_); }

  /// First writer wins; a later deadline expiry cannot overwrite it.
  void request_cancel() const {
    std::uint8_t expected = static_cast<std::uint8_t>(CancelReason::kNone);
    state_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(CancelReason::kCancelled),
        std::memory_order_relaxed);
  }

  /// Arm (or re-arm) an absolute steady_clock deadline.
  void set_deadline(std::chrono::steady_clock::time_point when) const {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(when.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  void set_timeout(std::chrono::nanoseconds after) const {
    set_deadline(std::chrono::steady_clock::now() + after);
  }

  bool cancel_requested() const { return token().cancel_requested(); }
  std::uint64_t progress_epoch() const { return token().progress_epoch(); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// A deadline as a value: optional absolute steady_clock time point. Used by
/// the service queue for pop-time eviction (an expired request is poisoned
/// before it ever reaches an engine).
class Deadline {
 public:
  Deadline() = default;  // no deadline

  static Deadline after(std::chrono::nanoseconds d) {
    Deadline out;
    out.when_ns_ = detail::steady_now_ns() + d.count();
    return out;
  }
  static Deadline at(std::chrono::steady_clock::time_point tp) {
    Deadline out;
    out.when_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       tp.time_since_epoch())
                       .count();
    return out;
  }

  bool armed() const { return when_ns_ != 0; }
  bool expired() const { return armed() && detail::steady_now_ns() >= when_ns_; }

  std::chrono::steady_clock::time_point time_point() const {
    return std::chrono::steady_clock::time_point(std::chrono::nanoseconds(when_ns_));
  }

  /// Remaining time; zero when unarmed or already past.
  std::chrono::nanoseconds remaining() const {
    if (!armed()) return std::chrono::nanoseconds(0);
    const std::int64_t left = when_ns_ - detail::steady_now_ns();
    return std::chrono::nanoseconds(left > 0 ? left : 0);
  }

 private:
  std::int64_t when_ns_ = 0;
};

}  // namespace tsg
