#include "common/parallel.h"

namespace tsg {

namespace {
// 0 means "use the OpenMP runtime default".
int g_requested_threads = 0;
}  // namespace

int num_threads() {
  if (g_requested_threads > 0) return g_requested_threads;
  return omp_get_max_threads();
}

void set_num_threads(int n) {
  g_requested_threads = n > 0 ? n : 0;
  if (n > 0) {
    omp_set_num_threads(n);
  } else {
    omp_set_num_threads(omp_get_num_procs());
  }
}

}  // namespace tsg
