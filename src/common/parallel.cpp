#include "common/parallel.h"

namespace tsg {

namespace {
// 0 means "use the backend default".
int g_requested_threads = 0;
}  // namespace

#if TSG_PARALLEL_STD

int num_threads() {
  if (g_requested_threads > 0) return g_requested_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void set_num_threads(int n) { g_requested_threads = n > 0 ? n : 0; }

int max_workers() { return num_threads(); }

#else

int num_threads() {
  if (g_requested_threads > 0) return g_requested_threads;
  return omp_get_max_threads();
}

void set_num_threads(int n) {
  g_requested_threads = n > 0 ? n : 0;
  if (n > 0) {
    omp_set_num_threads(n);
  } else {
    omp_set_num_threads(omp_get_num_procs());
  }
}

int max_workers() { return omp_get_max_threads(); }

#endif

}  // namespace tsg
