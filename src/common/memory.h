// Peak-memory accounting.
//
// The paper's Fig. 9 plots the runtime peak space cost of each SpGEMM
// method. We reproduce that by routing every large buffer an algorithm
// allocates through `tracked_vector`, whose allocator reports to a global
// MemoryTracker. The tracker keeps the current and peak footprint and can
// optionally record a (timestamp, bytes) trace for plotting.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <type_traits>
#include <vector>

#include "common/contracts.h"
#include "common/status.h"
#include "common/timer.h"

namespace tsg {

/// Deterministic allocation-failure injection plan. All three triggers are
/// optional and combine with OR; a tripped trigger makes the tracked
/// allocation throw std::bad_alloc *before* any memory is requested, so the
/// tracker's accounting stays balanced and the failing call site sees
/// exactly what a real out-of-memory would produce. Tests use this to prove
/// every allocation site of a multiply surfaces as a clean
/// StatusCode::kAllocationFailed (see tests/test_fault_injection.cpp).
struct FaultPlan {
  /// Fail the Nth tracked allocation after the plan is armed (1-based);
  /// 0 disables this trigger. Deterministic under a fixed thread count.
  std::uint64_t fail_at = 0;
  /// Fail any allocation that would push the live tracked footprint above
  /// this many bytes; 0 disables this trigger.
  std::size_t byte_watermark = 0;
  /// Fail each allocation independently with this probability, driven by a
  /// counter-based hash of `seed` — same plan, same allocation index, same
  /// verdict, regardless of wall clock or prior runs. 0 disables.
  double fail_rate = 0.0;
  /// Stream seed for `fail_rate` decisions.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  bool enabled() const { return fail_at > 0 || byte_watermark > 0 || fail_rate > 0.0; }
};

/// One sample of the live tracked footprint.
struct MemorySample {
  double time_ms = 0.0;     ///< milliseconds since trace start
  std::int64_t bytes = 0;   ///< live tracked bytes after the event
};

/// Process-wide tracker of "algorithm workspace" bytes.
///
/// Thread-safe. `current()` and `peak()` are exact with respect to all
/// allocations routed through TrackedAllocator; allocations made with the
/// plain default allocator are invisible by design (we only want to account
/// for the buffers an SpGEMM method chooses to allocate, mirroring how the
/// paper instruments device-memory allocations).
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  void add(std::size_t bytes);
  void sub(std::size_t bytes);

  /// Gate every tracked allocation: bumps the allocation counter and throws
  /// std::bad_alloc when the armed fault plan trips. Called by
  /// TrackedAllocator::allocate before the real allocation, so an injected
  /// failure requests no memory and unbalances no accounting.
  void on_allocate(std::size_t bytes);

  /// Arm / disarm allocation-failure injection. Arming resets the
  /// allocation counter so FaultPlan::fail_at counts from the next tracked
  /// allocation.
  void set_fault_plan(const FaultPlan& plan);
  void clear_fault_plan();
  bool fault_injection_armed() const { return fault_armed_.load(std::memory_order_acquire); }

  /// Tracked allocations observed since the plan was last armed (or since
  /// construction when no plan was ever armed).
  std::uint64_t tracked_allocs() const { return allocs_.load(std::memory_order_relaxed); }
  /// Allocations failed by the plan since it was last armed.
  std::uint64_t injected_faults() const { return faults_.load(std::memory_order_relaxed); }

  std::int64_t current() const { return current_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Cumulative bytes ever allocated through tracked buffers since the last
  /// reset (never decremented). The delta across an iteration of a repeated
  /// workload is the "allocation traffic" a pooled workspace eliminates.
  std::int64_t allocated_total() const {
    return allocated_total_.load(std::memory_order_relaxed);
  }

  /// Reset current/peak to zero and clear any recorded trace.
  /// Only valid between experiments (no tracked buffers alive), which the
  /// bench harness guarantees by scoping.
  void reset();

  /// Start/stop recording a (time, bytes) trace of every footprint change.
  void start_trace();
  std::vector<MemorySample> stop_trace();
  bool tracing() const { return tracing_.load(std::memory_order_acquire); }

 private:
  MemoryTracker() = default;
  void record(std::int64_t bytes_now) TSG_EXCLUDES(trace_mutex_);

  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::int64_t> allocated_total_{0};
  std::atomic<bool> tracing_{false};
  std::mutex trace_mutex_;
  std::vector<MemorySample> trace_ TSG_GUARDED_BY(trace_mutex_);
  Timer trace_timer_ TSG_GUARDED_BY(trace_mutex_);

  std::atomic<bool> fault_armed_{false};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::mutex fault_mutex_;  ///< guards plan_ against concurrent (re)arming
  FaultPlan plan_ TSG_GUARDED_BY(fault_mutex_);
};

/// Compile-time contracts on the accounting value types: samples are copied
/// into traces in bulk and must stay trivially copyable and padding-free
/// enough to reason about (the lint's static-analysis story leans on these
/// shapes never silently growing locks or vtables).
static_assert(std::is_trivially_copyable_v<MemorySample>,
              "MemorySample is memcpy'd by trace consumers");
static_assert(std::is_trivially_copyable_v<FaultPlan>,
              "FaultPlan is copied under the fault mutex on every gate check");

/// RAII fault-plan guard for tests: arms the plan on construction, disarms
/// on destruction (also on the exception path, so a failed EXPECT cannot
/// leave injection armed for the rest of the binary).
class FaultInjectionScope {
 public:
  explicit FaultInjectionScope(const FaultPlan& plan) {
    MemoryTracker::instance().set_fault_plan(plan);
  }
  ~FaultInjectionScope() { MemoryTracker::instance().clear_fault_plan(); }
  FaultInjectionScope(const FaultInjectionScope&) = delete;
  FaultInjectionScope& operator=(const FaultInjectionScope&) = delete;
};

/// RAII helper: resets the tracker on construction; exposes the peak
/// observed during its lifetime.
class PeakMemoryScope {
 public:
  PeakMemoryScope() { MemoryTracker::instance().reset(); }
  std::int64_t peak_bytes() const { return MemoryTracker::instance().peak(); }
  double peak_mb() const { return static_cast<double>(peak_bytes()) / (1024.0 * 1024.0); }
};

/// Standard-allocator shim that reports (de)allocations to MemoryTracker.
template <class T>
class TrackedAllocator {
 public:
  using value_type = T;

  TrackedAllocator() noexcept = default;
  template <class U>
  TrackedAllocator(const TrackedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    // Widened byte count with an explicit overflow check: a corrupted
    // element count must surface as bad_alloc, not wrap to a tiny request.
    std::size_t bytes = 0;
    if (!checked_mul(n, sizeof(T), bytes)) throw std::bad_alloc();
    MemoryTracker::instance().on_allocate(bytes);  // may inject a failure
    T* p = static_cast<T*>(::operator new(bytes));
    MemoryTracker::instance().add(bytes);
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept {
    MemoryTracker::instance().sub(n * sizeof(T));
    ::operator delete(p);
  }

  template <class U>
  bool operator==(const TrackedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector whose storage is counted against the global MemoryTracker.
/// Every SpGEMM implementation in this library uses tracked_vector for its
/// output arrays and any global-memory-equivalent scratch space.
template <class T>
using tracked_vector = std::vector<T, TrackedAllocator<T>>;

/// Modeled device-memory capacity. The paper's GPUs hold 12/24 GB, and the
/// row-row baselines that allocate large global intermediate buffers
/// (bhSPARSE most of all) fail with out-of-memory on high-compression-rate
/// matrices. The host has no such hard limit, so methods that allocate a
/// single large workspace consult this budget and throw std::bad_alloc
/// beyond it — reproducing the paper's "0.00 (failed)" bars. SpgemmContext
/// enforces the same budget on the tiled pipeline itself: when the
/// estimated per-call footprint exceeds it, the multiply degrades to
/// chunked execution over C's tile rows instead of failing (see
/// spgemm_context.h), the graceful half of the Fig. 9 story.
/// Configured by TSG_DEVICE_MEM_MB (default 420 MB, which sits in the same
/// place relative to the scaled-down workloads as 24 GB sat relative to the
/// paper's full-size ones: the bulk of the suite fits, the highest-
/// compression-rate matrices do not). A programmatic override set through
/// set_device_memory_budget_bytes (e.g. from SpgemmContext::Config) wins
/// over the environment.
std::size_t device_memory_budget_bytes();

/// Override the modeled device-memory budget at runtime; 0 reverts to the
/// TSG_DEVICE_MEM_MB environment value. SpgemmContext::Config is the
/// intended caller — prefer configuring a context over touching this
/// process-wide knob directly.
void set_device_memory_budget_bytes(std::size_t bytes);

/// Throw std::bad_alloc if a workspace of `bytes` would exceed the modeled
/// device memory.
void check_workspace_budget(std::size_t bytes);

}  // namespace tsg
