// Deterministic pseudo-random number generation for the workload generators.
//
// All experiments must be reproducible run-to-run, so we avoid std::mt19937's
// implementation-defined seeding paths and use SplitMix64 (seeding) plus
// xoshiro256** (bulk generation), both with published reference outputs that
// the unit tests pin down.
#pragma once

#include <cstdint>

namespace tsg {

/// SplitMix64: tiny, high-quality 64-bit mixer; canonical seed expander.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t next_below(std::uint64_t bound) {
    // For our workloads bound << 2^64, so the tiny modulo bias of the plain
    // reduction is irrelevant; keep it branch-free and fast.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace tsg
