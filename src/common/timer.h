// Wall-clock timing utilities used by the bench harness and the per-step
// breakdown accounting of TileSpGEMM (Fig. 10).
#pragma once

#include <chrono>

namespace tsg {

/// Monotonic wall-clock stopwatch with millisecond-resolution reporting.
class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the lifetime of the scope (in milliseconds) to an accumulator.
/// Used to attribute time to the three algorithm steps plus allocation.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink_ms) : sink_ms_(sink_ms) {}
  ~ScopedAccumulator() { sink_ms_ += timer_.milliseconds(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_ms_;
  Timer timer_;
};

}  // namespace tsg
