#include "common/half.h"

#include <bit>
#include <cstring>

namespace tsg {

std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFFu) - 127 + 15;
  std::uint32_t mant = x & 0x7FFFFFu;

  if (((x >> 23) & 0xFFu) == 0xFFu) {
    // Inf / NaN: keep a quiet-NaN payload bit so NaN stays NaN.
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x0200u : 0u));
  }
  if (exp >= 0x1F) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp <= 0) {
    // Subnormal or underflow to zero.
    if (exp < -10) return static_cast<std::uint16_t>(sign);
    // Add the implicit leading 1, then shift into subnormal position.
    mant |= 0x800000u;
    const int shift = 14 - exp;  // in [14, 24]
    const std::uint32_t rounded = mant + (1u << (shift - 1)) - 1u + ((mant >> shift) & 1u);
    return static_cast<std::uint16_t>(sign | (rounded >> shift));
  }
  // Normal: round mantissa from 23 to 10 bits, round-to-nearest-even.
  const std::uint32_t rounded = mant + 0xFFFu + ((mant >> 13) & 1u);
  if (rounded & 0x800000u) {
    // Mantissa rounding overflowed into the exponent.
    ++exp;
    if (exp >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00u);
    return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10));
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10) |
                                    (rounded >> 13));
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +-0
    } else {
      // Subnormal: normalise.
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while ((mant & 0x400u) == 0);
      mant &= 0x3FFu;
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | (mant << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace tsg
