// Minimal IEEE 754 binary16 storage type.
//
// Used for the tSparse comparison (Fig. 13/14): tSparse multiplies tiles on
// tensor cores with half-precision inputs and single-precision output. We
// mirror that numerics contract — values are *stored* as fp16 and *computed*
// in fp32 — without hardware fp16 support.
#pragma once

#include <cstdint>

namespace tsg {

/// Round-to-nearest-even conversion from binary32 to the binary16 bit pattern.
std::uint16_t float_to_half_bits(float f);

/// Exact conversion from a binary16 bit pattern to binary32.
float half_bits_to_float(std::uint16_t h);

/// IEEE binary16 value. Storage-only: arithmetic promotes to float.
class half {
 public:
  half() = default;
  explicit half(float f) : bits_(float_to_half_bits(f)) {}
  explicit half(double d) : half(static_cast<float>(d)) {}

  /// Implicit promotion to float, so `half` values can participate directly
  /// in fp32 accumulation loops.
  operator float() const { return half_bits_to_float(bits_); }

  std::uint16_t bits() const { return bits_; }
  static half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }

  friend bool operator==(half a, half b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace tsg
