// Exclusive prefix sums — the workhorse for turning per-row / per-tile
// counts into CSR-style offset arrays in every phase of the library.
#pragma once

#include <cstddef>
#include <vector>

#include "common/parallel.h"

namespace tsg {

/// In-place exclusive scan: data[i] <- sum of the original data[0..i).
/// Returns the total (the value that would occupy data[n]).
template <class T>
T exclusive_scan_inplace(T* data, std::size_t n) {
  T running{};
  for (std::size_t i = 0; i < n; ++i) {
    const T v = data[i];
    data[i] = running;
    running += v;
  }
  return running;
}

template <class T, class Alloc>
T exclusive_scan_inplace(std::vector<T, Alloc>& v) {
  return exclusive_scan_inplace(v.data(), v.size());
}

/// Two-pass blocked parallel exclusive scan. Falls back to the serial scan
/// for small inputs where the fork/join cost dominates. Expressed over
/// parallel_for_static (one iteration per block) so it runs unchanged on
/// every parallel backend.
template <class T>
T parallel_exclusive_scan_inplace(T* data, std::size_t n) {
  constexpr std::size_t kSerialCutoff = 1u << 15;
  const int threads = max_workers();
  if (n < kSerialCutoff || threads <= 1) return exclusive_scan_inplace(data, n);

  const std::size_t nblocks = static_cast<std::size_t>(threads);
  const std::size_t block = (n + nblocks - 1) / nblocks;
  std::vector<T> block_sum(nblocks, T{});

  parallel_for_static(std::size_t{0}, nblocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    if (lo < hi) {
      T running{};
      for (std::size_t i = lo; i < hi; ++i) {
        const T v = data[i];
        data[i] = running;
        running += v;
      }
      block_sum[b] = running;
    }
  });

  T total = exclusive_scan_inplace(block_sum.data(), block_sum.size());

  parallel_for_static(std::size_t{0}, nblocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    const T offset = block_sum[b];
    for (std::size_t i = lo; i < hi; ++i) data[i] += offset;
  });
  return total;
}

template <class T, class Alloc>
T parallel_exclusive_scan_inplace(std::vector<T, Alloc>& v) {
  return parallel_exclusive_scan_inplace(v.data(), v.size());
}

}  // namespace tsg
