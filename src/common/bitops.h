// Bit-level helpers for the 16-bit per-row tile masks and the 4-bit local
// indices of the sparse tile format (Section 3.2 of the paper).
#pragma once

#include <bit>
#include <cstdint>

#include "common/config.h"

namespace tsg {

/// Per-row occupancy mask of a 16-wide tile row: bit c set <=> column c of
/// this tile row holds a nonzero.
using rowmask_t = std::uint16_t;

/// Number of set bits in a row mask.
inline int popcount16(rowmask_t m) { return std::popcount(static_cast<unsigned>(m)); }

/// Mask with only bit `col` set. `col` must be in [0, kTileDim).
inline rowmask_t bit_of(index_t col) { return static_cast<rowmask_t>(1u << col); }

/// Mask of all bits strictly below `col` (used for popcount rank indexing:
/// the position of column c among the nonzeros of a row is
/// popcount(mask & bits_below(c)) ).
inline rowmask_t bits_below(index_t col) {
  return static_cast<rowmask_t>((1u << col) - 1u);
}

/// Rank of column `col` within `mask` — i.e. how many nonzeros of this tile
/// row precede column `col`. Precondition: bit `col` is set in `mask`.
inline int mask_rank(rowmask_t mask, index_t col) {
  return popcount16(static_cast<rowmask_t>(mask & bits_below(col)));
}

/// Index of the k-th (0-based) set bit of `mask`. Precondition: k < popcount.
inline index_t mask_select(rowmask_t mask, int k) {
  unsigned m = mask;
  for (int i = 0; i < k; ++i) m &= m - 1;  // clear k lowest set bits
  return static_cast<index_t>(std::countr_zero(m));
}

/// Pack a (row, col) pair of 4-bit local tile indices into one byte, as the
/// paper notes "the row or column index in one tile only needs four bits and
/// can be together stored within an 8-bit unsigned char".
inline std::uint8_t pack_nibbles(index_t row, index_t col) {
  return static_cast<std::uint8_t>((row << 4) | col);
}

/// Extract the row nibble of a packed local index.
inline index_t unpack_row(std::uint8_t packed) { return static_cast<index_t>(packed >> 4); }

/// Extract the column nibble of a packed local index.
inline index_t unpack_col(std::uint8_t packed) { return static_cast<index_t>(packed & 0x0F); }

/// Integer ceiling division for non-negative values.
template <class T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

}  // namespace tsg
