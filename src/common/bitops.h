// Bit-level helpers for the 16-bit per-row tile masks and the 4-bit local
// indices of the sparse tile format (Section 3.2 of the paper).
#pragma once

#include <bit>
#include <cstdint>

#include "common/config.h"

namespace tsg {

/// Per-row occupancy mask of a 16-wide tile row: bit c set <=> column c of
/// this tile row holds a nonzero.
using rowmask_t = std::uint16_t;

/// Number of set bits in a row mask.
inline int popcount16(rowmask_t m) { return std::popcount(static_cast<unsigned>(m)); }

/// Mask with only bit `col` set. `col` must be in [0, kTileDim).
inline rowmask_t bit_of(index_t col) { return static_cast<rowmask_t>(1u << col); }

/// Mask of all bits strictly below `col` (used for popcount rank indexing:
/// the position of column c among the nonzeros of a row is
/// popcount(mask & bits_below(c)) ).
inline rowmask_t bits_below(index_t col) {
  return static_cast<rowmask_t>((1u << col) - 1u);
}

/// Rank of column `col` within `mask` — i.e. how many nonzeros of this tile
/// row precede column `col`. Precondition: bit `col` is set in `mask`.
inline int mask_rank(rowmask_t mask, index_t col) {
  return popcount16(static_cast<rowmask_t>(mask & bits_below(col)));
}

/// Index of the k-th (0-based) set bit of `mask`. Precondition: k < popcount.
inline index_t mask_select(rowmask_t mask, int k) {
  unsigned m = mask;
  for (int i = 0; i < k; ++i) m &= m - 1;  // clear k lowest set bits
  return static_cast<index_t>(std::countr_zero(m));
}

// ---------------------------------------------------------------------------
// Word-packed tile masks.
//
// A tile's 16 row masks are 256 bits = four 64-bit machine words; packing
// four rows per word (row r in bits [16*(r%4), 16*(r%4)+16) of word r/4)
// turns the per-bit symbolic loops of steps 2-3 into OR/AND/popcount word
// ops. Scanning the words in order from the least-significant bit
// enumerates the tile's nonzeros in storage order (row-major, ascending
// column), so packed enumeration is drop-in for the per-row loops.
// ---------------------------------------------------------------------------

/// Words per packed tile mask (16 rows x 16 bits / 64).
inline constexpr int kTileMaskWords = 4;

/// Rows packed into one mask word.
inline constexpr int kRowsPerMaskWord = kTileDim / kTileMaskWords;

static_assert(kTileDim == kTileMaskWords * kRowsPerMaskWord,
              "a packed tile mask must cover all rows exactly");

/// Pack four consecutive row masks into one word (row j at bits [16j, 16j+16)).
/// Compiles to a single 8-byte load on little-endian targets.
inline std::uint64_t pack_rowmask_word(const rowmask_t* m) {
  return static_cast<std::uint64_t>(m[0]) | (static_cast<std::uint64_t>(m[1]) << 16) |
         (static_cast<std::uint64_t>(m[2]) << 32) | (static_cast<std::uint64_t>(m[3]) << 48);
}

/// Row mask of packed row j (0..3) of a mask word.
inline rowmask_t unpack_rowmask(std::uint64_t w, int j) {
  return static_cast<rowmask_t>(w >> (16 * j));
}

/// Pack a whole tile's 16 row masks into the four-word form in one pass
/// (the layout the SWAR and vector kernel families both consume).
inline void pack_tile_words(const rowmask_t* m, std::uint64_t w[kTileMaskWords]) {
  for (int wi = 0; wi < kTileMaskWords; ++wi) {
    w[wi] = pack_rowmask_word(m + wi * kRowsPerMaskWord);
  }
}

/// SWAR per-lane popcount: each 16-bit lane of the result holds the
/// popcount of the corresponding lane of `w` — four row-nnz counts from one
/// word in a handful of ALU ops (no per-row popcount loop).
inline std::uint64_t lane_popcounts16(std::uint64_t w) {
  w = w - ((w >> 1) & 0x5555555555555555ull);
  w = (w & 0x3333333333333333ull) + ((w >> 2) & 0x3333333333333333ull);
  w = (w + (w >> 4)) & 0x0F0F0F0F0F0F0F0Full;
  return (w + (w >> 8)) & 0x00FF00FF00FF00FFull;
}

/// SWAR inclusive prefix sum over the four 16-bit lanes of `w`: lane j of
/// the result holds lanes 0..j summed. Row counts are <= 16 per lane and
/// <= 256 per tile, so 16-bit lanes never overflow.
inline std::uint64_t lane_prefix_sums16(std::uint64_t w) {
  w += w << 16;
  w += w << 32;
  return w;
}

/// Total population of a packed tile mask.
inline int tilemask_popcount(const std::uint64_t* w) {
  return std::popcount(w[0]) + std::popcount(w[1]) + std::popcount(w[2]) +
         std::popcount(w[3]);
}

/// Pack a (row, col) pair of 4-bit local tile indices into one byte, as the
/// paper notes "the row or column index in one tile only needs four bits and
/// can be together stored within an 8-bit unsigned char".
inline std::uint8_t pack_nibbles(index_t row, index_t col) {
  return static_cast<std::uint8_t>((row << 4) | col);
}

/// Extract the row nibble of a packed local index.
inline index_t unpack_row(std::uint8_t packed) { return static_cast<index_t>(packed >> 4); }

/// Extract the column nibble of a packed local index.
inline index_t unpack_col(std::uint8_t packed) { return static_cast<index_t>(packed & 0x0F); }

/// Integer ceiling division for non-negative values.
template <class T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

}  // namespace tsg
