#include "common/memory.h"

#include <cstdlib>
#include <new>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsg {

namespace {
std::atomic<std::size_t> g_budget_override{0};
}  // namespace

std::size_t device_memory_budget_bytes() {
  const std::size_t override_bytes = g_budget_override.load(std::memory_order_relaxed);
  if (override_bytes != 0) return override_bytes;
  static const std::size_t budget = [] {
    if (const char* env = std::getenv("TSG_DEVICE_MEM_MB")) {
      const long mb = std::atol(env);
      if (mb > 0) return static_cast<std::size_t>(mb) * 1024 * 1024;
    }
    return std::size_t{420} * 1024 * 1024;
  }();
  return budget;
}

void set_device_memory_budget_bytes(std::size_t bytes) {
  g_budget_override.store(bytes, std::memory_order_relaxed);
}

void check_workspace_budget(std::size_t bytes) {
  if (bytes > device_memory_budget_bytes()) throw std::bad_alloc();
}

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  // The tracker is the source of truth for the memory gauges; registering
  // callbacks (rather than obs reading the tracker) keeps the obs library
  // free of upward dependencies. Done once, on first use.
  static const bool gauges_registered = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    reg.register_gauge("memory.current_bytes", [] { return MemoryTracker::instance().current(); });
    reg.register_gauge("memory.peak_bytes", [] { return MemoryTracker::instance().peak(); });
    reg.register_gauge("memory.allocated_total_bytes",
                       [] { return MemoryTracker::instance().allocated_total(); });
    reg.register_gauge("memory.tracked_allocs", [] {
      return static_cast<std::int64_t>(MemoryTracker::instance().tracked_allocs());
    });
    reg.register_gauge("memory.injected_faults", [] {
      return static_cast<std::int64_t>(MemoryTracker::instance().injected_faults());
    });
    reg.register_gauge("memory.budget_bytes",
                       [] { return static_cast<std::int64_t>(device_memory_budget_bytes()); });
    return true;
  }();
  (void)gauges_registered;
  return tracker;
}

namespace {

/// splitmix64 finaliser: the counter-based hash behind FaultPlan::fail_rate.
/// Pure function of (seed, allocation index) — no global RNG state, so the
/// verdict stream is reproducible across runs and thread schedules.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void MemoryTracker::on_allocate(std::size_t bytes) {
  const std::uint64_t index = allocs_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!fault_armed_.load(std::memory_order_acquire)) return;

  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    plan = plan_;
  }
  bool trip = false;
  if (plan.fail_at > 0 && index == plan.fail_at) trip = true;
  if (!trip && plan.byte_watermark > 0) {
    const std::int64_t live = current_.load(std::memory_order_relaxed);
    if (live + static_cast<std::int64_t>(bytes) >
        static_cast<std::int64_t>(plan.byte_watermark)) {
      trip = true;
    }
  }
  if (!trip && plan.fail_rate > 0.0) {
    const double u = static_cast<double>(mix64(plan.seed ^ index) >> 11) *
                     (1.0 / 9007199254740992.0);  // uniform in [0,1)
    if (u < plan.fail_rate) trip = true;
  }
  if (trip) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
}

void MemoryTracker::set_fault_plan(const FaultPlan& plan) {
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    plan_ = plan;
  }
  allocs_.store(0, std::memory_order_relaxed);
  faults_.store(0, std::memory_order_relaxed);
  fault_armed_.store(plan.enabled(), std::memory_order_release);
}

void MemoryTracker::clear_fault_plan() {
  fault_armed_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(fault_mutex_);
  plan_ = FaultPlan{};
}

void MemoryTracker::add(std::size_t bytes) {
  allocated_total_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
  const std::int64_t now =
      current_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  // Lock-free peak update.
  std::int64_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev && !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
  if (tracing()) record(now);
  // Only sizeable buffers land in the execution trace: small tracked
  // allocations are frequent enough to drown the timeline (and the ring).
  if (bytes >= std::size_t{64} * 1024) {
    TSG_TRACE_INSTANT("alloc.tracked", static_cast<std::int64_t>(bytes));
  }
}

void MemoryTracker::sub(std::size_t bytes) {
  const std::int64_t now =
      current_.fetch_sub(static_cast<std::int64_t>(bytes), std::memory_order_relaxed) -
      static_cast<std::int64_t>(bytes);
  if (tracing()) record(now);
}

void MemoryTracker::reset() {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  allocated_total_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_.clear();
}

void MemoryTracker::start_trace() {
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_.clear();
    trace_timer_.reset();
  }
  tracing_.store(true, std::memory_order_release);
}

std::vector<MemorySample> MemoryTracker::stop_trace() {
  tracing_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(trace_mutex_);
  std::vector<MemorySample> out;
  out.swap(trace_);
  return out;
}

void MemoryTracker::record(std::int64_t bytes_now) {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_.push_back(MemorySample{trace_timer_.milliseconds(), bytes_now});
}

}  // namespace tsg
