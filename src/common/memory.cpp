#include "common/memory.h"

#include <cstdlib>
#include <new>

namespace tsg {

namespace {
std::atomic<std::size_t> g_budget_override{0};
}  // namespace

std::size_t device_memory_budget_bytes() {
  const std::size_t override_bytes = g_budget_override.load(std::memory_order_relaxed);
  if (override_bytes != 0) return override_bytes;
  static const std::size_t budget = [] {
    if (const char* env = std::getenv("TSG_DEVICE_MEM_MB")) {
      const long mb = std::atol(env);
      if (mb > 0) return static_cast<std::size_t>(mb) * 1024 * 1024;
    }
    return std::size_t{420} * 1024 * 1024;
  }();
  return budget;
}

void set_device_memory_budget_bytes(std::size_t bytes) {
  g_budget_override.store(bytes, std::memory_order_relaxed);
}

void check_workspace_budget(std::size_t bytes) {
  if (bytes > device_memory_budget_bytes()) throw std::bad_alloc();
}

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::add(std::size_t bytes) {
  allocated_total_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
  const std::int64_t now =
      current_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  // Lock-free peak update.
  std::int64_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev && !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
  if (tracing()) record(now);
}

void MemoryTracker::sub(std::size_t bytes) {
  const std::int64_t now =
      current_.fetch_sub(static_cast<std::int64_t>(bytes), std::memory_order_relaxed) -
      static_cast<std::int64_t>(bytes);
  if (tracing()) record(now);
}

void MemoryTracker::reset() {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  allocated_total_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_.clear();
}

void MemoryTracker::start_trace() {
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_.clear();
    trace_timer_.reset();
  }
  tracing_.store(true, std::memory_order_release);
}

std::vector<MemorySample> MemoryTracker::stop_trace() {
  tracing_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(trace_mutex_);
  std::vector<MemorySample> out;
  out.swap(trace_);
  return out;
}

void MemoryTracker::record(std::int64_t bytes_now) {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_.push_back(MemorySample{trace_timer_.milliseconds(), bytes_now});
}

}  // namespace tsg
