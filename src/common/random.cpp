#include "common/random.h"

// Header-only; anchor TU for the tsg_common target.
namespace tsg {}
