// Compile-time contracts: clang thread-safety capability annotations.
//
// The locking discipline of the shared singletons (MemoryTracker,
// MetricsRegistry, TraceCollector) is a convention the compiler can check:
// clang's -Wthread-safety analysis verifies that every access to a
// TSG_GUARDED_BY(mu) member happens with `mu` held and that every
// TSG_REQUIRES(mu) function is only called under the lock. gcc has no such
// analysis, so the macros expand to nothing there — the annotations are
// free documentation on one toolchain and a hard gate on the other
// (scripts/run_clang_tidy.sh adds -Wthread-safety when clang is present).
//
// Only the subset of the annotation vocabulary this codebase uses is
// defined; grow it on demand rather than importing the full catalogue.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TSG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TSG_THREAD_ANNOTATION
#define TSG_THREAD_ANNOTATION(x)
#endif

/// Member that must only be read or written with the named mutex held.
#define TSG_GUARDED_BY(mu) TSG_THREAD_ANNOTATION(guarded_by(mu))

/// Pointer member whose *pointee* is protected by the named mutex.
#define TSG_PT_GUARDED_BY(mu) TSG_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function that may only be called with the named mutex already held.
#define TSG_REQUIRES(...) TSG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires / releases the named mutex itself.
#define TSG_ACQUIRE(...) TSG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TSG_RELEASE(...) TSG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that must NOT be called with the named mutex held (deadlock
/// guard for functions that take the lock internally).
#define TSG_EXCLUDES(...) TSG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for functions whose locking the analysis cannot follow.
#define TSG_NO_THREAD_SAFETY_ANALYSIS \
  TSG_THREAD_ANNOTATION(no_thread_safety_analysis)
