// Bounded MPMC queue — the backpressure primitive of the service layer.
//
// A mutex + two condition variables rather than a lock-free ring: every
// enqueue/dequeue in this library brackets a multi-millisecond SpGEMM, so
// the queue is never the bottleneck, and pthread primitives are the ones
// ThreadSanitizer understands (the same reasoning that picked the
// std::thread parallel backend for the TSan gate). Capacity is fixed at
// construction; a full queue *blocks* producers in push() and *refuses*
// them in try_push() — the two submission flavours SpgemmService exposes
// as submit() / try_submit().
//
// Closing the queue is the shutdown edge: producers fail fast, consumers
// drain what is left and then see pop() return false. drain() hands the
// still-queued items back to the closer so it can complete their promises
// with a structured Cancelled status instead of dropping them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace tsg {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Non-blocking enqueue: false when the queue is full or closed (the
  /// caller distinguishes the two via closed()).
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking enqueue: waits for space; false only when the queue is (or
  /// becomes) closed while waiting — close() wakes every blocked producer,
  /// so a push racing close() always terminates with a definitive answer.
  /// On failure `item` is left intact (never moved from), so a producer
  /// carrying a promise can complete it with a structured status instead of
  /// letting it die as a broken promise inside a destroyed temporary.
  bool push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking dequeue: waits for an item; false when the queue is closed
  /// *and* empty (the consumer's exit condition — a closed queue still
  /// yields its remaining items, which is what makes drain-shutdown work).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Batched dequeue for the service's per-wake-up batching: blocks for the
  /// first item like pop(), then keeps taking items while `keep_taking(next)`
  /// holds and fewer than `max_items` were taken. Returns the number taken
  /// (0 only when closed and empty).
  template <class Pred>
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items, Pred keep_taking) {
    if (max_items == 0) max_items = 1;
    std::size_t taken = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      while (!items_.empty() && taken < max_items) {
        if (taken > 0 && !keep_taking(items_.front())) break;
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    }
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// Close the queue: producers fail from now on, consumers drain the rest.
  /// Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Close and hand every still-queued item back to the caller — the
  /// cancel-shutdown path, where each pending promise gets a structured
  /// Cancelled status instead of silently disappearing.
  std::vector<T> drain() {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      out.reserve(items_.size());
      while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return out;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tsg
