// Global compile-time configuration shared by every tsg module.
#pragma once

#include <cstdint>

namespace tsg {

/// Row/column index type. All matrices in this library are bounded by
/// 2^31-1 rows/columns; nonzero counts use 64-bit offsets throughout.
using index_t = std::int32_t;

/// Offset type for nonzero positions (CSR row pointers, tile offsets, ...).
/// 64-bit so that matrices with more than 2^31 nonzeros and intermediate
/// product counts (which can exceed nnz by orders of magnitude) never wrap.
using offset_t = std::int64_t;

/// Tile edge length. The paper fixes this to 16: local row/column indices
/// then need only 4 bits each (packed into an 8-bit unsigned char), a
/// per-row occupancy mask is exactly one 16-bit unsigned short, and a full
/// tile holds at most 256 nonzeros, so every per-tile pointer also fits in
/// 8 bits. Other sizes (4, 8) underuse those types; 32 would overflow them.
inline constexpr index_t kTileDim = 16;

/// Maximum number of nonzeros a tile can hold (kTileDim^2).
inline constexpr index_t kTileNnzMax = kTileDim * kTileDim;

/// Adaptive accumulator threshold `tnnz` from Section 3.3: output tiles
/// with more than 75% of kTileNnzMax nonzeros use the dense accumulator,
/// the rest use the sparse (popcount-indexed) accumulator.
inline constexpr index_t kAccumulatorThreshold = kTileNnzMax * 3 / 4;  // 192

/// Number of cost bins the SpgemmContext scheduler partitions C tiles into
/// (bin 0 lightest). Heavy bins are dispatched first so the long-pole tiles
/// never land at the tail of a dynamically scheduled loop.
inline constexpr int kCostBins = 4;

static_assert(kTileDim <= 16, "local indices must fit in 4 bits");
static_assert(kAccumulatorThreshold == 192, "paper uses tnnz = 192 for 16x16 tiles");

}  // namespace tsg
