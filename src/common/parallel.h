// Shared-memory parallel primitives.
//
// The paper assigns one CUDA warp per sparse tile; on the CPU the analogous
// unit is one loop iteration of a dynamically scheduled parallel-for. All
// parallelism in the library is expressed through these helpers so the
// thread count can be controlled centrally (the Fig. 6 scalability harness
// sweeps it).
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <utility>

#include <omp.h>

#include "obs/metrics.h"

namespace tsg {

/// Number of threads a parallel region will use.
int num_threads();

/// Set the number of threads used by subsequent parallel regions.
/// `n <= 0` restores the OpenMP default (hardware concurrency).
void set_num_threads(int n);

/// RAII guard that sets the thread count and restores the previous value.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(num_threads()) { set_num_threads(n); }
  ~ThreadCountGuard() { set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

namespace detail {

/// Captures the first exception thrown inside a parallel region and
/// rethrows it on the calling thread — exceptions must not escape an
/// OpenMP construct.
class ExceptionTrap {
 public:
  template <class F>
  void run(F&& f) noexcept {
    try {
      f();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!eptr_) eptr_ = std::current_exception();
    }
  }
  void rethrow_if_any() {
    if (eptr_) std::rethrow_exception(eptr_);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr eptr_;
};

}  // namespace detail

/// Dynamically scheduled parallel loop over [begin, end).
/// `body(i)` is invoked exactly once for every i; iterations are handed to
/// threads in chunks of `grain` to amortise scheduling cost while keeping
/// load balance for skewed work (the whole point of tiling).
template <class Index, class Body>
void parallel_for(Index begin, Index end, Body&& body, std::ptrdiff_t grain = 1) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  detail::ExceptionTrap trap;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(end - begin);
  // Always-on call/task counters; per-thread tallies (for the imbalance
  // histogram) only materialise under the metrics-detail gate.
  obs::ParallelForScope obs_scope(static_cast<std::size_t>(n), omp_get_max_threads());
#pragma omp parallel for schedule(dynamic, 64)
  for (std::ptrdiff_t chunk = 0; chunk < (n + grain - 1) / grain; ++chunk) {
    trap.run([&] {
      const std::ptrdiff_t lo = chunk * grain;
      const std::ptrdiff_t hi = lo + grain < n ? lo + grain : n;
      obs_scope.count(omp_get_thread_num(), static_cast<std::size_t>(hi - lo));
      for (std::ptrdiff_t i = lo; i < hi; ++i) body(static_cast<Index>(begin + i));
    });
  }
  trap.rethrow_if_any();
}

/// Statically scheduled variant for uniform per-iteration cost.
template <class Index, class Body>
void parallel_for_static(Index begin, Index end, Body&& body) {
  if (begin >= end) return;
  detail::ExceptionTrap trap;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(end - begin);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    trap.run([&] { body(static_cast<Index>(begin + i)); });
  }
  trap.rethrow_if_any();
}

/// Parallel reduction over [begin, end): sums `body(i)` with `+`.
template <class T, class Index, class Body>
T parallel_reduce(Index begin, Index end, T init, Body&& body) {
  detail::ExceptionTrap trap;
  T total = init;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(end - begin);
#pragma omp parallel
  {
    T local{};
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      trap.run([&] { local = local + body(static_cast<Index>(begin + i)); });
    }
#pragma omp critical(tsg_parallel_reduce)
    total = total + local;
  }
  trap.rethrow_if_any();
  return total;
}

}  // namespace tsg
