// Shared-memory parallel primitives.
//
// The paper assigns one CUDA warp per sparse tile; on the CPU the analogous
// unit is one loop iteration of a dynamically scheduled parallel-for. All
// parallelism in the library is expressed through these helpers so the
// thread count can be controlled centrally (the Fig. 6 scalability harness
// sweeps it) — and so the execution backend can be swapped wholesale:
//
//   * OpenMP (default): `#pragma omp` loops, worker identity from the OMP
//     runtime.
//   * std::thread (-DTSG_PARALLEL_STD=ON, forced by -DTSG_TSAN=ON): the
//     same dynamic-chunk scheduling over std::thread workers and a shared
//     atomic counter. Every synchronisation edge is a pthread/atomic
//     primitive ThreadSanitizer understands — gcc's libgomp synchronises
//     its barriers through futexes TSan cannot see, which makes every
//     cross-region access look like a race. The race tests under `ctest -L
//     analysis` run on this backend.
//
// Code that needs a per-thread scratch slot indexes it by worker_rank(),
// bounded by max_workers() — never by omp_get_thread_num() directly, so
// both backends satisfy the same contract: ranks are dense in
// [0, max_workers()) and stable for one worker for the whole region.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <utility>

#ifndef TSG_PARALLEL_STD
#define TSG_PARALLEL_STD 0
#endif

#if TSG_PARALLEL_STD
#include <atomic>
#include <thread>
#include <vector>
#else
#include <omp.h>
#endif

#include "obs/metrics.h"

namespace tsg {

/// Number of threads a parallel region will use.
int num_threads();

/// Set the number of threads used by subsequent parallel regions.
/// `n <= 0` restores the backend default (hardware concurrency).
void set_num_threads(int n);

/// Upper bound (exclusive) on worker_rank() in the next parallel region —
/// the size any rank-indexed scratch array must have.
int max_workers();

#if TSG_PARALLEL_STD

namespace detail {
/// Rank of the calling thread inside a run_workers region; 0 outside.
inline thread_local int t_worker_rank = 0;
/// True while the calling thread executes inside a parallel region —
/// nested regions run inline on the caller (mirrors OpenMP's default
/// non-nested behaviour, and keeps rank-indexed scratch race-free).
inline thread_local bool t_in_parallel = false;
}  // namespace detail

/// Dense id of the calling worker in [0, max_workers()); 0 on the main
/// thread outside any parallel region.
inline int worker_rank() { return detail::t_worker_rank; }

#else

/// Dense id of the calling worker in [0, max_workers()); 0 on the main
/// thread outside any parallel region.
inline int worker_rank() { return omp_get_thread_num(); }

#endif

/// RAII guard that sets the thread count and restores the previous value.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(num_threads()) { set_num_threads(n); }
  ~ThreadCountGuard() { set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

namespace detail {

/// Captures the first exception thrown inside a parallel region and
/// rethrows it on the calling thread — exceptions must not escape an
/// OpenMP construct (and must not call std::terminate via a throwing
/// std::thread body).
class ExceptionTrap {
 public:
  template <class F>
  void run(F&& f) noexcept {
    try {
      f();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!eptr_) eptr_ = std::current_exception();
    }
  }
  void rethrow_if_any() {
    if (eptr_) std::rethrow_exception(eptr_);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr eptr_;
};

#if TSG_PARALLEL_STD

/// Chunk dispatcher of the std::thread backend: min(max_workers(), nchunks)
/// workers pull chunk indices from a shared atomic counter (the moral
/// equivalent of `schedule(dynamic)`). `chunk_fn` must not throw — wrap the
/// user body in an ExceptionTrap before handing it here.
template <class ChunkFn>
void run_workers(std::ptrdiff_t nchunks, ChunkFn&& chunk_fn) {
  if (nchunks <= 0) return;
  if (t_in_parallel) {  // nested region: run inline on the caller's rank
    for (std::ptrdiff_t c = 0; c < nchunks; ++c) chunk_fn(c);
    return;
  }
  int nw = max_workers();
  if (static_cast<std::ptrdiff_t>(nw) > nchunks) nw = static_cast<int>(nchunks);
  if (nw < 1) nw = 1;
  std::atomic<std::ptrdiff_t> next{0};
  auto worker = [&](int rank) {
    t_worker_rank = rank;
    t_in_parallel = true;
    for (;;) {
      const std::ptrdiff_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      chunk_fn(c);
    }
    t_in_parallel = false;
    t_worker_rank = 0;
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nw - 1));
  for (int rank = 1; rank < nw; ++rank) pool.emplace_back(worker, rank);
  worker(0);
  for (std::thread& t : pool) t.join();
}

#endif  // TSG_PARALLEL_STD

}  // namespace detail

/// Dynamically scheduled parallel loop over [begin, end).
/// `body(i)` is invoked exactly once for every i; iterations are handed to
/// threads in chunks of `grain` to amortise scheduling cost while keeping
/// load balance for skewed work (the whole point of tiling).
template <class Index, class Body>
void parallel_for(Index begin, Index end, Body&& body, std::ptrdiff_t grain = 1) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  detail::ExceptionTrap trap;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(end - begin);
  const std::ptrdiff_t nchunks = (n + grain - 1) / grain;
  // Always-on call/task counters; per-thread tallies (for the imbalance
  // histogram) only materialise under the metrics-detail gate.
  obs::ParallelForScope obs_scope(static_cast<std::size_t>(n), max_workers());
#if TSG_PARALLEL_STD
  detail::run_workers(nchunks, [&](std::ptrdiff_t chunk) {
    trap.run([&] {
      const std::ptrdiff_t lo = chunk * grain;
      const std::ptrdiff_t hi = lo + grain < n ? lo + grain : n;
      obs_scope.count(worker_rank(), static_cast<std::size_t>(hi - lo));
      for (std::ptrdiff_t i = lo; i < hi; ++i) body(static_cast<Index>(begin + i));
    });
  });
#else
#pragma omp parallel for schedule(dynamic, 64)
  for (std::ptrdiff_t chunk = 0; chunk < nchunks; ++chunk) {
    trap.run([&] {
      const std::ptrdiff_t lo = chunk * grain;
      const std::ptrdiff_t hi = lo + grain < n ? lo + grain : n;
      obs_scope.count(worker_rank(), static_cast<std::size_t>(hi - lo));
      for (std::ptrdiff_t i = lo; i < hi; ++i) body(static_cast<Index>(begin + i));
    });
  }
#endif
  trap.rethrow_if_any();
}

/// Statically scheduled variant for uniform per-iteration cost.
template <class Index, class Body>
void parallel_for_static(Index begin, Index end, Body&& body) {
  if (begin >= end) return;
  detail::ExceptionTrap trap;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(end - begin);
#if TSG_PARALLEL_STD
  const std::ptrdiff_t blocks =
      n < static_cast<std::ptrdiff_t>(max_workers()) ? n : max_workers();
  detail::run_workers(blocks, [&](std::ptrdiff_t b) {
    const std::ptrdiff_t lo = b * n / blocks;
    const std::ptrdiff_t hi = (b + 1) * n / blocks;
    for (std::ptrdiff_t i = lo; i < hi; ++i) {
      trap.run([&] { body(static_cast<Index>(begin + i)); });
    }
  });
#else
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    trap.run([&] { body(static_cast<Index>(begin + i)); });
  }
#endif
  trap.rethrow_if_any();
}

/// Parallel reduction over [begin, end): sums `body(i)` with `+`.
template <class T, class Index, class Body>
T parallel_reduce(Index begin, Index end, T init, Body&& body) {
  detail::ExceptionTrap trap;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(end - begin);
#if TSG_PARALLEL_STD
  if (n <= 0) return init;
  const std::ptrdiff_t blocks =
      n < static_cast<std::ptrdiff_t>(max_workers()) ? n : max_workers();
  std::vector<T> locals(static_cast<std::size_t>(blocks), T{});
  detail::run_workers(blocks, [&](std::ptrdiff_t b) {
    const std::ptrdiff_t lo = b * n / blocks;
    const std::ptrdiff_t hi = (b + 1) * n / blocks;
    T local{};
    for (std::ptrdiff_t i = lo; i < hi; ++i) {
      trap.run([&] { local = local + body(static_cast<Index>(begin + i)); });
    }
    locals[static_cast<std::size_t>(b)] = local;
  });
  trap.rethrow_if_any();
  T total = init;
  for (const T& local : locals) total = total + local;
  return total;
#else
  T total = init;
#pragma omp parallel
  {
    T local{};
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      trap.run([&] { local = local + body(static_cast<Index>(begin + i)); });
    }
#pragma omp critical(tsg_parallel_reduce)
    total = total + local;
  }
  trap.rethrow_if_any();
  return total;
#endif
}

}  // namespace tsg
