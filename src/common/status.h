// Structured error layer.
//
// The library core reports failures as values instead of scattering
// `throw std::runtime_error` / `assert` across the kernels: a `Status`
// carries an error code plus a human-readable message, `Expected<T>` is
// either a result or a non-ok Status, and `Error` is the exception the
// throwing convenience wrappers (`run*()` vs `try_run*()`) raise so that
// exception-style callers keep working and still see the same code.
//
// Conventions:
//   * `try_*` entry points return `Expected<T>` and never throw for
//     anticipated failures (bad operands, budget, allocation).
//   * The classic entry points wrap them and throw `tsg::Error`.
//   * `std::bad_alloc` escaping a tracked allocation (real or injected by
//     the MemoryTracker fault plan) is converted to kAllocationFailed at
//     the context boundary, never leaked to callers of `try_*`.
#pragma once

#include <cstddef>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace tsg {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< malformed operand or option value
  kDimensionMismatch,  ///< operand shapes do not compose
  kIndexOverflow,      ///< a size/offset would not fit index_t/offset_t
  kBudgetExceeded,     ///< modeled device budget too small, degradation off
  kAllocationFailed,   ///< tracked allocation threw (real or injected)
  kIoError,            ///< malformed or unreadable matrix file
  kQueueFull,          ///< bounded service queue at capacity (try_submit)
  kRejected,           ///< admission control refused the request
  kCancelled,          ///< request abandoned by shutdown before it ran
  kDeadlineExceeded,   ///< per-request deadline elapsed (queued or running)
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kDimensionMismatch: return "DimensionMismatch";
    case StatusCode::kIndexOverflow: return "IndexOverflow";
    case StatusCode::kBudgetExceeded: return "BudgetExceeded";
    case StatusCode::kAllocationFailed: return "AllocationFailed";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kQueueFull: return "QueueFull";
    case StatusCode::kRejected: return "Rejected";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

/// [[nodiscard]] on the class: *any* function returning a Status by value
/// warns when the result is dropped — the annotate-then-sweep contract the
/// `discarded-status` lint rule (tools/tsg_lint) re-checks lexically.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status dimension_mismatch(std::string m) {
    return {StatusCode::kDimensionMismatch, std::move(m)};
  }
  static Status index_overflow(std::string m) {
    return {StatusCode::kIndexOverflow, std::move(m)};
  }
  static Status budget_exceeded(std::string m) {
    return {StatusCode::kBudgetExceeded, std::move(m)};
  }
  static Status allocation_failed(std::string m) {
    return {StatusCode::kAllocationFailed, std::move(m)};
  }
  static Status io_error(std::string m) { return {StatusCode::kIoError, std::move(m)}; }
  static Status queue_full(std::string m) { return {StatusCode::kQueueFull, std::move(m)}; }
  static Status rejected(std::string m) { return {StatusCode::kRejected, std::move(m)}; }
  static Status cancelled(std::string m) { return {StatusCode::kCancelled, std::move(m)}; }
  static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Code: message" (or just "Ok"), the form the CLI prints on failure.
  std::string to_string() const {
    if (ok()) return "Ok";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The exception thrown by the non-`try_` convenience API. Derives from
/// std::runtime_error so pre-Status catch sites (and the bench harness's
/// generic catch) keep working unchanged.
class Error : public std::runtime_error {
 public:
  explicit Error(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }
  StatusCode code() const { return status_.code(); }

 private:
  Status status_;
};

/// A value or a non-ok Status. Deliberately tiny: exactly the surface the
/// `try_run*` entry points need, not a full std::expected polyfill.
template <class T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}                 // NOLINT(google-explicit-constructor)
  Expected(Status status) : state_(std::move(status)) {           // NOLINT(google-explicit-constructor)
    if (std::get<Status>(state_).ok()) {
      state_ = Status(StatusCode::kInvalidArgument,
                      "Expected constructed from an ok Status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// The error; an ok Status when a value is held.
  Status status() const { return ok() ? Status{} : std::get<Status>(state_); }

  /// Access the held value; throws tsg::Error when holding a Status (so
  /// `expected.value()` behaves exactly like the throwing API).
  T& value() & {
    if (!ok()) throw Error(std::get<Status>(state_));
    return std::get<T>(state_);
  }
  const T& value() const& {
    if (!ok()) throw Error(std::get<Status>(state_));
    return std::get<T>(state_);
  }
  T&& value() && {
    if (!ok()) throw Error(std::get<Status>(state_));
    return std::get<T>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> state_;
};

/// How much operand checking the context performs at its API boundary.
enum class ValidationLevel {
  kOff,    ///< trust the caller (dimension compatibility is still checked)
  kCheap,  ///< O(rows + tiles) structural sanity: sizes, offsets, bounds
  kFull,   ///< full invariant walk (validate()) plus the NaN/Inf policy scan
};

/// What full validation does with non-finite values in the operands.
enum class NanPolicy {
  kAllow,   ///< NaN/Inf propagate through the multiply (IEEE semantics)
  kReject,  ///< full validation fails with InvalidArgument on any non-finite
};

/// Overflow-checked size arithmetic for byte-footprint computations: the
/// widening audit helpers. Return false (leaving `out` untouched) on wrap.
[[nodiscard]] inline bool checked_add(std::size_t a, std::size_t b, std::size_t& out) {
  if (a > static_cast<std::size_t>(-1) - b) return false;
  out = a + b;
  return true;
}

[[nodiscard]] inline bool checked_mul(std::size_t a, std::size_t b, std::size_t& out) {
  if (b != 0 && a > static_cast<std::size_t>(-1) / b) return false;
  out = a * b;
  return true;
}

/// Throwing convenience for allocation-size expressions: `a * b` as size_t,
/// or std::bad_alloc on wrap — the same failure the allocation itself would
/// produce, surfaced before a wrapped (tiny) size can be requested. This is
/// the form the `unchecked-size-mul` lint rule expects at element-count
/// multiplies feeding resize/reserve/assign.
[[nodiscard]] inline std::size_t checked_size_mul(std::size_t a, std::size_t b) {
  std::size_t out = 0;
  if (!checked_mul(a, b, out)) throw std::bad_alloc();
  return out;
}

}  // namespace tsg
