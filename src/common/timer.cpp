#include "common/timer.h"

// Header-only; this TU exists so the target always has at least one object
// file and as the anchor for any future out-of-line timing helpers.
namespace tsg {}
