# Empty dependencies file for tsg_lint.
# This may be replaced when dependencies are built.
