file(REMOVE_RECURSE
  "../tsg_lint"
  "../tsg_lint.pdb"
  "CMakeFiles/tsg_lint.dir/tsg_lint/main.cpp.o"
  "CMakeFiles/tsg_lint.dir/tsg_lint/main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
