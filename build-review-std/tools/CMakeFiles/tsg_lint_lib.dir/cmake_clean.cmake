file(REMOVE_RECURSE
  "CMakeFiles/tsg_lint_lib.dir/tsg_lint/lexer.cpp.o"
  "CMakeFiles/tsg_lint_lib.dir/tsg_lint/lexer.cpp.o.d"
  "CMakeFiles/tsg_lint_lib.dir/tsg_lint/rules.cpp.o"
  "CMakeFiles/tsg_lint_lib.dir/tsg_lint/rules.cpp.o.d"
  "libtsg_lint_lib.a"
  "libtsg_lint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_lint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
