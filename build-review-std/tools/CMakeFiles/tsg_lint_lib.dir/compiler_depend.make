# Empty compiler generated dependencies file for tsg_lint_lib.
# This may be replaced when dependencies are built.
