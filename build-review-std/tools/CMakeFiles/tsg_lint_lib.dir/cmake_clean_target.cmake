file(REMOVE_RECURSE
  "libtsg_lint_lib.a"
)
