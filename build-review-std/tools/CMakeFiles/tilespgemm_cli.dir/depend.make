# Empty dependencies file for tilespgemm_cli.
# This may be replaced when dependencies are built.
