file(REMOVE_RECURSE
  "CMakeFiles/tilespgemm_cli.dir/tilespgemm_cli.cpp.o"
  "CMakeFiles/tilespgemm_cli.dir/tilespgemm_cli.cpp.o.d"
  "tilespgemm_cli"
  "tilespgemm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilespgemm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
