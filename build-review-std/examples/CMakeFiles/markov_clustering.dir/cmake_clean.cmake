file(REMOVE_RECURSE
  "CMakeFiles/markov_clustering.dir/markov_clustering.cpp.o"
  "CMakeFiles/markov_clustering.dir/markov_clustering.cpp.o.d"
  "markov_clustering"
  "markov_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
