# Empty dependencies file for markov_clustering.
# This may be replaced when dependencies are built.
