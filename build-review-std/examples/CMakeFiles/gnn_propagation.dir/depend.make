# Empty dependencies file for gnn_propagation.
# This may be replaced when dependencies are built.
