file(REMOVE_RECURSE
  "CMakeFiles/gnn_propagation.dir/gnn_propagation.cpp.o"
  "CMakeFiles/gnn_propagation.dir/gnn_propagation.cpp.o.d"
  "gnn_propagation"
  "gnn_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
