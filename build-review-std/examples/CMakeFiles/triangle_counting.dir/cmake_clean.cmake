file(REMOVE_RECURSE
  "CMakeFiles/triangle_counting.dir/triangle_counting.cpp.o"
  "CMakeFiles/triangle_counting.dir/triangle_counting.cpp.o.d"
  "triangle_counting"
  "triangle_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
