# Empty compiler generated dependencies file for triangle_counting.
# This may be replaced when dependencies are built.
