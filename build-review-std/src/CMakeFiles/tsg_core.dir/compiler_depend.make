# Empty compiler generated dependencies file for tsg_core.
# This may be replaced when dependencies are built.
