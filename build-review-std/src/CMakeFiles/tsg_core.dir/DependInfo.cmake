
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_experimental.cpp" "src/CMakeFiles/tsg_core.dir/core/block_experimental.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/block_experimental.cpp.o.d"
  "/root/repo/src/core/masked_spgemm.cpp" "src/CMakeFiles/tsg_core.dir/core/masked_spgemm.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/masked_spgemm.cpp.o.d"
  "/root/repo/src/core/spgemm_context.cpp" "src/CMakeFiles/tsg_core.dir/core/spgemm_context.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/spgemm_context.cpp.o.d"
  "/root/repo/src/core/step1.cpp" "src/CMakeFiles/tsg_core.dir/core/step1.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/step1.cpp.o.d"
  "/root/repo/src/core/step2.cpp" "src/CMakeFiles/tsg_core.dir/core/step2.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/step2.cpp.o.d"
  "/root/repo/src/core/step3.cpp" "src/CMakeFiles/tsg_core.dir/core/step3.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/step3.cpp.o.d"
  "/root/repo/src/core/tile_add.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_add.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_add.cpp.o.d"
  "/root/repo/src/core/tile_convert.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_convert.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_convert.cpp.o.d"
  "/root/repo/src/core/tile_format.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_format.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_format.cpp.o.d"
  "/root/repo/src/core/tile_io.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_io.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_io.cpp.o.d"
  "/root/repo/src/core/tile_spgemm.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_spgemm.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_spgemm.cpp.o.d"
  "/root/repo/src/core/tile_spmm.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_spmm.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_spmm.cpp.o.d"
  "/root/repo/src/core/tile_spmv.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_spmv.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_spmv.cpp.o.d"
  "/root/repo/src/core/tile_stats.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_stats.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_stats.cpp.o.d"
  "/root/repo/src/core/tile_transpose.cpp" "src/CMakeFiles/tsg_core.dir/core/tile_transpose.cpp.o" "gcc" "src/CMakeFiles/tsg_core.dir/core/tile_transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review-std/src/CMakeFiles/tsg_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review-std/src/CMakeFiles/tsg_common.dir/DependInfo.cmake"
  "/root/repo/build-review-std/src/CMakeFiles/tsg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
