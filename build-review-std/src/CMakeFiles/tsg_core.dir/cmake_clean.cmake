file(REMOVE_RECURSE
  "CMakeFiles/tsg_core.dir/core/block_experimental.cpp.o"
  "CMakeFiles/tsg_core.dir/core/block_experimental.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/masked_spgemm.cpp.o"
  "CMakeFiles/tsg_core.dir/core/masked_spgemm.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/spgemm_context.cpp.o"
  "CMakeFiles/tsg_core.dir/core/spgemm_context.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/step1.cpp.o"
  "CMakeFiles/tsg_core.dir/core/step1.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/step2.cpp.o"
  "CMakeFiles/tsg_core.dir/core/step2.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/step3.cpp.o"
  "CMakeFiles/tsg_core.dir/core/step3.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_add.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_add.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_convert.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_convert.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_format.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_format.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_io.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_io.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_spgemm.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_spgemm.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_spmm.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_spmm.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_spmv.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_spmv.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_stats.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_stats.cpp.o.d"
  "CMakeFiles/tsg_core.dir/core/tile_transpose.cpp.o"
  "CMakeFiles/tsg_core.dir/core/tile_transpose.cpp.o.d"
  "libtsg_core.a"
  "libtsg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
