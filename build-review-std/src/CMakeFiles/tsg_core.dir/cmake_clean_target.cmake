file(REMOVE_RECURSE
  "libtsg_core.a"
)
