# Empty dependencies file for tsg_graph.
# This may be replaced when dependencies are built.
