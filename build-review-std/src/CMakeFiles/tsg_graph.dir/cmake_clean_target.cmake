file(REMOVE_RECURSE
  "libtsg_graph.a"
)
