file(REMOVE_RECURSE
  "CMakeFiles/tsg_graph.dir/graph/algorithms.cpp.o"
  "CMakeFiles/tsg_graph.dir/graph/algorithms.cpp.o.d"
  "libtsg_graph.a"
  "libtsg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
