
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/half.cpp" "src/CMakeFiles/tsg_common.dir/common/half.cpp.o" "gcc" "src/CMakeFiles/tsg_common.dir/common/half.cpp.o.d"
  "/root/repo/src/common/memory.cpp" "src/CMakeFiles/tsg_common.dir/common/memory.cpp.o" "gcc" "src/CMakeFiles/tsg_common.dir/common/memory.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "src/CMakeFiles/tsg_common.dir/common/parallel.cpp.o" "gcc" "src/CMakeFiles/tsg_common.dir/common/parallel.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/tsg_common.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/tsg_common.dir/common/random.cpp.o.d"
  "/root/repo/src/common/timer.cpp" "src/CMakeFiles/tsg_common.dir/common/timer.cpp.o" "gcc" "src/CMakeFiles/tsg_common.dir/common/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review-std/src/CMakeFiles/tsg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
