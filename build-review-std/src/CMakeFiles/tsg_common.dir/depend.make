# Empty dependencies file for tsg_common.
# This may be replaced when dependencies are built.
