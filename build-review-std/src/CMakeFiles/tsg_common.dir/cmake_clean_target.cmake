file(REMOVE_RECURSE
  "libtsg_common.a"
)
