file(REMOVE_RECURSE
  "CMakeFiles/tsg_common.dir/common/half.cpp.o"
  "CMakeFiles/tsg_common.dir/common/half.cpp.o.d"
  "CMakeFiles/tsg_common.dir/common/memory.cpp.o"
  "CMakeFiles/tsg_common.dir/common/memory.cpp.o.d"
  "CMakeFiles/tsg_common.dir/common/parallel.cpp.o"
  "CMakeFiles/tsg_common.dir/common/parallel.cpp.o.d"
  "CMakeFiles/tsg_common.dir/common/random.cpp.o"
  "CMakeFiles/tsg_common.dir/common/random.cpp.o.d"
  "CMakeFiles/tsg_common.dir/common/timer.cpp.o"
  "CMakeFiles/tsg_common.dir/common/timer.cpp.o.d"
  "libtsg_common.a"
  "libtsg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
