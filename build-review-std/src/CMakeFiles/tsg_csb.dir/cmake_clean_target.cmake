file(REMOVE_RECURSE
  "libtsg_csb.a"
)
