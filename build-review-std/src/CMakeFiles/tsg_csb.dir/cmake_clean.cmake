file(REMOVE_RECURSE
  "CMakeFiles/tsg_csb.dir/csb/csb.cpp.o"
  "CMakeFiles/tsg_csb.dir/csb/csb.cpp.o.d"
  "libtsg_csb.a"
  "libtsg_csb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_csb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
