# Empty dependencies file for tsg_csb.
# This may be replaced when dependencies are built.
