# Empty dependencies file for tsg_obs.
# This may be replaced when dependencies are built.
