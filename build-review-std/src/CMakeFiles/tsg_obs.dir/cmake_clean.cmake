file(REMOVE_RECURSE
  "CMakeFiles/tsg_obs.dir/obs/metrics.cpp.o"
  "CMakeFiles/tsg_obs.dir/obs/metrics.cpp.o.d"
  "CMakeFiles/tsg_obs.dir/obs/trace.cpp.o"
  "CMakeFiles/tsg_obs.dir/obs/trace.cpp.o.d"
  "libtsg_obs.a"
  "libtsg_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
