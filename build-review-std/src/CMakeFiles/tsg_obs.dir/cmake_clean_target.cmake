file(REMOVE_RECURSE
  "libtsg_obs.a"
)
