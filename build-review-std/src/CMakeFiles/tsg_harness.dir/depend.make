# Empty dependencies file for tsg_harness.
# This may be replaced when dependencies are built.
