file(REMOVE_RECURSE
  "libtsg_harness.a"
)
