file(REMOVE_RECURSE
  "CMakeFiles/tsg_harness.dir/harness/regression.cpp.o"
  "CMakeFiles/tsg_harness.dir/harness/regression.cpp.o.d"
  "CMakeFiles/tsg_harness.dir/harness/report.cpp.o"
  "CMakeFiles/tsg_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/tsg_harness.dir/harness/runner.cpp.o"
  "CMakeFiles/tsg_harness.dir/harness/runner.cpp.o.d"
  "libtsg_harness.a"
  "libtsg_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
