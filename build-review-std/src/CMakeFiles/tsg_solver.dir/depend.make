# Empty dependencies file for tsg_solver.
# This may be replaced when dependencies are built.
