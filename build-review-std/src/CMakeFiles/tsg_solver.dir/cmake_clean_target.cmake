file(REMOVE_RECURSE
  "libtsg_solver.a"
)
