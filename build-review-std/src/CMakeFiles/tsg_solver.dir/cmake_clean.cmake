file(REMOVE_RECURSE
  "CMakeFiles/tsg_solver.dir/solver/amg.cpp.o"
  "CMakeFiles/tsg_solver.dir/solver/amg.cpp.o.d"
  "CMakeFiles/tsg_solver.dir/solver/cg.cpp.o"
  "CMakeFiles/tsg_solver.dir/solver/cg.cpp.o.d"
  "libtsg_solver.a"
  "libtsg_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
