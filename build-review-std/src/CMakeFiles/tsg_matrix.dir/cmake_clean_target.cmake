file(REMOVE_RECURSE
  "libtsg_matrix.a"
)
