# Empty compiler generated dependencies file for tsg_matrix.
# This may be replaced when dependencies are built.
