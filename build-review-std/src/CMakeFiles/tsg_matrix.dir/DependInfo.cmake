
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/compare.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/compare.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/compare.cpp.o.d"
  "/root/repo/src/matrix/convert.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/convert.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/convert.cpp.o.d"
  "/root/repo/src/matrix/coo.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/coo.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/coo.cpp.o.d"
  "/root/repo/src/matrix/csr.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/csr.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/csr.cpp.o.d"
  "/root/repo/src/matrix/io_mm.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/io_mm.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/io_mm.cpp.o.d"
  "/root/repo/src/matrix/norms.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/norms.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/norms.cpp.o.d"
  "/root/repo/src/matrix/ops.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/ops.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/ops.cpp.o.d"
  "/root/repo/src/matrix/reorder.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/reorder.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/reorder.cpp.o.d"
  "/root/repo/src/matrix/spmv.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/spmv.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/spmv.cpp.o.d"
  "/root/repo/src/matrix/stats.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/stats.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/stats.cpp.o.d"
  "/root/repo/src/matrix/transpose.cpp" "src/CMakeFiles/tsg_matrix.dir/matrix/transpose.cpp.o" "gcc" "src/CMakeFiles/tsg_matrix.dir/matrix/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review-std/src/CMakeFiles/tsg_common.dir/DependInfo.cmake"
  "/root/repo/build-review-std/src/CMakeFiles/tsg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
