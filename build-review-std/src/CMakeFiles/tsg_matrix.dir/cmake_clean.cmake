file(REMOVE_RECURSE
  "CMakeFiles/tsg_matrix.dir/matrix/compare.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/compare.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/convert.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/convert.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/coo.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/coo.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/csr.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/csr.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/io_mm.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/io_mm.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/norms.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/norms.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/ops.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/ops.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/reorder.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/reorder.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/spmv.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/spmv.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/stats.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/stats.cpp.o.d"
  "CMakeFiles/tsg_matrix.dir/matrix/transpose.cpp.o"
  "CMakeFiles/tsg_matrix.dir/matrix/transpose.cpp.o.d"
  "libtsg_matrix.a"
  "libtsg_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
