# Empty dependencies file for tsg_gen.
# This may be replaced when dependencies are built.
