file(REMOVE_RECURSE
  "libtsg_gen.a"
)
