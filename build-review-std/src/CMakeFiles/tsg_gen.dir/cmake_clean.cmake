file(REMOVE_RECURSE
  "CMakeFiles/tsg_gen.dir/gen/generators.cpp.o"
  "CMakeFiles/tsg_gen.dir/gen/generators.cpp.o.d"
  "CMakeFiles/tsg_gen.dir/gen/representative.cpp.o"
  "CMakeFiles/tsg_gen.dir/gen/representative.cpp.o.d"
  "CMakeFiles/tsg_gen.dir/gen/suite.cpp.o"
  "CMakeFiles/tsg_gen.dir/gen/suite.cpp.o.d"
  "libtsg_gen.a"
  "libtsg_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
