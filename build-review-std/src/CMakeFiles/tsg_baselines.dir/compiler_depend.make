# Empty compiler generated dependencies file for tsg_baselines.
# This may be replaced when dependencies are built.
