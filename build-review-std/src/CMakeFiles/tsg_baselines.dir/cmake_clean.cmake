file(REMOVE_RECURSE
  "CMakeFiles/tsg_baselines.dir/baselines/auto_select.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/auto_select.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/esc.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/esc.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/hash.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/hash.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/heap.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/heap.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/reference.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/reference.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/registry.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/registry.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/spa.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/spa.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/speck.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/speck.cpp.o.d"
  "CMakeFiles/tsg_baselines.dir/baselines/tsparse.cpp.o"
  "CMakeFiles/tsg_baselines.dir/baselines/tsparse.cpp.o.d"
  "libtsg_baselines.a"
  "libtsg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
