
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/auto_select.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/auto_select.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/auto_select.cpp.o.d"
  "/root/repo/src/baselines/esc.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/esc.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/esc.cpp.o.d"
  "/root/repo/src/baselines/hash.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/hash.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/hash.cpp.o.d"
  "/root/repo/src/baselines/heap.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/heap.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/heap.cpp.o.d"
  "/root/repo/src/baselines/reference.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/reference.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/reference.cpp.o.d"
  "/root/repo/src/baselines/registry.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/registry.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/registry.cpp.o.d"
  "/root/repo/src/baselines/spa.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/spa.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/spa.cpp.o.d"
  "/root/repo/src/baselines/speck.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/speck.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/speck.cpp.o.d"
  "/root/repo/src/baselines/tsparse.cpp" "src/CMakeFiles/tsg_baselines.dir/baselines/tsparse.cpp.o" "gcc" "src/CMakeFiles/tsg_baselines.dir/baselines/tsparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review-std/src/CMakeFiles/tsg_core.dir/DependInfo.cmake"
  "/root/repo/build-review-std/src/CMakeFiles/tsg_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review-std/src/CMakeFiles/tsg_common.dir/DependInfo.cmake"
  "/root/repo/build-review-std/src/CMakeFiles/tsg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
