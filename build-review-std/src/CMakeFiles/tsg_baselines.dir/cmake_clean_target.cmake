file(REMOVE_RECURSE
  "libtsg_baselines.a"
)
