# Empty compiler generated dependencies file for test_spgemm_options.
# This may be replaced when dependencies are built.
