file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_options.dir/test_spgemm_options.cpp.o"
  "CMakeFiles/test_spgemm_options.dir/test_spgemm_options.cpp.o.d"
  "test_spgemm_options"
  "test_spgemm_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
