# Empty dependencies file for test_matrix_ops.
# This may be replaced when dependencies are built.
