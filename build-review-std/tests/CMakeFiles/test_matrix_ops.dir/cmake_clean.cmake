file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_ops.dir/test_matrix_ops.cpp.o"
  "CMakeFiles/test_matrix_ops.dir/test_matrix_ops.cpp.o.d"
  "test_matrix_ops"
  "test_matrix_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
