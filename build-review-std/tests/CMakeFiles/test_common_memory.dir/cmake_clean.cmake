file(REMOVE_RECURSE
  "CMakeFiles/test_common_memory.dir/test_common_memory.cpp.o"
  "CMakeFiles/test_common_memory.dir/test_common_memory.cpp.o.d"
  "test_common_memory"
  "test_common_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
