# Empty dependencies file for test_common_memory.
# This may be replaced when dependencies are built.
