# Empty compiler generated dependencies file for test_matrix_core.
# This may be replaced when dependencies are built.
