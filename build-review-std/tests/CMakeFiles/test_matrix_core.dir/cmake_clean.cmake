file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_core.dir/test_matrix_core.cpp.o"
  "CMakeFiles/test_matrix_core.dir/test_matrix_core.cpp.o.d"
  "test_matrix_core"
  "test_matrix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
