# Empty compiler generated dependencies file for test_block_experimental.
# This may be replaced when dependencies are built.
