file(REMOVE_RECURSE
  "CMakeFiles/test_block_experimental.dir/test_block_experimental.cpp.o"
  "CMakeFiles/test_block_experimental.dir/test_block_experimental.cpp.o.d"
  "test_block_experimental"
  "test_block_experimental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_experimental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
