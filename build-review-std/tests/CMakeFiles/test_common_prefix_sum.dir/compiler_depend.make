# Empty compiler generated dependencies file for test_common_prefix_sum.
# This may be replaced when dependencies are built.
