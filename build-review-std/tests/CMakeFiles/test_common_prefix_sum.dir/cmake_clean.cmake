file(REMOVE_RECURSE
  "CMakeFiles/test_common_prefix_sum.dir/test_common_prefix_sum.cpp.o"
  "CMakeFiles/test_common_prefix_sum.dir/test_common_prefix_sum.cpp.o.d"
  "test_common_prefix_sum"
  "test_common_prefix_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_prefix_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
