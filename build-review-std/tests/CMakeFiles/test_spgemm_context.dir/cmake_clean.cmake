file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_context.dir/test_spgemm_context.cpp.o"
  "CMakeFiles/test_spgemm_context.dir/test_spgemm_context.cpp.o.d"
  "test_spgemm_context"
  "test_spgemm_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
