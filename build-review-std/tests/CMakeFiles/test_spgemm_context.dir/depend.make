# Empty dependencies file for test_spgemm_context.
# This may be replaced when dependencies are built.
