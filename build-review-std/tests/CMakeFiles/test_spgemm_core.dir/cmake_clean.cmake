file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_core.dir/test_spgemm_core.cpp.o"
  "CMakeFiles/test_spgemm_core.dir/test_spgemm_core.cpp.o.d"
  "test_spgemm_core"
  "test_spgemm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
