# Empty dependencies file for test_spgemm_core.
# This may be replaced when dependencies are built.
