# Empty compiler generated dependencies file for test_common_timer.
# This may be replaced when dependencies are built.
