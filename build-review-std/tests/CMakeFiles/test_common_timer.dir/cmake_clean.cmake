file(REMOVE_RECURSE
  "CMakeFiles/test_common_timer.dir/test_common_timer.cpp.o"
  "CMakeFiles/test_common_timer.dir/test_common_timer.cpp.o.d"
  "test_common_timer"
  "test_common_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
