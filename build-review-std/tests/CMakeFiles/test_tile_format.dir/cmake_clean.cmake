file(REMOVE_RECURSE
  "CMakeFiles/test_tile_format.dir/test_tile_format.cpp.o"
  "CMakeFiles/test_tile_format.dir/test_tile_format.cpp.o.d"
  "test_tile_format"
  "test_tile_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
