# Empty dependencies file for test_tile_format.
# This may be replaced when dependencies are built.
