file(REMOVE_RECURSE
  "CMakeFiles/test_tsparse.dir/test_tsparse.cpp.o"
  "CMakeFiles/test_tsparse.dir/test_tsparse.cpp.o.d"
  "test_tsparse"
  "test_tsparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
