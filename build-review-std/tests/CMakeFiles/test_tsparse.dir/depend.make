# Empty dependencies file for test_tsparse.
# This may be replaced when dependencies are built.
