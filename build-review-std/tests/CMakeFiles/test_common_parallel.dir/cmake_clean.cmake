file(REMOVE_RECURSE
  "CMakeFiles/test_common_parallel.dir/test_common_parallel.cpp.o"
  "CMakeFiles/test_common_parallel.dir/test_common_parallel.cpp.o.d"
  "test_common_parallel"
  "test_common_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
