# Empty dependencies file for test_common_parallel.
# This may be replaced when dependencies are built.
