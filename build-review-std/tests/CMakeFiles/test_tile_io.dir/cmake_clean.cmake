file(REMOVE_RECURSE
  "CMakeFiles/test_tile_io.dir/test_tile_io.cpp.o"
  "CMakeFiles/test_tile_io.dir/test_tile_io.cpp.o.d"
  "test_tile_io"
  "test_tile_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
