# Empty dependencies file for test_tile_io.
# This may be replaced when dependencies are built.
