file(REMOVE_RECURSE
  "CMakeFiles/test_float_precision.dir/test_float_precision.cpp.o"
  "CMakeFiles/test_float_precision.dir/test_float_precision.cpp.o.d"
  "test_float_precision"
  "test_float_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
