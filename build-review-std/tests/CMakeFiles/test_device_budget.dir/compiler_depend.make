# Empty compiler generated dependencies file for test_device_budget.
# This may be replaced when dependencies are built.
