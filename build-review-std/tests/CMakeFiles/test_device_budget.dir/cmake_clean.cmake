file(REMOVE_RECURSE
  "CMakeFiles/test_device_budget.dir/test_device_budget.cpp.o"
  "CMakeFiles/test_device_budget.dir/test_device_budget.cpp.o.d"
  "test_device_budget"
  "test_device_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
