file(REMOVE_RECURSE
  "CMakeFiles/test_common_half.dir/test_common_half.cpp.o"
  "CMakeFiles/test_common_half.dir/test_common_half.cpp.o.d"
  "test_common_half"
  "test_common_half.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
