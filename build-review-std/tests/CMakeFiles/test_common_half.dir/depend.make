# Empty dependencies file for test_common_half.
# This may be replaced when dependencies are built.
