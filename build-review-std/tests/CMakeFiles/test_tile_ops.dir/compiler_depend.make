# Empty compiler generated dependencies file for test_tile_ops.
# This may be replaced when dependencies are built.
