file(REMOVE_RECURSE
  "CMakeFiles/test_tile_ops.dir/test_tile_ops.cpp.o"
  "CMakeFiles/test_tile_ops.dir/test_tile_ops.cpp.o.d"
  "test_tile_ops"
  "test_tile_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
