file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_stats.dir/test_matrix_stats.cpp.o"
  "CMakeFiles/test_matrix_stats.dir/test_matrix_stats.cpp.o.d"
  "test_matrix_stats"
  "test_matrix_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
