file(REMOVE_RECURSE
  "CMakeFiles/test_semiring.dir/test_semiring.cpp.o"
  "CMakeFiles/test_semiring.dir/test_semiring.cpp.o.d"
  "test_semiring"
  "test_semiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
