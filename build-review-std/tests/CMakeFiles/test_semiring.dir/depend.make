# Empty dependencies file for test_semiring.
# This may be replaced when dependencies are built.
