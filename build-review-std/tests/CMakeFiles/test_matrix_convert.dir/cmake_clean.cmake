file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_convert.dir/test_matrix_convert.cpp.o"
  "CMakeFiles/test_matrix_convert.dir/test_matrix_convert.cpp.o.d"
  "test_matrix_convert"
  "test_matrix_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
