# Empty dependencies file for test_matrix_convert.
# This may be replaced when dependencies are built.
