file(REMOVE_RECURSE
  "CMakeFiles/test_suite_spmv.dir/test_suite_spmv.cpp.o"
  "CMakeFiles/test_suite_spmv.dir/test_suite_spmv.cpp.o.d"
  "test_suite_spmv"
  "test_suite_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
