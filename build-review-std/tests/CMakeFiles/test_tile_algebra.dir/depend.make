# Empty dependencies file for test_tile_algebra.
# This may be replaced when dependencies are built.
