file(REMOVE_RECURSE
  "CMakeFiles/test_tile_algebra.dir/test_tile_algebra.cpp.o"
  "CMakeFiles/test_tile_algebra.dir/test_tile_algebra.cpp.o.d"
  "test_tile_algebra"
  "test_tile_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
