# Empty dependencies file for test_csb.
# This may be replaced when dependencies are built.
