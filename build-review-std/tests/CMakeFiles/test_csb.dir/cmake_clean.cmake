file(REMOVE_RECURSE
  "CMakeFiles/test_csb.dir/test_csb.cpp.o"
  "CMakeFiles/test_csb.dir/test_csb.cpp.o.d"
  "test_csb"
  "test_csb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
