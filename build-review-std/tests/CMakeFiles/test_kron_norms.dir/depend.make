# Empty dependencies file for test_kron_norms.
# This may be replaced when dependencies are built.
