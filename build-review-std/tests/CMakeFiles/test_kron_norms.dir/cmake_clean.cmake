file(REMOVE_RECURSE
  "CMakeFiles/test_kron_norms.dir/test_kron_norms.cpp.o"
  "CMakeFiles/test_kron_norms.dir/test_kron_norms.cpp.o.d"
  "test_kron_norms"
  "test_kron_norms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron_norms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
