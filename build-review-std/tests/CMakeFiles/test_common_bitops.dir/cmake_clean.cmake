file(REMOVE_RECURSE
  "CMakeFiles/test_common_bitops.dir/test_common_bitops.cpp.o"
  "CMakeFiles/test_common_bitops.dir/test_common_bitops.cpp.o.d"
  "test_common_bitops"
  "test_common_bitops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_bitops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
