file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_representative.dir/bench_fig7_representative.cpp.o"
  "CMakeFiles/bench_fig7_representative.dir/bench_fig7_representative.cpp.o.d"
  "bench_fig7_representative"
  "bench_fig7_representative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_representative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
