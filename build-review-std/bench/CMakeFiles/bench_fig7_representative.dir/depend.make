# Empty dependencies file for bench_fig7_representative.
# This may be replaced when dependencies are built.
