# Empty dependencies file for bench_ablation_reorder.
# This may be replaced when dependencies are built.
