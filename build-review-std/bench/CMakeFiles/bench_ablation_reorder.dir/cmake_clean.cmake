file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reorder.dir/bench_ablation_reorder.cpp.o"
  "CMakeFiles/bench_ablation_reorder.dir/bench_ablation_reorder.cpp.o.d"
  "bench_ablation_reorder"
  "bench_ablation_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
