file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_format_space.dir/bench_fig11_format_space.cpp.o"
  "CMakeFiles/bench_fig11_format_space.dir/bench_fig11_format_space.cpp.o.d"
  "bench_fig11_format_space"
  "bench_fig11_format_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_format_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
