# Empty compiler generated dependencies file for bench_fig11_format_space.
# This may be replaced when dependencies are built.
