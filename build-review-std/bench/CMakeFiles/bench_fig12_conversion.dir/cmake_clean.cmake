file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_conversion.dir/bench_fig12_conversion.cpp.o"
  "CMakeFiles/bench_fig12_conversion.dir/bench_fig12_conversion.cpp.o.d"
  "bench_fig12_conversion"
  "bench_fig12_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
