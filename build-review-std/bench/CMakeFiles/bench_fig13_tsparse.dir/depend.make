# Empty dependencies file for bench_fig13_tsparse.
# This may be replaced when dependencies are built.
