file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tsparse.dir/bench_fig13_tsparse.cpp.o"
  "CMakeFiles/bench_fig13_tsparse.dir/bench_fig13_tsparse.cpp.o.d"
  "bench_fig13_tsparse"
  "bench_fig13_tsparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tsparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
