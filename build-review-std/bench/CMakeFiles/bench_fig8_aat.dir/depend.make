# Empty dependencies file for bench_fig8_aat.
# This may be replaced when dependencies are built.
