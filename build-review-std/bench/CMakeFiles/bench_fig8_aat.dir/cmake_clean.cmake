file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_aat.dir/bench_fig8_aat.cpp.o"
  "CMakeFiles/bench_fig8_aat.dir/bench_fig8_aat.cpp.o.d"
  "bench_fig8_aat"
  "bench_fig8_aat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_aat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
