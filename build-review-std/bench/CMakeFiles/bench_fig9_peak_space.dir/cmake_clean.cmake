file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_peak_space.dir/bench_fig9_peak_space.cpp.o"
  "CMakeFiles/bench_fig9_peak_space.dir/bench_fig9_peak_space.cpp.o.d"
  "bench_fig9_peak_space"
  "bench_fig9_peak_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_peak_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
