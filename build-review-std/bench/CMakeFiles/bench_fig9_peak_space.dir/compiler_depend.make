# Empty compiler generated dependencies file for bench_fig9_peak_space.
# This may be replaced when dependencies are built.
