file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_overall.dir/bench_fig6_overall.cpp.o"
  "CMakeFiles/bench_fig6_overall.dir/bench_fig6_overall.cpp.o.d"
  "bench_fig6_overall"
  "bench_fig6_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
