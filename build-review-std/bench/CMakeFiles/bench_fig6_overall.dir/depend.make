# Empty dependencies file for bench_fig6_overall.
# This may be replaced when dependencies are built.
