file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tsparse_breakdown.dir/bench_fig14_tsparse_breakdown.cpp.o"
  "CMakeFiles/bench_fig14_tsparse_breakdown.dir/bench_fig14_tsparse_breakdown.cpp.o.d"
  "bench_fig14_tsparse_breakdown"
  "bench_fig14_tsparse_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tsparse_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
