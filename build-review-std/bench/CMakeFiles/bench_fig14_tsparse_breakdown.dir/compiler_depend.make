# Empty compiler generated dependencies file for bench_fig14_tsparse_breakdown.
# This may be replaced when dependencies are built.
