file(REMOVE_RECURSE
  "CMakeFiles/bench_context_reuse.dir/bench_context_reuse.cpp.o"
  "CMakeFiles/bench_context_reuse.dir/bench_context_reuse.cpp.o.d"
  "bench_context_reuse"
  "bench_context_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_context_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
