# Empty compiler generated dependencies file for bench_context_reuse.
# This may be replaced when dependencies are built.
