file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tilesize.dir/bench_ablation_tilesize.cpp.o"
  "CMakeFiles/bench_ablation_tilesize.dir/bench_ablation_tilesize.cpp.o.d"
  "bench_ablation_tilesize"
  "bench_ablation_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
