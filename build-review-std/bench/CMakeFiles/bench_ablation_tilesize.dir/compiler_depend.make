# Empty compiler generated dependencies file for bench_ablation_tilesize.
# This may be replaced when dependencies are built.
