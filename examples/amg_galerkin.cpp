// Algebraic-multigrid Galerkin products — the flagship SpGEMM application
// the paper cites (Section 4.6: "AMG solvers use the output matrices from
// an SpGEMM as the input of another SpGEMM in the next round", which is
// what amortises the one-off tile-format conversion).
//
// This example builds a 2D Poisson problem, constructs a hierarchy of
// coarse grids with piecewise aggregation, and forms each coarse operator
// A_{l+1} = R * A_l * P via two chained TileSpGEMM calls, verifying the
// Galerkin identities along the way.
#include <iostream>
#include <vector>

#include "core/spgemm_context.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/stats.h"
#include "matrix/transpose.h"

namespace {

using namespace tsg;

/// Piecewise-constant aggregation prolongator: groups of `agg` consecutive
/// fine points map to one coarse point.
Csr<double> aggregation_prolongator(index_t fine_n, index_t agg) {
  const index_t coarse_n = (fine_n + agg - 1) / agg;
  Coo<double> coo;
  coo.rows = fine_n;
  coo.cols = coarse_n;
  for (index_t i = 0; i < fine_n; ++i) coo.push_back(i, i / agg, 1.0);
  return coo_to_csr(std::move(coo));
}

}  // namespace

int main() {
  // Fine-level operator: 5-point Laplacian on a 128x128 grid.
  Csr<double> a_fine = gen::stencil_5pt(128, 128);
  std::cout << "AMG setup via Galerkin triple products R*A*P (TileSpGEMM)\n";
  std::cout << "level 0: n = " << a_fine.rows << ", nnz = " << a_fine.nnz() << "\n";

  Csr<double> a = a_fine;
  // One context across the whole hierarchy: every Galerkin product on every
  // level reuses the same pooled workspaces.
  SpgemmContext ctx;
  int level = 0;
  while (a.rows > 64) {
    const Csr<double> p = aggregation_prolongator(a.rows, 4);
    const Csr<double> r = transpose(p);

    // The Galerkin product: two SpGEMMs. The paper's point: operands and
    // results stay in the tiled format across the chain, so conversion is
    // paid once per level, not per product.
    TileSpgemmTimings t_ap, t_rap;
    const Csr<double> ap = ctx.run_csr(a, p, &t_ap);
    const Csr<double> a_coarse = ctx.run_csr(r, ap, &t_rap);

    // Galerkin identity on the constant vector: since P*1 = 1,
    // (R*A*P)*1 = R*(A*1), i.e. each coarse row sum equals the sum of the
    // fine row sums over its aggregate. Holds for any A, any aggregation.
    std::vector<double> fine_row_sum(static_cast<std::size_t>(a.rows), 0.0);
    for (index_t i = 0; i < a.rows; ++i) {
      for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        fine_row_sum[static_cast<std::size_t>(i)] += a.val[k];
      }
    }
    double max_err = 0.0;
    for (index_t ci = 0; ci < a_coarse.rows; ++ci) {
      double coarse_sum = 0.0;
      for (offset_t k = a_coarse.row_ptr[ci]; k < a_coarse.row_ptr[ci + 1]; ++k) {
        coarse_sum += a_coarse.val[k];
      }
      double expected = 0.0;
      for (offset_t k = r.row_ptr[ci]; k < r.row_ptr[ci + 1]; ++k) {
        expected += r.val[k] * fine_row_sum[static_cast<std::size_t>(r.col_idx[k])];
      }
      max_err = std::max(max_err, std::abs(coarse_sum - expected));
    }

    ++level;
    std::cout << "level " << level << ": n = " << a_coarse.rows
              << ", nnz = " << a_coarse.nnz()
              << ", spgemm time " << t_ap.total_ms() + t_rap.total_ms() << " ms"
              << ", Galerkin identity error " << max_err << "\n";
    if (max_err > 1e-8) {
      std::cerr << "Galerkin identity violated!\n";
      return 1;
    }
    a = a_coarse;
  }

  std::cout << "hierarchy complete: " << level + 1 << " levels\n";
  return 0;
}
