// Triangle counting via sparse linear algebra — one of the graph workloads
// the paper's introduction motivates (Azad, Buluç & Gilbert).
//
// Uses the masked-SpGEMM formulation on the strictly lower triangle:
//   L = tril(A),  count = sum( (L * L) .* L )
// Each surviving entry (i,j) counts the wedges i->k->j that close into a
// triangle. The SpGEMM is TileSpGEMM; the element-wise mask comes from the
// matrix/ops substrate. Verified against a brute-force count.
#include <cstdint>
#include <iostream>

#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/ops.h"

namespace {

using namespace tsg;

/// Brute-force wedge check, for validation on the small graph.
std::int64_t brute_force_triangles(const Csr<double>& adj) {
  std::int64_t count = 0;
  for (index_t i = 0; i < adj.rows; ++i) {
    for (offset_t ki = adj.row_ptr[i]; ki < adj.row_ptr[i + 1]; ++ki) {
      const index_t j = adj.col_idx[ki];
      if (j <= i) continue;
      for (offset_t kj = adj.row_ptr[j]; kj < adj.row_ptr[j + 1]; ++kj) {
        const index_t k = adj.col_idx[kj];
        if (k <= j) continue;
        // Is (i,k) an edge?
        for (offset_t kk = adj.row_ptr[i]; kk < adj.row_ptr[i + 1]; ++kk) {
          if (adj.col_idx[kk] == k) {
            ++count;
            break;
          }
        }
      }
    }
  }
  return count;
}

std::int64_t spgemm_triangles(const Csr<double>& adj) {
  // Unweighted pattern.
  Csr<double> ones = adj;
  for (auto& v : ones.val) v = 1.0;
  const Csr<double> l = tril_strict(ones);
  const Csr<double> ll = spgemm_tile(l, l);
  const Csr<double> masked = hadamard(ll, l);
  return static_cast<std::int64_t>(value_sum(masked) + 0.5);
}

}  // namespace

int main() {
  // Undirected power-law graph: symmetrise an R-MAT and drop self loops.
  Csr<double> g = gen::symmetrized(gen::rmat(12, 8.0, 7));
  {
    Coo<double> coo = csr_to_coo(g);
    Coo<double> clean;
    clean.rows = coo.rows;
    clean.cols = coo.cols;
    for (std::size_t k = 0; k < coo.val.size(); ++k) {
      if (coo.row[k] != coo.col[k]) clean.push_back(coo.row[k], coo.col[k], 1.0);
    }
    g = coo_to_csr(std::move(clean));
  }
  std::cout << "graph: " << g.rows << " vertices, " << g.nnz() / 2 << " edges\n";

  const std::int64_t via_spgemm = spgemm_triangles(g);
  std::cout << "triangles via (L*L).*L with TileSpGEMM: " << via_spgemm << "\n";

  // Validate on a subgraph small enough for brute force.
  Csr<double> small = gen::symmetrized(gen::rmat(8, 6.0, 9));
  {
    Coo<double> coo = csr_to_coo(small);
    Coo<double> clean;
    clean.rows = coo.rows;
    clean.cols = coo.cols;
    for (std::size_t k = 0; k < coo.val.size(); ++k) {
      if (coo.row[k] != coo.col[k]) clean.push_back(coo.row[k], coo.col[k], 1.0);
    }
    small = coo_to_csr(std::move(clean));
  }
  const std::int64_t expected = brute_force_triangles(small);
  const std::int64_t got = spgemm_triangles(small);
  std::cout << "validation graph: spgemm " << got << " vs brute force " << expected << " -> "
            << (got == expected ? "OK" : "MISMATCH") << "\n";
  return got == expected ? 0 : 1;
}
