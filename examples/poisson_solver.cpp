// End-to-end sparse linear solve: AMG-preconditioned conjugate gradients on
// a 2D Poisson problem. Everything runs on the tiled kernels — the AMG
// setup chains Galerkin SpGEMMs (the paper's Section 4.6 scenario) and the
// Krylov iteration runs on the tiled SpMV.
#include <cmath>
#include <iostream>

#include "core/tile_convert.h"
#include "matrix/convert.h"
#include "solver/amg.h"
#include "solver/cg.h"

namespace {

using namespace tsg;

Csr<double> poisson(index_t nx, index_t ny) {
  Coo<double> coo;
  coo.rows = coo.cols = nx * ny;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t row = y * nx + x;
      coo.push_back(row, row, 4.0);
      if (x > 0) coo.push_back(row, row - 1, -1.0);
      if (x + 1 < nx) coo.push_back(row, row + 1, -1.0);
      if (y > 0) coo.push_back(row, row - nx, -1.0);
      if (y + 1 < ny) coo.push_back(row, row + nx, -1.0);
    }
  }
  return coo_to_csr(std::move(coo));
}

}  // namespace

int main() {
  const index_t nx = 96, ny = 96;
  const Csr<double> a = poisson(nx, ny);
  std::cout << "Poisson " << nx << "x" << ny << ": n = " << a.rows
            << ", nnz = " << a.nnz() << "\n";

  // AMG setup: every coarse operator is two tiled SpGEMMs.
  const solver::AmgHierarchy hierarchy(a);
  std::cout << "AMG hierarchy: " << hierarchy.levels() << " levels, operator complexity "
            << hierarchy.operator_complexity() << "\n";
  for (std::size_t l = 0; l < hierarchy.levels(); ++l) {
    std::cout << "  level " << l << ": n = " << hierarchy.level(l).a.rows
              << ", nnz = " << hierarchy.level(l).a.nnz() << "\n";
  }

  // Right-hand side: a point source in the middle of the grid.
  tracked_vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  b[static_cast<std::size_t>((ny / 2) * nx + nx / 2)] = 1.0;

  const TileMatrix<double> t = csr_to_tile(a);
  tracked_vector<double> x_plain, x_amg;
  const auto plain =
      solver::conjugate_gradient(t, b, x_plain, solver::identity_preconditioner(), 1e-10, 5000);
  const auto pre =
      solver::conjugate_gradient(t, b, x_amg, solver::amg_preconditioner(hierarchy), 1e-10, 5000);

  std::cout << "plain CG:   " << plain.iterations << " iterations (rel res "
            << plain.relative_residual << ")\n";
  std::cout << "AMG-PCG:    " << pre.iterations << " iterations (rel res "
            << pre.relative_residual << ")\n";

  if (!plain.converged || !pre.converged) {
    std::cerr << "solver failed to converge\n";
    return 1;
  }
  // The two solutions must agree.
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < x_plain.size(); ++i) {
    diff += (x_plain[i] - x_amg[i]) * (x_plain[i] - x_amg[i]);
    norm += x_plain[i] * x_plain[i];
  }
  std::cout << "solution agreement: relative difference "
            << std::sqrt(diff / (norm > 0 ? norm : 1.0)) << "\n";
  std::cout << (pre.iterations * 2 < plain.iterations
                    ? "AMG preconditioning pays off\n"
                    : "unexpected: AMG did not help\n");
  return 0;
}
