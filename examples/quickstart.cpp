// Quickstart: build two sparse matrices, multiply them with TileSpGEMM,
// inspect the result, and round-trip through the sparse tile format.
//
//   ./quickstart [path/to/matrix.mtx]
//
// With a Matrix Market file the example computes C = A^2 on it (the
// artifact's `./test <matrix.mtx>` workflow); without one it runs on a
// small generated matrix.
#include <iostream>
#include <string>

#include "core/tile_spgemm.h"
#include "core/tile_stats.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/io_mm.h"
#include "matrix/stats.h"

int main(int argc, char** argv) {
  using namespace tsg;

  // 1. Obtain a sparse matrix in CSR form.
  Csr<double> a;
  if (argc > 1) {
    std::cout << "loading " << argv[1] << "\n";
    a = coo_to_csr(read_matrix_market_file<double>(argv[1]));
  } else {
    // A power-law graph: 4096 vertices, ~16K edges.
    a = gen::rmat(12, 4.0, /*seed=*/42);
  }
  std::cout << "A: " << a.rows << " x " << a.cols << ", " << a.nnz() << " nonzeros\n";

  // 2. Convert once to the sparse tile format (16x16 tiles, CSR-style
  //    nonzeros plus per-row bit masks — Section 3.2 of the paper).
  const TileMatrix<double> tile_a = csr_to_tile(a);
  const TileFormatStats stats = tile_format_stats(tile_a);
  std::cout << "tile format: " << stats.num_tiles << " non-empty tiles, "
            << stats.avg_nnz_per_tile << " nnz/tile on average, "
            << stats.bytes / 1024 << " KB (CSR: " << a.bytes() / 1024 << " KB)\n";

  // 3. Multiply. The three-step algorithm reports its own breakdown.
  const TileSpgemmResult<double> result = tile_spgemm(tile_a, tile_a);
  const TileSpgemmTimings& t = result.timings;
  std::cout << "C = A^2: " << result.c.nnz() << " nonzeros in " << result.c.num_tiles()
            << " tiles\n";
  std::cout << "time: step1 " << t.step1_ms << " ms, step2 " << t.step2_ms
            << " ms, step3 " << t.step3_ms << " ms, alloc " << t.alloc_ms << " ms\n";

  const offset_t flops = spgemm_flops(a, a);
  std::cout << "throughput: " << gflops(flops, t.total_ms()) << " GFlops ("
            << flops << " flops)\n";

  // 4. Back to CSR for downstream consumers.
  const Csr<double> c = tile_to_csr(result.c);
  std::cout << "compression rate: " << compression_rate(flops / 2, c.nnz()) << "\n";

  // 5. The high-level convenience wrapper does all of the above in one call.
  const Csr<double> c2 = spgemm_tile(a, a);
  std::cout << "wrapper agrees: " << (c2.nnz() == c.nnz() ? "yes" : "NO") << "\n";
  return 0;
}
