// Graph analytics on the semiring kernels: BFS levels, weakly connected
// components and all-pairs shortest paths, all expressed as tiled semiring
// SpMV/SpGEMM — the GraphBLAS-style usage the paper's introduction
// motivates.
#include <iostream>
#include <map>

#include "gen/generators.h"
#include "graph/algorithms.h"
#include "matrix/convert.h"

int main() {
  using namespace tsg;

  // A directed power-law graph.
  const Csr<double> g = gen::rmat(11, 6.0, 2024);
  std::cout << "graph: " << g.rows << " vertices, " << g.nnz() << " edges\n";

  // BFS from vertex 0 via (or, and) SpMV on the tiled transpose.
  const auto levels = graph::bfs_levels(g, 0);
  std::map<index_t, int> level_histogram;
  int reached = 0;
  for (index_t v = 0; v < g.rows; ++v) {
    if (levels[static_cast<std::size_t>(v)] >= 0) {
      ++reached;
      level_histogram[levels[static_cast<std::size_t>(v)]]++;
    }
  }
  std::cout << "BFS from 0 reaches " << reached << " vertices:\n";
  for (const auto& [level, count] : level_histogram) {
    std::cout << "  level " << level << ": " << count << " vertices\n";
  }

  // Weakly connected components on the symmetrised pattern.
  const Csr<double> undirected = gen::symmetrized(g);
  const auto labels = graph::connected_components(undirected);
  std::map<index_t, int> component_sizes;
  for (index_t v = 0; v < undirected.rows; ++v) {
    component_sizes[labels[static_cast<std::size_t>(v)]]++;
  }
  int giant = 0;
  for (const auto& [root, size] : component_sizes) giant = std::max(giant, size);
  std::cout << "components: " << component_sizes.size() << ", giant component " << giant
            << " vertices\n";

  // All-pairs shortest paths on a small weighted subproblem via (min, +)
  // repeated squaring — log2(n) tiled semiring SpGEMMs.
  const Csr<double> w = gen::erdos_renyi(120, 120, 700, 7, {0.5, 3.0});
  const auto dist = graph::apsp_min_plus(w);
  double max_finite = 0.0;
  std::size_t reachable_pairs = 0;
  for (double d : dist) {
    if (d < std::numeric_limits<double>::infinity()) {
      ++reachable_pairs;
      max_finite = std::max(max_finite, d);
    }
  }
  std::cout << "APSP on 120 vertices: " << reachable_pairs << "/" << dist.size()
            << " pairs reachable, diameter (weighted) " << max_finite << "\n";
  return 0;
}
