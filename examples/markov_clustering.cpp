// Markov clustering (MCL) — the machine-learning workload the paper's
// introduction cites (HipMCL, Azad et al.): repeated SpGEMM is the
// expansion step of the algorithm.
//
//   loop: M <- M * M            (expansion   — TileSpGEMM)
//         M <- M .^ r, rescale  (inflation   — element-wise ops)
//         prune tiny entries
// until the column-stochastic matrix converges. Clusters are read off the
// attractor rows. The example builds a graph of three planted communities
// and checks MCL recovers them.
#include <iostream>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/spgemm_context.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/ops.h"

namespace {

using namespace tsg;

/// Three dense-ish communities with a few random bridges.
Csr<double> planted_communities(index_t community, index_t communities, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo<double> coo;
  const index_t n = community * communities;
  coo.rows = coo.cols = n;
  for (index_t c = 0; c < communities; ++c) {
    const index_t base = c * community;
    for (index_t i = 0; i < community; ++i) {
      for (index_t j = 0; j < community; ++j) {
        if (i == j || rng.next_double() < 0.55) {
          coo.push_back(base + i, base + j, 1.0);
        }
      }
    }
  }
  for (int bridges = 0; bridges < 6; ++bridges) {
    const index_t u = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const index_t v = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    coo.push_back(u, v, 1.0);
    coo.push_back(v, u, 1.0);
  }
  return coo_to_csr(std::move(coo));
}

}  // namespace

int main() {
  const index_t community = 40, communities = 3;
  Csr<double> m = planted_communities(community, communities, 11);
  std::cout << "graph: " << m.rows << " vertices in " << communities
            << " planted communities, " << m.nnz() << " edges\n";

  normalize_columns_inplace(m);
  const double inflation = 2.0;
  const double prune_tol = 1e-4;

  // One context for the whole MCL run: the expansion SpGEMM reuses the
  // pooled workspaces every iteration instead of reallocating them.
  SpgemmContext ctx;
  for (int iter = 0; iter < 24; ++iter) {
    // Expansion: the SpGEMM at the heart of MCL.
    Csr<double> expanded = ctx.run_csr(m, m);
    // Inflation + pruning keep the matrix sparse and sharpen clusters.
    pow_inplace(expanded, inflation);
    normalize_columns_inplace(expanded);
    Csr<double> pruned = prune(expanded, prune_tol);
    normalize_columns_inplace(pruned);

    const bool converged =
        pruned.nnz() == m.nnz() && [&] {
          for (std::size_t k = 0; k < pruned.val.size(); ++k) {
            if (std::abs(pruned.val[k] - m.val[k]) > 1e-8) return false;
          }
          return true;
        }();
    m = std::move(pruned);
    if (converged) {
      std::cout << "converged after " << iter + 1 << " iterations, nnz = " << m.nnz() << "\n";
      break;
    }
  }

  // Interpret: column j belongs to the cluster of its attractor (the row
  // holding its largest value).
  std::vector<index_t> owner(static_cast<std::size_t>(m.cols), -1);
  std::vector<double> best(static_cast<std::size_t>(m.cols), -1.0);
  for (index_t i = 0; i < m.rows; ++i) {
    for (offset_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
      const index_t j = m.col_idx[k];
      if (m.val[k] > best[static_cast<std::size_t>(j)]) {
        best[static_cast<std::size_t>(j)] = m.val[k];
        owner[static_cast<std::size_t>(j)] = i;
      }
    }
  }
  std::set<index_t> attractors(owner.begin(), owner.end());
  std::cout << "clusters found: " << attractors.size() << "\n";

  // Check cluster assignments respect the planted communities: vertices in
  // the same community must share an attractor.
  int violations = 0;
  for (index_t c = 0; c < communities; ++c) {
    const index_t base = c * community;
    for (index_t i = 1; i < community; ++i) {
      if (owner[static_cast<std::size_t>(base + i)] !=
          owner[static_cast<std::size_t>(base)]) {
        ++violations;
      }
    }
  }
  std::cout << "community coherence violations: " << violations << "\n";
  const bool ok = attractors.size() == static_cast<std::size_t>(communities) &&
                  violations == 0;
  std::cout << (ok ? "MCL recovered the planted structure\n"
                   : "MCL result differs from planted structure\n");
  return ok ? 0 : 1;
}
