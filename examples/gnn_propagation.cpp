// Graph-neural-network feature propagation — the SpMM workload the paper's
// introduction situates next to SpGEMM (GE-SpMM et al.): every GCN layer
// computes H' = normalize(A_hat) * H * W. The sparse half of that product
// runs on the tiled SpMM; this example propagates features through a
// two-layer graph convolution and checks a conservation property.
#include <cmath>
#include <iostream>

#include "core/tile_convert.h"
#include "core/tile_spmm.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/ops.h"

namespace {

using namespace tsg;

/// Row-normalised A_hat = D^-1 (A + I): each row averages its neighbourhood.
Csr<double> normalized_adjacency(const Csr<double>& adj) {
  Csr<double> a_hat = add(adj, identity<double>(adj.rows));
  for (index_t i = 0; i < a_hat.rows; ++i) {
    double row_sum = 0.0;
    for (offset_t k = a_hat.row_ptr[i]; k < a_hat.row_ptr[i + 1]; ++k) {
      row_sum += a_hat.val[k];
    }
    if (row_sum != 0.0) {
      for (offset_t k = a_hat.row_ptr[i]; k < a_hat.row_ptr[i + 1]; ++k) {
        a_hat.val[k] /= row_sum;
      }
    }
  }
  return a_hat;
}

/// Dense H * W (features x weights), row-major.
DenseMatrix<double> dense_mm(const DenseMatrix<double>& h, const DenseMatrix<double>& w) {
  DenseMatrix<double> out(h.rows, w.cols);
  for (index_t i = 0; i < h.rows; ++i) {
    for (index_t k = 0; k < h.cols; ++k) {
      const double v = h.at(i, k);
      if (v == 0.0) continue;
      for (index_t j = 0; j < w.cols; ++j) out.at(i, j) += v * w.at(k, j);
    }
  }
  return out;
}

}  // namespace

int main() {
  // Undirected power-law graph with positive edge weights.
  Csr<double> g = gen::symmetrized(gen::rmat(11, 8.0, 33));
  for (auto& v : g.val) v = 1.0;
  std::cout << "graph: " << g.rows << " vertices, " << g.nnz() << " edges\n";

  const Csr<double> a_hat = normalized_adjacency(g);
  const TileMatrix<double> t = csr_to_tile(a_hat);

  // Initial features: 16-dimensional one-hot-ish embedding.
  const index_t features = 16;
  DenseMatrix<double> h(g.rows, features);
  for (index_t v = 0; v < g.rows; ++v) h.at(v, v % features) = 1.0;

  // Two propagation layers with fixed mixing weights (identity + shift),
  // the linear part of a GCN forward pass.
  DenseMatrix<double> w(features, features);
  for (index_t i = 0; i < features; ++i) {
    w.at(i, i) = 0.7;
    w.at(i, (i + 1) % features) = 0.3;
  }

  for (int layer = 1; layer <= 2; ++layer) {
    h = tile_spmm(t, h);  // sparse propagation on the tile format
    h = dense_mm(h, w);   // feature mixing
    double mass = 0.0;
    for (double v : h.data) mass += v;
    std::cout << "layer " << layer << ": feature mass " << mass << "\n";
  }

  // Conservation check: A_hat is row-stochastic and each W row sums to 1,
  // so total feature mass must stay at the initial value (= #vertices).
  double mass = 0.0;
  for (double v : h.data) mass += v;
  const double expected = static_cast<double>(g.rows);
  std::cout << "final mass " << mass << " vs expected " << expected << "\n";
  if (std::fabs(mass - expected) > 1e-6 * expected) {
    std::cerr << "mass conservation violated\n";
    return 1;
  }
  std::cout << "propagation conserves feature mass — SpMM path verified\n";
  return 0;
}
