// Compressed Sparse Blocks (Fig. 11 comparison formats).
#include <gtest/gtest.h>

#include "csb/csb.h"
#include "core/tile_convert.h"
#include "gen/generators.h"
#include "test_support.h"

namespace tsg {
namespace {

TEST(Csb, MortonCodeRoundTrip) {
  for (index_t r = 0; r < 256; r += 7) {
    for (index_t c = 0; c < 256; c += 11) {
      index_t rr, cc;
      morton_decode(morton_encode(r, c), rr, cc);
      EXPECT_EQ(rr, r);
      EXPECT_EQ(cc, c);
    }
  }
}

TEST(Csb, MortonCodeIsZOrder) {
  EXPECT_EQ(morton_encode(0, 0), 0);
  EXPECT_EQ(morton_encode(0, 1), 1);
  EXPECT_EQ(morton_encode(1, 0), 2);
  EXPECT_EQ(morton_encode(1, 1), 3);
  EXPECT_EQ(morton_encode(2, 0), 8);
  EXPECT_EQ(morton_encode(255, 255), 0xFFFF);
}

class CsbRoundTrip : public ::testing::TestWithParam<CsbKind> {};

TEST_P(CsbRoundTrip, PreservesMatrix) {
  for (auto make : {test::make_er_small, test::make_band, test::make_blocks,
                    test::make_rmat_small, test::make_hyper_sparse}) {
    const Csr<double> a = make();
    const Csb<double> m = csr_to_csb(a, GetParam());
    EXPECT_EQ(m.nnz(), a.nnz());
    test::expect_equal(a, csb_to_csr(m), "csb round trip", 1e-15);
  }
}

TEST_P(CsbRoundTrip, HandlesNonMultipleDimensions) {
  const Csr<double> a = gen::erdos_renyi(300, 513, 2000, 401);
  const Csb<double> m = csr_to_csb(a, GetParam());
  EXPECT_EQ(m.block_rows, 2);
  EXPECT_EQ(m.block_cols, 3);
  test::expect_equal(a, csb_to_csr(m), "csb odd dims", 1e-15);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, CsbRoundTrip,
                         ::testing::Values(CsbKind::kMorton, CsbKind::kIndexed),
                         [](const auto& info) {
                           return info.param == CsbKind::kMorton ? "Morton" : "Indexed";
                         });

TEST(Csb, SpaceOrderingMatchesFig11) {
  // Fig. 11 finding: the tiled structure is smaller than CSR (for matrices
  // with non-trivial tile occupancy) but larger than CSB-M and CSB-I,
  // because it additionally stores per-tile row pointers and masks. The
  // claim needs reasonably filled tiles — a band matrix, like the FEM bulk
  // of the paper's dataset. (For hyper-sparse matrices the per-tile
  // overhead can exceed CSR, the cop20k_A caveat of Section 4.3.)
  const Csr<double> a = gen::banded(3000, 20, 402);
  const std::size_t csr = a.bytes();
  const std::size_t csb_m = csr_to_csb(a, CsbKind::kMorton).bytes();
  const std::size_t csb_i = csr_to_csb(a, CsbKind::kIndexed).bytes();
  const std::size_t tiled = csr_to_tile(a).bytes();
  EXPECT_LT(tiled, csr);
  EXPECT_GT(tiled, csb_m);
  EXPECT_GT(tiled, csb_i);
}

TEST(Csb, MortonAndIndexedSameSizeHere) {
  // One uint16 vs two uint8 per nonzero: identical payload bytes; only the
  // encodings differ.
  const Csr<double> a = gen::banded(500, 5, 403);
  EXPECT_EQ(csr_to_csb(a, CsbKind::kMorton).bytes(),
            csr_to_csb(a, CsbKind::kIndexed).bytes());
}

TEST(Csb, EmptyMatrix) {
  const Csb<double> m = csr_to_csb(Csr<double>(10, 10), CsbKind::kMorton);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(csb_to_csr(m).nnz(), 0);
}

}  // namespace
}  // namespace tsg
