// Chained-product scenarios: repeated squaring, Galerkin-style triple
// products, and AMG on an anisotropic operator — the multi-SpGEMM usage
// patterns the paper's conversion-amortisation argument (§4.6) is about.
#include <gtest/gtest.h>

#include "baselines/reference.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "matrix/transpose.h"
#include "solver/amg.h"
#include "solver/cg.h"
#include "test_support.h"

namespace tsg {
namespace {

void expect_equal_pruned(const Csr<double>& expected, const Csr<double>& actual,
                         const char* what) {
  CompareOptions opt;
  opt.rel_tol = 1e-8;
  opt.prune_zeros = true;
  opt.prune_tol = 1e-10;
  const CompareResult r = compare(expected, actual, opt);
  EXPECT_TRUE(r.equal) << what << ": " << r.message;
}

TEST(Chains, RepeatedSquaringStaysInTileFormat) {
  // A^8 computed by three tile-native squarings vs three reference
  // squarings: errors compound but structures driven by the same symbolic
  // rule must track each other.
  const Csr<double> a = gen::erdos_renyi(150, 150, 600, 21, {0.01, 0.11});
  TileMatrix<double> t = csr_to_tile(a);
  Csr<double> ref = a;
  for (int i = 0; i < 3; ++i) {
    t = tile_spgemm(t, t).c;
    ref = spgemm_reference(ref, ref);
  }
  expect_equal_pruned(ref, tile_to_csr(t), "A^8");
}

TEST(Chains, GalerkinTripleProductAssociations) {
  // R*(A*P) == (R*A)*P — the two ways AMG codes order the triple product.
  const Csr<double> a = gen::symmetrized(gen::erdos_renyi(96, 96, 700, 22));
  Coo<double> coo;
  coo.rows = 96;
  coo.cols = 24;
  for (index_t i = 0; i < 96; ++i) coo.push_back(i, i / 4, 1.0);
  const Csr<double> p = coo_to_csr(std::move(coo));
  const Csr<double> r = transpose(p);

  const Csr<double> left = spgemm_tile(spgemm_tile(r, a), p);
  const Csr<double> right = spgemm_tile(r, spgemm_tile(a, p));
  expect_equal_pruned(left, right, "(RA)P vs R(AP)");
}

TEST(Chains, AmgHandlesAnisotropy) {
  // Anisotropic 5-point operator (strong x-coupling, weak y): the
  // strength-of-connection filter must still produce a convergent
  // hierarchy as a CG preconditioner.
  const index_t nx = 32, ny = 32;
  const double eps = 0.05;  // weak direction
  Coo<double> coo;
  coo.rows = coo.cols = nx * ny;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t row = y * nx + x;
      coo.push_back(row, row, 2.0 + 2.0 * eps);
      if (x > 0) coo.push_back(row, row - 1, -1.0);
      if (x + 1 < nx) coo.push_back(row, row + 1, -1.0);
      if (y > 0) coo.push_back(row, row - nx, -eps);
      if (y + 1 < ny) coo.push_back(row, row + nx, -eps);
    }
  }
  const Csr<double> a = coo_to_csr(std::move(coo));
  const solver::AmgHierarchy h(a);
  EXPECT_GE(h.levels(), 2u);

  const TileMatrix<double> t = csr_to_tile(a);
  tracked_vector<double> b(static_cast<std::size_t>(a.rows), 1.0), x;
  const auto res =
      solver::conjugate_gradient(t, b, x, solver::amg_preconditioner(h), 1e-8, 500);
  EXPECT_TRUE(res.converged) << "iterations " << res.iterations;
}

TEST(Chains, MarkovStyleNormalizedPowers) {
  // Column-stochastic powers stay column-stochastic through tile products
  // (the MCL expansion invariant).
  Csr<double> m = gen::erdos_renyi(80, 80, 640, 23, {0.1, 1.0});
  normalize_columns_inplace(m);
  Csr<double> p = m;
  for (int step = 0; step < 3; ++step) {
    p = spgemm_tile(p, m);
    tracked_vector<double> col_sum(80, 0.0);
    for (std::size_t k = 0; k < p.col_idx.size(); ++k) {
      col_sum[static_cast<std::size_t>(p.col_idx[k])] += p.val[k];
    }
    for (index_t j = 0; j < 80; ++j) {
      // Columns reachable in the chain sum to 1; unreachable stay 0.
      if (col_sum[static_cast<std::size_t>(j)] != 0.0) {
        ASSERT_NEAR(col_sum[static_cast<std::size_t>(j)], 1.0, 1e-9)
            << "step " << step << " col " << j;
      }
    }
  }
}

}  // namespace
}  // namespace tsg
