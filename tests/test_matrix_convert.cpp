// Format conversions and transpose.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/transpose.h"
#include "test_support.h"

namespace tsg {
namespace {

TEST(Convert, CooToCsrAndBack) {
  Coo<double> coo;
  coo.rows = 4;
  coo.cols = 5;
  coo.push_back(3, 1, 1.0);
  coo.push_back(0, 4, 2.0);
  coo.push_back(0, 0, 3.0);
  coo.push_back(2, 2, 4.0);
  const Csr<double> a = coo_to_csr(coo);
  EXPECT_TRUE(a.validate().empty());
  EXPECT_TRUE(a.rows_sorted());
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_EQ(a.row_nnz(1), 0);

  const Coo<double> back = csr_to_coo(a);
  EXPECT_TRUE(back.is_sorted_unique());
  EXPECT_EQ(back.nnz(), 4);
  EXPECT_EQ(back.row[0], 0);
  EXPECT_EQ(back.col[0], 0);
  EXPECT_DOUBLE_EQ(back.val[0], 3.0);
}

TEST(Convert, CsrCscRoundTrip) {
  const Csr<double> a = gen::erdos_renyi(83, 61, 700, 11);
  const Csc<double> csc = csr_to_csc(a);
  EXPECT_EQ(csc.nnz(), a.nnz());
  // CSC of A reinterpreted as CSR is exactly A^T; transposing again gives A.
  const Csr<double> at = csc_to_csr_of_transpose(csc);
  EXPECT_EQ(at.rows, a.cols);
  EXPECT_EQ(at.cols, a.rows);
  test::expect_equal(a, transpose(at), "csc round trip");
}

TEST(Convert, CscColumnsAreSortedByRow) {
  const Csr<double> a = gen::rmat(8, 4.0, 12);
  const Csc<double> csc = csr_to_csc(a);
  for (index_t j = 0; j < a.cols; ++j) {
    for (offset_t k = csc.col_ptr[j] + 1; k < csc.col_ptr[j + 1]; ++k) {
      ASSERT_LT(csc.row_idx[k - 1], csc.row_idx[k]);
    }
  }
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    const Csr<double> a = gen::erdos_renyi(120, 45, 800, seed);
    test::expect_equal(a, transpose(transpose(a)), "transpose^2");
  }
}

TEST(Transpose, ExplicitSmallCase) {
  Coo<double> coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.push_back(0, 2, 5.0);
  coo.push_back(1, 0, 7.0);
  const Csr<double> at = transpose(coo_to_csr(coo));
  EXPECT_EQ(at.rows, 3);
  EXPECT_EQ(at.cols, 2);
  ASSERT_EQ(at.nnz(), 2);
  EXPECT_EQ(at.col_idx[at.row_ptr[0]], 1);  // (0,1) = 7
  EXPECT_DOUBLE_EQ(at.val[at.row_ptr[0]], 7.0);
  EXPECT_EQ(at.col_idx[at.row_ptr[2]], 0);  // (2,0) = 5
  EXPECT_DOUBLE_EQ(at.val[at.row_ptr[2]], 5.0);
}

TEST(Transpose, SymmetricPatternStaysSymmetric) {
  const Csr<double> a = gen::symmetrized(gen::erdos_renyi(60, 60, 250, 24));
  const Csr<double> at = transpose(a);
  // Pattern symmetric: structure of A^T equals structure of A.
  ASSERT_EQ(at.nnz(), a.nnz());
  for (std::size_t k = 0; k < a.col_idx.size(); ++k) {
    ASSERT_EQ(at.col_idx[k], a.col_idx[k]);
  }
}

TEST(Transpose, EmptyAndRowVector) {
  const Csr<double> e(0, 5);
  const Csr<double> et = transpose(e);
  EXPECT_EQ(et.rows, 5);
  EXPECT_EQ(et.cols, 0);

  Coo<double> coo;
  coo.rows = 1;
  coo.cols = 10;
  for (index_t j = 0; j < 10; j += 2) coo.push_back(0, j, static_cast<double>(j));
  const Csr<double> rt = transpose(coo_to_csr(coo));
  EXPECT_EQ(rt.rows, 10);
  EXPECT_EQ(rt.cols, 1);
  EXPECT_EQ(rt.nnz(), 5);
}

}  // namespace
}  // namespace tsg
