// RCM reordering and its effect on tile occupancy.
#include <gtest/gtest.h>

#include "baselines/reference.h"
#include "core/tile_convert.h"
#include "core/tile_stats.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/reorder.h"
#include "test_support.h"

namespace tsg {
namespace {

TEST(Reorder, RcmIsAPermutation) {
  const Csr<double> a = gen::symmetrized(gen::erdos_renyi(200, 200, 900, 1));
  const auto perm = rcm_ordering(a);
  ASSERT_EQ(perm.size(), 200u);
  std::vector<bool> seen(200, false);
  for (index_t v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 200);
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Reorder, RcmReducesBandwidthOfShuffledBand) {
  // A band matrix destroyed by a random symmetric shuffle: RCM must
  // recover a narrow band.
  const Csr<double> band = gen::banded(400, 5, 2);
  tracked_vector<index_t> shuffle(400);
  for (index_t i = 0; i < 400; ++i) shuffle[static_cast<std::size_t>(i)] = (i * 233) % 400;
  const Csr<double> scrambled = permute_symmetric(band, shuffle);
  ASSERT_GT(bandwidth(scrambled), 100);

  const Csr<double> restored = permute_symmetric(scrambled, rcm_ordering(scrambled));
  EXPECT_LT(bandwidth(restored), 30);
}

TEST(Reorder, PermuteSymmetricPreservesSpectralStructure) {
  // Permutation similarity preserves row-sum multiset and diagonal values.
  const Csr<double> a = gen::symmetrized(gen::erdos_renyi(80, 80, 300, 3));
  const auto perm = rcm_ordering(a);
  const Csr<double> p = permute_symmetric(a, perm);
  ASSERT_EQ(p.nnz(), a.nnz());

  std::vector<double> sums_a, sums_p;
  for (index_t i = 0; i < a.rows; ++i) {
    double sa = 0, sp = 0;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) sa += a.val[k];
    for (offset_t k = p.row_ptr[i]; k < p.row_ptr[i + 1]; ++k) sp += p.val[k];
    sums_a.push_back(sa);
    sums_p.push_back(sp);
  }
  std::sort(sums_a.begin(), sums_a.end());
  std::sort(sums_p.begin(), sums_p.end());
  for (std::size_t i = 0; i < sums_a.size(); ++i) {
    ASSERT_NEAR(sums_a[i], sums_p[i], 1e-10);
  }
}

TEST(Reorder, PermuteRejectsInvalidInput) {
  const Csr<double> a = gen::banded(10, 1, 4);
  tracked_vector<index_t> bad = {0, 0, 2, 3, 4, 5, 6, 7, 8, 9};  // duplicate
  EXPECT_THROW(permute_symmetric(a, bad), std::invalid_argument);
  tracked_vector<index_t> short_perm = {0, 1};
  EXPECT_THROW(permute_symmetric(a, short_perm), std::invalid_argument);
  const Csr<double> rect = gen::erdos_renyi(5, 6, 10, 5);
  EXPECT_THROW(rcm_ordering(rect), std::invalid_argument);
}

TEST(Reorder, ImprovesTileOccupancyOfScrambledBand) {
  // The tile-format implication: the same nonzeros in far fewer tiles.
  const Csr<double> band = gen::banded(600, 8, 6);
  tracked_vector<index_t> shuffle(600);
  for (index_t i = 0; i < 600; ++i) shuffle[static_cast<std::size_t>(i)] = (i * 371) % 600;
  const Csr<double> scrambled = permute_symmetric(band, shuffle);
  const Csr<double> restored = permute_symmetric(scrambled, rcm_ordering(scrambled));

  const TileFormatStats before = tile_format_stats(csr_to_tile(scrambled));
  const TileFormatStats after = tile_format_stats(csr_to_tile(restored));
  EXPECT_LT(after.num_tiles * 2, before.num_tiles);
  EXPECT_GT(after.avg_nnz_per_tile, 2.0 * before.avg_nnz_per_tile);
}

TEST(Reorder, ProductOnReorderedMatrixIsPermutedProduct) {
  // (P A P^T)^2 = P A^2 P^T: squaring commutes with symmetric permutation.
  const Csr<double> a = gen::symmetrized(gen::erdos_renyi(64, 64, 250, 7));
  const auto perm = rcm_ordering(a);
  const Csr<double> pa = permute_symmetric(a, perm);
  const Csr<double> lhs = spgemm_reference(pa, pa);
  const Csr<double> rhs = permute_symmetric(spgemm_reference(a, a), perm);
  test::expect_equal(rhs, lhs, "permute commutes with square");
}

TEST(Reorder, HandlesDisconnectedGraphs) {
  // Two disjoint bands: RCM must cover both components.
  Coo<double> coo;
  coo.rows = coo.cols = 60;
  for (index_t i = 0; i < 29; ++i) {
    coo.push_back(i, i + 1, 1.0);
    coo.push_back(i + 1, i, 1.0);
  }
  for (index_t i = 30; i < 59; ++i) {
    coo.push_back(i, i + 1, 1.0);
    coo.push_back(i + 1, i, 1.0);
  }
  const Csr<double> a = coo_to_csr(std::move(coo));
  const auto perm = rcm_ordering(a);
  EXPECT_EQ(perm.size(), 60u);
  const Csr<double> p = permute_symmetric(a, perm);
  EXPECT_LE(bandwidth(p), 31);  // components stay contiguous
}

}  // namespace
}  // namespace tsg
