// Malformed-input sweep for the Matrix Market loader (io_mm): truncations,
// CRLF line endings, NaN/Inf values, huge and negative dimensions, junk
// tokens, and seeded byte-level mutations. The contract under test is the
// robustness ladder's first rung: a hostile input either parses or fails
// with a structured Status (kIoError / kIndexOverflow) carrying the 1-based
// offending line — never a crash, never a non-Error exception, never an
// unbounded allocation from a lying size line. Runs under `ctest -L
// robustness` and again in the ASan stage of scripts/check.sh, where an
// out-of-bounds read in the parser would turn these passes red.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "matrix/io_mm.h"

namespace tsg {
namespace {

constexpr const char* kValidGeneral =
    "%%MatrixMarket matrix coordinate real general\n"
    "% comment\n"
    "3 4 3\n"
    "1 1 2.5\n"
    "3 4 -1.0\n"
    "2 2 7\n";

/// Feed `input` to the parser and enforce the no-crash contract: success is
/// fine; failure must be a tsg::Error whose Status is structured and names
/// a line. Returns true when the input parsed.
bool parse_is_structured(const std::string& input, const std::string& what) {
  std::istringstream in(input);
  try {
    const Coo<double> coo = read_matrix_market<double>(in);
    EXPECT_GE(coo.rows, 0) << what;
    EXPECT_GE(coo.cols, 0) << what;
    return true;
  } catch (const Error& e) {
    const StatusCode code = e.status().code();
    EXPECT_TRUE(code == StatusCode::kIoError || code == StatusCode::kIndexOverflow)
        << what << ": unexpected code in " << e.status().to_string();
    EXPECT_NE(e.status().message().find("line "), std::string::npos)
        << what << ": failure does not name the offending line: "
        << e.status().to_string();
    return false;
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": non-Error exception escaped the parser: " << e.what();
    return false;
  }
}

TEST(IoFuzz, BaselineParses) {
  EXPECT_TRUE(parse_is_structured(kValidGeneral, "baseline"));
}

TEST(IoFuzz, EveryTruncationIsStructured) {
  // Chop the valid file at every byte boundary: each prefix must parse or
  // fail structurally (the classic "truncated header" and "truncated
  // entry" families in one sweep).
  const std::string base = kValidGeneral;
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    parse_is_structured(base.substr(0, cut),
                        "truncation at byte " + std::to_string(cut));
  }
}

TEST(IoFuzz, CrlfLineEndingsParse) {
  // Files written on Windows carry \r\n; the loader must treat them as the
  // same matrix, not as a bad-entry failure on every line.
  std::string crlf;
  for (const char c : std::string(kValidGeneral)) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::istringstream unix_in(kValidGeneral);
  std::istringstream crlf_in(crlf);
  const Coo<double> want = read_matrix_market<double>(unix_in);
  const Coo<double> got = read_matrix_market<double>(crlf_in);
  EXPECT_EQ(got.rows, want.rows);
  EXPECT_EQ(got.cols, want.cols);
  EXPECT_EQ(got.nnz(), want.nnz());
}

TEST(IoFuzz, NanAndInfValuesDoNotCrash) {
  // The parser may accept non-finite values (istream does) or reject them;
  // either way the outcome must be structured and downstream-visible, not
  // a crash. Each variant exercises a different token spelling.
  for (const char* v : {"nan", "NaN", "-nan", "inf", "Inf", "-inf", "infinity"}) {
    const std::string input =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 " + std::string(v) + "\n";
    parse_is_structured(input, std::string("value ") + v);
  }
}

TEST(IoFuzz, HugeAndHostileSizeLinesAreStructured) {
  const char* cases[] = {
      // Dimensions beyond index_t must fail as kIndexOverflow, not allocate.
      "99999999999999 99999999999999 1\n1 1 1.0\n",
      // Entry count larger than rows*cols is a lie the loader must call out.
      "2 2 10\n1 1 1.0\n",
      // Negative and non-numeric sizes.
      "-3 4 1\n1 1 1.0\n",
      "3 x 1\n1 1 1.0\n",
      // Huge entry count with a tiny body: must fail at the missing entry,
      // not reserve petabytes first.
      "1000 1000 999999999\n1 1 1.0\n",
  };
  for (const char* c : cases) {
    parse_is_structured(std::string("%%MatrixMarket matrix coordinate real general\n") + c,
                        std::string("size line: ") + c);
  }
}

TEST(IoFuzz, MalformedHeadersAndEntriesAreStructured) {
  const char* cases[] = {
      "",                                                    // empty stream
      "\n",                                                  // blank only
      "%%MatrixMarket\n3 3 1\n1 1 1.0\n",                    // short banner
      "%%MatrixMarket tensor coordinate real general\n",     // wrong object
      "%%MatrixMarket matrix array real general\n",          // wrong format
      "%%MatrixMarket matrix coordinate complex general\n",  // unsupported field
      "%%MatrixMarket matrix coordinate real hermitian\n",   // unsupported symmetry
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n0 1 1.0\n",   // 0-based
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1.0\n",   // OOB row
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1\n",       // no value
      "%%MatrixMarket matrix coordinate real general\n3 3 1\nfoo bar 1\n", // junk
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n",   // short body
  };
  for (const char* c : cases) {
    EXPECT_FALSE(parse_is_structured(c, std::string("malformed: ") + c))
        << "hostile input parsed: " << c;
  }
}

TEST(IoFuzz, SeededByteMutationsNeverCrash) {
  // Deterministic byte-level fuzzing: flip/overwrite a handful of bytes of
  // the valid file per iteration. Most mutants fail, a few still parse —
  // both outcomes are fine; what this sweep buys (especially under ASan)
  // is "no mutant crashes or escapes a non-Error exception".
  const std::string base = kValidGeneral;
  Xoshiro256 rng(0xf00du);
  int parsed = 0;
  constexpr int kMutants = 400;
  for (int m = 0; m < kMutants; ++m) {
    std::string mutant = base;
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = static_cast<std::size_t>(rng.next_below(mutant.size()));
      mutant[pos] = static_cast<char>(rng.next_below(256));
    }
    if (parse_is_structured(mutant, "mutant " + std::to_string(m))) ++parsed;
  }
  // Sanity: the sweep actually explored both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_LT(parsed, kMutants);
}

}  // namespace
}  // namespace tsg
