// End-to-end integration: the real experiment workloads (representative /
// tSparse suites) through the full pipeline — conversion, all five methods,
// both operations — cross-validated on the fly. These are the same code
// paths the bench binaries time.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "baselines/tsparse.h"
#include "common/half.h"
#include "common/parallel.h"
#include "core/tile_spgemm.h"
#include "core/tile_stats.h"
#include "gen/representative.h"
#include "harness/runner.h"
#include "matrix/compare.h"
#include "matrix/stats.h"
#include "matrix/transpose.h"
#include "test_support.h"

namespace tsg {
namespace {

// Subset of the representative suite small enough for per-test validation;
// one per structure class. (SiO2/gupta3-class proxies are excluded here:
// the SPA/ESC baselines deliberately fail on them by modeled device-memory
// budget, exactly as cuSPARSE/bhSPARSE fail in the paper's Fig. 7.)
std::vector<std::string> validation_subset() {
  return {"pdb1HYS", "conf5_4-8x8-05", "mc2depi", "webbase-1M", "case39", "scircuit"};
}

TEST(Integration, RepresentativeSubsetAllMethodsAgree) {
  const auto suite = gen::representative_suite();
  const auto wanted = validation_subset();
  int checked = 0;
  for (const auto& m : suite) {
    if (std::find(wanted.begin(), wanted.end(), m.name) == wanted.end()) continue;
    SCOPED_TRACE(m.name);
    ++checked;
    Csr<double> first;
    for (const SpgemmAlgorithm& algo : paper_algorithms()) {
      const Csr<double> c = algo.profiled(m.a, m.a).c;
      ASSERT_TRUE(c.validate().empty()) << algo.name;
      if (first.rows == 0) {
        first = c;
      } else {
        CompareOptions opt;
        opt.rel_tol = 1e-9;
        const CompareResult r = compare(first, c, opt);
        ASSERT_TRUE(r.equal) << algo.name << ": " << r.message;
      }
    }
  }
  EXPECT_EQ(checked, static_cast<int>(wanted.size()));
}

TEST(Integration, AatOnAsymmetricProxies) {
  for (const auto& m : gen::asymmetric_suite()) {
    SCOPED_TRACE(m.name);
    const Csr<double> at = transpose(m.a);
    const Csr<double> tile = spgemm_tile(m.a, at);
    const Csr<double> speck = paper_algorithms()[3].profiled(m.a, at).c;
    CompareOptions opt;
    opt.rel_tol = 1e-9;
    const CompareResult r = compare(speck, tile, opt);
    EXPECT_TRUE(r.equal) << r.message;
  }
}

TEST(Integration, TileFormatStatsOnRepresentativeSuite) {
  // The cop20k_A proxy must show the hyper-sparse-tile pathology the paper
  // discusses (avg nnz/tile near 1); the SiO2 proxy the opposite.
  double cop_avg = 0, sio2_avg = 0;
  for (const auto& m : gen::representative_suite()) {
    const TileFormatStats s = tile_format_stats(csr_to_tile(m.a));
    ASSERT_GT(s.num_tiles, 0) << m.name;
    if (m.name == "cop20k_A") cop_avg = s.avg_nnz_per_tile;
    if (m.name == "SiO2") sio2_avg = s.avg_nnz_per_tile;
  }
  EXPECT_LT(cop_avg, 4.0);
  EXPECT_GT(sio2_avg, 100.0);
}

TEST(Integration, TsparseSuiteRuns) {
  // Both half-precision contenders (Fig. 13) on a subset of the tSparse
  // dataset; cross-validate against each other with fp16-appropriate
  // tolerance and zero pruning.
  int checked = 0;
  for (const auto& m : gen::tsparse_suite()) {
    if (m.name != "mc2depi" && m.name != "wiki-Vote" && m.name != "struct3") continue;
    SCOPED_TRACE(m.name);
    ++checked;
    const Csr<float> a = gen::cast_values<float>(m.a);
    const Csr<float> dense_tile = spgemm_tsparse(a, a);

    Csr<float> ah = a;
    for (auto& v : ah.val) v = static_cast<float>(half(v));
    const Csr<float> sparse_tile = spgemm_tile(ah, ah);

    CompareOptions opt;
    opt.rel_tol = 5e-3;
    opt.prune_zeros = true;
    opt.prune_tol = 1e-8;
    const CompareResult r = compare(sparse_tile, dense_tile, opt);
    EXPECT_TRUE(r.equal) << r.message;
  }
  EXPECT_EQ(checked, 3);
}

TEST(Integration, MeasurementPipelineEndToEnd) {
  // A miniature Fig. 7: run the measurement harness over two named proxies
  // and sanity-check the derived metrics.
  std::vector<NamedMatrix> mini;
  for (auto& m : gen::representative_suite()) {
    if (m.name == "mc2depi" || m.name == "case39") mini.push_back(std::move(m));
  }
  ASSERT_EQ(mini.size(), 2u);
  const auto results = measure_suite(mini, paper_algorithms(), SpgemmOp::kASquared);
  ASSERT_EQ(results.size(), 10u);
  for (const Measurement& r : results) {
    EXPECT_TRUE(r.ok) << r.matrix << "/" << r.algorithm;
    EXPECT_GT(r.gflops, 0.0) << r.matrix << "/" << r.algorithm;
    EXPECT_GT(r.compression_rate, 0.0);
  }
  // All methods computed identical nnz(C) per matrix.
  for (std::size_t base = 0; base < results.size(); base += 5) {
    for (std::size_t k = 1; k < 5; ++k) {
      EXPECT_EQ(results[base].nnz_c, results[base + k].nnz_c);
    }
  }
}

TEST(Integration, ThreadScalingGivesSameResults) {
  const Csr<double> a = gen::rmat(11, 5.0, 601);
  Csr<double> c1, c4;
  {
    ThreadCountGuard guard(1);
    c1 = spgemm_tile(a, a);
  }
  {
    ThreadCountGuard guard(4);
    c4 = spgemm_tile(a, a);
  }
  test::expect_equal(c1, c4, "threads 1 vs 4", 1e-12);
}

}  // namespace
}  // namespace tsg
