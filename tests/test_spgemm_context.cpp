// SpgemmContext: workspace pooling, cost-binned scheduling, the fused
// step2+step3 path, and the Config builder / environment plumbing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <utility>

#include "common/memory.h"
#include "core/masked_spgemm.h"
#include "core/spgemm_context.h"
#include "matrix/convert.h"
#include "matrix/transpose.h"
#include "test_support.h"

namespace tsg {
namespace {

const std::vector<test::GenCase>& cases() {
  static const std::vector<test::GenCase> list = {
      {"er_small", test::make_er_small},     {"er_rect", test::make_er_rect},
      {"er_dense", test::make_er_dense},     {"rmat_small", test::make_rmat_small},
      {"stencil", test::make_stencil},       {"band", test::make_band},
      {"band_wide", test::make_band_wide},   {"blocks", test::make_blocks},
      {"clustered", test::make_clustered},   {"hyper_sparse", test::make_hyper_sparse},
  };
  return list;
}

/// Right-hand operand for a sweep case: A itself, or A^T when A is
/// rectangular (so the product is always well-formed).
Csr<double> rhs_for(const Csr<double>& a) {
  return a.rows == a.cols ? a : transpose(a);
}

void expect_bit_identical(const Csr<double>& x, const Csr<double>& y,
                          const std::string& context) {
  ASSERT_EQ(x.rows, y.rows) << context;
  ASSERT_EQ(x.row_ptr, y.row_ptr) << context;
  ASSERT_EQ(x.col_idx, y.col_idx) << context;
  for (std::size_t k = 0; k < x.val.size(); ++k) {
    ASSERT_EQ(x.val[k], y.val[k]) << context << " val[" << k << "]";
  }
}

TEST(SpgemmContext, ReusedContextBitIdenticalToFresh) {
  // One context carried across every shape in the sweep must produce the
  // same bits as a fresh context per multiply: begin_call() has to fully
  // neutralise whatever the previous (differently shaped) call left in the
  // pooled buffers.
  SpgemmContext reused;
  for (const auto& c : cases()) {
    const Csr<double> a = c.make();
    const Csr<double> b = rhs_for(a);
    SpgemmContext fresh;
    const Csr<double> want = fresh.run_csr(a, b);
    const Csr<double> got = reused.run_csr(a, b);
    expect_bit_identical(want, got, c.name);
  }
}

TEST(SpgemmContext, RepeatedRunsThroughOneContextAreStable) {
  SpgemmContext ctx;
  const Csr<double> a = gen::rmat(10, 5.0, 77);
  const TileMatrix<double> ta = csr_to_tile(a);
  const TileSpgemmResult<double> first = ctx.run(ta, ta);
  for (int i = 0; i < 3; ++i) {
    const TileSpgemmResult<double> again = ctx.run(ta, ta);
    expect_bit_identical(tile_to_csr(first.c), tile_to_csr(again.c), "iteration");
  }
  test::check_against_reference(
      a, a, [&](const Csr<double>& x, const Csr<double>& y) { return ctx.run_csr(x, y); },
      "vs reference");
}

TEST(SpgemmContext, WorkspaceHighWaterStopsGrowing) {
  // With a fixed thread count the pooled footprint is deterministic: it
  // fills on the first call and must not grow on any later identical call.
  SpgemmContext ctx(SpgemmContext::Config{}.with_threads(1).with_pair_cache(true));
  const Csr<double> a = gen::rmat(10, 5.0, 78);
  const TileMatrix<double> ta = csr_to_tile(a);
  (void)ctx.run(ta, ta);
  const std::size_t high_water = ctx.workspace_bytes();
  EXPECT_GT(high_water, 0u);
  for (int i = 0; i < 4; ++i) {
    const TileSpgemmResult<double> res = ctx.run(ta, ta);
    EXPECT_EQ(ctx.workspace_bytes(), high_water) << "call " << i + 1;
    EXPECT_EQ(res.timings.workspace_bytes, high_water);
  }
  ctx.release_workspaces();
  EXPECT_EQ(ctx.workspace_bytes(), 0u);
}

TEST(SpgemmContext, FusedPathMatchesStagedPath) {
  // The fused step2+step3 path accumulates light tiles during the symbolic
  // visit; it must be bit-identical to the staged path because the
  // per-output-element accumulation order is the same pair order.
  for (const auto& c : cases()) {
    const Csr<double> a = c.make();
    const Csr<double> b = rhs_for(a);
    SpgemmContext staged(SpgemmContext::Config{}.with_pair_cache(true));
    SpgemmContext fused(SpgemmContext::Config{}.with_fused_path(true));
    expect_bit_identical(staged.run_csr(a, b), fused.run_csr(a, b), c.name);
  }
}

TEST(SpgemmContext, FusedPathCountsFusedTiles) {
  const Csr<double> a = test::make_band();
  SpgemmContext fused(SpgemmContext::Config{}.with_fused_path(true));
  const TileMatrix<double> ta = csr_to_tile(a);
  const TileSpgemmResult<double> res = fused.run(ta, ta);
  EXPECT_GT(res.timings.fused_tiles, 0);
  SpgemmContext plain;
  EXPECT_EQ(plain.run(ta, ta).timings.fused_tiles, 0);
}

TEST(SpgemmContext, CostBinningIsPureScheduling) {
  for (const auto& c : cases()) {
    const Csr<double> a = c.make();
    const Csr<double> b = rhs_for(a);
    SpgemmContext binned(SpgemmContext::Config{}.with_cost_binning(true));
    SpgemmContext linear(SpgemmContext::Config{}.with_cost_binning(false));
    expect_bit_identical(binned.run_csr(a, b), linear.run_csr(a, b), c.name);
  }
}

TEST(SpgemmContext, BinCountersCoverAllTiles) {
  SpgemmContext ctx;
  const TileMatrix<double> ta = csr_to_tile(gen::rmat(10, 5.0, 79));
  const TileSpgemmResult<double> res = ctx.run(ta, ta);
  offset_t binned = 0;
  for (int b = 0; b < kCostBins; ++b) binned += res.timings.bin_tiles[b];
  EXPECT_EQ(binned, res.timings.scheduled_tiles);
  EXPECT_EQ(res.timings.scheduled_tiles, res.c.num_tiles());
}

TEST(SpgemmContext, RunAatMatchesFreeFunction) {
  const Csr<double> a = test::make_er_rect();
  const TileMatrix<double> ta = csr_to_tile(a);
  SpgemmContext ctx;
  const TileSpgemmResult<double> via_ctx = ctx.run_aat(ta);
  const TileSpgemmResult<double> via_free = tile_spgemm_aat(ta);
  expect_bit_identical(tile_to_csr(via_ctx.c), tile_to_csr(via_free.c), "aat");
}

TEST(SpgemmContext, RunMaskedMatchesFreeFunction) {
  const Csr<double> a = test::make_rmat_small();
  const TileMatrix<double> ta = csr_to_tile(a);
  SpgemmContext ctx;
  const TileMatrix<double> via_ctx = ctx.run_masked(ta, ta, ta);
  const TileMatrix<double> via_free = tile_spgemm_masked(ta, ta, ta);
  expect_bit_identical(tile_to_csr(via_ctx), tile_to_csr(via_free), "masked");
  // And reuse across differently shaped masked calls stays correct.
  const TileMatrix<double> tb = csr_to_tile(test::make_stencil());
  expect_bit_identical(tile_to_csr(ctx.run_masked(tb, tb, tb)),
                       tile_to_csr(tile_spgemm_masked(tb, tb, tb)), "masked-2");
}

TEST(SpgemmContext, MixedCallKindsThroughOneContext) {
  // run / run_aat / run_masked / run_csr interleaved on one context: each
  // begin_call() must leave no residue for the next kind of call.
  SpgemmContext ctx;
  const Csr<double> a = test::make_blocks();
  const TileMatrix<double> ta = csr_to_tile(a);
  expect_bit_identical(tile_to_csr(ctx.run(ta, ta).c),
                       tile_to_csr(tile_spgemm(ta, ta).c), "run");
  expect_bit_identical(tile_to_csr(ctx.run_aat(ta).c),
                       tile_to_csr(tile_spgemm_aat(ta).c), "aat");
  expect_bit_identical(tile_to_csr(ctx.run_masked(ta, ta, ta)),
                       tile_to_csr(tile_spgemm_masked(ta, ta, ta)), "masked");
  expect_bit_identical(ctx.run_csr(a, a), spgemm_tile(a, a), "csr");
}

TEST(SpgemmContext, ConvertMsIsAttributed) {
  // Conversion through the context lands in the next run's convert_ms and
  // is excluded from core_ms(); the CSR free function reports it too.
  SpgemmContext ctx;
  const Csr<double> a = gen::rmat(10, 5.0, 80);
  const TileMatrix<double> ta = ctx.to_tile(a);
  const TileSpgemmResult<double> res = ctx.run(ta, ta);
  EXPECT_GT(res.timings.convert_ms, 0.0);
  EXPECT_GE(res.timings.total_ms(), res.timings.core_ms());
  // A run with pre-converted operands carries no conversion charge.
  EXPECT_EQ(ctx.run(ta, ta).timings.convert_ms, 0.0);

  TileSpgemmTimings t;
  (void)spgemm_tile(a, a, {}, &t);
  EXPECT_GT(t.convert_ms, 0.0);
}

TEST(SpgemmContext, ConfigBuilderComposes) {
  const SpgemmContext::Config cfg = SpgemmContext::Config{}
                                        .with_intersect(IntersectMethod::kMerge)
                                        .with_tnnz(64)
                                        .with_threads(2)
                                        .with_cost_binning(false)
                                        .with_fused_path(true)
                                        .with_fuse_threshold(32);
  EXPECT_EQ(cfg.options.intersect, IntersectMethod::kMerge);
  EXPECT_EQ(cfg.options.tnnz, 64);
  EXPECT_TRUE(cfg.options.cache_pairs);  // implied by the fused path
  EXPECT_EQ(cfg.threads, 2);
  EXPECT_FALSE(cfg.cost_binning);
  EXPECT_TRUE(cfg.fuse_light_tiles);
  EXPECT_EQ(cfg.fuse_threshold, 32);
}

TEST(SpgemmContext, ConfigFromEnv) {
  setenv("TSG_NUM_THREADS", "3", 1);
  setenv("TSG_DEVICE_MEM_MB", "123", 1);
  const SpgemmContext::Config cfg = SpgemmContext::Config::from_env();
  EXPECT_EQ(cfg.threads, 3);
  EXPECT_EQ(cfg.device_mem_mb, 123u);
  unsetenv("TSG_NUM_THREADS");
  unsetenv("TSG_DEVICE_MEM_MB");
  EXPECT_EQ(SpgemmContext::Config::from_env().threads, 0);

  // A context built from that config publishes the budget process-wide.
  { SpgemmContext ctx(SpgemmContext::Config{}.with_device_mem_mb(123)); }
  EXPECT_EQ(device_memory_budget_bytes(), 123u * 1024 * 1024);
  set_device_memory_budget_bytes(0);  // restore the environment default
}

TEST(SpgemmContext, ThreadConfigMatchesGlobalSetting) {
  const Csr<double> a = gen::rmat(10, 5.0, 81);
  SpgemmContext one(SpgemmContext::Config{}.with_threads(1));
  SpgemmContext four(SpgemmContext::Config{}.with_threads(4));
  expect_bit_identical(one.run_csr(a, a), four.run_csr(a, a), "threads 1 vs 4");
}

// --- Status layer: operand validation and structured failures at the
// context boundary (ISSUE 2). ---

TEST(SpgemmContextStatus, DimensionMismatchIsAStatusNotACrash) {
  const TileMatrix<double> a = csr_to_tile(gen::erdos_renyi(40, 60, 200, 5));
  const TileMatrix<double> b = csr_to_tile(gen::erdos_renyi(40, 60, 200, 6));
  SpgemmContext ctx;
  Expected<TileSpgemmResult<double>> run = ctx.try_run(a, b);  // 60 != 40
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDimensionMismatch);
  EXPECT_THROW((void)ctx.run(a, b), Error);
  // kOff trusts structure but still refuses incompatible shapes.
  SpgemmContext off(SpgemmContext::Config{}.with_validation(ValidationLevel::kOff));
  EXPECT_EQ(off.try_run(a, b).status().code(), StatusCode::kDimensionMismatch);
}

TEST(SpgemmContextStatus, CheapValidationCatchesCorruptedTileOperand) {
  TileMatrix<double> a = csr_to_tile(test::make_er_small());
  a.tile_nnz.back() = -7;  // corrupt: nnz wrapped negative (offset overflow)
  SpgemmContext ctx;
  Expected<TileSpgemmResult<double>> run = ctx.try_run(a, a);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kIndexOverflow);

  TileMatrix<double> truncated = csr_to_tile(test::make_er_small());
  truncated.col_idx.pop_back();  // nonzero arrays inconsistent with nnz
  Expected<TileSpgemmResult<double>> run2 = ctx.try_run(truncated, truncated);
  ASSERT_FALSE(run2.ok());
  EXPECT_EQ(run2.status().code(), StatusCode::kInvalidArgument);

  // The context survives rejected operands: a clean multiply still works.
  const TileMatrix<double> good = csr_to_tile(test::make_er_small());
  EXPECT_TRUE(ctx.try_run(good, good).ok());
}

TEST(SpgemmContextStatus, CsrBoundaryValidatesToo) {
  Csr<double> a = test::make_er_small();
  a.row_ptr[1] = a.row_ptr.back() + 1;  // non-monotone: exceeds every later entry
  SpgemmContext ctx;
  Expected<Csr<double>> run = ctx.try_run_csr(a, a);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(SpgemmContextStatus, NanPolicyGatesNonFiniteOperands) {
  Csr<double> a = test::make_er_small();
  a.val[0] = std::numeric_limits<double>::quiet_NaN();
  const TileMatrix<double> ta = csr_to_tile(a);

  // Default (kCheap / kAllow): NaN propagates with IEEE semantics.
  SpgemmContext lax;
  EXPECT_TRUE(lax.try_run(ta, ta).ok());

  // Full validation with kReject refuses the operand up front.
  SpgemmContext strict(SpgemmContext::Config{}
                           .with_validation(ValidationLevel::kFull)
                           .with_nan_policy(NanPolicy::kReject));
  Expected<TileSpgemmResult<double>> run = strict.try_run(ta, ta);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);

  // Full validation alone (kAllow) accepts it: NaN is a value, not a
  // structural defect.
  SpgemmContext full(SpgemmContext::Config{}.with_validation(ValidationLevel::kFull));
  EXPECT_TRUE(full.try_run(ta, ta).ok());
}

TEST(SpgemmContextStatus, MaskedBoundaryValidatesAllThreeOperands) {
  const TileMatrix<double> good = csr_to_tile(test::make_er_small());
  TileMatrix<double> bad = good;
  bad.row_ptr.pop_back();  // row_ptr/mask size mismatch
  SpgemmContext ctx;
  EXPECT_EQ(ctx.try_run_masked(good, good, bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ctx.try_run_masked(bad, good, good).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ctx.try_run_masked(good, good, good).ok());
}

TEST(SpgemmContextStatus, ExpectedAccessorsRoundTrip) {
  SpgemmContext ctx;
  const TileMatrix<double> ta = csr_to_tile(test::make_er_small());
  Expected<TileSpgemmResult<double>> run = ctx.try_run(ta, ta);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.status().ok());  // ok Expected reports an ok Status
  EXPECT_EQ(run->c.nnz(), (*run).c.nnz());
  const TileSpgemmResult<double> moved = std::move(run).value();
  EXPECT_GT(moved.c.nnz(), 0);
}

// --- run*/try_run* twin-pairing contract (compile-time) -------------------
// Every throwing entry point must have a `try_` twin with the *identical*
// parameter list whose return type is the Expected of the throwing one.
// Member-pointer matching pins both halves: renaming a parameter-list or
// letting the signatures drift apart breaks this template's deduction and
// the static_assert fails at compile time.
template <class C, class R, class... Args>
constexpr bool twin_pair(R (C::*)(Args...), Expected<R> (C::*)(Args...)) {
  return true;
}

static_assert(twin_pair(&SpgemmContext::run<double>, &SpgemmContext::try_run<double>));
static_assert(twin_pair(&SpgemmContext::run<float>, &SpgemmContext::try_run<float>));
static_assert(twin_pair(&SpgemmContext::run_aat<double>, &SpgemmContext::try_run_aat<double>));
static_assert(twin_pair(&SpgemmContext::run_aat<float>, &SpgemmContext::try_run_aat<float>));
static_assert(twin_pair(&SpgemmContext::run_csr<double>, &SpgemmContext::try_run_csr<double>));
static_assert(twin_pair(&SpgemmContext::run_csr<float>, &SpgemmContext::try_run_csr<float>));
static_assert(
    twin_pair(&SpgemmContext::run_masked<double>, &SpgemmContext::try_run_masked<double>));
static_assert(
    twin_pair(&SpgemmContext::run_masked<float>, &SpgemmContext::try_run_masked<float>));

TEST(SpgemmContext, FloatAndDoublePoolsAreIndependent) {
  SpgemmContext ctx;
  const Csr<double> ad = test::make_stencil();
  Csr<float> af = gen::cast_values<float>(ad);
  const Csr<double> cd = ctx.run_csr(ad, ad);
  const Csr<float> cf = ctx.run_csr(af, af);
  EXPECT_EQ(cd.nnz(), cf.nnz());
  EXPECT_GT(ctx.workspace_bytes(), 0u);
}

}  // namespace
}  // namespace tsg
