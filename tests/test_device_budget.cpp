// Failure injection: with a tiny modeled device-memory budget, every
// method that stages O(intermediate products) of global workspace must
// fail with bad_alloc — and TileSpGEMM, which allocates no global
// intermediate space, must still succeed. This is the mechanism behind the
// paper's "0.00 (failed)" bars, isolated in its own binary because the
// budget is latched from the environment once per process.
#include <gtest/gtest.h>

#include <cstdlib>

#include "baselines/esc.h"
#include "baselines/hash.h"
#include "baselines/spa.h"
#include "baselines/speck.h"
#include "common/memory.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "harness/runner.h"
#include "test_support.h"

namespace tsg {
namespace {

class BudgetEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { setenv("TSG_DEVICE_MEM_MB", "1", 1); }
};

const auto* const g_env =
    ::testing::AddGlobalTestEnvironment(new BudgetEnvironment());  // NOLINT

Csr<double> workload() {
  // ~1.3M intermediate products: ~16 MB of staging, far over the 1 MB cap.
  return gen::dense_blocks(8, 40, 7);
}

TEST(DeviceBudget, BudgetIsLatchedFromEnvironment) {
  EXPECT_EQ(device_memory_budget_bytes(), 1u * 1024 * 1024);
}

TEST(DeviceBudget, GlobalBufferMethodsFail) {
  const Csr<double> a = workload();
  EXPECT_THROW(spgemm_esc(a, a), std::bad_alloc);
  EXPECT_THROW(spgemm_spa(a, a), std::bad_alloc);
  EXPECT_THROW(spgemm_hash(a, a), std::bad_alloc);
}

TEST(DeviceBudget, TileSpgemmSucceedsRegardless) {
  const Csr<double> a = workload();
  const Csr<double> c = spgemm_tile(a, a);
  EXPECT_GT(c.nnz(), 0);
  // spECK's adaptive accumulators are per-row and bounded too.
  test::expect_equal(spgemm_speck(a, a), c, "speck vs tile under budget");
}

TEST(DeviceBudget, HarnessReportsFailureAsNotOk) {
  const NamedMatrix m{"blocks", "dense blocks", true, workload()};
  const Measurement esc = measure(m, paper_algorithms()[1], SpgemmOp::kASquared, 1);
  EXPECT_FALSE(esc.ok);
  const Measurement tile = measure(m, paper_algorithms()[4], SpgemmOp::kASquared, 1);
  EXPECT_TRUE(tile.ok);
}

TEST(DeviceBudget, CheckHelperThrowsExactlyAboveBudget) {
  EXPECT_NO_THROW(check_workspace_budget(1024 * 1024));
  EXPECT_THROW(check_workspace_budget(1024 * 1024 + 1), std::bad_alloc);
}

}  // namespace
}  // namespace tsg
