// Failure injection: with a tiny modeled device-memory budget, every
// method that stages O(intermediate products) of global workspace must
// fail with bad_alloc — and TileSpGEMM, which allocates no global
// intermediate space, must still succeed. This is the mechanism behind the
// paper's "0.00 (failed)" bars, isolated in its own binary because the
// budget is latched from the environment once per process.
#include <gtest/gtest.h>

#include <cstdlib>

#include "baselines/esc.h"
#include "core/spgemm_context.h"
#include "matrix/convert.h"
#include "baselines/hash.h"
#include "baselines/spa.h"
#include "baselines/speck.h"
#include "common/memory.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "harness/runner.h"
#include "test_support.h"

namespace tsg {
namespace {

class BudgetEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { setenv("TSG_DEVICE_MEM_MB", "1", 1); }
};

const auto* const g_env =
    ::testing::AddGlobalTestEnvironment(new BudgetEnvironment());  // NOLINT

Csr<double> workload() {
  // ~1.3M intermediate products: ~16 MB of staging, far over the 1 MB cap.
  return gen::dense_blocks(8, 40, 7);
}

TEST(DeviceBudget, BudgetIsLatchedFromEnvironment) {
  EXPECT_EQ(device_memory_budget_bytes(), 1u * 1024 * 1024);
}

TEST(DeviceBudget, GlobalBufferMethodsFail) {
  const Csr<double> a = workload();
  EXPECT_THROW(spgemm_esc(a, a), std::bad_alloc);
  EXPECT_THROW(spgemm_spa(a, a), std::bad_alloc);
  EXPECT_THROW(spgemm_hash(a, a), std::bad_alloc);
}

TEST(DeviceBudget, TileSpgemmSucceedsRegardless) {
  const Csr<double> a = workload();
  const Csr<double> c = spgemm_tile(a, a);
  EXPECT_GT(c.nnz(), 0);
  // spECK's adaptive accumulators are per-row and bounded too.
  test::expect_equal(spgemm_speck(a, a), c, "speck vs tile under budget");
}

TEST(DeviceBudget, HarnessReportsFailureAsNotOk) {
  const NamedMatrix m{"blocks", "dense blocks", true, workload()};
  const Measurement esc = measure(m, paper_algorithms()[1], SpgemmOp::kASquared, 1);
  EXPECT_FALSE(esc.ok);
  const Measurement tile = measure(m, paper_algorithms()[4], SpgemmOp::kASquared, 1);
  EXPECT_TRUE(tile.ok);
}

TEST(DeviceBudget, CheckHelperThrowsExactlyAboveBudget) {
  EXPECT_NO_THROW(check_workspace_budget(1024 * 1024));
  EXPECT_THROW(check_workspace_budget(1024 * 1024 + 1), std::bad_alloc);
}

// --- Graceful degradation (ISSUE 2): when the estimated footprint of a
// tiled multiply exceeds the budget, SpgemmContext splits C's tile rows
// into chunks that fit and stitches a bit-identical result. ---

/// Restores the process-wide budget override (SpgemmContext's constructor
/// publishes Config::device_mem_mb) even when an ASSERT bails out, so the
/// 1 MB environment latch governs the remaining tests again.
struct BudgetOverrideGuard {
  ~BudgetOverrideGuard() { set_device_memory_budget_bytes(0); }
};

/// Big enough that the per-tile upper-bound estimate blows well past 2 MB:
/// rmat squared at scale 10 populates a few thousand C tiles.
Csr<double> chunking_workload() { return gen::rmat(10, 8.0, 11); }

void expect_tile_bit_identical(const TileMatrix<double>& x, const TileMatrix<double>& y) {
  ASSERT_EQ(x.tile_ptr, y.tile_ptr);
  ASSERT_EQ(x.tile_col_idx, y.tile_col_idx);
  ASSERT_EQ(x.tile_nnz, y.tile_nnz);
  ASSERT_EQ(x.row_ptr, y.row_ptr);
  ASSERT_EQ(x.col_idx, y.col_idx);
  for (std::size_t k = 0; k < x.val.size(); ++k) {
    ASSERT_EQ(x.val[k], y.val[k]) << "val[" << k << "]";
  }
}

TEST(DeviceBudget, ChunkedExecutionIsBitIdenticalToSingleShot) {
  BudgetOverrideGuard guard;
  const Csr<double> a = chunking_workload();
  const TileMatrix<double> ta = csr_to_tile(a);

  // Gold: a budget generous enough for single-shot execution.
  SpgemmContext roomy(SpgemmContext::Config{}.with_device_mem_mb(4096));
  const TileSpgemmResult<double> gold = roomy.run(ta, ta);
  EXPECT_EQ(gold.timings.chunks, 1);
  EXPECT_FALSE(gold.timings.budget_limited);

  // Squeezed: same multiply under 2 MB must degrade to >= 2 chunks and
  // still stitch the exact same output, bit for bit.
  SpgemmContext squeezed(SpgemmContext::Config{}.with_device_mem_mb(2));
  Expected<TileSpgemmResult<double>> run = squeezed.try_run(ta, ta);
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  EXPECT_TRUE(run->timings.budget_limited);
  EXPECT_GE(run->timings.chunks, 2);
  expect_tile_bit_identical(gold.c, run->c);

  // The pooled workspace survives chunked calls: a second squeezed run on
  // the same context must agree too.
  Expected<TileSpgemmResult<double>> again = squeezed.try_run(ta, ta);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->timings.chunks, run->timings.chunks);
  expect_tile_bit_identical(gold.c, again->c);
}

TEST(DeviceBudget, ChunkingIsEquivalentAcrossTheGeneratorSuite) {
  // Every structure class in the generator sweep: a roomy single-shot run
  // and a starved run (2 MB: small enough that anything nontrivial chunks)
  // must agree bit for bit. Cases whose estimate fits simply run single-
  // shot under both budgets — equivalence is asserted either way.
  BudgetOverrideGuard guard;
  const test::GenCase suite[] = {
      {"er_small", test::make_er_small}, {"rmat_small", test::make_rmat_small},
      {"stencil", test::make_stencil},   {"band_wide", test::make_band_wide},
      {"blocks", test::make_blocks},     {"clustered", test::make_clustered},
  };
  int chunked_cases = 0;
  for (const auto& c : suite) {
    const Csr<double> a = c.make();
    const TileMatrix<double> ta = csr_to_tile(a);
    SpgemmContext roomy(SpgemmContext::Config{}.with_device_mem_mb(4096));
    const TileSpgemmResult<double> gold = roomy.run(ta, ta);
    SpgemmContext squeezed(SpgemmContext::Config{}.with_device_mem_mb(2));
    Expected<TileSpgemmResult<double>> run = squeezed.try_run(ta, ta);
    ASSERT_TRUE(run.ok()) << c.name << ": " << run.status().to_string();
    if (run->timings.budget_limited) ++chunked_cases;
    SCOPED_TRACE(c.name);
    expect_tile_bit_identical(gold.c, run->c);
  }
  EXPECT_GT(chunked_cases, 0) << "2 MB starved no case at all";
}

TEST(DeviceBudget, DegradationDisabledReturnsBudgetExceeded) {
  BudgetOverrideGuard guard;
  const Csr<double> a = chunking_workload();
  const TileMatrix<double> ta = csr_to_tile(a);

  SpgemmContext ctx(
      SpgemmContext::Config{}.with_device_mem_mb(2).with_degradation(false));
  Expected<TileSpgemmResult<double>> run = ctx.try_run(ta, ta);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kBudgetExceeded);
  // The throwing wrapper carries the identical Status.
  try {
    (void)ctx.run(ta, ta);
    FAIL() << "run() should throw under a too-small budget with degradation off";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kBudgetExceeded);
  }
}

TEST(DeviceBudget, SpgemmTileDegradesUnderTheEnvironmentBudget) {
  // Through the convenience entry point (fresh default context, 1 MB env
  // latch): the big workload must complete by chunking, and the result must
  // match a roomy single-shot run.
  BudgetOverrideGuard guard;
  const Csr<double> a = chunking_workload();
  const TileMatrix<double> ta = csr_to_tile(a);

  SpgemmContext roomy(SpgemmContext::Config{}.with_device_mem_mb(4096));
  const TileMatrix<double> gold = roomy.run(ta, ta).c;
  set_device_memory_budget_bytes(0);  // back to the 1 MB environment latch

  SpgemmContext tight;  // from_env: budget 1 MB
  const TileSpgemmResult<double> res = tight.run(ta, ta);
  EXPECT_TRUE(res.timings.budget_limited);
  EXPECT_GE(res.timings.chunks, 2);
  expect_tile_bit_identical(gold, res.c);
}

}  // namespace
}  // namespace tsg
