// Validation of the TileSpGEMM core against the serial reference: structure
// classes, shapes, edge cases, and the exact output semantics (explicit
// cancellation zeros are kept; empty tiles from step 1 are tolerated).
#include <gtest/gtest.h>

#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "matrix/transpose.h"
#include "test_support.h"

namespace tsg {
namespace {

using test::check_against_reference;
using test::expect_equal;

Csr<double> run_tile(const Csr<double>& a, const Csr<double>& b) {
  return spgemm_tile(a, b);
}

// ---------------------------------------------------------------- sweeps --

struct SweepCase {
  const char* name;
  Csr<double> (*make)();
};

class TileSpgemmSquare : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TileSpgemmSquare, MatchesReferenceOnASquared) {
  const Csr<double> a = GetParam().make();
  check_against_reference(a, a, run_tile, GetParam().name);
}

TEST_P(TileSpgemmSquare, MatchesReferenceOnAAT) {
  const Csr<double> a = GetParam().make();
  const Csr<double> at = transpose(a);
  check_against_reference(a, at, run_tile, GetParam().name);
}

TEST_P(TileSpgemmSquare, MatchesReferenceOnATA) {
  const Csr<double> a = GetParam().make();
  const Csr<double> at = transpose(a);
  check_against_reference(at, a, run_tile, GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    StructureClasses, TileSpgemmSquare,
    ::testing::Values(SweepCase{"er_small", test::make_er_small},
                      SweepCase{"er_dense", test::make_er_dense},
                      SweepCase{"rmat", test::make_rmat_small},
                      SweepCase{"stencil5", test::make_stencil},
                      SweepCase{"stencil9", test::make_stencil9},
                      SweepCase{"band", test::make_band},
                      SweepCase{"band_wide", test::make_band_wide},
                      SweepCase{"blocks", test::make_blocks},
                      SweepCase{"blocks_large", test::make_blocks_large},
                      SweepCase{"clustered", test::make_clustered},
                      SweepCase{"hyper_sparse", test::make_hyper_sparse}),
    [](const auto& info) { return std::string(info.param.name); });

// ------------------------------------------------------ rectangular cases --

TEST(TileSpgemmRect, TallTimesWide) {
  const Csr<double> a = gen::erdos_renyi(190, 40, 700, 101);
  const Csr<double> b = gen::erdos_renyi(40, 230, 650, 102);
  check_against_reference(a, b, run_tile, "tall*wide");
}

TEST(TileSpgemmRect, WideTimesTall) {
  const Csr<double> a = gen::erdos_renyi(33, 500, 800, 103);
  const Csr<double> b = gen::erdos_renyi(500, 47, 900, 104);
  check_against_reference(a, b, run_tile, "wide*tall");
}

TEST(TileSpgemmRect, InnerDimMismatchThrows) {
  const Csr<double> a = gen::erdos_renyi(20, 30, 50, 105);
  const Csr<double> b = gen::erdos_renyi(31, 20, 50, 106);
  EXPECT_THROW(spgemm_tile(a, b), tsg::Error);
}

// ------------------------------------------------------------- edge cases --

TEST(TileSpgemmEdge, OneByOne) {
  Coo<double> coo;
  coo.rows = coo.cols = 1;
  coo.push_back(0, 0, 3.0);
  const Csr<double> a = coo_to_csr(std::move(coo));
  const Csr<double> c = spgemm_tile(a, a);
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.val[0], 9.0);
}

TEST(TileSpgemmEdge, EmptyMatrix) {
  const Csr<double> a(37, 41);
  const Csr<double> b(41, 12);
  const Csr<double> c = spgemm_tile(a, b);
  EXPECT_EQ(c.rows, 37);
  EXPECT_EQ(c.cols, 12);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(TileSpgemmEdge, EmptyTimesNonempty) {
  const Csr<double> a(16, 16);
  const Csr<double> b = gen::erdos_renyi(16, 16, 40, 107);
  EXPECT_EQ(spgemm_tile(a, b).nnz(), 0);
  EXPECT_EQ(spgemm_tile(b, a).nnz(), 0);
}

TEST(TileSpgemmEdge, IdentityIsNeutral) {
  const Csr<double> a = gen::erdos_renyi(130, 130, 900, 108);
  const Csr<double> i = identity<double>(130);
  expect_equal(a, spgemm_tile(a, i), "A*I");
  expect_equal(a, spgemm_tile(i, a), "I*A");
}

TEST(TileSpgemmEdge, SingleFullTile) {
  // A completely dense 16x16 tile (256 nonzeros) exercises the row-pointer
  // uint8 boundary: offsets reach 240 and the implied 17th entry is 256.
  const Csr<double> a = gen::dense_blocks(1, 16, 109);
  check_against_reference(a, a, run_tile, "full_tile");
}

TEST(TileSpgemmEdge, DimensionNotMultipleOf16) {
  const Csr<double> a = gen::erdos_renyi(17, 17, 60, 110);
  check_against_reference(a, a, run_tile, "n=17");
  const Csr<double> b = gen::erdos_renyi(15, 15, 50, 111);
  check_against_reference(b, b, run_tile, "n=15");
  const Csr<double> c = gen::erdos_renyi(255, 255, 2000, 112);
  check_against_reference(c, c, run_tile, "n=255");
}

TEST(TileSpgemmEdge, KeepsCancellationZeros) {
  // A = [[1, 1], [0, 0]], B = [[1, 0], [-1, 0]] -> C = [[0, 0], [0, 0]]
  // with exactly one *explicit* zero at (0,0): the paper's methods do no
  // numerical cancellation pruning.
  Coo<double> ca;
  ca.rows = ca.cols = 2;
  ca.push_back(0, 0, 1.0);
  ca.push_back(0, 1, 1.0);
  Coo<double> cb;
  cb.rows = cb.cols = 2;
  cb.push_back(0, 0, 1.0);
  cb.push_back(1, 0, -1.0);
  const Csr<double> a = coo_to_csr(std::move(ca));
  const Csr<double> b = coo_to_csr(std::move(cb));
  const Csr<double> c = spgemm_tile(a, b);
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.col_idx[0], 0);
  EXPECT_DOUBLE_EQ(c.val[0], 0.0);
}

TEST(TileSpgemmEdge, PermutationTimesPermutationIsPermutation) {
  tracked_vector<index_t> p1, p2;
  const index_t n = 100;
  for (index_t i = 0; i < n; ++i) {
    p1.push_back((i * 37 + 11) % n);  // 37 coprime to 100
    p2.push_back((i * 13 + 5) % n);   // 13 coprime to 100
  }
  const Csr<double> a = permutation<double>(p1);
  const Csr<double> b = permutation<double>(p2);
  const Csr<double> c = spgemm_tile(a, b);
  EXPECT_EQ(c.nnz(), n);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(c.row_nnz(i), 1);
    EXPECT_DOUBLE_EQ(c.val[c.row_ptr[i]], 1.0);
  }
}

// ------------------------------------------------- step-level invariants --

TEST(TileSpgemmSteps, Step1CoversStep2Tiles) {
  // Step 1's tile structure is an upper bound: every tile with nonzeros in
  // the final C must be present, and extra tiles must come out empty.
  const Csr<double> a = gen::rmat(10, 3.0, 113);
  const TileMatrix<double> ta = csr_to_tile(a);
  const TileSpgemmResult<double> res = tile_spgemm(ta, ta);
  const TileMatrix<double>& c = res.c;
  ASSERT_TRUE(c.validate().empty()) << c.validate();

  offset_t nonempty = 0;
  for (offset_t t = 0; t < c.num_tiles(); ++t) {
    if (c.tile_nnz_of(t) > 0) ++nonempty;
  }
  EXPECT_GT(nonempty, 0);
  EXPECT_LE(nonempty, c.num_tiles());

  // Reconverting must agree with the reference product.
  expect_equal(spgemm_reference(a, a), tile_to_csr(c), "roundtrip");
}

TEST(TileSpgemmSteps, TimingsArePopulated) {
  const Csr<double> a = gen::banded(800, 12, 114);
  TileSpgemmTimings tm;
  (void)spgemm_tile(a, a, {}, &tm);
  EXPECT_GT(tm.total_ms(), 0.0);
  EXPECT_GE(tm.step1_ms, 0.0);
  EXPECT_GE(tm.step2_ms, 0.0);
  EXPECT_GT(tm.step3_ms, 0.0);
}

}  // namespace
}  // namespace tsg
