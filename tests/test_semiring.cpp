// Semiring-generic tiled SpGEMM/SpMV: algebraic correctness against
// brute-force semiring products.
#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "common/status.h"
#include "core/semiring_spgemm.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "test_support.h"

namespace tsg {
namespace {

/// Brute-force dense semiring product restricted to structurally reachable
/// entries (matching the tiled method's structural-output semantics).
template <class S>
void dense_semiring_product(const Csr<double>& a, const Csr<double>& b,
                            std::vector<double>& out, std::vector<bool>& present) {
  const std::size_t rows = static_cast<std::size_t>(a.rows);
  const std::size_t cols = static_cast<std::size_t>(b.cols);
  out.assign(tsg::checked_size_mul(rows, cols), S::identity());
  present.assign(tsg::checked_size_mul(rows, cols), false);
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t ka = a.row_ptr[i]; ka < a.row_ptr[i + 1]; ++ka) {
      const index_t k = a.col_idx[ka];
      for (offset_t kb = b.row_ptr[k]; kb < b.row_ptr[k + 1]; ++kb) {
        const std::size_t idx = static_cast<std::size_t>(i) * cols +
                                static_cast<std::size_t>(b.col_idx[kb]);
        out[idx] = S::reduce(out[idx], S::combine(a.val[ka], b.val[kb]));
        present[idx] = true;
      }
    }
  }
}

template <class S>
void check_semiring(const Csr<double>& a, const Csr<double>& b, const char* what) {
  SCOPED_TRACE(what);
  std::vector<double> expected;
  std::vector<bool> present;
  dense_semiring_product<S>(a, b, expected, present);

  const Csr<double> c = spgemm_semiring<S>(a, b);
  ASSERT_TRUE(c.validate().empty()) << c.validate();

  // Every stored entry matches; every present entry is stored.
  std::size_t stored = 0;
  for (index_t i = 0; i < c.rows; ++i) {
    for (offset_t k = c.row_ptr[i]; k < c.row_ptr[i + 1]; ++k) {
      const std::size_t idx = static_cast<std::size_t>(i) * c.cols +
                              static_cast<std::size_t>(c.col_idx[k]);
      ASSERT_TRUE(present[idx]) << "(" << i << "," << c.col_idx[k] << ")";
      ASSERT_NEAR(c.val[k], expected[idx], 1e-9);
      ++stored;
    }
  }
  std::size_t expected_count = 0;
  for (bool p : present) expected_count += p ? 1 : 0;
  EXPECT_EQ(stored, expected_count);
}

TEST(Semiring, PlusTimesMatchesOrdinarySpgemm) {
  const Csr<double> a = gen::erdos_renyi(90, 90, 600, 1);
  test::expect_equal(spgemm_reference(a, a), spgemm_semiring<PlusTimes<double>>(a, a),
                     "plus-times");
}

TEST(Semiring, MinPlusOnRandom) {
  const Csr<double> a = gen::erdos_renyi(70, 70, 500, 2);
  check_semiring<MinPlus<double>>(a, a, "min-plus");
}

TEST(Semiring, MinPlusRectangular) {
  const Csr<double> a = gen::erdos_renyi(40, 60, 300, 3);
  const Csr<double> b = gen::erdos_renyi(60, 35, 280, 4);
  check_semiring<MinPlus<double>>(a, b, "min-plus rect");
}

TEST(Semiring, OrAndReachability) {
  Csr<double> a = gen::rmat(8, 4.0, 5);
  for (auto& v : a.val) v = 1.0;
  check_semiring<OrAnd<double>>(a, a, "or-and");
}

TEST(Semiring, MaxTimes) {
  // Probabilities in (0,1]: max-times = most reliable two-hop path.
  Csr<double> a = gen::erdos_renyi(60, 60, 400, 6, {0.05, 1.0});
  check_semiring<MaxTimes<double>>(a, a, "max-times");
}

TEST(Semiring, SpmvMinPlusRelaxation) {
  // One (min,+) SpMV from a distance vector is one Bellman-Ford step over
  // incoming edges: y[i] = min_j (w(i,j) + x[j]).
  const Csr<double> w = gen::erdos_renyi(50, 50, 300, 7, {0.1, 2.0});
  const TileMatrix<double> t = csr_to_tile(w);
  tracked_vector<double> x(50);
  Xoshiro256 rng(8);
  for (auto& v : x) v = rng.next_double() * 10.0;

  tracked_vector<double> y;
  tile_spmv_semiring<MinPlus<double>>(t, x, y);
  for (index_t i = 0; i < 50; ++i) {
    double expected = std::numeric_limits<double>::infinity();
    for (offset_t k = w.row_ptr[i]; k < w.row_ptr[i + 1]; ++k) {
      expected = std::min(expected,
                          w.val[k] + x[static_cast<std::size_t>(w.col_idx[k])]);
    }
    ASSERT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], expected) << i;
  }
}

TEST(Semiring, SpmvOrAndIsFrontierExpansion) {
  Csr<double> a = gen::erdos_renyi(64, 64, 250, 9);
  for (auto& v : a.val) v = 1.0;
  const TileMatrix<double> t = csr_to_tile(a);
  tracked_vector<double> x(64, 0.0);
  x[5] = 1.0;
  tracked_vector<double> y;
  tile_spmv_semiring<OrAnd<double>>(t, x, y);
  for (index_t i = 0; i < 64; ++i) {
    bool reaches = false;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == 5) reaches = true;
    }
    ASSERT_EQ(y[static_cast<std::size_t>(i)] != 0.0, reaches) << i;
  }
}

TEST(Semiring, WorksUnderAllAccumulatorPolicies) {
  // The semiring path has no dense accumulator (identity-fill is per-slot),
  // but it should be insensitive to the intersect method.
  const Csr<double> a = gen::dense_blocks(3, 20, 10);
  TileSpgemmOptions merge;
  merge.intersect = IntersectMethod::kMerge;
  const Csr<double> c1 = spgemm_semiring<MinPlus<double>>(a, a);
  const Csr<double> c2 = spgemm_semiring<MinPlus<double>>(a, a, merge);
  test::expect_equal(c1, c2, "intersect invariance");
}

}  // namespace
}  // namespace tsg
