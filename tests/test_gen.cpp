// Workload generators: determinism, shape, and the structural properties
// each proxy class is supposed to exhibit.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/representative.h"
#include "gen/suite.h"
#include "matrix/stats.h"

namespace tsg {
namespace {

TEST(Gen, ErdosRenyiShapeAndDeterminism) {
  const Csr<double> a = gen::erdos_renyi(100, 80, 500, 77);
  EXPECT_EQ(a.rows, 100);
  EXPECT_EQ(a.cols, 80);
  EXPECT_TRUE(a.validate().empty());
  EXPECT_LE(a.nnz(), 500);
  EXPECT_GE(a.nnz(), 450);  // few duplicate collisions at this density

  const Csr<double> b = gen::erdos_renyi(100, 80, 500, 77);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.val.size(); ++k) ASSERT_EQ(a.val[k], b.val[k]);

  const Csr<double> c = gen::erdos_renyi(100, 80, 500, 78);
  EXPECT_FALSE(a.nnz() == c.nnz() &&
               std::equal(a.col_idx.begin(), a.col_idx.end(), c.col_idx.begin()));
}

TEST(Gen, ErdosRenyiRejectsEmptyShape) {
  EXPECT_THROW(gen::erdos_renyi(0, 5, 10, 1), std::invalid_argument);
}

TEST(Gen, RmatIsPowerLawSkewed) {
  const Csr<double> a = gen::rmat(12, 8.0, 79);
  EXPECT_EQ(a.rows, 1 << 12);
  EXPECT_TRUE(a.validate().empty());
  offset_t max_deg = 0;
  for (index_t i = 0; i < a.rows; ++i) max_deg = std::max(max_deg, a.row_nnz(i));
  const double avg = static_cast<double>(a.nnz()) / a.rows;
  // Hub rows are far above average — the defining skew.
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(Gen, RmatValidatesParameters) {
  EXPECT_THROW(gen::rmat(0, 4.0, 1), std::invalid_argument);
  EXPECT_THROW(gen::rmat(10, 4.0, 1, 0.6, 0.3, 0.3), std::invalid_argument);
}

TEST(Gen, Stencil5PointDegrees) {
  const Csr<double> a = gen::stencil_5pt(10, 10);
  EXPECT_EQ(a.rows, 100);
  // Interior point: 5 entries; corner: 3.
  EXPECT_EQ(a.row_nnz(5 * 10 + 5), 5);
  EXPECT_EQ(a.row_nnz(0), 3);
  EXPECT_TRUE(a.rows_sorted());
}

TEST(Gen, Stencil27PointDegrees) {
  const Csr<double> a = gen::stencil_27pt(5, 5, 5);
  EXPECT_EQ(a.rows, 125);
  EXPECT_EQ(a.row_nnz(2 * 25 + 2 * 5 + 2), 27);  // interior
  EXPECT_EQ(a.row_nnz(0), 8);                    // corner
}

TEST(Gen, BandedWidths) {
  const Csr<double> a = gen::banded(50, 3, 80);
  EXPECT_EQ(a.row_nnz(25), 7);
  EXPECT_EQ(a.row_nnz(0), 4);
  EXPECT_EQ(a.row_nnz(49), 4);
  EXPECT_TRUE(a.validate().empty());
}

TEST(Gen, DenseBlocksAreDense) {
  const Csr<double> a = gen::dense_blocks(3, 10, 81);
  EXPECT_EQ(a.rows, 30);
  EXPECT_EQ(a.nnz(), 300);
  for (index_t i = 0; i < a.rows; ++i) EXPECT_EQ(a.row_nnz(i), 10);
}

TEST(Gen, ClusteredRowsHaveDiagonal) {
  const Csr<double> a = gen::clustered_rows(80, 2, 5, 82);
  for (index_t i = 0; i < a.rows; ++i) {
    bool diag = false;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i) diag = true;
    }
    EXPECT_TRUE(diag) << "row " << i;
  }
}

TEST(Gen, SymmetrizedHasSymmetricPattern) {
  const Csr<double> s = gen::symmetrized(gen::erdos_renyi(70, 70, 300, 83));
  for (index_t i = 0; i < s.rows; ++i) {
    for (offset_t k = s.row_ptr[i]; k < s.row_ptr[i + 1]; ++k) {
      const index_t j = s.col_idx[k];
      bool mirrored = false;
      for (offset_t k2 = s.row_ptr[j]; k2 < s.row_ptr[j + 1]; ++k2) {
        if (s.col_idx[k2] == i) mirrored = true;
      }
      ASSERT_TRUE(mirrored) << "(" << i << "," << j << ")";
    }
  }
}

TEST(Gen, CastValuesPreservesStructure) {
  const Csr<double> a = gen::erdos_renyi(30, 30, 120, 84);
  const Csr<float> f = gen::cast_values<float>(a);
  EXPECT_EQ(f.nnz(), a.nnz());
  EXPECT_TRUE(f.validate().empty());
  for (std::size_t k = 0; k < f.val.size(); ++k) {
    EXPECT_FLOAT_EQ(f.val[k], static_cast<float>(a.val[k]));
  }
}

TEST(Gen, RepresentativeSuiteIsComplete) {
  const auto suite = gen::representative_suite();
  ASSERT_EQ(suite.size(), 18u);  // Table 2 has 18 matrices
  for (const auto& m : suite) {
    EXPECT_TRUE(m.a.validate().empty()) << m.name;
    EXPECT_GT(m.a.nnz(), 0) << m.name;
    EXPECT_EQ(m.a.rows, m.a.cols) << m.name;  // all square, as in the paper
  }
  // The 6 asymmetric ones used in Fig. 8.
  EXPECT_EQ(gen::asymmetric_suite().size(), 6u);
}

TEST(Gen, RepresentativeSuiteSpansCompressionRates) {
  // The proxies must cover the paper's rate axis: hyper-sparse (~1) at one
  // end and >50 (SiO2/gupta3-class) at the other.
  double min_rate = 1e30, max_rate = 0.0;
  for (const auto& m : gen::representative_suite()) {
    const offset_t products = intermediate_products(m.a, m.a);
    // nnz(C) is bounded below by nnz(A) for these patterns; use the exact
    // rate via a cheap symbolic estimate: rate >= products / (rows*cols) is
    // useless, so just track products/nnz(A) as a monotone proxy.
    const double rate_proxy =
        static_cast<double>(products) / static_cast<double>(m.a.nnz());
    min_rate = std::min(min_rate, rate_proxy);
    max_rate = std::max(max_rate, rate_proxy);
  }
  EXPECT_LT(min_rate, 10.0);
  EXPECT_GT(max_rate, 50.0);
}

TEST(Gen, TsparseSuiteIsComplete) {
  const auto suite = gen::tsparse_suite();
  ASSERT_EQ(suite.size(), 16u);  // Fig. 13 has 16 matrices
  for (const auto& m : suite) {
    EXPECT_TRUE(m.a.validate().empty()) << m.name;
    EXPECT_GT(m.a.nnz(), 0) << m.name;
  }
}

TEST(Gen, Fig6SuiteSizeAndValidity) {
  const auto suite = gen::fig6_suite();
  EXPECT_GE(suite.size(), 40u);
  for (const auto& m : suite) {
    EXPECT_TRUE(m.a.validate().empty()) << m.name;
    EXPECT_EQ(m.a.rows, m.a.cols) << m.name;
  }
}

}  // namespace
}  // namespace tsg
