// IEEE binary16 conversion properties — the numerics contract of the
// tSparse comparison (half storage, float compute).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/half.h"
#include "common/random.h"

namespace tsg {
namespace {

TEST(Half, ExactSmallIntegers) {
  // Integers up to 2048 are exactly representable in fp16.
  for (int i = -2048; i <= 2048; i += 17) {
    EXPECT_EQ(static_cast<float>(half(static_cast<float>(i))), static_cast<float>(i)) << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(0.0f).bits(), 0x0000);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000);
  EXPECT_EQ(half(1.0f).bits(), 0x3C00);
  EXPECT_EQ(half(-2.0f).bits(), 0xC000);
  EXPECT_EQ(half(65504.0f).bits(), 0x7BFF);  // max finite fp16
  EXPECT_EQ(half(0.5f).bits(), 0x3800);
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(half(std::ldexp(1.0f, -24)).bits(), 0x0001);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_EQ(half(1.0e6f).bits(), 0x7C00);
  EXPECT_EQ(half(-1.0e6f).bits(), 0xFC00);
  EXPECT_TRUE(std::isinf(static_cast<float>(half(7.0e4f))));
}

TEST(Half, UnderflowToZero) {
  EXPECT_EQ(half(1.0e-9f).bits(), 0x0000);
  EXPECT_EQ(half(-1.0e-9f).bits(), 0x8000);
}

TEST(Half, NanPropagates) {
  const half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(static_cast<float>(h)));
}

TEST(Half, InfinityPropagates) {
  const half h(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isinf(static_cast<float>(h)));
  EXPECT_GT(static_cast<float>(h), 0.0f);
}

TEST(Half, RoundTripThroughBitsIsIdentity) {
  // half -> float -> half must be exact for every possible bit pattern
  // (including subnormals), except NaN payloads.
  for (unsigned b = 0; b < 0x10000; ++b) {
    const std::uint16_t bits = static_cast<std::uint16_t>(b);
    const float f = half_bits_to_float(bits);
    if (std::isnan(f)) continue;
    EXPECT_EQ(float_to_half_bits(f), bits) << "bits=0x" << std::hex << b;
  }
}

TEST(Half, RelativeErrorBounded) {
  // Round-to-nearest guarantees relative error <= 2^-11 for normal values.
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float f = static_cast<float>(rng.next_double()) * 100.0f + 0.01f;
    const float r = static_cast<float>(half(f));
    EXPECT_LE(std::fabs(r - f) / f, 1.0f / 2048.0f) << f;
  }
}

TEST(Half, SubnormalRoundTripValues) {
  // 2^-24 * k for small k are exactly representable subnormals.
  for (int k = 1; k <= 16; ++k) {
    const float f = std::ldexp(static_cast<float>(k), -24);
    EXPECT_EQ(static_cast<float>(half(f)), f) << k;
  }
}

}  // namespace
}  // namespace tsg
