// The tSparse proxy: dense-tile multiplication with half-precision storage.
// Its results must agree with a float reference up to fp16 rounding, and it
// prunes numeric zeros (dense->sparse conversion), unlike the other methods.
#include <gtest/gtest.h>

#include "baselines/reference.h"
#include "baselines/tsparse.h"
#include "common/half.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/convert.h"

namespace tsg {
namespace {

/// Reference product computed the same way tSparse rounds: operands pushed
/// through fp16 first, float accumulation.
Csr<float> reference_half(const Csr<float>& a, const Csr<float>& b) {
  Csr<float> ah = a, bh = b;
  for (auto& v : ah.val) v = static_cast<float>(half(v));
  for (auto& v : bh.val) v = static_cast<float>(half(v));
  return spgemm_reference(ah, bh);
}

void check_tsparse(const Csr<float>& a, const Csr<float>& b, const char* what) {
  const Csr<float> expected = reference_half(a, b);
  const Csr<float> actual = spgemm_tsparse(a, b);
  ASSERT_TRUE(actual.validate().empty()) << what;
  CompareOptions opt;
  // fp32 accumulation over fp16 inputs in different orders: loose relative
  // tolerance; prune numeric zeros since tSparse drops them by design.
  opt.rel_tol = 1e-4;
  opt.prune_zeros = true;
  opt.prune_tol = 0.0f;
  const CompareResult r = compare(expected, actual, opt);
  EXPECT_TRUE(r.equal) << what << ": " << r.message;
}

TEST(Tsparse, MatchesHalfReferenceOnRandom) {
  const auto a = gen::cast_values<float>(gen::erdos_renyi(97, 97, 500, 301));
  check_tsparse(a, a, "er");
}

TEST(Tsparse, MatchesHalfReferenceOnBlocks) {
  const auto a = gen::cast_values<float>(gen::dense_blocks(4, 20, 302));
  check_tsparse(a, a, "blocks");
}

TEST(Tsparse, MatchesHalfReferenceOnBand) {
  const auto a = gen::cast_values<float>(gen::banded(200, 9, 303));
  check_tsparse(a, a, "band");
}

TEST(Tsparse, MatchesHalfReferenceOnPowerLaw) {
  const auto a = gen::cast_values<float>(gen::rmat(9, 4.0, 304));
  check_tsparse(a, a, "rmat");
}

TEST(Tsparse, RectangularProduct) {
  const auto a = gen::cast_values<float>(gen::erdos_renyi(60, 33, 300, 305));
  const auto b = gen::cast_values<float>(gen::erdos_renyi(33, 90, 350, 306));
  check_tsparse(a, b, "rect");
}

TEST(Tsparse, EmptyOperands) {
  const Csr<float> e(20, 20);
  EXPECT_EQ(spgemm_tsparse(e, e).nnz(), 0);
}

TEST(Tsparse, TimingsBreakdownPopulated) {
  const auto a = gen::cast_values<float>(gen::banded(400, 8, 307));
  TsparseTimings tm;
  (void)spgemm_tsparse(a, a, &tm);
  EXPECT_GT(tm.total_ms(), 0.0);
  EXPECT_GT(tm.step2_ms, 0.0);  // dense multiply is never free
  EXPECT_GT(tm.step3_ms, 0.0);  // dense->sparse conversion
}

TEST(Tsparse, HalfRoundingIsApplied) {
  // 1/3 is not representable in fp16; the product must reflect fp16 inputs,
  // not the fp32 originals.
  Coo<float> coo;
  coo.rows = coo.cols = 1;
  coo.push_back(0, 0, 1.0f / 3.0f);
  const Csr<float> a = coo_to_csr(std::move(coo));
  const Csr<float> c = spgemm_tsparse(a, a);
  ASSERT_EQ(c.nnz(), 1);
  const float h = static_cast<float>(half(1.0f / 3.0f));
  EXPECT_FLOAT_EQ(c.val[0], h * h);
  EXPECT_NE(c.val[0], (1.0f / 3.0f) * (1.0f / 3.0f));
}

}  // namespace
}  // namespace tsg
