// Bench harness: tables, regression, and the measurement runner.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/generators.h"
#include "harness/regression.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "matrix/stats.h"

namespace tsg {
namespace {

TEST(Report, TableAlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"}).add_row({"beta-long-name", "2.50"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta-long-name"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Report, TableCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KB");
  EXPECT_EQ(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(fmt_count(1'100'000'000), "1.1B");
  EXPECT_EQ(fmt_count(4'300'000), "4.3M");
  EXPECT_EQ(fmt_count(999), "999");
}

TEST(Regression, PerfectLine) {
  const LinearFit f = linear_fit({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x+1
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Regression, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).slope, 0.0);
  EXPECT_EQ(linear_fit({1}, {2}).slope, 0.0);
  EXPECT_EQ(linear_fit({1, 1, 1}, {1, 2, 3}).slope, 0.0);  // vertical
}

TEST(Regression, NoisyLineReasonableFit) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 2.0 + ((i % 3) - 1) * 0.1);
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 0.5, 0.02);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Regression, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({0.0, -3.0, 4.0}), 4.0);  // non-positive skipped
}

TEST(Runner, MeasureProducesConsistentMetrics) {
  const NamedMatrix m{"test", "band", true, gen::banded(600, 8, 501)};
  for (const SpgemmAlgorithm& algo : paper_algorithms()) {
    const Measurement r = measure(m, algo, SpgemmOp::kASquared, 1);
    ASSERT_TRUE(r.ok) << algo.name;
    EXPECT_GT(r.ms, 0.0) << algo.name;
    EXPECT_GT(r.gflops, 0.0) << algo.name;
    EXPECT_GT(r.nnz_c, 0) << algo.name;
    EXPECT_EQ(r.flops, spgemm_flops(m.a, m.a)) << algo.name;
  }
}

TEST(Runner, AllMethodsAgreeOnNnzC) {
  const NamedMatrix m{"test", "rmat", false, gen::rmat(9, 4.0, 502)};
  offset_t nnz = -1;
  for (const SpgemmAlgorithm& algo : paper_algorithms()) {
    const Measurement r = measure(m, algo, SpgemmOp::kAAT, 1);
    ASSERT_TRUE(r.ok) << algo.name;
    if (nnz < 0) nnz = r.nnz_c;
    EXPECT_EQ(r.nnz_c, nnz) << algo.name;
  }
}

TEST(Runner, FailingAlgorithmIsReportedNotFatal) {
  const NamedMatrix m{"test", "er", false, gen::erdos_renyi(50, 50, 100, 503)};
  SpgemmAlgorithm bad;
  bad.name = "Broken";
  bad.profiled = [](const Csr<double>&, const Csr<double>&) -> SpgemmRunReport {
    throw std::bad_alloc();
  };
  const Measurement r = measure(m, bad, SpgemmOp::kASquared, 1);
  EXPECT_FALSE(r.ok);  // the paper plots these as "0.00" bars
}

TEST(Runner, ProfiledIsTheSingleEntryPoint) {
  // The deprecated unprofiled `run` shim is gone: every registry method
  // exposes exactly one entry-point shape, and `profiled(a, b).c` is the
  // product for callers that only want the matrix.
  const NamedMatrix m{"test", "band", true, gen::banded(200, 6, 504)};
  for (const SpgemmAlgorithm& algo : paper_algorithms()) {
    ASSERT_TRUE(algo.profiled) << algo.name;
    const SpgemmRunReport rep = algo.profiled(m.a, m.a);
    EXPECT_GT(rep.c.nnz(), 0) << algo.name;
    EXPECT_GE(rep.core_ms, 0.0) << algo.name;
    EXPECT_GE(rep.peak_mb, 0.0) << algo.name;
  }
}

TEST(Runner, RegistryShape) {
  ASSERT_EQ(paper_algorithms().size(), 5u);
  EXPECT_EQ(paper_algorithms().back().name, "TileSpGEMM");
  EXPECT_TRUE(paper_algorithms().back().is_tile);
  EXPECT_GE(all_algorithms().size(), 7u);
}

}  // namespace
}  // namespace tsg
