// Peak-memory accounting used by the Fig. 9 experiment.
#include <gtest/gtest.h>

#include "common/memory.h"

namespace tsg {
namespace {

TEST(Memory, TrackedVectorCountsBytes) {
  MemoryTracker::instance().reset();
  {
    tracked_vector<double> v(1000);
    EXPECT_GE(MemoryTracker::instance().current(), 8000);
    EXPECT_GE(MemoryTracker::instance().peak(), 8000);
  }
  EXPECT_EQ(MemoryTracker::instance().current(), 0);
  EXPECT_GE(MemoryTracker::instance().peak(), 8000);  // peak survives free
}

TEST(Memory, PeakTracksMaximumNotCurrent) {
  MemoryTracker::instance().reset();
  {
    tracked_vector<char> big(1 << 20);
  }
  tracked_vector<char> small(16);
  EXPECT_GE(MemoryTracker::instance().peak(), 1 << 20);
  EXPECT_LT(MemoryTracker::instance().current(), 1 << 12);
}

TEST(Memory, PeakMemoryScopeResets) {
  {
    tracked_vector<char> outside(4096);
    PeakMemoryScope scope;  // resets counters
    EXPECT_EQ(scope.peak_bytes(), 0);
    {
      tracked_vector<char> inside(1 << 16);
      EXPECT_GE(scope.peak_bytes(), 1 << 16);
    }
    EXPECT_GE(scope.peak_bytes(), 1 << 16);
  }
  MemoryTracker::instance().reset();  // 'outside' was freed after the reset
}

TEST(Memory, AllocatedTotalAccumulatesAcrossFrees) {
  MemoryTracker::instance().reset();
  const std::int64_t base = MemoryTracker::instance().allocated_total();
  EXPECT_EQ(base, 0);
  for (int i = 0; i < 3; ++i) {
    tracked_vector<char> v(1000);
  }
  // Unlike current(), the cumulative counter keeps the freed allocations.
  EXPECT_GE(MemoryTracker::instance().allocated_total(), 3000);
  EXPECT_EQ(MemoryTracker::instance().current(), 0);
}

TEST(Memory, DeviceBudgetOverride) {
  set_device_memory_budget_bytes(7 * 1024 * 1024);
  EXPECT_EQ(device_memory_budget_bytes(), 7u * 1024 * 1024);
  set_device_memory_budget_bytes(0);  // back to the environment default
  EXPECT_GT(device_memory_budget_bytes(), 0u);
}

TEST(Memory, TraceRecordsSamples) {
  MemoryTracker::instance().reset();
  MemoryTracker::instance().start_trace();
  {
    tracked_vector<char> a(1000);
    tracked_vector<char> b(2000);
  }
  const auto trace = MemoryTracker::instance().stop_trace();
  ASSERT_GE(trace.size(), 4u);  // 2 allocs + 2 frees
  // The running maximum of the trace equals the peak.
  std::int64_t max_seen = 0;
  for (const auto& s : trace) max_seen = std::max(max_seen, s.bytes);
  EXPECT_EQ(max_seen, MemoryTracker::instance().peak());
  // Timestamps are monotone.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time_ms, trace[i - 1].time_ms);
  }
}

}  // namespace
}  // namespace tsg
