// Peak-memory accounting used by the Fig. 9 experiment.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/memory.h"

namespace tsg {
namespace {

TEST(Memory, TrackedVectorCountsBytes) {
  MemoryTracker::instance().reset();
  {
    tracked_vector<double> v(1000);
    EXPECT_GE(MemoryTracker::instance().current(), 8000);
    EXPECT_GE(MemoryTracker::instance().peak(), 8000);
  }
  EXPECT_EQ(MemoryTracker::instance().current(), 0);
  EXPECT_GE(MemoryTracker::instance().peak(), 8000);  // peak survives free
}

TEST(Memory, PeakTracksMaximumNotCurrent) {
  MemoryTracker::instance().reset();
  {
    tracked_vector<char> big(1 << 20);
  }
  tracked_vector<char> small(16);
  EXPECT_GE(MemoryTracker::instance().peak(), 1 << 20);
  EXPECT_LT(MemoryTracker::instance().current(), 1 << 12);
}

TEST(Memory, PeakMemoryScopeResets) {
  {
    tracked_vector<char> outside(4096);
    PeakMemoryScope scope;  // resets counters
    EXPECT_EQ(scope.peak_bytes(), 0);
    {
      tracked_vector<char> inside(1 << 16);
      EXPECT_GE(scope.peak_bytes(), 1 << 16);
    }
    EXPECT_GE(scope.peak_bytes(), 1 << 16);
  }
  MemoryTracker::instance().reset();  // 'outside' was freed after the reset
}

TEST(Memory, AllocatedTotalAccumulatesAcrossFrees) {
  MemoryTracker::instance().reset();
  const std::int64_t base = MemoryTracker::instance().allocated_total();
  EXPECT_EQ(base, 0);
  for (int i = 0; i < 3; ++i) {
    tracked_vector<char> v(1000);
  }
  // Unlike current(), the cumulative counter keeps the freed allocations.
  EXPECT_GE(MemoryTracker::instance().allocated_total(), 3000);
  EXPECT_EQ(MemoryTracker::instance().current(), 0);
}

TEST(Memory, DeviceBudgetOverride) {
  set_device_memory_budget_bytes(7 * 1024 * 1024);
  EXPECT_EQ(device_memory_budget_bytes(), 7u * 1024 * 1024);
  set_device_memory_budget_bytes(0);  // back to the environment default
  EXPECT_GT(device_memory_budget_bytes(), 0u);
}

// --- FaultPlan: the allocation fault-injection triggers (ISSUE 2). ---

TEST(Memory, FaultPlanFailsExactlyTheNthAllocation) {
  FaultPlan plan;
  plan.fail_at = 3;
  FaultInjectionScope scope(plan);
  tracked_vector<char> a(64);  // 1
  tracked_vector<char> b(64);  // 2
  EXPECT_THROW(tracked_vector<char>(64), std::bad_alloc);  // 3: trips
  EXPECT_EQ(MemoryTracker::instance().injected_faults(), 1u);
  EXPECT_NO_THROW(tracked_vector<char>(64));  // 4: fail_at is one-shot
  EXPECT_EQ(MemoryTracker::instance().tracked_allocs(), 4u);
}

TEST(Memory, FaultPlanWatermarkTripsOnLiveFootprint) {
  MemoryTracker::instance().reset();
  FaultPlan plan;
  plan.byte_watermark = 4096;
  FaultInjectionScope scope(plan);
  tracked_vector<char> small(1024);  // live 1 KB: fine
  EXPECT_THROW(tracked_vector<char>(1 << 16), std::bad_alloc);  // would exceed
  EXPECT_NO_THROW(tracked_vector<char>(1024));  // still under after the failure
}

TEST(Memory, FaultPlanRateIsDeterministicPerSeed) {
  auto verdicts = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.fail_rate = 0.5;
    plan.seed = seed;
    FaultInjectionScope scope(plan);
    std::string out;
    for (int i = 0; i < 32; ++i) {
      try {
        tracked_vector<char> v(16);
        out.push_back('.');
      } catch (const std::bad_alloc&) {
        out.push_back('X');
      }
    }
    return out;
  };
  EXPECT_EQ(verdicts(7), verdicts(7));        // same seed: same stream
  EXPECT_NE(verdicts(7), verdicts(8));        // different seed: different stream
  EXPECT_NE(verdicts(7).find('X'), std::string::npos);  // rate 0.5 does trip
}

TEST(Memory, FaultScopeDisarmsOnExit) {
  {
    FaultPlan plan;
    plan.fail_at = 1;
    FaultInjectionScope scope(plan);
    EXPECT_TRUE(MemoryTracker::instance().fault_injection_armed());
    EXPECT_THROW(tracked_vector<char>(16), std::bad_alloc);
  }
  EXPECT_FALSE(MemoryTracker::instance().fault_injection_armed());
  EXPECT_NO_THROW(tracked_vector<char>(16));
}

TEST(Memory, InjectedFailureLeavesAccountingBalanced) {
  MemoryTracker::instance().reset();
  const std::int64_t before = MemoryTracker::instance().current();
  FaultPlan plan;
  plan.fail_at = 1;
  FaultInjectionScope scope(plan);
  EXPECT_THROW(tracked_vector<char>(1 << 20), std::bad_alloc);
  // The failure is injected before any memory is requested: nothing to
  // unwind, current() unchanged.
  EXPECT_EQ(MemoryTracker::instance().current(), before);
}

TEST(Memory, TraceRecordsSamples) {
  MemoryTracker::instance().reset();
  MemoryTracker::instance().start_trace();
  {
    tracked_vector<char> a(1000);
    tracked_vector<char> b(2000);
  }
  const auto trace = MemoryTracker::instance().stop_trace();
  ASSERT_GE(trace.size(), 4u);  // 2 allocs + 2 frees
  // The running maximum of the trace equals the peak.
  std::int64_t max_seen = 0;
  for (const auto& s : trace) max_seen = std::max(max_seen, s.bytes);
  EXPECT_EQ(max_seen, MemoryTracker::instance().peak());
  // Timestamps are monotone.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].time_ms, trace[i - 1].time_ms);
  }
}

}  // namespace
}  // namespace tsg
