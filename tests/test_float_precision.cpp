// Single-precision instantiation of every method: the whole pipeline is
// templated on the value type, and fp32 must agree with the fp32 serial
// reference at fp32 tolerances (the structure is value-independent, so it
// must match *exactly*).
#include <gtest/gtest.h>

#include "baselines/esc.h"
#include "baselines/reference.h"
#include "baselines/hash.h"
#include "baselines/heap.h"
#include "baselines/spa.h"
#include "baselines/speck.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/transpose.h"

namespace tsg {
namespace {

using SpgemmFnF = Csr<float> (*)(const Csr<float>&, const Csr<float>&);

struct FloatCase {
  const char* algo;
  SpgemmFnF fn;
};

Csr<float> run_tile_f(const Csr<float>& a, const Csr<float>& b) { return spgemm_tile(a, b); }

class FloatSweep : public ::testing::TestWithParam<FloatCase> {};

TEST_P(FloatSweep, MatchesFloatReference) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    const Csr<float> a =
        gen::cast_values<float>(gen::erdos_renyi(110, 110, 800, seed));
    const Csr<float> expected = spgemm_reference(a, a);
    const Csr<float> actual = GetParam().fn(a, a);
    CompareOptions opt;
    opt.rel_tol = 1e-4;
    const CompareResult r = compare(expected, actual, opt);
    EXPECT_TRUE(r.equal) << GetParam().algo << ": " << r.message;
  }
}

TEST_P(FloatSweep, StructureIdenticalToDoubleRun) {
  // Symbolic phases never read values: the fp32 product's structure must
  // equal the fp64 product's structure entry for entry.
  const Csr<double> ad = gen::rmat(8, 5.0, 77);
  const Csr<float> af = gen::cast_values<float>(ad);
  const Csr<double> cd = spgemm_reference(ad, ad);
  const Csr<float> cf = GetParam().fn(af, af);
  ASSERT_EQ(cf.nnz(), cd.nnz()) << GetParam().algo;
  for (std::size_t k = 0; k < cf.col_idx.size(); ++k) {
    ASSERT_EQ(cf.col_idx[k], cd.col_idx[k]) << GetParam().algo << " entry " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, FloatSweep,
    ::testing::Values(FloatCase{"tile", &run_tile_f}, FloatCase{"spa", &spgemm_spa<float>},
                      FloatCase{"esc", &spgemm_esc<float>},
                      FloatCase{"hash", &spgemm_hash<float>},
                      FloatCase{"heap", &spgemm_heap<float>},
                      FloatCase{"speck", &spgemm_speck<float>}),
    [](const auto& info) { return std::string(info.param.algo); });

TEST(FloatPrecision, AatPathInFloat) {
  const Csr<float> a = gen::cast_values<float>(gen::erdos_renyi(80, 50, 500, 3));
  const Csr<float> at = transpose(a);
  const Csr<float> expected = spgemm_reference(a, at);
  const Csr<float> actual = spgemm_tile(a, at);
  CompareOptions opt;
  opt.rel_tol = 1e-4;
  EXPECT_TRUE(compare(expected, actual, opt).equal);
}

TEST(FloatPrecision, ErrorsGrowNoFasterThanExpected) {
  // fp32 vs fp64 on the same product: max relative error bounded by
  // ~products-per-entry * eps_f32. Loose sanity bound: 1e-4.
  const Csr<double> ad = gen::dense_blocks(3, 24, 4);
  const Csr<float> af = gen::cast_values<float>(ad);
  const Csr<double> cd = spgemm_tile(ad, ad);
  const Csr<float> cf = spgemm_tile(af, af);
  ASSERT_EQ(cf.nnz(), cd.nnz());
  for (std::size_t k = 0; k < cf.val.size(); ++k) {
    const double expected = cd.val[k];
    const double got = static_cast<double>(cf.val[k]);
    ASSERT_NEAR(got, expected, 1e-4 * std::max(std::abs(expected), 1.0)) << k;
  }
}

}  // namespace
}  // namespace tsg
