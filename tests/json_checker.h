// Minimal recursive-descent JSON syntax checker — enough to prove the
// project's hand-rolled emitters (Chrome traces, metrics snapshots, SARIF
// logs, lint baselines) produce well-formed documents without pulling in a
// JSON dependency the container does not have.
//
// Deliberately std-only: test_lint.cpp links tsg_lint_lib and nothing from
// tsg, so this header must not include test_support.h or any tsg header.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace test {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace test
