// Randomised cross-validation ("fuzzing"): many random shapes, densities
// and structure mixes; every method must agree with the serial reference.
// This is the broadest net for integer-boundary and scheduling bugs.
#include <gtest/gtest.h>

#include "baselines/esc.h"
#include "baselines/hash.h"
#include "baselines/heap.h"
#include "baselines/spa.h"
#include "baselines/speck.h"
#include "common/random.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "test_support.h"

namespace tsg {
namespace {

/// A random matrix with seed-dependent shape and structure; deliberately
/// biased toward tile-boundary-adjacent dimensions.
Csr<double> random_matrix(Xoshiro256& rng, index_t rows, index_t cols) {
  switch (rng.next_below(4)) {
    case 0: {  // uniform random, density up to ~10%
      const offset_t nnz = 1 + static_cast<offset_t>(rng.next_below(
                                   static_cast<std::uint64_t>(rows) * cols / 10 + 1));
      return gen::erdos_renyi(rows, cols, nnz, rng.next());
    }
    case 1: {  // clusters (square only -> fall through to uniform if rect)
      if (rows == cols) return gen::clustered_rows(rows, 2, 4, rng.next());
      return gen::erdos_renyi(rows, cols, rows * 3, rng.next());
    }
    case 2: {  // very sparse
      return gen::erdos_renyi(rows, cols, std::max<offset_t>(1, rows / 2), rng.next());
    }
    default: {  // a few dense rows + sparse remainder
      Coo<double> coo;
      coo.rows = rows;
      coo.cols = cols;
      const index_t hubs = 1 + static_cast<index_t>(rng.next_below(3));
      for (index_t h = 0; h < hubs; ++h) {
        const index_t r = static_cast<index_t>(rng.next_below(rows));
        for (index_t j = 0; j < cols; ++j) {
          if (rng.next_double() < 0.7) coo.push_back(r, j, rng.next_double() + 0.1);
        }
      }
      for (index_t i = 0; i < rows; ++i) {
        coo.push_back(i, static_cast<index_t>(rng.next_below(cols)),
                      rng.next_double() + 0.1);
      }
      coo.sort_and_combine();
      return coo_to_csr(std::move(coo));
    }
  }
}

index_t random_dim(Xoshiro256& rng) {
  // Mix of tiny, tile-boundary (15/16/17/31/32/33...) and moderate sizes.
  static constexpr index_t boundary[] = {1, 2, 15, 16, 17, 31, 32, 33, 47, 48, 49, 255, 256};
  if (rng.next_below(2) == 0) {
    return boundary[rng.next_below(std::size(boundary))];
  }
  return 1 + static_cast<index_t>(rng.next_below(300));
}

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, AllMethodsAgreeWithReference) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const index_t m = random_dim(rng);
  const index_t k = random_dim(rng);
  const index_t n = random_dim(rng);
  const Csr<double> a = random_matrix(rng, m, k);
  const Csr<double> b = random_matrix(rng, k, n);
  SCOPED_TRACE("shape " + std::to_string(m) + "x" + std::to_string(k) + "x" +
               std::to_string(n) + " nnzA=" + std::to_string(a.nnz()) +
               " nnzB=" + std::to_string(b.nnz()));

  const Csr<double> expected = spgemm_reference(a, b);
  auto check = [&](const char* name, const Csr<double>& c) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(c.validate().empty()) << c.validate();
    test::expect_equal(expected, c, name, 1e-9);
  };
  check("tile", spgemm_tile(a, b));
  check("spa", spgemm_spa(a, b));
  check("esc", spgemm_esc(a, b));
  check("hash", spgemm_hash(a, b));
  check("heap", spgemm_heap(a, b));
  check("speck", spgemm_speck(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 40));

TEST(FuzzFloat, TileAgreesWithReferenceInSinglePrecision) {
  Xoshiro256 rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const index_t n = random_dim(rng);
    const Csr<float> a = gen::cast_values<float>(random_matrix(rng, n, n));
    const Csr<float> expected = spgemm_reference(a, a);
    const Csr<float> actual = spgemm_tile(a, a);
    CompareOptions opt;
    opt.rel_tol = 1e-4;
    const CompareResult r = compare(expected, actual, opt);
    ASSERT_TRUE(r.equal) << "trial " << trial << ": " << r.message;
  }
}

}  // namespace
}  // namespace tsg
