// Tests for the tsg-lint rule engine (tools/tsg_lint). Every rule is
// exercised with at least one firing fixture and one clean fixture, and the
// suppression comments are covered as a mechanism of their own.
//
// Fixtures live in raw strings: the lexer never tokenizes string contents,
// so the violations quoted here cannot fire on this file itself when
// `tsg_lint tests` runs over the tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "json_checker.h"
#include "tsg_lint/baseline.h"
#include "tsg_lint/include_graph.h"
#include "tsg_lint/lint.h"
#include "tsg_lint/project.h"
#include "tsg_lint/sarif.h"

namespace {

using tsg::lint::Diagnostic;
using tsg::lint::FileInput;
using tsg::lint::Options;

std::vector<Diagnostic> run(const std::string& path, std::string_view src,
                            tsg::lint::LintStats* stats = nullptr) {
  return tsg::lint::lint_source(path, src, Options{}, stats);
}

/// Project-mode driver; jobs=1 keeps fixture runs deterministic.
tsg::lint::ProjectResult run_project(std::vector<FileInput> files) {
  return tsg::lint::lint_project(std::move(files), Options{}, 1);
}

int count_rule(const std::vector<Diagnostic>& diags, std::string_view rule) {
  return static_cast<int>(std::count_if(
      diags.begin(), diags.end(), [&](const Diagnostic& d) { return d.rule == rule; }));
}

// ---------------------------------------------------------------------------
// raw-alloc
// ---------------------------------------------------------------------------

TEST(RawAlloc, FiresOnMallocAndArrayNew) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(std::size_t n) {
      void* p = malloc(n);
      int* a = new int[8];
    }
  )");
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 2);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(RawAlloc, CleanOnTrackedAllocationAndScalarNew) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(std::size_t n) {
      tsg::tracked_vector<int> v(n);
      auto w = std::make_unique<Widget>();
      auto* s = new Widget(n);
    }
  )");
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 0);
}

TEST(RawAlloc, MemoryLayerIsExempt) {
  const std::string_view src = R"(
    void* raw = malloc(bytes);
  )";
  EXPECT_EQ(count_rule(run("src/common/memory.cpp", src), "raw-alloc"), 0);
  EXPECT_EQ(count_rule(run("src/core/other.cpp", src), "raw-alloc"), 1);
}

TEST(RawAlloc, MemberNamedMallocIsNotACall) {
  const auto diags = run("a.cpp", R"(
    arena.malloc(n);
    pool->calloc(a, b);
  )");
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 0);
}

// ---------------------------------------------------------------------------
// unchecked-size-mul
// ---------------------------------------------------------------------------

TEST(UncheckedSizeMul, FiresOnResizeProduct) {
  const auto diags = run("a.cpp", R"(
    void f(std::vector<int>& v, std::size_t rows, std::size_t cols) {
      v.resize(rows * cols);
    }
  )");
  ASSERT_EQ(count_rule(diags, "unchecked-size-mul"), 1);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(UncheckedSizeMul, FiresInsideMallocAndNewBrackets) {
  // The allocation sites themselves also trip raw-alloc; count only the
  // size rule here.
  const auto diags = run("src/common/memory.cpp", R"(
    void* p = malloc(n * sizeof(int));
    int* a = new int[rows * cols];
  )");
  EXPECT_EQ(count_rule(diags, "unchecked-size-mul"), 2);
}

TEST(UncheckedSizeMul, CleanWhenRoutedThroughCheckedHelpers) {
  const auto diags = run("a.cpp", R"(
    v.resize(tsg::checked_size_mul(rows, cols));
    v.reserve(n);
    w.assign(count, 0);
  )");
  EXPECT_EQ(count_rule(diags, "unchecked-size-mul"), 0);
}

TEST(UncheckedSizeMul, DereferenceAndCompoundAssignAreNotMultiplies) {
  const auto diags = run("a.cpp", R"(
    v.resize(*size_ptr);
    v.resize(n *= 2);
  )");
  EXPECT_EQ(count_rule(diags, "unchecked-size-mul"), 0);
}

// ---------------------------------------------------------------------------
// discarded-status
// ---------------------------------------------------------------------------

TEST(DiscardedStatus, FiresOnBareTryCall) {
  const auto diags = run("a.cpp", R"(
    void f() {
      try_reserve(buf, n);
      ctx.try_run(a, b, &c);
    }
  )");
  EXPECT_EQ(count_rule(diags, "discarded-status"), 2);
}

TEST(DiscardedStatus, CleanWhenResultIsConsumed) {
  const auto diags = run("a.cpp", R"(
    tsg::Status g() {
      auto st = try_reserve(buf, n);
      if (!try_convert(m).ok()) return fail();
      return try_run(a, b, &c);
    }
  )");
  EXPECT_EQ(count_rule(diags, "discarded-status"), 0);
}

// ---------------------------------------------------------------------------
// throw-in-parallel
// ---------------------------------------------------------------------------

TEST(ThrowInParallel, FiresInsideParallelForBodyInCore) {
  const auto diags = run("src/core/step9.cpp", R"(
    void f() {
      tsg::parallel_for(index_t{0}, n, [&](index_t i) {
        if (bad(i)) throw std::runtime_error("boom");
      });
    }
  )");
  ASSERT_EQ(count_rule(diags, "throw-in-parallel"), 1);
  EXPECT_EQ(diags[0].line, 4);
}

TEST(ThrowInParallel, CleanOutsideBodyAndOutsideCore) {
  // A throw before/after the parallel region is fine...
  const auto in_core = run("src/core/step9.cpp", R"(
    void f() {
      if (n < 0) throw std::invalid_argument("n");
      tsg::parallel_for(index_t{0}, n, [&](index_t i) { work(i); });
    }
  )");
  EXPECT_EQ(count_rule(in_core, "throw-in-parallel"), 0);

  // ...and the rule is scoped to src/core: tests may throw wherever.
  const auto in_tests = run("tests/test_x.cpp", R"(
    tsg::parallel_for(0, n, [&](int i) { throw std::runtime_error("x"); });
  )");
  EXPECT_EQ(count_rule(in_tests, "throw-in-parallel"), 0);
}

// ---------------------------------------------------------------------------
// trace-span-pairing
// ---------------------------------------------------------------------------

TEST(TraceSpanPairing, FiresOnUnbalancedSpan) {
  const auto diags = run("a.cpp", R"(
    void f() {
      TSG_TRACE_BEGIN("step2");
      work();
    }
  )");
  EXPECT_EQ(count_rule(diags, "trace-span-pairing"), 1);
}

TEST(TraceSpanPairing, CleanOnBalancedSpans) {
  const auto diags = run("a.cpp", R"(
    void f() {
      TSG_TRACE_BEGIN("step2");
      TSG_TRACE_BEGIN("probe", nnz);
      work();
      TSG_TRACE_END("probe");
      TSG_TRACE_END("step2");
    }
  )");
  EXPECT_EQ(count_rule(diags, "trace-span-pairing"), 0);
}

TEST(TraceSpanPairing, NonLiteralNameIsItsOwnFinding) {
  const auto diags = run("a.cpp", R"(
    void f(const char* name) {
      TSG_TRACE_BEGIN(name);
      TSG_TRACE_END(name);
    }
  )");
  EXPECT_EQ(count_rule(diags, "trace-span-pairing"), 2);
}

// ---------------------------------------------------------------------------
// unbounded-wait
// ---------------------------------------------------------------------------

TEST(UnboundedWait, FiresOnNakedGetAndPredicatelessWait) {
  const auto diags = run("src/service/foo.cpp", R"(
    void f(std::future<int>& fut, std::condition_variable& cv,
           std::unique_lock<std::mutex>& lk) {
      int v = fut.get();
      cv.wait(lk);
      fut.wait();
    }
  )");
  EXPECT_EQ(count_rule(diags, "unbounded-wait"), 3);
  EXPECT_EQ(diags[0].line, 4);
}

TEST(UnboundedWait, CleanOnBoundedAndPredicatedWaits) {
  const auto diags = run("tests/test_foo.cpp", R"(
    void f(std::future<int>& fut, std::condition_variable& cv,
           std::unique_lock<std::mutex>& lk, bool& done) {
      (void)fut.wait_for(std::chrono::seconds(1));
      cv.wait(lk, [&] { return done; });
      cv.wait_until(lk, deadline);
      int v = test::await(fut);
    }
  )");
  EXPECT_EQ(count_rule(diags, "unbounded-wait"), 0);
}

TEST(UnboundedWait, ScopedToServiceAndTests) {
  // The rule is a service-layer liveness invariant: the same naked get() in
  // src/core (where futures do not appear) must not fire.
  const std::string_view src = R"(
    int v = fut.get();
  )";
  EXPECT_EQ(count_rule(run("src/core/foo.cpp", src), "unbounded-wait"), 0);
  EXPECT_EQ(count_rule(run("src/service/foo.cpp", src), "unbounded-wait"), 1);
  EXPECT_EQ(count_rule(run("tests/foo.cpp", src), "unbounded-wait"), 1);
}

TEST(UnboundedWait, SuppressibleWithRationale) {
  const auto diags = run("src/service/foo.cpp", R"(
    int v = fut.get();  // tsg-lint: allow(unbounded-wait) -- readiness checked above
  )");
  EXPECT_EQ(count_rule(diags, "unbounded-wait"), 0);
}

// ---------------------------------------------------------------------------
// banned-fn
// ---------------------------------------------------------------------------

TEST(BannedFn, FiresOnRandAndSprintf) {
  const auto diags = run("a.cpp", R"(
    int f(char* out) {
      sprintf(out, "%d", 42);
      return rand();
    }
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 2);
}

TEST(BannedFn, CleanOnSafeAlternativesAndMembers) {
  const auto diags = run("a.cpp", R"(
    int f(char* out, std::size_t n, Rng& gen) {
      snprintf(out, n, "%d", 42);
      return gen.rand();
    }
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
}

// ---------------------------------------------------------------------------
// raw-log
// ---------------------------------------------------------------------------

TEST(RawLog, FiresOnPrintfFamilyAndStreamsInLibraryCode) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(int n) {
      fprintf(stderr, "n=%d\n", n);
      std::cerr << "oops" << std::endl;
    }
  )");
  ASSERT_EQ(count_rule(diags, "raw-log"), 2);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(RawLog, LoggerSinkItselfIsExempt) {
  const std::string_view src = R"(
    void flush_line(const std::string& line) {
      fprintf(out, "%s\n", line.c_str());
      if (!out) std::cerr << line << "\n";
    }
  )";
  EXPECT_EQ(count_rule(run("src/obs/log.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("src/obs/trace.cpp", src), "raw-log"), 2);
}

TEST(RawLog, ScopedToLibrarySources) {
  // CLI, benches, tools, and tests talk to humans on stdout/stderr; only
  // src/ must route diagnostics through the structured logger.
  const std::string_view src = R"(
    printf("rows=%d\n", rows);
    std::cout << "done\n";
  )";
  EXPECT_EQ(count_rule(run("tools/tilespgemm_cli.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("bench/bench_fig10.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("tests/test_foo.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("src/service/foo.cpp", src), "raw-log"), 2);
}

TEST(RawLog, CleanOnBoundedFormattersAndMembers) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(char* buf, std::size_t n, Writer& w) {
      snprintf(buf, n, "%d", 42);
      w.printf("%d", 42);
      sink->fprintf(fmt);
    }
  )");
  EXPECT_EQ(count_rule(diags, "raw-log"), 0);
}

// ---------------------------------------------------------------------------
// Suppression mechanism
// ---------------------------------------------------------------------------

TEST(Suppression, TrailingCommentSilencesTheLine) {
  tsg::lint::LintStats stats;
  const auto diags = run("a.cpp", R"(
    int x = rand();  // tsg-lint: allow(banned-fn) -- fixture, not product code
  )",
                         &stats);
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
  EXPECT_EQ(stats.suppressed, 1);
}

TEST(Suppression, CommentAboveSilencesTheNextLine) {
  const auto diags = run("a.cpp", R"(
    // tsg-lint: allow(banned-fn)
    int x = rand();
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
}

TEST(Suppression, DoesNotLeakToOtherLinesOrRules) {
  const auto diags = run("a.cpp", R"(
    // tsg-lint: allow(banned-fn)
    int x = rand();
    int y = rand();
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 1);

  const auto wrong_rule = run("a.cpp", R"(
    int x = rand();  // tsg-lint: allow(raw-alloc)
  )");
  EXPECT_EQ(count_rule(wrong_rule, "banned-fn"), 1);
}

TEST(Suppression, WildcardAndListForms) {
  const auto diags = run("a.cpp", R"(
    int x = rand();  // tsg-lint: allow(*)
    v.resize(a * b);  // tsg-lint: allow(unchecked-size-mul, banned-fn)
  )");
  EXPECT_TRUE(diags.empty());
}

TEST(Suppression, AllowFileCoversTheWholeFile) {
  const auto diags = run("a.cpp", R"(
    // tsg-lint: allow-file(banned-fn)
    int f() { return rand(); }
    int g() { return rand(); }
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
}

// ---------------------------------------------------------------------------
// Engine / lexer behaviour
// ---------------------------------------------------------------------------

TEST(Engine, ViolationsInCommentsAndStringsDoNotFire) {
  const auto diags = run("a.cpp",
                         "// int x = rand();\n"
                         "/* void* p = malloc(n); */\n"
                         "const char* doc = \"never call sprintf(buf, fmt)\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Engine, PreprocessorLinesAreInvisible) {
  // The trace macro *definitions* (and any #if'd-out branch) must not count
  // as span begins/ends.
  const auto diags = run("a.cpp", R"(
#define MY_SPAN() TSG_TRACE_BEGIN("x")
#define MY_SPAN_DONE() TSG_TRACE_END("y")
  )");
  EXPECT_TRUE(diags.empty());
}

TEST(Engine, OnlyRulesFilterRestrictsTheRun) {
  Options only;
  only.only_rules.insert("banned-fn");
  const auto diags = tsg::lint::lint_source("a.cpp", R"(
    void* p = malloc(rand());
  )",
                                            only);
  EXPECT_EQ(count_rule(diags, "banned-fn"), 1);
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 0);
}

TEST(Engine, RuleCatalogueNamesAreUniqueAndStable) {
  const auto& rules = tsg::lint::rule_catalogue();
  ASSERT_EQ(rules.size(), 8u);
  std::vector<std::string> names;
  names.reserve(rules.size());
  for (const auto& r : rules) names.push_back(r.name);
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-alloc"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "trace-span-pairing"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "unbounded-wait"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-log"), names.end());
}

TEST(Engine, AllRuleInfoCoversEveryRuleTier) {
  // 8 per-file + 3 semantic + 2 graph rules; names unique across tiers.
  const auto info = tsg::lint::all_rule_info();
  ASSERT_EQ(info.size(), 13u);
  std::vector<std::string> names;
  names.reserve(info.size());
  for (const auto& r : info) names.push_back(r.name);
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  for (const char* expected : {"cancel-poll", "scope-pairing", "expected-flow",
                               "include-cycle", "layer-violation"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
}

// ---------------------------------------------------------------------------
// Lexer regressions: raw strings, digit separators, spliced comments
// ---------------------------------------------------------------------------

TEST(Lexer, RawStringContentsAreNeverTokenized) {
  const auto diags = run("a.cpp", R"fix(
    const char* doc = R"(calls rand() and sprintf(buf, fmt))";
    const char* sql = R"sql(select rand() from t)sql";
  )fix");
  EXPECT_TRUE(diags.empty());
}

TEST(Lexer, CodeAfterRawStringStillLints) {
  const auto diags = run("a.cpp", R"fix(
    const char* doc = R"x(harmless)x";
    int n = rand();
  )fix");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 1);
}

TEST(Lexer, MalformedRawDelimiterDoesNotSwallowTheFile) {
  // A d-char-seq longer than 16 characters is ill-formed, so this is not a
  // raw string; the old scanner ran to EOF looking for a closer and
  // silenced every rule after it. The `R` falls out as an identifier, the
  // quote scans as an ordinary string, and later code still lints.
  const auto diags = run("a.cpp",
                         "auto s = R\"aaaaaaaaaaaaaaaaa( looks-raw )\";\n"
                         "int n = rand();\n");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 1);
}

TEST(Lexer, DigitSeparatorsStayInsideTheNumber) {
  const auto diags = run("a.cpp", R"(
    const int big = 1'000'000;
    int n = rand();
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 1);
}

TEST(Lexer, QuoteAfterNumberOpensACharLiteral) {
  // `memchr(s, '0', 1)`-style code right after a numeric token: the quote
  // must not be folded into the number (the old lexer then mis-paired every
  // later literal). The multiply inside resize() still fires.
  const auto diags = run("a.cpp", R"(
    f(1, '0');
    v.resize(a * b);
  )");
  EXPECT_EQ(count_rule(diags, "unchecked-size-mul"), 1);
}

TEST(Lexer, BackslashSplicedLineCommentSwallowsTheNextLine) {
  // Phase-2 line splicing runs before comment removal: the second line is
  // still comment, the third is code.
  const auto diags = run("a.cpp",
                         "// this comment continues \\\n"
                         "int swallowed = rand();\n"
                         "int live = rand();\n");
  ASSERT_EQ(count_rule(diags, "banned-fn"), 1);
  EXPECT_EQ(diags[0].line, 3);
}

// ---------------------------------------------------------------------------
// cancel-poll (semantic, index-driven)
// ---------------------------------------------------------------------------

TEST(CancelPoll, FiresOnTileLoopWithoutPoll) {
  auto result = run_project({{"src/core/kernel.cpp", R"(
    void f(Ws& ws, offset_t ntiles) {
      parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
        work(t);
      });
    }
  )"}});
  ASSERT_EQ(count_rule(result.diagnostics, "cancel-poll"), 1);
  EXPECT_EQ(result.diagnostics[0].line, 3);
}

TEST(CancelPoll, CleanWithDirectStridedPoll) {
  auto result = run_project({{"src/core/kernel.cpp", R"(
    void f(Ws& ws, offset_t ntiles) {
      parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
        if ((t & 63) == 0) {
          ws.cancel.note_progress();
          if (ws.cancel.should_stop()) return;
        }
        work(t);
      });
    }
  )"}});
  EXPECT_EQ(count_rule(result.diagnostics, "cancel-poll"), 0);
}

TEST(CancelPoll, PollThroughCrossFileHelperSatisfiesTheRule) {
  // The helper polls; the index's reachability fixpoint lets the kernel's
  // loop satisfy the rule by calling it — this is the cross-TU part.
  auto result = run_project({
      {"src/core/kernel.cpp", R"(
        void f(Ws& ws, offset_t ntiles) {
          parallel_for(offset_t{0}, ntiles, [&](offset_t t) {
            poll_and_work(ws, t);
          });
        }
      )"},
      {"src/core/helpers.cpp", R"(
        void poll_and_work(Ws& ws, offset_t t) {
          ws.cancel.note_progress();
          if (ws.cancel.should_stop()) return;
          work(t);
        }
      )"},
  });
  EXPECT_EQ(count_rule(result.diagnostics, "cancel-poll"), 0);
}

TEST(CancelPoll, FiresOnChunkLoopWithoutPollAndScopedToCore) {
  const std::string_view src = R"(
    void drain(Ctx& ctx, std::size_t nchunks) {
      for (std::size_t chunk = 0; chunk < nchunks; ++chunk) {
        submit_one(chunk);
      }
    }
  )";
  auto in_core = run_project({{"src/core/pipeline.cpp", std::string(src)}});
  EXPECT_EQ(count_rule(in_core.diagnostics, "cancel-poll"), 1);

  // Same code outside src/core is out of the rule's scope.
  auto in_service = run_project({{"src/service/pipeline.cpp", std::string(src)}});
  EXPECT_EQ(count_rule(in_service.diagnostics, "cancel-poll"), 0);
}

TEST(CancelPoll, ChunkLoopCleanWithPerChunkCheck) {
  auto result = run_project({{"src/core/pipeline.cpp", R"(
    void drain(Ctx& ctx, std::size_t nchunks) {
      for (std::size_t chunk = 0; chunk < nchunks; ++chunk) {
        check_cancelled();
        submit_one(chunk);
      }
    }
  )"}});
  EXPECT_EQ(count_rule(result.diagnostics, "cancel-poll"), 0);
}

TEST(CancelPoll, LoopsOverNonTileRangesAreOutOfScope) {
  auto result = run_project({{"src/core/kernel.cpp", R"(
    void f(const Matrix& a) {
      parallel_for(index_t{0}, a.tile_rows, [&](index_t tr) {
        work(tr);
      });
    }
  )"}});
  EXPECT_EQ(count_rule(result.diagnostics, "cancel-poll"), 0);
}

// ---------------------------------------------------------------------------
// scope-pairing (semantic)
// ---------------------------------------------------------------------------

TEST(ScopePairing, FiresOnDirectFaultPlanCalls) {
  auto result = run_project({{"tests/test_x.cpp", R"(
    void f(FaultPlan plan) {
      MemoryTracker::instance().set_fault_plan(plan);
      run();
      MemoryTracker::instance().clear_fault_plan();
    }
  )"}});
  EXPECT_EQ(count_rule(result.diagnostics, "scope-pairing"), 2);
}

TEST(ScopePairing, MemoryLayerAndRaiiUseAreClean) {
  // The scope type's own implementation calls the pair; user code holding a
  // FaultInjectionScope never spells the calls at all.
  auto impl = run_project({{"src/common/memory.h", R"(
    class FaultInjectionScope {
     public:
      explicit FaultInjectionScope(const FaultPlan& plan) {
        MemoryTracker::instance().set_fault_plan(plan);
      }
      ~FaultInjectionScope() { MemoryTracker::instance().clear_fault_plan(); }
    };
  )"}});
  EXPECT_EQ(count_rule(impl.diagnostics, "scope-pairing"), 0);

  auto user = run_project({{"tests/test_x.cpp", R"(
    void f(FaultPlan plan) {
      FaultInjectionScope scope(plan);
      run();
    }
  )"}});
  EXPECT_EQ(count_rule(user.diagnostics, "scope-pairing"), 0);
}

TEST(ScopePairing, FiresOnChaosEngineArmOutsideItsModule) {
  auto result = run_project({{"bench/bench_chaos.cpp", R"(
    void f(const ChaosPlan& plan) {
      ChaosEngine::instance().arm(plan);
      run();
      ChaosEngine::instance().disarm();
    }
  )"}});
  EXPECT_EQ(count_rule(result.diagnostics, "scope-pairing"), 2);

  auto inside = run_project({{"src/chaos/chaos.cpp", R"(
    void ChaosScope::install(const ChaosPlan& plan) { ChaosEngine::instance().arm(plan); }
  )"}});
  EXPECT_EQ(count_rule(inside.diagnostics, "scope-pairing"), 0);
}

TEST(ScopePairing, FiresOnDirectRequestContextAssignment) {
  auto result = run_project({{"src/service/worker.cpp", R"(
    void f(const RequestContext& ctx) {
      detail::t_request = ctx;
    }
  )"}});
  EXPECT_EQ(count_rule(result.diagnostics, "scope-pairing"), 1);
}

TEST(ScopePairing, ManualMutexLockFiresButGuardReceiversAreExempt) {
  auto manual = run_project({{"src/service/worker.cpp", R"(
    void f() {
      mu_.lock();
      state_ += 1;
      mu_.unlock();
    }
  )"}});
  EXPECT_EQ(count_rule(manual.diagnostics, "scope-pairing"), 2);

  auto guarded = run_project({{"src/service/worker.cpp", R"(
    void f(std::weak_ptr<Widget> weak) {
      std::unique_lock<std::mutex> lk(mu_);
      lk.unlock();
      recompute();
      lk.lock();
      if (auto strong = weak.lock()) strong->poke();
    }
  )"}});
  EXPECT_EQ(count_rule(guarded.diagnostics, "scope-pairing"), 0);
}

// ---------------------------------------------------------------------------
// expected-flow (semantic, interprocedural)
// ---------------------------------------------------------------------------

TEST(ExpectedFlow, FiresOnDiscardedStatusCallAcrossFiles) {
  auto result = run_project({
      {"src/obs/sink.cpp", R"(
        Status flush_sink() { return Status::ok(); }
      )"},
      {"src/service/worker.cpp", R"(
        void f() {
          flush_sink();
        }
      )"},
  });
  ASSERT_EQ(count_rule(result.diagnostics, "expected-flow"), 1);
  EXPECT_EQ(result.diagnostics[0].path, "src/service/worker.cpp");
  // The message names the defining file so the finding is checkable.
  EXPECT_NE(result.diagnostics[0].message.find("src/obs/sink.cpp"), std::string::npos);
}

TEST(ExpectedFlow, CleanWhenResultIsConsumed) {
  auto result = run_project({
      {"src/obs/sink.cpp", R"(
        Status flush_sink() { return Status::ok(); }
        Expected<int> count_rows() { return 3; }
      )"},
      {"src/service/worker.cpp", R"(
        Status f() {
          Status st = flush_sink();
          if (!st.ok()) return st;
          auto n = count_rows();
          return flush_sink();
        }
      )"},
  });
  EXPECT_EQ(count_rule(result.diagnostics, "expected-flow"), 0);
}

TEST(ExpectedFlow, OverloadWithNonStatusReturnDisarmsTheRule) {
  // A same-named definition returning void exists: name-level indexing
  // cannot tell which overload the call resolves to, so it must not fire.
  auto result = run_project({
      {"src/obs/sink.cpp", R"(
        Status flush_sink() { return Status::ok(); }
      )"},
      {"src/core/other.cpp", R"(
        void flush_sink(int fd) { fsync_all(fd); }
      )"},
      {"src/service/worker.cpp", R"(
        void f() {
          flush_sink();
        }
      )"},
  });
  EXPECT_EQ(count_rule(result.diagnostics, "expected-flow"), 0);
}

TEST(ExpectedFlow, TryPrefixedCallsBelongToDiscardedStatus) {
  auto result = run_project({
      {"src/core/api.cpp", R"(
        Status try_convert(const M& m) { return Status::ok(); }
      )"},
      {"src/service/worker.cpp", R"(
        void f(const M& m) {
          try_convert(m);
        }
      )"},
  });
  EXPECT_EQ(count_rule(result.diagnostics, "expected-flow"), 0);
  EXPECT_EQ(count_rule(result.diagnostics, "discarded-status"), 1);
}

// ---------------------------------------------------------------------------
// Include graph: cycles and layering
// ---------------------------------------------------------------------------

TEST(IncludeGraph, DetectsSyntheticIncludeCycle) {
  auto result = run_project({
      {"src/core/a.h", "#pragma once\n#include \"core/b.h\"\n"},
      {"src/core/b.h", "#pragma once\n#include \"core/a.h\"\n"},
  });
  ASSERT_EQ(count_rule(result.diagnostics, "include-cycle"), 1);
  EXPECT_NE(result.diagnostics[0].message.find("src/core/a.h"), std::string::npos);
  EXPECT_NE(result.diagnostics[0].message.find("src/core/b.h"), std::string::npos);
}

TEST(IncludeGraph, FlagsLayerInversionButNotTheForwardEdge) {
  // matrix (layer 3) including core (layer 4) is an inversion; core
  // including matrix is the declared direction.
  auto inverted = run_project({
      {"src/matrix/m.h", "#pragma once\n#include \"core/c.h\"\n"},
      {"src/core/c.h", "#pragma once\n"},
  });
  ASSERT_EQ(count_rule(inverted.diagnostics, "layer-violation"), 1);
  EXPECT_EQ(inverted.diagnostics[0].path, "src/matrix/m.h");
  EXPECT_EQ(inverted.diagnostics[0].line, 2);

  auto forward = run_project({
      {"src/core/c.h", "#pragma once\n#include \"matrix/m.h\"\n"},
      {"src/matrix/m.h", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(forward.diagnostics, "layer-violation"), 0);
}

TEST(IncludeGraph, UnknownSrcModuleMustDeclareItsLayer) {
  auto result = run_project({{"src/newmod/x.h", "#pragma once\n"}});
  EXPECT_EQ(count_rule(result.diagnostics, "layer-violation"), 1);
}

TEST(IncludeGraph, TsgLintIsStandalone) {
  auto result = run_project({
      {"tools/tsg_lint/lexer.h", "#pragma once\n#include \"common/status.h\"\n"},
      {"src/common/status.h", "#pragma once\n"},
  });
  ASSERT_EQ(count_rule(result.diagnostics, "layer-violation"), 1);
  EXPECT_EQ(result.diagnostics[0].path, "tools/tsg_lint/lexer.h");
}

TEST(IncludeGraph, AppsMayIncludeAnyLayerAndSelfEdgesAreFree) {
  auto result = run_project({
      {"tests/test_x.cpp", "#include \"service/spgemm_service.h\"\n#include \"core/c.h\"\n"},
      {"src/service/spgemm_service.h", "#pragma once\n#include \"core/c.h\"\n"},
      {"src/core/c.h", "#pragma once\n#include \"core/d.h\"\n"},
      {"src/core/d.h", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(result.diagnostics, "layer-violation"), 0);
  EXPECT_EQ(count_rule(result.diagnostics, "include-cycle"), 0);
}

TEST(IncludeGraph, SuppressionOnTheLineAboveWorksForIncludeFindings) {
  auto result = run_project({
      {"src/matrix/m.h",
       "#pragma once\n// tsg-lint: allow(layer-violation)\n#include \"core/c.h\"\n"},
      {"src/core/c.h", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(result.diagnostics, "layer-violation"), 0);
  EXPECT_EQ(result.stats.suppressed, 1);
}

// ---------------------------------------------------------------------------
// SARIF emission
// ---------------------------------------------------------------------------

TEST(Sarif, OutputIsWellFormedJsonWithRuleTableAndResults) {
  auto result = run_project({{"src/core/foo.cpp", R"(
    int f() { return rand(); }
  )"}});
  ASSERT_EQ(result.diagnostics.size(), 1u);

  std::ostringstream os;
  tsg::lint::write_sarif(result.diagnostics, tsg::lint::all_rule_info(), os);
  const std::string sarif = os.str();

  EXPECT_TRUE(test::JsonChecker(sarif).valid()) << sarif;
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"tsg-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"banned-fn\""), std::string::npos);
  EXPECT_NE(sarif.find("src/core/foo.cpp"), std::string::npos);
  // The full rule table rides along even for rules with zero findings.
  EXPECT_NE(sarif.find("\"id\": \"cancel-poll\""), std::string::npos);
}

TEST(Sarif, EmptyRunIsStillValid) {
  std::ostringstream os;
  tsg::lint::write_sarif({}, tsg::lint::all_rule_info(), os);
  EXPECT_TRUE(test::JsonChecker(os.str()).valid());
  EXPECT_NE(os.str().find("\"results\": ["), std::string::npos);
}

TEST(Sarif, MessagesWithQuotesAndNewlinesAreEscaped) {
  std::vector<Diagnostic> diags = {
      {"banned-fn", "a.cpp", 1, "say \"no\" to\nrand \\ backslash"}};
  std::ostringstream os;
  tsg::lint::write_sarif(diags, tsg::lint::all_rule_info(), os);
  EXPECT_TRUE(test::JsonChecker(os.str()).valid()) << os.str();
}

// ---------------------------------------------------------------------------
// Baseline: roundtrip and diff semantics
// ---------------------------------------------------------------------------

TEST(Baseline, WriteLoadRoundtrip) {
  std::vector<Diagnostic> diags = {
      {"banned-fn", "a.cpp", 3, "m"},
      {"banned-fn", "a.cpp", 9, "m"},
      {"raw-alloc", "b.cpp", 1, "m"},
  };
  std::ostringstream os;
  tsg::lint::write_baseline(diags, os);
  EXPECT_TRUE(test::JsonChecker(os.str()).valid()) << os.str();

  tsg::lint::Baseline loaded;
  std::string error;
  ASSERT_TRUE(tsg::lint::load_baseline(os.str(), loaded, error)) << error;
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ((loaded.entries[{"banned-fn", "a.cpp"}]), 2);
  EXPECT_EQ((loaded.entries[{"raw-alloc", "b.cpp"}]), 1);
}

TEST(Baseline, DiffGrandfathersTheBudgetAndReportsTheExcess) {
  tsg::lint::Baseline baseline;
  baseline.entries[{"banned-fn", "a.cpp"}] = 1;

  // Two findings against a budget of one: the first (by line) is absorbed,
  // the second is fresh. Line numbers shifting does not matter — only the
  // count does.
  std::vector<Diagnostic> diags = {
      {"banned-fn", "a.cpp", 14, "m"},
      {"banned-fn", "a.cpp", 90, "m"},
  };
  auto diff = tsg::lint::diff_baseline(diags, baseline);
  EXPECT_EQ(diff.grandfathered, 1);
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.fresh[0].line, 90);
  EXPECT_TRUE(diff.stale.empty());
}

TEST(Baseline, UnbaselinedRuleOrPathIsAlwaysFresh) {
  tsg::lint::Baseline baseline;
  baseline.entries[{"banned-fn", "a.cpp"}] = 5;
  std::vector<Diagnostic> diags = {
      {"banned-fn", "other.cpp", 1, "m"},
      {"raw-alloc", "a.cpp", 2, "m"},
  };
  auto diff = tsg::lint::diff_baseline(diags, baseline);
  EXPECT_EQ(diff.grandfathered, 0);
  EXPECT_EQ(diff.fresh.size(), 2u);
  // The unused budget for (banned-fn, a.cpp) is reported stale.
  ASSERT_EQ(diff.stale.size(), 1u);
  EXPECT_NE(diff.stale[0].find("banned-fn a.cpp"), std::string::npos);
}

TEST(Baseline, MalformedBaselineFailsLoudly) {
  tsg::lint::Baseline out;
  std::string error;
  EXPECT_FALSE(tsg::lint::load_baseline("{\"entries\": [{\"rule\": \"x\"}]}", out, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(tsg::lint::load_baseline("not json", out, error));
  EXPECT_FALSE(tsg::lint::load_baseline("{}", out, error));  // missing entries
}

TEST(Baseline, EmptyBaselineAbsorbsNothing) {
  tsg::lint::Baseline baseline;
  std::string error;
  ASSERT_TRUE(tsg::lint::load_baseline(
      "{\n  \"version\": 1,\n  \"tool\": \"tsg-lint\",\n  \"entries\": []\n}\n",
      baseline, error))
      << error;
  std::vector<Diagnostic> diags = {{"banned-fn", "a.cpp", 1, "m"}};
  auto diff = tsg::lint::diff_baseline(diags, baseline);
  EXPECT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.grandfathered, 0);
}

}  // namespace
