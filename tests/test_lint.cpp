// Tests for the tsg-lint rule engine (tools/tsg_lint). Every rule is
// exercised with at least one firing fixture and one clean fixture, and the
// suppression comments are covered as a mechanism of their own.
//
// Fixtures live in raw strings: the lexer never tokenizes string contents,
// so the violations quoted here cannot fire on this file itself when
// `tsg_lint tests` runs over the tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tsg_lint/lint.h"

namespace {

using tsg::lint::Diagnostic;
using tsg::lint::Options;

std::vector<Diagnostic> run(const std::string& path, std::string_view src,
                            tsg::lint::LintStats* stats = nullptr) {
  return tsg::lint::lint_source(path, src, Options{}, stats);
}

int count_rule(const std::vector<Diagnostic>& diags, std::string_view rule) {
  return static_cast<int>(std::count_if(
      diags.begin(), diags.end(), [&](const Diagnostic& d) { return d.rule == rule; }));
}

// ---------------------------------------------------------------------------
// raw-alloc
// ---------------------------------------------------------------------------

TEST(RawAlloc, FiresOnMallocAndArrayNew) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(std::size_t n) {
      void* p = malloc(n);
      int* a = new int[8];
    }
  )");
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 2);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(RawAlloc, CleanOnTrackedAllocationAndScalarNew) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(std::size_t n) {
      tsg::tracked_vector<int> v(n);
      auto w = std::make_unique<Widget>();
      auto* s = new Widget(n);
    }
  )");
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 0);
}

TEST(RawAlloc, MemoryLayerIsExempt) {
  const std::string_view src = R"(
    void* raw = malloc(bytes);
  )";
  EXPECT_EQ(count_rule(run("src/common/memory.cpp", src), "raw-alloc"), 0);
  EXPECT_EQ(count_rule(run("src/core/other.cpp", src), "raw-alloc"), 1);
}

TEST(RawAlloc, MemberNamedMallocIsNotACall) {
  const auto diags = run("a.cpp", R"(
    arena.malloc(n);
    pool->calloc(a, b);
  )");
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 0);
}

// ---------------------------------------------------------------------------
// unchecked-size-mul
// ---------------------------------------------------------------------------

TEST(UncheckedSizeMul, FiresOnResizeProduct) {
  const auto diags = run("a.cpp", R"(
    void f(std::vector<int>& v, std::size_t rows, std::size_t cols) {
      v.resize(rows * cols);
    }
  )");
  ASSERT_EQ(count_rule(diags, "unchecked-size-mul"), 1);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(UncheckedSizeMul, FiresInsideMallocAndNewBrackets) {
  // The allocation sites themselves also trip raw-alloc; count only the
  // size rule here.
  const auto diags = run("src/common/memory.cpp", R"(
    void* p = malloc(n * sizeof(int));
    int* a = new int[rows * cols];
  )");
  EXPECT_EQ(count_rule(diags, "unchecked-size-mul"), 2);
}

TEST(UncheckedSizeMul, CleanWhenRoutedThroughCheckedHelpers) {
  const auto diags = run("a.cpp", R"(
    v.resize(tsg::checked_size_mul(rows, cols));
    v.reserve(n);
    w.assign(count, 0);
  )");
  EXPECT_EQ(count_rule(diags, "unchecked-size-mul"), 0);
}

TEST(UncheckedSizeMul, DereferenceAndCompoundAssignAreNotMultiplies) {
  const auto diags = run("a.cpp", R"(
    v.resize(*size_ptr);
    v.resize(n *= 2);
  )");
  EXPECT_EQ(count_rule(diags, "unchecked-size-mul"), 0);
}

// ---------------------------------------------------------------------------
// discarded-status
// ---------------------------------------------------------------------------

TEST(DiscardedStatus, FiresOnBareTryCall) {
  const auto diags = run("a.cpp", R"(
    void f() {
      try_reserve(buf, n);
      ctx.try_run(a, b, &c);
    }
  )");
  EXPECT_EQ(count_rule(diags, "discarded-status"), 2);
}

TEST(DiscardedStatus, CleanWhenResultIsConsumed) {
  const auto diags = run("a.cpp", R"(
    tsg::Status g() {
      auto st = try_reserve(buf, n);
      if (!try_convert(m).ok()) return fail();
      return try_run(a, b, &c);
    }
  )");
  EXPECT_EQ(count_rule(diags, "discarded-status"), 0);
}

// ---------------------------------------------------------------------------
// throw-in-parallel
// ---------------------------------------------------------------------------

TEST(ThrowInParallel, FiresInsideParallelForBodyInCore) {
  const auto diags = run("src/core/step9.cpp", R"(
    void f() {
      tsg::parallel_for(index_t{0}, n, [&](index_t i) {
        if (bad(i)) throw std::runtime_error("boom");
      });
    }
  )");
  ASSERT_EQ(count_rule(diags, "throw-in-parallel"), 1);
  EXPECT_EQ(diags[0].line, 4);
}

TEST(ThrowInParallel, CleanOutsideBodyAndOutsideCore) {
  // A throw before/after the parallel region is fine...
  const auto in_core = run("src/core/step9.cpp", R"(
    void f() {
      if (n < 0) throw std::invalid_argument("n");
      tsg::parallel_for(index_t{0}, n, [&](index_t i) { work(i); });
    }
  )");
  EXPECT_EQ(count_rule(in_core, "throw-in-parallel"), 0);

  // ...and the rule is scoped to src/core: tests may throw wherever.
  const auto in_tests = run("tests/test_x.cpp", R"(
    tsg::parallel_for(0, n, [&](int i) { throw std::runtime_error("x"); });
  )");
  EXPECT_EQ(count_rule(in_tests, "throw-in-parallel"), 0);
}

// ---------------------------------------------------------------------------
// trace-span-pairing
// ---------------------------------------------------------------------------

TEST(TraceSpanPairing, FiresOnUnbalancedSpan) {
  const auto diags = run("a.cpp", R"(
    void f() {
      TSG_TRACE_BEGIN("step2");
      work();
    }
  )");
  EXPECT_EQ(count_rule(diags, "trace-span-pairing"), 1);
}

TEST(TraceSpanPairing, CleanOnBalancedSpans) {
  const auto diags = run("a.cpp", R"(
    void f() {
      TSG_TRACE_BEGIN("step2");
      TSG_TRACE_BEGIN("probe", nnz);
      work();
      TSG_TRACE_END("probe");
      TSG_TRACE_END("step2");
    }
  )");
  EXPECT_EQ(count_rule(diags, "trace-span-pairing"), 0);
}

TEST(TraceSpanPairing, NonLiteralNameIsItsOwnFinding) {
  const auto diags = run("a.cpp", R"(
    void f(const char* name) {
      TSG_TRACE_BEGIN(name);
      TSG_TRACE_END(name);
    }
  )");
  EXPECT_EQ(count_rule(diags, "trace-span-pairing"), 2);
}

// ---------------------------------------------------------------------------
// unbounded-wait
// ---------------------------------------------------------------------------

TEST(UnboundedWait, FiresOnNakedGetAndPredicatelessWait) {
  const auto diags = run("src/service/foo.cpp", R"(
    void f(std::future<int>& fut, std::condition_variable& cv,
           std::unique_lock<std::mutex>& lk) {
      int v = fut.get();
      cv.wait(lk);
      fut.wait();
    }
  )");
  EXPECT_EQ(count_rule(diags, "unbounded-wait"), 3);
  EXPECT_EQ(diags[0].line, 4);
}

TEST(UnboundedWait, CleanOnBoundedAndPredicatedWaits) {
  const auto diags = run("tests/test_foo.cpp", R"(
    void f(std::future<int>& fut, std::condition_variable& cv,
           std::unique_lock<std::mutex>& lk, bool& done) {
      (void)fut.wait_for(std::chrono::seconds(1));
      cv.wait(lk, [&] { return done; });
      cv.wait_until(lk, deadline);
      int v = test::await(fut);
    }
  )");
  EXPECT_EQ(count_rule(diags, "unbounded-wait"), 0);
}

TEST(UnboundedWait, ScopedToServiceAndTests) {
  // The rule is a service-layer liveness invariant: the same naked get() in
  // src/core (where futures do not appear) must not fire.
  const std::string_view src = R"(
    int v = fut.get();
  )";
  EXPECT_EQ(count_rule(run("src/core/foo.cpp", src), "unbounded-wait"), 0);
  EXPECT_EQ(count_rule(run("src/service/foo.cpp", src), "unbounded-wait"), 1);
  EXPECT_EQ(count_rule(run("tests/foo.cpp", src), "unbounded-wait"), 1);
}

TEST(UnboundedWait, SuppressibleWithRationale) {
  const auto diags = run("src/service/foo.cpp", R"(
    int v = fut.get();  // tsg-lint: allow(unbounded-wait) -- readiness checked above
  )");
  EXPECT_EQ(count_rule(diags, "unbounded-wait"), 0);
}

// ---------------------------------------------------------------------------
// banned-fn
// ---------------------------------------------------------------------------

TEST(BannedFn, FiresOnRandAndSprintf) {
  const auto diags = run("a.cpp", R"(
    int f(char* out) {
      sprintf(out, "%d", 42);
      return rand();
    }
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 2);
}

TEST(BannedFn, CleanOnSafeAlternativesAndMembers) {
  const auto diags = run("a.cpp", R"(
    int f(char* out, std::size_t n, Rng& gen) {
      snprintf(out, n, "%d", 42);
      return gen.rand();
    }
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
}

// ---------------------------------------------------------------------------
// raw-log
// ---------------------------------------------------------------------------

TEST(RawLog, FiresOnPrintfFamilyAndStreamsInLibraryCode) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(int n) {
      fprintf(stderr, "n=%d\n", n);
      std::cerr << "oops" << std::endl;
    }
  )");
  ASSERT_EQ(count_rule(diags, "raw-log"), 2);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(RawLog, LoggerSinkItselfIsExempt) {
  const std::string_view src = R"(
    void flush_line(const std::string& line) {
      fprintf(out, "%s\n", line.c_str());
      if (!out) std::cerr << line << "\n";
    }
  )";
  EXPECT_EQ(count_rule(run("src/obs/log.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("src/obs/trace.cpp", src), "raw-log"), 2);
}

TEST(RawLog, ScopedToLibrarySources) {
  // CLI, benches, tools, and tests talk to humans on stdout/stderr; only
  // src/ must route diagnostics through the structured logger.
  const std::string_view src = R"(
    printf("rows=%d\n", rows);
    std::cout << "done\n";
  )";
  EXPECT_EQ(count_rule(run("tools/tilespgemm_cli.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("bench/bench_fig10.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("tests/test_foo.cpp", src), "raw-log"), 0);
  EXPECT_EQ(count_rule(run("src/service/foo.cpp", src), "raw-log"), 2);
}

TEST(RawLog, CleanOnBoundedFormattersAndMembers) {
  const auto diags = run("src/core/foo.cpp", R"(
    void f(char* buf, std::size_t n, Writer& w) {
      snprintf(buf, n, "%d", 42);
      w.printf("%d", 42);
      sink->fprintf(fmt);
    }
  )");
  EXPECT_EQ(count_rule(diags, "raw-log"), 0);
}

// ---------------------------------------------------------------------------
// Suppression mechanism
// ---------------------------------------------------------------------------

TEST(Suppression, TrailingCommentSilencesTheLine) {
  tsg::lint::LintStats stats;
  const auto diags = run("a.cpp", R"(
    int x = rand();  // tsg-lint: allow(banned-fn) -- fixture, not product code
  )",
                         &stats);
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
  EXPECT_EQ(stats.suppressed, 1);
}

TEST(Suppression, CommentAboveSilencesTheNextLine) {
  const auto diags = run("a.cpp", R"(
    // tsg-lint: allow(banned-fn)
    int x = rand();
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
}

TEST(Suppression, DoesNotLeakToOtherLinesOrRules) {
  const auto diags = run("a.cpp", R"(
    // tsg-lint: allow(banned-fn)
    int x = rand();
    int y = rand();
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 1);

  const auto wrong_rule = run("a.cpp", R"(
    int x = rand();  // tsg-lint: allow(raw-alloc)
  )");
  EXPECT_EQ(count_rule(wrong_rule, "banned-fn"), 1);
}

TEST(Suppression, WildcardAndListForms) {
  const auto diags = run("a.cpp", R"(
    int x = rand();  // tsg-lint: allow(*)
    v.resize(a * b);  // tsg-lint: allow(unchecked-size-mul, banned-fn)
  )");
  EXPECT_TRUE(diags.empty());
}

TEST(Suppression, AllowFileCoversTheWholeFile) {
  const auto diags = run("a.cpp", R"(
    // tsg-lint: allow-file(banned-fn)
    int f() { return rand(); }
    int g() { return rand(); }
  )");
  EXPECT_EQ(count_rule(diags, "banned-fn"), 0);
}

// ---------------------------------------------------------------------------
// Engine / lexer behaviour
// ---------------------------------------------------------------------------

TEST(Engine, ViolationsInCommentsAndStringsDoNotFire) {
  const auto diags = run("a.cpp",
                         "// int x = rand();\n"
                         "/* void* p = malloc(n); */\n"
                         "const char* doc = \"never call sprintf(buf, fmt)\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(Engine, PreprocessorLinesAreInvisible) {
  // The trace macro *definitions* (and any #if'd-out branch) must not count
  // as span begins/ends.
  const auto diags = run("a.cpp", R"(
#define MY_SPAN() TSG_TRACE_BEGIN("x")
#define MY_SPAN_DONE() TSG_TRACE_END("y")
  )");
  EXPECT_TRUE(diags.empty());
}

TEST(Engine, OnlyRulesFilterRestrictsTheRun) {
  Options only;
  only.only_rules.insert("banned-fn");
  const auto diags = tsg::lint::lint_source("a.cpp", R"(
    void* p = malloc(rand());
  )",
                                            only);
  EXPECT_EQ(count_rule(diags, "banned-fn"), 1);
  EXPECT_EQ(count_rule(diags, "raw-alloc"), 0);
}

TEST(Engine, RuleCatalogueNamesAreUniqueAndStable) {
  const auto& rules = tsg::lint::rule_catalogue();
  ASSERT_EQ(rules.size(), 8u);
  std::vector<std::string> names;
  names.reserve(rules.size());
  for (const auto& r : rules) names.push_back(r.name);
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-alloc"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "trace-span-pairing"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "unbounded-wait"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-log"), names.end());
}

}  // namespace
