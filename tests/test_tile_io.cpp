// Binary serialisation of the tile format, and the tile-native AA^T path.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/tile_io.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/transpose.h"
#include "test_support.h"

namespace tsg {
namespace {

TEST(TileIo, StreamRoundTripDouble) {
  for (auto make : {test::make_er_small, test::make_band, test::make_blocks,
                    test::make_rmat_small, test::make_hyper_sparse}) {
    const Csr<double> a = make();
    const TileMatrix<double> t = csr_to_tile(a);
    std::stringstream buf;
    write_tile_binary(buf, t);
    const TileMatrix<double> back = read_tile_binary<double>(buf);
    ASSERT_TRUE(back.validate().empty()) << back.validate();
    test::expect_equal(a, tile_to_csr(back), "tile io round trip", 1e-15);
  }
}

TEST(TileIo, StreamRoundTripFloat) {
  const Csr<float> a = gen::cast_values<float>(gen::banded(100, 4, 1));
  const TileMatrix<float> t = csr_to_tile(a);
  std::stringstream buf;
  write_tile_binary(buf, t);
  const TileMatrix<float> back = read_tile_binary<float>(buf);
  EXPECT_EQ(back.nnz(), t.nnz());
  EXPECT_TRUE(back.validate().empty());
}

TEST(TileIo, FileRoundTrip) {
  const Csr<double> a = gen::rmat(8, 5.0, 2);
  const std::string path = ::testing::TempDir() + "/tsg_tile_io.bin";
  write_tile_file(path, csr_to_tile(a));
  const TileMatrix<double> back = read_tile_file<double>(path);
  test::expect_equal(a, tile_to_csr(back), "tile file round trip", 1e-15);
}

TEST(TileIo, EmptyMatrixRoundTrip) {
  const TileMatrix<double> t = csr_to_tile(Csr<double>(33, 47));
  std::stringstream buf;
  write_tile_binary(buf, t);
  const TileMatrix<double> back = read_tile_binary<double>(buf);
  EXPECT_EQ(back.rows, 33);
  EXPECT_EQ(back.cols, 47);
  EXPECT_EQ(back.num_tiles(), 0);
}

TEST(TileIo, RejectsCorruptedInput) {
  const TileMatrix<double> t = csr_to_tile(gen::banded(50, 2, 3));
  {
    std::stringstream buf;
    write_tile_binary(buf, t);
    std::string payload = buf.str();
    payload[0] ^= 0x5A;  // break the magic
    std::istringstream in(payload);
    EXPECT_THROW(read_tile_binary<double>(in), std::runtime_error);
  }
  {
    std::stringstream buf;
    write_tile_binary(buf, t);
    std::string payload = buf.str();
    payload.resize(payload.size() / 2);  // truncate
    std::istringstream in(payload);
    EXPECT_THROW(read_tile_binary<double>(in), std::runtime_error);
  }
  {
    // Value-type mismatch: written as double, read as float.
    std::stringstream buf;
    write_tile_binary(buf, t);
    EXPECT_THROW(read_tile_binary<float>(buf), std::runtime_error);
  }
}

TEST(TileIo, RejectsInternallyInconsistentPayload) {
  TileMatrix<double> t = csr_to_tile(gen::banded(50, 2, 4));
  t.mask[0] ^= 1;  // violate mask/index consistency
  std::stringstream buf;
  write_tile_binary(buf, t);
  EXPECT_THROW(read_tile_binary<double>(buf), std::runtime_error);
}

TEST(TileIo, MissingFileThrows) {
  EXPECT_THROW(read_tile_file<double>("/no/such/tile.bin"), std::runtime_error);
}

// ---------------------------------------------------------------- AA^T --

TEST(TileAat, MatchesCsrTransposePath) {
  for (std::uint64_t seed : {10ull, 11ull, 12ull}) {
    const Csr<double> a = gen::erdos_renyi(130, 90, 900, seed);
    const TileSpgemmResult<double> res = tile_spgemm_aat(csr_to_tile(a));
    ASSERT_TRUE(res.c.validate().empty()) << res.c.validate();
    const Csr<double> expected = spgemm_reference(a, transpose(a));
    test::expect_equal(expected, tile_to_csr(res.c), "aat");
  }
}

TEST(TileAat, ResultIsSymmetricForSquareInput) {
  const Csr<double> a = gen::rmat(8, 4.0, 13);
  const TileSpgemmResult<double> res = tile_spgemm_aat(csr_to_tile(a));
  const Csr<double> c = tile_to_csr(res.c);
  test::expect_equal(c, transpose(c), "aat symmetry");
}

}  // namespace
}  // namespace tsg
