#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/prefix_sum.h"
#include "common/random.h"

namespace tsg {
namespace {

TEST(PrefixSum, EmptyAndSingle) {
  std::vector<int> v;
  EXPECT_EQ(exclusive_scan_inplace(v), 0);
  v = {7};
  EXPECT_EQ(exclusive_scan_inplace(v), 7);
  EXPECT_EQ(v[0], 0);
}

TEST(PrefixSum, KnownSequence) {
  std::vector<int> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(exclusive_scan_inplace(v), 15);
  EXPECT_EQ(v, (std::vector<int>{0, 1, 3, 6, 10}));
}

TEST(PrefixSum, ParallelMatchesSerialSmall) {
  std::vector<std::int64_t> a(1000), b;
  Xoshiro256 rng(1);
  for (auto& x : a) x = static_cast<std::int64_t>(rng.next_below(100));
  b = a;
  const auto ts = exclusive_scan_inplace(a);
  const auto tp = parallel_exclusive_scan_inplace(b);
  EXPECT_EQ(ts, tp);
  EXPECT_EQ(a, b);
}

TEST(PrefixSum, ParallelMatchesSerialLarge) {
  // Above the serial cutoff so the blocked path actually runs.
  std::vector<std::int64_t> a(1 << 17), b;
  Xoshiro256 rng(2);
  for (auto& x : a) x = static_cast<std::int64_t>(rng.next_below(7));
  b = a;
  const auto ts = exclusive_scan_inplace(a);
  const auto tp = parallel_exclusive_scan_inplace(b);
  EXPECT_EQ(ts, tp);
  EXPECT_EQ(a, b);
}

TEST(PrefixSum, AllZeros) {
  std::vector<std::int64_t> v(100000, 0);
  EXPECT_EQ(parallel_exclusive_scan_inplace(v), 0);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](auto x) { return x == 0; }));
}

}  // namespace
}  // namespace tsg
