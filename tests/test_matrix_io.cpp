// Matrix Market parser/writer (artifact appendix A.5: "our matrix parser
// currently only supports input files in the matrix market format").
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/status.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/io_mm.h"
#include "test_support.h"

namespace tsg {
namespace {

TEST(MatrixMarket, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "3 4 -1.0\n"
      "2 2 7\n");
  const Coo<double> coo = read_matrix_market<double>(in);
  EXPECT_EQ(coo.rows, 3);
  EXPECT_EQ(coo.cols, 4);
  ASSERT_EQ(coo.nnz(), 3);
  const Csr<double> a = coo_to_csr(coo);
  EXPECT_DOUBLE_EQ(a.val[a.row_ptr[0]], 2.5);
  EXPECT_EQ(a.col_idx[a.row_ptr[2]], 3);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 4.0\n"
      "3 2 5.0\n");
  const Csr<double> a = coo_to_csr(read_matrix_market<double>(in));
  EXPECT_EQ(a.nnz(), 5);  // diagonal kept once, off-diagonals mirrored
  EXPECT_DOUBLE_EQ(a.val[a.row_ptr[0]], 1.0);
  // (1,2) mirror of (2,1):
  bool found = false;
  for (offset_t k = a.row_ptr[0]; k < a.row_ptr[1]; ++k) {
    if (a.col_idx[k] == 1) {
      EXPECT_DOUBLE_EQ(a.val[k], 4.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MatrixMarket, ExpandsSkewSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const Csr<double> a = coo_to_csr(read_matrix_market<double>(in));
  ASSERT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.val[a.row_ptr[0]], -3.0);  // mirrored negated
  EXPECT_DOUBLE_EQ(a.val[a.row_ptr[1]], 3.0);
}

TEST(MatrixMarket, PatternEntriesReadAsOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const Csr<double> a = coo_to_csr(read_matrix_market<double>(in));
  ASSERT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.val[0], 1.0);
  EXPECT_DOUBLE_EQ(a.val[1], 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 -42\n");
  const Csr<double> a = coo_to_csr(read_matrix_market<double>(in));
  EXPECT_DOUBLE_EQ(a.val[0], -42.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  {
    std::istringstream in("not a banner\n1 1 0\n");
    EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
    EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
    EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);  // out of bounds
  }
  {
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market<double>(in), std::runtime_error);  // truncated
  }
}

// --- Structured failures (ISSUE 2): every loader error is a tsg::Error
// carrying a Status with the 1-based line number of the offending line. ---

/// Parse `text` expecting a failure; returns the carried Status.
Status status_of(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)read_matrix_market<double>(in);
  } catch (const Error& e) {
    return e.status();
  }
  ADD_FAILURE() << "parse unexpectedly succeeded";
  return Status{};
}

TEST(MatrixMarket, ErrorsCarryIoStatusWithLineNumbers) {
  const Status banner = status_of("not a banner\n1 1 0\n");
  EXPECT_EQ(banner.code(), StatusCode::kIoError);
  EXPECT_NE(banner.message().find("(line 1)"), std::string::npos) << banner.to_string();

  const Status bounds = status_of(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
  EXPECT_EQ(bounds.code(), StatusCode::kIoError);
  EXPECT_NE(bounds.message().find("(line 3)"), std::string::npos) << bounds.to_string();
  EXPECT_NE(bounds.message().find("out of bounds"), std::string::npos);
}

TEST(MatrixMarket, RejectsDuplicateEntries) {
  const Status dup = status_of(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 2 2.0\n"
      "1 1 9.0\n");
  EXPECT_EQ(dup.code(), StatusCode::kIoError);
  EXPECT_NE(dup.message().find("duplicate entry (1, 1)"), std::string::npos)
      << dup.to_string();
  EXPECT_NE(dup.message().find("(line 5)"), std::string::npos) << dup.to_string();
}

TEST(MatrixMarket, RejectsBothTrianglesOfASymmetricFile) {
  // A symmetric file stores one triangle; listing (2,1) and (1,2) would
  // silently double the mirrored value if accepted.
  const Status dup = status_of(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 4.0\n"
      "1 2 4.0\n");
  EXPECT_EQ(dup.code(), StatusCode::kIoError);
  EXPECT_NE(dup.message().find("duplicate entry"), std::string::npos) << dup.to_string();
}

TEST(MatrixMarket, RejectsDimensionsBeyondIndexRange) {
  const Status big = status_of(
      "%%MatrixMarket matrix coordinate real general\n"
      "4294967296 2 1\n"
      "1 1 1.0\n");
  EXPECT_EQ(big.code(), StatusCode::kIndexOverflow);
  EXPECT_NE(big.message().find("index_t"), std::string::npos) << big.to_string();
}

TEST(MatrixMarket, RejectsEntryCountBeyondCapacity) {
  const Status over = status_of(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 5\n"
      "1 1 1.0\n1 2 1.0\n2 1 1.0\n2 2 1.0\n1 1 1.0\n");
  EXPECT_EQ(over.code(), StatusCode::kIoError);
  EXPECT_NE(over.message().find("exceeds rows*cols"), std::string::npos)
      << over.to_string();
}

TEST(MatrixMarket, MissingFileCarriesIoStatus) {
  try {
    (void)read_matrix_market_file<double>("/nonexistent/path.mtx");
    FAIL() << "open unexpectedly succeeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kIoError);
    EXPECT_NE(e.status().message().find("/nonexistent/path.mtx"), std::string::npos);
  }
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const Csr<double> a = gen::erdos_renyi(37, 53, 250, 31);
  std::stringstream buf;
  write_matrix_market(buf, a);
  const Csr<double> back = coo_to_csr(read_matrix_market<double>(buf));
  test::expect_equal(a, back, "mm round trip", 1e-15);
}

TEST(MatrixMarket, FileRoundTrip) {
  const Csr<double> a = gen::banded(64, 3, 32);
  const std::string path = ::testing::TempDir() + "/tsg_io_test.mtx";
  write_matrix_market_file(path, a);
  const Csr<double> back = coo_to_csr(read_matrix_market_file<double>(path));
  test::expect_equal(a, back, "mm file round trip", 1e-15);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file<double>("/nonexistent/path.mtx"), std::runtime_error);
}

}  // namespace
}  // namespace tsg
