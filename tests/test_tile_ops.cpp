// Extensions on the tile format: SpMV, addition, masked SpGEMM, and the
// input-aware dispatcher.
#include <gtest/gtest.h>

#include "baselines/auto_select.h"
#include "baselines/reference.h"
#include "common/random.h"
#include "core/masked_spgemm.h"
#include "core/tile_add.h"
#include "core/tile_convert.h"
#include "core/tile_spmm.h"
#include "core/tile_spmv.h"
#include "core/tile_transpose.h"
#include "matrix/transpose.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "matrix/spmv.h"
#include "test_support.h"

namespace tsg {
namespace {

// ------------------------------------------------------------------ SpMV --

class TileSpmvSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TileSpmvSweep, MatchesCsrSpmv) {
  const Csr<double> a = gen::erdos_renyi(150 + 7 * static_cast<index_t>(GetParam()),
                                         90 + 11 * static_cast<index_t>(GetParam()), 1200,
                                         GetParam());
  const TileMatrix<double> t = csr_to_tile(a);
  tracked_vector<double> x(static_cast<std::size_t>(a.cols));
  Xoshiro256 rng(GetParam() + 99);
  for (auto& v : x) v = rng.next_double() - 0.5;

  tracked_vector<double> y_csr, y_tile;
  spmv(a, x, y_csr);
  tile_spmv(t, x, y_tile);
  ASSERT_EQ(y_csr.size(), y_tile.size());
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    EXPECT_NEAR(y_csr[i], y_tile[i], 1e-10) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TileSpmvSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(TileSpmv, IdentityActsAsCopy) {
  const Csr<double> i = identity<double>(77);
  const TileMatrix<double> t = csr_to_tile(i);
  tracked_vector<double> x(77);
  for (std::size_t k = 0; k < 77; ++k) x[k] = static_cast<double>(k) * 0.25;
  tracked_vector<double> y;
  tile_spmv(t, x, y);
  EXPECT_EQ(x, y);
}

TEST(TileSpmv, SizeMismatchThrows) {
  const TileMatrix<double> t = csr_to_tile(gen::banded(40, 2, 5));
  tracked_vector<double> x(39), y;
  EXPECT_THROW(tile_spmv(t, x, y), std::invalid_argument);
}

TEST(TileSpmv, EmptyMatrixGivesZeroVector) {
  const TileMatrix<double> t = csr_to_tile(Csr<double>(30, 20));
  tracked_vector<double> x(20, 1.0), y;
  tile_spmv(t, x, y);
  ASSERT_EQ(y.size(), 30u);
  for (double v : y) EXPECT_EQ(v, 0.0);
}

// -------------------------------------------------------------- tile add --

class TileAddSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TileAddSweep, MatchesCsrAdd) {
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(130, 110, 800, seed);
  const Csr<double> b = gen::erdos_renyi(130, 110, 700, seed + 10);
  const Csr<double> expected = add(a, b, 2.0, -0.5);
  const TileMatrix<double> tc = tile_add(csr_to_tile(a), csr_to_tile(b), 2.0, -0.5);
  ASSERT_TRUE(tc.validate().empty()) << tc.validate();
  test::expect_equal(expected, tile_to_csr(tc), "tile_add");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TileAddSweep, ::testing::Values(11u, 12u, 13u, 14u));

TEST(TileAdd, DisjointAndIdenticalPatterns) {
  // Disjoint: nnz adds up.
  Coo<double> c1, c2;
  c1.rows = c1.cols = c2.rows = c2.cols = 40;
  for (index_t i = 0; i < 40; i += 2) c1.push_back(i, i, 1.0);
  for (index_t i = 1; i < 40; i += 2) c2.push_back(i, i, 2.0);
  const TileMatrix<double> sum =
      tile_add(csr_to_tile(coo_to_csr(std::move(c1))), csr_to_tile(coo_to_csr(std::move(c2))));
  EXPECT_EQ(sum.nnz(), 40);

  // Identical: A + (-1)*A has A's pattern with zero values (no pruning).
  const Csr<double> a = gen::banded(50, 3, 21);
  const TileMatrix<double> z = tile_add(csr_to_tile(a), csr_to_tile(a), 1.0, -1.0);
  EXPECT_EQ(z.nnz(), a.nnz());
  const Csr<double> zc = tile_to_csr(z);
  for (double v : zc.val) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(TileAdd, ShapeMismatchThrows) {
  const TileMatrix<double> a = csr_to_tile(gen::banded(30, 2, 22));
  const TileMatrix<double> b = csr_to_tile(gen::banded(31, 2, 23));
  EXPECT_THROW(tile_add(a, b), std::invalid_argument);
}

// --------------------------------------------------------- masked SpGEMM --

class MaskedSpgemmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaskedSpgemmSweep, EqualsHadamardOfFullProduct) {
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(120, 120, 900, seed + 30);
  const Csr<double> m = gen::erdos_renyi(120, 120, 500, seed + 31);
  const Csr<double> full = spgemm_reference(a, a);
  const Csr<double> expected = structural_mask(full, m);
  const Csr<double> actual = spgemm_tile_masked(a, a, m);
  test::expect_equal(expected, actual, "masked spgemm");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedSpgemmSweep, ::testing::Values(1u, 2u, 3u));

TEST(MaskedSpgemm, TriangleCountingFormulation) {
  // count = sum((L*L) .* L) — masked product never materialises L*L.
  Csr<double> g = gen::symmetrized(gen::erdos_renyi(200, 200, 1500, 41));
  for (auto& v : g.val) v = 1.0;
  const Csr<double> l = tril_strict(g);
  const Csr<double> masked = spgemm_tile_masked(l, l, l);
  const Csr<double> expected = structural_mask(spgemm_reference(l, l), l);
  EXPECT_NEAR(value_sum(masked), value_sum(expected), 1e-9);
}

TEST(MaskedSpgemm, EmptyMaskGivesEmptyResult) {
  const Csr<double> a = gen::banded(60, 4, 42);
  const Csr<double> empty(60, 60);
  EXPECT_EQ(spgemm_tile_masked(a, a, empty).nnz(), 0);
}

TEST(MaskedSpgemm, FullMaskEqualsUnmaskedProduct) {
  const Csr<double> a = gen::erdos_renyi(70, 70, 500, 43);
  // Dense mask (all ones).
  Coo<double> coo;
  coo.rows = coo.cols = 70;
  for (index_t i = 0; i < 70; ++i) {
    for (index_t j = 0; j < 70; ++j) coo.push_back(i, j, 1.0);
  }
  const Csr<double> full_mask = coo_to_csr(std::move(coo));
  test::expect_equal(spgemm_reference(a, a), spgemm_tile_masked(a, a, full_mask),
                     "full mask");
}

TEST(MaskedSpgemm, ShapeChecks) {
  const Csr<double> a = gen::erdos_renyi(20, 30, 100, 44);
  const Csr<double> b = gen::erdos_renyi(30, 25, 100, 45);
  const Csr<double> bad_mask = gen::erdos_renyi(20, 30, 50, 46);
  EXPECT_THROW(spgemm_tile_masked(a, b, bad_mask), tsg::Error);
}

// -------------------------------------------------------- tile transpose --

class TileTransposeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TileTransposeSweep, MatchesCsrTranspose) {
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(140, 95, 1000, seed + 60);
  const TileMatrix<double> t = tile_transpose(csr_to_tile(a));
  ASSERT_TRUE(t.validate().empty()) << t.validate();
  test::expect_equal(transpose(a), tile_to_csr(t), "tile transpose", 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TileTransposeSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(TileTranspose, DoubleTransposeIsIdentity) {
  const Csr<double> a = gen::rmat(9, 5.0, 71);
  const TileMatrix<double> t = csr_to_tile(a);
  const TileMatrix<double> tt = tile_transpose(tile_transpose(t));
  ASSERT_TRUE(tt.validate().empty()) << tt.validate();
  test::expect_equal(a, tile_to_csr(tt), "transpose^2", 1e-15);
}

TEST(TileTranspose, FullTile) {
  const Csr<double> a = gen::dense_blocks(1, 16, 72);
  const TileMatrix<double> t = tile_transpose(csr_to_tile(a));
  EXPECT_EQ(t.nnz(), 256);
  test::expect_equal(transpose(a), tile_to_csr(t), "full tile transpose", 1e-15);
}

TEST(TileTranspose, EmptyAndRectangular) {
  const TileMatrix<double> e = tile_transpose(csr_to_tile(Csr<double>(33, 20)));
  EXPECT_EQ(e.rows, 20);
  EXPECT_EQ(e.cols, 33);
  EXPECT_EQ(e.nnz(), 0);
}

// -------------------------------------------------------------- tile SpMM --

TEST(TileSpmm, MatchesColumnwiseSpmv) {
  const Csr<double> a = gen::erdos_renyi(90, 60, 700, 81);
  const TileMatrix<double> t = csr_to_tile(a);
  DenseMatrix<double> x(60, 5);
  Xoshiro256 rng(82);
  for (auto& v : x.data) v = rng.next_double() - 0.5;

  const DenseMatrix<double> y = tile_spmm(t, x);
  ASSERT_EQ(y.rows, 90);
  ASSERT_EQ(y.cols, 5);

  for (index_t c = 0; c < 5; ++c) {
    tracked_vector<double> xc(60), yc;
    for (index_t r = 0; r < 60; ++r) xc[static_cast<std::size_t>(r)] = x.at(r, c);
    spmv(a, xc, yc);
    for (index_t r = 0; r < 90; ++r) {
      ASSERT_NEAR(yc[static_cast<std::size_t>(r)], y.at(r, c), 1e-10)
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(TileSpmm, SingleColumnEqualsSpmv) {
  const Csr<double> a = gen::banded(128, 6, 83);
  const TileMatrix<double> t = csr_to_tile(a);
  DenseMatrix<double> x(128, 1);
  for (index_t r = 0; r < 128; ++r) x.at(r, 0) = 1.0 + 0.01 * r;
  tracked_vector<double> xv(x.data.begin(), x.data.end()), yv;
  tile_spmv(t, xv, yv);
  const DenseMatrix<double> y = tile_spmm(t, x);
  for (index_t r = 0; r < 128; ++r) {
    ASSERT_NEAR(yv[static_cast<std::size_t>(r)], y.at(r, 0), 1e-12);
  }
}

TEST(TileSpmm, ShapeMismatchThrows) {
  const TileMatrix<double> t = csr_to_tile(gen::banded(40, 2, 84));
  EXPECT_THROW(tile_spmm(t, DenseMatrix<double>(41, 3)), std::invalid_argument);
}

// -------------------------------------------------------------- dispatch --

TEST(AutoSelect, PicksHashForHyperSparse) {
  const Csr<double> a = gen::erdos_renyi(4000, 4000, 6000, 51);  // ~1 nnz/tile
  SpgemmChoice choice;
  const Csr<double> c = spgemm_auto(a, a, &choice);
  EXPECT_EQ(choice, SpgemmChoice::kHash);
  test::expect_equal(spgemm_reference(a, a), c, "auto hyper-sparse");
}

TEST(AutoSelect, PicksTileForBlockedStructures) {
  const Csr<double> a = gen::dense_blocks(4, 24, 52);
  SpgemmChoice choice;
  const Csr<double> c = spgemm_auto(a, a, &choice);
  EXPECT_EQ(choice, SpgemmChoice::kTile);
  test::expect_equal(spgemm_reference(a, a), c, "auto blocked");
}

TEST(AutoSelect, FallsBackToTileWhenProductsExceedDevice) {
  // Hyper-sparse features but a huge product volume: hash would blow the
  // modeled device budget, so the dispatcher must pick tile.
  WorkloadFeatures f;
  f.avg_nnz_per_tile_a = 1.1;
  f.avg_nnz_per_tile_b = 1.2;
  f.products_fit_device = false;
  EXPECT_EQ(select_algorithm(f), SpgemmChoice::kTile);
  f.products_fit_device = true;
  EXPECT_EQ(select_algorithm(f), SpgemmChoice::kHash);
  f.avg_nnz_per_tile_a = 30.0;
  EXPECT_EQ(select_algorithm(f), SpgemmChoice::kTile);
}

TEST(AutoSelect, FeaturesAreSane) {
  const Csr<double> a = gen::dense_blocks(2, 16, 53);  // two full tiles
  const WorkloadFeatures f = analyze_workload(a, a);
  EXPECT_EQ(f.nnz_a, 512);
  EXPECT_DOUBLE_EQ(f.avg_nnz_per_tile_a, 256.0);
  EXPECT_EQ(f.intermediate_products, 512 * 16);
  EXPECT_TRUE(f.products_fit_device);
}

}  // namespace
}  // namespace tsg
