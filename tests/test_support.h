// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>

#include "baselines/reference.h"
#include "common/status.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/csr.h"

namespace tsg::test {

/// Bounded future wait: get() with a deadline, so a service bug (a worker
/// that never resolves a promise) fails the test instead of hanging the
/// whole suite until the ctest timeout. This is the sanctioned answer to
/// tsg-lint's unbounded-wait rule; the one naked get() below runs only
/// after the future is known ready.
template <class T>
T await(std::future<T>& future,
        std::chrono::milliseconds timeout = std::chrono::seconds(60)) {
  if (future.wait_for(timeout) != std::future_status::ready) {
    ADD_FAILURE() << "future not ready after " << timeout.count()
                  << " ms (worker lost or deadlocked)";
    throw Error(Status::deadline_exceeded("test await() timed out"));
  }
  return future.get();  // tsg-lint: allow(unbounded-wait) -- ready above
}

template <class T>
T await(std::future<T>&& future,
        std::chrono::milliseconds timeout = std::chrono::seconds(60)) {
  return await<T>(future, timeout);
}

/// Assert two CSR matrices are structurally identical with values equal to
/// a relative tolerance.
inline void expect_equal(const Csr<double>& expected, const Csr<double>& actual,
                         const std::string& context = {}, double rel_tol = 1e-10) {
  CompareOptions opt;
  opt.rel_tol = rel_tol;
  const CompareResult r = compare(expected, actual, opt);
  EXPECT_TRUE(r.equal) << context << ": " << r.message;
}

/// Validate any SpGEMM implementation against the serial reference on the
/// product C = A*B.
template <class Fn>
void check_against_reference(const Csr<double>& a, const Csr<double>& b, Fn&& fn,
                             const std::string& context = {}, double rel_tol = 1e-10) {
  const Csr<double> expected = spgemm_reference(a, b);
  const Csr<double> actual = fn(a, b);
  ASSERT_TRUE(actual.validate().empty()) << context << ": " << actual.validate();
  EXPECT_TRUE(actual.rows_sorted()) << context << ": rows not sorted";
  expect_equal(expected, actual, context, rel_tol);
}

/// A mixed bag of small-to-medium matrices exercising all structure classes;
/// used by the parameterised validation sweeps.
struct GenCase {
  std::string name;
  Csr<double> (*make)();
};

inline Csr<double> make_er_small() { return gen::erdos_renyi(97, 97, 400, 42); }
inline Csr<double> make_er_rect() { return gen::erdos_renyi(120, 75, 900, 43); }
inline Csr<double> make_er_dense() { return gen::erdos_renyi(64, 64, 2200, 44); }
inline Csr<double> make_rmat_small() { return gen::rmat(9, 4.0, 45); }
inline Csr<double> make_stencil() { return gen::stencil_5pt(23, 17); }
inline Csr<double> make_stencil9() { return gen::stencil_9pt(19, 21); }
inline Csr<double> make_band() { return gen::banded(300, 7, 46); }
inline Csr<double> make_band_wide() { return gen::banded(150, 40, 47); }
inline Csr<double> make_blocks() { return gen::dense_blocks(6, 20, 48); }
inline Csr<double> make_blocks_large() { return gen::dense_blocks(3, 50, 49); }
inline Csr<double> make_clustered() { return gen::clustered_rows(200, 3, 6, 50); }
inline Csr<double> make_hyper_sparse() { return gen::erdos_renyi(2000, 2000, 3000, 51); }

}  // namespace tsg::test
