#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"

namespace tsg {
namespace {

TEST(Timer, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.milliseconds(), b * 1e3);
}

TEST(Timer, MeasuresSleepRoughly) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.milliseconds();
  EXPECT_GE(ms, 15.0);   // scheduler slack downward
  EXPECT_LE(ms, 2000.0); // and a generous upper bound
}

TEST(Timer, ResetRestartsTheClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.milliseconds(), 10.0);
}

TEST(Timer, ScopedAccumulatorAddsLifetime) {
  double sink = 0.0;
  {
    ScopedAccumulator scope(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
  }
  EXPECT_GE(sink, 8.0);
  const double after_first = sink;
  {
    ScopedAccumulator scope(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
  }
  EXPECT_GE(sink, after_first + 8.0);  // accumulates, does not overwrite
}

}  // namespace
}  // namespace tsg
