// Algebraic property tests: identities that must hold for any correct
// SpGEMM regardless of implementation, checked across methods and
// structure classes.
#include <gtest/gtest.h>

#include "baselines/hash.h"
#include "baselines/reference.h"
#include "core/tile_spgemm.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "matrix/stats.h"
#include "matrix/transpose.h"
#include "test_support.h"

namespace tsg {
namespace {

using test::expect_equal;

// Value-level equality ignoring explicit zeros: different association
// orders can turn an exact zero into a tiny residual, so pattern-carrying
// identities are compared with pruning.
void expect_value_equal(const Csr<double>& x, const Csr<double>& y, const char* what) {
  CompareOptions opt;
  opt.rel_tol = 1e-9;
  opt.prune_zeros = true;
  opt.prune_tol = 1e-9;
  const CompareResult r = compare(x, y, opt);
  EXPECT_TRUE(r.equal) << what << ": " << r.message;
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, TransposeIdentity) {
  // (A*B)^T == B^T * A^T
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(70, 50, 400, seed);
  const Csr<double> b = gen::erdos_renyi(50, 66, 420, seed + 1000);
  const Csr<double> lhs = transpose(spgemm_tile(a, b));
  const Csr<double> rhs = spgemm_tile(transpose(b), transpose(a));
  expect_equal(lhs, rhs, "(AB)^T = B^T A^T");
}

TEST_P(PropertySweep, Associativity) {
  // (A*B)*C == A*(B*C) up to rounding.
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(40, 30, 200, seed);
  const Csr<double> b = gen::erdos_renyi(30, 45, 220, seed + 1);
  const Csr<double> c = gen::erdos_renyi(45, 35, 210, seed + 2);
  const Csr<double> lhs = spgemm_tile(spgemm_tile(a, b), c);
  const Csr<double> rhs = spgemm_tile(a, spgemm_tile(b, c));
  // Structures can differ in explicit zeros; compare pruned values.
  expect_value_equal(lhs, rhs, "(AB)C = A(BC)");
}

TEST_P(PropertySweep, LeftDistributivity) {
  // A*(B+C) == A*B + A*C.
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(48, 36, 250, seed + 10);
  const Csr<double> b = gen::erdos_renyi(36, 52, 260, seed + 11);
  const Csr<double> c = gen::erdos_renyi(36, 52, 240, seed + 12);
  const Csr<double> lhs = spgemm_tile(a, add(b, c));
  const Csr<double> rhs = add(spgemm_tile(a, b), spgemm_tile(a, c));
  expect_value_equal(lhs, rhs, "A(B+C) = AB+AC");
}

TEST_P(PropertySweep, ScalarPullsThrough) {
  // (alpha*A)*B == alpha*(A*B).
  const std::uint64_t seed = GetParam();
  Csr<double> a = gen::erdos_renyi(55, 55, 300, seed + 20);
  const Csr<double> b = gen::erdos_renyi(55, 55, 310, seed + 21);
  const Csr<double> ab = spgemm_tile(a, b);
  scale_inplace(a, 2.5);
  Csr<double> expected = ab;
  scale_inplace(expected, 2.5);
  expect_equal(expected, spgemm_tile(a, b), "(aA)B = a(AB)");
}

TEST_P(PropertySweep, NnzBounds) {
  // nnz(C) <= intermediate products, and nnz(C) <= rows*cols.
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::rmat(8, 5.0, seed + 30);
  const Csr<double> c = spgemm_tile(a, a);
  EXPECT_LE(c.nnz(), intermediate_products(a, a));
  EXPECT_LE(c.nnz(), static_cast<offset_t>(c.rows) * c.cols);
  EXPECT_EQ(c.nnz(), spgemm_reference(a, a).nnz());
}

TEST_P(PropertySweep, RowSumsMatchMatVec) {
  // (A*B)*1 == A*(B*1): row sums of the product equal A applied to B's row
  // sums — a cheap full-value integrity check independent of structure.
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(64, 48, 350, seed + 40);
  const Csr<double> b = gen::erdos_renyi(48, 57, 330, seed + 41);
  const Csr<double> c = spgemm_tile(a, b);

  std::vector<double> b_row_sums(static_cast<std::size_t>(b.rows), 0.0);
  for (index_t i = 0; i < b.rows; ++i) {
    for (offset_t k = b.row_ptr[i]; k < b.row_ptr[i + 1]; ++k) b_row_sums[i] += b.val[k];
  }
  for (index_t i = 0; i < a.rows; ++i) {
    double via_a = 0.0;
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      via_a += a.val[k] * b_row_sums[static_cast<std::size_t>(a.col_idx[k])];
    }
    double via_c = 0.0;
    for (offset_t k = c.row_ptr[i]; k < c.row_ptr[i + 1]; ++k) via_c += c.val[k];
    ASSERT_NEAR(via_a, via_c, 1e-9 * (std::abs(via_a) + 1.0)) << "row " << i;
  }
}

TEST_P(PropertySweep, AATIsSymmetric) {
  const std::uint64_t seed = GetParam();
  const Csr<double> a = gen::erdos_renyi(60, 44, 320, seed + 50);
  const Csr<double> aat = spgemm_tile(a, transpose(a));
  const Csr<double> aat_t = transpose(aat);
  expect_equal(aat, aat_t, "AA^T symmetric");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(Properties, PowersOfAdjacencyCountWalks) {
  // For a directed cycle 0->1->...->n-1->0, A^k has exactly n entries and
  // A^n = I (with value 1 when all weights are 1).
  const index_t n = 12;
  Coo<double> coo;
  coo.rows = coo.cols = n;
  for (index_t i = 0; i < n; ++i) coo.push_back(i, (i + 1) % n, 1.0);
  const Csr<double> a = coo_to_csr(std::move(coo));
  Csr<double> p = a;
  for (index_t k = 1; k < n; ++k) p = spgemm_tile(p, a);
  const Csr<double> eye = identity<double>(n);
  expect_equal(eye, p, "cycle^n = I");
}

TEST(Properties, AllMethodsAgreeWithEachOther) {
  // Cross-check: tile vs hash on a matrix big enough to hit parallel paths.
  const Csr<double> a = gen::rmat(11, 6.0, 99);
  const Csr<double> c1 = spgemm_tile(a, a);
  const Csr<double> c2 = spgemm_hash(a, a);
  expect_equal(c2, c1, "tile vs hash", 1e-9);
}

}  // namespace
}  // namespace tsg
