// Cross-kernel algebraic identities on the tile-native operations: these
// tie SpGEMM, add, transpose, SpMV and the masked product together, so a
// regression in any one of them breaks an equation rather than a single
// unit expectation.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/masked_spgemm.h"
#include "core/tile_add.h"
#include "core/tile_spgemm.h"
#include "core/tile_spmv.h"
#include "core/tile_transpose.h"
#include "gen/generators.h"
#include "matrix/compare.h"
#include "matrix/ops.h"
#include "test_support.h"

namespace tsg {
namespace {

class TileAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Csr<double> a_ = gen::erdos_renyi(120, 120, 900, GetParam());
  Csr<double> b_ = gen::erdos_renyi(120, 120, 850, GetParam() + 100);
  TileMatrix<double> ta_ = csr_to_tile(a_);
  TileMatrix<double> tb_ = csr_to_tile(b_);
};

TEST_P(TileAlgebra, RightDistributivityAllTileNative) {
  // (A+B)*C == A*C + B*C computed entirely with tile kernels.
  const Csr<double> c = gen::erdos_renyi(120, 120, 700, GetParam() + 200);
  const TileMatrix<double> tc = csr_to_tile(c);
  const TileMatrix<double> lhs = tile_spgemm(tile_add(ta_, tb_), tc).c;
  const TileMatrix<double> rhs = tile_add(tile_spgemm(ta_, tc).c, tile_spgemm(tb_, tc).c);
  CompareOptions opt;
  opt.rel_tol = 1e-9;
  opt.prune_zeros = true;
  opt.prune_tol = 1e-10;
  const CompareResult r = compare(tile_to_csr(rhs), tile_to_csr(lhs), opt);
  EXPECT_TRUE(r.equal) << r.message;
}

TEST_P(TileAlgebra, TransposeOfProductTileNative) {
  // (A*B)^T == B^T * A^T with tile_transpose on both sides.
  const TileMatrix<double> lhs = tile_transpose(tile_spgemm(ta_, tb_).c);
  const TileMatrix<double> rhs = tile_spgemm(tile_transpose(tb_), tile_transpose(ta_)).c;
  test::expect_equal(tile_to_csr(rhs), tile_to_csr(lhs), "(AB)^T tile-native");
}

TEST_P(TileAlgebra, SpmvDistributesOverAdd) {
  // (A+B)x == Ax + Bx.
  Xoshiro256 rng(GetParam() + 300);
  tracked_vector<double> x(120);
  for (auto& v : x) v = rng.next_double() - 0.5;
  tracked_vector<double> sum_then_apply, ya, yb;
  tile_spmv(tile_add(ta_, tb_), x, sum_then_apply);
  tile_spmv(ta_, x, ya);
  tile_spmv(tb_, x, yb);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(sum_then_apply[i], ya[i] + yb[i], 1e-10) << i;
  }
}

TEST_P(TileAlgebra, ProductActionEqualsComposedAction) {
  // (A*B) x == A (B x): SpGEMM and SpMV agree on the operator they define.
  Xoshiro256 rng(GetParam() + 400);
  tracked_vector<double> x(120);
  for (auto& v : x) v = rng.next_double() - 0.5;
  tracked_vector<double> via_product, bx, via_composition;
  tile_spmv(tile_spgemm(ta_, tb_).c, x, via_product);
  tile_spmv(tb_, x, bx);
  tile_spmv(ta_, bx, via_composition);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(via_product[i], via_composition[i],
                1e-9 * (std::abs(via_composition[i]) + 1.0))
        << i;
  }
}

TEST_P(TileAlgebra, MaskedProductIsRestrictionOfFullProduct) {
  // masked(A,B,M) entries == full product entries on M's pattern; and the
  // masked result never exceeds M's pattern.
  const Csr<double> m = gen::erdos_renyi(120, 120, 400, GetParam() + 500);
  const TileMatrix<double> tm = csr_to_tile(m);
  const Csr<double> masked = tile_to_csr(tile_spgemm_masked(ta_, tb_, tm));
  const Csr<double> full = tile_to_csr(tile_spgemm(ta_, tb_).c);
  const Csr<double> expected = structural_mask(full, m);
  test::expect_equal(expected, masked, "masked = restricted product");
  // Pattern containment in M.
  const Csr<double> h = hadamard(masked, m);
  EXPECT_EQ(h.nnz(), masked.nnz());
}

TEST_P(TileAlgebra, AddIsCommutativeAndScales) {
  const Csr<double> ab = tile_to_csr(tile_add(ta_, tb_, 2.0, 3.0));
  const Csr<double> ba = tile_to_csr(tile_add(tb_, ta_, 3.0, 2.0));
  test::expect_equal(ab, ba, "tile_add commutes with swapped coefficients", 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TileAlgebra, ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tsg
