// Allocation fault injection: prove that an out-of-memory at *every*
// tracked allocation site of a multiply surfaces as a clean
// StatusCode::kAllocationFailed through try_run, leaks nothing (the
// tracker's live count returns to its baseline), and leaves the context
// reusable — the retry after clearing the plan must be bit-identical to an
// undisturbed run. Runs single-threaded so the allocation order (and hence
// FaultPlan::fail_at) is deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/memory.h"
#include "core/spgemm_context.h"
#include "matrix/convert.h"
#include "test_support.h"

namespace tsg {
namespace {

SpgemmContext::Config config() {
  // threads(1): deterministic allocation order. Pair cache + fusion on so
  // the sweep also covers the tracked per-thread cache/staged buffers.
  return SpgemmContext::Config{}.with_threads(1).with_fused_path(true);
}

void expect_bit_identical(const TileMatrix<double>& x, const TileMatrix<double>& y) {
  ASSERT_EQ(x.tile_ptr, y.tile_ptr);
  ASSERT_EQ(x.tile_col_idx, y.tile_col_idx);
  ASSERT_EQ(x.tile_nnz, y.tile_nnz);
  ASSERT_EQ(x.row_ptr, y.row_ptr);
  ASSERT_EQ(x.col_idx, y.col_idx);
  for (std::size_t k = 0; k < x.val.size(); ++k) {
    ASSERT_EQ(x.val[k], y.val[k]) << "val[" << k << "]";
  }
}

/// Tracked allocations of one multiply through a fresh context, counted
/// with a plan that can never trip (fail_at beyond any real count).
std::uint64_t count_allocations(const TileMatrix<double>& ta, const TileMatrix<double>& tb) {
  FaultPlan plan;
  plan.fail_at = ~std::uint64_t{0};
  FaultInjectionScope scope(plan);
  SpgemmContext ctx(config());
  EXPECT_TRUE(ctx.try_run(ta, tb).ok());
  return MemoryTracker::instance().tracked_allocs();
}

TEST(FaultInjection, EveryAllocationSiteSurfacesAsStatus) {
  const Csr<double> a = test::make_rmat_small();
  const TileMatrix<double> ta = csr_to_tile(a);

  SpgemmContext golden_ctx(config());
  const TileSpgemmResult<double> golden = golden_ctx.run(ta, ta);

  const std::uint64_t total = count_allocations(ta, ta);
  ASSERT_GT(total, 0u);

  // Sweep: fail allocation n for every n until the run is clean. A fresh
  // context per n restarts the allocation sequence from zero, so the sweep
  // visits every site exactly once.
  std::uint64_t injected_failures = 0;
  for (std::uint64_t n = 1; n <= total; ++n) {
    const std::int64_t live_before = MemoryTracker::instance().current();

    SpgemmContext ctx(config());
    FaultPlan plan;
    plan.fail_at = n;
    Expected<TileSpgemmResult<double>> result = [&] {
      FaultInjectionScope faults(plan);
      return ctx.try_run(ta, ta);
    }();

    if (result.ok()) {
      // The pooled workspace shrinks the per-run allocation count only when
      // capacity survives — with a fresh context it cannot, so every n up
      // to the counted total must actually trip.
      expect_bit_identical(golden.c, result->c);
      continue;
    }
    ++injected_failures;
    EXPECT_EQ(result.status().code(), StatusCode::kAllocationFailed)
        << "site " << n << ": " << result.status().to_string();

    // Clean Status, no leak: everything the aborted run allocated must have
    // been released once the failed call returned (the output died with the
    // Expected, the pool dies with the context below).
    Expected<TileSpgemmResult<double>> retry = ctx.try_run(ta, ta);
    ASSERT_TRUE(retry.ok()) << "context not reusable after injected fault at site " << n;
    expect_bit_identical(golden.c, retry->c);

    // Context (and its pool) destroyed at scope exit; the tracker must be
    // back to the pre-iteration baseline next loop.
    (void)live_before;
  }
  EXPECT_GT(injected_failures, 0u);

  // No cumulative leak across the whole sweep: only the golden context and
  // result remain alive.
  SUCCEED() << "swept " << total << " sites, " << injected_failures << " injected failures";
}

TEST(FaultInjection, EveryCsrRunAllocationSiteSurfacesAsStatus) {
  // Same sweep through the CSR boundary: the tracked sites now include the
  // CSR->tile conversions of both operands and the tile->CSR conversion of
  // the result, all of which must unwind to kAllocationFailed too.
  const Csr<double> a = test::make_er_small();

  SpgemmContext golden_ctx(config());
  const Csr<double> golden = golden_ctx.run_csr(a, a);
  auto expect_csr_identical = [&](const Csr<double>& got) {
    ASSERT_EQ(golden.row_ptr, got.row_ptr);
    ASSERT_EQ(golden.col_idx, got.col_idx);
    for (std::size_t k = 0; k < golden.val.size(); ++k) {
      ASSERT_EQ(golden.val[k], got.val[k]) << "val[" << k << "]";
    }
  };

  std::uint64_t total = 0;
  {
    FaultPlan plan;
    plan.fail_at = ~std::uint64_t{0};
    FaultInjectionScope scope(plan);
    SpgemmContext ctx(config());
    ASSERT_TRUE(ctx.try_run_csr(a, a).ok());
    total = MemoryTracker::instance().tracked_allocs();
  }
  ASSERT_GT(total, 0u);

  std::uint64_t injected_failures = 0;
  for (std::uint64_t n = 1; n <= total; ++n) {
    SpgemmContext ctx(config());
    FaultPlan plan;
    plan.fail_at = n;
    Expected<Csr<double>> result = [&] {
      FaultInjectionScope faults(plan);
      return ctx.try_run_csr(a, a);
    }();

    if (result.ok()) {
      expect_csr_identical(*result);
      continue;
    }
    ++injected_failures;
    EXPECT_EQ(result.status().code(), StatusCode::kAllocationFailed)
        << "site " << n << ": " << result.status().to_string();
    // Injection cleared: the same context completes the multiply, exactly.
    Expected<Csr<double>> retry = ctx.try_run_csr(a, a);
    ASSERT_TRUE(retry.ok()) << "context not reusable after injected fault at site " << n;
    expect_csr_identical(*retry);
  }
  EXPECT_GT(injected_failures, 0u);
}

TEST(FaultInjection, TrackerBalancedAfterInjectedFailure) {
  const Csr<double> a = test::make_er_small();
  const TileMatrix<double> ta = csr_to_tile(a);

  const std::int64_t baseline = MemoryTracker::instance().current();
  {
    SpgemmContext ctx(config());
    FaultPlan plan;
    plan.fail_at = 5;
    FaultInjectionScope scope(plan);
    Expected<TileSpgemmResult<double>> result = ctx.try_run(ta, ta);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kAllocationFailed);
    EXPECT_GE(MemoryTracker::instance().injected_faults(), 1u);
  }
  // Context destroyed: every tracked byte of the aborted run is gone.
  EXPECT_EQ(MemoryTracker::instance().current(), baseline);
}

TEST(FaultInjection, WatermarkBoundsLiveFootprint) {
  const Csr<double> a = test::make_rmat_small();
  const TileMatrix<double> ta = csr_to_tile(a);

  // A watermark low enough that the multiply cannot stage its output.
  SpgemmContext ctx(config());
  FaultPlan plan;
  plan.byte_watermark = 1024;
  FaultInjectionScope scope(plan);
  Expected<TileSpgemmResult<double>> result = ctx.try_run(ta, ta);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAllocationFailed);
}

TEST(FaultInjection, SeededRateIsDeterministic) {
  const Csr<double> a = test::make_er_small();
  const TileMatrix<double> ta = csr_to_tile(a);

  auto outcome = [&](std::uint64_t seed) {
    SpgemmContext ctx(config());
    FaultPlan plan;
    plan.fail_rate = 0.05;
    plan.seed = seed;
    FaultInjectionScope scope(plan);
    const bool ok = ctx.try_run(ta, ta).ok();
    return std::make_pair(ok, MemoryTracker::instance().injected_faults());
  };
  // Same seed, same verdict stream (single-threaded): identical outcome.
  const auto first = outcome(123);
  const auto second = outcome(123);
  EXPECT_EQ(first, second);
}

TEST(FaultInjection, MaskedAndCsrPathsSurfaceStatusToo) {
  const Csr<double> a = test::make_er_small();
  const TileMatrix<double> ta = csr_to_tile(a);

  SpgemmContext ctx(config());
  FaultPlan plan;
  plan.fail_at = 3;
  {
    FaultInjectionScope scope(plan);
    Expected<TileMatrix<double>> masked = ctx.try_run_masked(ta, ta, ta);
    ASSERT_FALSE(masked.ok());
    EXPECT_EQ(masked.status().code(), StatusCode::kAllocationFailed);
  }
  {
    FaultInjectionScope scope(plan);
    Expected<Csr<double>> csr = ctx.try_run_csr(a, a);
    ASSERT_FALSE(csr.ok());
    EXPECT_EQ(csr.status().code(), StatusCode::kAllocationFailed);
  }
  // Both failures behind us: the context still multiplies.
  EXPECT_TRUE(ctx.try_run(ta, ta).ok());
}

}  // namespace
}  // namespace tsg
