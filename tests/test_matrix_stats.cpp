// Workload statistics: flops, intermediate products, compression rate, and
// the row-imbalance histogram of Section 2.3.
#include <gtest/gtest.h>

#include "baselines/reference.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "matrix/stats.h"

namespace tsg {
namespace {

TEST(Stats, IntermediateProductsBruteForce) {
  const Csr<double> a = gen::erdos_renyi(40, 40, 200, 61);
  const Csr<double> b = gen::erdos_renyi(40, 40, 250, 62);
  offset_t expected = 0;
  for (index_t i = 0; i < a.rows; ++i) {
    for (offset_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      expected += b.row_nnz(a.col_idx[k]);
    }
  }
  EXPECT_EQ(intermediate_products(a, b), expected);
  EXPECT_EQ(spgemm_flops(a, b), 2 * expected);
}

TEST(Stats, IdentityProducts) {
  const Csr<double> i = identity<double>(64);
  // I*I: each of the 64 rows produces exactly one product.
  EXPECT_EQ(intermediate_products(i, i), 64);
}

TEST(Stats, DenseBlockCompressionRateNearBlockDim) {
  // For a block-diagonal matrix of dense k x k blocks, A^2 has the same
  // pattern, so rate = products/nnz(C) = (n*k^2)/(n*k) = k.
  const index_t k = 24;
  const Csr<double> a = gen::dense_blocks(4, k, 63);
  const offset_t products = intermediate_products(a, a);
  const Csr<double> c = spgemm_reference(a, a);
  EXPECT_NEAR(compression_rate(products, c.nnz()), static_cast<double>(k), 1e-9);
}

TEST(Stats, CompressionRateZeroNnzC) {
  EXPECT_DOUBLE_EQ(compression_rate(100, 0), 0.0);
}

TEST(Stats, RowHistogramDetectsSkew) {
  // One power-law-style hub row with ~100k flops, the rest tiny — the
  // webbase-1M motivation scenario in miniature.
  Coo<double> coo;
  coo.rows = coo.cols = 1000;
  for (index_t j = 0; j < 250; ++j) coo.push_back(0, j, 1.0);  // hub row
  // Rows the hub references are moderately heavy themselves, so the hub's
  // flops = 2 * sum(nnz of referenced rows) ~ 2*250*40 = 20000.
  for (index_t i = 1; i < 250; ++i) {
    for (index_t k = 0; k < 40; ++k) coo.push_back(i, (i * 41 + k * 13) % 1000, 1.0);
  }
  for (index_t i = 250; i < 1000; ++i) coo.push_back(i, i, 1.0);  // diagonal tail
  const Csr<double> a = coo_to_csr(std::move(coo));
  const RowFlopsHistogram h = row_flops_histogram(a, a);
  // The hub rows dominate; the majority of rows need < 100 flops.
  EXPECT_GE(h.rows_at_least(4), 1);  // >= 10^4 flops rows exist
  EXPECT_GE(h.decade_count[0] + h.decade_count[1] + h.decade_count[2], 750);
  EXPECT_GT(h.max_row_flops, 10000);
}

TEST(Stats, GflopsArithmetic) {
  EXPECT_DOUBLE_EQ(gflops(2'000'000'000, 1000.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1'000'000, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gflops(100, 0.0), 0.0);
}

}  // namespace
}  // namespace tsg
