#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace tsg {
namespace {

TEST(Random, SplitMix64IsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Random, SplitMix64ReferenceOutput) {
  // Published reference value: splitmix64(seed=0) first output.
  SplitMix64 s(0);
  EXPECT_EQ(s.next(), 0xE220A8397B1DCDAFull);
}

TEST(Random, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Random, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Random, DoubleMeanIsNearHalf) {
  Xoshiro256 rng(8);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.next_below(bound), bound);
  }
}

TEST(Random, NextBelowCoversRange) {
  Xoshiro256 rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace tsg
