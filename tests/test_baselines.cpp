// Every row-row baseline validated against the serial reference across all
// structure classes, shapes and operations — the baselines must be correct
// comparators for the performance figures to mean anything.
#include <gtest/gtest.h>

#include "baselines/esc.h"
#include "baselines/hash.h"
#include "baselines/heap.h"
#include "baselines/spa.h"
#include "baselines/speck.h"
#include "gen/generators.h"
#include "matrix/convert.h"
#include "matrix/ops.h"
#include "matrix/transpose.h"
#include "test_support.h"

namespace tsg {
namespace {

using test::check_against_reference;
using test::expect_equal;

using SpgemmFn = Csr<double> (*)(const Csr<double>&, const Csr<double>&);

struct BaselineCase {
  const char* algo_name;
  SpgemmFn fn;
  const char* matrix_name;
  Csr<double> (*make)();
};

class BaselineSweep : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineSweep, MatchesReferenceOnASquared) {
  const auto& p = GetParam();
  const Csr<double> a = p.make();
  check_against_reference(a, a, p.fn, std::string(p.algo_name) + "/" + p.matrix_name);
}

TEST_P(BaselineSweep, MatchesReferenceOnAAT) {
  const auto& p = GetParam();
  const Csr<double> a = p.make();
  const Csr<double> at = transpose(a);
  check_against_reference(a, at, p.fn,
                          std::string(p.algo_name) + "/" + p.matrix_name + "/aat");
}

std::vector<BaselineCase> all_cases() {
  struct Algo {
    const char* name;
    SpgemmFn fn;
  };
  const Algo algos[] = {
      {"spa", &spgemm_spa<double>},   {"esc", &spgemm_esc<double>},
      {"hash", &spgemm_hash<double>}, {"heap", &spgemm_heap<double>},
      {"speck", &spgemm_speck<double>},
  };
  struct Mat {
    const char* name;
    Csr<double> (*make)();
  };
  const Mat mats[] = {
      {"er_small", test::make_er_small},   {"er_dense", test::make_er_dense},
      {"rmat", test::make_rmat_small},     {"stencil5", test::make_stencil},
      {"band", test::make_band},           {"band_wide", test::make_band_wide},
      {"blocks", test::make_blocks},       {"clustered", test::make_clustered},
      {"hyper_sparse", test::make_hyper_sparse},
  };
  std::vector<BaselineCase> cases;
  for (const Algo& a : algos) {
    for (const Mat& m : mats) cases.push_back({a.name, a.fn, m.name, m.make});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllStructures, BaselineSweep,
                         ::testing::ValuesIn(all_cases()), [](const auto& info) {
                           return std::string(info.param.algo_name) + "_" +
                                  info.param.matrix_name;
                         });

// ------------------------------------------------------- per-method edges --

template <class Fn>
void common_edge_checks(Fn fn, const char* name) {
  SCOPED_TRACE(name);
  // Empty matrices.
  const Csr<double> e(25, 25);
  EXPECT_EQ(fn(e, e).nnz(), 0);
  // Identity neutrality.
  const Csr<double> a = gen::erdos_renyi(90, 90, 600, 7);
  const Csr<double> i = identity<double>(90);
  expect_equal(a, fn(a, i), std::string(name) + "/A*I");
  expect_equal(a, fn(i, a), std::string(name) + "/I*A");
  // Rectangular.
  const Csr<double> r1 = gen::erdos_renyi(40, 90, 300, 8);
  const Csr<double> r2 = gen::erdos_renyi(90, 60, 400, 9);
  check_against_reference(r1, r2, fn, std::string(name) + "/rect");
  // Dimension mismatch.
  EXPECT_THROW(fn(r1, r1), std::invalid_argument);
}

TEST(BaselineEdge, Spa) { common_edge_checks(&spgemm_spa<double>, "spa"); }
TEST(BaselineEdge, Esc) { common_edge_checks(&spgemm_esc<double>, "esc"); }
TEST(BaselineEdge, Hash) { common_edge_checks(&spgemm_hash<double>, "hash"); }
TEST(BaselineEdge, Heap) { common_edge_checks(&spgemm_heap<double>, "heap"); }
TEST(BaselineEdge, Speck) { common_edge_checks(&spgemm_speck<double>, "speck"); }

TEST(BaselineEdge, AllKeepCancellationZeros) {
  // Same construction as the core test: product structurally nonzero but
  // numerically zero must survive in every method.
  Coo<double> ca;
  ca.rows = ca.cols = 2;
  ca.push_back(0, 0, 1.0);
  ca.push_back(0, 1, 1.0);
  Coo<double> cb;
  cb.rows = cb.cols = 2;
  cb.push_back(0, 0, 1.0);
  cb.push_back(1, 0, -1.0);
  const Csr<double> a = coo_to_csr(std::move(ca));
  const Csr<double> b = coo_to_csr(std::move(cb));
  for (auto [name, fn] : {std::pair<const char*, SpgemmFn>{"spa", &spgemm_spa<double>},
                          {"esc", &spgemm_esc<double>},
                          {"hash", &spgemm_hash<double>},
                          {"heap", &spgemm_heap<double>},
                          {"speck", &spgemm_speck<double>}}) {
    SCOPED_TRACE(name);
    const Csr<double> c = fn(a, b);
    ASSERT_EQ(c.nnz(), 1);
    EXPECT_DOUBLE_EQ(c.val[0], 0.0);
  }
}

TEST(BaselineEdge, HashSymbolicPattern) {
  const Csr<double> a = test::make_er_small();
  const Csr<double> ref = spgemm_reference(a, a);
  const Csr<double> sym = spgemm_hash_symbolic(a, a);
  ASSERT_EQ(sym.nnz(), ref.nnz());
  for (std::size_t k = 0; k < sym.col_idx.size(); ++k) {
    ASSERT_EQ(sym.col_idx[k], ref.col_idx[k]);
    ASSERT_DOUBLE_EQ(sym.val[k], 1.0);
  }
}

TEST(BaselineEdge, EscHandlesLongSkewedRows) {
  // One row that alone produces most intermediate products (webbase-style
  // skew) — stresses the per-row sort path.
  Coo<double> coo;
  coo.rows = coo.cols = 400;
  for (index_t j = 0; j < 400; ++j) coo.push_back(0, j, 1.0);
  for (index_t i = 1; i < 400; ++i) coo.push_back(i, (i * 7) % 400, 0.5);
  const Csr<double> a = coo_to_csr(std::move(coo));
  check_against_reference(a, a, &spgemm_esc<double>, "esc/skewed");
  check_against_reference(a, a, &spgemm_speck<double>, "speck/skewed");
  check_against_reference(a, a, &spgemm_hash<double>, "hash/skewed");
}

TEST(BaselineEdge, SpeckBinsCoverAllPaths) {
  // Matrix engineered so different rows land in different spECK bins:
  // row 0 dense-ish (dense-SPA bin), rows 1-10 tiny, a mid block for the
  // stack-hash bin, and one long random row for the global-hash bin.
  Coo<double> coo;
  coo.rows = coo.cols = 3000;
  for (index_t j = 0; j < 2000; ++j) coo.push_back(0, j, 1.0);      // dense bin
  for (index_t i = 1; i <= 10; ++i) coo.push_back(i, i, 2.0);       // tiny bin
  for (index_t i = 11; i < 100; ++i) {
    for (index_t k = 0; k < 5; ++k) coo.push_back(i, (i * 31 + k * 101) % 3000, 1.5);
  }
  for (index_t k = 0; k < 700; ++k) coo.push_back(200, (k * 17) % 3000, 0.25);
  const Csr<double> a = coo_to_csr(std::move(coo));
  check_against_reference(a, a, &spgemm_speck<double>, "speck/bins");
}

}  // namespace
}  // namespace tsg
