// SpgemmService: bounded-queue backpressure, admission control against the
// device budget, drain/cancel shutdown semantics, and bit-identity of
// service results vs. direct SpgemmContext runs. Runs under `ctest -L
// service`, and under the TSan preset via the `analysis` label (the queue
// and budget gate are pthread primitives precisely so TSan can see them).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "chaos/chaos.h"
#include "common/bounded_queue.h"
#include "common/cancellation.h"
#include "common/memory.h"
#include "gen/generators.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "service/admission.h"
#include "service/spgemm_service.h"
#include "test_support.h"

namespace tsg {
namespace {

using service::Admission;
using service::FootprintEstimate;
using service::SpgemmRequest;
using service::SpgemmService;
using service::SubmitOptions;
using service::Ticket;
using std::chrono::milliseconds;

// --- submit/try_submit twin-pairing contract (compile-time) ---------------
// The service's submission twins share one parameter list by construction;
// this deduction-based check pins them the same way the run*/try_run* pairs
// are pinned in test_spgemm_context.cpp (the return shapes differ — the
// blocking twin folds rejection into the future — so only the parameter
// lists are matched).
template <class C, class R1, class R2, class... Args>
constexpr bool same_params(R1 (C::*)(Args...), R2 (C::*)(Args...)) {
  return true;
}

static_assert(same_params(&SpgemmService::submit, &SpgemmService::try_submit));

/// Restores the process-wide budget override after tests that construct a
/// service with an explicit device_mem_mb (the service publishes it
/// globally, exactly like SpgemmContext does).
struct BudgetOverrideGuard {
  ~BudgetOverrideGuard() { set_device_memory_budget_bytes(0); }
};

std::shared_ptr<const Csr<double>> shared(Csr<double> m) {
  return std::make_shared<const Csr<double>>(std::move(m));
}

void expect_bit_identical(const Csr<double>& x, const Csr<double>& y,
                          const std::string& context) {
  ASSERT_EQ(x.rows, y.rows) << context;
  ASSERT_EQ(x.row_ptr, y.row_ptr) << context;
  ASSERT_EQ(x.col_idx, y.col_idx) << context;
  for (std::size_t k = 0; k < x.val.size(); ++k) {
    ASSERT_EQ(x.val[k], y.val[k]) << context << " val[" << k << "]";
  }
}

// --- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueue, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full, not a hang
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_push(3));  // space again
}

TEST(BoundedQueue, ClosedQueueStillYieldsRemainingItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_TRUE(q.try_push(8));
  q.close();
  EXPECT_FALSE(q.try_push(9));  // producers fail fast
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(q.pop(out));  // closed and empty: consumer exit
}

TEST(BoundedQueue, PopBatchHonoursPredicateAndCap) {
  BoundedQueue<int> q(8);
  for (int i = 1; i <= 5; ++i) EXPECT_TRUE(q.try_push(i));
  std::vector<int> batch;
  // First item rides regardless; the rest only while < 4 (i.e. stop at 4).
  const std::size_t taken =
      q.pop_batch(batch, 10, [](const int& next) { return next < 4; });
  EXPECT_EQ(taken, 3u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2, 3}));
  batch.clear();
  EXPECT_EQ(q.pop_batch(batch, 1, [](const int&) { return true; }), 1u);
  EXPECT_EQ(batch, (std::vector<int>{4}));
}

TEST(BoundedQueue, CloseWhileBlockedPushReturnsRefusalWithItemIntact) {
  // Regression: a producer blocked in push() while a consumer close()s the
  // queue must get a definitive `false` back — and the refused item must
  // come back un-moved, so a producer carrying a promise can still resolve
  // it with a structured status instead of dropping a broken promise.
  BoundedQueue<std::unique_ptr<int>> q(1);
  ASSERT_TRUE(q.try_push(std::make_unique<int>(1)));
  std::unique_ptr<int> item = std::make_unique<int>(2);
  std::atomic<int> outcome{-1};
  std::thread producer([&] {
    outcome.store(q.push(std::move(item)) ? 1 : 0, std::memory_order_release);
  });
  // Let the producer reach the full-queue wait, then close underneath it.
  // (The sleep only makes the blocked-push window likely; the contract
  // holds either way — close-before-push also returns false.)
  std::this_thread::sleep_for(milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(outcome.load(), 0);          // refused, not hung, not "pushed"
  ASSERT_NE(item, nullptr);              // the item survived the refusal
  EXPECT_EQ(*item, 2);
}

TEST(BoundedQueue, DrainHandsBackPending) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  const std::vector<int> left = q.drain();
  EXPECT_EQ(left, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.closed());
  int out = 0;
  EXPECT_FALSE(q.pop(out));
}

// --- Admission estimator --------------------------------------------------

TEST(Admission, EstimateIsPositiveAndMonotoneInSize) {
  const Csr<double> small = test::make_er_small();
  const Csr<double> big = gen::rmat(10, 8.0, 11);
  const FootprintEstimate es = service::estimate_footprint(small, small);
  const FootprintEstimate eb = service::estimate_footprint(big, big);
  EXPECT_GT(es.bytes, 0u);
  EXPECT_GT(es.tile_pairs, 0u);
  EXPECT_GT(es.c_tiles, 0u);
  EXPECT_GT(eb.bytes, es.bytes);  // a much larger multiply estimates larger
}

TEST(Admission, AliasedOperandMatchesExplicitSquare) {
  const Csr<double> a = test::make_stencil();
  const FootprintEstimate aliased = service::estimate_footprint(a, a);
  const Csr<double> b = a;  // distinct object, same matrix
  const FootprintEstimate copied = service::estimate_footprint(a, b);
  EXPECT_EQ(aliased.tile_pairs, copied.tile_pairs);
  EXPECT_EQ(aliased.c_tiles, copied.c_tiles);
  // Aliased operands are charged once (try_run_csr converts them once); a
  // distinct-but-equal B pays its own CSR bytes on top.
  EXPECT_EQ(copied.bytes, aliased.bytes + b.bytes());
}

// --- Service: the happy path ---------------------------------------------

TEST(Service, ResultsBitIdenticalToDirectRun) {
  const auto a = shared(test::make_er_small());
  const auto b = shared(test::make_stencil());
  SpgemmContext direct;
  const Csr<double> want_aa = direct.run_csr(*a, *a);
  const Csr<double> want_bb = direct.run_csr(*b, *b);

  SpgemmService svc(SpgemmService::Config{}.with_workers(2));
  std::future<SpgemmRunReport> faa = svc.submit({a});  // null b: C = A*A
  std::future<SpgemmRunReport> fbb = svc.submit({b, b});
  const SpgemmRunReport raa = test::await(faa);
  const SpgemmRunReport rbb = test::await(fbb);
  expect_bit_identical(want_aa, raa.c, "A*A via service");
  expect_bit_identical(want_bb, rbb.c, "B*B via service");
  EXPECT_GE(raa.core_ms, 0.0);
  svc.shutdown();
}

TEST(Service, TicketCarriesIdentityAndEcho) {
  const auto a = shared(test::make_band());
  SpgemmService svc(SpgemmService::Config{}.with_workers(1));
  SpgemmRequest req{a};
  req.tag = 0xfeedu;
  Expected<Ticket> t1 = svc.try_submit(req);
  Expected<Ticket> t2 = svc.try_submit(req);
  ASSERT_TRUE(t1.ok()) << t1.status().to_string();
  ASSERT_TRUE(t2.ok()) << t2.status().to_string();
  EXPECT_EQ(t1->tag, 0xfeedu);
  EXPECT_LT(t1->id, t2->id);  // service-unique, monotone
  EXPECT_EQ(t1->admission, Admission::kAdmitted);
  EXPECT_GT(t1->estimated_bytes, 0u);
  EXPECT_GT(test::await(t1->result).c.nnz(), 0);
  EXPECT_GT(test::await(t2->result).c.nnz(), 0);
}

TEST(Service, MalformedRequestsRejectedStructurally) {
  SpgemmService svc(SpgemmService::Config{}.with_workers(0).with_queue_capacity(4));
  Expected<Ticket> no_a = svc.try_submit(SpgemmRequest{});
  EXPECT_EQ(no_a.status().code(), StatusCode::kInvalidArgument);

  const auto rect = shared(gen::erdos_renyi(40, 60, 100, 9));
  Expected<Ticket> mismatched = svc.try_submit({rect, rect});  // 40x60 * 40x60
  EXPECT_EQ(mismatched.status().code(), StatusCode::kDimensionMismatch);

  // The blocking twin folds the same failures into the future.
  std::future<SpgemmRunReport> f = svc.submit(SpgemmRequest{});
  try {
    (void)test::await(f);
    FAIL() << "poisoned future did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  }
  svc.shutdown(SpgemmService::DrainMode::kCancel);
}

// --- Backpressure and shutdown -------------------------------------------

TEST(Service, SaturatedQueueReturnsQueueFullNotAHang) {
  // workers = 0: nothing consumes, so saturation is deterministic.
  const auto a = shared(test::make_er_small());
  SpgemmService svc(SpgemmService::Config{}.with_workers(0).with_queue_capacity(2));
  Expected<Ticket> t1 = svc.try_submit({a});
  Expected<Ticket> t2 = svc.try_submit({a});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(svc.queue_depth(), 2u);
  Expected<Ticket> t3 = svc.try_submit({a});
  EXPECT_EQ(t3.status().code(), StatusCode::kQueueFull);

  // Drain-shutdown executes the backlog inline: both futures complete with
  // values even though the service never had a worker thread.
  svc.shutdown(SpgemmService::DrainMode::kDrain);
  EXPECT_GT(test::await(t1->result).c.nnz(), 0);
  EXPECT_GT(test::await(t2->result).c.nnz(), 0);
}

TEST(Service, DrainShutdownCompletesEveryPendingFuture) {
  const auto a = shared(test::make_stencil());
  SpgemmContext direct;
  const Csr<double> want = direct.run_csr(*a, *a);

  SpgemmService svc(SpgemmService::Config{}.with_workers(0).with_queue_capacity(8));
  std::vector<std::future<SpgemmRunReport>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(svc.submit({a}));
  EXPECT_EQ(svc.queue_depth(), 5u);
  svc.shutdown(SpgemmService::DrainMode::kDrain);
  EXPECT_EQ(svc.queue_depth(), 0u);
  for (auto& f : futures) {
    expect_bit_identical(want, test::await(f).c, "drained request");
  }
}

TEST(Service, CancelShutdownPoisonsPendingWithCancelled) {
  const auto a = shared(test::make_er_small());
  SpgemmService svc(SpgemmService::Config{}.with_workers(0).with_queue_capacity(8));
  std::future<SpgemmRunReport> f1 = svc.submit({a});
  std::future<SpgemmRunReport> f2 = svc.submit({a});
  svc.shutdown(SpgemmService::DrainMode::kCancel);
  for (std::future<SpgemmRunReport>* f : {&f1, &f2}) {
    try {
      (void)test::await(*f);
      FAIL() << "cancelled future did not throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
    }
  }
  // New submissions after shutdown are refused immediately, both flavours.
  EXPECT_EQ(svc.try_submit({a}).status().code(), StatusCode::kCancelled);
  std::future<SpgemmRunReport> late = svc.submit({a});
  EXPECT_THROW((void)test::await(late), Error);
}

TEST(Service, ShutdownIsIdempotent) {
  SpgemmService svc(SpgemmService::Config{}.with_workers(1));
  svc.shutdown();
  svc.shutdown(SpgemmService::DrainMode::kCancel);  // second call: no effect
  SUCCEED();
}

// --- Admission control against the device budget --------------------------

TEST(Service, OverBudgetRejectedWhenDegradationUnavailable) {
  BudgetOverrideGuard guard;
  const auto big = shared(gen::rmat(10, 8.0, 11));
  // 2 MB budget; the rmat^2 estimate blows far past it. Degradation off at
  // the service level -> structured rejection at submit time, not an OOM.
  SpgemmService svc(SpgemmService::Config{}
                        .with_workers(0)
                        .with_queue_capacity(4)
                        .with_device_mem_mb(2)
                        .with_degradation(false));
  Expected<Ticket> t = svc.try_submit({big});
  EXPECT_EQ(t.status().code(), StatusCode::kRejected);

  // Per-request opt-out has the same effect with service degradation on.
  SpgemmService svc2(SpgemmService::Config{}
                         .with_workers(0)
                         .with_queue_capacity(4)
                         .with_device_mem_mb(2));
  SpgemmRequest strict{big};
  strict.allow_degraded = false;
  EXPECT_EQ(svc2.try_submit(strict).status().code(), StatusCode::kRejected);
  // The same request, degradation permitted, is admitted as degraded.
  Expected<Ticket> degraded = svc2.try_submit({big});
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_EQ(degraded->admission, Admission::kDegraded);
  svc2.shutdown(SpgemmService::DrainMode::kCancel);
  svc.shutdown(SpgemmService::DrainMode::kCancel);
}

TEST(Service, DegradedAdmissionRunsChunkedAndBitIdentical) {
  // Gold first, under the default (roomy) budget.
  const auto big = shared(gen::rmat(10, 8.0, 11));
  SpgemmContext direct;
  const Csr<double> want = direct.run_csr(*big, *big);

  BudgetOverrideGuard guard;
  SpgemmService svc(SpgemmService::Config{}.with_workers(1).with_device_mem_mb(2));
  Expected<Ticket> t = svc.try_submit({big});
  ASSERT_TRUE(t.ok()) << t.status().to_string();
  EXPECT_EQ(t->admission, Admission::kDegraded);
  const SpgemmRunReport report = test::await(t->result);
  EXPECT_TRUE(report.budget_limited);
  EXPECT_GE(report.chunks, 2);
  expect_bit_identical(want, report.c, "degraded service run");
  svc.shutdown();
}

TEST(Service, WorkerBudgetExceededPoisonsOnlyItsOwnFuture) {
  BudgetOverrideGuard guard;
  const auto big = shared(gen::rmat(10, 8.0, 11));
  const auto small = shared(test::make_er_small());
  SpgemmContext direct;
  const Csr<double> want_small = direct.run_csr(*small, *small);

  // Shadow-mode admission (observe-only) with context degradation off: the
  // big request sails through admission and the *context's* authoritative
  // post-step-1 check fails it inside the worker.
  SpgemmService svc(SpgemmService::Config{}
                        .with_workers(1)
                        .with_device_mem_mb(2)
                        .with_admission_enforce(false)
                        .with_context(SpgemmContext::Config{}.with_degradation(false)));
  Expected<Ticket> doomed = svc.try_submit({big});
  ASSERT_TRUE(doomed.ok()) << doomed.status().to_string();  // shadow mode admits
  Expected<Ticket> fine = svc.try_submit({small});
  ASSERT_TRUE(fine.ok()) << fine.status().to_string();

  try {
    (void)test::await(doomed->result);
    FAIL() << "over-budget request did not fail";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kBudgetExceeded);
  }
  // The failure poisoned exactly one future; the worker and its context
  // survive to serve the next request.
  expect_bit_identical(want_small, test::await(fine->result).c, "request after failure");
  svc.shutdown();
}

// --- Observability --------------------------------------------------------

TEST(Service, MetricsCountTheLifecycle) {
  const auto a = shared(test::make_band());
  const obs::MetricsSnapshot before = obs::MetricsRegistry::instance().snapshot();
  {
    SpgemmService svc(SpgemmService::Config{}.with_workers(1).with_queue_capacity(4));
    std::vector<std::future<SpgemmRunReport>> futures;
    for (int i = 0; i < 3; ++i) futures.push_back(svc.submit({a}));
    for (auto& f : futures) EXPECT_GT(test::await(f).c.nnz(), 0);
    svc.shutdown();
  }
  const obs::MetricsSnapshot after = obs::MetricsRegistry::instance().snapshot();
  const obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(before, after);
  EXPECT_EQ(d.counter("service.submitted"), 3);
  EXPECT_EQ(d.counter("service.admitted"), 3);
  EXPECT_EQ(d.counter("service.completed"), 3);
  EXPECT_EQ(d.counter("service.failed"), 0);
  const obs::MetricsSnapshot::Hist* lat = after.histogram("service.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->count, 3);
  // A destroyed service reads as an empty queue, not a dangling callback.
  EXPECT_EQ(after.gauge("service.queue_depth"), 0);
}

TEST(Service, FromEnvReadsServiceKnobs) {
  setenv("TSG_SERVICE_WORKERS", "5", 1);
  setenv("TSG_SERVICE_QUEUE_CAP", "17", 1);
  setenv("TSG_SERVICE_STUCK_MS", "1500", 1);
  const SpgemmService::Config cfg = SpgemmService::Config::from_env();
  EXPECT_EQ(cfg.workers, 5);
  EXPECT_EQ(cfg.queue_capacity, 17u);
  EXPECT_EQ(cfg.stuck_after, milliseconds(1500));
  unsetenv("TSG_SERVICE_WORKERS");
  unsetenv("TSG_SERVICE_QUEUE_CAP");
  unsetenv("TSG_SERVICE_STUCK_MS");
  const SpgemmService::Config defaults = SpgemmService::Config::from_env();
  EXPECT_EQ(defaults.workers, 2);
  EXPECT_EQ(defaults.queue_capacity, 64u);
  EXPECT_EQ(defaults.stuck_after, milliseconds(0));  // watchdog opt-in
}

// --- Request lifecycle: deadlines, cancellation, retry, watchdog ----------

TEST(Service, ExpiredDeadlineEvictedAtPopNeverRun) {
  const auto a = shared(test::make_er_small());
  const obs::MetricsSnapshot before = obs::MetricsRegistry::instance().snapshot();
  // workers = 0: the request sits queued while its deadline expires; the
  // drain-shutdown pop must evict it, not run it.
  SpgemmService svc(SpgemmService::Config{}.with_workers(0).with_queue_capacity(4));
  Expected<Ticket> t = svc.try_submit({a}, SubmitOptions{}.with_timeout(milliseconds(1)));
  ASSERT_TRUE(t.ok()) << t.status().to_string();
  std::this_thread::sleep_for(milliseconds(20));
  svc.shutdown(SpgemmService::DrainMode::kDrain);
  try {
    (void)test::await(t->result);
    FAIL() << "expired request was not evicted";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  }
  const obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(
      before, obs::MetricsRegistry::instance().snapshot());
  EXPECT_EQ(d.counter("service.evicted"), 1);
  EXPECT_EQ(d.counter("service.deadline_miss"), 1);
  EXPECT_EQ(d.counter("service.completed"), 0);  // never executed
}

TEST(Service, TicketCancelPoisonsQueuedRequestOnly) {
  const auto a = shared(test::make_er_small());
  SpgemmContext direct;
  const Csr<double> want = direct.run_csr(*a, *a);

  SpgemmService svc(SpgemmService::Config{}.with_workers(0).with_queue_capacity(4));
  Expected<Ticket> doomed = svc.try_submit({a});
  Expected<Ticket> fine = svc.try_submit({a});
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(fine.ok());
  doomed->cancel.request_cancel();
  svc.shutdown(SpgemmService::DrainMode::kDrain);  // drains inline
  EXPECT_THROW((void)test::await(doomed->result), Error);
  // The sibling request is untouched: the cancel poisoned one future only.
  expect_bit_identical(want, test::await(fine->result).c, "uncancelled sibling");
}

TEST(Service, MidRunCancellationIsLeakFreeAndContextReusable) {
  const auto a = shared(test::make_er_small());
  SpgemmContext direct;
  const Csr<double> want = direct.run_csr(*a, *a);

  // Chaos holds the popped request for 100 ms before it runs; the cancel
  // lands inside that window, so the engine sees an already-tripped token
  // at its first boundary check — deterministic mid-pipeline cancellation.
  chaos::ChaosPlan plan;
  plan.latency.push_back({chaos::Site::kPop, 1.0, 100});
  plan.seed = 1;
  {
    chaos::ChaosScope scope(plan);
    SpgemmService svc(SpgemmService::Config{}.with_workers(1));
    Expected<Ticket> t = svc.try_submit({a});
    ASSERT_TRUE(t.ok());
    t->cancel.request_cancel();
    try {
      (void)test::await(t->result);
      FAIL() << "cancelled run did not fail";
    } catch (const Error& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
    }
    // Same worker, same pooled context: the next request must be whole and
    // bit-identical (no poisoned workspace, no unbalanced accounting).
    Expected<Ticket> again = svc.try_submit({a});
    ASSERT_TRUE(again.ok());
    expect_bit_identical(want, test::await(again->result).c, "run after cancel");
    svc.shutdown();
  }
}

TEST(Service, MidRunDeadlineStopsCooperatively) {
  const auto a = shared(test::make_er_small());
  SpgemmContext direct;
  const Csr<double> want = direct.run_csr(*a, *a);

  // 100 ms of injected pop latency against a 30 ms deadline: the deadline
  // expires while the request is already owned by a worker, so the *engine*
  // (not pop-time eviction) must stop it at a boundary check.
  chaos::ChaosPlan plan;
  plan.latency.push_back({chaos::Site::kPop, 1.0, 100});
  plan.seed = 2;
  {
    chaos::ChaosScope scope(plan);
    SpgemmService svc(SpgemmService::Config{}.with_workers(1));
    Expected<Ticket> t =
        svc.try_submit({a}, SubmitOptions{}.with_timeout(milliseconds(30)));
    ASSERT_TRUE(t.ok());
    try {
      (void)test::await(t->result);
      FAIL() << "expired run did not fail";
    } catch (const Error& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
    }
    Expected<Ticket> again = svc.try_submit({a});  // no deadline this time
    ASSERT_TRUE(again.ok());
    expect_bit_identical(want, test::await(again->result).c, "run after deadline");
    svc.shutdown();
  }
}

TEST(Service, RetryAfterTransientFaultIsBitIdentical) {
  const auto a = shared(test::make_stencil());
  SpgemmContext direct;
  const Csr<double> want = direct.run_csr(*a, *a);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::instance().snapshot();
  // fail_at = 1: the first tracked allocation after arming throws, every
  // later one succeeds — so attempt 1 fails with kAllocationFailed and the
  // backoff retry completes. The result must be bit-identical to a direct
  // run: retry is transparent, not approximate.
  SpgemmService svc(SpgemmService::Config{}.with_workers(1));
  FaultPlan fault;
  fault.fail_at = 1;
  FaultInjectionScope fault_scope(fault);
  Expected<Ticket> t = svc.try_submit({a}, SubmitOptions{}.with_retries(2));
  ASSERT_TRUE(t.ok()) << t.status().to_string();
  expect_bit_identical(want, test::await(t->result).c, "completed after retry");
  svc.shutdown();
  const obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(
      before, obs::MetricsRegistry::instance().snapshot());
  EXPECT_GE(d.counter("service.retried"), 1);
  EXPECT_EQ(d.counter("service.failed"), 0);
}

TEST(Service, RetryBudgetExhaustedFailsFast) {
  const auto a = shared(test::make_er_small());
  // Zero service-wide retry tokens: even a request asking for retries
  // fail-fasts on the first transient error (the anti-retry-storm valve).
  SpgemmService svc(
      SpgemmService::Config{}.with_workers(1).with_retry_budget(0));
  FaultPlan fault;
  fault.fail_at = 1;
  FaultInjectionScope fault_scope(fault);
  Expected<Ticket> t = svc.try_submit({a}, SubmitOptions{}.with_retries(5));
  ASSERT_TRUE(t.ok());
  try {
    (void)test::await(t->result);
    FAIL() << "request completed despite exhausted retry budget";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kAllocationFailed);
  }
  svc.shutdown();
}

TEST(Service, WatchdogReplacesStuckWorkerAndPoisonsOnlyItsRequest) {
  const auto a = shared(test::make_er_small());
  SpgemmContext direct;
  const Csr<double> want = direct.run_csr(*a, *a);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::instance().snapshot();
  // The chaos pop-latency wedges the worker for 400 ms with its request
  // already registered in the watchdog slot; stuck_after = 60 ms declares
  // it stuck long before the sleep ends. Exactly that future must fail,
  // and a replacement worker must keep the service serving.
  chaos::ChaosPlan plan;
  plan.latency.push_back({chaos::Site::kPop, 1.0, 400});
  plan.seed = 3;
  SpgemmService svc(SpgemmService::Config{}
                        .with_workers(1)
                        .with_stuck_after(milliseconds(60)));
  {
    chaos::ChaosScope scope(plan);
    Expected<Ticket> doomed = svc.try_submit({a});
    ASSERT_TRUE(doomed.ok());
    try {
      (void)test::await(doomed->result);
      FAIL() << "stuck request was not poisoned";
    } catch (const Error& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded)
          << e.status().to_string();
      EXPECT_NE(e.status().message().find("watchdog"), std::string::npos)
          << e.status().to_string();
    }
  }
  // Chaos disarmed: the replacement worker serves the next request clean.
  Expected<Ticket> fine = svc.try_submit({a});
  ASSERT_TRUE(fine.ok());
  expect_bit_identical(want, test::await(fine->result).c, "after watchdog kill");
  svc.shutdown();
  const obs::MetricsSnapshot d = obs::MetricsSnapshot::delta(
      before, obs::MetricsRegistry::instance().snapshot());
  EXPECT_EQ(d.counter("service.watchdog_kills"), 1);
  EXPECT_EQ(d.counter("service.completed"), 1);
}

TEST(Service, FlightDumpOnWatchdogKillNamesTheVictim) {
  const auto a = shared(test::make_er_small());

  // Arm the flight recorder into a private directory for this test only, so
  // the dump the watchdog writes is the only flight_*.json there.
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("tsg_flight_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.set_directory(dir.string());

  chaos::ChaosPlan plan;
  plan.latency.push_back({chaos::Site::kPop, 1.0, 400});
  plan.seed = 3;
  SpgemmService svc(SpgemmService::Config{}
                        .with_workers(1)
                        .with_stuck_after(milliseconds(60)));
  std::uint64_t victim_id = 0;
  {
    chaos::ChaosScope scope(plan);
    Expected<Ticket> doomed = svc.try_submit({a});
    ASSERT_TRUE(doomed.ok());
    victim_id = doomed->id;
    try {
      (void)test::await(doomed->result);
      FAIL() << "stuck request was not poisoned";
    } catch (const Error& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
    }
  }
  svc.shutdown();
  fr.set_enabled(false);

  // Exactly one dump, and its JSON names the killed request.
  std::vector<std::filesystem::path> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("flight_", 0) == 0) {
      dumps.push_back(entry.path());
    }
  }
  ASSERT_EQ(dumps.size(), 1u);
  std::ifstream in(dumps[0]);
  std::stringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  EXPECT_NE(json.find("\"reason\":\"watchdog_kill\""), std::string::npos);
  EXPECT_NE(json.find("\"victim_request_id\":" + std::to_string(victim_id)),
            std::string::npos);
  EXPECT_NE(json.find("\"service.watchdog_kill\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Service, SnapshotDeltaConcurrentWithRunningWorkers) {
  // MetricsSnapshot::delta must be safe to compute from an observer thread
  // while service workers are actively mutating every instrument it reads —
  // the SLO monitor and the periodic Prometheus writer both do exactly this.
  const auto a = shared(test::make_er_small());
  SpgemmService svc(SpgemmService::Config{}.with_workers(2).with_queue_capacity(8));

  const obs::MetricsSnapshot before = obs::MetricsRegistry::instance().snapshot();
  std::atomic<bool> done{false};
  std::atomic<int> windows{0};
  std::thread observer([&] {
    obs::MetricsSnapshot last = obs::MetricsRegistry::instance().snapshot();
    while (!done.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot now = obs::MetricsRegistry::instance().snapshot();
      const obs::MetricsSnapshot window = obs::MetricsSnapshot::delta(last, now);
      // Monotone counters never produce a negative window.
      EXPECT_GE(window.counter("service.completed"), 0);
      EXPECT_GE(window.counter("service.admitted"), 0);
      last = now;
      windows.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  constexpr int kRequests = 12;
  std::vector<std::future<SpgemmRunReport>> results;
  results.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) results.push_back(svc.submit({a}));
  for (auto& f : results) {
    const SpgemmRunReport report = test::await(f);
    // The correlation ids the service stamps survive to the caller.
    EXPECT_NE(report.request_id, 0u);
    EXPECT_NE(report.trace_id, 0u);
  }
  svc.shutdown();
  done.store(true, std::memory_order_relaxed);
  observer.join();
  EXPECT_GT(windows.load(), 0);

  const obs::MetricsSnapshot total = obs::MetricsSnapshot::delta(
      before, obs::MetricsRegistry::instance().snapshot());
  EXPECT_EQ(total.counter("service.completed"), kRequests);
}

// --- Concurrency stress (the TSan target) ---------------------------------

TEST(Service, ConcurrentSubmittersAndWorkers) {
  const auto a = shared(test::make_er_small());
  const auto b = shared(test::make_stencil());
  SpgemmContext direct;
  const Csr<double> want_a = direct.run_csr(*a, *a);
  const Csr<double> want_b = direct.run_csr(*b, *b);

  SpgemmService svc(
      SpgemmService::Config{}.with_workers(3).with_queue_capacity(8).with_batch_max(4));
  constexpr int kPerProducer = 8;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<SpgemmRunReport>>> results(3);
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto& m = (i % 2 == 0) ? a : b;
        results[p].push_back(svc.submit({m}));  // blocking: backpressure path
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      const Csr<double>& want = (i % 2 == 0) ? want_a : want_b;
      expect_bit_identical(want, test::await(results[p][i]).c, "concurrent submit");
    }
  }
  svc.shutdown();
}

}  // namespace
}  // namespace tsg
